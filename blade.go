package repro

import (
	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// Server describes one heterogeneous blade server: Size blades of
// execution speed Speed, preloaded with dedicated special tasks
// arriving at rate SpecialRate.
type Server = model.Server

// Cluster is a group of blade servers sharing one generic task stream;
// TaskSize is the mean task execution requirement r̄.
type Cluster = model.Group

// Discipline selects how special tasks are scheduled relative to
// generic tasks.
type Discipline = queueing.Discipline

const (
	// FCFS mixes generic and special tasks in one first-come-first-
	// served queue per server (paper §3).
	FCFS = queueing.FCFS
	// PrioritySpecial gives special tasks non-preemptive priority over
	// generic tasks (paper §4).
	PrioritySpecial = queueing.Priority
)

// Allocation is an optimal load distribution: per-server generic rates,
// utilizations, response times, and the minimized average response
// time T′ of generic tasks.
type Allocation = core.Result

// PaperExampleCluster returns the system of the paper's Examples 1–2:
// seven servers with m_i = 2i blades of speed 1.7 − 0.1i, task size
// r̄ = 1, each preloaded with special tasks to 30 % utilization.
func PaperExampleCluster() *Cluster { return model.LiExample1Group() }

// NewCluster builds and validates a cluster. taskSize is r̄, the mean
// task execution requirement in the same units as the server speeds
// (e.g. giga-instructions against giga-instructions per second).
func NewCluster(servers []Server, taskSize float64) (*Cluster, error) {
	c := &Cluster{Servers: servers, TaskSize: taskSize}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Optimize computes the optimal distribution of a generic stream of
// total rate genericRate over the cluster (the paper's Fig. 2–3
// algorithms). genericRate must be positive and below the cluster's
// saturation point MaxGenericRate.
func Optimize(c *Cluster, genericRate float64, d Discipline) (*Allocation, error) {
	return core.Optimize(c, genericRate, core.Options{Discipline: d})
}

// AllTasksAllocation is a load distribution minimizing the average
// response time over all tasks (generic and special together) — an
// objective beyond the paper's generic-only T′.
type AllTasksAllocation = core.TotalResult

// OptimizeAllTasks distributes the generic stream to minimize the
// fleet-wide average response time, counting the preloaded special
// tasks as well. With zero special load it coincides with Optimize.
func OptimizeAllTasks(c *Cluster, genericRate float64, d Discipline) (*AllTasksAllocation, error) {
	return core.OptimizeTotal(c, genericRate, core.Options{Discipline: d})
}

// OptimizeClosedForm solves the single-blade case (every server Size 1)
// using the paper's closed forms (Theorem 1 for FCFS, Theorem 3 for
// priority). It errors if any server has more than one blade.
func OptimizeClosedForm(c *Cluster, genericRate float64, d Discipline) (*Allocation, error) {
	if d == PrioritySpecial {
		return core.ClosedFormPriority(c, genericRate)
	}
	return core.ClosedFormFCFS(c, genericRate)
}

// Analyze evaluates a given (not necessarily optimal) distribution:
// it returns the average generic response time T′ under rates, which
// must be feasible (non-negative, stable, one per server).
func Analyze(c *Cluster, rates []float64, d Discipline) (float64, error) {
	if err := c.Feasible(rates); err != nil {
		return 0, err
	}
	return c.AverageResponseTime(d, rates), nil
}

// Baselines returns the naive allocation policies the optimal solution
// is compared against (proportional, equal-rate, equal-utilization,
// fastest-first, greedy marginal-cost).
func Baselines(d Discipline) []balance.Allocator { return balance.All(d) }

// SimulationResult is the aggregate of simulation replications: the
// simulated T′ with a confidence interval, plus measured utilizations.
type SimulationResult = sim.RepResult

// Simulate runs a discrete-event simulation of the cluster with the
// generic stream split probabilistically according to rates (the
// paper's model realized on a live task stream), using the given
// number of replications at 95 % confidence. horizon is the simulated
// duration per replication; the first tenth is discarded as warm-up.
func Simulate(c *Cluster, rates []float64, d Discipline, horizon float64, replications int, seed int64) (*SimulationResult, error) {
	if err := c.Feasible(rates); err != nil {
		return nil, err
	}
	disp, err := dispatch.NewProbabilistic(rates)
	if err != nil {
		return nil, err
	}
	var total float64
	for _, r := range rates {
		total += r
	}
	return sim.RunReplications(sim.Config{
		Group:       c,
		Discipline:  d,
		GenericRate: total,
		Dispatcher:  disp,
		Horizon:     horizon,
		Warmup:      horizon / 10,
		Seed:        seed,
	}, replications, 0.95)
}
