package repro

// Benchmark harness: one benchmark per table and figure of the paper
// (BenchmarkTable1 … BenchmarkFig15 regenerate the published artifact
// end to end), plus ablation benches for the design choices called out
// in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// Use -run '^$' to skip tests while benchmarking.

import (
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
	"repro/internal/sim"

	"repro/internal/dispatch"
)

// benchTable regenerates a table experiment once per iteration.
func benchTable(b *testing.B, id string, wantT float64) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.RunTable()
		if err != nil {
			b.Fatal(err)
		}
		if math.Abs(res.T-wantT) > 5e-8 {
			b.Fatalf("%s: T′ = %.7f, want %.7f", id, res.T, wantT)
		}
	}
}

// benchFigure regenerates a figure experiment once per iteration and
// reports the full series through the text renderer (discarded), so
// the measured cost is the complete regeneration path.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.RunFigure()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchTable(b, "table1", 0.8964703) }
func BenchmarkTable2(b *testing.B) { benchTable(b, "table2", 0.9209392) }

func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15") }

// --- Core solver scaling: one optimization at the paper's operating
// point, for growing cluster sizes. ---

func benchOptimize(b *testing.B, n int, d queueing.Discipline) {
	b.Helper()
	sizes := make([]int, n)
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		sizes[i] = 2 + 2*(i%8)
		speeds[i] = 1.7 - 0.1*float64(i%7)
	}
	g, err := model.PaperGroup(sizes, speeds, 1.0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	lambda := 0.5 * g.MaxGenericRate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, lambda, core.Options{Discipline: d}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeN7FCFS(b *testing.B)     { benchOptimize(b, 7, queueing.FCFS) }
func BenchmarkOptimizeN7Priority(b *testing.B) { benchOptimize(b, 7, queueing.Priority) }
func BenchmarkOptimizeN64FCFS(b *testing.B)    { benchOptimize(b, 64, queueing.FCFS) }
func BenchmarkOptimizeN512FCFS(b *testing.B)   { benchOptimize(b, 512, queueing.FCFS) }

// --- Fleet-scale solves: the sparse path (class clustering +
// marginal-cost pruning, DESIGN §14) on synthetic heterogeneous fleets.
// The N10k series is the ROADMAP's "well under a second" target and is
// gated in CI with an absolute time budget via bladebench -budget. ---

// benchOptimizeSparse solves a clustered fleet with the sparse path.
// The station mix reuses benchOptimize's signature pattern (56 distinct
// (size, speed) classes), so class clustering does real work without
// being degenerate: ~180 stations per class at n=10,000.
func benchOptimizeSparse(b *testing.B, n int, d queueing.Discipline, frac, rhoCap float64) {
	b.Helper()
	sizes := make([]int, n)
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		sizes[i] = 2 + 2*(i%8)
		speeds[i] = 1.7 - 0.1*float64(i%7)
	}
	g, err := model.PaperGroup(sizes, speeds, 1.0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	lambda := frac * g.MaxGenericRate()
	opts := core.Options{Discipline: d, Sparse: true, CompactResult: true, MaxUtilization: rhoCap}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, lambda, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeN512Sparse(b *testing.B) {
	benchOptimizeSparse(b, 512, queueing.FCFS, 0.5, 0)
}
func BenchmarkOptimizeN10kFCFS(b *testing.B) {
	benchOptimizeSparse(b, 10000, queueing.FCFS, 0.5, 0)
}
func BenchmarkOptimizeN10kPriority(b *testing.B) {
	benchOptimizeSparse(b, 10000, queueing.Priority, 0.5, 0)
}
func BenchmarkOptimizeN10kCapped(b *testing.B) {
	benchOptimizeSparse(b, 10000, queueing.FCFS, 0.5, 0.9)
}

// BenchmarkOptimizeN10kLowLoad is the pruning showcase: at 5% of
// saturation most classes stay outside the active set at every probe.
func BenchmarkOptimizeN10kLowLoad(b *testing.B) {
	benchOptimizeSparse(b, 10000, queueing.FCFS, 0.05, 0)
}

// BenchmarkOptimizeN10kDense is the dense baseline on the same fleet —
// the cost the sparse path buys back.
func BenchmarkOptimizeN10kDense(b *testing.B) {
	benchOptimize(b, 10000, queueing.FCFS)
}

// BenchmarkOptimizeN512Parallel measures the concurrent inner loop on
// the same 512-server system as BenchmarkOptimizeN512FCFS.
func BenchmarkOptimizeN512Parallel(b *testing.B) {
	sizes := make([]int, 512)
	speeds := make([]float64, 512)
	for i := range sizes {
		sizes[i] = 2 + 2*(i%8)
		speeds[i] = 1.7 - 0.1*float64(i%7)
	}
	g, err := model.PaperGroup(sizes, speeds, 1.0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	lambda := 0.5 * g.MaxGenericRate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS, Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: stable Erlang recurrence vs the paper's factorial
// formulas for the M/M/m response time. ---

func BenchmarkErlangStable(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 64; m *= 2 {
			sink += queueing.ResponseTime(m, 0.7, 1.0)
		}
	}
	if sink == 0 {
		b.Fatal("unexpected zero")
	}
}

func BenchmarkErlangNaive(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 64; m *= 2 {
			sink += queueing.NaiveResponseTime(m, 0.7, 1.0)
		}
	}
	if sink == 0 {
		b.Fatal("unexpected zero")
	}
}

// --- Ablation: analytic vs finite-difference marginal-cost
// derivative. ---

func BenchmarkDerivativeAnalytic(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += queueing.DGenericResponseDRho(queueing.FCFS, 14, 0.7, 0.3, 1.0)
	}
	_ = sink
}

func BenchmarkDerivativeNumeric(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += numeric.Derivative(func(x float64) float64 {
			return queueing.GenericResponseTime(queueing.FCFS, 14, x, 0.3, 1.0)
		}, 0.7)
	}
	_ = sink
}

// --- Ablation: bisection vs Brent on the same inner marginal-cost
// equation (Fig. 2's solve for one server). ---

func innerEquation() (func(float64) float64, float64, float64) {
	s := model.Server{Size: 10, Speed: 1.2, SpecialRate: 3.6}
	const lambdaTotal, phi = 23.52, 0.046
	f := func(l float64) float64 {
		return s.MarginalCost(queueing.FCFS, l, lambdaTotal, 1.0) - phi
	}
	return f, 0, 0.999 * s.MaxGenericRate(1.0)
}

func BenchmarkInnerSolverBisection(b *testing.B) {
	f, lo, hi := innerEquation()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := numeric.Bisect(f, lo, hi, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInnerSolverBrent(b *testing.B) {
	f, lo, hi := innerEquation()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := numeric.Brent(f, lo, hi, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: closed form (Theorem 1) vs the general bisection
// solver on a single-blade cluster. ---

func singleBladeBenchGroup() *model.Group {
	servers := make([]model.Server, 16)
	for i := range servers {
		servers[i] = model.Server{Size: 1, Speed: 0.5 + 0.1*float64(i), SpecialRate: 0.05 * float64(i)}
	}
	return &model.Group{Servers: servers, TaskSize: 1}
}

func BenchmarkClosedFormTheorem1(b *testing.B) {
	g := singleBladeBenchGroup()
	lambda := 0.6 * g.MaxGenericRate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ClosedFormFCFS(g, lambda); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosedFormViaBisection(b *testing.B) {
	g := singleBladeBenchGroup()
	lambda := 0.6 * g.MaxGenericRate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: parallel vs sequential figure sweep. ---

func BenchmarkSweepParallel(b *testing.B) {
	e, err := experiments.ByID("fig12")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFigure(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) {
	e, err := experiments.ByID("fig12")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFigureSequential(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator throughput: events processed per second on the paper's
// example system at the Table 1 operating point. ---

func BenchmarkSimulatePaperSystem(b *testing.B) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	res, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		b.Fatal(err)
	}
	disp, err := dispatch.NewProbabilistic(res.Rates)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := sim.Run(sim.Config{
			Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
			Dispatcher: disp, Horizon: 1000, Warmup: 100, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if run.CompletedGeneric == 0 {
			b.Fatal("no completions")
		}
	}
}

// --- Facade hot path: optimize per tier of operating load (shows the
// solver cost is insensitive to λ′ except near saturation). ---

func BenchmarkOptimizeLoadSweep(b *testing.B) {
	g := model.LiExample1Group()
	for _, frac := range []float64{0.3, 0.6, 0.9, 0.99} {
		frac := frac
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			lambda := frac * g.MaxGenericRate()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
