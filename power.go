package repro

import (
	"repro/internal/power"
)

// PowerConfig parameterizes power-budgeted speed optimization: choose
// blade speeds under Σ m_i·s_i^α ≤ Budget so that the optimally
// distributed generic response time is minimized. This extends the
// paper's model along the axis its conclusions highlight (server speed
// is the dominant lever on T′, and speed costs power).
type PowerConfig = power.Config

// PowerResult is the outcome of OptimizeSpeeds: the chosen speeds, the
// resulting cluster, and its optimal load distribution.
type PowerResult = power.Result

// OptimizeSpeeds minimizes the optimal T′ over blade speeds subject to
// the power budget (coordinate descent over power shares; see
// internal/power for convergence notes — at light load the optimum
// concentrates power into few fast blades, near saturation it spreads
// out).
func OptimizeSpeeds(cfg PowerConfig) (*PowerResult, error) {
	return power.OptimizeSpeeds(cfg)
}

// UniformBladePower returns the baseline speed assignment that spends
// the budget evenly per blade.
func UniformBladePower(sizes []int, alpha, budget float64) []float64 {
	return power.UniformSpeeds(sizes, alpha, budget)
}
