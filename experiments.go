package repro

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiments"
)

// ExperimentIDs lists the paper's tables and figures in order:
// table1, table2, fig4 … fig15.
func ExperimentIDs() []string { return experiments.IDs() }

// ExtensionIDs lists the extension experiments (beyond the paper):
// ext-objectives, ext-caps.
func ExtensionIDs() []string { return experiments.ExtensionIDs() }

// RunExperiment regenerates one paper table or figure and writes it to
// w in the given format: "text" (tabular), "csv", or — for figures —
// "plot" (an ASCII rendering of the figure's shape). For figures,
// points controls the λ′ grid resolution (0 means the default 19).
func RunExperiment(id string, w io.Writer, format string, points int) error {
	if format != "text" && format != "csv" && format != "plot" {
		return fmt.Errorf("repro: unknown format %q (want text, csv, or plot)", format)
	}
	if strings.HasPrefix(id, "ext-") {
		res, err := experiments.RunExtension(id, points)
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return res.WriteCSV(w)
		case "plot":
			return res.WritePlot(w)
		default:
			return res.WriteText(w)
		}
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	if e.Kind == experiments.Table {
		if format == "plot" {
			return fmt.Errorf("repro: %s is a table; plot applies to figures", id)
		}
		res, err := e.RunTable()
		if err != nil {
			return err
		}
		if format == "csv" {
			return res.WriteCSV(w)
		}
		return res.WriteText(w)
	}
	if points > 1 {
		e.GridPoints = points
	}
	res, err := e.RunFigure()
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return res.WriteCSV(w)
	case "plot":
		return res.WritePlot(w)
	default:
		return res.WriteText(w)
	}
}

// ExperimentTitle returns the description of an experiment ID.
func ExperimentTitle(id string) (string, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	return e.Title, nil
}
