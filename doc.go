// Package repro is a production-quality Go reproduction of
//
//	Keqin Li, "Optimal Load Distribution for Multiple Heterogeneous
//	Blade Servers in a Cloud Computing Environment",
//	Journal of Grid Computing 11(1):27–46, 2013 (preliminary version
//	in Proc. IPDPS Workshops 2011, pp. 943–952).
//
// A group of heterogeneous blade servers — each with its own number of
// blades m_i, blade speed s_i, and preloaded stream of dedicated
// special tasks λ″_i — receives a common Poisson stream of generic
// tasks at total rate λ′. The package computes the split
// λ′_1, …, λ′_n that minimizes the average response time T′ of generic
// tasks, for both scheduling disciplines the paper analyzes (special
// tasks mixed FCFS, or given non-preemptive priority), and validates
// the analytical model with a discrete-event simulator.
//
// # Quick start
//
//	cluster, err := repro.NewCluster([]repro.Server{
//	    {Size: 4, Speed: 1.6, SpecialRate: 1.9},
//	    {Size: 8, Speed: 1.2, SpecialRate: 2.9},
//	    {Size: 16, Speed: 0.9, SpecialRate: 4.3},
//	}, 1.0)
//	...
//	alloc, err := repro.Optimize(cluster, 10.0, repro.FCFS)
//	fmt.Println(alloc.Rates, alloc.AvgResponseTime)
//
// The subpackages under internal/ hold the substrates: queueing theory
// (internal/queueing), the optimizer (internal/core), baseline
// allocators (internal/balance), the discrete-event simulator
// (internal/sim), dispatch policies (internal/dispatch), synthetic
// traces (internal/trace), and one runnable definition per paper table
// and figure (internal/experiments). This root package is the stable
// public surface.
package repro
