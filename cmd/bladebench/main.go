// Command bladebench is the perf-regression harness: it runs the
// repository's benchmark suite (or parses an existing `go test -bench`
// log), normalizes the results into a BENCH_<date>.json snapshot, and
// can diff two snapshots to flag regressions.
//
// Usage:
//
//	bladebench                             # run all benchmarks, write BENCH_<today>.json
//	bladebench -bench 'Table|Optimize'     # subset, by benchmark regexp
//	bladebench -benchtime 10x -out x.json  # control iteration count and output path
//	bladebench -input bench.log            # convert a saved log instead of running
//	bladebench -compare old.json new.json  # diff snapshots, non-zero exit on regression
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	Date      string      `json:"date"`
	Goos      string      `json:"goos,omitempty"`
	Goarch    string      `json:"goarch,omitempty"`
	CPU       string      `json:"cpu,omitempty"`
	Benchtime string      `json:"benchtime,omitempty"`
	Results   []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line of `go test -bench -benchmem`.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 10x, 2s); empty = default")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	out := flag.String("out", "", "output JSON path; empty = BENCH_<today>.json")
	input := flag.String("input", "", "parse this saved benchmark log instead of running go test")
	compare := flag.Bool("compare", false, "compare two snapshot JSON files (old new); exit 1 on ns/op or allocs/op regression")
	threshold := flag.Float64("threshold", 1.10, "compare: flag benchmarks whose ns/op grew by more than this ratio")
	budgets := make(map[string]time.Duration)
	flag.Func("budget", "compare: absolute per-op budget as 'BenchmarkName=duration' (e.g. 'BenchmarkOptimizeN10kFCFS=1s'); repeatable; the benchmark must be present in the new snapshot and under budget",
		func(v string) error {
			name, dur, ok := strings.Cut(v, "=")
			if !ok || name == "" {
				return fmt.Errorf("want 'BenchmarkName=duration', got %q", v)
			}
			d, err := time.ParseDuration(dur)
			if err != nil {
				return err
			}
			if d <= 0 {
				return fmt.Errorf("budget %q must be positive", v)
			}
			budgets[name] = d
			return nil
		})
	flag.Parse()

	if err := run(*bench, *benchtime, *pkg, *out, *input, *compare, *threshold, budgets, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "bladebench:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg, out, input string, compare bool, threshold float64, budgets map[string]time.Duration, args []string) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two snapshot paths (old new)")
		}
		return compareSnapshots(args[0], args[1], threshold, budgets)
	}
	if len(budgets) > 0 {
		return fmt.Errorf("-budget only applies with -compare")
	}

	var raw io.Reader
	switch {
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
	default:
		cmdArgs := []string{"test", "-run", "^$", "-bench", bench, "-benchmem"}
		if benchtime != "" {
			cmdArgs = append(cmdArgs, "-benchtime", benchtime)
		}
		cmdArgs = append(cmdArgs, pkg)
		cmd := exec.Command("go", cmdArgs...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go %s: %w", strings.Join(cmdArgs, " "), err)
		}
		os.Stdout.Write(outBytes)
		raw = strings.NewReader(string(outBytes))
	}

	snap, err := Parse(raw)
	if err != nil {
		return err
	}
	snap.Benchtime = benchtime
	if len(snap.Results) == 0 {
		return fmt.Errorf("no benchmark results found")
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bladebench: wrote %d results to %s\n", len(snap.Results), out)
	return nil
}

// benchLine matches e.g.
//
//	BenchmarkTable1-4   500   2280000 ns/op   12345 B/op   67 allocs/op
//
// with the memory columns optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// Parse reads `go test -bench` output into a snapshot, stamped with
// today's date.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Date: time.Now().Format("2006-01-02")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters}
		if b.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		if m[4] != "" {
			if b.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
		}
		if m[5] != "" {
			if b.AllocsPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
		}
		snap.Results = append(snap.Results, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compareSnapshots prints a per-benchmark delta table and fails when
// any shared benchmark slowed down beyond the threshold ratio, or when
// a benchmark that was allocation-free in the old snapshot now
// allocates — going from 0 allocs/op to any allocation is a hot-path
// property violation, not a timing wobble, so it is gated absolutely
// rather than by ratio. A benchmark present only in the new snapshot is
// informational (a newly landed benchmark, not a regression), so
// growing the suite never requires regenerating old baselines by hand.
// budgets adds absolute per-op ceilings: each named benchmark must
// appear in the new snapshot and come in under its duration.
func compareSnapshots(oldPath, newPath string, threshold float64, budgets map[string]time.Duration) error {
	oldS, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newS, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldS.Results))
	for _, b := range oldS.Results {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Benchmark, len(newS.Results))
	for _, b := range newS.Results {
		newBy[b.Name] = b
	}
	var regressed []string
	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, nb := range newS.Results {
		ob, ok := oldBy[nb.Name]
		if !ok || ob.NsPerOp == 0 { //bladelint:allow floateq -- zero ns/op is the exact sentinel for a benchmark absent from the old run
			fmt.Printf("%-44s %14s %14.0f %8s  (new benchmark, no baseline)\n", nb.Name, "-", nb.NsPerOp, "-")
			continue
		}
		ratio := nb.NsPerOp / ob.NsPerOp
		mark := ""
		if ratio > threshold {
			mark = "  << REGRESSION"
			regressed = append(regressed, nb.Name)
		}
		// Allocs/op are exact integers reported by the testing package,
		// so > 0 (rather than a ratio) is the right test on both sides.
		if nb.AllocsPerOp > 0 && !(ob.AllocsPerOp > 0) {
			mark = fmt.Sprintf("  << ALLOC REGRESSION (0 -> %.0f allocs/op)", nb.AllocsPerOp)
			regressed = append(regressed, nb.Name+" (allocs)")
		}
		fmt.Printf("%-44s %14.0f %14.0f %7.2fx%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, ratio, mark)
	}
	// Budget names are sorted so the report (and any failure message) is
	// deterministic regardless of map iteration order.
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		budget := budgets[name]
		nb, ok := newBy[name]
		if !ok {
			fmt.Printf("%-44s budget %v  << MISSING from new snapshot\n", name, budget)
			regressed = append(regressed, name+" (missing, budget "+budget.String()+")")
			continue
		}
		mark := "within budget"
		if nb.NsPerOp > float64(budget.Nanoseconds()) {
			mark = "<< OVER BUDGET"
			regressed = append(regressed, fmt.Sprintf("%s (%.0f ns/op over %v budget)", name, nb.NsPerOp, budget))
		}
		fmt.Printf("%-44s %14.0f ns/op vs budget %v  %s\n", name, nb.NsPerOp, budget, mark)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark regression(s) (ns/op beyond %.2fx, new allocations, or budget violations): %s", len(regressed), threshold, strings.Join(regressed, ", "))
	}
	return nil
}
