package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeSnapshot(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	log := `goos: linux
goarch: amd64
cpu: test
BenchmarkDispatchParallel-8   6137804   189.7 ns/op   0 B/op   0 allocs/op
BenchmarkOptimize-8   1200   912345 ns/op   2048 B/op   12 allocs/op
PASS
`
	snap, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(snap.Results))
	}
	b := snap.Results[0]
	if b.Name != "BenchmarkDispatchParallel" || b.Iterations != 6137804 {
		t.Errorf("first result = %+v", b)
	}
	if b.AllocsPerOp != 0 || snap.Results[1].AllocsPerOp != 12 {
		t.Errorf("allocs/op = %g, %g; want 0, 12", b.AllocsPerOp, snap.Results[1].AllocsPerOp)
	}
}

func TestCompareSnapshotsNsPerOpGate(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":190}]}`)

	ok := writeSnapshot(t, dir, "ok.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":220}]}`)
	if err := compareSnapshots(old, ok, 1.25, nil); err != nil {
		t.Errorf("220 vs 190 at 1.25x threshold should pass, got %v", err)
	}

	slow := writeSnapshot(t, dir, "slow.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":260}]}`)
	if err := compareSnapshots(old, slow, 1.25, nil); err == nil {
		t.Error("260 vs 190 at 1.25x threshold should fail")
	}
}

func TestCompareSnapshotsAllocGate(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":190,"allocs_per_op":0}]}`)

	// Faster but newly allocating: the alloc gate must fire even though
	// ns/op improved.
	alloc := writeSnapshot(t, dir, "alloc.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":150,"allocs_per_op":1}]}`)
	err := compareSnapshots(old, alloc, 1.25, nil)
	if err == nil {
		t.Fatal("0 -> 1 allocs/op should fail the compare gate")
	}
	if !strings.Contains(err.Error(), "allocs") {
		t.Errorf("error should name the alloc regression, got %v", err)
	}

	// A benchmark that already allocated may keep allocating.
	oldAlloc := writeSnapshot(t, dir, "old-alloc.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkOptimize","iterations":100,"ns_per_op":900,"allocs_per_op":12}]}`)
	moreAlloc := writeSnapshot(t, dir, "more-alloc.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkOptimize","iterations":100,"ns_per_op":910,"allocs_per_op":14}]}`)
	if err := compareSnapshots(oldAlloc, moreAlloc, 1.25, nil); err != nil {
		t.Errorf("12 -> 14 allocs/op is not a 0->N regression, got %v", err)
	}
}

func TestCompareSnapshotsNewBenchmarkInformational(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":190}]}`)
	// The new snapshot adds a benchmark (even a slow, allocating one)
	// that the baseline has never seen: informational, not a regression.
	added := writeSnapshot(t, dir, "added.json",
		`{"date":"2026-08-07","benchmarks":[`+
			`{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":195},`+
			`{"name":"BenchmarkOptimizeN10kFCFS","iterations":3,"ns_per_op":6000000,"allocs_per_op":19}]}`)
	if err := compareSnapshots(old, added, 1.25, nil); err != nil {
		t.Errorf("a benchmark absent from the baseline must not fail the compare, got %v", err)
	}
}

func TestCompareSnapshotsBudgetGate(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":190}]}`)
	within := writeSnapshot(t, dir, "within.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkOptimizeN10kFCFS","iterations":3,"ns_per_op":6000000}]}`)
	budget := map[string]time.Duration{"BenchmarkOptimizeN10kFCFS": time.Second}
	if err := compareSnapshots(old, within, 1.25, budget); err != nil {
		t.Errorf("6 ms/op against a 1 s budget should pass, got %v", err)
	}

	over := writeSnapshot(t, dir, "over.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkOptimizeN10kFCFS","iterations":1,"ns_per_op":1500000000}]}`)
	err := compareSnapshots(old, over, 1.25, budget)
	if err == nil {
		t.Fatal("1.5 s/op against a 1 s budget should fail")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error should name the budget violation, got %v", err)
	}

	// A budgeted benchmark missing from the new snapshot is a failure:
	// the gate exists to prove the benchmark ran and came in under time.
	if err := compareSnapshots(old, old, 1.25, budget); err == nil {
		t.Error("budgeted benchmark missing from the new snapshot should fail")
	}
}

func TestBudgetFlagParsing(t *testing.T) {
	// -budget outside -compare is a usage error.
	if err := run(".", "", ".", "", "", false, 1.1,
		map[string]time.Duration{"BenchmarkX": time.Second}, nil); err == nil {
		t.Error("-budget without -compare should fail")
	}
}
