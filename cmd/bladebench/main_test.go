package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	log := `goos: linux
goarch: amd64
cpu: test
BenchmarkDispatchParallel-8   6137804   189.7 ns/op   0 B/op   0 allocs/op
BenchmarkOptimize-8   1200   912345 ns/op   2048 B/op   12 allocs/op
PASS
`
	snap, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(snap.Results))
	}
	b := snap.Results[0]
	if b.Name != "BenchmarkDispatchParallel" || b.Iterations != 6137804 {
		t.Errorf("first result = %+v", b)
	}
	if b.AllocsPerOp != 0 || snap.Results[1].AllocsPerOp != 12 {
		t.Errorf("allocs/op = %g, %g; want 0, 12", b.AllocsPerOp, snap.Results[1].AllocsPerOp)
	}
}

func TestCompareSnapshotsNsPerOpGate(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":190}]}`)

	ok := writeSnapshot(t, dir, "ok.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":220}]}`)
	if err := compareSnapshots(old, ok, 1.25); err != nil {
		t.Errorf("220 vs 190 at 1.25x threshold should pass, got %v", err)
	}

	slow := writeSnapshot(t, dir, "slow.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":260}]}`)
	if err := compareSnapshots(old, slow, 1.25); err == nil {
		t.Error("260 vs 190 at 1.25x threshold should fail")
	}
}

func TestCompareSnapshotsAllocGate(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":190,"allocs_per_op":0}]}`)

	// Faster but newly allocating: the alloc gate must fire even though
	// ns/op improved.
	alloc := writeSnapshot(t, dir, "alloc.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkDispatchParallel","iterations":100,"ns_per_op":150,"allocs_per_op":1}]}`)
	err := compareSnapshots(old, alloc, 1.25)
	if err == nil {
		t.Fatal("0 -> 1 allocs/op should fail the compare gate")
	}
	if !strings.Contains(err.Error(), "allocs") {
		t.Errorf("error should name the alloc regression, got %v", err)
	}

	// A benchmark that already allocated may keep allocating.
	oldAlloc := writeSnapshot(t, dir, "old-alloc.json",
		`{"date":"2026-08-06","benchmarks":[{"name":"BenchmarkOptimize","iterations":100,"ns_per_op":900,"allocs_per_op":12}]}`)
	moreAlloc := writeSnapshot(t, dir, "more-alloc.json",
		`{"date":"2026-08-07","benchmarks":[{"name":"BenchmarkOptimize","iterations":100,"ns_per_op":910,"allocs_per_op":14}]}`)
	if err := compareSnapshots(oldAlloc, moreAlloc, 1.25); err != nil {
		t.Errorf("12 -> 14 allocs/op is not a 0->N regression, got %v", err)
	}
}
