// Command bladeexp regenerates any table or figure of the paper's
// evaluation section (§5).
//
// Usage:
//
//	bladeexp -list                       # show all experiment IDs
//	bladeexp -id table1                  # Table 1 (optimal distribution, FCFS)
//	bladeexp -id fig12 -format csv       # Fig. 12 data as CSV
//	bladeexp -all                        # regenerate everything (text)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/profiling"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	id := flag.String("id", "", "experiment to run (table1, table2, fig4 … fig15)")
	all := flag.Bool("all", false, "run every experiment")
	format := flag.String("format", "text", "output format: text, csv, or plot (figures only)")
	points := flag.Int("points", 0, "λ′ grid points for figures (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bladeexp:", err)
		os.Exit(1)
	}
	err = run(*list, *id, *all, *format, *points)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bladeexp:", err)
		os.Exit(1)
	}
}

func run(list bool, id string, all bool, format string, points int) error {
	switch {
	case list:
		for _, eid := range repro.ExperimentIDs() {
			title, err := repro.ExperimentTitle(eid)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %s\n", eid, title)
		}
		for _, eid := range repro.ExtensionIDs() {
			fmt.Printf("%-14s (extension, beyond the paper)\n", eid)
		}
		return nil
	case all:
		for _, eid := range repro.ExperimentIDs() {
			if err := repro.RunExperiment(eid, os.Stdout, format, points); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case id != "":
		return repro.RunExperiment(id, os.Stdout, format, points)
	default:
		return fmt.Errorf("need -list, -id ID, or -all")
	}
}
