package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run(true, "", false, "text", 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table2", "fig4", "fig15"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q", id)
		}
	}
}

func TestSingleTable(t *testing.T) {
	out, err := capture(t, func() error { return run(false, "table1", false, "text", 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.8964703") {
		t.Errorf("table1 missing pinned digits:\n%s", out)
	}
}

func TestSingleFigureCSVWithPoints(t *testing.T) {
	out, err := capture(t, func() error { return run(false, "fig14", false, "csv", 4) })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 grid rows
		t.Fatalf("expected 5 CSV lines, got %d:\n%s", len(lines), out)
	}
}

func TestListIncludesExtensions(t *testing.T) {
	out, err := capture(t, func() error { return run(true, "", false, "text", 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"ext-objectives", "ext-caps"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q", id)
		}
	}
}

func TestAll(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every artifact")
	}
	out, err := capture(t, func() error { return run(false, "", true, "text", 4) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.8964703", "0.9209392", "Fig4", "Fig15"} {
		if !strings.Contains(out, want) {
			t.Errorf("-all output missing %q", want)
		}
	}
}

func TestExtensionByID(t *testing.T) {
	out, err := capture(t, func() error { return run(false, "ext-caps", false, "text", 4) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "uncapped") {
		t.Errorf("ext-caps output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run(false, "", false, "text", 0) }); err == nil {
		t.Error("no mode should fail")
	}
	if _, err := capture(t, func() error { return run(false, "fig99", false, "text", 0) }); err == nil {
		t.Error("unknown id should fail")
	}
	if _, err := capture(t, func() error { return run(false, "fig4", false, "xml", 0) }); err == nil {
		t.Error("unknown format should fail")
	}
}
