package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/serve"
)

// startDaemon serves a real dispatch plan over HTTP for the generator
// to hit.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	g := model.LiExample1Group()
	srv, err := serve.New(serve.Config{
		Group:  g,
		Lambda: 0.5 * g.MaxGenericRate(),
		Opts:   core.Options{Discipline: queueing.FCFS},
		Window: time.Hour, // stay cold: no shedding during the run
		Logger: slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func TestLoadGeneratorClosedLoop(t *testing.T) {
	hs := startDaemon(t)
	var buf bytes.Buffer
	err := run([]string{"-addr", hs.URL, "-c", "4", "-d", "300ms", "-json"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, buf.String())
	}
	if rep.Requests == 0 || rep.Dispatched == 0 {
		t.Fatalf("no load generated: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors against healthy daemon: %+v", rep.Errors, rep)
	}
	if rep.Requests != rep.Dispatched+rep.Rejected+rep.Errors {
		t.Fatalf("outcome counts do not sum: %+v", rep)
	}
	if rep.AchievedQPS <= 0 || rep.LatencyP50 <= 0 {
		t.Fatalf("missing throughput/latency stats: %+v", rep)
	}
	var total int
	for _, c := range rep.ByStation {
		total += c
	}
	if int64(total) != rep.Dispatched {
		t.Fatalf("station counts sum to %d, want %d", total, rep.Dispatched)
	}
}

func TestLoadGeneratorPacedRate(t *testing.T) {
	hs := startDaemon(t)
	var buf bytes.Buffer
	// 100 QPS for 500ms ≈ 50 requests; allow generous slack for a slow
	// CI host (closed-loop pacing can only undershoot, never overshoot).
	err := run([]string{"-addr", hs.URL, "-c", "8", "-d", "500ms", "-qps", "100", "-json"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, buf.String())
	}
	if rep.Requests == 0 {
		t.Fatalf("no load generated: %+v", rep)
	}
	if rep.Requests > 60 {
		t.Fatalf("pacing failed: %d requests for a 50-request schedule", rep.Requests)
	}
}

func TestLoadGeneratorFlagValidation(t *testing.T) {
	if err := run([]string{"-c", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for -c 0")
	}
	if err := run([]string{"-d", "0s"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for -d 0")
	}
}

func TestParseFaultAt(t *testing.T) {
	cases := []struct {
		in   string
		at   time.Duration
		body string
	}{
		{"5s:6:down", 5 * time.Second, `{"station":6,"blackhole":true}`},
		{"15s:6:up", 15 * time.Second, `{"station":6,"reset":true}`},
		{"0s:2:error=0.25", 0, `{"station":2,"error_rate":0.25}`},
		{"1m:0:latency=50ms", time.Minute, `{"station":0,"extra_latency_ms":50}`},
	}
	for _, c := range cases {
		fc, err := parseFaultAt(c.in)
		if err != nil {
			t.Errorf("parseFaultAt(%q): %v", c.in, err)
			continue
		}
		if fc.at != c.at || fc.body != c.body {
			t.Errorf("parseFaultAt(%q) = %v %q, want %v %q", c.in, fc.at, fc.body, c.at, c.body)
		}
	}
	for _, bad := range []string{
		"",
		"5s",
		"5s:6",
		"notadur:6:down",
		"-1s:6:down",
		"5s:x:down",
		"5s:-1:down",
		"5s:6:explode",
		"5s:6:error=1.5",
		"5s:6:error=x",
		"5s:6:latency=-1s",
		"5s:6:latency=large",
	} {
		if _, err := parseFaultAt(bad); err == nil {
			t.Errorf("parseFaultAt(%q) accepted", bad)
		}
	}
}
