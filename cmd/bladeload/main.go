// Command bladeload is a closed-loop HTTP load generator for the
// bladed serving daemon: a fixed pool of workers each keeps exactly one
// POST /v1/dispatch in flight, optionally paced to a target request
// rate, and the run ends with achieved throughput, outcome counts, the
// station routing distribution, and client-side latency quantiles.
//
// Closed-loop means offered load adapts to the server: a slow server is
// probed at whatever rate the workers can sustain rather than being
// buried under an open-loop backlog. With -qps the workers pace
// themselves to a global schedule, turning the pool into a rate-capped
// closed loop (the offered rate never exceeds -qps, and also never
// exceeds what concurrency × latency allows).
//
// Usage:
//
//	bladeload -addr http://localhost:8080 -c 64 -d 30s
//	bladeload -addr http://localhost:8080 -qps 500 -d 10s -json
//	bladeload -addr http://localhost:8080 -batch 8 -d 10s
//
// With -batch N each worker posts {"count": N} to /v1/dispatch/batch
// instead of N single-shot dispatches, exercising the daemon's batched
// hot path; -qps pacing still counts individual decisions (each batch
// claims N slots of the global schedule).
//
// Chaos scripting: repeated -fault-at flags post fault commands to the
// daemon's /v1/faults hook mid-run (bladed must run with -fault-admin),
// so one invocation drives a full kill/recover scenario:
//
//	bladeload -addr http://localhost:8080 -d 30s \
//	    -fault-at 5s:6:down -fault-at 15s:6:up
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bladeload:", err)
		os.Exit(1)
	}
}

// report is the end-of-run summary, printable as text or JSON.
type report struct {
	Duration    float64        `json:"duration_seconds"`
	Requests    int64          `json:"requests"`
	Dispatched  int64          `json:"dispatched"`
	Rejected    int64          `json:"rejected"`
	Errors      int64          `json:"errors"`
	AchievedQPS float64        `json:"achieved_qps"`
	LatencyMean float64        `json:"latency_mean_seconds"`
	LatencyP50  float64        `json:"latency_p50_seconds"`
	LatencyP95  float64        `json:"latency_p95_seconds"`
	LatencyP99  float64        `json:"latency_p99_seconds"`
	ByStation   map[string]int `json:"by_station,omitempty"`
}

// worker accumulates one goroutine's measurements locally — no shared
// state on the request path — and is merged into the report at the end
// (the same shard-then-merge shape the daemon's own metrics use).
type worker struct {
	dispatched, rejected, errors int64
	latency                      metrics.Welford
	q50, q95, q99                *metrics.P2Quantile
	byStation                    map[int]int
}

// dispatchResponse is the subset of bladed's dispatch body we decode.
type dispatchResponse struct {
	Station int `json:"station"`
}

// batchResponse is the subset of bladed's batch-dispatch body we decode.
type batchResponse struct {
	Stations []int `json:"stations"`
	Rejected int   `json:"rejected"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bladeload", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the bladed daemon")
	concurrency := fs.Int("c", 32, "worker pool size (in-flight requests)")
	duration := fs.Duration("d", 10*time.Second, "run length")
	qps := fs.Float64("qps", 0, "target request rate; 0 runs the closed loop unthrottled")
	batch := fs.Int("batch", 0, "decisions per POST /v1/dispatch/batch request; 0 uses the single-shot endpoint")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	var faults []faultCmd
	fs.Func("fault-at",
		"inject a fault mid-run: OFFSET:STATION:DIRECTIVE where directive is down, up, error=P or latency=DUR; repeatable",
		func(v string) error {
			fc, err := parseFaultAt(v)
			if err != nil {
				return err
			}
			faults = append(faults, fc)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("-c %d must be at least 1", *concurrency)
	}
	if *duration <= 0 {
		return fmt.Errorf("-d %s must be positive", *duration)
	}
	if *batch < 0 {
		return fmt.Errorf("-batch %d must be non-negative", *batch)
	}
	target := strings.TrimRight(*addr, "/") + "/v1/dispatch"
	if *batch > 0 {
		target += "/batch"
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency,
			MaxIdleConnsPerHost: *concurrency,
		},
	}

	workers := make([]*worker, *concurrency)
	for i := range workers {
		w := &worker{byStation: make(map[int]int)}
		w.q50, _ = metrics.NewP2Quantile(0.5)
		w.q95, _ = metrics.NewP2Quantile(0.95)
		w.q99, _ = metrics.NewP2Quantile(0.99)
		workers[i] = w
	}

	// issued is the global pacing counter: when -qps is set, request n
	// (claimed with one atomic add) is released at start + n/qps, which
	// paces the pool as a whole without a central ticker goroutine.
	var issued atomic.Int64
	start := time.Now()
	deadline := start.Add(*duration)

	// The chaos script runs beside the workers: each -fault-at command
	// fires at its offset against the daemon's fault-injection hook.
	faultTarget := strings.TrimRight(*addr, "/") + "/v1/faults"
	var faultWg sync.WaitGroup
	for _, fc := range faults {
		faultWg.Add(1)
		go func(fc faultCmd) {
			defer faultWg.Done()
			if d := time.Until(start.Add(fc.at)); d > 0 {
				time.Sleep(d)
			}
			resp, err := client.Post(faultTarget, "application/json", strings.NewReader(fc.body))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bladeload: fault-at %s: %v\n", fc.at, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				fmt.Fprintf(os.Stderr, "bladeload: fault-at %s: daemon answered %s (is bladed running with -fault-admin?)\n",
					fc.at, resp.Status)
			}
		}(fc)
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if *qps > 0 {
					// A batch claims one pacing slot per decision it
					// carries, so -qps bounds the decision rate in both
					// modes.
					claim := int64(1)
					if *batch > 0 {
						claim = int64(*batch)
					}
					n := issued.Add(claim) - claim
					at := start.Add(time.Duration(float64(n) / *qps * float64(time.Second)))
					if at.After(deadline) {
						return
					}
					if d := time.Until(at); d > 0 {
						time.Sleep(d)
					}
				}
				if *batch > 0 {
					w.doBatch(client, target, *batch)
				} else {
					w.do(client, target)
				}
			}
		}(w)
	}
	wg.Wait()
	faultWg.Wait()
	elapsed := time.Since(start)

	rep := summarize(workers, elapsed)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(out, rep)
	return nil
}

// do issues one dispatch request and records its outcome and latency.
func (w *worker) do(client *http.Client, target string) {
	t0 := time.Now()
	resp, err := client.Post(target, "application/json", nil)
	if err != nil {
		w.errors++
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	sec := time.Since(t0).Seconds()
	switch {
	case err != nil:
		w.errors++
		return
	case resp.StatusCode == http.StatusOK:
		w.dispatched++
		var dr dispatchResponse
		if json.Unmarshal(body, &dr) == nil {
			w.byStation[dr.Station]++
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		w.rejected++
	default:
		w.errors++
		return
	}
	// Latency counts for completed exchanges (dispatched or shed);
	// transport errors are excluded so a flapping server does not
	// pollute the quantiles with client timeouts.
	w.latency.Add(sec)
	w.q50.Add(sec)
	w.q95.Add(sec)
	w.q99.Add(sec)
}

// doBatch issues one batched dispatch carrying k decisions and records
// every routed station. Latency is sampled once per exchange — it is
// the round trip of the batch, directly comparable against the
// single-shot mode's per-request round trip.
func (w *worker) doBatch(client *http.Client, target string, k int) {
	t0 := time.Now()
	resp, err := client.Post(target, "application/json",
		strings.NewReader(fmt.Sprintf(`{"count":%d}`, k)))
	if err != nil {
		w.errors++
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	sec := time.Since(t0).Seconds()
	switch {
	case err != nil:
		w.errors++
		return
	case resp.StatusCode == http.StatusOK:
		var br batchResponse
		if json.Unmarshal(body, &br) != nil {
			w.errors++
			return
		}
		w.dispatched += int64(len(br.Stations))
		w.rejected += int64(br.Rejected)
		for _, s := range br.Stations {
			w.byStation[s]++
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		w.rejected += int64(k)
	default:
		w.errors++
		return
	}
	w.latency.Add(sec)
	w.q50.Add(sec)
	w.q95.Add(sec)
	w.q99.Add(sec)
}

// summarize merges the per-worker accumulators: Welford moments merge
// exactly, quantiles through the P² mixture merge (see
// metrics.MergeP2Quantiles for the error bound).
func summarize(workers []*worker, elapsed time.Duration) report {
	rep := report{Duration: elapsed.Seconds(), ByStation: make(map[string]int)}
	var lat metrics.Welford
	var q50s, q95s, q99s []*metrics.P2Quantile
	stations := make(map[int]int)
	for _, w := range workers {
		rep.Dispatched += w.dispatched
		rep.Rejected += w.rejected
		rep.Errors += w.errors
		lat.Merge(&w.latency)
		q50s = append(q50s, w.q50)
		q95s = append(q95s, w.q95)
		q99s = append(q99s, w.q99)
		for s, c := range w.byStation {
			stations[s] += c
		}
	}
	rep.Requests = rep.Dispatched + rep.Rejected + rep.Errors
	if rep.Duration > 0 {
		rep.AchievedQPS = float64(rep.Requests) / rep.Duration
	}
	rep.LatencyMean = lat.Mean()
	rep.LatencyP50 = metrics.MergeP2Quantiles(q50s...)
	rep.LatencyP95 = metrics.MergeP2Quantiles(q95s...)
	rep.LatencyP99 = metrics.MergeP2Quantiles(q99s...)
	for s, c := range stations {
		rep.ByStation[fmt.Sprint(s)] = c
	}
	return rep
}

func printReport(out io.Writer, rep report) {
	fmt.Fprintf(out, "duration      %.2fs\n", rep.Duration)
	fmt.Fprintf(out, "requests      %d (%.1f req/s achieved)\n", rep.Requests, rep.AchievedQPS)
	fmt.Fprintf(out, "dispatched    %d\n", rep.Dispatched)
	fmt.Fprintf(out, "rejected      %d\n", rep.Rejected)
	fmt.Fprintf(out, "errors        %d\n", rep.Errors)
	fmt.Fprintf(out, "latency mean  %s\n", fmtSeconds(rep.LatencyMean))
	fmt.Fprintf(out, "latency p50   %s\n", fmtSeconds(rep.LatencyP50))
	fmt.Fprintf(out, "latency p95   %s\n", fmtSeconds(rep.LatencyP95))
	fmt.Fprintf(out, "latency p99   %s\n", fmtSeconds(rep.LatencyP99))
	if len(rep.ByStation) > 0 {
		keys := make([]string, 0, len(rep.ByStation))
		for k := range rep.ByStation {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(out, "stations     ")
		for _, k := range keys {
			fmt.Fprintf(out, " %s:%d", k, rep.ByStation[k])
		}
		fmt.Fprintln(out)
	}
}

// fmtSeconds renders a latency in the natural unit for its magnitude.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// faultCmd is one parsed -fault-at command: at the offset, POST body
// to the daemon's /v1/faults hook.
type faultCmd struct {
	at   time.Duration
	body string
}

// parseFaultAt parses OFFSET:STATION:DIRECTIVE. Directives map onto
// the fault hook's JSON: down (blackhole), up (reset), error=P
// (injected error rate), latency=DUR (added service time).
func parseFaultAt(v string) (faultCmd, error) {
	offsetStr, rest, ok := strings.Cut(v, ":")
	if !ok {
		return faultCmd{}, fmt.Errorf("fault-at %q: want OFFSET:STATION:DIRECTIVE", v)
	}
	stationStr, directive, ok := strings.Cut(rest, ":")
	if !ok {
		return faultCmd{}, fmt.Errorf("fault-at %q: want OFFSET:STATION:DIRECTIVE", v)
	}
	at, err := time.ParseDuration(offsetStr)
	if err != nil || at < 0 {
		return faultCmd{}, fmt.Errorf("fault-at %q: bad offset %q", v, offsetStr)
	}
	station, err := strconv.Atoi(stationStr)
	if err != nil || station < 0 {
		return faultCmd{}, fmt.Errorf("fault-at %q: bad station %q", v, stationStr)
	}
	var body string
	key, val, _ := strings.Cut(directive, "=")
	switch key {
	case "down":
		body = fmt.Sprintf(`{"station":%d,"blackhole":true}`, station)
	case "up":
		body = fmt.Sprintf(`{"station":%d,"reset":true}`, station)
	case "error":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return faultCmd{}, fmt.Errorf("fault-at %q: error rate %q outside [0, 1]", v, val)
		}
		body = fmt.Sprintf(`{"station":%d,"error_rate":%g}`, station, p)
	case "latency":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return faultCmd{}, fmt.Errorf("fault-at %q: bad latency %q", v, val)
		}
		body = fmt.Sprintf(`{"station":%d,"extra_latency_ms":%g}`, station, float64(d)/float64(time.Millisecond))
	default:
		return faultCmd{}, fmt.Errorf("fault-at %q: unknown directive %q (want down, up, error=P or latency=DUR)", v, directive)
	}
	return faultCmd{at: at, body: body}, nil
}
