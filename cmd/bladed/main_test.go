package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises
// the dispatch/plan/metrics surface over real HTTP, then delivers
// SIGTERM and requires a clean drain — the in-process twin of the CI
// smoke job.
func TestDaemonEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-example", "-addr", "127.0.0.1:0", "-frac", "0.5",
			"-log-level", "error", "-drain", "5s",
		}, ready)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}

	for i := 0; i < 10; i++ {
		resp, err := http.Post(base+"/v1/dispatch", "application/json", nil)
		if err != nil {
			t.Fatalf("dispatch: %v", err)
		}
		var dec struct {
			Station     int   `json:"station"`
			PlanVersion int64 `json:"plan_version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			t.Fatalf("dispatch decode: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || dec.Station < 0 || dec.Station >= 7 {
			t.Fatalf("dispatch: status %d station %d", resp.StatusCode, dec.Station)
		}
	}

	if code, body := get("/v1/plan"); code != http.StatusOK || !strings.Contains(body, `"version": 1`) {
		t.Fatalf("plan: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "bladed_dispatch_total 10") {
		t.Fatalf("metrics: %d\n%s", code, body)
	}

	// SIGTERM must drain and exit cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestRunFlagValidation covers operator mistakes that must fail fast.
func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                   // no cluster source
		{"-example", "-frac", "1.5"},         // frac out of range
		{"-example", "-log-level", "bogus"},  // bad log level
		{"-spec", "/does/not/exist.json"},    // missing file
		{"-builtin", "no-such-system:1"},     // unknown builtin
		{"-example", "-addr", "256.0.0.1:x"}, // unusable listen address
	}
	for _, args := range cases {
		if err := run(args, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestLoadClusterSpecNames checks that server names from a spec file
// reach the daemon's dispatch responses.
func TestLoadClusterSpecNames(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cluster.json"
	doc := `{"task_size": 1, "servers": [
		{"name": "alpha", "size": 2, "speed": 1.5, "special_rate": 0.5},
		{"name": "beta", "size": 4, "speed": 1.0, "special_rate": 0.5}
	]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	g, names, err := loadCluster(path, false, "", quiet)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
	want := []string{"alpha", "beta"}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
	if _, names, err = loadCluster("", true, "", quiet); err != nil || names != nil {
		t.Fatalf("example cluster: names %v err %v", names, err)
	}
}
