// Command bladed is the online serving daemon: it loads a cluster
// specification, solves the paper's optimal load distribution once,
// and serves routing decisions from the resulting probabilistic plan
// over HTTP, re-optimizing in the background when the observed arrival
// rate drifts or a station is marked down.
//
// Usage:
//
//	bladed -example -frac 0.5                       # paper's system, λ′ at half saturation
//	bladed -spec cluster.json -rate 23.52           # explicit spec and rate
//	bladed -builtin fig12:1 -addr :9090 -drift 0.1  # built-in group, custom drift gate
//
// Endpoints: POST /v1/dispatch, POST /v1/dispatch/batch, GET|POST
// /v1/plan, GET|POST /v1/health, POST /v1/observe, GET /metrics
// (Prometheus text), GET /healthz, /debug/pprof, and — with
// -fault-admin — GET|POST /v1/faults. SIGINT/SIGTERM drain gracefully.
// In router mode -batch N additionally coalesces concurrent single-shot
// dispatches into shared batched hot-path passes (see -batch-linger).
//
// Chaos mode: -backend-delay simulates executing each dispatched
// request against its station (enabling the guarded dispatch wrapper,
// circuit breakers and outcome tracking), -fault-admin mounts the
// fault-injection hook, and -chaos-mtbf/-chaos-mttr/-chaos-seed drive
// stations up and down from a deterministic seeded failure schedule:
//
//	bladed -example -backend-delay 2ms -fault-admin
//	bladed -example -backend-delay 2ms -chaos-mtbf 30s -chaos-mttr 10s -chaos-seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "bladed:", err)
		os.Exit(1)
	}
}

// run parses args and serves until a signal arrives. A non-nil ready
// channel receives the bound address once the listener is up (used by
// the end-to-end test).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("bladed", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	specPath := fs.String("spec", "", "path to JSON cluster specification")
	example := fs.Bool("example", false, "use the paper's Example 1/2 system")
	builtin := fs.String("builtin", "", "use a built-in system by name")
	rate := fs.Float64("rate", 0, "planned total generic arrival rate λ′ (absolute)")
	frac := fs.Float64("frac", 0.5, "λ′ as a fraction of the saturation point (used when -rate is 0)")
	priority := fs.Bool("priority", false, "give special tasks non-preemptive priority (paper §4)")
	sparse := fs.Bool("sparse", false,
		"solve with class clustering and marginal-cost pruning (bit-identical rates; intended for fleet-scale specs)")
	drift := fs.Float64("drift", 0.2, "relative arrival-rate drift that triggers a re-solve")
	window := fs.Duration("window", 30*time.Second, "arrival-rate estimation window")
	minResolve := fs.Duration("min-resolve", time.Second, "minimum interval between drift re-solves")
	maxInFlight := fs.Int("max-inflight", 256, "bound on concurrently served API requests")
	reqTimeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	drainTimeout := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	policy := fs.String("policy", "static",
		"dispatch policy: static (paper-optimal probabilistic split), jsq2 (power-of-two sampled least-depth), jsqd (power-of-d; see -d)")
	sampleD := fs.Int("d", 2, "stations sampled per request by -policy jsqd (2-4)")
	seed := fs.Int64("seed", 0, "dispatch RNG seed (0 means 1)")
	deterministic := fs.Bool("deterministic-rng", false,
		"serialize dispatch draws through one seeded RNG so -seed reproduces the routing sequence")
	serialized := fs.Bool("serialized", false,
		"run the fully mutex-serialized request path (contention baseline; not for production)")
	backendDelay := fs.Duration("backend-delay", 0,
		"simulate executing each request with this per-call service time; enables the guarded dispatch wrapper")
	faultAdmin := fs.Bool("fault-admin", false,
		"mount the GET|POST /v1/faults fault-injection hook (implies a simulated backend)")
	chaosMTBF := fs.Duration("chaos-mtbf", 0, "mean time between injected station failures (0 disables the chaos schedule)")
	chaosMTTR := fs.Duration("chaos-mttr", 0, "mean time to repair for injected failures")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed of the deterministic chaos schedule")
	chaosHorizon := fs.Duration("chaos-horizon", time.Hour, "length of the generated chaos schedule")
	attemptTimeout := fs.Duration("attempt-timeout", time.Second, "per-attempt backend timeout")
	maxAttempts := fs.Int("max-attempts", 3, "backend attempts per request (first try included)")
	retryBudget := fs.Float64("retry-budget", 0.1, "sustained retries-per-request ratio")
	hedge := fs.Bool("hedge", false, "hedge a second backend attempt after the observed p95 (idempotent workloads only)")
	batchMax := fs.Int("batch", 0,
		"coalesce concurrent dispatches into one batched hot-path pass of up to this many decisions (router mode only; 0 disables)")
	batchLinger := fs.Duration("batch-linger", 100*time.Microsecond,
		"how long a coalesced batch leader waits for peers before dispatching short")
	breakerOff := fs.Bool("breaker-off", false, "disable automatic circuit-breaker transitions")
	breakerErr := fs.Float64("breaker-error-threshold", 0.5, "EWMA error rate that trips a station's breaker")
	breakerOpen := fs.Duration("breaker-open", 5*time.Second, "initial open interval of a tripped breaker (doubles per reopen)")
	breakerScan := fs.Duration("breaker-scan", 250*time.Millisecond, "failure-detector scan interval")
	trialFraction := fs.Float64("trial-fraction", 0.05, "dispatch share probed at a half-open station")
	rampWindow := fs.Duration("ramp-window", 10*time.Second, "capped-weight ramp length after a breaker-driven recovery")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cluster, names, err := loadCluster(*specPath, *example, *builtin, logger)
	if err != nil {
		return err
	}
	lambda := *rate
	if lambda == 0 { //bladelint:allow floateq -- flag default 0 means derive lambda from -frac, an exact value never computed
		if *frac <= 0 || *frac >= 1 {
			return fmt.Errorf("-frac %g must be in (0, 1)", *frac)
		}
		lambda = *frac * cluster.MaxGenericRate()
	}
	d := repro.FCFS
	if *priority {
		d = repro.PrioritySpecial
	}
	dispatchPolicy, jsqD, err := parsePolicy(*policy, *sampleD)
	if err != nil {
		return err
	}

	// A simulated backend turns bladed from a pure router into an
	// executing daemon: every dispatch runs a (faultable) call, so the
	// failure detector sees real outcomes.
	chaos := *chaosMTBF > 0 || *chaosMTTR > 0
	var inj *faultinject.Injector
	if *backendDelay > 0 || *faultAdmin || chaos {
		icfg := faultinject.Config{
			Stations:  cluster.N(),
			BaseDelay: *backendDelay,
			Seed:      *chaosSeed,
		}
		if chaos {
			if *chaosMTBF <= 0 || *chaosMTTR <= 0 {
				return fmt.Errorf("-chaos-mtbf and -chaos-mttr must both be positive (got %v, %v)", *chaosMTBF, *chaosMTTR)
			}
			params := make([]failure.Params, cluster.N())
			sizes := make([]int, cluster.N())
			for i := range params {
				params[i] = failure.Params{MTBF: chaosMTBF.Seconds(), MTTR: chaosMTTR.Seconds()}
				sizes[i] = cluster.Servers[i].Size
			}
			plan := &failure.Plan{Stations: params}
			schedules, err := plan.GenerateAll(sizes, chaosHorizon.Seconds(), *chaosSeed)
			if err != nil {
				return fmt.Errorf("generating chaos schedule: %w", err)
			}
			icfg.Schedules = schedules
			icfg.Sizes = sizes
			logger.Info("chaos schedule armed",
				"mtbf", *chaosMTBF, "mttr", *chaosMTTR, "seed", *chaosSeed, "horizon", *chaosHorizon)
		}
		var err error
		if inj, err = faultinject.New(icfg); err != nil {
			return err
		}
	}

	cfg := serve.Config{
		Group:              cluster,
		Lambda:             lambda,
		Opts:               core.Options{Discipline: d, Sparse: *sparse, Parallel: *sparse},
		Names:              names,
		DriftThreshold:     *drift,
		Window:             *window,
		MinResolveInterval: *minResolve,
		MaxInFlight:        *maxInFlight,
		RequestTimeout:     *reqTimeout,
		Logger:             logger,
		Seed:               *seed,
		DeterministicRNG:   *deterministic,
		SerializedHotPath:  *serialized,
		Policy:             dispatchPolicy,
		SampleD:            jsqD,
		BatchMax:           *batchMax,
		BatchLinger:        *batchLinger,
		Guard: serve.GuardConfig{
			AttemptTimeout: *attemptTimeout,
			MaxAttempts:    *maxAttempts,
			RetryBudget:    *retryBudget,
			Hedge:          *hedge,
		},
		Breaker: serve.BreakerConfig{
			Disabled:       *breakerOff,
			ErrorThreshold: *breakerErr,
			OpenInterval:   *breakerOpen,
			ScanInterval:   *breakerScan,
			TrialFraction:  *trialFraction,
			RampWindow:     *rampWindow,
		},
	}
	if inj != nil {
		cfg.Backend = inj.Call
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	handler := srv.Handler()
	if inj != nil && *faultAdmin {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/v1/faults", inj.AdminHandler())
		mux.Handle("/v1/faults/", inj.AdminHandler())
		handler = mux
	}
	return serveHTTP(*addr, handler, *drainTimeout, logger, ready)
}

// parsePolicy maps the -policy/-d flags to a serve policy. "jsq2" is
// the named power-of-two-choices shorthand; "jsqd" takes the sample
// count from -d.
func parsePolicy(policy string, d int) (serve.Policy, int, error) {
	switch policy {
	case "static":
		return serve.PolicyStatic, 0, nil
	case "jsq2":
		return serve.PolicyJSQ, 2, nil
	case "jsqd":
		return serve.PolicyJSQ, d, nil
	default:
		return 0, 0, fmt.Errorf("unknown -policy %q (want static, jsq2 or jsqd)", policy)
	}
}

// serveHTTP runs the HTTP server until SIGINT/SIGTERM, then drains.
func serveHTTP(addr string, handler http.Handler, drain time.Duration, logger *slog.Logger, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logger.Info("bladed listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "deadline", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bladed stopped cleanly")
	return nil
}

// loadCluster mirrors the other CLIs' spec loading, additionally
// returning station names for operator-facing dispatch responses.
func loadCluster(specPath string, example bool, builtin string, logger *slog.Logger) (*repro.Cluster, []string, error) {
	switch {
	case example:
		return repro.PaperExampleCluster(), nil, nil
	case builtin != "":
		g, err := spec.Builtin(builtin)
		return g, nil, err
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		doc, err := spec.Parse(f)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		for _, warn := range doc.Warnings() {
			logger.Warn(warn)
		}
		g, err := doc.Build()
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, len(doc.Servers))
		named := false
		for i, s := range doc.Servers {
			names[i] = s.Name
			named = named || s.Name != ""
		}
		if !named {
			names = nil
		}
		return g, names, nil
	default:
		return nil, nil, fmt.Errorf("need -spec FILE, -example, or -builtin NAME")
	}
}
