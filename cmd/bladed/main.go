// Command bladed is the online serving daemon: it loads a cluster
// specification, solves the paper's optimal load distribution once,
// and serves routing decisions from the resulting probabilistic plan
// over HTTP, re-optimizing in the background when the observed arrival
// rate drifts or a station is marked down.
//
// Usage:
//
//	bladed -example -frac 0.5                       # paper's system, λ′ at half saturation
//	bladed -spec cluster.json -rate 23.52           # explicit spec and rate
//	bladed -builtin fig12:1 -addr :9090 -drift 0.1  # built-in group, custom drift gate
//
// Endpoints: POST /v1/dispatch, GET|POST /v1/plan, GET|POST
// /v1/health, GET /metrics (Prometheus text), GET /healthz,
// /debug/pprof. SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "bladed:", err)
		os.Exit(1)
	}
}

// run parses args and serves until a signal arrives. A non-nil ready
// channel receives the bound address once the listener is up (used by
// the end-to-end test).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("bladed", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	specPath := fs.String("spec", "", "path to JSON cluster specification")
	example := fs.Bool("example", false, "use the paper's Example 1/2 system")
	builtin := fs.String("builtin", "", "use a built-in system by name")
	rate := fs.Float64("rate", 0, "planned total generic arrival rate λ′ (absolute)")
	frac := fs.Float64("frac", 0.5, "λ′ as a fraction of the saturation point (used when -rate is 0)")
	priority := fs.Bool("priority", false, "give special tasks non-preemptive priority (paper §4)")
	drift := fs.Float64("drift", 0.2, "relative arrival-rate drift that triggers a re-solve")
	window := fs.Duration("window", 30*time.Second, "arrival-rate estimation window")
	minResolve := fs.Duration("min-resolve", time.Second, "minimum interval between drift re-solves")
	maxInFlight := fs.Int("max-inflight", 256, "bound on concurrently served API requests")
	reqTimeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	drainTimeout := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	seed := fs.Int64("seed", 0, "dispatch RNG seed (0 means 1)")
	deterministic := fs.Bool("deterministic-rng", false,
		"serialize dispatch draws through one seeded RNG so -seed reproduces the routing sequence")
	serialized := fs.Bool("serialized", false,
		"run the fully mutex-serialized request path (contention baseline; not for production)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cluster, names, err := loadCluster(*specPath, *example, *builtin, logger)
	if err != nil {
		return err
	}
	lambda := *rate
	if lambda == 0 { //bladelint:allow floateq -- flag default 0 means derive lambda from -frac, an exact value never computed
		if *frac <= 0 || *frac >= 1 {
			return fmt.Errorf("-frac %g must be in (0, 1)", *frac)
		}
		lambda = *frac * cluster.MaxGenericRate()
	}
	d := repro.FCFS
	if *priority {
		d = repro.PrioritySpecial
	}

	srv, err := serve.New(serve.Config{
		Group:              cluster,
		Lambda:             lambda,
		Opts:               core.Options{Discipline: d},
		Names:              names,
		DriftThreshold:     *drift,
		Window:             *window,
		MinResolveInterval: *minResolve,
		MaxInFlight:        *maxInFlight,
		RequestTimeout:     *reqTimeout,
		Logger:             logger,
		Seed:               *seed,
		DeterministicRNG:   *deterministic,
		SerializedHotPath:  *serialized,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	return serveHTTP(*addr, srv, *drainTimeout, logger, ready)
}

// serveHTTP runs the HTTP server until SIGINT/SIGTERM, then drains.
func serveHTTP(addr string, srv *serve.Server, drain time.Duration, logger *slog.Logger, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logger.Info("bladed listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "deadline", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bladed stopped cleanly")
	return nil
}

// loadCluster mirrors the other CLIs' spec loading, additionally
// returning station names for operator-facing dispatch responses.
func loadCluster(specPath string, example bool, builtin string, logger *slog.Logger) (*repro.Cluster, []string, error) {
	switch {
	case example:
		return repro.PaperExampleCluster(), nil, nil
	case builtin != "":
		g, err := spec.Builtin(builtin)
		return g, nil, err
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		doc, err := spec.Parse(f)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		for _, warn := range doc.Warnings() {
			logger.Warn(warn)
		}
		g, err := doc.Build()
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, len(doc.Servers))
		named := false
		for i, s := range doc.Servers {
			names[i] = s.Name
			named = named || s.Name != ""
		}
		if !named {
			names = nil
		}
		return g, names, nil
	default:
		return nil, nil, fmt.Errorf("need -spec FILE, -example, or -builtin NAME")
	}
}
