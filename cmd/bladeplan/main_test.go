package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestAdmissionOnly(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", true, "", 0.95, 0, false, false, 200)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "admission limit") || !strings.Contains(out, "28.5") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestBladePlanAndRefresh(t *testing.T) {
	// λ′ = 33 exceeds the T′ ≤ 0.95 limit (≈ 28.5) on the example
	// system; the plan must add blades and report the refresh factor.
	out, err := capture(t, func() error {
		return run("", true, "", 0.95, 33, false, true, 200)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"blade plan", "add", "refresh all blades"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAlreadyAdmissible(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", true, "", 0.95, 10, false, false, 200)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "already admissible") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestBuiltinAndErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("", false, "fig12:2", 0.95, 0, true, false, 200)
	}); err != nil {
		t.Fatalf("builtin run failed: %v", err)
	}
	if _, err := capture(t, func() error { return run("", true, "", 0, 0, false, false, 200) }); err == nil {
		t.Error("missing SLA should fail")
	}
	if _, err := capture(t, func() error { return run("", false, "", 1, 0, false, false, 200) }); err == nil {
		t.Error("no cluster source should fail")
	}
	if _, err := capture(t, func() error { return run("", false, "nope", 1, 0, false, false, 200) }); err == nil {
		t.Error("bad builtin should fail")
	}
	if _, err := capture(t, func() error { return run("/nope.json", false, "", 1, 0, false, false, 200) }); err == nil {
		t.Error("missing spec should fail")
	}
	// Impossible SLA.
	if _, err := capture(t, func() error { return run("", true, "", 0.01, 0, false, false, 200) }); err == nil {
		t.Error("impossible SLA should fail")
	}
}
