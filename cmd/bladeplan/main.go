// Command bladeplan answers capacity-planning questions about a blade
// cluster on top of the optimally distributed model: SLA admission
// limits, blade purchases for a target load, and uniform refresh
// factors.
//
// Usage:
//
//	bladeplan -example -sla 0.95                       # admission limit
//	bladeplan -spec cluster.json -sla 1.0 -rate 36.7   # blade plan for a load
//	bladeplan -builtin fig12:3 -sla 0.9 -rate 30 -refresh
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/spec"
)

func main() {
	specPath := flag.String("spec", "", "path to JSON cluster specification")
	example := flag.Bool("example", false, "use the paper's Example 1/2 system")
	builtin := flag.String("builtin", "", "use a built-in system by name")
	sla := flag.Float64("sla", 0, "response-time SLA for generic tasks (required)")
	rate := flag.Float64("rate", 0, "target generic load; 0 computes only the admission limit")
	priority := flag.Bool("priority", false, "special tasks have non-preemptive priority")
	refresh := flag.Bool("refresh", false, "also compute the uniform speed-refresh factor")
	maxBlades := flag.Int("max-blades", 200, "budget for the blade plan")
	flag.Parse()

	if err := run(*specPath, *example, *builtin, *sla, *rate, *priority, *refresh, *maxBlades); err != nil {
		fmt.Fprintln(os.Stderr, "bladeplan:", err)
		os.Exit(1)
	}
}

func loadCluster(specPath string, example bool, builtin string) (*repro.Cluster, error) {
	switch {
	case example:
		return repro.PaperExampleCluster(), nil
	case builtin != "":
		return spec.Builtin(builtin)
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		doc, err := spec.Parse(f)
		if err != nil {
			return nil, err
		}
		return doc.Build()
	default:
		return nil, fmt.Errorf("need -spec FILE, -example, or -builtin NAME")
	}
}

func run(specPath string, example bool, builtin string, sla, rate float64, priority, refresh bool, maxBlades int) error {
	if sla <= 0 {
		return fmt.Errorf("-sla must be positive")
	}
	cluster, err := loadCluster(specPath, example, builtin)
	if err != nil {
		return err
	}
	d := repro.FCFS
	if priority {
		d = repro.PrioritySpecial
	}

	limit, err := repro.MaxAdmissibleRate(cluster, d, sla)
	if err != nil {
		return err
	}
	fmt.Printf("admission limit under T′ ≤ %.4g s: λ′ ≤ %.4f tasks/s (%.0f%% of saturation %.4f)\n",
		sla, limit, limit/cluster.MaxGenericRate()*100, cluster.MaxGenericRate())

	if rate <= 0 {
		return nil
	}
	if rate <= limit {
		fmt.Printf("target load %.4f is already admissible; no expansion needed\n", rate)
		return nil
	}
	expanded, placements, err := repro.PlanBlades(cluster, d, rate, sla, maxBlades)
	if err != nil {
		return err
	}
	fmt.Printf("\nblade plan for λ′ = %.4f: add %d blades\n", rate, len(placements))
	perServer := map[int]int{}
	for _, p := range placements {
		perServer[p.Server]++
	}
	for i := 0; i < cluster.N(); i++ {
		if perServer[i] > 0 {
			fmt.Printf("  server %d: %d → %d blades (+%d)\n",
				i+1, cluster.Servers[i].Size, expanded.Servers[i].Size, perServer[i])
		}
	}
	if refresh {
		k, err := repro.MinSpeedScale(cluster, d, rate, sla, 100)
		if err != nil {
			return err
		}
		fmt.Printf("\nalternative: refresh all blades to %.1f%% of current speed\n", k*100)
	}
	return nil
}
