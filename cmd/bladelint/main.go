// Command bladelint runs the repository's custom analyzer suite
// (internal/lint) over Go package patterns and exits non-zero on any
// finding. It is the mechanical gate for the invariants the previous
// PRs established by hand: a lock-free serving hot path, deterministic
// simulation and failure processes, guarded 1−ρ denominators, no exact
// float comparison outside pin tests, and consistent sync/atomic usage.
//
// Usage:
//
//	go run ./cmd/bladelint [-checks hotpathlock,rhoguard] [packages]
//
// With no packages, ./... is analyzed. Findings print as
//
//	path/file.go:12:9: message [check]
//
// (or, with -json, as a JSON array of {file, line, col, check,
// severity, message, chain} objects for editor and CI integration) and
// are suppressed only by an in-source
// //bladelint:allow <check> -- justification directive.
//
// Warnings — findings with severity "warning", emitted when a check
// could not run to a verdict (e.g. allocfree without compiler output) —
// are printed but do not fail the run: the exit status is 1 only when
// at least one error-severity finding remains.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// jsonDiagnostic is the machine-readable finding shape. Chain carries
// the hot-path call chain for reachability-based checks (hotpathlock,
// allocfree), empty otherwise.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	Chain    string `json:"chain,omitempty"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			severity := "error"
			if d.Warning {
				severity = "warning"
			}
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Check:    d.Check,
				Severity: severity,
				Message:  d.Message,
				Chain:    d.Chain,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	failures := 0
	for _, d := range diags {
		if !d.Warning {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bladelint: %d finding(s)\n", failures)
		os.Exit(1)
	}
}
