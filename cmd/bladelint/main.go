// Command bladelint runs the repository's custom analyzer suite
// (internal/lint) over Go package patterns and exits non-zero on any
// finding. It is the mechanical gate for the invariants the previous
// PRs established by hand: a lock-free serving hot path, deterministic
// simulation and failure processes, guarded 1−ρ denominators, no exact
// float comparison outside pin tests, and consistent sync/atomic usage.
//
// Usage:
//
//	go run ./cmd/bladelint [-checks hotpathlock,rhoguard] [packages]
//
// With no packages, ./... is analyzed. Findings print as
//
//	path/file.go:12:9: message [check]
//
// and are suppressed only by an in-source
// //bladelint:allow <check> -- justification directive.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bladelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
