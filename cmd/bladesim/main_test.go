package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestValidationRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	out, err := capture(t, func() error { return run(0.5, 3000, 4, 1, false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fcfs", "priority", "0.896470", "0.920939"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Relative errors should be small percentages, not tens of percent.
	if strings.Contains(out, "nan") || strings.Contains(out, "Inf") {
		t.Errorf("numeric garbage in output:\n%s", out)
	}
}

func TestPoliciesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	out, err := capture(t, func() error { return run(0.4, 2000, 3, 2, true, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"probabilistic", "round-robin", "join-shortest-queue", "least-expected-wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing policy %q:\n%s", want, out)
		}
	}
}

func TestPoliciesBatchedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	out, err := capture(t, func() error { return run(0.4, 2000, 3, 2, true, 8) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"probabilistic/batch8", "join-shortest-queue/batch8", "least-expected-wait/batch8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing batched policy %q:\n%s", want, out)
		}
	}
}

func TestBadFrac(t *testing.T) {
	if _, err := capture(t, func() error { return run(0, 1000, 2, 1, false, 0) }); err == nil {
		t.Error("frac 0 should fail")
	}
	if _, err := capture(t, func() error { return run(1, 1000, 2, 1, false, 0) }); err == nil {
		t.Error("frac 1 should fail")
	}
}
