// Command bladesim validates the analytical model against the
// discrete-event simulator: it optimizes the paper's example system at
// a chosen load, simulates the resulting probabilistic dispatch, and
// reports analytic vs simulated T′ side by side for both disciplines.
//
// Usage:
//
//	bladesim [-frac 0.5] [-horizon 20000] [-reps 10] [-seed 1]
//	bladesim -policies      # also compare online dispatch policies
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/sim"
)

func main() {
	frac := flag.Float64("frac", 0.5, "λ′ as a fraction of the saturation point")
	horizon := flag.Float64("horizon", 20000, "simulated duration per replication")
	reps := flag.Int("reps", 10, "independent replications")
	seed := flag.Int64("seed", 1, "base RNG seed")
	policies := flag.Bool("policies", false, "also compare online dispatch policies (FCFS only)")
	flag.Parse()

	if err := run(*frac, *horizon, *reps, *seed, *policies); err != nil {
		fmt.Fprintln(os.Stderr, "bladesim:", err)
		os.Exit(1)
	}
}

func run(frac, horizon float64, reps int, seed int64, policies bool) error {
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("-frac %g must be in (0, 1)", frac)
	}
	cluster := repro.PaperExampleCluster()
	lambda := frac * cluster.MaxGenericRate()
	fmt.Printf("Paper example system, λ′ = %.4f (%.0f%% of saturation), %d replications × horizon %.0f\n\n",
		lambda, frac*100, reps, horizon)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "discipline\tanalytic T′\tsimulated T′\t95% CI ±\trel err\t")
	for _, d := range []repro.Discipline{repro.FCFS, repro.PrioritySpecial} {
		alloc, err := repro.Optimize(cluster, lambda, d)
		if err != nil {
			return err
		}
		res, err := repro.Simulate(cluster, alloc.Rates, d, horizon, reps, seed)
		if err != nil {
			return err
		}
		rel := (res.GenericT.Mean - alloc.AvgResponseTime) / alloc.AvgResponseTime
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%.6f\t%+.2f%%\t\n",
			d, alloc.AvgResponseTime, res.GenericT.Mean, res.GenericT.HalfWidth, rel*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !policies {
		return nil
	}

	fmt.Println("\nOnline dispatch policies (FCFS):")
	alloc, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		return err
	}
	prob, err := dispatch.NewProbabilistic(alloc.Rates)
	if err != nil {
		return err
	}
	dispatchers := []sim.Dispatcher{prob, &dispatch.RoundRobin{}, dispatch.JSQ{}, dispatch.LeastExpectedWait{}}
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "policy\tsimulated T′\t95% CI ±\tvs analytic optimum\t")
	for _, disp := range dispatchers {
		rep, err := sim.RunReplications(sim.Config{
			Group: cluster, Discipline: repro.FCFS, GenericRate: lambda,
			Dispatcher: disp, Horizon: horizon, Warmup: horizon / 10, Seed: seed,
		}, reps, 0.95)
		if err != nil {
			return err
		}
		rel := (rep.GenericT.Mean - alloc.AvgResponseTime) / alloc.AvgResponseTime
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%+.2f%%\t\n",
			disp.Name(), rep.GenericT.Mean, rep.GenericT.HalfWidth, rel*100)
	}
	return tw.Flush()
}
