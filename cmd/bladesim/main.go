// Command bladesim validates the analytical model against the
// discrete-event simulator: it optimizes the paper's example system at
// a chosen load, simulates the resulting probabilistic dispatch, and
// reports analytic vs simulated T′ side by side for both disciplines.
//
// Usage:
//
//	bladesim [-frac 0.5] [-horizon 20000] [-reps 10] [-seed 1]
//	bladesim -policies      # also compare online dispatch policies
//	bladesim -policies -batch 8   # ...dispatching in frozen-view batches of 8
//	bladesim -chaos         # seeded failure injection: static vs adaptive dispatch
//	bladesim -chaos -mtbf 1000 -mttr 300 -retries 3 -drop
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	frac := flag.Float64("frac", 0.5, "λ′ as a fraction of the saturation point")
	horizon := flag.Float64("horizon", 20000, "simulated duration per replication")
	reps := flag.Int("reps", 10, "independent replications")
	seed := flag.Int64("seed", 1, "base RNG seed")
	policies := flag.Bool("policies", false, "also compare online dispatch policies (FCFS only)")
	batch := flag.Int("batch", 0,
		"with -policies, dispatch in frozen-view batches of this size (replays the daemon's batched hot path; 0 dispatches singly)")
	chaos := flag.Bool("chaos", false, "inject seeded station failures and compare static vs failure-aware dispatch")
	mtbf := flag.Float64("mtbf", 2000, "chaos: mean time between failures per station")
	mttr := flag.Float64("mttr", 400, "chaos: mean time to repair per station")
	retries := flag.Int("retries", 0, "chaos: retry attempts with capped exponential backoff (0 = tasks wait out outages in queue)")
	drop := flag.Bool("drop", false, "chaos: drop in-flight tasks on failure instead of requeueing them")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bladesim:", err)
		os.Exit(1)
	}
	if *chaos {
		err = runChaos(*frac, *horizon, *reps, *seed, *mtbf, *mttr, *retries, *drop)
	} else {
		err = run(*frac, *horizon, *reps, *seed, *policies, *batch)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bladesim:", err)
		os.Exit(1)
	}
}

func run(frac, horizon float64, reps int, seed int64, policies bool, batch int) error {
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("-frac %g must be in (0, 1)", frac)
	}
	cluster := repro.PaperExampleCluster()
	lambda := frac * cluster.MaxGenericRate()
	fmt.Printf("Paper example system, λ′ = %.4f (%.0f%% of saturation), %d replications × horizon %.0f\n\n",
		lambda, frac*100, reps, horizon)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "discipline\tanalytic T′\tsimulated T′\t95% CI ±\trel err\t")
	for _, d := range []repro.Discipline{repro.FCFS, repro.PrioritySpecial} {
		alloc, err := repro.Optimize(cluster, lambda, d)
		if err != nil {
			return err
		}
		res, err := repro.Simulate(cluster, alloc.Rates, d, horizon, reps, seed)
		if err != nil {
			return err
		}
		rel := (res.GenericT.Mean - alloc.AvgResponseTime) / alloc.AvgResponseTime
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%.6f\t%+.2f%%\t\n",
			d, alloc.AvgResponseTime, res.GenericT.Mean, res.GenericT.HalfWidth, rel*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !policies {
		return nil
	}

	fmt.Println("\nOnline dispatch policies (FCFS):")
	alloc, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		return err
	}
	prob, err := dispatch.NewProbabilistic(alloc.Rates)
	if err != nil {
		return err
	}
	// The sampled power-of-two policy competes with full-information
	// JSQ at O(2) probes per arrival; in the simulator it scores the
	// live views, so no depth counters are wired up.
	caps := make([]float64, cluster.N())
	for i, s := range cluster.Servers {
		caps[i] = s.MaxGenericRate(cluster.TaskSize)
	}
	jsq2, err := dispatch.NewPowerOfD(2, cluster.N(), nil, caps, nil)
	if err != nil {
		return err
	}
	dispatchers := []sim.Dispatcher{prob, &dispatch.RoundRobin{}, jsq2, dispatch.JSQ{}, dispatch.LeastExpectedWait{}}
	if batch > 1 {
		// Replay the serving daemon's batched hot path: each dispatcher
		// decides `batch` arrivals against one frozen state snapshot, so
		// the simulated response times include the decision staleness the
		// amortization buys its speed with.
		for i, disp := range dispatchers {
			dispatchers[i] = dispatch.NewBatched(disp, batch)
		}
	}
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "policy\tsimulated T′\t95% CI ±\tvs analytic optimum\t")
	for _, disp := range dispatchers {
		rep, err := sim.RunReplications(sim.Config{
			Group: cluster, Discipline: repro.FCFS, GenericRate: lambda,
			Dispatcher: disp, Horizon: horizon, Warmup: horizon / 10, Seed: seed,
		}, reps, 0.95)
		if err != nil {
			return err
		}
		rel := (rep.GenericT.Mean - alloc.AvgResponseTime) / alloc.AvgResponseTime
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%+.2f%%\t\n",
			disp.Name(), rep.GenericT.Mean, rep.GenericT.HalfWidth, rel*100)
	}
	return tw.Flush()
}

// runChaos is the chaos harness: every station of the paper's example
// system fails and recovers as an exponential MTBF/MTTR process (seeded,
// so runs are reproducible), and the same failure traces are replayed
// against a static paper-optimal split, a health-filtered state-aware
// policy, and the re-optimizing dispatcher that re-solves the paper's
// problem over the surviving subset on every transition.
func runChaos(frac, horizon float64, reps int, seed int64, mtbf, mttr float64, retries int, drop bool) error {
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("-frac %g must be in (0, 1)", frac)
	}
	cluster := repro.PaperExampleCluster()
	lambda := frac * cluster.MaxGenericRate()

	plan := &failure.Plan{Stations: make([]failure.Params, cluster.N())}
	for i := range plan.Stations {
		plan.Stations[i] = failure.Params{MTBF: mtbf, MTTR: mttr}
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	avail := failure.Params{MTBF: mtbf, MTTR: mttr}.Availability()
	sizes := make([]int, cluster.N())
	speeds := make([]float64, cluster.N())
	for i, s := range cluster.Servers {
		sizes[i], speeds[i] = s.Size, s.Speed
	}
	effCap, err := plan.EffectiveCapacity(sizes, speeds, cluster.TaskSize)
	if err != nil {
		return err
	}

	fmt.Printf("Chaos run: paper example, λ′ = %.4f (%.0f%% of nameplate saturation)\n", lambda, frac*100)
	fmt.Printf("per-station MTBF %.0f, MTTR %.0f → availability %.4f; availability-weighted capacity %.2f (load %.0f%% of it)\n",
		mtbf, mttr, avail, effCap, 100*lambda/effCap)
	policy := "requeue in-flight tasks with residual work"
	if drop {
		policy = "drop in-flight tasks"
	}
	fmt.Printf("on failure: %s; retries: %d\n\n", policy, retries)

	healthy, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		return err
	}
	static, err := dispatch.NewProbabilistic(healthy.Rates)
	if err != nil {
		return err
	}
	filtered, err := dispatch.NewHealthFiltered(dispatch.LeastExpectedWait{})
	if err != nil {
		return err
	}
	reopt, err := dispatch.NewReWeighting(cluster, lambda, core.Options{Discipline: repro.FCFS})
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Group: cluster, Discipline: repro.FCFS, GenericRate: lambda,
		Horizon: horizon, Warmup: horizon / 10, Seed: seed,
		Failures: plan,
	}
	if drop {
		cfg.FailurePolicy = sim.DropInFlight
	}
	if retries > 0 {
		cfg.Retry = &sim.RetryPolicy{MaxAttempts: retries, Base: 0.1, Cap: 10}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "policy\tT′\t95% CI ±\tcompleted\t95% CI\tlost\trequeued\tavail\t")
	for _, disp := range []sim.Dispatcher{static, filtered, reopt} {
		c := cfg
		c.Dispatcher = disp
		rep, err := sim.RunReplications(c, reps, 0.95)
		if err != nil {
			return err
		}
		var arrived, completed, lost, requeued int64
		availSum, availRuns := 0.0, 0
		for _, r := range rep.Runs {
			arrived += r.ArrivedGeneric
			completed += r.CompletedGeneric
			lost += r.LostGeneric + r.LostSpecial
			requeued += r.RequeuedGeneric + r.RequeuedSpecial
			if len(r.Availability) > 0 {
				availRuns++
				for _, a := range r.Availability {
					availSum += a / float64(len(r.Availability))
				}
			}
		}
		measuredAvail := 1.0 // Availability is nil when no station can fail
		if availRuns > 0 {
			measuredAvail = availSum / float64(availRuns)
		}
		frIv, err := metrics.ProportionInterval(completed, arrived, 0.95)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.2f%%\t[%.2f%%, %.2f%%]\t%d\t%d\t%.4f\t\n",
			disp.Name(), rep.GenericT.Mean, rep.GenericT.HalfWidth,
			100*float64(completed)/float64(arrived), 100*frIv.Lo(), 100*frIv.Hi(),
			lost, requeued, measuredAvail)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nT′ counts only completed tasks; with few or no retries the static split's")
	fmt.Println("losses show up as a low completed fraction (tasks stranded behind an outage),")
	fmt.Println("while the adaptive policies steer around down stations.")
	return nil
}
