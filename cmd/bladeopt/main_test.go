package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runSelf executes the command's run() with stdout captured.
func runSelf(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestRunExampleText(t *testing.T) {
	out, err := runSelf(t, func() error {
		return run("", true, "", 0, 0.5, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.8964703", "λ′ = 23.52", "fcfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExamplePriorityJSON(t *testing.T) {
	out, err := runSelf(t, func() error {
		return run("", true, "", 0, 0.5, true, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	var o output
	if err := json.Unmarshal([]byte(out), &o); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if o.Discipline != "priority" || len(o.Rates) != 7 {
		t.Fatalf("unexpected output %+v", o)
	}
	if o.AvgResponseTime < 0.92 || o.AvgResponseTime > 0.93 {
		t.Fatalf("T′ = %g", o.AvgResponseTime)
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	specJSON := `{
		"task_size": 1.0,
		"servers": [
			{"size": 2, "speed": 1.6, "special_rate": 0.96},
			{"size": 4, "speed": 1.5, "special_rate": 1.8}
		]
	}`
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runSelf(t, func() error {
		return run(path, false, "", 2.0, 0, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "λ′ = 2.000000") {
		t.Errorf("output missing explicit rate:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := runSelf(t, func() error { return run("", false, "", 0, 0.5, false, false) }); err == nil {
		t.Error("no spec and no example should fail")
	}
	if _, err := runSelf(t, func() error { return run("/nonexistent.json", false, "", 0, 0.5, false, false) }); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := runSelf(t, func() error { return run("", true, "", 0, 1.5, false, false) }); err == nil {
		t.Error("frac out of range should fail")
	}
	if _, err := runSelf(t, func() error { return run("", true, "", 1e9, 0, false, false) }); err == nil {
		t.Error("saturating rate should fail")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runSelf(t, func() error { return run(bad, false, "", 1, 0, false, false) }); err == nil {
		t.Error("invalid JSON should fail")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"task_size":1,"servers":[{"size":0,"speed":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runSelf(t, func() error { return run(invalid, false, "", 1, 0, false, false) }); err == nil {
		t.Error("invalid cluster should fail")
	}
}

// End-to-end check through the real binary (exercises flag parsing and
// the non-zero exit path).
func TestBinaryExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "bladeopt")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	ok := exec.Command(bin, "-example")
	if out, err := ok.CombinedOutput(); err != nil {
		t.Fatalf("expected success: %v\n%s", err, out)
	}
	fail := exec.Command(bin)
	if err := fail.Run(); err == nil {
		t.Fatal("no args should exit non-zero")
	}
}

func TestRunBuiltin(t *testing.T) {
	out, err := runSelf(t, func() error {
		return run("", false, "fig14:5", 0, 0.5, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 14 group 5: seven servers of 8 blades at speed 1.3.
	if !strings.Contains(out, "1.30") {
		t.Errorf("builtin group not loaded:\n%s", out)
	}
	if _, err := runSelf(t, func() error {
		return run("", false, "nope", 0, 0.5, false, false)
	}); err == nil {
		t.Error("unknown builtin should fail")
	}
}
