// Command bladeopt computes the optimal distribution of generic tasks
// over a group of heterogeneous blade servers (Li, J. Grid Computing
// 2013) from a JSON cluster specification or a built-in system.
//
// Usage:
//
//	bladeopt -spec cluster.json [-rate 23.52 | -frac 0.5] [-priority] [-json]
//	bladeopt -example                  # the paper's Example 1/2 system
//	bladeopt -builtin fig12:1          # any built-in group (see -builtins)
//	bladeopt -builtins                 # list built-in names
//
// The spec file format (preload_fraction may replace special_rate):
//
//	{
//	  "task_size": 1.0,
//	  "servers": [
//	    {"name": "a", "size": 2, "speed": 1.6, "special_rate": 0.96},
//	    {"size": 4, "speed": 1.5, "preload_fraction": 0.3}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/spec"
)

type output struct {
	Lambda          float64   `json:"lambda"`
	Discipline      string    `json:"discipline"`
	Rates           []float64 `json:"rates"`
	Utilizations    []float64 `json:"utilizations"`
	ResponseTimes   []float64 `json:"response_times"`
	AvgResponseTime float64   `json:"avg_response_time"`
	Phi             float64   `json:"phi"`
}

func main() {
	specPath := flag.String("spec", "", "path to JSON cluster specification")
	example := flag.Bool("example", false, "use the paper's Example 1/2 system")
	builtin := flag.String("builtin", "", "use a built-in system by name (see -builtins)")
	builtins := flag.Bool("builtins", false, "list built-in system names and exit")
	rate := flag.Float64("rate", 0, "total generic arrival rate λ′ (absolute)")
	frac := flag.Float64("frac", 0.5, "λ′ as a fraction of the saturation point (used when -rate is 0)")
	priority := flag.Bool("priority", false, "give special tasks non-preemptive priority (paper §4)")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	flag.Parse()

	if *builtins {
		for _, n := range spec.BuiltinNames() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*specPath, *example, *builtin, *rate, *frac, *priority, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "bladeopt:", err)
		os.Exit(1)
	}
}

func loadCluster(specPath string, example bool, builtin string) (*repro.Cluster, error) {
	switch {
	case example:
		return repro.PaperExampleCluster(), nil
	case builtin != "":
		return spec.Builtin(builtin)
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		doc, err := spec.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		for _, warn := range doc.Warnings() {
			fmt.Fprintln(os.Stderr, "bladeopt: warning:", warn)
		}
		return doc.Build()
	default:
		return nil, fmt.Errorf("need -spec FILE, -example, or -builtin NAME")
	}
}

func run(specPath string, example bool, builtin string, rate, frac float64, priority, asJSON bool) error {
	cluster, err := loadCluster(specPath, example, builtin)
	if err != nil {
		return err
	}
	lambda := rate
	if lambda == 0 { //bladelint:allow floateq -- flag default 0 means derive lambda from -frac, an exact value never computed
		if frac <= 0 || frac >= 1 {
			return fmt.Errorf("-frac %g must be in (0, 1)", frac)
		}
		lambda = frac * cluster.MaxGenericRate()
	}
	d := repro.FCFS
	if priority {
		d = repro.PrioritySpecial
	}
	alloc, err := repro.Optimize(cluster, lambda, d)
	if err != nil {
		return err
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(output{
			Lambda:          lambda,
			Discipline:      d.String(),
			Rates:           alloc.Rates,
			Utilizations:    alloc.Utilizations,
			ResponseTimes:   alloc.ResponseTimes,
			AvgResponseTime: alloc.AvgResponseTime,
			Phi:             alloc.Phi,
		})
	}

	fmt.Printf("λ′ = %.6f (saturation %.6f), discipline: %s\n", lambda, cluster.MaxGenericRate(), d)
	fmt.Printf("minimized average generic response time T′ = %.7f\n\n", alloc.AvgResponseTime)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "i\tm_i\ts_i\tλ′_i\tλ″_i\tρ_i\tT′_i\t")
	for i, s := range cluster.Servers {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.7f\t%.7f\t%.7f\t%.7f\t\n",
			i+1, s.Size, s.Speed, alloc.Rates[i], s.SpecialRate,
			alloc.Utilizations[i], alloc.ResponseTimes[i])
	}
	return tw.Flush()
}
