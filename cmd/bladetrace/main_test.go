package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestGenerateAndStats(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", true, "", 10, 0, 2000, 1, "", "", true, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arrivals:", "observed generic rate", "index of dispersion"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateWriteReadReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := capture(t, func() error {
		return run("", true, "", 15, 0, 3000, 2, path, "", false, false, false)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("", true, "", 0, 0, 0, 3, "", path, true, true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replay:", "generic T′", "completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestBurstyGeneration(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", true, "", 10, 8, 5000, 4, "", "", true, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dispersion line should reveal clear burstiness; just check
	// the stat is printed and the run succeeded.
	if !strings.Contains(out, "index of dispersion") {
		t.Errorf("missing dispersion stat:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("", true, "", 0, 0, 1000, 1, "", "", false, false, false)
	}); err == nil {
		t.Error("no -in and no -rate should fail")
	}
	if _, err := capture(t, func() error {
		return run("", false, "", 10, 0, 1000, 1, "", "", false, false, false)
	}); err == nil {
		t.Error("no cluster source should fail")
	}
	if _, err := capture(t, func() error {
		return run("", true, "", 0, 0, 0, 1, "", "/nonexistent.json", true, false, false)
	}); err == nil {
		t.Error("missing input should fail")
	}
}
