// Command bladetrace generates, inspects, and replays synthetic
// workload traces for a blade-server cluster.
//
// Usage:
//
//	bladetrace -example -rate 23.52 -horizon 1000 -out trace.json   # generate
//	bladetrace -example -rate 20 -burst 4 -out trace.json           # bursty (MMPP)
//	bladetrace -in trace.json -stats                                # inspect
//	bladetrace -in trace.json -example -replay                      # simulate
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	specPath := flag.String("spec", "", "path to JSON cluster specification")
	example := flag.Bool("example", false, "use the paper's Example 1/2 system")
	builtin := flag.String("builtin", "", "use a built-in system by name")
	rate := flag.Float64("rate", 0, "mean generic arrival rate for generation")
	burst := flag.Float64("burst", 0, "burstiness: high/low MMPP rate ratio (0 or 1 = Poisson)")
	horizon := flag.Float64("horizon", 10000, "trace duration")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("out", "", "write generated trace (JSON) to this path")
	in := flag.String("in", "", "read a trace (JSON) from this path")
	stats := flag.Bool("stats", false, "print trace statistics")
	replay := flag.Bool("replay", false, "replay the trace through the optimal dispatch")
	priority := flag.Bool("priority", false, "replay with prioritized special tasks")
	flag.Parse()

	if err := run(*specPath, *example, *builtin, *rate, *burst, *horizon, *seed,
		*out, *in, *stats, *replay, *priority); err != nil {
		fmt.Fprintln(os.Stderr, "bladetrace:", err)
		os.Exit(1)
	}
}

func loadCluster(specPath string, example bool, builtin string) (*repro.Cluster, error) {
	switch {
	case example:
		return repro.PaperExampleCluster(), nil
	case builtin != "":
		return spec.Builtin(builtin)
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		doc, err := spec.Parse(f)
		if err != nil {
			return nil, err
		}
		return doc.Build()
	default:
		return nil, fmt.Errorf("need -spec FILE, -example, or -builtin NAME")
	}
}

func run(specPath string, example bool, builtin string, rate, burst, horizon float64,
	seed int64, out, in string, stats, replay, priority bool) error {
	var tr *trace.Trace
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ReadJSON(f)
		if err != nil {
			return err
		}
	case rate > 0:
		cluster, err := loadCluster(specPath, example, builtin)
		if err != nil {
			return err
		}
		if burst > 1 {
			// MMPP with the requested high/low ratio around the mean:
			// high = 2·rate·b/(b+1), low = 2·rate/(b+1), equal sojourns.
			tr, err = trace.GenerateMMPP(trace.MMPPConfig{
				Group:    cluster,
				RateHigh: 2 * rate * burst / (burst + 1),
				RateLow:  2 * rate / (burst + 1),
				MeanHigh: horizon / 100, MeanLow: horizon / 100,
				Horizon: horizon, Seed: seed,
			})
		} else {
			tr, err = trace.Generate(trace.Config{
				Group: cluster, GenericRate: rate, Horizon: horizon, Seed: seed,
			})
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in FILE or -rate R to generate")
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d arrivals to %s\n", len(tr.Arrivals), out)
	}

	if stats || out == "" && !replay {
		s := tr.Summarize()
		fmt.Printf("arrivals: %d generic + %d special over %.6g s\n", s.Generic, s.Special, tr.Horizon)
		fmt.Printf("observed generic rate: %.4f/s, mean requirement: %.4f\n",
			s.ObservedGenericRate, s.MeanRequirement)
		if iod, err := tr.IndexOfDispersion(tr.Horizon / 100); err == nil {
			fmt.Printf("index of dispersion (window %.4g): %.3f (Poisson ≈ 1)\n", tr.Horizon/100, iod)
		}
	}

	if replay {
		cluster, err := loadCluster(specPath, example, builtin)
		if err != nil {
			return err
		}
		d := repro.FCFS
		if priority {
			d = repro.PrioritySpecial
		}
		lambda := tr.GenericRate
		if lambda == 0 { //bladelint:allow floateq -- zero is the exact sentinel for a trace with no declared rate
			lambda = tr.Summarize().ObservedGenericRate
		}
		alloc, err := repro.Optimize(cluster, lambda, d)
		if err != nil {
			return err
		}
		disp, err := dispatch.NewProbabilistic(alloc.Rates)
		if err != nil {
			return err
		}
		res, err := sim.Replay(sim.ReplayConfig{
			Group: cluster, Discipline: d, Trace: tr,
			Dispatcher: disp, Warmup: tr.Horizon / 10, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("replay: generic T′ = %.5f (analytic at mean rate: %.5f), P95 = %.5f\n",
			res.GenericResponse.Mean(), alloc.AvgResponseTime, res.GenericP95)
		fmt.Printf("completed %d generic, %d special tasks\n", res.CompletedGeneric, res.CompletedSpecial)
	}
	return nil
}
