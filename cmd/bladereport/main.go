// Command bladereport regenerates the reproduction audit: it re-runs
// every pinned-digit, closed-form, optimality, and figure-claim check
// (and optionally the simulation validation) and emits a Markdown
// verdict table. Exit status 1 if any check fails.
//
// Usage:
//
//	bladereport                 # analytical audit (fast)
//	bladereport -sim            # + discrete-event validation
//	bladereport -sim -out REPORT.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	simulate := flag.Bool("sim", false, "include simulation validation (slower)")
	horizon := flag.Float64("horizon", 20000, "simulated duration per replication")
	reps := flag.Int("reps", 8, "simulation replications")
	seed := flag.Int64("seed", 1, "simulation seed")
	points := flag.Int("points", 7, "λ′ grid points for figure claims")
	out := flag.String("out", "", "write the Markdown report to this path (default stdout)")
	flag.Parse()

	r, err := report.Run(report.Options{
		Simulate:   *simulate,
		SimHorizon: *horizon,
		SimReps:    *reps,
		Seed:       *seed,
		Points:     *points,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bladereport:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bladereport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := r.WriteMarkdown(w); err != nil {
		fmt.Fprintln(os.Stderr, "bladereport:", err)
		os.Exit(1)
	}
	if !r.Passed() {
		os.Exit(1)
	}
}
