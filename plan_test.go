package repro

import (
	"math"
	"testing"
)

func TestMaxAdmissibleRateFacade(t *testing.T) {
	c := PaperExampleCluster()
	lim, err := MaxAdmissibleRate(c, FCFS, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lim <= 0 || lim >= c.MaxGenericRate() {
		t.Fatalf("limit %g out of range", lim)
	}
	// The limit's own optimal T′ sits at the SLA.
	alloc, err := Optimize(c, lim, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.AvgResponseTime-0.95) > 1e-3 {
		t.Fatalf("T′ at the limit = %.5f, want ≈ 0.95", alloc.AvgResponseTime)
	}
}

func TestPlanBladesFacade(t *testing.T) {
	c := PaperExampleCluster()
	lambda := 0.6 * c.MaxGenericRate()
	base, err := Optimize(c, lambda, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sla := base.AvgResponseTime * 0.97
	expanded, placements, err := PlanBlades(c, FCFS, lambda, sla, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) == 0 || expanded.TotalBlades() <= c.TotalBlades() {
		t.Fatalf("expected added blades, got %d placements", len(placements))
	}
	after, err := Optimize(expanded, lambda, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if after.AvgResponseTime > sla {
		t.Fatalf("T′ = %.5f > SLA %.5f", after.AvgResponseTime, sla)
	}
}

func TestMinSpeedScaleFacade(t *testing.T) {
	c := PaperExampleCluster()
	lambda := 0.6 * c.MaxGenericRate()
	base, err := Optimize(c, lambda, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	k, err := MinSpeedScale(c, FCFS, lambda, base.AvgResponseTime*0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 1 || k > 10 {
		t.Fatalf("scale %g out of range", k)
	}
}
