package repro

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes the fast example programs end to end and
// checks for key output markers. The slower examples (multicore,
// robustness, powerbudget — each runs many simulation replications or
// outer searches) are compiled by `go build ./...` but only executed
// here when not in -short mode is *not* enough; they are exercised
// manually and in CI nightlies, so this test sticks to the fast three.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		path    string
		markers []string
	}{
		{"./examples/quickstart", []string{"minimized T′", "greedy-marginal-cost"}},
		{"./examples/multicluster", []string{"campus grid", "best saving"}},
		{"./examples/dispatcher", []string{"round-robin", "join-shortest-queue", "P95"}},
		{"./examples/capacityplan", []string{"Admission limits", "Blade plan"}},
		{"./examples/serving", []string{"startup plan v1", "re-solved for", "survivors", "bladed_dispatch_total"}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			cmd := exec.Command("go", "run", c.path)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed after %v: %v\n%s", c.path, time.Since(start), err, out)
			}
			for _, m := range c.markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("%s output missing %q:\n%s", c.path, m, out)
				}
			}
		})
	}
}
