package repro

// Benchmarks for the extension modules (DESIGN.md §6): planning, power
// budgeting, the fleet-wide objective, sojourn quantiles, and M/M/m/K.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/power"
	"repro/internal/queueing"
)

func BenchmarkOptimizeTotalN7(b *testing.B) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeTotal(g, lambda, core.Options{Discipline: queueing.FCFS}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeCappedN7(b *testing.B) {
	g := model.LiExample1Group()
	lambda := 0.4 * g.MaxGenericRate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, lambda, core.Options{
			Discipline: queueing.FCFS, MaxUtilization: 0.6,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxAdmissibleRate(b *testing.B) {
	g := model.LiExample1Group()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.MaxAdmissibleRate(g, queueing.FCFS, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanBlades(b *testing.B) {
	g := model.LiExample1Group()
	lambda := 0.6 * g.MaxGenericRate()
	res, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		b.Fatal(err)
	}
	sla := res.AvgResponseTime * 0.98
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.PlanBlades(g, queueing.FCFS, lambda, sla, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerOptimizeSpeeds(b *testing.B) {
	cfg := power.Config{
		Sizes: []int{2, 4, 8}, SpecialFraction: 0.2, TaskSize: 1,
		GenericRate: 4, Discipline: queueing.FCFS,
		Alpha: 3, Budget: 40, Tolerance: 1e-4, InnerEpsilon: 1e-7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := power.OptimizeSpeeds(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSojournQuantile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.ResponseTimeQuantile(14, 0.8, 1.0, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMMmK(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.SolveMMmK(14, 200, 11.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiClassWaits(b *testing.B) {
	rates := []float64{0.5, 0.8, 1.0, 0.6, 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.MultiClassWaits(8, rates, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}
