package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// The paper's Example 1: seven heterogeneous blade servers, half the
// residual capacity offered as generic load, special tasks without
// priority. Reproduces Table 1's minimized T′ exactly.
func ExampleOptimize() {
	cluster := repro.PaperExampleCluster()
	lambda := 0.5 * cluster.MaxGenericRate()
	alloc, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T' = %.7f\n", alloc.AvgResponseTime)
	fmt.Printf("server 1 gets %.7f tasks/s\n", alloc.Rates[0])
	// Output:
	// T' = 0.8964703
	// server 1 gets 0.6652046 tasks/s
}

// Example 2: the same system with special tasks given non-preemptive
// priority (Table 2).
func ExampleOptimize_priority() {
	cluster := repro.PaperExampleCluster()
	lambda := 0.5 * cluster.MaxGenericRate()
	alloc, err := repro.Optimize(cluster, lambda, repro.PrioritySpecial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T' = %.7f\n", alloc.AvgResponseTime)
	// Output:
	// T' = 0.9209392
}

// Theorem 1's closed form for single-blade servers agrees with the
// general bisection solver.
func ExampleOptimizeClosedForm() {
	cluster, err := repro.NewCluster([]repro.Server{
		{Size: 1, Speed: 2.0, SpecialRate: 0.6},
		{Size: 1, Speed: 1.0, SpecialRate: 0.2},
	}, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	closed, err := repro.OptimizeClosedForm(cluster, 1.0, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	numeric, err := repro.Optimize(cluster, 1.0, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed form T' = %.6f\n", closed.AvgResponseTime)
	fmt.Printf("bisection   T' = %.6f\n", numeric.AvgResponseTime)
	// Output:
	// closed form T' = 1.597168
	// bisection   T' = 1.597168
}

// Evaluating a hand-built distribution without optimizing.
func ExampleAnalyze() {
	cluster := repro.PaperExampleCluster()
	// Spread 14 tasks/s evenly over the seven servers.
	rates := make([]float64, cluster.N())
	for i := range rates {
		rates[i] = 2.0
	}
	t, err := repro.Analyze(cluster, rates, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := repro.Optimize(cluster, 14.0, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equal split T' = %.4f, optimal T' = %.4f\n", t, opt.AvgResponseTime)
	// Output:
	// equal split T' = 1.3460, optimal T' = 0.8262
}

// Admission control: the largest generic load the cluster can accept
// under a response-time SLA.
func ExampleMaxAdmissibleRate() {
	cluster := repro.PaperExampleCluster()
	limit, err := repro.MaxAdmissibleRate(cluster, repro.FCFS, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admit up to %.1f tasks/s under T' <= 1.0 s\n", limit)
	// Output:
	// admit up to 31.3 tasks/s under T' <= 1.0 s
}
