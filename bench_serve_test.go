package repro

// Contention benchmarks for the serving hot path (DESIGN.md §11): the
// lock-free sharded dispatch path versus the fully mutex-serialized
// baseline, under parallel load. cmd/bladebench captures both in the
// BENCH_<date>.json snapshot so the scaling win stays pinned.

import (
	"io"
	"log/slog"
	"runtime"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
)

// benchDispatchParallel drives serve.Server.Decide from GOMAXPROCS
// goroutines. GOMAXPROCS is forced to 8 for the measurement so the
// sharded-versus-serialized comparison exercises real cross-core (or
// oversubscribed) contention regardless of the host's core count; the
// server is constructed after the bump so its shard counts size to it.
// The estimation window is far longer than any run, keeping the
// estimator cold: no admission shedding, every iteration takes the
// full observe → rate-merge → pick → record path.
func benchDispatchParallel(b *testing.B, serialized bool, policy serve.Policy) {
	b.Helper()
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	g := model.LiExample1Group()
	s, err := serve.New(serve.Config{
		Group:             g,
		Lambda:            0.5 * g.MaxGenericRate(),
		Window:            time.Hour,
		Logger:            slog.New(slog.NewTextHandler(io.Discard, nil)),
		SerializedHotPath: serialized,
		Policy:            policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d := s.Decide()
			if d.Rejected || d.Station < 0 {
				b.Errorf("unexpected decision %+v", d)
				return
			}
		}
	})
}

func BenchmarkDispatchParallel(b *testing.B) {
	benchDispatchParallel(b, false, serve.PolicyStatic)
}
func BenchmarkDispatchParallelMutex(b *testing.B) {
	benchDispatchParallel(b, true, serve.PolicyStatic)
}

// BenchmarkDispatchParallelJSQ2 pins the sampled state-aware policy to
// the same contention harness: two depth loads plus a depth increment
// per decision on top of the static path. CI gates it at 0 allocs/op
// and within 1.25× of the static pick.
func BenchmarkDispatchParallelJSQ2(b *testing.B) {
	benchDispatchParallel(b, false, serve.PolicyJSQ)
}

// benchDispatchBatch drives serve.Server.DecideBatch with k decisions
// per call from GOMAXPROCS goroutines, reporting ns PER DECISION (one
// benchmark iteration = one decision, k iterations per DecideBatch) so
// the numbers read directly against benchDispatchParallel. The
// amortization claim in DESIGN.md §16 — one estimator bump, one plan
// load, one RNG reservation per batch — is gated in CI: per-decision
// time at k=8 must beat the single-shot path by ≥1.5× with 0 allocs/op.
func benchDispatchBatch(b *testing.B, k int, policy serve.Policy) {
	b.Helper()
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	g := model.LiExample1Group()
	s, err := serve.New(serve.Config{
		Group:  g,
		Lambda: 0.5 * g.MaxGenericRate(),
		Window: time.Hour,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		Policy: policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var dst [16]serve.Decision
		for pb.Next() {
			// Claim k iterations per batch: the first Next() above plus
			// k-1 more, so b.N counts decisions, not batches.
			n := 1
			for n < k && pb.Next() {
				n++
			}
			s.DecideBatch(dst[:n])
			for i := range dst[:n] {
				if dst[i].Rejected || dst[i].Station < 0 {
					b.Errorf("unexpected decision %+v", dst[i])
					return
				}
			}
		}
	})
}

func BenchmarkDispatchBatch1(b *testing.B)  { benchDispatchBatch(b, 1, serve.PolicyStatic) }
func BenchmarkDispatchBatch4(b *testing.B)  { benchDispatchBatch(b, 4, serve.PolicyStatic) }
func BenchmarkDispatchBatch8(b *testing.B)  { benchDispatchBatch(b, 8, serve.PolicyStatic) }
func BenchmarkDispatchBatch16(b *testing.B) { benchDispatchBatch(b, 16, serve.PolicyStatic) }

// BenchmarkDispatchBatchJSQ2 batches the sampled state-aware policy:
// candidate depths snapshot once per batch (staleness bounded by the
// batch length) and the chosen stations' depth increments land as one
// add per distinct station.
func BenchmarkDispatchBatchJSQ2(b *testing.B) { benchDispatchBatch(b, 8, serve.PolicyJSQ) }
