package repro

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// BladePlacement is one blade added by PlanBlades: the receiving
// server index and the optimal T′ after the addition.
type BladePlacement = plan.BladePlacement

// MaxAdmissibleRate returns the largest total generic rate the cluster
// can admit while the optimally distributed generic response time stays
// at or below slaT — the admission-control limit of the group.
func MaxAdmissibleRate(c *Cluster, d Discipline, slaT float64) (float64, error) {
	return plan.MaxAdmissibleRate(c, d, slaT)
}

// PlanBlades finds a greedy minimal sequence of single-blade additions
// that brings the optimal T′ at load genericRate under slaT, bounded by
// maxBlades. It returns the expanded cluster and the placements; the
// input cluster is not modified.
func PlanBlades(c *Cluster, d Discipline, genericRate, slaT float64, maxBlades int) (*Cluster, []BladePlacement, error) {
	return plan.PlanBlades(c, d, genericRate, slaT, maxBlades)
}

// GenericResponseQuantile returns the p-quantile of the generic
// response time for a feasible allocation under FCFS — percentile SLAs
// on top of the paper's mean-value model ("95 % of generic tasks
// finish within …").
func GenericResponseQuantile(c *Cluster, rates []float64, p float64) (float64, error) {
	return core.GroupGenericQuantile(c, rates, p)
}

// MaxAdmissibleRatePercentile returns the largest generic rate whose
// optimal FCFS distribution keeps the p-quantile of generic response
// times at or below slaT.
func MaxAdmissibleRatePercentile(c *Cluster, p, slaT float64) (float64, error) {
	return plan.MaxAdmissibleRatePercentile(c, p, slaT)
}

// MinSpeedScale returns the smallest uniform speed multiplier k ≥ 1
// (hardware refresh factor) that meets T′ ≤ slaT at the given load,
// searching up to maxScale.
func MinSpeedScale(c *Cluster, d Discipline, genericRate, slaT, maxScale float64) (float64, error) {
	return plan.MinSpeedScale(c, d, genericRate, slaT, maxScale)
}
