// Failover: what happens to the paper's optimal load distribution when
// a server dies? The static split keeps sending ~21% of the stream to a
// dead station; the failure-aware stack (1) detects the outage, (2)
// re-solves the paper's optimization over the survivors with a
// warm-started bracket, and (3) sheds the minimum load when the
// survivors cannot carry the full stream. This example walks through
// each layer: a scripted outage in the simulator, the degraded-mode
// solver directly, and admission control under deep capacity loss.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/failure"
	"repro/internal/sim"
)

func main() {
	cluster := repro.PaperExampleCluster()
	lambda := 0.5 * cluster.MaxGenericRate()
	healthy, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper example at λ′ = %.2f; healthy optimal T′ = %.5f\n", lambda, healthy.AvgResponseTime)
	fmt.Printf("station 6 carries λ′_6 = %.2f (%.0f%% of the stream)\n\n",
		healthy.Rates[5], 100*healthy.Rates[5]/lambda)

	// --- 1. Scripted outage in the simulator -------------------------
	// Station 6 goes fully down over [2500, 6500); both policies replay
	// the identical failure trace and arrival stream.
	scheds := make([]failure.Schedule, cluster.N())
	scheds[5] = failure.Schedule{
		{Time: 2500, Down: cluster.Servers[5].Size},
		{Time: 6500, Down: 0},
	}
	static, err := dispatch.NewProbabilistic(healthy.Rates)
	if err != nil {
		log.Fatal(err)
	}
	reopt, err := dispatch.NewReWeighting(cluster, lambda, core.Options{Discipline: repro.FCFS})
	if err != nil {
		log.Fatal(err)
	}
	run := func(d sim.Dispatcher) *sim.RunResult {
		res, err := sim.Run(sim.Config{
			Group: cluster, Discipline: repro.FCFS, GenericRate: lambda,
			Dispatcher: d, Horizon: 10000, Warmup: 500, Seed: 1,
			FailureSchedules: scheds,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	fmt.Println("scripted outage: station 6 down over [2500, 6500)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "policy\tT′\thealthy-period T′\tdegraded-period T′\tcompleted\t")
	for _, d := range []sim.Dispatcher{static, reopt} {
		r := run(d)
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.2f%%\t\n",
			d.Name(), r.GenericResponse.Mean(), r.GenericHealthy.Mean(),
			r.GenericDegraded.Mean(), 100*r.CompletedGenericFraction())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe static split queues 4000 time units of work on a dead station; the")
	fmt.Println("re-optimizer re-solves on the failure and again on the recovery.")

	// --- 2. The degraded-mode solver directly ------------------------
	up := make([]bool, cluster.N())
	for i := range up {
		up[i] = true
	}
	up[5] = false
	deg, err := core.OptimizeDegraded(cluster, lambda, up,
		core.Options{Discipline: repro.FCFS, WarmPhi: healthy.Phi})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndegraded solve without station 6 (warm-started from healthy φ = %.6f):\n", healthy.Phi)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "station\thealthy λ′_i\tdegraded λ′_i\t")
	for i := range cluster.Servers {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t\n", i+1, healthy.Rates[i], deg.Rates[i])
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T′ rises %.5f → %.5f across %d survivors; nothing shed (load fits)\n",
		healthy.AvgResponseTime, deg.AvgResponseTime, deg.Survivors)

	// --- 3. Admission control when survivors can't carry the load ----
	heavy := 0.9 * cluster.MaxGenericRate()
	up[6] = false // stations 6 and 7 down: the two largest
	deg, err = core.OptimizeDegraded(cluster, heavy, up, core.Options{Discipline: repro.FCFS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat λ′ = %.2f with stations 6–7 down: survivors admit %.4f, shed %.4f (%.1f%%)\n",
		heavy, deg.Admitted, deg.Shed, 100*deg.Shed/heavy)
	fmt.Printf("degraded T′ = %.5f at the admission-controlled load\n", deg.AvgResponseTime)
}
