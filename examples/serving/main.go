// Serving: the full online control loop of bladed, in process. The
// daemon solves the paper's optimal distribution once, serves routing
// decisions from the probabilistic plan, and — when the observed
// arrival rate drifts far from the planned λ′, or a station is marked
// down — re-solves in the background with a warm-started bracket and
// atomically swaps the live plan. This example drives the HTTP API
// against a deterministic clock so the drift trigger is reproducible.
//
// To load-test a real daemon from outside instead, run
// `go run ./cmd/bladed -example -addr :8080` and point the closed-loop
// generator at it: `go run ./cmd/bladeload -addr http://localhost:8080
// -c 64 -d 30s` (add -qps to pace, -json for machine-readable output).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/serve"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func main() {
	cluster := repro.PaperExampleCluster()
	planned := 0.25 * cluster.MaxGenericRate()
	clk := &clock{t: time.Now()}

	s, err := serve.New(serve.Config{
		Group:              cluster,
		Lambda:             planned,
		DriftThreshold:     0.5,
		Window:             time.Second,
		Buckets:            10,
		MinResolveInterval: 0,
		Now:                clk.now,
		Logger:             slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plan := s.Plan()
	fmt.Printf("startup plan v%d: λ′ = %.2f, T′ = %.5f, capacity %.2f\n",
		plan.Version, plan.Lambda, plan.AvgResponseTime, plan.Capacity)

	// --- 1. Dispatch at the planned rate: the plan holds steady ------
	dispatch := func(n int, interarrival time.Duration) (counts []int) {
		counts = make([]int, cluster.N())
		for i := 0; i < n; i++ {
			resp, err := http.Post(ts.URL+"/v1/dispatch", "application/json", nil)
			if err != nil {
				log.Fatal(err)
			}
			var d serve.DispatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			counts[d.Station]++
			clk.advance(interarrival)
		}
		return counts
	}
	counts := dispatch(200, time.Duration(float64(time.Second)/planned))
	fmt.Printf("dispatched 200 tasks at planned rate; station spread %v (plan still v%d)\n",
		counts, s.Plan().Version)

	// --- 2. Traffic triples: drift triggers a background re-solve ----
	surge := 3 * planned
	dispatch(300, time.Duration(float64(time.Second)/surge))
	for i := 0; i < 1000 && s.Plan().Version < 2; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	plan = s.Plan()
	fmt.Printf("after surge to %.1f tasks/s: plan v%d re-solved for λ′ = %.2f, T′ = %.5f\n",
		surge, plan.Version, plan.Lambda, plan.AvgResponseTime)

	// --- 3. A station dies: health-triggered degraded re-solve -------
	body, _ := json.Marshal(map[string]any{"station": 6, "up": false})
	resp, err := http.Post(ts.URL+"/v1/health", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	v := plan.Version
	for i := 0; i < 1000 && s.Plan().Version <= v; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	plan = s.Plan()
	fmt.Printf("station 7 down: plan v%d over %d survivors, λ′_7 = %g\n",
		plan.Version, plan.Survivors, plan.Rates[6])

	// --- 4. Prometheus metrics snapshot ------------------------------
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "bladed_dispatch_total") ||
			strings.HasPrefix(line, "bladed_resolve_total") ||
			strings.HasPrefix(line, "bladed_plan_version") ||
			strings.HasPrefix(line, "bladed_lambda_estimate") {
			fmt.Println("metric:", line)
		}
	}
}
