// Robustness: how wrong does the paper's answer get when its M/M/m
// assumption is violated? The optimizer assumes exponential task sizes;
// here the optimal rates are computed once under that assumption, then
// the system is simulated with smoother (deterministic, Erlang-4) and
// burstier (hyperexponential) requirements, and with deterministic
// smooth routing instead of probabilistic splitting. The Allen–Cunneen
// M/G/m approximation predicts the shift; the simulator measures it.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/queueing"
	"repro/internal/sim"
)

func main() {
	cluster := repro.PaperExampleCluster()
	lambda := 0.5 * cluster.MaxGenericRate()
	alloc, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper example at λ′ = %.2f; analytic (exponential) T′ = %.5f\n\n",
		lambda, alloc.AvgResponseTime)

	prob, err := dispatch.NewProbabilistic(alloc.Rates)
	if err != nil {
		log.Fatal(err)
	}

	hyper, err := sim.NewHyperExp(4)
	if err != nil {
		log.Fatal(err)
	}
	dists := []sim.ServiceDistribution{
		sim.Deterministic{},
		sim.ErlangK{K: 4},
		sim.Exponential{},
		hyper,
	}

	// Allen–Cunneen prediction for the whole group: apply the (1+C²)/2
	// scaling to each server's waiting term at the optimal rates.
	predict := func(scv float64) float64 {
		var total float64
		for i, s := range cluster.Servers {
			xbar := s.ServiceMean(cluster.TaskSize)
			rho := s.Utilization(alloc.Rates[i], cluster.TaskSize)
			w, err := queueing.MGmWait(s.Size, rho, xbar, scv)
			if err != nil {
				log.Fatal(err)
			}
			total += alloc.Rates[i] / lambda * (xbar + w)
		}
		return total
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "service distribution\tSCV\tAllen–Cunneen T′\tsimulated T′\t95% CI ±\t")
	for _, d := range dists {
		rep, err := sim.RunReplications(sim.Config{
			Group: cluster, Discipline: repro.FCFS, GenericRate: lambda,
			Dispatcher: prob, Horizon: 20000, Warmup: 2000, Seed: 31, Service: d,
		}, 8, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.5f\t%.5f\t%.5f\t\n",
			d.Name(), d.SCV(), predict(d.SCV()), rep.GenericT.Mean, rep.GenericT.HalfWidth)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Smooth deterministic routing of the same rates.
	wrr, err := dispatch.NewWeightedRoundRobin(alloc.Rates)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sim.RunReplications(sim.Config{
		Group: cluster, Discipline: repro.FCFS, GenericRate: lambda,
		Dispatcher: wrr, Horizon: 20000, Warmup: 2000, Seed: 31,
	}, 8, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweighted-round-robin routing (same rates, exponential service): T′ = %s\n", rep.GenericT)
	fmt.Printf("vs probabilistic %.5f — smoothing the substreams helps slightly;\n", alloc.AvgResponseTime)
	fmt.Println("the paper's model is thus a mild upper bound for deterministic routing.")

}
