// Capacityplan: the inverse problems a provider actually faces on top
// of the paper's forward model — (1) how much generic load can this
// group admit under a response-time SLA, (2) how many blades must be
// added to absorb projected growth, and (3) what uniform hardware
// refresh achieves the same thing. All answers evaluate the optimally
// distributed system, i.e. the frontier of the paper's policy.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cluster := repro.PaperExampleCluster()
	fmt.Printf("paper example system: 7 servers, %d blades, λ′_max = %.2f tasks/s\n\n",
		cluster.TotalBlades(), cluster.MaxGenericRate())

	// 1. Admission control: SLA frontier.
	fmt.Println("Admission limits (optimal distribution, FCFS vs priority):")
	for _, sla := range []float64{0.90, 0.95, 1.00, 1.10, 1.25} {
		fc, err := repro.MaxAdmissibleRate(cluster, repro.FCFS, sla)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := repro.MaxAdmissibleRate(cluster, repro.PrioritySpecial, sla)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SLA T′ ≤ %.2f s: admit λ′ ≤ %6.2f (FCFS) / %6.2f (priority) — %.0f%% / %.0f%% of saturation\n",
			sla, fc, pr, fc/cluster.MaxGenericRate()*100, pr/cluster.MaxGenericRate()*100)
	}

	// 2. Growth planning: demand rises 30 % beyond today's 60 % load.
	today := 0.6 * cluster.MaxGenericRate()
	projected := 1.3 * today
	alloc, err := repro.Optimize(cluster, today, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	sla := alloc.AvgResponseTime // hold today's response time as the SLA
	fmt.Printf("\nToday: λ′ = %.2f, optimal T′ = %.4f s (adopted as SLA)\n", today, sla)
	fmt.Printf("Projected demand: λ′ = %.2f (+30%%)\n", projected)

	expanded, placements, err := repro.PlanBlades(cluster, repro.FCFS, projected, sla, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Blade plan: add %d blades to hold the SLA:\n", len(placements))
	perServer := make(map[int]int)
	for _, p := range placements {
		perServer[p.Server]++
	}
	for i := 0; i < cluster.N(); i++ {
		if perServer[i] > 0 {
			fmt.Printf("  server %d (%.1f GIPS blades): +%d blades (%d → %d)\n",
				i+1, cluster.Servers[i].Speed, perServer[i],
				cluster.Servers[i].Size, expanded.Servers[i].Size)
		}
	}
	finalT, err := repro.Analyze(expanded, mustOptimize(expanded, projected).Rates, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resulting T′ at projected load: %.4f s (SLA %.4f)\n", finalT, sla)

	// 3. Alternative: uniform hardware refresh instead of more blades.
	k, err := repro.MinSpeedScale(cluster, repro.FCFS, projected, sla, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOr refresh every blade to %.1f%% of current speed to hold the same SLA.\n", k*100)
}

func mustOptimize(c *repro.Cluster, lambda float64) *repro.Allocation {
	a, err := repro.Optimize(c, lambda, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	return a
}
