// Dispatcher: how a cloud provider would deploy the paper's result.
// A synthetic workload trace is generated once (the stand-in for a
// production arrival log), then replayed through four online dispatch
// policies on the paper's example system. The optimal probabilistic
// split realizes the paper's model; round-robin and the state-aware
// heuristics are the operational alternatives.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	cluster := repro.PaperExampleCluster()
	lambda := 0.6 * cluster.MaxGenericRate()

	// Optimal rates from the paper's algorithm.
	alloc, err := repro.Optimize(cluster, lambda, repro.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper example system at λ′ = %.3f; analytic optimal T′ = %.5f\n\n",
		lambda, alloc.AvgResponseTime)

	// One shared trace: every policy sees the identical arrival
	// sequence, so differences are policy, not noise.
	tr, err := trace.Generate(trace.Config{
		Group: cluster, GenericRate: lambda, Horizon: 30000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := tr.Summarize()
	fmt.Printf("trace: %d generic + %d special arrivals over %.0f s\n\n",
		stats.Generic, stats.Special, tr.Horizon)

	prob, err := dispatch.NewProbabilistic(alloc.Rates)
	if err != nil {
		log.Fatal(err)
	}
	policies := []sim.Dispatcher{prob, &dispatch.RoundRobin{}, dispatch.JSQ{}, dispatch.LeastExpectedWait{}}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "policy\tmean T′\tP95\tvs analytic optimum\t")
	for _, p := range policies {
		res, err := sim.Replay(sim.ReplayConfig{
			Group: cluster, Discipline: repro.FCFS,
			Trace: tr, Dispatcher: p, Warmup: 3000, Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		mean := res.GenericResponse.Mean()
		fmt.Fprintf(tw, "%s\t%.5f\t%.5f\t%+.2f%%\t\n",
			p.Name(), mean, res.GenericP95,
			(mean-alloc.AvgResponseTime)/alloc.AvgResponseTime*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nState-aware policies (JSQ, least-expected-wait) can beat the static optimal")
	fmt.Println("split because they react to queue fluctuations; the paper's split is optimal")
	fmt.Println("among state-oblivious (probabilistic) policies and needs no feedback channel.")
}
