// Quickstart: define a small heterogeneous blade-server cluster,
// compute the optimal generic-task distribution, and inspect the
// result — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Three blade servers: a small fast one, a medium one, and a large
	// slow one, each already busy with its own special tasks.
	cluster, err := repro.NewCluster([]repro.Server{
		{Size: 4, Speed: 1.6, SpecialRate: 1.9},  // ρ″ ≈ 0.30
		{Size: 8, Speed: 1.2, SpecialRate: 2.9},  // ρ″ ≈ 0.30
		{Size: 16, Speed: 0.9, SpecialRate: 4.3}, // ρ″ ≈ 0.30
	}, 1.0) // tasks average 1 giga-instruction
	if err != nil {
		log.Fatal(err)
	}

	// Offer half of the remaining capacity as generic load.
	lambda := 0.5 * cluster.MaxGenericRate()
	fmt.Printf("cluster saturation point λ′_max = %.3f tasks/s; offering λ′ = %.3f\n\n",
		cluster.MaxGenericRate(), lambda)

	for _, d := range []repro.Discipline{repro.FCFS, repro.PrioritySpecial} {
		alloc, err := repro.Optimize(cluster, lambda, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("discipline %-9s  minimized T′ = %.6f s\n", d, alloc.AvgResponseTime)
		for i, rate := range alloc.Rates {
			fmt.Printf("  server %d: λ′_%d = %.4f  ρ_%d = %.4f  T′_%d = %.4f\n",
				i+1, i+1, rate, i+1, alloc.Utilizations[i], i+1, alloc.ResponseTimes[i])
		}
		fmt.Println()
	}

	// Compare with the most common naive policy: proportional to
	// residual capacity (all servers equally utilized).
	for _, b := range repro.Baselines(repro.FCFS) {
		rates, err := b.Allocate(cluster, lambda)
		if err != nil {
			fmt.Printf("baseline %-22s  infeasible: %v\n", b.Name(), err)
			continue
		}
		t, err := repro.Analyze(cluster, rates, repro.FCFS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %-22s  T′ = %.6f s\n", b.Name(), t)
	}
}
