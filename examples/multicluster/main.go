// Multicluster: the paper notes its model applies unchanged to "a
// cluster of traditional heterogeneous clusters of PCs or workstations".
// This example models a university grid of four PC clusters of
// different generations, sweeps the offered generic load from light to
// near saturation, and quantifies how much the optimal distribution
// saves over naive policies at each load level — reproducing the
// qualitative shape of the paper's Figs. 4–11 on a realistic scenario.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	// Four PC clusters: newer clusters have fewer but faster machines.
	// Each cluster runs local jobs (special tasks) submitted by its
	// owning department; the grid scheduler distributes campus-wide
	// batch jobs (generic tasks).
	grid, err := repro.NewCluster([]repro.Server{
		{Size: 64, Speed: 0.8, SpecialRate: 20.5}, // 2019 commodity nodes, ρ″ ≈ 0.40
		{Size: 48, Speed: 1.1, SpecialRate: 13.2}, // 2021 nodes, ρ″ ≈ 0.25
		{Size: 32, Speed: 1.5, SpecialRate: 9.6},  // 2023 nodes, ρ″ ≈ 0.20
		{Size: 16, Speed: 2.2, SpecialRate: 3.5},  // 2025 flagship nodes, ρ″ ≈ 0.10
	}, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus grid: %d clusters, %d machines, saturation λ′_max = %.2f jobs/s\n\n",
		grid.N(), grid.TotalBlades(), grid.MaxGenericRate())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "load\tλ′\toptimal T′\tequal-util T′\tfastest-first T′\tbest saving\t")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95} {
		lambda := frac * grid.MaxGenericRate()
		opt, err := repro.Optimize(grid, lambda, repro.FCFS)
		if err != nil {
			log.Fatal(err)
		}
		worst := opt.AvgResponseTime
		row := []string{fmt.Sprintf("%.0f%%", frac*100), fmt.Sprintf("%.2f", lambda),
			fmt.Sprintf("%.4f", opt.AvgResponseTime)}
		for _, b := range repro.Baselines(repro.FCFS) {
			name := b.Name()
			if name != "equal-utilization" && name != "fastest-first" {
				continue
			}
			rates, err := b.Allocate(grid, lambda)
			var cell string
			if err != nil {
				cell = "infeasible"
			} else {
				t, err := repro.Analyze(grid, rates, repro.FCFS)
				if err != nil {
					log.Fatal(err)
				}
				cell = fmt.Sprintf("%.4f", t)
				worst = math.Max(worst, t)
			}
			row = append(row, cell)
		}
		row = append(row, fmt.Sprintf("%.1f%%", (worst-opt.AvgResponseTime)/worst*100))
		for _, c := range row {
			fmt.Fprintf(tw, "%s\t", c)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nKey effect from the paper: the optimizer's advantage grows as λ′ approaches")
	fmt.Println("saturation — exactly where a production grid operates during deadline weeks.")
}
