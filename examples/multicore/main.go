// Multicore: the paper's second alternative reading — "a cluster of
// heterogeneous multicore server processors". This example models a
// rack of four multicore hosts running latency-sensitive resident
// services (special tasks, given non-preemptive priority) alongside a
// shared batch queue (generic tasks). It shows the price generic work
// pays for the priority of resident services (Theorem 2's 1/(1−ρ″)
// factor) as the resident load grows, and verifies the analytic
// prediction against the discrete-event simulator.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	build := func(residentFraction float64) *repro.Cluster {
		mk := func(cores int, speed float64) repro.Server {
			return repro.Server{
				Size:  cores,
				Speed: speed,
				// Resident services consume residentFraction of each
				// host's capacity: λ″ = y·m·s/r̄.
				SpecialRate: residentFraction * float64(cores) * speed,
			}
		}
		c, err := repro.NewCluster([]repro.Server{
			mk(8, 2.0),  // high-clock host
			mk(16, 1.4), // balanced host
			mk(32, 1.0), // throughput host
			mk(64, 0.7), // many-core host
		}, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	fmt.Println("Rack of 4 heterogeneous multicore hosts; resident services have priority.")
	fmt.Println("Batch stream fixed at λ′ = 30 jobs/s; resident load y swept.")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "resident y\tλ′_max\tbatch T′ (FCFS)\tbatch T′ (priority)\tpriority penalty\t")
	const lambda = 30.0
	for _, y := range []float64{0.10, 0.20, 0.30, 0.40, 0.50} {
		rack := build(y)
		fc, err := repro.Optimize(rack, lambda, repro.FCFS)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := repro.Optimize(rack, lambda, repro.PrioritySpecial)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.0f%%\t%.1f\t%.5f\t%.5f\t%+.2f%%\t\n",
			y*100, rack.MaxGenericRate(), fc.AvgResponseTime, pr.AvgResponseTime,
			(pr.AvgResponseTime-fc.AvgResponseTime)/fc.AvgResponseTime*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Validate one operating point end to end in the simulator.
	fmt.Println("\nSimulation check at y = 30% (10 replications):")
	rack := build(0.30)
	alloc, err := repro.Optimize(rack, lambda, repro.PrioritySpecial)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Simulate(rack, alloc.Rates, repro.PrioritySpecial, 20000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  analytic T′ = %.5f, simulated T′ = %s\n", alloc.AvgResponseTime, res.GenericT)
	fmt.Printf("  resident-service response (simulated): %s\n", res.SpecialT)
}
