// Powerbudget: the paper's conclusions say server speed is the
// strongest lever on T′ — and speed costs power (≈ s³ per blade in
// CMOS). This example provisions a fixed chassis mix under a rack
// power budget: it compares spending the budget uniformly per blade
// against the optimized speed assignment, across load levels, showing
// the light-load regime where concentrating power into fewer, faster
// blades wins and the heavy-load regime where capacity forces it to
// spread back out.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	sizes := []int{2, 4, 8, 16} // fixed chassis mix
	const (
		alpha  = 3.0
		budget = 120.0
		yLoad  = 0.2 // preload fraction per server
	)
	fmt.Printf("chassis sizes %v, power budget %.0f W·(GIPS)³-equivalents, α = %.0f\n\n",
		sizes, budget, alpha)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "λ′\tuniform T′\toptimized T′\timprovement\toptimized speeds\t")
	for _, lambda := range []float64{2, 6, 12, 18, 22} {
		cfg := repro.PowerConfig{
			Sizes:           sizes,
			SpecialFraction: yLoad,
			TaskSize:        1.0,
			GenericRate:     lambda,
			Discipline:      repro.FCFS,
			Alpha:           alpha,
			Budget:          budget,
		}
		res, err := repro.OptimizeSpeeds(cfg)
		if err != nil {
			log.Fatal(err)
		}
		uniform := cfg.Evaluate(repro.UniformBladePower(sizes, alpha, budget))
		speeds := "["
		for i, s := range res.Speeds {
			if i > 0 {
				speeds += " "
			}
			speeds += fmt.Sprintf("%.2f", s)
		}
		speeds += "]"
		fmt.Fprintf(tw, "%.0f\t%.5f\t%.5f\t%.1f%%\t%s\t\n",
			lambda, uniform, res.Allocation.AvgResponseTime,
			(uniform-res.Allocation.AvgResponseTime)/uniform*100, speeds)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAt light load the optimizer starves the big chassis and overclocks the small")
	fmt.Println("ones (service time dominates); as λ′ grows it re-spreads the budget because")
	fmt.Println("aggregate capacity Σ m·s — maximized by uniform speeds — becomes binding.")
}
