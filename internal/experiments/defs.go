// Package experiments defines one runnable experiment per table and
// figure in the paper's evaluation (§5): the exact parameter sets, a
// parallel sweep runner, renderers, and the published values used as
// regression oracles.
//
// The paper's figures plot the minimized T′ against the total generic
// arrival rate λ′ but do not list grid points; we sweep λ′ over
// GridPoints evenly spaced fractions of the smallest saturation point
// among a figure's series so every curve shares the grid (see
// DESIGN.md §3).
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/queueing"
)

// Kind distinguishes single-operating-point tables from λ′ sweeps.
type Kind int

const (
	// Table experiments solve one operating point and report
	// per-server columns (Tables 1 and 2).
	Table Kind = iota
	// Figure experiments sweep λ′ and report one T′ series per group
	// (Figs. 4–15).
	Figure
)

// Series is one curve of a figure (or the single system of a table).
type Series struct {
	// Label names the curve as the paper does ("Group 1", "s = 1.6", …).
	Label string
	// Group is the blade-server system of this curve.
	Group *model.Group
}

// Experiment is one table or figure of the paper.
type Experiment struct {
	// ID is the key used everywhere: "table1", "table2", "fig4" … "fig15".
	ID string
	// Title describes what the paper shows.
	Title string
	// Kind is Table or Figure.
	Kind Kind
	// Discipline of special tasks in this experiment.
	Discipline queueing.Discipline
	// Series holds the system(s) evaluated.
	Series []Series
	// LambdaFraction applies to tables: λ′ = fraction · λ′_max.
	LambdaFraction float64
	// GridPoints applies to figures: number of λ′ grid points.
	GridPoints int
	// GridLoFrac/GridHiFrac bound the sweep as fractions of the
	// smallest λ′_max among the series.
	GridLoFrac, GridHiFrac float64
}

// DefaultGridPoints is the number of λ′ samples per figure curve.
const DefaultGridPoints = 19

// paperSpeeds returns s_i = base − 0.1·i for i = 1..n.
func paperSpeeds(n int, base float64) []float64 {
	out := make([]float64, n)
	for i := 1; i <= n; i++ {
		out[i-1] = base - 0.1*float64(i)
	}
	return out
}

// mustGroup wraps model.PaperGroup for the fixed parameter sets below,
// which are constants and cannot fail.
func mustGroup(sizes []int, speeds []float64, rbar, y float64) *model.Group {
	g, err := model.PaperGroup(sizes, speeds, rbar, y)
	if err != nil {
		panic(fmt.Sprintf("experiments: invalid built-in parameters: %v", err))
	}
	return g
}

// uniformSpeeds returns n copies of s.
func uniformSpeeds(n int, s float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// uniformSizes returns n copies of m.
func uniformSizes(n, m int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = m
	}
	return out
}

// sizeGroupsFig45 are the five size vectors of Figs. 4–5 (total blades
// 49, 53, 56, 59, 63).
var sizeGroupsFig45 = [][]int{
	{1, 3, 5, 7, 9, 11, 13},
	{1, 3, 5, 8, 10, 12, 14},
	{2, 4, 6, 8, 10, 12, 14},
	{3, 5, 7, 8, 10, 12, 14},
	{3, 5, 7, 9, 11, 13, 15},
}

// sizeGroupsFig1213 are the five size vectors of Figs. 12–13 (equal
// totals m = 56, decreasing heterogeneity).
var sizeGroupsFig1213 = [][]int{
	{1, 2, 2, 8, 14, 14, 15},
	{2, 4, 6, 8, 10, 12, 14},
	{4, 6, 6, 8, 10, 10, 12},
	{6, 6, 8, 8, 8, 10, 10},
	{8, 8, 8, 8, 8, 8, 8},
}

// speedGroupsFig1415 are the five speed vectors of Figs. 14–15 (equal
// total speed 10.4 per blade-set, decreasing heterogeneity).
var speedGroupsFig1415 = [][]float64{
	{0.1, 0.5, 0.9, 1.3, 1.7, 2.1, 2.5},
	{0.4, 0.7, 1.0, 1.3, 1.6, 1.9, 2.2},
	{0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9},
	{1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6},
	{1.3, 1.3, 1.3, 1.3, 1.3, 1.3, 1.3},
}

// build assembles the full experiment registry. Each call returns
// fresh groups, so callers may mutate them freely.
func build() []*Experiment {
	canonicalSizes := []int{2, 4, 6, 8, 10, 12, 14} // m_i = 2i

	var exps []*Experiment

	for _, tc := range []struct {
		id string
		d  queueing.Discipline
	}{{"table1", queueing.FCFS}, {"table2", queueing.Priority}} {
		exps = append(exps, &Experiment{
			ID:    tc.id,
			Title: fmt.Sprintf("Optimal distribution at λ′ = 0.5·λ′_max, special tasks %s", disciplineNoun(tc.d)),
			Kind:  Table, Discipline: tc.d,
			Series:         []Series{{Label: "Example system", Group: model.LiExample1Group()}},
			LambdaFraction: 0.5,
		})
	}

	figure := func(num int, d queueing.Discipline, title string, series []Series) *Experiment {
		return &Experiment{
			ID:    fmt.Sprintf("fig%d", num),
			Title: title,
			Kind:  Figure, Discipline: d,
			Series:     series,
			GridPoints: DefaultGridPoints,
			GridLoFrac: 0.05, GridHiFrac: 0.95,
		}
	}

	// Figs. 4–5: impact of server sizes.
	sizeSeries := func() []Series {
		out := make([]Series, len(sizeGroupsFig45))
		for i, sizes := range sizeGroupsFig45 {
			out[i] = Series{
				Label: fmt.Sprintf("Group %d (m=%d)", i+1, sumInts(sizes)),
				Group: mustGroup(sizes, paperSpeeds(7, 1.7), 1.0, 0.3),
			}
		}
		return out
	}
	exps = append(exps,
		figure(4, queueing.FCFS, "T′ vs λ′ for five size groups, special tasks without priority", sizeSeries()),
		figure(5, queueing.Priority, "T′ vs λ′ for five size groups, special tasks with priority", sizeSeries()))

	// Figs. 6–7: impact of server speeds (s_i = s − 0.1i).
	speedSeries := func() []Series {
		var out []Series
		for _, s := range []float64{1.5, 1.6, 1.7, 1.8, 1.9} {
			out = append(out, Series{
				Label: fmt.Sprintf("s = %.1f", s),
				Group: mustGroup(canonicalSizes, paperSpeeds(7, s), 1.0, 0.3),
			})
		}
		return out
	}
	exps = append(exps,
		figure(6, queueing.FCFS, "T′ vs λ′ and base speed s, special tasks without priority", speedSeries()),
		figure(7, queueing.Priority, "T′ vs λ′ and base speed s, special tasks with priority", speedSeries()))

	// Figs. 8–9: impact of the task execution requirement r̄.
	rbarSeries := func() []Series {
		var out []Series
		for _, r := range []float64{0.8, 0.9, 1.0, 1.1, 1.2} {
			out = append(out, Series{
				Label: fmt.Sprintf("r̄ = %.1f", r),
				Group: mustGroup(canonicalSizes, paperSpeeds(7, 1.7), r, 0.3),
			})
		}
		return out
	}
	exps = append(exps,
		figure(8, queueing.FCFS, "T′ vs λ′ and task requirement r̄, special tasks without priority", rbarSeries()),
		figure(9, queueing.Priority, "T′ vs λ′ and task requirement r̄, special tasks with priority", rbarSeries()))

	// Figs. 10–11: impact of special-task arrival rates (preload y).
	ySeries := func() []Series {
		var out []Series
		for _, y := range []float64{0.20, 0.25, 0.30, 0.35, 0.40} {
			out = append(out, Series{
				Label: fmt.Sprintf("y = %.2f", y),
				Group: mustGroup(canonicalSizes, paperSpeeds(7, 1.7), 1.0, y),
			})
		}
		return out
	}
	exps = append(exps,
		figure(10, queueing.FCFS, "T′ vs λ′ and special-load fraction y, special tasks without priority", ySeries()),
		figure(11, queueing.Priority, "T′ vs λ′ and special-load fraction y, special tasks with priority", ySeries()))

	// Figs. 12–13: server size heterogeneity (uniform speed 1.3).
	sizeHetSeries := func() []Series {
		out := make([]Series, len(sizeGroupsFig1213))
		for i, sizes := range sizeGroupsFig1213 {
			out[i] = Series{
				Label: fmt.Sprintf("Group %d", i+1),
				Group: mustGroup(sizes, uniformSpeeds(7, 1.3), 1.0, 0.3),
			}
		}
		return out
	}
	exps = append(exps,
		figure(12, queueing.FCFS, "Size-heterogeneity ablation, special tasks without priority", sizeHetSeries()),
		figure(13, queueing.Priority, "Size-heterogeneity ablation, special tasks with priority", sizeHetSeries()))

	// Figs. 14–15: server speed heterogeneity (uniform size 8).
	speedHetSeries := func() []Series {
		out := make([]Series, len(speedGroupsFig1415))
		for i, speeds := range speedGroupsFig1415 {
			out[i] = Series{
				Label: fmt.Sprintf("Group %d", i+1),
				Group: mustGroup(uniformSizes(7, 8), speeds, 1.0, 0.3),
			}
		}
		return out
	}
	exps = append(exps,
		figure(14, queueing.FCFS, "Speed-heterogeneity ablation, special tasks without priority", speedHetSeries()),
		figure(15, queueing.Priority, "Speed-heterogeneity ablation, special tasks with priority", speedHetSeries()))

	return exps
}

// registry builds the experiment list exactly once (validating every
// group costs real work, and CLI paths used to pay it three times per
// lookup). Accessors hand out copies, preserving the historical
// contract that callers may freely mutate what they get back.
var registry = sync.OnceValue(build)

// registryIndex maps ID → position in the registry, built alongside it.
var registryIndex = sync.OnceValue(func() map[string]int {
	idx := make(map[string]int, len(registry()))
	for i, e := range registry() {
		idx[e.ID] = i
	}
	return idx
})

// snapshot returns an independent copy of a registry entry: callers own
// the result outright, including the groups (tests tune GridPoints,
// extensions rescale speeds, etc.).
func snapshot(e *Experiment) *Experiment {
	out := *e
	out.Series = make([]Series, len(e.Series))
	for i, s := range e.Series {
		out.Series[i] = Series{Label: s.Label, Group: s.Group.Clone()}
	}
	return &out
}

// All returns every experiment in paper order. The returned experiments
// are independent copies of the cached registry.
func All() []*Experiment {
	reg := registry()
	out := make([]*Experiment, len(reg))
	for i, e := range reg {
		out[i] = snapshot(e)
	}
	return out
}

// IDs returns the experiment IDs in paper order.
func IDs() []string {
	reg := registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// ByID returns the experiment with the given ID (an independent copy,
// like All).
func ByID(id string) (*Experiment, error) {
	if i, ok := registryIndex()[id]; ok {
		return snapshot(registry()[i]), nil
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// Grid returns the λ′ sweep values of a figure experiment: GridPoints
// evenly spaced fractions in [GridLoFrac, GridHiFrac] of the smallest
// λ′_max among the series.
func (e *Experiment) Grid() []float64 {
	if e.Kind != Figure {
		return nil
	}
	minMax := e.Series[0].Group.MaxGenericRate()
	for _, s := range e.Series[1:] {
		if m := s.Group.MaxGenericRate(); m < minMax {
			minMax = m
		}
	}
	pts := e.GridPoints
	if pts < 2 {
		pts = DefaultGridPoints
	}
	grid := make([]float64, pts)
	for i := range grid {
		frac := e.GridLoFrac + (e.GridHiFrac-e.GridLoFrac)*float64(i)/float64(pts-1)
		grid[i] = frac * minMax
	}
	return grid
}

func sumInts(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func disciplineNoun(d queueing.Discipline) string {
	if d == queueing.Priority {
		return "with priority"
	}
	return "without priority"
}
