package experiments

import (
	"bytes"
	"math"
	"testing"
)

func TestRunExtensionUnknown(t *testing.T) {
	if _, err := RunExtension("ext-nope", 5); err == nil {
		t.Fatal("unknown extension should fail")
	}
}

func TestExtensionIDs(t *testing.T) {
	ids := ExtensionIDs()
	if len(ids) != 2 {
		t.Fatalf("%d extension ids", len(ids))
	}
	for _, id := range ids {
		if _, err := RunExtension(id, 5); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestExtObjectivesOrdering(t *testing.T) {
	res, err := RunExtension(ExtObjectives, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("%d series", len(res.Values))
	}
	genT := res.Values[0]   // generic T′ under the paper's objective
	genAll := res.Values[1] // all-task average it induces
	fleetT := res.Values[2] // generic T′ under the fleet objective
	fleetAll := res.Values[3]
	for gi := range res.Grid {
		// Each optimizer wins on its own metric.
		if genT[gi] > fleetT[gi]+1e-9 {
			t.Errorf("grid %d: paper objective loses its own metric (%.9f > %.9f)", gi, genT[gi], fleetT[gi])
		}
		if fleetAll[gi] > genAll[gi]+1e-9 {
			t.Errorf("grid %d: fleet objective loses its own metric (%.9f > %.9f)", gi, fleetAll[gi], genAll[gi])
		}
	}
}

func TestExtCapsOrdering(t *testing.T) {
	res, err := RunExtension(ExtCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("%d series", len(res.Values))
	}
	for gi := range res.Grid {
		// Tighter caps can only hurt (or leave the chart).
		prev := res.Values[0][gi] // uncapped
		for ci := 1; ci < 4; ci++ {
			v := res.Values[ci][gi]
			if math.IsInf(v, 1) {
				continue // cap made the load infeasible
			}
			if v < prev-1e-9 {
				t.Errorf("grid %d cap %d: capped %.9f beats looser %.9f", gi, ci, v, prev)
			}
			prev = v
		}
	}
	// The tightest cap must actually become infeasible at high load:
	// ρ ≤ 0.7 leaves 0.4·67.2 = 26.9 of headroom < 0.95·47 = 44.7.
	last := len(res.Grid) - 1
	if !math.IsInf(res.Values[3][last], 1) {
		t.Errorf("ρ ≤ 0.7 should be infeasible at the top of the grid, got %g", res.Values[3][last])
	}
}

func TestExtensionRenders(t *testing.T) {
	res, err := RunExtension(ExtCaps, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WritePlot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
