package experiments

import "testing"

// TestRegistrySnapshotIndependence pins the contract of the cached
// registry: All and ByID hand out independent deep copies, so a caller
// mutating grid parameters or server definitions (as the extension
// tests and CLI paths do) cannot poison later lookups.
func TestRegistrySnapshotIndependence(t *testing.T) {
	a, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	origPoints := a.GridPoints
	origSpeed := a.Series[0].Group.Servers[0].Speed
	a.GridPoints = 3
	a.Series[0].Group.Servers[0].Speed = 999
	a.Series[0].Group.TaskSize *= 7

	b, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if b.GridPoints != origPoints {
		t.Errorf("ByID after mutation: GridPoints = %d, want %d", b.GridPoints, origPoints)
	}
	if b.Series[0].Group.Servers[0].Speed != origSpeed {
		t.Errorf("ByID after mutation: speed = %g, want %g", b.Series[0].Group.Servers[0].Speed, origSpeed)
	}
	if a.Series[0].Group == b.Series[0].Group {
		t.Error("ByID returned aliased groups across calls")
	}

	for _, e := range All() {
		if e.ID == "fig4" && e.Series[0].Group.Servers[0].Speed != origSpeed {
			t.Errorf("All after mutation: speed = %g, want %g", e.Series[0].Group.Servers[0].Speed, origSpeed)
		}
	}

	// Two All() calls never alias each other's series slices or groups.
	x, y := All(), All()
	for i := range x {
		if x[i] == y[i] {
			t.Fatalf("All aliases experiment %s across calls", x[i].ID)
		}
		for j := range x[i].Series {
			if x[i].Series[j].Group == y[i].Series[j].Group {
				t.Fatalf("All aliases group %s/%d across calls", x[i].ID, j)
			}
		}
	}
}
