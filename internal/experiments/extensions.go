package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
)

// Extension experiments go beyond the paper's evaluation but reuse its
// harness: each returns a FigureResult renderable as text, CSV, or an
// ASCII plot. They are addressed by the IDs below through
// RunExtension.
const (
	// ExtObjectives compares the paper's generic-only objective with
	// the fleet-wide (all-task) objective across λ′ on the example
	// system: the generic curve of each optimizer, plus the all-task
	// average each induces.
	ExtObjectives = "ext-objectives"
	// ExtCaps shows the price of operational utilization caps: the
	// uncapped optimal T′ versus optima under ρ ≤ 0.9 / 0.8 / 0.7.
	ExtCaps = "ext-caps"
)

// ExtensionIDs lists the extension experiment IDs.
func ExtensionIDs() []string { return []string{ExtObjectives, ExtCaps} }

// RunExtension runs an extension experiment at the given grid
// resolution (0 means DefaultGridPoints).
func RunExtension(id string, points int) (*FigureResult, error) {
	if points < 2 {
		points = DefaultGridPoints
	}
	switch id {
	case ExtObjectives:
		return runObjectives(points)
	case ExtCaps:
		return runCaps(points)
	default:
		return nil, fmt.Errorf("experiments: unknown extension %q (known: %v)", id, ExtensionIDs())
	}
}

// extGrid builds a λ′ grid over the example system.
func extGrid(g *model.Group, points int) []float64 {
	max := g.MaxGenericRate()
	grid := make([]float64, points)
	for i := range grid {
		frac := 0.05 + 0.9*float64(i)/float64(points-1)
		grid[i] = frac * max
	}
	return grid
}

func runObjectives(points int) (*FigureResult, error) {
	g := model.LiExample1Group()
	grid := extGrid(g, points)
	exp := &Experiment{
		ID:    ExtObjectives,
		Title: "Generic-only vs fleet-wide objective (extension; FCFS, paper example)",
		Kind:  Figure, Discipline: queueing.FCFS,
		Series: []Series{
			{Label: "generic T′ (paper objective)", Group: g},
			{Label: "all-task avg under paper objective", Group: g},
			{Label: "generic T′ (fleet objective)", Group: g},
			{Label: "all-task avg (fleet objective)", Group: g},
		},
		GridPoints: points, GridLoFrac: 0.05, GridHiFrac: 0.95,
	}
	values := make([][]float64, 4)
	for i := range values {
		values[i] = make([]float64, len(grid))
	}
	for gi, lambda := range grid {
		gen, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
		if err != nil {
			return nil, err
		}
		genAll, err := allTaskAverage(g, queueing.FCFS, gen.Rates)
		if err != nil {
			return nil, err
		}
		tot, err := core.OptimizeTotal(g, lambda, core.Options{Discipline: queueing.FCFS})
		if err != nil {
			return nil, err
		}
		values[0][gi] = gen.AvgResponseTime
		values[1][gi] = genAll
		values[2][gi] = tot.AvgGeneric
		values[3][gi] = tot.AvgAllTasks
	}
	return &FigureResult{Experiment: exp, Grid: grid, Values: values}, nil
}

// allTaskAverage evaluates the fleet-wide mean response time of an
// allocation (generic + special tasks).
func allTaskAverage(g *model.Group, d queueing.Discipline, rates []float64) (float64, error) {
	if err := g.Feasible(rates); err != nil {
		return 0, err
	}
	var num, den float64
	for i, s := range g.Servers {
		xbar := s.ServiceMean(g.TaskSize)
		rho := s.Utilization(rates[i], g.TaskSize)
		rhoS := s.SpecialUtilization(g.TaskSize)
		tg := queueing.GenericResponseTime(d, s.Size, rho, rhoS, xbar)
		var ts float64
		if d == queueing.Priority {
			ts = xbar + queueing.SpecialWaitTime(s.Size, rho, rhoS, xbar)
		} else {
			ts = tg
		}
		num += rates[i]*tg + s.SpecialRate*ts
		den += rates[i] + s.SpecialRate
	}
	return num / den, nil
}

func runCaps(points int) (*FigureResult, error) {
	g := model.LiExample1Group()
	grid := extGrid(g, points)
	caps := []float64{0, 0.9, 0.8, 0.7} // 0 = uncapped
	exp := &Experiment{
		ID:    ExtCaps,
		Title: "Price of utilization guard bands (extension; FCFS, paper example)",
		Kind:  Figure, Discipline: queueing.FCFS,
		GridPoints: points, GridLoFrac: 0.05, GridHiFrac: 0.95,
	}
	for _, c := range caps {
		label := "uncapped"
		if c > 0 {
			label = fmt.Sprintf("ρ ≤ %.1f", c)
		}
		exp.Series = append(exp.Series, Series{Label: label, Group: g})
	}
	values := make([][]float64, len(caps))
	for i := range values {
		values[i] = make([]float64, len(grid))
	}
	for gi, lambda := range grid {
		for ci, c := range caps {
			res, err := core.Optimize(g, lambda, core.Options{
				Discipline: queueing.FCFS, MaxUtilization: c,
			})
			if err != nil {
				// The cap can make the load infeasible: the curve
				// leaves the chart, like the paper's saturating curves.
				values[ci][gi] = math.Inf(1)
				continue
			}
			values[ci][gi] = res.AvgResponseTime
		}
	}
	return &FigureResult{Experiment: exp, Grid: grid, Values: values}, nil
}
