package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/queueing"
)

// TableRow is one server row of Table 1 or Table 2.
type TableRow struct {
	Index       int     // i (1-based)
	Size        int     // m_i
	Speed       float64 // s_i
	ServiceMean float64 // x̄_i
	GenericRate float64 // λ′_i (optimal)
	SpecialRate float64 // λ″_i
	Utilization float64 // ρ_i
}

// TableResult is the outcome of a table experiment.
type TableResult struct {
	Experiment *Experiment
	Lambda     float64 // λ′ solved for
	Rows       []TableRow
	T          float64 // minimized T′
}

// FigureResult is the outcome of a figure experiment: one T′ series
// per group over the shared λ′ grid. Values[s][g] is the minimized T′
// of series s at Grid[g].
type FigureResult struct {
	Experiment *Experiment
	Grid       []float64
	Values     [][]float64
}

// RunTable solves a table experiment.
func (e *Experiment) RunTable() (*TableResult, error) {
	if e.Kind != Table {
		return nil, fmt.Errorf("experiments: %s is not a table", e.ID)
	}
	g := e.Series[0].Group
	lambda := e.LambdaFraction * g.MaxGenericRate()
	res, err := core.Optimize(g, lambda, core.Options{Discipline: e.Discipline})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	out := &TableResult{Experiment: e, Lambda: lambda, T: res.AvgResponseTime}
	for i, s := range g.Servers {
		out.Rows = append(out.Rows, TableRow{
			Index:       i + 1,
			Size:        s.Size,
			Speed:       s.Speed,
			ServiceMean: s.ServiceMean(g.TaskSize),
			GenericRate: res.Rates[i],
			SpecialRate: s.SpecialRate,
			Utilization: res.Utilizations[i],
		})
	}
	return out, nil
}

// runSeries sweeps one series over the grid in ascending λ′ order,
// warm-starting each optimization's outer φ search from the previous
// grid point's multiplier: φ grows smoothly along a curve, so the
// doubling phase of the paper's Fig. 3 collapses to a couple of F(φ)
// evaluations instead of ~40 cold doublings per point. Grid points at
// or beyond the series' own saturation point yield +Inf (the curve's
// asymptote) rather than an error, since the shared grid can exceed a
// given group's λ′_max only at the top fraction and the paper draws
// those curves diverging.
func (e *Experiment) runSeries(si int, grid, values []float64) error {
	s := e.Series[si]
	maxRate := s.Group.MaxGenericRate()
	warm := 0.0
	for gi, lambda := range grid {
		if lambda >= maxRate {
			values[gi] = math.Inf(1)
			continue
		}
		res, err := core.Optimize(s.Group, lambda, core.Options{Discipline: e.Discipline, WarmPhi: warm})
		if err != nil {
			return fmt.Errorf("experiments: %s series %q λ′=%g: %w", e.ID, s.Label, lambda, err)
		}
		values[gi] = res.AvgResponseTime
		warm = res.Phi
	}
	return nil
}

// RunFigure sweeps a figure experiment, optimizing every (series, λ′)
// point. Series are independent and run concurrently (bounded by
// GOMAXPROCS); within a series the grid is swept in order so each point
// warm-starts from the previous one (see runSeries). The result is
// bit-identical to RunFigureSequential: the warm-start chain per series
// is the same either way.
func (e *Experiment) RunFigure() (*FigureResult, error) {
	if e.Kind != Figure {
		return nil, fmt.Errorf("experiments: %s is not a figure", e.ID)
	}
	grid := e.Grid()
	values := make([][]float64, len(e.Series))
	for i := range values {
		values[i] = make([]float64, len(grid))
	}
	errs := make([]error, len(e.Series))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for si := range e.Series {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[si] = e.runSeries(si, grid, values[si])
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &FigureResult{Experiment: e, Grid: grid, Values: values}, nil
}

// RunFigureSequential is RunFigure without the concurrency; it exists
// for the parallel-vs-sequential ablation bench and for deterministic
// profiling. Values are bit-identical to RunFigure's.
func (e *Experiment) RunFigureSequential() (*FigureResult, error) {
	if e.Kind != Figure {
		return nil, fmt.Errorf("experiments: %s is not a figure", e.ID)
	}
	grid := e.Grid()
	values := make([][]float64, len(e.Series))
	for si := range e.Series {
		values[si] = make([]float64, len(grid))
		if err := e.runSeries(si, grid, values[si]); err != nil {
			return nil, err
		}
	}
	return &FigureResult{Experiment: e, Grid: grid, Values: values}, nil
}

// SeriesFor returns the figure result row for the series with the
// given label.
func (f *FigureResult) SeriesFor(label string) ([]float64, error) {
	for i, s := range f.Experiment.Series {
		if s.Label == label {
			return f.Values[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: no series %q in %s", label, f.Experiment.ID)
}

// CompanionID returns the ID of the other-discipline twin of a figure
// (fig4 ↔ fig5, etc.) and "" for tables.
func (e *Experiment) CompanionID() string {
	var num int
	if _, err := fmt.Sscanf(e.ID, "fig%d", &num); err != nil {
		return ""
	}
	if e.Discipline == queueing.FCFS {
		return fmt.Sprintf("fig%d", num+1)
	}
	return fmt.Sprintf("fig%d", num-1)
}
