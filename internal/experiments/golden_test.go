package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenTables pins the full rendered output of Tables 1 and 2 —
// every digit the paper publishes, in our exact layout — against
// checked-in golden files. Regenerate with `go test -run Golden -update`.
func TestGoldenTables(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.RunTable()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("rendered output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, buf.Bytes(), want)
			}
		})
	}
}
