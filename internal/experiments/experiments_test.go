package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/queueing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("got %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig12")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig12" || e.Kind != Figure || e.Discipline != queueing.FCFS {
		t.Fatalf("unexpected experiment %+v", e)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestExperimentParameterIntegrity(t *testing.T) {
	for _, e := range All() {
		for _, s := range e.Series {
			if err := s.Group.Validate(); err != nil {
				t.Errorf("%s %q: %v", e.ID, s.Label, err)
			}
			if s.Group.N() != 7 {
				t.Errorf("%s %q: n = %d, want 7", e.ID, s.Label, s.Group.N())
			}
		}
	}
}

func TestFig45GroupTotals(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	wantTotals := []int{49, 53, 56, 59, 63}
	for i, s := range e.Series {
		if got := s.Group.TotalBlades(); got != wantTotals[i] {
			t.Errorf("group %d: total blades %d, want %d", i+1, got, wantTotals[i])
		}
	}
}

func TestFig1213EqualTotalsAndSpecialLoad(t *testing.T) {
	// All five groups: 56 blades at speed 1.3 and λ″ total 21.84.
	e, err := ByID("fig12")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range e.Series {
		if got := s.Group.TotalBlades(); got != 56 {
			t.Errorf("group %d: blades %d, want 56", i+1, got)
		}
		if got := s.Group.TotalSpecialRate(); math.Abs(got-21.84) > 1e-9 {
			t.Errorf("group %d: λ″ = %.6f, want 21.84", i+1, got)
		}
		for j, srv := range s.Group.Servers {
			if srv.Speed != 1.3 {
				t.Errorf("group %d server %d: speed %g, want 1.3", i+1, j+1, srv.Speed)
			}
		}
	}
}

func TestFig1415EqualTotalSpeedAndSpecialLoad(t *testing.T) {
	// All five groups: m_i = 8 and total speed m·Σs_i = 72.8, λ″ = 21.84.
	e, err := ByID("fig14")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range e.Series {
		var speedSum float64
		for j, srv := range s.Group.Servers {
			if srv.Size != 8 {
				t.Errorf("group %d server %d: size %d, want 8", i+1, j+1, srv.Size)
			}
			speedSum += srv.Speed
		}
		if math.Abs(8*speedSum-72.8) > 1e-9 {
			t.Errorf("group %d: total speed %.4f, want 72.8", i+1, 8*speedSum)
		}
		if got := s.Group.TotalSpecialRate(); math.Abs(got-21.84) > 1e-9 {
			t.Errorf("group %d: λ″ = %.6f, want 21.84", i+1, got)
		}
	}
}

func TestTable1ViaExperiment(t *testing.T) {
	e, err := ByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunTable()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-23.52) > 1e-9 {
		t.Fatalf("λ′ = %.9f", res.Lambda)
	}
	if math.Abs(res.T-0.8964703) > 5e-8 {
		t.Fatalf("T′ = %.7f, want 0.8964703", res.T)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Spot-check a middle row against the published table.
	if math.Abs(res.Rows[3].GenericRate-3.9121948) > 5e-8 {
		t.Fatalf("λ′_4 = %.7f", res.Rows[3].GenericRate)
	}
}

func TestTable2ViaExperiment(t *testing.T) {
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunTable()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T-0.9209392) > 5e-8 {
		t.Fatalf("T′ = %.7f, want 0.9209392", res.T)
	}
}

func TestRunTableOnFigureFails(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunTable(); err == nil {
		t.Fatal("RunTable on a figure should fail")
	}
	tb, err := ByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunFigure(); err == nil {
		t.Fatal("RunFigure on a table should fail")
	}
	if _, err := tb.RunFigureSequential(); err == nil {
		t.Fatal("RunFigureSequential on a table should fail")
	}
}

func TestGridShape(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	grid := e.Grid()
	if len(grid) != DefaultGridPoints {
		t.Fatalf("grid has %d points", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatal("grid not increasing")
		}
	}
	// Grid must stay below the smallest λ′_max (Group 1, m = 49).
	minMax := e.Series[0].Group.MaxGenericRate()
	if grid[len(grid)-1] >= minMax {
		t.Fatalf("grid top %.4f ≥ λ′_max %.4f", grid[len(grid)-1], minMax)
	}
	tb, _ := ByID("table1")
	if tb.Grid() != nil {
		t.Fatal("tables have no grid")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	e, err := ByID("fig12")
	if err != nil {
		t.Fatal(err)
	}
	e.GridPoints = 7 // keep the test fast
	par, err := e.RunFigure()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := e.RunFigureSequential()
	if err != nil {
		t.Fatal(err)
	}
	for si := range par.Values {
		for gi := range par.Values[si] {
			if par.Values[si][gi] != seq.Values[si][gi] {
				t.Fatalf("series %d point %d: parallel %.12g vs sequential %.12g",
					si, gi, par.Values[si][gi], seq.Values[si][gi])
			}
		}
	}
}

// runFigure is a helper with a reduced grid for test speed.
func runFigure(t *testing.T, id string, points int) *FigureResult {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	e.GridPoints = points
	res, err := e.RunFigure()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFiguresMonotoneInLambda(t *testing.T) {
	// Every curve of every figure increases in λ′ (until it leaves its
	// own feasible range).
	for _, id := range []string{"fig4", "fig6", "fig8", "fig10", "fig12", "fig14"} {
		res := runFigure(t, id, 9)
		for si, series := range res.Values {
			for gi := 1; gi < len(series); gi++ {
				if math.IsInf(series[gi], 1) {
					break
				}
				if series[gi] <= series[gi-1] {
					t.Errorf("%s series %d: T′ not increasing at grid %d (%g after %g)",
						id, si, gi, series[gi], series[gi-1])
				}
			}
		}
	}
}

func TestPriorityFiguresDominateFCFS(t *testing.T) {
	// Each priority figure lies above its FCFS companion pointwise
	// (the paper: "the average response time T′ with prioritized
	// special tasks is greater").
	pairs := [][2]string{{"fig4", "fig5"}, {"fig8", "fig9"}, {"fig12", "fig13"}}
	for _, p := range pairs {
		fc := runFigure(t, p[0], 7)
		pr := runFigure(t, p[1], 7)
		for si := range fc.Values {
			for gi := range fc.Values[si] {
				a, b := fc.Values[si][gi], pr.Values[si][gi]
				if math.IsInf(a, 1) || math.IsInf(b, 1) {
					continue
				}
				if b < a {
					t.Errorf("%s/%s series %d grid %d: priority %.6f < fcfs %.6f",
						p[0], p[1], si, gi, b, a)
				}
			}
		}
	}
}

func TestFig4LargerTotalSizeIsFaster(t *testing.T) {
	// Paper: "slight increment of m noticeably reduces T′, especially
	// when λ′ is large". Groups are ordered by total size 49 → 63, so
	// at the top of the grid T′ must be decreasing across groups.
	res := runFigure(t, "fig4", 9)
	last := len(res.Grid) - 1
	for si := 1; si < len(res.Values); si++ {
		if res.Values[si][last] >= res.Values[si-1][last] {
			t.Errorf("group %d (larger m) should beat group %d at high λ′: %.6f vs %.6f",
				si+1, si, res.Values[si][last], res.Values[si-1][last])
		}
	}
}

func TestFig6FasterSpeedIsFaster(t *testing.T) {
	// Higher base speed s → lower T′ at every grid point.
	res := runFigure(t, "fig6", 7)
	for gi := range res.Grid {
		for si := 1; si < len(res.Values); si++ {
			if math.IsInf(res.Values[si-1][gi], 1) {
				continue
			}
			if res.Values[si][gi] >= res.Values[si-1][gi] {
				t.Errorf("grid %d: s-series %d should beat series %d (%.6f vs %.6f)",
					gi, si, si-1, res.Values[si][gi], res.Values[si-1][gi])
			}
		}
	}
}

func TestFig8LargerRequirementIsSlower(t *testing.T) {
	// Larger r̄ → higher T′ at every shared feasible grid point.
	res := runFigure(t, "fig8", 7)
	for gi := range res.Grid {
		for si := 1; si < len(res.Values); si++ {
			a, b := res.Values[si-1][gi], res.Values[si][gi]
			if math.IsInf(a, 1) || math.IsInf(b, 1) {
				continue
			}
			if b <= a {
				t.Errorf("grid %d: r̄-series %d should be slower than series %d (%.6f vs %.6f)",
					gi, si, si-1, b, a)
			}
		}
	}
}

func TestFig10MorePreloadIsSlower(t *testing.T) {
	res := runFigure(t, "fig10", 7)
	for gi := range res.Grid {
		for si := 1; si < len(res.Values); si++ {
			a, b := res.Values[si-1][gi], res.Values[si][gi]
			if math.IsInf(a, 1) || math.IsInf(b, 1) {
				continue
			}
			if b <= a {
				t.Errorf("grid %d: y-series %d should be slower than series %d (%.6f vs %.6f)",
					gi, si, si-1, b, a)
			}
		}
	}
}

func TestFig12HeterogeneityNearNeutralButOrdered(t *testing.T) {
	// Paper: the five size-heterogeneity groups have almost identical
	// T′, yet T′ increases slightly from most to least heterogeneous.
	res := runFigure(t, "fig12", 7)
	mid := len(res.Grid) / 2
	for si := 1; si < len(res.Values); si++ {
		a, b := res.Values[si-1][mid], res.Values[si][mid]
		if b < a-1e-9 {
			t.Errorf("series %d (less heterogeneous) should not beat series %d: %.9f vs %.9f",
				si+1, si, b, a)
		}
		if rel := math.Abs(b-a) / a; rel > 0.05 {
			t.Errorf("series %d vs %d differ by %.1f%%, paper says nearly identical", si+1, si, rel*100)
		}
	}
}

func TestFig14HeterogeneityNearNeutralButOrdered(t *testing.T) {
	// Paper: speed heterogeneity barely matters, but larger
	// heterogeneity gives (slightly) shorter T′. The ordering must
	// hold at every grid point; the total spread between the most and
	// least heterogeneous groups stays modest at high λ′, where the
	// paper's "very close" observation visually applies.
	res := runFigure(t, "fig14", 7)
	for gi := range res.Grid {
		for si := 1; si < len(res.Values); si++ {
			a, b := res.Values[si-1][gi], res.Values[si][gi]
			if b < a-1e-9 {
				t.Errorf("grid %d: series %d should not beat series %d: %.9f vs %.9f", gi, si+1, si, b, a)
			}
		}
	}
	last := len(res.Grid) - 1
	spread := (res.Values[4][last] - res.Values[0][last]) / res.Values[0][last]
	if spread > 0.2 {
		t.Errorf("G5 vs G1 spread at high λ′ is %.1f%%, paper shows close curves", spread*100)
	}
}

func TestSeriesFor(t *testing.T) {
	res := runFigure(t, "fig6", 5)
	row, err := res.SeriesFor("s = 1.7")
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 5 {
		t.Fatalf("row has %d points", len(row))
	}
	if _, err := res.SeriesFor("nope"); err == nil {
		t.Fatal("unknown label should fail")
	}
}

func TestCompanionID(t *testing.T) {
	f4, _ := ByID("fig4")
	if f4.CompanionID() != "fig5" {
		t.Fatalf("fig4 companion = %q", f4.CompanionID())
	}
	f5, _ := ByID("fig5")
	if f5.CompanionID() != "fig4" {
		t.Fatalf("fig5 companion = %q", f5.CompanionID())
	}
	t1, _ := ByID("table1")
	if t1.CompanionID() != "" {
		t.Fatal("tables have no companion")
	}
}

func TestRenderTableText(t *testing.T) {
	e, _ := ByID("table1")
	res, err := e.RunTable()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"0.8964703", "λ′_i", "ρ_i"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "generic_rate") {
		t.Error("CSV missing header")
	}
}

func TestRenderFigurePlot(t *testing.T) {
	res := runFigure(t, "fig6", 6)
	var buf bytes.Buffer
	if err := res.WritePlot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig6", "s = 1.5", "s = 1.9", "λ′", "T′"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Five series → five distinct markers in the legend.
	for _, m := range []string{"o s", "* s", "+ s", "x s", "# s"} {
		if !strings.Contains(out, m) {
			t.Errorf("plot missing marker legend %q", m)
		}
	}
}

func TestRenderFigureText(t *testing.T) {
	res := runFigure(t, "fig12", 5)
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Group 5") {
		t.Errorf("missing series column:\n%s", buf.String())
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 grid rows
		t.Fatalf("CSV has %d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "lambda,") {
		t.Fatalf("CSV header %q", lines[0])
	}
}
