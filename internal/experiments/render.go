package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/plot"
)

// WriteText renders a table result in the layout of the paper's
// Tables 1–2.
func (t *TableResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.Experiment.ID[:1])+t.Experiment.ID[1:], t.Experiment.Title)
	fmt.Fprintf(w, "λ′ = %.6g, minimized T′ = %.7f\n\n", t.Lambda, t.T)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "i\tm_i\ts_i\tx̄_i\tλ′_i\tλ″_i\tρ_i\t")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.7f\t%.7f\t%.7f\t%.7f\t\n",
			r.Index, r.Size, r.Speed, r.ServiceMean, r.GenericRate, r.SpecialRate, r.Utilization)
	}
	return tw.Flush()
}

// WriteCSV renders a table result as CSV.
func (t *TableResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "i,m,s,xbar,generic_rate,special_rate,utilization"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%g,%.9f,%.9f,%.9f,%.9f\n",
			r.Index, r.Size, r.Speed, r.ServiceMean, r.GenericRate, r.SpecialRate, r.Utilization); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# lambda=%.9f T=%.9f\n", t.Lambda, t.T)
	return err
}

// WriteText renders a figure result as a text table: λ′ down the rows,
// one column per series — the data behind the paper's plot.
func (f *FigureResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s — %s\n\n", strings.ToUpper(f.Experiment.ID[:1])+f.Experiment.ID[1:], f.Experiment.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "λ′\t")
	for _, s := range f.Experiment.Series {
		fmt.Fprintf(tw, "%s\t", s.Label)
	}
	fmt.Fprintln(tw)
	for gi, lambda := range f.Grid {
		fmt.Fprintf(tw, "%.4f\t", lambda)
		for si := range f.Experiment.Series {
			fmt.Fprintf(tw, "%s\t", formatT(f.Values[si][gi]))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV renders a figure result as CSV with a header row.
func (f *FigureResult) WriteCSV(w io.Writer) error {
	cols := []string{"lambda"}
	for _, s := range f.Experiment.Series {
		cols = append(cols, strings.ReplaceAll(s.Label, ",", ";"))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for gi, lambda := range f.Grid {
		row := []string{fmt.Sprintf("%.6f", lambda)}
		for si := range f.Experiment.Series {
			row = append(row, formatT(f.Values[si][gi]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WritePlot renders a figure result as an ASCII line chart — the
// visual shape of the paper's figure. The vertical axis is clipped at
// 4× the smallest finite value so the divergence near saturation does
// not flatten the rest of the plot.
func (f *FigureResult) WritePlot(w io.Writer) error {
	series := make([]plot.Series, len(f.Experiment.Series))
	minFinite := math.Inf(1)
	for si, s := range f.Experiment.Series {
		series[si] = plot.Series{Label: s.Label, Y: f.Values[si]}
		for _, v := range f.Values[si] {
			if !math.IsInf(v, 0) && !math.IsNaN(v) && v < minFinite {
				minFinite = v
			}
		}
	}
	c := plot.Chart{
		Title:  fmt.Sprintf("%s — %s", strings.ToUpper(f.Experiment.ID[:1])+f.Experiment.ID[1:], f.Experiment.Title),
		XLabel: "λ′ (total generic arrival rate)",
		YLabel: "T′ (average generic response time)",
	}
	if !math.IsInf(minFinite, 1) {
		c.YMax = 4 * minFinite
	}
	return plot.Render(w, c, f.Grid, series)
}

func formatT(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsNaN(v):
		return "nan"
	default:
		return fmt.Sprintf("%.6f", v)
	}
}
