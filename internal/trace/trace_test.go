package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

func testGroup() *model.Group {
	return &model.Group{
		Servers: []model.Server{
			{Size: 2, Speed: 1.0, SpecialRate: 0.5},
			{Size: 4, Speed: 1.5, SpecialRate: 1.0},
		},
		TaskSize: 1.0,
	}
}

func TestGenerateValidation(t *testing.T) {
	g := testGroup()
	if _, err := Generate(Config{GenericRate: 1, Horizon: 10}); err == nil {
		t.Error("nil group should fail")
	}
	if _, err := Generate(Config{Group: g, GenericRate: -1, Horizon: 10}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := Generate(Config{Group: g, GenericRate: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := Generate(Config{Group: &model.Group{TaskSize: 1}, GenericRate: 1, Horizon: 10}); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Group: testGroup(), GenericRate: 2, Horizon: 100, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("same seed should give same trace")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestGenerateStatisticalProperties(t *testing.T) {
	cfg := Config{Group: testGroup(), GenericRate: 3, Horizon: 50000, Seed: 13}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if math.Abs(s.ObservedGenericRate-3)/3 > 0.02 {
		t.Errorf("generic rate %.4f, want 3", s.ObservedGenericRate)
	}
	// Special arrivals: rates 0.5 + 1.0 = 1.5 total.
	speRate := float64(s.Special) / cfg.Horizon
	if math.Abs(speRate-1.5)/1.5 > 0.02 {
		t.Errorf("special rate %.4f, want 1.5", speRate)
	}
	if math.Abs(s.MeanRequirement-1) > 0.02 {
		t.Errorf("mean requirement %.4f, want 1", s.MeanRequirement)
	}
}

func TestGenerateZeroGenericRate(t *testing.T) {
	tr, err := Generate(Config{Group: testGroup(), GenericRate: 0, Horizon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summarize().Generic != 0 {
		t.Fatal("no generic arrivals expected")
	}
	if tr.Summarize().Special == 0 {
		t.Fatal("special arrivals expected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr, err := Generate(Config{Group: testGroup(), GenericRate: 2, Horizon: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Arrivals) != len(tr.Arrivals) || back.Seed != tr.Seed ||
		back.GenericRate != tr.GenericRate || back.Horizon != tr.Horizon {
		t.Fatal("JSON round-trip lost data")
	}
	for i := range tr.Arrivals {
		if tr.Arrivals[i] != back.Arrivals[i] {
			t.Fatalf("arrival %d differs after round-trip", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("invalid JSON should fail")
	}
	// Valid JSON, invalid trace (negative requirement).
	bad := `{"arrivals":[{"time":1,"station":-1,"requirement":-5}],"horizon":10}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid trace should fail validation")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Generate(Config{Group: testGroup(), GenericRate: 2, Horizon: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Arrivals) != len(tr.Arrivals) {
		t.Fatalf("lengths differ: %d vs %d", len(back.Arrivals), len(tr.Arrivals))
	}
	for i := range tr.Arrivals {
		if tr.Arrivals[i] != back.Arrivals[i] {
			t.Fatalf("arrival %d differs after CSV round-trip", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                  // no header
		"a,b\n",                             // wrong header
		"time,station,requirement\nx,0,1\n", // bad time
		"time,station,requirement\n1,x,1\n", // bad station
		"time,station,requirement\n1,0,x\n", // bad requirement
		"time,station,requirement\n5,0,1\n1,0,1\n", // out of order
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, err := Generate(Config{Group: testGroup(), GenericRate: 1, Horizon: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) < 2 {
		t.Skip("trace too short")
	}
	corrupt := *tr
	corrupt.Arrivals = append([]Arrival(nil), tr.Arrivals...)
	corrupt.Arrivals[1].Time = corrupt.Arrivals[0].Time - 1
	if err := corrupt.Validate(); err == nil {
		t.Error("out-of-order arrival should fail")
	}
	corrupt.Arrivals[1] = tr.Arrivals[1]
	corrupt.Arrivals[0].Station = 99
	if err := corrupt.Validate(); err == nil {
		t.Error("out-of-range station should fail")
	}
	corrupt.Arrivals[0] = tr.Arrivals[0]
	corrupt.Arrivals[0].Time = tr.Horizon + 5
	if err := corrupt.Validate(); err == nil {
		t.Error("beyond-horizon arrival should fail")
	}
}

func TestInterarrivalExponential(t *testing.T) {
	// Kolmogorov-ish check: generic inter-arrival CV² should be ≈ 1
	// (exponential), not ≈ 0 (deterministic) or ≫ 1.
	tr, err := Generate(Config{Group: testGroup(), GenericRate: 5, Horizon: 20000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for _, a := range tr.Arrivals {
		if a.IsGeneric() {
			times = append(times, a.Time)
		}
	}
	var sum, sumSq float64
	for i := 1; i < len(times); i++ {
		d := times[i] - times[i-1]
		sum += d
		sumSq += d * d
	}
	n := float64(len(times) - 1)
	mean := sum / n
	variance := sumSq/n - mean*mean
	cv2 := variance / (mean * mean)
	if math.Abs(cv2-1) > 0.05 {
		t.Fatalf("inter-arrival CV² = %.4f, want ≈ 1 (exponential)", cv2)
	}
}
