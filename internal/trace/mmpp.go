package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// MMPPConfig parameterizes a two-state Markov-modulated Poisson process
// for the generic stream: the arrival rate alternates between a high
// (burst) and a low (lull) state, each held for an exponential sojourn.
// MMPP arrivals are over-dispersed relative to Poisson (count
// index of dispersion > 1), the standard model for bursty cloud
// traffic; replaying an MMPP trace quantifies how the paper's
// Poisson-based optimum degrades under burstiness. Special streams
// remain Poisson per server, as in the model.
type MMPPConfig struct {
	// Group supplies special rates and the task-size distribution.
	Group *model.Group
	// RateHigh and RateLow are the generic arrival rates in the burst
	// and lull states (RateHigh ≥ RateLow ≥ 0, RateHigh > 0).
	RateHigh, RateLow float64
	// MeanHigh and MeanLow are the mean sojourn times in each state
	// (both positive).
	MeanHigh, MeanLow float64
	// Horizon is the duration to generate. Must be positive.
	Horizon float64
	// Seed makes generation reproducible.
	Seed int64
}

// MeanRate returns the long-run average generic arrival rate of the
// modulated process.
func (c MMPPConfig) MeanRate() float64 {
	return (c.RateHigh*c.MeanHigh + c.RateLow*c.MeanLow) / (c.MeanHigh + c.MeanLow)
}

func (c MMPPConfig) validate() error {
	if c.Group == nil {
		return fmt.Errorf("trace: nil group")
	}
	if err := c.Group.Validate(); err != nil {
		return err
	}
	if c.RateHigh <= 0 || c.RateLow < 0 || c.RateHigh < c.RateLow ||
		math.IsNaN(c.RateHigh) || math.IsNaN(c.RateLow) {
		return fmt.Errorf("trace: MMPP rates high=%g low=%g must satisfy high ≥ low ≥ 0, high > 0",
			c.RateHigh, c.RateLow)
	}
	if c.MeanHigh <= 0 || c.MeanLow <= 0 || math.IsNaN(c.MeanHigh) || math.IsNaN(c.MeanLow) {
		return fmt.Errorf("trace: MMPP sojourns high=%g low=%g must be positive", c.MeanHigh, c.MeanLow)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) {
		return fmt.Errorf("trace: horizon %g must be positive", c.Horizon)
	}
	return nil
}

// GenerateMMPP produces a trace whose generic stream is the two-state
// MMPP and whose special streams are Poisson, all with Exp(r̄)
// requirements. The trace records MeanRate as its GenericRate.
func GenerateMMPP(cfg MMPPConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{
		GenericRate:  cfg.MeanRate(),
		SpecialRates: make([]float64, cfg.Group.N()),
		TaskSize:     cfg.Group.TaskSize,
		Horizon:      cfg.Horizon,
		Seed:         cfg.Seed,
	}
	// Generic stream: walk state intervals, emit Poisson arrivals
	// within each at that state's rate.
	now := 0.0
	high := rng.Intn(2) == 0 // random initial state
	for now < cfg.Horizon {
		rate, mean := cfg.RateLow, cfg.MeanLow
		if high {
			rate, mean = cfg.RateHigh, cfg.MeanHigh
		}
		stateEnd := now + rng.ExpFloat64()*mean
		if stateEnd > cfg.Horizon {
			stateEnd = cfg.Horizon
		}
		if rate > 0 {
			for t := now + rng.ExpFloat64()/rate; t < stateEnd; t += rng.ExpFloat64() / rate {
				tr.Arrivals = append(tr.Arrivals, Arrival{
					Time: t, Station: -1, Requirement: rng.ExpFloat64() * cfg.Group.TaskSize,
				})
			}
		}
		now = stateEnd
		high = !high
	}
	// Special streams: plain Poisson, as in Generate.
	for i, s := range cfg.Group.Servers {
		tr.SpecialRates[i] = s.SpecialRate
		if s.SpecialRate <= 0 {
			continue
		}
		for t := rng.ExpFloat64() / s.SpecialRate; t < cfg.Horizon; t += rng.ExpFloat64() / s.SpecialRate {
			tr.Arrivals = append(tr.Arrivals, Arrival{
				Time: t, Station: i, Requirement: rng.ExpFloat64() * cfg.Group.TaskSize,
			})
		}
	}
	sort.SliceStable(tr.Arrivals, func(i, j int) bool {
		return tr.Arrivals[i].Time < tr.Arrivals[j].Time
	})
	return tr, nil
}

// IndexOfDispersion measures burstiness of the generic stream: the
// variance-to-mean ratio of arrival counts in windows of the given
// width. Poisson gives 1; MMPP gives > 1, growing with the rate gap.
func (t *Trace) IndexOfDispersion(window float64) (float64, error) {
	if window <= 0 || math.IsNaN(window) {
		return 0, fmt.Errorf("trace: window %g must be positive", window)
	}
	bins := int(t.Horizon / window)
	if bins < 2 {
		return 0, fmt.Errorf("trace: horizon %g too short for window %g", t.Horizon, window)
	}
	counts := make([]float64, bins)
	for _, a := range t.Arrivals {
		if !a.IsGeneric() {
			continue
		}
		idx := int(a.Time / window)
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(bins)
	if mean == 0 { //bladelint:allow floateq -- exact zero mean: not a single arrival was counted
		return 0, fmt.Errorf("trace: no generic arrivals")
	}
	var variance float64
	for _, c := range counts {
		variance += (c - mean) * (c - mean)
	}
	variance /= float64(bins - 1)
	return variance / mean, nil
}
