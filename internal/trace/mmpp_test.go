package trace

import (
	"math"
	"testing"

	"repro/internal/model"
)

func mmppConfig() MMPPConfig {
	return MMPPConfig{
		Group:    testGroup(),
		RateHigh: 6, RateLow: 0.5,
		MeanHigh: 20, MeanLow: 20,
		Horizon: 50000, Seed: 5,
	}
}

func TestMMPPValidation(t *testing.T) {
	mut := func(f func(*MMPPConfig)) MMPPConfig {
		c := mmppConfig()
		f(&c)
		return c
	}
	bad := []MMPPConfig{
		mut(func(c *MMPPConfig) { c.Group = nil }),
		mut(func(c *MMPPConfig) { c.Group = &model.Group{TaskSize: 1} }),
		mut(func(c *MMPPConfig) { c.RateHigh = 0 }),
		mut(func(c *MMPPConfig) { c.RateLow = -1 }),
		mut(func(c *MMPPConfig) { c.RateHigh, c.RateLow = 1, 2 }),
		mut(func(c *MMPPConfig) { c.MeanHigh = 0 }),
		mut(func(c *MMPPConfig) { c.MeanLow = -1 }),
		mut(func(c *MMPPConfig) { c.Horizon = 0 }),
	}
	for i, c := range bad {
		if _, err := GenerateMMPP(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMMPPMeanRate(t *testing.T) {
	cfg := mmppConfig()
	// Equal sojourns: mean = (6 + 0.5)/2 = 3.25.
	if got := cfg.MeanRate(); math.Abs(got-3.25) > 1e-12 {
		t.Fatalf("mean rate %g, want 3.25", got)
	}
	tr, err := GenerateMMPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if math.Abs(s.ObservedGenericRate-3.25)/3.25 > 0.05 {
		t.Fatalf("observed rate %.4f, want ≈ 3.25", s.ObservedGenericRate)
	}
	if tr.GenericRate != cfg.MeanRate() {
		t.Fatalf("trace records rate %g", tr.GenericRate)
	}
}

func TestMMPPDeterministic(t *testing.T) {
	a, err := GenerateMMPP(mmppConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMMPP(mmppConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("same seed should reproduce the trace")
	}
}

func TestMMPPOverdispersed(t *testing.T) {
	tr, err := GenerateMMPP(mmppConfig())
	if err != nil {
		t.Fatal(err)
	}
	iod, err := tr.IndexOfDispersion(10)
	if err != nil {
		t.Fatal(err)
	}
	if iod < 2 {
		t.Fatalf("MMPP index of dispersion %.2f, expected clearly > 1", iod)
	}
	// A Poisson trace at the same mean rate has IoD ≈ 1.
	poisson, err := Generate(Config{Group: testGroup(), GenericRate: 3.25, Horizon: 50000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pIod, err := poisson.IndexOfDispersion(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pIod-1) > 0.15 {
		t.Fatalf("Poisson index of dispersion %.2f, want ≈ 1", pIod)
	}
	if iod <= pIod {
		t.Fatalf("MMPP (%.2f) should be burstier than Poisson (%.2f)", iod, pIod)
	}
}

func TestMMPPDegeneratesToPoisson(t *testing.T) {
	// Equal rates in both states: the modulation is invisible.
	cfg := mmppConfig()
	cfg.RateHigh, cfg.RateLow = 2, 2
	tr, err := GenerateMMPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iod, err := tr.IndexOfDispersion(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iod-1) > 0.15 {
		t.Fatalf("degenerate MMPP IoD %.2f, want ≈ 1", iod)
	}
}

func TestIndexOfDispersionValidation(t *testing.T) {
	tr, err := Generate(Config{Group: testGroup(), GenericRate: 1, Horizon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.IndexOfDispersion(0); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := tr.IndexOfDispersion(200); err == nil {
		t.Error("window beyond horizon should fail")
	}
	empty, err := Generate(Config{Group: testGroup(), GenericRate: 0, Horizon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.IndexOfDispersion(10); err == nil {
		t.Error("no generic arrivals should fail")
	}
}
