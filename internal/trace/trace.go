// Package trace generates, stores, and replays synthetic workload
// traces for the blade-server model. The paper has no real system and
// therefore no production traces; this package supplies the synthetic
// equivalent — seeded Poisson arrival streams with exponentially
// distributed execution requirements, which is exactly the stochastic
// input the model assumes — together with CSV and JSON round-trips so
// experiments can be archived and replayed bit-for-bit.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/model"
)

// Arrival is one task arrival in a trace.
type Arrival struct {
	// Time is the absolute arrival time.
	Time float64 `json:"time"`
	// Station is the target server for special tasks (0-based), or -1
	// for generic tasks (which are routed by a dispatcher at replay).
	Station int `json:"station"`
	// Requirement is the task's execution requirement (instructions).
	Requirement float64 `json:"requirement"`
}

// IsGeneric reports whether the arrival belongs to the generic stream.
func (a Arrival) IsGeneric() bool { return a.Station < 0 }

// Trace is a time-ordered sequence of arrivals plus the parameters that
// generated it.
type Trace struct {
	// Arrivals in non-decreasing time order.
	Arrivals []Arrival `json:"arrivals"`
	// GenericRate is the generic-stream rate λ′ used at generation.
	GenericRate float64 `json:"generic_rate"`
	// SpecialRates are the per-station special rates λ″_i.
	SpecialRates []float64 `json:"special_rates"`
	// TaskSize is the mean execution requirement r̄.
	TaskSize float64 `json:"task_size"`
	// Horizon is the generated duration.
	Horizon float64 `json:"horizon"`
	// Seed reproduces the trace.
	Seed int64 `json:"seed"`
}

// Config parameterizes trace generation.
type Config struct {
	// Group supplies the special rates and task size.
	Group *model.Group
	// GenericRate is the total generic arrival rate λ′ (≥ 0).
	GenericRate float64
	// Horizon is the duration to generate. Must be positive.
	Horizon float64
	// Seed makes generation reproducible.
	Seed int64
}

// Generate produces a synthetic trace: one Poisson generic stream at
// GenericRate and one Poisson special stream per station, each arrival
// carrying an Exp(r̄) execution requirement. The result is sorted by
// time.
func Generate(cfg Config) (*Trace, error) {
	if cfg.Group == nil {
		return nil, fmt.Errorf("trace: nil group")
	}
	if err := cfg.Group.Validate(); err != nil {
		return nil, err
	}
	if cfg.GenericRate < 0 || math.IsNaN(cfg.GenericRate) {
		return nil, fmt.Errorf("trace: generic rate %g must be non-negative", cfg.GenericRate)
	}
	if cfg.Horizon <= 0 || math.IsNaN(cfg.Horizon) {
		return nil, fmt.Errorf("trace: horizon %g must be positive", cfg.Horizon)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{
		GenericRate:  cfg.GenericRate,
		SpecialRates: make([]float64, cfg.Group.N()),
		TaskSize:     cfg.Group.TaskSize,
		Horizon:      cfg.Horizon,
		Seed:         cfg.Seed,
	}
	appendStream := func(rate float64, station int) {
		if rate <= 0 {
			return
		}
		for t := rng.ExpFloat64() / rate; t < cfg.Horizon; t += rng.ExpFloat64() / rate {
			tr.Arrivals = append(tr.Arrivals, Arrival{
				Time:        t,
				Station:     station,
				Requirement: rng.ExpFloat64() * cfg.Group.TaskSize,
			})
		}
	}
	appendStream(cfg.GenericRate, -1)
	for i, s := range cfg.Group.Servers {
		tr.SpecialRates[i] = s.SpecialRate
		appendStream(s.SpecialRate, i)
	}
	sort.SliceStable(tr.Arrivals, func(i, j int) bool {
		return tr.Arrivals[i].Time < tr.Arrivals[j].Time
	})
	return tr, nil
}

// Stats summarizes a trace for sanity checks.
type Stats struct {
	// Generic and Special count arrivals per class.
	Generic, Special int
	// ObservedGenericRate is generic arrivals divided by the horizon.
	ObservedGenericRate float64
	// MeanRequirement is the sample mean execution requirement.
	MeanRequirement float64
}

// Summarize computes summary statistics of the trace.
func (t *Trace) Summarize() Stats {
	var s Stats
	var reqSum float64
	for _, a := range t.Arrivals {
		if a.IsGeneric() {
			s.Generic++
		} else {
			s.Special++
		}
		reqSum += a.Requirement
	}
	if t.Horizon > 0 {
		s.ObservedGenericRate = float64(s.Generic) / t.Horizon
	}
	if n := len(t.Arrivals); n > 0 {
		s.MeanRequirement = reqSum / float64(n)
	}
	return s
}

// Validate checks internal consistency: sorted times within the
// horizon, station indices in range, positive requirements.
func (t *Trace) Validate() error {
	prev := 0.0
	for i, a := range t.Arrivals {
		if a.Time < prev {
			return fmt.Errorf("trace: arrival %d out of order (%g after %g)", i, a.Time, prev)
		}
		if a.Time < 0 || a.Time > t.Horizon {
			return fmt.Errorf("trace: arrival %d time %g outside [0, %g]", i, a.Time, t.Horizon)
		}
		if a.Station >= len(t.SpecialRates) {
			return fmt.Errorf("trace: arrival %d station %d out of range", i, a.Station)
		}
		if a.Requirement <= 0 || math.IsNaN(a.Requirement) {
			return fmt.Errorf("trace: arrival %d requirement %g must be positive", i, a.Requirement)
		}
		prev = a.Time
	}
	return nil
}

// WriteJSON encodes the trace as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadJSON decodes a trace written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// csvHeader is the column layout of the CSV encoding.
var csvHeader = []string{"time", "station", "requirement"}

// WriteCSV encodes the arrivals as CSV with a header row. The
// generation parameters are not stored; use JSON for full round-trips.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, 3)
	for _, a := range t.Arrivals {
		row[0] = strconv.FormatFloat(a.Time, 'g', 17, 64)
		row[1] = strconv.Itoa(a.Station)
		row[2] = strconv.FormatFloat(a.Requirement, 'g', 17, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes arrivals written by WriteCSV. Horizon is set to the
// last arrival time; other parameters are zero.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) != 3 || header[0] != "time" || header[1] != "station" || header[2] != "requirement" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	t := &Trace{}
	maxStation := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		tm, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", rec[0], err)
		}
		st, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: bad station %q: %w", rec[1], err)
		}
		req, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad requirement %q: %w", rec[2], err)
		}
		t.Arrivals = append(t.Arrivals, Arrival{Time: tm, Station: st, Requirement: req})
		if st > maxStation {
			maxStation = st
		}
	}
	if len(t.Arrivals) > 0 {
		t.Horizon = t.Arrivals[len(t.Arrivals)-1].Time
	}
	t.SpecialRates = make([]float64, maxStation+1)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
