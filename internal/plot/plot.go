// Package plot renders multi-series line charts as plain text, so the
// paper's figures can be *seen*, not just tabulated, in a terminal and
// in golden files. It is intentionally small: fixed-size character
// grid, one marker per series, linear axes, a legend, and sensible
// handling of infinities (series leaving the plot near saturation).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve: a label and the y-values over the shared grid.
type Series struct {
	Label string
	Y     []float64
}

// Chart configures rendering.
type Chart struct {
	// Width and Height are the plot-area size in characters
	// (excluding axes and labels). Zero values default to 72×20.
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// YMax clips the vertical scale; 0 means autoscale to the largest
	// finite value. Clipping is how diverging curves near saturation
	// stay readable (the paper's figures do the same by axis choice).
	YMax float64
}

// markers distinguish series; reused cyclically beyond len(markers).
var markers = []byte{'o', '*', '+', 'x', '#', '@', '%', '&'}

// Render draws the series over the common x grid.
func Render(w io.Writer, c Chart, x []float64, series []Series) error {
	if len(x) < 2 {
		return fmt.Errorf("plot: need at least 2 x points, got %d", len(x))
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	for _, s := range series {
		if len(s.Y) != len(x) {
			return fmt.Errorf("plot: series %q has %d points for %d x values", s.Label, len(s.Y), len(x))
		}
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	xmin, xmax := x[0], x[len(x)-1]
	if xmax <= xmin {
		return fmt.Errorf("plot: x grid must be increasing (%g … %g)", xmin, xmax)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		return fmt.Errorf("plot: no finite data")
	}
	if c.YMax > 0 && c.YMax > ymin {
		ymax = c.YMax
	}
	if ymax <= ymin {
		ymax = ymin + 1 // flat data: give the axis some room
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(xv float64) int {
		f := (xv - xmin) / (xmax - xmin)
		ci := int(math.Round(f * float64(width-1)))
		if ci < 0 {
			ci = 0
		}
		if ci >= width {
			ci = width - 1
		}
		return ci
	}
	row := func(yv float64) (int, bool) {
		if math.IsNaN(yv) {
			return 0, false
		}
		if yv > ymax {
			return 0, true // clipped to the top row
		}
		f := (yv - ymin) / (ymax - ymin)
		r := (height - 1) - int(math.Round(f*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r, true
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, v := range s.Y {
			r, ok := row(v)
			if !ok {
				continue
			}
			grid[r][col(x[i])] = mark
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	labelWidth := len(yTop)
	if len(yBot) > labelWidth {
		labelWidth = len(yBot)
	}
	for r := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, grid[r]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%-*.4g%*s", width/2, xmin, width-width/2, fmt.Sprintf("%.4g", xmax))
	if _, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", labelWidth), xAxis); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  x: %s   y: %s\n",
			strings.Repeat(" ", labelWidth), c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Label); err != nil {
			return err
		}
	}
	return nil
}
