package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, c Chart, x []float64, s []Series) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Render(&buf, c, x, s); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRenderValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Chart{}, []float64{1}, []Series{{Label: "a", Y: []float64{1}}}); err == nil {
		t.Error("single x point should fail")
	}
	if err := Render(&buf, Chart{}, []float64{1, 2}, nil); err == nil {
		t.Error("no series should fail")
	}
	if err := Render(&buf, Chart{}, []float64{1, 2}, []Series{{Label: "a", Y: []float64{1}}}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := Render(&buf, Chart{}, []float64{2, 1}, []Series{{Label: "a", Y: []float64{1, 2}}}); err == nil {
		t.Error("non-increasing x should fail")
	}
	nan := math.NaN()
	if err := Render(&buf, Chart{}, []float64{1, 2}, []Series{{Label: "a", Y: []float64{nan, nan}}}); err == nil {
		t.Error("no finite data should fail")
	}
}

func TestRenderBasicStructure(t *testing.T) {
	out := render(t, Chart{Title: "demo", Width: 40, Height: 10, XLabel: "load", YLabel: "T"},
		[]float64{0, 1, 2, 3},
		[]Series{
			{Label: "up", Y: []float64{0, 1, 2, 3}},
			{Label: "down", Y: []float64{3, 2, 1, 0}},
		})
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, want := range []string{"o up", "* down", "x: load   y: T", "+----"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + 10 grid rows + axis + xlabels + xy label + 2 legend + trailing.
	if len(lines) != 17 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderMonotonePlacement(t *testing.T) {
	// An increasing series must place its leftmost marker on the
	// bottom row and its rightmost marker on the top row.
	out := render(t, Chart{Width: 20, Height: 5},
		[]float64{0, 1, 2, 3, 4},
		[]Series{{Label: "lin", Y: []float64{0, 1, 2, 3, 4}}})
	rows := strings.Split(out, "\n")
	grid := rows[:5]
	top := grid[0][strings.Index(grid[0], "|")+1:]
	bottom := grid[4][strings.Index(grid[4], "|")+1:]
	if strings.IndexByte(top, 'o') < strings.IndexByte(bottom, 'o') {
		t.Fatalf("increasing series should rise left→right:\n%s", out)
	}
	if !strings.Contains(bottom[:3], "o") {
		t.Fatalf("minimum should sit bottom-left:\n%s", out)
	}
}

func TestRenderAxisLabels(t *testing.T) {
	out := render(t, Chart{Width: 30, Height: 6},
		[]float64{2, 4, 6},
		[]Series{{Label: "s", Y: []float64{10, 20, 30}}})
	for _, want := range []string{"30", "10", "2", "6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing axis value %q:\n%s", want, out)
		}
	}
}

func TestRenderClipsInfinity(t *testing.T) {
	// A series diverging to +Inf must not break rendering; the Inf
	// point is skipped, values above YMax clip to the top row.
	out := render(t, Chart{Width: 24, Height: 6, YMax: 5},
		[]float64{0, 1, 2, 3},
		[]Series{{Label: "div", Y: []float64{1, 2, 100, math.Inf(1)}}})
	rows := strings.Split(out, "\n")
	top := rows[0]
	if !strings.Contains(top, "o") {
		t.Fatalf("clipped point should appear on the top row:\n%s", out)
	}
	if !strings.Contains(top, "5") {
		t.Fatalf("YMax should label the top row:\n%s", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	// Constant data must not divide by zero.
	out := render(t, Chart{Width: 20, Height: 4},
		[]float64{0, 1, 2},
		[]Series{{Label: "flat", Y: []float64{7, 7, 7}}})
	if !strings.Contains(out, "o") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestRenderManySeriesMarkersCycle(t *testing.T) {
	series := make([]Series, 10)
	for i := range series {
		series[i] = Series{Label: "s", Y: []float64{float64(i), float64(i + 1)}}
	}
	out := render(t, Chart{Width: 12, Height: 12}, []float64{0, 1}, series)
	// Marker list has 8 entries; series 8 and 9 reuse 'o' and '*'.
	if strings.Count(out, "o s") != 2 || strings.Count(out, "* s") != 2 {
		t.Fatalf("markers should cycle:\n%s", out)
	}
}

func TestRenderDefaultDimensions(t *testing.T) {
	out := render(t, Chart{}, []float64{0, 1}, []Series{{Label: "d", Y: []float64{0, 1}}})
	lines := strings.Split(out, "\n")
	// 20 rows + axis + labels + legend + trailing newline artifact.
	if len(lines) < 23 {
		t.Fatalf("default height not applied: %d lines", len(lines))
	}
	var gridLine string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLine = l
			break
		}
	}
	if len(gridLine[strings.Index(gridLine, "|")+1:]) != 72 {
		t.Fatalf("default width not applied: %q", gridLine)
	}
}
