package dispatch

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// HealthFiltered wraps a state-aware dispatcher so it only ever sees
// the stations that are up: down stations are filtered out of the view
// slice before the inner Pick runs, and the inner pick is mapped back
// to the original station index. Use it to make JSQ, PowerOfD,
// LeastExpectedWait, or RoundRobin failure-aware.
//
// The inner dispatcher must pick by the views it is handed (their
// positions change as stations fail); positional-weight policies like
// Probabilistic belong behind ReWeighting instead.
type HealthFiltered struct {
	// Inner is the wrapped policy.
	Inner sim.Dispatcher

	filtered []sim.StationView // reused across picks
}

// NewHealthFiltered wraps inner.
func NewHealthFiltered(inner sim.Dispatcher) (*HealthFiltered, error) {
	if inner == nil {
		return nil, fmt.Errorf("dispatch: nil inner dispatcher")
	}
	return &HealthFiltered{Inner: inner}, nil
}

// Name implements sim.Dispatcher.
func (h *HealthFiltered) Name() string {
	return "health-filtered(" + h.Inner.Name() + ")"
}

// Pick implements sim.Dispatcher. With every station down there is
// nothing sensible to do; the pick falls through to the inner policy
// on the unfiltered views (the task will queue or be lost either way).
func (h *HealthFiltered) Pick(views []sim.StationView, rng *rand.Rand) int {
	h.filtered = h.filtered[:0]
	for _, v := range views {
		if v.Up {
			h.filtered = append(h.filtered, v)
		}
	}
	if len(h.filtered) == 0 {
		return h.Inner.Pick(views, rng)
	}
	pick := h.Inner.Pick(h.filtered, rng)
	if pick < 0 || pick >= len(h.filtered) {
		return -1 // surface the inner policy's bug to the engine
	}
	return h.filtered[pick].Index
}

// Fork implements sim.Forker: a wrapper with its own scratch buffer,
// forking the inner policy too when it is stateful.
func (h *HealthFiltered) Fork() sim.Dispatcher {
	inner := h.Inner
	if f, ok := inner.(sim.Forker); ok {
		inner = f.Fork()
	}
	return &HealthFiltered{Inner: inner}
}

// ReWeighting is the failover dispatcher: it routes probabilistically
// with the optimal rates for the *currently alive* subset, re-solving
// the paper's optimization whenever a station fails or recovers. The
// re-solve warm-starts the Lagrange-multiplier bracket from the
// previous solution (core.Options.WarmPhi) so failover is cheap, and
// admission control inside core.OptimizeDegraded keeps the solve
// feasible even when the survivors cannot carry the full stream.
//
// Compared against a static Probabilistic built from the healthy
// optimum, this is exactly the robustness win the chaos harness
// measures: the static split keeps feeding a dead station, the
// re-weighting split never does.
type ReWeighting struct {
	group      *model.Group
	lambda     float64
	opts       core.Options
	healthyCum []float64 // all-up weights, for forking without a re-solve
	healthyPhi float64

	mu       sync.Mutex
	up       []bool
	cum      []float64
	phi      float64
	resolves int
	lastErr  error
}

// NewReWeighting solves the healthy-state optimum and returns the
// dispatcher ready to adapt.
func NewReWeighting(g *model.Group, lambda float64, opts core.Options) (*ReWeighting, error) {
	if g == nil {
		return nil, fmt.Errorf("dispatch: nil group")
	}
	res, err := core.Optimize(g, lambda, opts)
	if err != nil {
		return nil, fmt.Errorf("dispatch: healthy solve: %w", err)
	}
	r := &ReWeighting{
		group:      g.Clone(),
		lambda:     lambda,
		opts:       opts,
		healthyCum: cumulative(res.Rates),
		healthyPhi: res.Phi,
		up:         make([]bool, g.N()),
		phi:        res.Phi,
	}
	for i := range r.up {
		r.up[i] = true
	}
	r.cum = r.healthyCum
	return r, nil
}

// Fork implements sim.Forker: an independent dispatcher reset to the
// healthy all-up state (the group, options, and healthy solution are
// shared read-only; the adaptive state is fresh), so each replication
// observes its own failure trace without inheriting another run's
// degraded weights.
func (r *ReWeighting) Fork() sim.Dispatcher {
	n := &ReWeighting{
		group:      r.group,
		lambda:     r.lambda,
		opts:       r.opts,
		healthyCum: r.healthyCum,
		healthyPhi: r.healthyPhi,
		up:         make([]bool, len(r.healthyCum)),
		phi:        r.healthyPhi,
	}
	for i := range n.up {
		n.up[i] = true
	}
	n.cum = n.healthyCum
	return n
}

// Name implements sim.Dispatcher.
func (r *ReWeighting) Name() string { return "re-optimizing" }

// Resolves returns how many degraded-mode re-optimizations have run
// (failure and recovery events observed), and the error of the last
// re-solve that failed, if any.
func (r *ReWeighting) Resolves() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resolves, r.lastErr
}

// Pick implements sim.Dispatcher.
func (r *ReWeighting) Pick(views []sim.StationView, rng *rand.Rand) int {
	r.mu.Lock()
	changed := false
	for i, v := range views {
		if i < len(r.up) && r.up[i] != v.Up {
			r.up[i] = v.Up
			changed = true
		}
	}
	if changed {
		r.resolve()
	}
	cum := r.cum
	r.mu.Unlock()
	return pickCumulative(cum, rng.Float64())
}

// resolve recomputes the optimal rates over the alive subset. Called
// with r.mu held. On failure (e.g. every station down) the previous
// weights are kept — the tasks have nowhere better to go — and the
// error is reported through Resolves.
func (r *ReWeighting) resolve() {
	r.resolves++
	opts := r.opts
	opts.WarmPhi = r.phi
	res, err := core.OptimizeDegraded(r.group, r.lambda, r.up, opts)
	if err != nil {
		r.lastErr = err
		return
	}
	r.lastErr = nil
	r.phi = res.Phi
	r.cum = cumulative(res.Rates)
}

// cumulative normalizes non-negative weights into a cumulative
// distribution for pickCumulative. A zero total (cannot happen for an
// optimizer result) falls back to uniform.
func cumulative(weights []float64) []float64 {
	cum := make([]float64, len(weights))
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(cum))
		}
		return cum
	}
	run := 0.0
	last := -1
	for i, w := range weights {
		if w > 0 {
			last = i
		}
		run += w / total
		cum[i] = run
	}
	// Guard rounding at the last positive weight (see NewProbabilistic):
	// pinning only the final entry would make a drained last station
	// pickable. Down stations re-solved to zero rate must stay
	// unpickable.
	for i := last; i < len(cum); i++ {
		cum[i] = 1
	}
	return cum
}

var (
	_ sim.Dispatcher = (*HealthFiltered)(nil)
	_ sim.Dispatcher = (*ReWeighting)(nil)
	_ sim.Forker     = (*HealthFiltered)(nil)
	_ sim.Forker     = (*ReWeighting)(nil)
)
