package dispatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sim"
)

func TestNewProbabilisticValidation(t *testing.T) {
	if _, err := NewProbabilistic(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewProbabilistic([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights should fail")
	}
	if _, err := NewProbabilistic([]float64{1, -1, 2}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewProbabilistic([]float64{1, 0, 2}); err != nil {
		t.Errorf("zero individual weight is fine: %v", err)
	}
}

func TestProbabilisticFrequencies(t *testing.T) {
	p, err := NewProbabilistic([]float64{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	views := make([]sim.StationView, 3)
	counts := make([]int, 3)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[p.Pick(views, rng)]++
	}
	want := []float64{0.1, 0.3, 0.6}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("station %d frequency %.4f, want %.1f", i, got, want[i])
		}
	}
}

func TestProbabilisticZeroWeightNeverPicked(t *testing.T) {
	p, err := NewProbabilistic([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	views := make([]sim.StationView, 3)
	for i := 0; i < 10000; i++ {
		if p.Pick(views, rng) == 1 {
			t.Fatal("zero-weight station picked")
		}
	}
}

// TestPickCumulativeBoundaries pins the exact boundary behaviour of the
// binary search: zero-weight (drained or failed) stations must be
// unreachable even when u lands exactly on a cumulative boundary — the
// cases the old linear scan (u <= cum[i]) got wrong.
func TestPickCumulativeBoundaries(t *testing.T) {
	// Stations 0 and 2 drained; weights {0, 1, 0, 1}.
	p, err := NewProbabilistic([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u    float64
		want int
	}{
		{0, 1},                    // leading zero weight: u=0 must skip station 0
		{0.25, 1},                 //
		{0.5, 3},                  // exactly on station 1's boundary: next positive weight
		{0.75, 3},                 //
		{math.Nextafter(1, 0), 3}, // largest representable u < 1
	}
	for _, c := range cases {
		if got := pickCumulative(p.cum, c.u); got != c.want {
			t.Errorf("pickCumulative(u=%v) = %d, want %d", c.u, got, c.want)
		}
	}
	// All-boundary stress: every cumulative value fed back as u must
	// still land on a positively weighted station.
	for _, u := range p.cum {
		if u >= 1 {
			continue
		}
		if got := pickCumulative(p.cum, u); got == 0 || got == 2 {
			t.Errorf("pickCumulative(boundary %v) picked drained station %d", u, got)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	views := make([]sim.StationView, 3)
	seq := make([]int, 7)
	for i := range seq {
		seq[i] = rr.Pick(views, nil)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v, want %v", seq, want)
		}
	}
}

func TestJSQPicksLeastLoaded(t *testing.T) {
	views := []sim.StationView{
		{Index: 0, Blades: 2, Speed: 1, Busy: 2, QueueLen: 4}, // load 3.0
		{Index: 1, Blades: 4, Speed: 1, Busy: 2, QueueLen: 0}, // load 0.5
		{Index: 2, Blades: 2, Speed: 1, Busy: 2, QueueLen: 0}, // load 1.0
	}
	if got := (JSQ{}).Pick(views, nil); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
}

func TestJSQTieBreaksBySpeed(t *testing.T) {
	views := []sim.StationView{
		{Index: 0, Blades: 2, Speed: 1.0, Busy: 1, QueueLen: 0},
		{Index: 1, Blades: 2, Speed: 2.0, Busy: 1, QueueLen: 0},
	}
	if got := (JSQ{}).Pick(views, nil); got != 1 {
		t.Fatalf("picked %d, want faster station 1", got)
	}
}

func TestLeastExpectedWaitPrefersFreeBlade(t *testing.T) {
	views := []sim.StationView{
		{Index: 0, Blades: 2, Speed: 1, ServiceMean: 1, Busy: 2, QueueLen: 0},   // busy
		{Index: 1, Blades: 2, Speed: 0.5, ServiceMean: 2, Busy: 1, QueueLen: 0}, // free but slow
	}
	// Station 0: wait (0+1)·(1/2)+1 = 1.5. Station 1: 2.0 → station 0 wins.
	if got := (LeastExpectedWait{}).Pick(views, nil); got != 0 {
		t.Fatalf("picked %d, want 0", got)
	}
	// Lengthen station 0's queue; station 1 becomes better.
	views[0].QueueLen = 5
	if got := (LeastExpectedWait{}).Pick(views, nil); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
}

func TestDispatcherNames(t *testing.T) {
	p, _ := NewProbabilistic([]float64{1})
	names := []string{p.Name(), (&RoundRobin{}).Name(), JSQ{}.Name(), LeastExpectedWait{}.Name()}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

// Integration: simulating the paper's system with the optimizer's rates
// fed into probabilistic routing must reproduce the analytic optimal T′.
func TestOptimalRatesSimulateToAnalyticT(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := core.Optimize(g, lambda, core.Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		disp, err := NewProbabilistic(res.Rates)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.RunReplications(sim.Config{
			Group: g, Discipline: d, GenericRate: lambda,
			Dispatcher: disp, Horizon: 20000, Warmup: 1000, Seed: 7,
		}, 10, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(rep.GenericT.Mean-res.AvgResponseTime) / res.AvgResponseTime; rel > 0.02 {
			t.Errorf("%v: simulated T′ = %v vs analytic %.6f (rel err %.3f)",
				d, rep.GenericT, res.AvgResponseTime, rel)
		}
	}
}

// Integration: at the optimal rates, each station's simulated generic
// response time must match its analytic T′_i — the per-server
// decomposition behind Table 1, not just the aggregate.
func TestPerStationResponseMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	res, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	disp, err := NewProbabilistic(res.Rates)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run(sim.Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
		Dispatcher: disp, Horizon: 60000, Warmup: 2000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Servers {
		got := run.PerStationGeneric[i].Mean()
		want := res.ResponseTimes[i]
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("station %d: simulated T′ %.4f vs analytic %.4f (rel %.3f)", i+1, got, want, rel)
		}
	}
	// The group-level analytic P95 must match the simulator's P²
	// estimate — the distributional counterpart of T′.
	wantP95, err := core.GroupGenericQuantile(g, res.Rates, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(run.GenericP95-wantP95) / wantP95; rel > 0.05 {
		t.Errorf("group P95: simulated %.4f vs analytic %.4f (rel %.3f)", run.GenericP95, wantP95, rel)
	}
}

// Integration: state-aware JSQ should not be catastrophically worse
// than the optimal static split, and round-robin should be clearly
// worse than optimal on this heterogeneous system (its equal split
// overloads the small fast servers).
func TestPolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	opt, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProbabilistic(opt.Rates)
	if err != nil {
		t.Fatal(err)
	}
	runPolicy := func(d sim.Dispatcher) float64 {
		rep, err := sim.RunReplications(sim.Config{
			Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
			Dispatcher: d, Horizon: 10000, Warmup: 500, Seed: 11,
		}, 6, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		return rep.GenericT.Mean
	}
	tOpt := runPolicy(prob)
	tRR := runPolicy(&RoundRobin{})
	if tRR < tOpt {
		t.Errorf("round-robin (%.4f) should not beat optimal probabilistic (%.4f)", tRR, tOpt)
	}
	// JSQ exploits live state, which a static split cannot; just check
	// it stays in a sane band around the optimal static value.
	tJSQ := runPolicy(JSQ{})
	if tJSQ > 2*tOpt {
		t.Errorf("JSQ (%.4f) implausibly bad vs optimal (%.4f)", tJSQ, tOpt)
	}
}
