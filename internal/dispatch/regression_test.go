package dispatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestProbabilisticTrailingZeroWeights is the regression test for the
// rounding-guard bug: NewProbabilistic used to force cum[len-1] = 1,
// which opened the interval (cum[last-positive], 1) and made a
// zero-weight *last* station pickable — exactly the state a degraded
// re-solve or HealthFiltered drain leaves behind.
func TestProbabilisticTrailingZeroWeights(t *testing.T) {
	for _, weights := range [][]float64{
		{1, 2, 0},       // one trailing zero
		{3, 0, 0},       // several trailing zeros
		{0, 1, 0, 0, 0}, // leading and trailing zeros
	} {
		p, err := NewProbabilistic(weights)
		if err != nil {
			t.Fatalf("weights %v: %v", weights, err)
		}
		last := -1
		for i, w := range weights {
			if w > 0 {
				last = i
			}
		}
		// The guard must sit on the last positive weight, and every
		// trailing entry shares it (empty intervals).
		for i := last; i < len(p.cum); i++ {
			if p.cum[i] != 1 {
				t.Errorf("weights %v: cum[%d] = %v, want 1", weights, i, p.cum[i])
			}
		}
		// Direct boundary probes, including the largest u < 1 that used
		// to fall into the phantom interval of the trailing zeros.
		for _, u := range []float64{0, 0.5, 0.999999, math.Nextafter(1, 0)} {
			if got := pickCumulative(p.cum, u); got > last || weights[got] == 0 {
				t.Errorf("weights %v: u=%v picked zero-weight station %d", weights, u, got)
			}
		}
		// Randomized sweep through Pick itself.
		rng := rand.New(rand.NewSource(7))
		views := make([]sim.StationView, len(weights))
		for i := 0; i < 20000; i++ {
			if got := p.Pick(views, rng); weights[got] == 0 {
				t.Fatalf("weights %v: picked zero-weight station %d", weights, got)
			}
		}
	}
}

// TestCumulativeTrailingZeroWeights covers the same guard in the
// ReWeighting helper: a re-solve that zeroes the last station's rate
// must leave it unpickable.
func TestCumulativeTrailingZeroWeights(t *testing.T) {
	cum := cumulative([]float64{2, 1, 0, 0})
	for i := 1; i < len(cum); i++ {
		if cum[i] != 1 {
			t.Errorf("cum[%d] = %v, want 1", i, cum[i])
		}
	}
	for _, u := range []float64{0.7, 0.999, math.Nextafter(1, 0)} {
		if got := pickCumulative(cum, u); got > 1 {
			t.Errorf("u=%v picked drained station %d", u, got)
		}
	}
}

// TestRoundRobinCursorWraps is the regression test for the unbounded
// cursor: after the fix the cursor stays in [0, len), so a daemon
// dispatching forever can never overflow into a negative index.
func TestRoundRobinCursorWraps(t *testing.T) {
	views := make([]sim.StationView, 3)
	rr := &RoundRobin{}
	for i := 0; i < 100; i++ {
		if got := rr.Pick(views, nil); got != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%3)
		}
		if rr.next < 0 || rr.next >= len(views) {
			t.Fatalf("cursor escaped range: %d", rr.next)
		}
	}
	// A cursor at the overflow edge (what an unbounded increment would
	// eventually produce) must still yield a valid index and recover.
	rr = &RoundRobin{next: math.MaxInt}
	for i := 0; i < 5; i++ {
		if got := rr.Pick(views, nil); got < 0 || got >= len(views) {
			t.Fatalf("pick after saturated cursor = %d", got)
		}
	}
	// And a poisoned negative cursor recovers instead of panicking.
	rr = &RoundRobin{next: -math.MaxInt}
	for i := 0; i < 5; i++ {
		if got := rr.Pick(views, nil); got < 0 || got >= len(views) {
			t.Fatalf("pick after negative cursor = %d", got)
		}
	}
}
