package dispatch

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sim"
)

func TestNewWeightedRoundRobinValidation(t *testing.T) {
	if _, err := NewWeightedRoundRobin(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewWeightedRoundRobin([]float64{0, 0}); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := NewWeightedRoundRobin([]float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestWeightedRoundRobinShares(t *testing.T) {
	w, err := NewWeightedRoundRobin([]float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	views := make([]sim.StationView, 3)
	counts := make([]int, 3)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[w.Pick(views, nil)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		if math.Abs(float64(c)/n-want[i]) > 0.001 {
			t.Errorf("station %d share %.4f, want %.1f", i, float64(c)/n, want[i])
		}
	}
}

func TestWeightedRoundRobinSmoothness(t *testing.T) {
	// Smooth WRR with weights 5:1 must not emit long bursts of the
	// heavy station beyond its weight.
	w, err := NewWeightedRoundRobin([]float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	views := make([]sim.StationView, 2)
	run := 0
	maxRun := 0
	for i := 0; i < 600; i++ {
		if w.Pick(views, nil) == 0 {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 5 {
		t.Fatalf("heavy station burst of %d, smooth WRR should cap at 5", maxRun)
	}
}

func TestWeightedRoundRobinDoesNotAliasInput(t *testing.T) {
	weights := []float64{1, 1}
	w, err := NewWeightedRoundRobin(weights)
	if err != nil {
		t.Fatal(err)
	}
	weights[0] = 100
	views := make([]sim.StationView, 2)
	counts := make([]int, 2)
	for i := 0; i < 100; i++ {
		counts[w.Pick(views, nil)]++
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("mutating caller slice changed behavior: %v", counts)
	}
}

func TestWRRSimulatesCloseToProbabilistic(t *testing.T) {
	// Deterministic smoothing preserves the rates, so the simulated T′
	// should be close to (and typically slightly below) the
	// probabilistic split's value.
	if testing.Short() {
		t.Skip("simulation")
	}
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	rates := make([]float64, g.N())
	for i := range rates {
		rates[i] = lambda * g.Servers[i].MaxGenericRate(1) / g.MaxGenericRate()
	}
	runWith := func(d sim.Dispatcher) float64 {
		res, err := sim.Run(sim.Config{
			Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
			Dispatcher: d, Horizon: 50000, Warmup: 1000, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GenericResponse.Mean()
	}
	prob, err := NewProbabilistic(rates)
	if err != nil {
		t.Fatal(err)
	}
	wrr, err := NewWeightedRoundRobin(rates)
	if err != nil {
		t.Fatal(err)
	}
	tProb := runWith(prob)
	tWRR := runWith(wrr)
	if tWRR > tProb {
		t.Fatalf("smoothed arrivals should not be slower: WRR %.4f vs prob %.4f", tWRR, tProb)
	}
	if (tProb-tWRR)/tProb > 0.2 {
		t.Fatalf("WRR implausibly better: %.4f vs %.4f", tWRR, tProb)
	}
}
