package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// TestForkIsolation pins the sim.Forker contract for every stateful
// policy: a fork starts in the initial state and mutating it leaves the
// parent untouched. Without this, RunReplications' parallel workers
// would race on shared counters/buffers and entangle replications.
func TestForkIsolation(t *testing.T) {
	views := make([]sim.StationView, 3)
	for i := range views {
		views[i] = sim.StationView{Index: i, Blades: 2, Speed: 1, ServiceMean: 1, Up: true, AvailableBlades: 2}
	}

	t.Run("round-robin", func(t *testing.T) {
		rr := &RoundRobin{}
		rr.Pick(views, nil)
		rr.Pick(views, nil) // parent mid-cycle at 2
		fork := rr.Fork().(*RoundRobin)
		if got := fork.Pick(views, nil); got != 0 {
			t.Errorf("fork first pick = %d, want fresh cycle start 0", got)
		}
		if got := rr.Pick(views, nil); got != 2 {
			t.Errorf("parent pick after fork = %d, want 2 (cycle undisturbed)", got)
		}
	})

	t.Run("weighted-round-robin", func(t *testing.T) {
		w, err := NewWeightedRoundRobin([]float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		var parent, forked []int
		for i := 0; i < 6; i++ {
			parent = append(parent, w.Pick(views, nil))
		}
		f := w.Fork().(*WeightedRoundRobin)
		for i := 0; i < 6; i++ {
			forked = append(forked, f.Pick(views, nil))
		}
		// Deterministic policy: a fresh fork must replay the exact
		// sequence the parent produced from its own initial state.
		for i := range parent {
			if parent[i] != forked[i] {
				t.Fatalf("fork sequence %v diverges from initial-state sequence %v", forked, parent)
			}
		}
	})

	t.Run("re-weighting", func(t *testing.T) {
		g := model.LiExample1Group()
		lambda := 0.4 * g.MaxGenericRate()
		r, err := NewReWeighting(g, lambda, core.Options{Discipline: queueing.FCFS})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		gviews := make([]sim.StationView, g.N())
		for i, s := range g.Servers {
			gviews[i] = sim.StationView{Index: i, Blades: s.Size, Speed: s.Speed,
				ServiceMean: g.TaskSize / s.Speed, Up: true, AvailableBlades: s.Size}
		}
		gviews[0].Up, gviews[0].AvailableBlades = false, 0
		r.Pick(gviews, rng) // parent degrades and re-solves
		if n, _ := r.Resolves(); n != 1 {
			t.Fatalf("parent resolves = %d, want 1", n)
		}
		f := r.Fork().(*ReWeighting)
		if n, _ := f.Resolves(); n != 0 {
			t.Errorf("fork resolves = %d, want 0 (healthy initial state)", n)
		}
		// The fork believes every station is up: handing it all-up views
		// must not trigger a re-solve, and station 0 must receive traffic.
		for i := range gviews {
			gviews[i].Up = true
			gviews[i].AvailableBlades = g.Servers[i].Size
		}
		picked0 := false
		for trial := 0; trial < 2000; trial++ {
			if f.Pick(gviews, rng) == 0 {
				picked0 = true
			}
		}
		if n, _ := f.Resolves(); n != 0 {
			t.Errorf("fork re-solved on all-up views: resolves = %d", n)
		}
		if !picked0 {
			t.Error("fork never routed to station 0 — inherited parent's degraded weights")
		}
		// Parent state survived the fork's activity.
		if n, _ := r.Resolves(); n != 1 {
			t.Errorf("parent resolves changed to %d after fork activity", n)
		}
	})

	t.Run("health-filtered", func(t *testing.T) {
		h, err := NewHealthFiltered(&RoundRobin{})
		if err != nil {
			t.Fatal(err)
		}
		h.Pick(views, nil) // inner cycle at 1
		f := h.Fork().(*HealthFiltered)
		if f.Inner == h.Inner {
			t.Fatal("fork shares the stateful inner dispatcher")
		}
		if got := f.Pick(views, nil); got != 0 {
			t.Errorf("forked inner cycle starts at %d, want 0", got)
		}
	})
}

// TestRunReplicationsForksDispatcher verifies the runner actually uses
// the Forker hook: after parallel replications the configured parent
// dispatcher must still be in its initial state.
func TestRunReplicationsForksDispatcher(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.3 * g.MaxGenericRate()
	rr := &RoundRobin{}
	if _, err := sim.RunReplications(sim.Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
		Dispatcher: rr, Horizon: 200, Warmup: 10, Seed: 5,
	}, 4, 0.95); err != nil {
		t.Fatal(err)
	}
	views := make([]sim.StationView, g.N())
	if got := rr.Pick(views, nil); got != 0 {
		t.Errorf("parent round-robin advanced to %d during replications; forks not used", got)
	}
}
