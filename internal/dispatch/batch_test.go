package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestPickBatchMatchesSequential pins the batch contract for the
// probabilistic picker: PickBatch(us, dst) routes exactly the stations
// len(us) sequential PickU calls would, on dense tables both small
// (branch-free scan) and large (binary-search path), and on
// boundary-exact variates (u equal to a cumulative weight must fall in
// the NEXT interval, matching pickCumulative's strict compare).
func TestPickBatchMatchesSequential(t *testing.T) {
	cases := map[string][]float64{
		"small-dense": {3, 1, 0, 2},
		"large-dense": func() []float64 {
			w := make([]float64, 48) // > 16: binary-search path
			for i := range w {
				w[i] = float64(i%7) + 0.25
			}
			return w
		}(),
	}
	for name, weights := range cases {
		t.Run(name, func(t *testing.T) {
			p, err := NewProbabilistic(weights)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			us := make([]float64, 4*MaxPickBatch+5) // exercises >1 chunk worth
			for i := range us {
				us[i] = rng.Float64()
			}
			// Splice in the exact cumulative boundaries: these are the
			// values where an off-by-one between the branch-free count and
			// the strict compare would show.
			copy(us, p.cum[:min(len(p.cum), len(us)/2)])
			us[len(us)-1] = 0
			dst := make([]int32, len(us))
			p.PickBatch(us, dst)
			for j, u := range us {
				if want := p.PickU(u); int(dst[j]) != want {
					t.Fatalf("u=%v: batch picked %d, sequential picked %d", u, dst[j], want)
				}
			}
		})
	}
}

// TestPickBatchSparseMatchesSequential pins the sparse variant: the
// compact-table scan plus index remap must agree with PickU on the
// sparse picker, and with the dense picker built from the expanded
// weights.
func TestPickBatchSparseMatchesSequential(t *testing.T) {
	const n = 200
	index := []int32{3, 17, 42, 99, 151, 199}
	weights := []float64{2, 0, 5, 1, 0.5, 3}
	sp, err := NewProbabilisticSparse(n, index, weights)
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]float64, n)
	for k, i := range index {
		dense[i] = weights[k]
	}
	dp, err := NewProbabilistic(dense)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	us := make([]float64, 300)
	for i := range us {
		us[i] = rng.Float64()
	}
	dst := make([]int32, len(us))
	sp.PickBatch(us, dst)
	for j, u := range us {
		if want := sp.PickU(u); int(dst[j]) != want {
			t.Fatalf("u=%v: sparse batch picked %d, sparse sequential picked %d", u, dst[j], want)
		}
		if want := dp.PickU(u); int(dst[j]) != want {
			t.Fatalf("u=%v: sparse batch picked %d, dense sequential picked %d", u, dst[j], want)
		}
	}
}

// seqDepths wraps fakeDepths so the sequential oracle can mirror the
// serving layer's per-pick depth increment between PickU calls.
type seqDepths struct{ d []int64 }

func (s *seqDepths) Depth(station int) int64 { return s.d[station] }

// TestPowerOfDPickBatchMatchesSequential pins the JSQ(d) batch
// contract: a single-threaded PickBatch routes exactly the stations k
// sequential PickU calls would when each sequential pick increments the
// chosen station's depth (the router-mode serving flow). This is the
// snapshot-plus-overlay equivalence the depth-staleness bound rests on.
func TestPowerOfDPickBatchMatchesSequential(t *testing.T) {
	run := func(t *testing.T, n, batch int, index []int32, capac []float64, d int) {
		t.Helper()
		start := make([]int64, n)
		for i := range start {
			start[i] = int64(i % 5)
		}
		rng := rand.New(rand.NewSource(int64(7 + n + d)))
		bits := make([]uint64, batch)
		for i := range bits {
			bits[i] = rng.Uint64()
		}

		batchDepths := &seqDepths{d: append([]int64(nil), start...)}
		pb, err := NewPowerOfD(d, n, index, capac, batchDepths)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]int32, len(bits))
		pb.PickBatch(bits, dst)
		// PickBatch never touches the reader's counters itself.
		for i, v := range batchDepths.d {
			if v != start[i] {
				t.Fatalf("PickBatch mutated depth[%d]: %d -> %d", i, start[i], v)
			}
		}

		seq := &seqDepths{d: append([]int64(nil), start...)}
		ps, err := NewPowerOfD(d, n, index, capac, seq)
		if err != nil {
			t.Fatal(err)
		}
		for j, b := range bits {
			want := ps.PickU(b)
			if int(dst[j]) != want {
				t.Fatalf("pick %d: batch %d, sequential %d", j, dst[j], want)
			}
			seq.d[want]++ // the serving layer's per-pick increment
		}
	}

	// Batches far longer than the serving chunk: the direct-indexed
	// overlay spans the whole call, so equivalence holds end to end.
	t.Run("narrow-jsq2", func(t *testing.T) {
		capac := []float64{1.5, 1.0, 2.5, 0.75, 1.0}
		run(t, 5, 3*MaxPickBatch+7, nil, capac, 2)
	})
	t.Run("narrow-jsq4", func(t *testing.T) {
		capac := []float64{1.5, 1.0, 2.5, 0.75, 1.0, 3.0, 0.5}
		run(t, 7, 3*MaxPickBatch+7, nil, capac, 4)
	})
	t.Run("sparse-candidates", func(t *testing.T) {
		index := []int32{2, 9, 33, 57, 90}
		capac := []float64{1, 2, 0.5, 1.5, 1}
		run(t, 100, 3*MaxPickBatch+7, index, capac, 2)
	})
	// The wide touched-list path guarantees sequential equivalence per
	// MaxPickBatch pass (its documented overlay scope — the serving
	// layer's chunk size).
	t.Run("wide-touched-list", func(t *testing.T) {
		n := batchSnapStations + 100 // forces the pickBatchWide path
		capac := make([]float64, n)
		for i := range capac {
			capac[i] = 0.5 + float64(i%9)*0.25
		}
		run(t, n, MaxPickBatch, nil, capac, 3)
	})
	// Beyond one pass the wide path must still stay inside the candidate
	// set (overlay resets, but never routes off-fleet).
	t.Run("wide-long-batch", func(t *testing.T) {
		n := batchSnapStations + 50
		capac := make([]float64, n)
		for i := range capac {
			capac[i] = 1
		}
		p, err := NewPowerOfD(2, n, nil, capac, &seqDepths{d: make([]int64, n)})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		bits := make([]uint64, 2*MaxPickBatch+9)
		dst := make([]int32, len(bits))
		for i := range bits {
			bits[i] = rng.Uint64()
		}
		p.PickBatch(bits, dst)
		for j, st := range dst {
			if st < 0 || int(st) >= n {
				t.Fatalf("pick %d: station %d outside fleet [0, %d)", j, st, n)
			}
		}
	})
}

// TestBatchedWrapperOverlay pins the sim wrapper: a state-aware inner
// policy driven through Batched must see the batch's own picks via the
// busy overlay (so a batch of k never dogpiles one station just because
// the snapshot is frozen), and the frozen real views must not be
// mutated.
func TestBatchedWrapperOverlay(t *testing.T) {
	const k = 8
	b := NewBatched(JSQ{}, k)
	views := []sim.StationView{
		{Index: 0, Blades: 4, Speed: 1, Busy: 0, AvailableBlades: 4, Up: true},
		{Index: 1, Blades: 4, Speed: 1, Busy: 0, AvailableBlades: 4, Up: true},
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < k; i++ {
		// JSQ over two equal stations must strictly alternate: without
		// the overlay, every pick of the frozen snapshot would tie-break
		// to station 0 and the batch would dogpile it.
		if got, want := b.Pick(views, rng), i%2; got != want {
			t.Fatalf("pick %d routed to %d, want %d (busy overlay not applied)", i, got, want)
		}
	}
	if views[0].Busy != 0 || views[1].Busy != 0 {
		t.Fatalf("wrapper mutated the real views: busy %d/%d", views[0].Busy, views[1].Busy)
	}
	p, err := NewPowerOfD(2, 2, nil, []float64{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := NewBatched(p, k).Name(), "jsq2/batch8"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
}

// TestBatchedWrapperBatchPicker covers the fast path: an inner
// sim.BatchPicker routes the whole refill in one call, and the
// probabilistic implementation is draw-for-draw identical to the
// unwrapped dispatcher (state-oblivious picks cannot observe batching).
func TestBatchedWrapperBatchPicker(t *testing.T) {
	weights := []float64{3, 1, 2}
	p1, err := NewProbabilistic(weights)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProbabilistic(weights)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatched(p1, 4)
	views := []sim.StationView{{Index: 0}, {Index: 1}, {Index: 2}}
	ra, rb := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if got, want := b.Pick(views, ra), p2.Pick(views, rb); got != want {
			t.Fatalf("pick %d: batched %d, plain %d", i, got, want)
		}
	}
}

// TestBatchedFork pins replication isolation: forks share no queue (a
// half-consumed batch must not leak into a sibling) and fork the inner
// dispatcher when it is itself stateful.
func TestBatchedFork(t *testing.T) {
	b := NewBatched(&RoundRobin{}, 4)
	views := []sim.StationView{{Index: 0}, {Index: 1}, {Index: 2}}
	rng := rand.New(rand.NewSource(1))
	b.Pick(views, rng) // half-consume a batch
	f, ok := b.Fork().(*Batched)
	if !ok {
		t.Fatal("Fork did not return a *Batched")
	}
	if f.pos != 0 || len(f.queue) != 0 {
		t.Fatalf("fork inherited queue state: pos=%d len=%d", f.pos, len(f.queue))
	}
	if f.inner == b.inner {
		t.Fatal("fork shares the stateful inner dispatcher")
	}
	if got := f.Pick(views, rng); got != 0 {
		t.Fatalf("forked round-robin starts at %d, want 0", got)
	}
	// k below 1 clamps rather than wedging refill in an empty loop.
	if c := NewBatched(&RoundRobin{}, 0); c.k != 1 {
		t.Fatalf("NewBatched clamped k to %d, want 1", c.k)
	}
}
