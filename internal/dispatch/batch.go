package dispatch

// Batched pick paths: the serving layer's DecideBatch amortizes its
// per-request overhead (plan load, random-word generation, estimator
// bump) over small decision batches, and these entry points amortize
// the pick itself. Each is pick-for-pick identical to the sequential
// loop it replaces — PickBatch(us, dst) routes exactly the stations k
// successive PickU(us[j]) calls would — so batching changes cost, never
// distribution. The batch variants consume caller-supplied variates and
// allocate nothing: all scratch is fixed-size stack arrays, which is
// what lets the serving layer keep its 0 allocs/op gate.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// MaxPickBatch is the batch size the fixed stack scratch arrays on the
// batched hot path are sized for — the serving layer's chunk size, and
// the overlay scope of PowerOfD's wide-candidate fallback (see
// PickBatch).
const MaxPickBatch = 64

// PickBatch routes len(dst) decisions from caller-supplied uniform
// variates: dst[j] receives the station PickU(us[j]) would return, for
// every j, in order. One call walks the cumulative table once per
// variate with a branch-free prefix-sum scan (small tables) or a binary
// search (large ones); the caller owns the randomness, so concurrent
// batches share nothing writable.
//
//bladelint:hotpath
func (p *Probabilistic) PickBatch(us []float64, dst []int32) {
	if p.idx != nil {
		p.PickBatchSparse(us, dst)
		return
	}
	pickBatchCumulative(p.cum, us, dst)
}

// PickBatchSparse is PickBatch over a sparse-built picker
// (NewProbabilisticSparse): positions found in the compact cumulative
// table are mapped through the station index after the scan, so the
// walk itself stays a dense pass over the loaded stations only.
//
//bladelint:hotpath
func (p *Probabilistic) PickBatchSparse(us []float64, dst []int32) {
	pickBatchCumulative(p.cum, us, dst)
	if p.idx == nil {
		return // dense construction: positions already are stations
	}
	for j, k := range dst {
		dst[j] = p.idx[k]
	}
}

// pickBatchCumulative fills dst[j] with pickCumulative(cum, us[j]).
//
// Small tables take the branch-free prefix-sum walk: the first position
// whose cumulative weight strictly exceeds u equals the count of
// positions with cum[k] ≤ u (the table is non-decreasing), and that
// count is accumulated without a data-dependent branch. Both cum and u
// are non-negative IEEE floats, whose ordering matches their bit
// patterns' integer ordering, so cum[k] ≤ u reduces to the sign bit of
// bits(cum[k]) − bits(u) − 1 — one subtract and shift per table entry,
// fully pipelined across the batch. The strict-exceed semantics carry
// over exactly: zero-weight stations (empty intervals) stay unpickable.
//
// Large tables fall back to the same binary search the single-pick path
// uses; the batch still amortizes everything around the search.
func pickBatchCumulative(cum []float64, us []float64, dst []int32) {
	if len(cum) <= 16 {
		for j, u := range us {
			ub := int64(math.Float64bits(u))
			k := int32(0)
			for _, c := range cum {
				k += int32(uint64(int64(math.Float64bits(c))-ub-1) >> 63)
			}
			dst[j] = k
		}
		return
	}
	for j, u := range us {
		dst[j] = int32(sort.Search(len(cum), func(i int) bool { return cum[i] > u }))
	}
}

// batchSnapStations bounds the candidate-set size for which PickBatch
// keeps its depth snapshot in a direct-indexed stack array (one slot
// per candidate position). Wider candidate sets use a touched-list
// instead: at most MaxPickBatch·MaxSampleD distinct positions are
// sampled per chunk, so the list is small even when the fleet is not.
const batchSnapStations = 256

// PickBatch routes len(dst) decisions from per-decision random words
// (one word per decision, laid out exactly as PickU consumes it: d
// consecutive 16-bit station samples from bit 0). Each sampled
// candidate's depth is read through the DepthReader at most ONCE per
// call — the d·k candidate depths are snapshotted as they are first
// touched instead of re-read every decision — and the batch's own picks
// advance a local overlay, so a single-threaded batch routes exactly
// the stations k sequential PickU calls with per-pick depth increments
// would. The real counters are not touched here: the caller applies one
// batched increment per chosen station afterwards, which is what bounds
// the staleness other dispatchers observe by the batch size.
//
// Candidate sets wider than batchSnapStations fall back to a
// touched-list overlay whose scope is MaxPickBatch decisions: longer
// batches re-snapshot every MaxPickBatch picks, trading the exact
// sequential equivalence for a bounded touched list (the serving layer
// never exceeds that chunk size in one call, so it is unaffected).
//
//bladelint:hotpath
func (p *PowerOfD) PickBatch(bits []uint64, dst []int32) {
	if len(p.cand) <= batchSnapStations {
		p.pickBatchSnap(bits, dst)
		return
	}
	for len(dst) > MaxPickBatch {
		p.pickBatchWide(bits[:MaxPickBatch], dst[:MaxPickBatch])
		bits, dst = bits[MaxPickBatch:], dst[MaxPickBatch:]
	}
	if len(dst) > 0 {
		p.pickBatchWide(bits, dst)
	}
}

// pickBatchSnap is PickBatch's direct-indexed variant: one snapshot
// slot per candidate position (O(1) lookup, one stack clear per call),
// overlay carried across the whole batch.
func (p *PowerOfD) pickBatchSnap(bits []uint64, dst []int32) {
	nc := uint64(len(p.cand))
	var depth [batchSnapStations]int64
	var have [batchSnapStations]bool
	for j := range dst {
		b := bits[j]
		pos := int((b & sampleMask) * nc >> sampleBits)
		if !have[pos] {
			depth[pos] = p.depths.Depth(int(p.cand[pos]))
			have[pos] = true
		}
		best, bestPos := int(p.cand[pos]), pos
		bestDepth, bestCap := depth[pos], p.capac[pos]
		for k := 1; k < p.d; k++ {
			slice := (b >> (k * sampleBits)) & sampleMask
			pos = int(slice * nc >> sampleBits)
			st := int(p.cand[pos])
			if st == best {
				continue // duplicate sample: same score by construction
			}
			if !have[pos] {
				depth[pos] = p.depths.Depth(st)
				have[pos] = true
			}
			dep, c := depth[pos], p.capac[pos]
			// st beats best iff (dep+1)/c < (bestDepth+1)/bestCap.
			lhs := float64(dep+1) * bestCap
			rhs := float64(bestDepth+1) * c
			if lhs < rhs ||
				(lhs == rhs && (c > bestCap || (c == bestCap && st < best))) { //bladelint:allow floateq -- exact tie-break: equal cross-products defer to capacity then index, deterministically
				best, bestPos, bestDepth, bestCap = st, pos, dep, c
			}
		}
		dst[j] = int32(best)
		depth[bestPos]++ // the batch's own routed work, visible to later picks
	}
}

// pickBatchWide is the fallback for candidate sets too wide for the
// direct-indexed snapshot: touched positions and their depth overlay
// live in a compact list (≤ MaxPickBatch·MaxSampleD entries, which is
// why PickBatch caps this variant at MaxPickBatch decisions per pass),
// found by linear scan. Fleet-scale candidate sets trade a short scan
// per sample for not clearing a fleet-sized array per call.
func (p *PowerOfD) pickBatchWide(bits []uint64, dst []int32) {
	nc := uint64(len(p.cand))
	var tpos [MaxPickBatch * MaxSampleD]int32
	var tdep [MaxPickBatch * MaxSampleD]int64
	nt := 0
	for j := range dst {
		b := bits[j]
		pos := int((b & sampleMask) * nc >> sampleBits)
		ti := 0
		for ; ti < nt; ti++ {
			if tpos[ti] == int32(pos) {
				break
			}
		}
		if ti == nt {
			tpos[nt] = int32(pos)
			tdep[nt] = p.depths.Depth(int(p.cand[pos]))
			nt++
		}
		best, bestTi := int(p.cand[pos]), ti
		bestDepth, bestCap := tdep[ti], p.capac[pos]
		for k := 1; k < p.d; k++ {
			slice := (b >> (k * sampleBits)) & sampleMask
			pos = int(slice * nc >> sampleBits)
			st := int(p.cand[pos])
			if st == best {
				continue
			}
			ti = 0
			for ; ti < nt; ti++ {
				if tpos[ti] == int32(pos) {
					break
				}
			}
			if ti == nt {
				tpos[nt] = int32(pos)
				tdep[nt] = p.depths.Depth(st)
				nt++
			}
			dep, c := tdep[ti], p.capac[pos]
			lhs := float64(dep+1) * bestCap
			rhs := float64(bestDepth+1) * c
			if lhs < rhs ||
				(lhs == rhs && (c > bestCap || (c == bestCap && st < best))) { //bladelint:allow floateq -- exact tie-break: equal cross-products defer to capacity then index, deterministically
				best, bestTi, bestDepth, bestCap = st, ti, dep, c
			}
		}
		dst[j] = int32(best)
		tdep[bestTi]++
	}
}

// PickN implements sim.BatchPicker for the probabilistic policy:
// state-oblivious picks need no view snapshot, so the batch is simply k
// sequential draws.
func (p *Probabilistic) PickN(views []sim.StationView, rng *rand.Rand, dst []int) {
	for j := range dst {
		dst[j] = p.Pick(views, rng)
	}
}

// Batched wraps a dispatcher so the simulator routes arrivals in
// batches of k from one frozen view snapshot — the simulator-side model
// of the serving layer's DecideBatch/coalescer: every k-th arrival
// snapshots the stations, the whole batch routes against that snapshot,
// and the intervening completions and arrivals are invisible until the
// next refill. State-aware inner policies see the batch's own picks
// through a local busy-count overlay (exactly DecideBatch's in-batch
// depth overlay), so what the wrapper measures is the pure staleness
// cost of batching, not a bookkeeping artifact. State-oblivious inner
// policies are unaffected by construction — the wrapper is then a
// harness for checking exactly that.
type Batched struct {
	inner sim.Dispatcher
	k     int
	snap  []sim.StationView
	queue []int
	pos   int
}

// NewBatched builds the batching wrapper; k is clamped to at least 1
// (k = 1 degenerates to the inner policy with per-arrival snapshots).
func NewBatched(inner sim.Dispatcher, k int) *Batched {
	if k < 1 {
		k = 1
	}
	return &Batched{inner: inner, k: k}
}

// Name implements sim.Dispatcher.
func (b *Batched) Name() string { return fmt.Sprintf("%s/batch%d", b.inner.Name(), b.k) }

// Pick implements sim.Dispatcher: serve the next queued decision,
// refilling the queue from the current views when it runs dry.
func (b *Batched) Pick(views []sim.StationView, rng *rand.Rand) int {
	if b.pos >= len(b.queue) {
		b.refill(views, rng)
	}
	st := b.queue[b.pos]
	b.pos++
	return st
}

// refill freezes the views and routes the next k arrivals against the
// frozen copy. Inner dispatchers implementing sim.BatchPicker route the
// whole batch in one call; any other policy is driven pick-by-pick over
// the snapshot with the local busy overlay advanced after each pick.
func (b *Batched) refill(views []sim.StationView, rng *rand.Rand) {
	if cap(b.queue) < b.k {
		b.queue = make([]int, b.k)
	}
	b.queue = b.queue[:b.k]
	b.pos = 0
	if bp, ok := b.inner.(sim.BatchPicker); ok {
		bp.PickN(views, rng, b.queue)
		return
	}
	b.snap = append(b.snap[:0], views...)
	for j := range b.queue {
		st := b.inner.Pick(b.snap, rng)
		b.queue[j] = st
		b.snap[st].Busy++ // in-batch overlay: later picks see the batch's own work
	}
}

// Fork implements sim.Forker so parallel replications neither share the
// wrapper's queue nor leak a half-consumed batch across runs.
func (b *Batched) Fork() sim.Dispatcher {
	inner := b.inner
	if f, ok := inner.(sim.Forker); ok {
		inner = f.Fork()
	}
	return NewBatched(inner, b.k)
}

var (
	_ sim.Dispatcher  = (*Batched)(nil)
	_ sim.Forker      = (*Batched)(nil)
	_ sim.BatchPicker = (*Probabilistic)(nil)
)
