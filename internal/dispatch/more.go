package dispatch

import (
	"fmt"
	"math/rand"

	"repro/internal/numeric"
	"repro/internal/sim"
)

// The power-of-d dispatcher lives in powerofd.go: PowerOfD samples d
// stations per pick and joins the least (depth+1)/capacity, serving
// both the simulator (Pick) and the lock-free hot path (PickU).

// WeightedRoundRobin realizes target rates deterministically using
// smooth weighted round robin (the nginx algorithm): each pick adds
// every station's weight to its running credit and selects the largest,
// subtracting the total. Over any window of W picks the share of
// station i deviates from w_i/Σw by at most one pick — a drop-in,
// randomness-free alternative to probabilistic splitting. Note that
// unlike probabilistic splitting it does NOT preserve the Poisson
// property of substreams, so the paper's formulas only approximate it;
// the simulator quantifies the (small, favorable) difference.
type WeightedRoundRobin struct {
	weights []float64
	credit  []float64
	total   float64
}

// NewWeightedRoundRobin builds the dispatcher from non-negative weights
// (at least one positive), e.g. the optimizer's rates.
func NewWeightedRoundRobin(weights []float64) (*WeightedRoundRobin, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dispatch: no weights")
	}
	total := numeric.Sum(weights)
	if total <= 0 {
		return nil, fmt.Errorf("dispatch: weights sum to %g, need > 0", total)
	}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dispatch: negative weight %g at %d", w, i)
		}
	}
	return &WeightedRoundRobin{
		weights: append([]float64(nil), weights...),
		credit:  make([]float64, len(weights)),
		total:   total,
	}, nil
}

// Name implements sim.Dispatcher.
func (w *WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// Pick implements sim.Dispatcher.
func (w *WeightedRoundRobin) Pick(views []sim.StationView, _ *rand.Rand) int {
	best := 0
	for i := range w.credit {
		w.credit[i] += w.weights[i]
		if w.credit[i] > w.credit[best] {
			best = i
		}
	}
	w.credit[best] -= w.total
	return best
}

// Fork implements sim.Forker: a copy with zeroed credits, sharing the
// immutable weights.
func (w *WeightedRoundRobin) Fork() sim.Dispatcher {
	return &WeightedRoundRobin{
		weights: w.weights,
		credit:  make([]float64, len(w.credit)),
		total:   w.total,
	}
}

var (
	_ sim.Dispatcher = (*WeightedRoundRobin)(nil)
	_ sim.Forker     = (*WeightedRoundRobin)(nil)
)
