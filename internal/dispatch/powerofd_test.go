package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeDepths is a DepthReader over a plain slice.
type fakeDepths []int64

func (f fakeDepths) Depth(station int) int64 { return f[station] }

// sampleWord packs 16-bit station samples into a PickU bits word so
// tests can steer exactly which candidates compete. For nc candidates,
// candidate j is selected by any slice value in [j·2^16/nc, (j+1)·2^16/nc).
func sampleWord(nc int, candidates ...int) uint64 {
	var u uint64
	for k, j := range candidates {
		slice := uint64(j) * (1 << sampleBits) / uint64(nc)
		u |= slice << (k * sampleBits)
	}
	return u
}

func TestNewPowerOfDValidation(t *testing.T) {
	caps := []float64{1, 1}
	cases := []struct {
		name string
		d, n int
		idx  []int32
		cap  []float64
	}{
		{"d too small", 1, 2, nil, caps},
		{"d too large", MaxSampleD + 1, 2, nil, caps},
		{"empty fleet", 2, 0, nil, nil},
		{"length mismatch", 2, 3, []int32{0, 1}, []float64{1}},
		{"unsorted index", 2, 3, []int32{1, 0}, caps},
		{"duplicate index", 2, 3, []int32{1, 1}, caps},
		{"index out of range", 2, 2, []int32{0, 5}, caps},
		{"zero capacity", 2, 2, nil, []float64{1, 0}},
		{"negative capacity", 2, 2, nil, []float64{1, -1}},
	}
	for _, c := range cases {
		if _, err := NewPowerOfD(c.d, c.n, c.idx, c.cap, fakeDepths{0, 0, 0}); err == nil {
			t.Errorf("%s: NewPowerOfD accepted", c.name)
		}
	}
	// nil depths is legal (simulator-only use), and a nil index means
	// every station is a candidate.
	p, err := NewPowerOfD(2, 2, nil, caps, nil)
	if err != nil {
		t.Fatalf("nil depths rejected: %v", err)
	}
	if p.Name() != "jsq2" || p.D() != 2 || p.Stations() != 2 {
		t.Fatalf("jsq2 metadata: name %q d %d n %d", p.Name(), p.D(), p.Stations())
	}
}

func TestPickUPrefersShallowStation(t *testing.T) {
	p, err := NewPowerOfD(2, 2, nil, []float64{1, 1}, fakeDepths{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Both candidates sampled: the empty station must win regardless of
	// sample order.
	if got := p.PickU(sampleWord(2, 0, 1)); got != 1 {
		t.Errorf("samples {0,1}: picked %d, want 1 (depth 0 vs 10)", got)
	}
	if got := p.PickU(sampleWord(2, 1, 0)); got != 1 {
		t.Errorf("samples {1,0}: picked %d, want 1 (depth 0 vs 10)", got)
	}
	// A duplicate sample cannot see the alternative: stays put.
	if got := p.PickU(sampleWord(2, 0, 0)); got != 0 {
		t.Errorf("samples {0,0}: picked %d, want 0", got)
	}
}

func TestPickUSpeedAware(t *testing.T) {
	// Station 0 is twice as fast and deeper: (3+1)/2 = 2 beats
	// (2+1)/1 = 3, so depth-only JSQ(2) and capacity-aware JSQ(2)
	// disagree here — the heterogeneous-fleet case the score exists for.
	p, err := NewPowerOfD(2, 2, nil, []float64{2, 1}, fakeDepths{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PickU(sampleWord(2, 0, 1)); got != 0 {
		t.Errorf("picked %d, want 0 (relative backlog 2.0 vs 3.0)", got)
	}
}

func TestPickUTieBreaks(t *testing.T) {
	// Equal relative backlog: (1+1)/2 == (0+1)/1 → higher capacity wins.
	p, err := NewPowerOfD(2, 2, nil, []float64{2, 1}, fakeDepths{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PickU(sampleWord(2, 1, 0)); got != 0 {
		t.Errorf("capacity tie-break: picked %d, want 0", got)
	}
	// Fully identical stations: lower index wins, from either sample order.
	p, err = NewPowerOfD(2, 2, nil, []float64{1, 1}, fakeDepths{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PickU(sampleWord(2, 1, 0)); got != 0 {
		t.Errorf("index tie-break: picked %d, want 0", got)
	}
}

func TestPickSourceStaysInCandidateSet(t *testing.T) {
	// Candidates are a strict subset: picks must never leave it.
	idx := []int32{1, 3, 4}
	caps := []float64{1, 2, 1}
	depths := fakeDepths{0, 5, 0, 1, 2}
	for d := MinSampleD; d <= MaxSampleD; d++ {
		p, err := NewPowerOfD(d, 5, idx, caps, depths)
		if err != nil {
			t.Fatal(err)
		}
		src := rand.NewSource(11)
		allowed := map[int]bool{1: true, 3: true, 4: true}
		for i := 0; i < 2000; i++ {
			if st := p.PickSource(src); !allowed[st] {
				t.Fatalf("jsq%d picked station %d outside candidate set", d, st)
			}
		}
	}
}

func TestSimPickSkipsDownStations(t *testing.T) {
	p, err := NewPowerOfD(2, 3, nil, []float64{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := []sim.StationView{
		{Up: false, AvailableBlades: 0, Speed: 1},
		{Up: true, AvailableBlades: 2, Speed: 1, Busy: 1},
		{Up: true, AvailableBlades: 2, Speed: 1, Busy: 2, QueueLen: 4},
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		if st := p.Pick(views, rng); st == 0 {
			t.Fatal("picked a down station")
		}
	}
	// All stations down: the fallback still returns a routable index.
	for i := range views {
		views[i].Up = false
	}
	if st := p.Pick(views, rng); st < 0 || st > 2 {
		t.Fatalf("fallback pick %d out of range", st)
	}
}

// TestJSQ2UnderBurstBeatsStaticSplit is the policy experiment in
// miniature (EXPERIMENTS.md has the full harness): on the paper's
// heterogeneous example system, replaying the SAME arrival traces
// through a static capacity-proportional split and through sampled
// JSQ(2). Under smooth Poisson traffic the two must roughly agree —
// the static split is near-optimal there, which is the paper's own
// regime — but under MMPP bursts the state-aware policy must win:
// depth feedback absorbs the burst that a fixed split pours onto the
// same stations regardless of backlog.
func TestJSQ2UnderBurstBeatsStaticSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	g := model.LiExample1Group()
	max := g.MaxGenericRate()
	lambda := 0.6 * max

	static := func() sim.Dispatcher {
		rates := make([]float64, g.N())
		for i := range rates {
			rates[i] = lambda * g.Servers[i].MaxGenericRate(g.TaskSize) / max
		}
		d, err := NewProbabilistic(rates)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	jsq := func() sim.Dispatcher {
		caps := make([]float64, g.N())
		for i, s := range g.Servers {
			caps[i] = s.MaxGenericRate(g.TaskSize)
		}
		d, err := NewPowerOfD(2, g.N(), nil, caps, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	replay := func(tr *trace.Trace, d sim.Dispatcher) float64 {
		res, err := sim.Replay(sim.ReplayConfig{
			Group: g, Trace: tr, Dispatcher: d, Warmup: 3000, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GenericResponse.Mean()
	}

	poisson, err := trace.Generate(trace.Config{Group: g, GenericRate: lambda, Horizon: 60000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := trace.GenerateMMPP(trace.MMPPConfig{
		Group:    g,
		RateHigh: 0.95 * max, RateLow: 0.25 * max,
		MeanHigh: 50, MeanLow: 50,
		Horizon: 60000, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}

	tStaticPoisson := replay(poisson, static())
	tJSQPoisson := replay(poisson, jsq())
	tStaticBurst := replay(bursty, static())
	tJSQBurst := replay(bursty, jsq())
	t.Logf("Poisson: static %.4f jsq2 %.4f; MMPP: static %.4f jsq2 %.4f",
		tStaticPoisson, tJSQPoisson, tStaticBurst, tJSQBurst)

	if tJSQBurst > tStaticBurst {
		t.Errorf("under MMPP bursts JSQ(2) %.4f should beat static %.4f", tJSQBurst, tStaticBurst)
	}
	// Under Poisson the split is the paper's own regime: JSQ(2) may
	// shave some queueing variance but must not be materially worse.
	if tJSQPoisson > 1.05*tStaticPoisson {
		t.Errorf("under Poisson JSQ(2) %.4f strays above static %.4f", tJSQPoisson, tStaticPoisson)
	}
}
