package dispatch

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// DepthReader exposes the per-station in-flight depth the power-of-d
// picker scores against. The serving layer implements it with padded
// atomic counters so a read is one uncontended load; the picker never
// mutates depth.
type DepthReader interface {
	Depth(station int) int64
}

// Bounds on the sample count d. d = 1 is uniform random routing (no
// state-awareness) and d beyond 4 buys almost nothing over JSQ(4) while
// multiplying the depth reads per request (Mitzenmacher's power-of-two
// result: the big win is 1 → 2, every further choice only shaves
// constants).
const (
	MinSampleD = 2
	MaxSampleD = 4
)

// sampleBits is the width of one station-sample slice PickU consumes
// from its bits word: MaxSampleD 16-bit slices fit one 64-bit word.
const (
	sampleBits = 16
	sampleMask = 1<<sampleBits - 1
)

// PowerOfD is sampled state-aware dispatch — JSQ(d) generalized to
// heterogeneous stations. Each pick samples d candidate stations and
// routes to the one with the least *relative* backlog
// (depth+1)/capacity, so a station with twice the service capacity
// tolerates twice the in-flight depth before losing a comparison
// (Gardner et al., arXiv 2006.13987: speed-aware scoring is what keeps
// power-of-d stable on heterogeneous fleets, where depth-only JSQ(d)
// can overload slow servers).
//
// The picker is immutable after construction and holds no generator
// state: PickU consumes caller-supplied random bits and Depth reads go
// through the DepthReader, so concurrent picks share nothing writable.
type PowerOfD struct {
	name string
	d    int
	n    int
	// cand lists the sampleable stations (ascending); capac is the
	// matching effective generic service capacity m_i·s_i/r̄ − λ″_i,
	// ramp-scaled by the caller during capped-weight recovery.
	cand   []int32
	capac  []float64
	depths DepthReader
}

// NewPowerOfD builds a JSQ(d) picker over an n-station fleet from a
// compact (station, capacity) candidate set — the stations the current
// plan allows traffic on. A nil index means all n stations are
// candidates and capacity is dense. Capacities must be positive: a
// station with no generic headroom cannot be scored and must simply be
// excluded from the candidate set. depths may be nil ONLY for
// simulator-side use (Pick reads depth and live capacity from the
// station views); PickU/PickSource require a DepthReader.
func NewPowerOfD(d, n int, index []int32, capacity []float64, depths DepthReader) (*PowerOfD, error) {
	if d < MinSampleD || d > MaxSampleD {
		return nil, fmt.Errorf("dispatch: sample count d=%d outside [%d, %d]", d, MinSampleD, MaxSampleD)
	}
	if n <= 0 {
		return nil, fmt.Errorf("dispatch: fleet size %d, need > 0", n)
	}
	if index == nil {
		index = make([]int32, n)
		for i := range index {
			index[i] = int32(i)
		}
	}
	if len(index) != len(capacity) {
		return nil, fmt.Errorf("dispatch: %d indices but %d capacities", len(index), len(capacity))
	}
	if len(index) == 0 {
		return nil, fmt.Errorf("dispatch: no candidate stations")
	}
	prev := int32(-1)
	for k, i := range index {
		if i < 0 || int(i) >= n {
			return nil, fmt.Errorf("dispatch: station index %d out of range [0, %d)", i, n)
		}
		if i <= prev {
			return nil, fmt.Errorf("dispatch: station indices must be ascending (index %d at position %d)", i, k)
		}
		prev = i
		if c := capacity[k]; !(c > 0) {
			return nil, fmt.Errorf("dispatch: capacity %g at station %d, need > 0", c, i)
		}
	}
	return &PowerOfD{
		name:   fmt.Sprintf("jsq%d", d),
		d:      d,
		n:      n,
		cand:   append([]int32(nil), index...),
		capac:  append([]float64(nil), capacity...),
		depths: depths,
	}, nil
}

// D returns the per-pick sample count.
func (p *PowerOfD) D() int { return p.d }

// Stations returns the fleet size picks refer into.
func (p *PowerOfD) Stations() int { return p.n }

// Name implements sim.Dispatcher.
func (p *PowerOfD) Name() string { return p.name }

// PickU routes one request from caller-supplied random bits: slice k of
// d consecutive sampleBits-wide slices (starting at bit 0) selects
// candidate k by fixed-point multiply-shift, and the candidates compete
// on (depth+1)/capacity. The division never happens — scores compare by
// cross-multiplication — and ties break toward the higher-capacity,
// then lower-indexed station, so equal inputs always produce the same
// pick. Zero allocations; the caller owns the randomness (the serving
// hot path feeds disjoint slices of its one per-request random word,
// see serve's bit-layout contract).
func (p *PowerOfD) PickU(bits uint64) int {
	nc := uint64(len(p.cand))
	j := int((bits & sampleMask) * nc >> sampleBits)
	best := int(p.cand[j])
	bestDepth := p.depths.Depth(best)
	bestCap := p.capac[j]
	for k := 1; k < p.d; k++ {
		slice := (bits >> (k * sampleBits)) & sampleMask
		j = int(slice * nc >> sampleBits)
		st := int(p.cand[j])
		if st == best {
			continue // duplicate sample: same score by construction
		}
		depth := p.depths.Depth(st)
		c := p.capac[j]
		// st beats best iff (depth+1)/c < (bestDepth+1)/bestCap.
		lhs := float64(depth+1) * bestCap
		rhs := float64(bestDepth+1) * c
		if lhs < rhs ||
			(lhs == rhs && (c > bestCap || (c == bestCap && st < best))) { //bladelint:allow floateq -- exact tie-break: equal cross-products defer to capacity then index, deterministically
			best, bestDepth, bestCap = st, depth, c
		}
	}
	return best
}

// PickSource routes from a caller-supplied rand.Source (one per
// goroutine or shard), drawing fresh 16-bit slices from Int63 words as
// PickU consumes them: three slices per 63-bit word, a second word only
// for d = 4.
func (p *PowerOfD) PickSource(src rand.Source) int {
	u := uint64(src.Int63())
	if p.d > 3 {
		// Repack so all four slices come from uniformly random bits
		// (slice 3 of a single Int63 word would miss its top bit).
		u = u&(1<<48-1) | uint64(src.Int63())<<48
	}
	return p.PickU(u)
}

// Pick implements sim.Dispatcher on simulator state: depth is the
// station's busy-plus-queued task count and capacity is the *live*
// blade pool AvailableBlades·Speed, so partially failed stations are
// scored at their degraded capacity and fully down stations lose every
// comparison. If all d samples land on unusable stations the first up
// candidate serves as fallback (routing somewhere beats routing
// nowhere, matching the serving layer's breaker-overlay stance).
func (p *PowerOfD) Pick(views []sim.StationView, rng *rand.Rand) int {
	best := -1
	var bestDepth int
	var bestCap float64
	for k := 0; k < p.d; k++ {
		st := int(p.cand[rng.Intn(len(p.cand))])
		v := &views[st]
		if !v.Up || v.AvailableBlades <= 0 {
			continue
		}
		if st == best {
			continue
		}
		depth := v.Busy + v.QueueLen
		c := float64(v.AvailableBlades) * v.Speed
		if best < 0 {
			best, bestDepth, bestCap = st, depth, c
			continue
		}
		lhs := float64(depth+1) * bestCap
		rhs := float64(bestDepth+1) * c
		if lhs < rhs ||
			(lhs == rhs && (c > bestCap || (c == bestCap && st < best))) { //bladelint:allow floateq -- exact tie-break: equal cross-products defer to capacity then index, deterministically
			best, bestDepth, bestCap = st, depth, c
		}
	}
	if best >= 0 {
		return best
	}
	for _, st := range p.cand {
		if v := &views[st]; v.Up && v.AvailableBlades > 0 {
			return int(st)
		}
	}
	return int(p.cand[0])
}

var _ sim.Dispatcher = (*PowerOfD)(nil)
