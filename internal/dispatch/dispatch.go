// Package dispatch provides online dispatching policies that realize a
// load distribution on a live generic-task stream in the simulator.
//
// Probabilistic splitting with the optimizer's rates is exactly the
// paper's model (a Poisson stream split with fixed probabilities yields
// independent Poisson substreams); the other policies are the
// state-aware baselines a practitioner would compare against.
package dispatch

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/numeric"
	"repro/internal/sim"
)

// Probabilistic routes each task to station i with probability
// w_i / Σw, independent of system state. With w set to the optimal
// rates λ′_i this is the paper's optimal load distribution.
type Probabilistic struct {
	cum []float64 // cumulative normalized weights
	// idx maps a position in cum back to its station index when the
	// dispatcher was built from a sparse weight set (NewProbabilisticSparse);
	// nil means positions are station indices (dense construction). At
	// fleet scale the optimizer's allocation is mostly zeros, so the
	// compact table keeps the per-pick binary search over the loaded
	// stations only and avoids materializing an n-wide cumulative slice.
	idx []int32
	// n is the fleet size the picks refer into (== len(cum) when dense).
	n int
}

// NewProbabilistic builds a probabilistic dispatcher from non-negative
// weights (at least one must be positive).
func NewProbabilistic(weights []float64) (*Probabilistic, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dispatch: no weights")
	}
	total := numeric.Sum(weights)
	if total <= 0 {
		return nil, fmt.Errorf("dispatch: weights sum to %g, need > 0", total)
	}
	cum := make([]float64, len(weights))
	run := 0.0
	last := -1 // index of the last positive weight
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dispatch: negative weight %g at %d", w, i)
		}
		if w > 0 {
			last = i
		}
		run += w / total
		cum[i] = run
	}
	// The rounding guard must sit on the last *positive* weight: pinning
	// cum[len-1] to 1 would open the interval (cum[last], 1) and make a
	// zero-weight trailing station pickable (e.g. after HealthFiltered
	// or a degraded re-solve drains the last station), violating the
	// invariant pickCumulative documents. Trailing zero-weight entries
	// share the guard value, so their intervals stay empty.
	for i := last; i < len(cum); i++ {
		cum[i] = 1
	}
	return &Probabilistic{cum: cum, n: len(cum)}, nil
}

// NewProbabilisticSparse builds a probabilistic dispatcher over an
// n-station fleet from a compact (station, weight) allocation — the
// form core.SparseRates carries. Indices must be ascending and in
// [0, n); weights must be non-negative with at least one positive. The
// cumulative table covers only the listed stations, so memory and
// per-pick search cost scale with the number of loaded stations rather
// than the fleet size; unlisted stations are unpickable by
// construction (they have no interval at all, the same invariant the
// dense path's rounding guard maintains for zero-weight entries).
func NewProbabilisticSparse(n int, index []int32, weights []float64) (*Probabilistic, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dispatch: fleet size %d, need > 0", n)
	}
	if len(index) != len(weights) {
		return nil, fmt.Errorf("dispatch: %d indices but %d weights", len(index), len(weights))
	}
	if len(index) == 0 {
		return nil, fmt.Errorf("dispatch: no weights")
	}
	prev := int32(-1)
	for k, i := range index {
		if i < 0 || int(i) >= n {
			return nil, fmt.Errorf("dispatch: station index %d out of range [0, %d)", i, n)
		}
		if i <= prev {
			return nil, fmt.Errorf("dispatch: station indices must be ascending (index %d at position %d)", i, k)
		}
		prev = i
	}
	total := numeric.Sum(weights)
	if total <= 0 {
		return nil, fmt.Errorf("dispatch: weights sum to %g, need > 0", total)
	}
	cum := make([]float64, len(weights))
	run := 0.0
	last := -1
	for k, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dispatch: negative weight %g at station %d", w, index[k])
		}
		if w > 0 {
			last = k
		}
		run += w / total
		cum[k] = run
	}
	for k := last; k < len(cum); k++ {
		cum[k] = 1
	}
	return &Probabilistic{cum: cum, idx: append([]int32(nil), index...), n: n}, nil
}

// Stations returns the fleet size picks refer into.
func (p *Probabilistic) Stations() int { return p.n }

// station maps a cumulative-table position to a station index.
func (p *Probabilistic) station(k int) int {
	if p.idx == nil {
		return k
	}
	return int(p.idx[k])
}

// Name implements sim.Dispatcher.
func (p *Probabilistic) Name() string { return "probabilistic" }

// Pick implements sim.Dispatcher.
func (p *Probabilistic) Pick(views []sim.StationView, rng *rand.Rand) int {
	return p.station(pickCumulative(p.cum, rng.Float64()))
}

// PickU routes from a caller-supplied uniform variate u ∈ [0, 1). The
// caller owning the randomness is what makes concurrent dispatch
// lock-free: no generator state is shared through the picker.
func (p *Probabilistic) PickU(u float64) int {
	return p.station(pickCumulative(p.cum, u))
}

// PickSource routes from a caller-supplied rand.Source (one per
// goroutine or shard), deriving the uniform variate exactly as
// rand.Rand.Float64 does so the distribution matches Pick's.
func (p *Probabilistic) PickSource(src rand.Source) int {
	for {
		// rand.Rand.Float64's derivation: 63 bits over 2^63, redrawing
		// the one rounding case that lands on 1.0.
		if f := float64(src.Int63()) / (1 << 63); f < 1 {
			return p.station(pickCumulative(p.cum, f))
		}
	}
}

// pickCumulative finds the first station whose cumulative weight
// strictly exceeds u ∈ [0, 1). The strict comparison (vs
// sort.SearchFloat64s's ≥) is what guarantees a zero-weight station i
// (cum[i] == cum[i−1], e.g. drained or failed) can never be returned:
// that would require cum[i−1] ≤ u < cum[i], an empty interval.
//
// Up to 16 stations a branch-predictable linear scan beats
// sort.Search's closure-call-per-probe; beyond that the O(log n)
// binary search wins. Paper-scale groups (Li's examples have ≤ 7
// stations) always take the scan.
func pickCumulative(cum []float64, u float64) int {
	if len(cum) <= 16 {
		for i, c := range cum {
			if c > u {
				return i
			}
		}
		return len(cum)
	}
	return sort.Search(len(cum), func(i int) bool { return cum[i] > u })
}

// RoundRobin cycles through stations in index order, ignoring state and
// heterogeneity.
type RoundRobin struct {
	next int
}

// Name implements sim.Dispatcher.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements sim.Dispatcher. The cursor wraps modulo the view
// count instead of incrementing unboundedly: on a long-running daemon
// an unbounded counter eventually overflows to negative and `next %
// len` would return a negative station index.
func (r *RoundRobin) Pick(views []sim.StationView, _ *rand.Rand) int {
	i := r.next % len(views)
	if i < 0 { // a poisoned cursor (manual construction) recovers
		i = 0
	}
	r.next = (i + 1) % len(views)
	return i
}

// Fork implements sim.Forker: each replication restarts the cycle.
func (r *RoundRobin) Fork() sim.Dispatcher { return &RoundRobin{} }

// JSQ (join-shortest-queue) sends the task to the station with the
// fewest waiting-plus-in-service tasks per blade, breaking ties toward
// faster stations.
type JSQ struct{}

// Name implements sim.Dispatcher.
func (JSQ) Name() string { return "join-shortest-queue" }

// Pick implements sim.Dispatcher.
func (JSQ) Pick(views []sim.StationView, _ *rand.Rand) int {
	best := 0
	bestLoad := load(views[0])
	for i := 1; i < len(views); i++ {
		l := load(views[i])
		if l < bestLoad || (l == bestLoad && views[i].Speed > views[best].Speed) { //bladelint:allow floateq -- exact tie-break: equal loads defer to the faster blade deterministically
			best, bestLoad = i, l
		}
	}
	return best
}

func load(v sim.StationView) float64 {
	return float64(v.Busy+v.QueueLen) / float64(v.Blades)
}

// LeastExpectedWait estimates, from the snapshot, how long the arriving
// task would spend at each station (queueing delay plus its own
// service) and picks the minimum. The estimate uses the M/M/m
// structure: if a blade is free the delay is zero; otherwise the task
// must wait for QueueLen+1 completions, each taking x̄/m in
// expectation.
type LeastExpectedWait struct{}

// Name implements sim.Dispatcher.
func (LeastExpectedWait) Name() string { return "least-expected-wait" }

// Pick implements sim.Dispatcher.
func (LeastExpectedWait) Pick(views []sim.StationView, _ *rand.Rand) int {
	best := 0
	bestWait := expectedSojourn(views[0])
	for i := 1; i < len(views); i++ {
		if w := expectedSojourn(views[i]); w < bestWait {
			best, bestWait = i, w
		}
	}
	return best
}

func expectedSojourn(v sim.StationView) float64 {
	if v.Busy < v.Blades {
		return v.ServiceMean
	}
	perCompletion := v.ServiceMean / float64(v.Blades)
	return float64(v.QueueLen+1)*perCompletion + v.ServiceMean
}

// Compile-time interface checks.
var (
	_ sim.Dispatcher = (*Probabilistic)(nil)
	_ sim.Dispatcher = (*RoundRobin)(nil)
	_ sim.Dispatcher = JSQ{}
	_ sim.Dispatcher = LeastExpectedWait{}
	_ sim.Forker     = (*RoundRobin)(nil)
)
