package dispatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// TestReOptimizingBeatsStaticUnderFailures is the end-to-end robustness
// acceptance check: on the paper's example system, under a seeded
// failure schedule that takes one of the heavy stations fully down for
// a sustained window, re-optimizing dispatch must achieve a strictly
// lower generic response time AND a strictly higher completed-task
// fraction than the static paper-optimal allocation. The static split
// keeps feeding the dead station — its tasks wait out the outage in a
// queue that takes longer than the remaining horizon to drain — while
// the re-weighting dispatcher re-solves over the survivors.
func TestReOptimizingBeatsStaticUnderFailures(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	const horizon, warmup = 10000.0, 500.0

	// Station 6 (λ′_6 ≈ 4.88, ~21% of the stream) fully down over
	// [2500, 6500); same trace replayed for every policy.
	scheds := make([]failure.Schedule, g.N())
	scheds[5] = failure.Schedule{{Time: 2500, Down: g.Servers[5].Size}, {Time: 6500, Down: 0}}

	healthy, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	static, err := NewProbabilistic(healthy.Rates)
	if err != nil {
		t.Fatal(err)
	}
	reopt, err := NewReWeighting(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}

	run := func(d sim.Dispatcher) *sim.RunResult {
		t.Helper()
		res, err := sim.Run(sim.Config{
			Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
			Dispatcher: d, Horizon: horizon, Warmup: warmup, Seed: 1,
			FailureSchedules: scheds,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	sres := run(static)
	rres := run(reopt)

	if resolves, lastErr := reopt.Resolves(); resolves < 2 || lastErr != nil {
		t.Fatalf("re-optimizer resolves = %d (want ≥ 2: failure + recovery), lastErr = %v", resolves, lastErr)
	}

	sT, rT := sres.GenericResponse.Mean(), rres.GenericResponse.Mean()
	sF, rF := sres.CompletedGenericFraction(), rres.CompletedGenericFraction()
	t.Logf("static:       T′ = %.4f, completed fraction = %.4f", sT, sF)
	t.Logf("re-optimizing: T′ = %.4f, completed fraction = %.4f", rT, rF)

	if !(rT < sT) {
		t.Errorf("re-optimizing T′ = %g not strictly below static T′ = %g", rT, sT)
	}
	if !(rF > sF) {
		t.Errorf("re-optimizing completed fraction = %g not strictly above static = %g", rF, sF)
	}
	// The win must be substantial, not a tie-break: the static queue at
	// the dead station is thousands of tasks deep.
	if rT > 0.5*sT {
		t.Errorf("expected a decisive response-time win, got %g vs %g", rT, sT)
	}
	// Sanity: during the outage the re-optimizer must not have routed
	// generic work to the dead station (its post-failure weight is 0).
	if rres.Downtime[5] != 4000 {
		t.Errorf("station 6 downtime = %g, want 4000", rres.Downtime[5])
	}
}

func TestHealthFilteredExcludesDownStations(t *testing.T) {
	views := []sim.StationView{
		{Index: 0, Blades: 2, Speed: 1, ServiceMean: 1, Up: true, AvailableBlades: 2, Busy: 1},
		{Index: 1, Blades: 2, Speed: 1, ServiceMean: 1, Up: false, AvailableBlades: 0, QueueLen: 0},
		{Index: 2, Blades: 2, Speed: 1, ServiceMean: 1, Up: true, AvailableBlades: 2, Busy: 2, QueueLen: 5},
	}
	h, err := NewHealthFiltered(JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		if pick := h.Pick(views, rng); pick == 1 {
			t.Fatal("health-filtered JSQ routed to a down station")
		}
	}
	// The down station is also the emptiest — plain JSQ would take it.
	if pick := (JSQ{}).Pick(views, rng); pick != 1 {
		t.Fatalf("precondition: plain JSQ should pick the empty down station, got %d", pick)
	}
	// With everything down, fall through to the inner policy.
	for i := range views {
		views[i].Up = false
	}
	if pick := h.Pick(views, rng); pick < 0 || pick >= len(views) {
		t.Errorf("all-down fallback pick %d out of range", pick)
	}
	if _, err := NewHealthFiltered(nil); err == nil {
		t.Error("nil inner should fail")
	}
	if got := h.Name(); got != "health-filtered(join-shortest-queue)" {
		t.Errorf("name = %q", got)
	}
}

func TestReWeightingTracksRecovery(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.4 * g.MaxGenericRate()
	r, err := NewReWeighting(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	views := make([]sim.StationView, g.N())
	for i, s := range g.Servers {
		views[i] = sim.StationView{Index: i, Blades: s.Size, Speed: s.Speed,
			ServiceMean: g.TaskSize / s.Speed, Up: true, AvailableBlades: s.Size}
	}
	// Healthy: all stations get traffic across many picks.
	counts := make([]int, g.N())
	for trial := 0; trial < 5000; trial++ {
		counts[r.Pick(views, rng)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("healthy: station %d never picked", i+1)
		}
	}
	// Fail station 3: no more traffic there, exactly one re-solve.
	views[2].Up, views[2].AvailableBlades = false, 0
	counts = make([]int, g.N())
	for trial := 0; trial < 5000; trial++ {
		counts[r.Pick(views, rng)]++
	}
	if counts[2] != 0 {
		t.Errorf("down station picked %d times", counts[2])
	}
	if n, _ := r.Resolves(); n != 1 {
		t.Errorf("resolves = %d, want 1 (re-solve only on transitions)", n)
	}
	// Recover: traffic returns, second re-solve, weights match healthy
	// optimum again.
	views[2].Up, views[2].AvailableBlades = true, g.Servers[2].Size
	counts = make([]int, g.N())
	for trial := 0; trial < 20000; trial++ {
		counts[r.Pick(views, rng)]++
	}
	if counts[2] == 0 {
		t.Error("recovered station never picked")
	}
	if n, _ := r.Resolves(); n != 2 {
		t.Errorf("resolves = %d, want 2", n)
	}
	healthy, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		want := healthy.Rates[i] / lambda
		if got := float64(c) / 20000; math.Abs(got-want) > 0.02 {
			t.Errorf("station %d share %.3f, want ≈ %.3f", i+1, got, want)
		}
	}
}
