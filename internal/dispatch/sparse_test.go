package dispatch

import (
	"math/rand"
	"testing"
)

// sparseFixture is a 200-station fleet with 37 loaded stations spread
// across the index range, including the first and last station.
func sparseFixture() (n int, index []int32, weights []float64, dense []float64) {
	n = 200
	dense = make([]float64, n)
	for i := 0; i < n; i += 1 + i%10 {
		w := 0.5 + float64(i%7)
		dense[i] = w
		index = append(index, int32(i))
		weights = append(weights, w)
	}
	return n, index, weights, dense
}

func TestNewProbabilisticSparseValidation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		index   []int32
		weights []float64
	}{
		{"zero fleet", 0, []int32{0}, []float64{1}},
		{"length mismatch", 4, []int32{0, 1}, []float64{1}},
		{"empty", 4, nil, nil},
		{"out of range", 4, []int32{0, 4}, []float64{1, 1}},
		{"negative index", 4, []int32{-1, 2}, []float64{1, 1}},
		{"not ascending", 4, []int32{2, 1}, []float64{1, 1}},
		{"duplicate", 4, []int32{1, 1}, []float64{1, 1}},
		{"negative weight", 4, []int32{0, 1}, []float64{1, -1}},
		{"all zero", 4, []int32{0, 1}, []float64{0, 0}},
	}
	for _, c := range cases {
		if _, err := NewProbabilisticSparse(c.n, c.index, c.weights); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewProbabilisticSparse(4, []int32{1, 3}, []float64{0, 1}); err != nil {
		t.Errorf("valid sparse input rejected: %v", err)
	}
}

// TestProbabilisticSparseMatchesDense pins that a sparse-built picker
// routes the bit-identical station as the dense-built picker for the
// same uniform variate: zero weights are Kahan no-ops in the dense
// normalization, and zero-weight stations have empty intervals, so the
// two cumulative tables describe the same distribution.
func TestProbabilisticSparseMatchesDense(t *testing.T) {
	n, index, weights, dense := sparseFixture()
	sp, err := NewProbabilisticSparse(n, index, weights)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewProbabilistic(dense)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stations() != n || dp.Stations() != n {
		t.Fatalf("Stations() = %d / %d, want %d", sp.Stations(), dp.Stations(), n)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100000; trial++ {
		u := rng.Float64()
		if got, want := sp.PickU(u), dp.PickU(u); got != want {
			t.Fatalf("u=%v: sparse picked %d, dense picked %d", u, got, want)
		}
	}
	// Boundary variates: exactly at and just below each cumulative step.
	for _, c := range dp.cum {
		for _, u := range []float64{c, c - 1e-16, c + 1e-16} {
			if u < 0 || u >= 1 {
				continue
			}
			if got, want := sp.PickU(u), dp.PickU(u); got != want {
				t.Fatalf("boundary u=%v: sparse picked %d, dense picked %d", u, got, want)
			}
		}
	}
}

// TestProbabilisticSparseSources pins the Pick/PickSource paths route
// through the index map too, and that picks always land on a loaded
// station.
func TestProbabilisticSparseSources(t *testing.T) {
	n, index, weights, _ := sparseFixture()
	sp, err := NewProbabilisticSparse(n, index, weights)
	if err != nil {
		t.Fatal(err)
	}
	loaded := make(map[int]bool, len(index))
	for _, i := range index {
		loaded[int(i)] = true
	}
	rng := rand.New(rand.NewSource(11))
	src := rand.NewSource(13)
	for trial := 0; trial < 20000; trial++ {
		if got := sp.Pick(nil, rng); !loaded[got] {
			t.Fatalf("Pick landed on unloaded station %d", got)
		}
		if got := sp.PickSource(src); !loaded[got] {
			t.Fatalf("PickSource landed on unloaded station %d", got)
		}
	}
}

// TestProbabilisticSparseTrailingZero mirrors the dense rounding-guard
// regression: a trailing zero-weight entry in the compact table must
// never be picked, even at u just below 1.
func TestProbabilisticSparseTrailingZero(t *testing.T) {
	sp, err := NewProbabilisticSparse(100, []int32{3, 50, 99}, []float64{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.4999, 0.5, 0.9999999, 1 - 1e-16} {
		if got := sp.PickU(u); got == 99 {
			t.Fatalf("u=%v picked the zero-weight station 99", u)
		}
	}
}
