// Package balance provides the baseline load-distribution policies the
// optimal solver is compared against in the benchmarks: the "obvious"
// allocations a practitioner would try first. Each allocator takes the
// same inputs as core.Optimize and returns per-server generic rates
// summing to λ′ (when feasible).
//
// The paper's contribution is that none of these is optimal for
// heterogeneous groups; the benches quantify the gap.
package balance

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// Allocator distributes a total generic rate lambda over the servers of
// g, returning one rate per server.
type Allocator interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate returns per-server generic rates summing to lambda.
	Allocate(g *model.Group, lambda float64) ([]float64, error)
}

// validate performs the shared feasibility checks.
func validate(g *model.Group, lambda float64) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return fmt.Errorf("balance: total generic rate λ′=%g must be positive", lambda)
	}
	if max := g.MaxGenericRate(); lambda >= max {
		return fmt.Errorf("balance: λ′=%g at or beyond saturation λ′_max=%g", lambda, max)
	}
	return nil
}

// Proportional splits λ′ proportionally to raw capacity m_i·s_i. This
// ignores the special-task preload entirely, so a heavily preloaded
// server can be driven unstable; Allocate reports that as an error.
type Proportional struct{}

// Name implements Allocator.
func (Proportional) Name() string { return "proportional-capacity" }

// Allocate implements Allocator.
func (Proportional) Allocate(g *model.Group, lambda float64) ([]float64, error) {
	if err := validate(g, lambda); err != nil {
		return nil, err
	}
	var total numeric.KahanSum
	for _, s := range g.Servers {
		total.Add(s.Capacity(g.TaskSize))
	}
	rates := make([]float64, g.N())
	for i, s := range g.Servers {
		rates[i] = lambda * s.Capacity(g.TaskSize) / total.Value()
	}
	if err := g.Feasible(rates); err != nil {
		return nil, fmt.Errorf("balance: proportional allocation infeasible: %w", err)
	}
	return rates, nil
}

// Residual splits λ′ proportionally to residual capacity
// m_i·s_i/r̄ − λ″_i, i.e. the headroom left after special tasks. All
// servers end up at the same utilization, which makes it feasible for
// every λ′ < λ′_max.
type Residual struct{}

// Name implements Allocator.
func (Residual) Name() string { return "proportional-residual" }

// Allocate implements Allocator.
func (Residual) Allocate(g *model.Group, lambda float64) ([]float64, error) {
	if err := validate(g, lambda); err != nil {
		return nil, err
	}
	max := g.MaxGenericRate()
	rates := make([]float64, g.N())
	for i, s := range g.Servers {
		rates[i] = lambda * s.MaxGenericRate(g.TaskSize) / max
	}
	return rates, nil
}

// EqualRate splits λ′ evenly across servers regardless of size, speed,
// or preload — the naive round-robin limit. Can be infeasible when a
// small server cannot absorb λ′/n.
type EqualRate struct{}

// Name implements Allocator.
func (EqualRate) Name() string { return "equal-rate" }

// Allocate implements Allocator.
func (EqualRate) Allocate(g *model.Group, lambda float64) ([]float64, error) {
	if err := validate(g, lambda); err != nil {
		return nil, err
	}
	rates := make([]float64, g.N())
	for i := range rates {
		rates[i] = lambda / float64(g.N())
	}
	if err := g.Feasible(rates); err != nil {
		return nil, fmt.Errorf("balance: equal-rate allocation infeasible: %w", err)
	}
	return rates, nil
}

// EqualUtilization chooses rates so every server runs at the same total
// utilization ρ (generic + special). Unlike Residual it accounts for
// each server's preload: ρ = (λ″ + λ′_i)x̄_i/m_i is equalized. Servers
// whose special load alone exceeds the common ρ receive zero.
type EqualUtilization struct{}

// Name implements Allocator.
func (EqualUtilization) Name() string { return "equal-utilization" }

// Allocate implements Allocator.
func (EqualUtilization) Allocate(g *model.Group, lambda float64) ([]float64, error) {
	if err := validate(g, lambda); err != nil {
		return nil, err
	}
	// Total generic rate absorbed when every server is capped at
	// utilization rho: Σ max(0, ρ·m_i/x̄_i − λ″_i). Monotone in ρ.
	need := func(rho float64) float64 {
		var sum numeric.KahanSum
		for _, s := range g.Servers {
			r := rho*s.Capacity(g.TaskSize) - s.SpecialRate
			if r > 0 {
				sum.Add(r)
			}
		}
		return sum.Value()
	}
	rho, err := numeric.BisectPredicate(func(rho float64) bool { return need(rho) >= lambda }, 0, 1, 1e-13)
	if err != nil {
		return nil, fmt.Errorf("balance: equal-utilization search failed: %w", err)
	}
	rates := make([]float64, g.N())
	var sum numeric.KahanSum
	for i, s := range g.Servers {
		r := rho*s.Capacity(g.TaskSize) - s.SpecialRate
		if r < 0 {
			r = 0
		}
		rates[i] = r
		sum.Add(r)
	}
	// Exact conservation (bisection leaves an O(tol) residual).
	if f := sum.Value(); f > 0 {
		for i := range rates {
			rates[i] *= lambda / f
		}
	}
	return rates, nil
}

// FastestFirst greedily fills servers in decreasing order of blade
// speed, loading each to a target utilization before spilling to the
// next — a caricature of "send work to the fast machines". The target
// is the lowest uniform cap that fits λ′, so the allocation is feasible
// for every λ′ < λ′_max, but it can badly overload the fast servers.
type FastestFirst struct {
	// Headroom is the per-server utilization cap applied while
	// spilling, in (0, 1); 0 means 0.98.
	Headroom float64
}

// Name implements Allocator.
func (FastestFirst) Name() string { return "fastest-first" }

// Allocate implements Allocator.
func (f FastestFirst) Allocate(g *model.Group, lambda float64) ([]float64, error) {
	if err := validate(g, lambda); err != nil {
		return nil, err
	}
	head := f.Headroom
	if head <= 0 || head >= 1 {
		head = 0.98
	}
	// Ensure the cap is high enough to fit λ′ overall.
	for {
		var capSum numeric.KahanSum
		for _, s := range g.Servers {
			r := head*s.Capacity(g.TaskSize) - s.SpecialRate
			if r > 0 {
				capSum.Add(r)
			}
		}
		if capSum.Value() > lambda {
			break
		}
		head = (head + 1) / 2 // approach 1 until λ′ fits
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	// Selection sort by speed descending (n is small).
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if g.Servers[order[j]].Speed > g.Servers[order[best]].Speed {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	rates := make([]float64, g.N())
	remaining := lambda
	for _, idx := range order {
		if remaining <= 0 {
			break
		}
		s := g.Servers[idx]
		room := head*s.Capacity(g.TaskSize) - s.SpecialRate
		if room <= 0 {
			continue
		}
		take := math.Min(room, remaining)
		rates[idx] = take
		remaining -= take
	}
	if remaining > 1e-9 {
		return nil, fmt.Errorf("balance: fastest-first could not place %g of λ′", remaining)
	}
	return rates, nil
}

// Greedy performs discretized marginal-cost descent: λ′ is split into
// Steps equal quanta, each assigned to the server whose average
// response time increases least. With enough steps it approaches the
// optimal allocation from below; it is the strongest baseline and an
// independent sanity check on the Lagrange solution.
type Greedy struct {
	// Discipline used to evaluate response times.
	Discipline queueing.Discipline
	// Steps is the number of quanta (0 means 1000).
	Steps int
}

// Name implements Allocator.
func (g Greedy) Name() string { return "greedy-marginal-cost" }

// Allocate implements Allocator.
func (gr Greedy) Allocate(g *model.Group, lambda float64) ([]float64, error) {
	if err := validate(g, lambda); err != nil {
		return nil, err
	}
	steps := gr.Steps
	if steps <= 0 {
		steps = 1000
	}
	quantum := lambda / float64(steps)
	rates := make([]float64, g.N())
	for step := 0; step < steps; step++ {
		bestIdx := -1
		bestCost := math.Inf(1)
		for i, s := range g.Servers {
			if s.Utilization(rates[i]+quantum, g.TaskSize) >= 1 {
				continue
			}
			// Marginal cost of the quantum on server i (same Lagrange
			// quantity the optimizer equalizes, at the midpoint).
			mc := s.MarginalCost(gr.Discipline, rates[i]+quantum/2, lambda, g.TaskSize)
			if mc < bestCost {
				bestCost = mc
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("balance: greedy could not place quantum %d", step)
		}
		rates[bestIdx] += quantum
	}
	return rates, nil
}

// All returns one instance of every baseline allocator, with greedy
// evaluated under discipline d.
func All(d queueing.Discipline) []Allocator {
	return []Allocator{
		Proportional{},
		Residual{},
		EqualRate{},
		EqualUtilization{},
		FastestFirst{},
		Greedy{Discipline: d},
	}
}
