package balance

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

func liGroup() *model.Group { return model.LiExample1Group() }

func TestAllAllocatorsConserve(t *testing.T) {
	g := liGroup()
	lambda := 0.5 * g.MaxGenericRate()
	for _, a := range All(queueing.FCFS) {
		rates, err := a.Allocate(g, lambda)
		if err != nil {
			// Equal-rate is legitimately infeasible here: server 1 can
			// absorb only 2.24 generic tasks/s but λ′/n = 3.36.
			if a.Name() == "equal-rate" {
				continue
			}
			t.Errorf("%s: %v", a.Name(), err)
			continue
		}
		if math.Abs(numeric.Sum(rates)-lambda) > 1e-6 {
			t.Errorf("%s: Σ=%.9g want %.9g", a.Name(), numeric.Sum(rates), lambda)
		}
		if err := g.Feasible(rates); err != nil {
			t.Errorf("%s: infeasible: %v", a.Name(), err)
		}
	}
}

func TestAllAllocatorsValidateInputs(t *testing.T) {
	g := liGroup()
	for _, a := range All(queueing.FCFS) {
		if _, err := a.Allocate(g, 0); err == nil {
			t.Errorf("%s: λ′=0 should fail", a.Name())
		}
		if _, err := a.Allocate(g, g.MaxGenericRate()+1); err == nil {
			t.Errorf("%s: saturating λ′ should fail", a.Name())
		}
		if _, err := a.Allocate(&model.Group{TaskSize: 1}, 1); err == nil {
			t.Errorf("%s: invalid group should fail", a.Name())
		}
	}
}

func TestOptimalBeatsEveryBaseline(t *testing.T) {
	// The headline claim: the Lagrange solution dominates every naive
	// policy (ties allowed within tolerance for the strongest ones).
	g := liGroup()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
			lambda := frac * g.MaxGenericRate()
			opt, err := core.Optimize(g, lambda, core.Options{Discipline: d})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range All(d) {
				rates, err := a.Allocate(g, lambda)
				if err != nil {
					continue // some baselines are legitimately infeasible
				}
				baseT := g.AverageResponseTime(d, rates)
				if baseT < opt.AvgResponseTime-1e-9 {
					t.Errorf("%v frac=%g: %s beats optimal (%.9g < %.9g)",
						d, frac, a.Name(), baseT, opt.AvgResponseTime)
				}
			}
		}
	}
}

func TestGreedyApproachesOptimal(t *testing.T) {
	g := liGroup()
	lambda := 0.5 * g.MaxGenericRate()
	opt, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := Greedy{Discipline: queueing.FCFS, Steps: 20000}.Allocate(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	got := g.AverageResponseTime(queueing.FCFS, rates)
	if math.Abs(got-opt.AvgResponseTime) > 1e-4 {
		t.Fatalf("greedy T′=%.9g vs optimal %.9g", got, opt.AvgResponseTime)
	}
}

func TestGreedyDefaultSteps(t *testing.T) {
	g := liGroup()
	rates, err := Greedy{Discipline: queueing.FCFS}.Allocate(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(numeric.Sum(rates)-5) > 1e-9 {
		t.Fatalf("Σ=%g", numeric.Sum(rates))
	}
}

func TestEqualUtilizationEqualizes(t *testing.T) {
	g := liGroup()
	lambda := 0.5 * g.MaxGenericRate()
	rates, err := EqualUtilization{}.Allocate(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rhos := g.Utilizations(rates)
	for i := 1; i < len(rhos); i++ {
		if rates[i] > 0 && rates[0] > 0 && math.Abs(rhos[i]-rhos[0]) > 1e-6 {
			t.Fatalf("utilizations not equalized: %v", rhos)
		}
	}
}

func TestEqualUtilizationSkipsOverloaded(t *testing.T) {
	// Server 2 preloaded to ρ″=0.9; at low λ′ it should get nothing.
	g := &model.Group{
		Servers: []model.Server{
			{Size: 2, Speed: 1, SpecialRate: 0.2}, // ρ″ = 0.1
			{Size: 2, Speed: 1, SpecialRate: 1.8}, // ρ″ = 0.9
		},
		TaskSize: 1,
	}
	rates, err := EqualUtilization{}.Allocate(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rates[1] != 0 {
		t.Fatalf("overloaded server should get 0, got %v", rates)
	}
}

func TestResidualEqualUtilizationCoincideForUniformPreload(t *testing.T) {
	// With λ″_i = y·m_i/x̄_i (uniform preload fraction), residual split
	// and equal-utilization split coincide.
	g := liGroup()
	lambda := 0.4 * g.MaxGenericRate()
	r1, err := Residual{}.Allocate(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EqualUtilization{}.Allocate(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if !numeric.WithinTol(r1[i], r2[i], 1e-6, 1e-6) {
			t.Fatalf("server %d: residual %g vs equal-util %g", i+1, r1[i], r2[i])
		}
	}
}

func TestProportionalInfeasibleWhenPreloadSkewed(t *testing.T) {
	// Proportional ignores preload: server 1 is nearly saturated by
	// specials, so a proportional share of a large λ′ overloads it.
	g := &model.Group{
		Servers: []model.Server{
			{Size: 2, Speed: 1, SpecialRate: 1.9}, // ρ″ = 0.95
			{Size: 2, Speed: 1, SpecialRate: 0},
		},
		TaskSize: 1,
	}
	if _, err := (Proportional{}).Allocate(g, 1.0); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestEqualRateInfeasibleOnTinyServer(t *testing.T) {
	g := &model.Group{
		Servers: []model.Server{
			{Size: 1, Speed: 0.2, SpecialRate: 0}, // capacity 0.2
			{Size: 8, Speed: 2.0, SpecialRate: 0}, // capacity 16
		},
		TaskSize: 1,
	}
	// λ′/2 = 1.0 > 0.2 saturates server 1.
	if _, err := (EqualRate{}).Allocate(g, 2.0); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestFastestFirstPrefersFastServers(t *testing.T) {
	g := liGroup() // speeds decrease with index: server 1 fastest
	rates, err := FastestFirst{}.Allocate(g, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] == 0 {
		t.Fatalf("fastest server should be loaded first: %v", rates)
	}
	// With only 3.0 to place, the slowest server should be idle.
	if rates[6] != 0 {
		t.Fatalf("slowest server should be idle at low load: %v", rates)
	}
}

func TestFastestFirstHighLoadStillFeasible(t *testing.T) {
	g := liGroup()
	lambda := 0.97 * g.MaxGenericRate()
	rates, err := FastestFirst{}.Allocate(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Feasible(rates); err != nil {
		t.Fatal(err)
	}
	if math.Abs(numeric.Sum(rates)-lambda) > 1e-6 {
		t.Fatalf("Σ=%g want %g", numeric.Sum(rates), lambda)
	}
}

func TestAllocatorNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All(queueing.FCFS) {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
		if seen[a.Name()] {
			t.Errorf("duplicate name %q", a.Name())
		}
		seen[a.Name()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 allocators, got %d", len(seen))
	}
}
