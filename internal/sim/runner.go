package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// RepResult aggregates independent replications of one scenario.
type RepResult struct {
	// GenericT is the confidence interval over per-replication mean
	// generic response times — the simulated counterpart of the
	// paper's T′.
	GenericT metrics.Interval
	// SpecialT is the same for special tasks.
	SpecialT metrics.Interval
	// Utilizations are per-station utilizations averaged across
	// replications.
	Utilizations []float64
	// Replications is the number of runs executed.
	Replications int
	// GenericRuns and SpecialRuns count the replications that actually
	// contributed at least one completed task of that class to the
	// corresponding interval. They can be smaller than Replications —
	// a special-only scenario contributes no generic completions, a
	// deeply failed run can lose every task — and then the intervals'
	// effective sample size is these counts, not Replications.
	// Consumers judging statistical quality must use them.
	GenericRuns, SpecialRuns int
	// Runs holds the individual run results, in replication order.
	Runs []*RunResult
}

// RunReplications executes reps independent replications of cfg in
// parallel (seeds cfg.Seed, cfg.Seed+1, …) and aggregates them into
// confidence intervals at the given confidence level. Parallelism is
// bounded by GOMAXPROCS; results are deterministic regardless of
// scheduling because each replication is seeded independently and
// dispatchers implementing Forker get a fresh copy per replication
// (shared mutable dispatcher state would otherwise race across
// workers and entangle the replications).
func RunReplications(cfg Config, reps int, confidence float64) (*RepResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("sim: replications %d must be ≥ 1", reps)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runs := make([]*RunResult, reps)
	errs := make([]error, reps)

	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cfg
				c.Seed = cfg.Seed + int64(i)
				if f, ok := cfg.Dispatcher.(Forker); ok {
					c.Dispatcher = f.Fork()
				}
				runs[i], errs[i] = Run(c)
			}
		}()
	}
	for i := 0; i < reps; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var genMeans, speMeans metrics.Welford
	utils := make([]float64, cfg.Group.N())
	for _, r := range runs {
		if r.GenericResponse.Count() > 0 {
			genMeans.Add(r.GenericResponse.Mean())
		}
		if r.SpecialResponse.Count() > 0 {
			speMeans.Add(r.SpecialResponse.Mean())
		}
		for i, u := range r.Utilizations {
			utils[i] += u / float64(reps)
		}
	}
	genIv, err := metrics.ConfidenceInterval(&genMeans, confidence)
	if err != nil {
		return nil, err
	}
	speIv, err := metrics.ConfidenceInterval(&speMeans, confidence)
	if err != nil {
		return nil, err
	}
	return &RepResult{
		GenericT:     genIv,
		SpecialT:     speIv,
		Utilizations: utils,
		Replications: reps,
		GenericRuns:  int(genMeans.Count()),
		SpecialRuns:  int(speMeans.Count()),
		Runs:         runs,
	}, nil
}
