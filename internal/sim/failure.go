package sim

import (
	"fmt"
	"math"

	"repro/internal/failure"
)

// FailurePolicy selects what happens to tasks that are in service on a
// blade when it fails.
type FailurePolicy int

const (
	// RequeueInFlight puts evicted tasks back into the station's queue
	// with their residual work (resume semantics). The default.
	RequeueInFlight FailurePolicy = iota
	// DropInFlight loses evicted tasks; they count in RunResult.Lost*.
	DropInFlight
)

// Valid reports whether the policy is known.
func (p FailurePolicy) Valid() bool {
	return p == RequeueInFlight || p == DropInFlight
}

// String returns the policy name.
func (p FailurePolicy) String() string {
	if p == DropInFlight {
		return "drop-in-flight"
	}
	return "requeue-in-flight"
}

// RetryPolicy re-dispatches generic tasks that find their chosen
// station fully down or full, after a capped exponential backoff. Each
// retry re-runs the dispatcher against fresh station views, so a
// health-aware policy gets a chance to route around the outage.
type RetryPolicy struct {
	// MaxAttempts is the number of retries after the initial dispatch
	// (≥ 1). A task whose last retry also fails is lost.
	MaxAttempts int
	// Base is the backoff before the first retry; attempt k waits
	// Base·2^k, capped at Cap. Must be positive.
	Base float64
	// Cap bounds the backoff delay. Zero means uncapped.
	Cap float64
}

// Validate checks the policy.
func (r *RetryPolicy) Validate() error {
	if r.MaxAttempts < 1 {
		return fmt.Errorf("sim: retry MaxAttempts %d must be ≥ 1", r.MaxAttempts)
	}
	if r.Base <= 0 || math.IsNaN(r.Base) || math.IsInf(r.Base, 0) {
		return fmt.Errorf("sim: retry Base %g must be positive and finite", r.Base)
	}
	if r.Cap < 0 || math.IsNaN(r.Cap) || math.IsInf(r.Cap, 0) {
		return fmt.Errorf("sim: retry Cap %g must be non-negative and finite", r.Cap)
	}
	return nil
}

// delay returns the backoff before retry number attempt (0-based).
func (r *RetryPolicy) delay(attempt int) float64 {
	d := r.Base * math.Pow(2, float64(attempt))
	if r.Cap > 0 && d > r.Cap {
		d = r.Cap
	}
	return d
}

// failureSeedOffset decorrelates the failure-schedule stream from the
// arrival/service streams that consume cfg.Seed directly.
const failureSeedOffset = 1_000_000_007

// buildSchedules resolves the configured failure trace: explicit
// schedules win, otherwise a plan generates seeded ones, otherwise nil.
func (c Config) buildSchedules() ([]failure.Schedule, error) {
	n := c.Group.N()
	if c.FailureSchedules != nil {
		if len(c.FailureSchedules) != n {
			return nil, fmt.Errorf("sim: %d failure schedules for %d stations", len(c.FailureSchedules), n)
		}
		for i, sch := range c.FailureSchedules {
			if err := sch.Validate(); err != nil {
				return nil, fmt.Errorf("sim: station %d: %w", i+1, err)
			}
		}
		return c.FailureSchedules, nil
	}
	if !c.Failures.Enabled() {
		return nil, nil
	}
	if len(c.Failures.Stations) != n {
		return nil, fmt.Errorf("sim: failure plan covers %d stations, group has %d", len(c.Failures.Stations), n)
	}
	sizes := make([]int, n)
	for i, s := range c.Group.Servers {
		sizes[i] = s.Size
	}
	return c.Failures.GenerateAll(sizes, c.Horizon, c.Seed+failureSeedOffset)
}
