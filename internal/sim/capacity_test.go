package sim

import (
	"math"
	"testing"

	"repro/internal/queueing"
)

// TestFiniteRoomAgainstMMmK validates the capacity-bounded simulator
// against the exact M/M/m/K solution: blocking probability and the
// response time of accepted tasks.
func TestFiniteRoomAgainstMMmK(t *testing.T) {
	m, k := 2, 6
	lambda := 2.4 // offered ρ = 1.2: overloaded, blocking is material
	cfg := Config{
		Group: singleStation(m, 1, 0), Discipline: queueing.FCFS,
		GenericRate: lambda, Dispatcher: toOnly{},
		Horizon: 200000, Warmup: 2000, Seed: 33, QueueCapacity: k,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := queueing.SolveMMmK(m, k, lambda)
	if err != nil {
		t.Fatal(err)
	}
	gotBlock := float64(res.BlockedGeneric) / float64(res.ArrivedGeneric)
	if math.Abs(gotBlock-want.Blocking) > 0.01 {
		t.Fatalf("blocking %.4f vs analytic %.4f", gotBlock, want.Blocking)
	}
	gotT := res.GenericResponse.Mean()
	if math.Abs(gotT-want.ResponseTime)/want.ResponseTime > 0.03 {
		t.Fatalf("accepted-task T %.4f vs analytic %.4f", gotT, want.ResponseTime)
	}
	// Throughput of accepted tasks matches λ(1−B).
	gotRate := float64(res.CompletedGeneric) / (cfg.Horizon - cfg.Warmup)
	if math.Abs(gotRate-want.EffectiveRate)/want.EffectiveRate > 0.03 {
		t.Fatalf("effective rate %.4f vs analytic %.4f", gotRate, want.EffectiveRate)
	}
}

func TestFiniteRoomStableSystemRarelyBlocks(t *testing.T) {
	// Generous room on a stable station: blocking ≈ analytic tiny value.
	cfg := Config{
		Group: singleStation(4, 1, 0), Discipline: queueing.FCFS,
		GenericRate: 2.0, Dispatcher: toOnly{}, // ρ = 0.5
		Horizon: 50000, Warmup: 500, Seed: 35, QueueCapacity: 40,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedGeneric > res.ArrivedGeneric/1000 {
		t.Fatalf("blocked %d of %d on a lightly loaded bounded station",
			res.BlockedGeneric, res.ArrivedGeneric)
	}
}

func TestUnboundedNeverBlocks(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0.3), Discipline: queueing.FCFS,
		GenericRate: 0.5, Dispatcher: toOnly{}, Horizon: 20000, Seed: 37,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedGeneric != 0 || res.BlockedSpecial != 0 {
		t.Fatalf("unbounded run blocked %d/%d", res.BlockedGeneric, res.BlockedSpecial)
	}
}

func TestHistogramCapture(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), Discipline: queueing.FCFS,
		GenericRate: 0.5, Dispatcher: toOnly{},
		Horizon: 50000, Warmup: 500, Seed: 39,
		HistogramBins: 50, HistogramMax: 20,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.GenericHistogram
	if h == nil {
		t.Fatal("histogram not captured")
	}
	if h.Total() != res.CompletedGeneric {
		t.Fatalf("histogram total %d vs completed %d", h.Total(), res.CompletedGeneric)
	}
	// M/M/1 sojourn mean 2: the histogram mean must agree with the
	// Welford mean exactly (same observations).
	if math.Abs(h.Mean()-res.GenericResponse.Mean()) > 1e-12 {
		t.Fatalf("histogram mean %.6f vs accumulator %.6f", h.Mean(), res.GenericResponse.Mean())
	}
	// The modal mass must be in the early bins for a sojourn starting
	// at Exp-like shape.
	if h.Count(0)+h.Count(1)+h.Count(2) == 0 {
		t.Fatal("no mass in the early bins")
	}
	// Default: no histogram.
	cfg.HistogramBins = 0
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.GenericHistogram != nil {
		t.Fatal("histogram should be nil by default")
	}
}
