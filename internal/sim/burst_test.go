package sim

import (
	"testing"

	"repro/internal/queueing"
	"repro/internal/trace"
)

// TestBurstyArrivalsDegradeResponse replays an MMPP trace and a Poisson
// trace with the same mean rate through the same station: the bursty
// stream must wait longer (the direction the G/G/m approximation
// predicts for arrival SCV > 1), quantifying how the paper's
// Poisson-based results degrade under real bursty traffic.
func TestBurstyArrivalsDegradeResponse(t *testing.T) {
	g := singleStation(4, 1.0, 0)
	const meanRate = 2.8 // ρ = 0.7
	poisson, err := trace.Generate(trace.Config{Group: g, GenericRate: meanRate, Horizon: 150000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := trace.GenerateMMPP(trace.MMPPConfig{
		Group:    g,
		RateHigh: 5.1, RateLow: 0.5,
		MeanHigh: 50, MeanLow: 50,
		Horizon: 150000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *trace.Trace) float64 {
		res, err := Replay(ReplayConfig{Group: g, Trace: tr, Dispatcher: toOnly{}, Warmup: 3000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.GenericResponse.Mean()
	}
	tPoisson := run(poisson)
	tBursty := run(bursty)
	if tBursty <= tPoisson {
		t.Fatalf("bursty arrivals should be slower: MMPP %.4f vs Poisson %.4f", tBursty, tPoisson)
	}
	// The Poisson replay should match M/M/m theory; the bursty one
	// should exceed it materially (the whole point of the check).
	want := queueing.ResponseTime(4, 0.7, 1.0)
	if rel := (tBursty - want) / want; rel < 0.15 {
		t.Fatalf("burstiness penalty only %.1f%%, expected substantial", rel*100)
	}
}
