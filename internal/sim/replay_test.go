package sim

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/trace"
)

func TestReplayValidation(t *testing.T) {
	g := singleStation(2, 1, 0.5)
	tr, err := trace.Generate(trace.Config{Group: g, GenericRate: 1, Horizon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok := ReplayConfig{Group: g, Trace: tr, Dispatcher: toOnly{}}
	if _, err := Replay(ok); err != nil {
		t.Fatal(err)
	}
	bad := []ReplayConfig{
		{Trace: tr, Dispatcher: toOnly{}}, // nil group
		{Group: g},                        // nil trace
		{Group: g, Trace: tr},             // generic arrivals, no dispatcher
		{Group: g, Trace: tr, Dispatcher: toOnly{}, Warmup: tr.Horizon + 1}, // warmup too large
		{Group: g, Trace: tr, Dispatcher: toOnly{}, Discipline: queueing.Discipline(9)},
	}
	for i, c := range bad {
		if _, err := Replay(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Trace referencing a station the group lacks.
	small := singleStation(1, 1, 0)
	two := &model.Group{Servers: []model.Server{
		{Size: 1, Speed: 1, SpecialRate: 0.2},
		{Size: 1, Speed: 1, SpecialRate: 0.2},
	}, TaskSize: 1}
	tr2, err := trace.Generate(trace.Config{Group: two, GenericRate: 0, Horizon: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(ReplayConfig{Group: small, Trace: tr2}); err == nil {
		t.Error("trace with out-of-range station should fail")
	}
	if _, err := Replay(ReplayConfig{Group: small, Trace: tr, Dispatcher: invalid{}}); err == nil {
		t.Error("invalid dispatcher target should fail")
	}
}

func TestReplayDeterministic(t *testing.T) {
	g := singleStation(3, 1.2, 0.8)
	tr, err := trace.Generate(trace.Config{Group: g, GenericRate: 1.5, Horizon: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ReplayConfig{Group: g, Trace: tr, Dispatcher: toOnly{}, Warmup: 100, Seed: 4}
	a, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.GenericResponse.Mean() != b.GenericResponse.Mean() ||
		a.CompletedGeneric != b.CompletedGeneric ||
		a.CompletedSpecial != b.CompletedSpecial {
		t.Fatal("replay should be deterministic")
	}
}

func TestReplayMatchesTheory(t *testing.T) {
	// Replaying a generated trace must agree with queueing theory just
	// like the live engine does.
	m, speed := 2, 1.0
	genRate, speRate := 0.7, 0.5
	g := singleStation(m, speed, speRate)
	tr, err := trace.Generate(trace.Config{Group: g, GenericRate: genRate, Horizon: 200000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(ReplayConfig{Group: g, Trace: tr, Dispatcher: toOnly{}, Warmup: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rho := (genRate + speRate) / (float64(m) * speed)
	want := queueing.ResponseTime(m, rho, 1/speed)
	got := res.GenericResponse.Mean()
	if math.Abs(got-want)/want > 0.04 {
		t.Fatalf("replayed T = %.4f, theory %.4f", got, want)
	}
	if math.Abs(res.Utilizations[0]-rho) > 0.02 {
		t.Fatalf("replayed ρ = %.4f, want %.4f", res.Utilizations[0], rho)
	}
}

func TestReplayPriorityDiscipline(t *testing.T) {
	g := singleStation(2, 1, 0.6)
	tr, err := trace.Generate(trace.Config{Group: g, GenericRate: 0.6, Horizon: 100000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(ReplayConfig{
		Group: g, Trace: tr, Discipline: queueing.Priority,
		Dispatcher: toOnly{}, Warmup: 1000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecialResponse.Mean() >= res.GenericResponse.Mean() {
		t.Fatalf("priority should favor specials: special %.4f vs generic %.4f",
			res.SpecialResponse.Mean(), res.GenericResponse.Mean())
	}
}

func TestReplaySpecialOnlyTrace(t *testing.T) {
	g := singleStation(2, 1, 0.9)
	tr, err := trace.Generate(trace.Config{Group: g, GenericRate: 0, Horizon: 10000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// No dispatcher needed when the trace has no generic arrivals.
	res, err := Replay(ReplayConfig{Group: g, Trace: tr, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedGeneric != 0 || res.CompletedSpecial == 0 {
		t.Fatalf("generic=%d special=%d", res.CompletedGeneric, res.CompletedSpecial)
	}
}

func TestReplayAgreesWithLiveEngineStatistically(t *testing.T) {
	// Live generation and trace replay of the same scenario must agree
	// on the mean response time (they use different RNG consumption
	// orders, so only statistical agreement is expected).
	g := singleStation(4, 1.3, 1.5)
	genRate := 2.0
	live, err := Run(Config{
		Group: g, GenericRate: genRate, Dispatcher: toOnly{},
		Horizon: 150000, Warmup: 2000, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Config{Group: g, GenericRate: genRate, Horizon: 150000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(ReplayConfig{Group: g, Trace: tr, Dispatcher: toOnly{}, Warmup: 2000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	a, b := live.GenericResponse.Mean(), rep.GenericResponse.Mean()
	if math.Abs(a-b)/a > 0.05 {
		t.Fatalf("live %.4f vs replay %.4f diverge", a, b)
	}
}
