package sim

import "math/rand"

// StationView is the dispatcher-visible snapshot of one station at a
// generic-task arrival instant.
type StationView struct {
	// Index identifies the station (0-based).
	Index int
	// Blades is the station size m_i.
	Blades int
	// Speed is the blade speed s_i.
	Speed float64
	// ServiceMean is x̄_i = r̄/s_i for the configured workload.
	ServiceMean float64
	// Busy is the number of blades currently serving.
	Busy int
	// QueueLen is the number of waiting tasks (both classes).
	QueueLen int
	// AvailableBlades is the number of non-failed blades (= Blades
	// unless failure injection is active).
	AvailableBlades int
	// Up reports whether the station can serve at all (at least one
	// blade available). Health-aware dispatchers should not route to
	// down stations; state-oblivious ones ignore this and pay for it.
	Up bool
}

// Dispatcher routes each arriving generic task to a station. Pick is
// called once per generic arrival with fresh views; it must return a
// valid station index. Implementations must be deterministic given the
// supplied rng.
type Dispatcher interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects the station for the arriving task.
	Pick(views []StationView, rng *rand.Rand) int
}

// BatchPicker is implemented by dispatchers that can route a whole
// batch of arrivals from one view snapshot — the simulator-side
// counterpart of the serving layer's DecideBatch. PickN fills dst with
// one station per pending arrival, all chosen against the supplied
// views; a state-aware implementation must account for its own in-batch
// picks (e.g. a local busy overlay) so the batch routes as k sequential
// Picks against self-updating state would. The batching wrapper
// (dispatch.Batched) prefers this interface and otherwise falls back to
// driving Pick over a frozen snapshot.
type BatchPicker interface {
	Dispatcher
	PickN(views []StationView, rng *rand.Rand, dst []int)
}

// Forker is implemented by stateful dispatchers (cycling counters,
// reusable buffers, adaptive weights). Fork returns an independent
// dispatcher in its initial state so that parallel replications neither
// race on shared fields nor leak state from one run into another.
// RunReplications forks the configured dispatcher once per replication
// when this interface is present; stateless dispatchers don't need it.
type Forker interface {
	Fork() Dispatcher
}
