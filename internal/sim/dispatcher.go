package sim

import "math/rand"

// StationView is the dispatcher-visible snapshot of one station at a
// generic-task arrival instant.
type StationView struct {
	// Index identifies the station (0-based).
	Index int
	// Blades is the station size m_i.
	Blades int
	// Speed is the blade speed s_i.
	Speed float64
	// ServiceMean is x̄_i = r̄/s_i for the configured workload.
	ServiceMean float64
	// Busy is the number of blades currently serving.
	Busy int
	// QueueLen is the number of waiting tasks (both classes).
	QueueLen int
}

// Dispatcher routes each arriving generic task to a station. Pick is
// called once per generic arrival with fresh views; it must return a
// valid station index. Implementations must be deterministic given the
// supplied rng.
type Dispatcher interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects the station for the arriving task.
	Pick(views []StationView, rng *rand.Rand) int
}
