package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/queueing"
)

// Config describes one simulation scenario.
type Config struct {
	// Group is the blade-server system to simulate.
	Group *model.Group
	// Discipline selects FCFS or priority scheduling of special tasks.
	Discipline queueing.Discipline
	// GenericRate is the total generic arrival rate λ′. Zero disables
	// the generic stream (special-only runs are allowed).
	GenericRate float64
	// Dispatcher routes generic tasks. Required when GenericRate > 0.
	Dispatcher Dispatcher
	// Horizon is the simulated duration. Must be positive.
	Horizon float64
	// Warmup drops observations from tasks arriving before this time,
	// removing initial-transient bias. Must be < Horizon.
	Warmup float64
	// Seed makes the run reproducible.
	Seed int64
	// Service draws task execution requirements for both classes.
	// Nil means Exponential (the paper's M/M/m assumption); set
	// Deterministic, ErlangK, or HyperExp2 to probe how the optimized
	// system behaves when the assumption is violated.
	Service ServiceDistribution
	// BatchSize, when positive, additionally accumulates generic
	// response times into batch means of this size, enabling a valid
	// single-run confidence interval despite the autocorrelation of
	// consecutive sojourn times (see RunResult.GenericBatches).
	BatchSize int
	// QueueCapacity, when positive, bounds every station at that many
	// tasks in system (waiting + in service): arrivals finding a full
	// station are dropped and counted in RunResult.Blocked*. This is
	// the M/M/m/K regime of queueing.SolveMMmK; zero keeps the paper's
	// infinite waiting rooms.
	QueueCapacity int
	// HistogramBins/HistogramMax, when both positive, record generic
	// response times into a fixed-bin histogram over [0, HistogramMax)
	// (see RunResult.GenericHistogram).
	HistogramBins int
	HistogramMax  float64
}

// service returns the configured distribution or the default.
func (c Config) service() ServiceDistribution {
	if c.Service == nil {
		return Exponential{}
	}
	return c.Service
}

func (c Config) validate() error {
	if c.Group == nil {
		return fmt.Errorf("sim: nil group")
	}
	if err := c.Group.Validate(); err != nil {
		return err
	}
	if !c.Discipline.Valid() {
		return fmt.Errorf("sim: unknown discipline %d", int(c.Discipline))
	}
	if c.GenericRate < 0 || math.IsNaN(c.GenericRate) {
		return fmt.Errorf("sim: generic rate %g must be non-negative", c.GenericRate)
	}
	if c.GenericRate > 0 && c.Dispatcher == nil {
		return fmt.Errorf("sim: generic rate %g requires a dispatcher", c.GenericRate)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) {
		return fmt.Errorf("sim: horizon %g must be positive", c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("sim: warmup %g must be in [0, horizon)", c.Warmup)
	}
	if err := validateDistribution(c.Service); err != nil {
		return err
	}
	return nil
}

// RunResult reports one simulation run.
type RunResult struct {
	// GenericResponse accumulates response times of generic tasks that
	// arrived after warmup and completed before the horizon.
	GenericResponse metrics.Welford
	// SpecialResponse is the same for special tasks.
	SpecialResponse metrics.Welford
	// GenericP95 estimates the 95th percentile of generic response
	// times (P² streaming estimator).
	GenericP95 float64
	// GenericBatches holds batch means of generic response times when
	// Config.BatchSize > 0 (nil otherwise); use its Interval method
	// for a single-run confidence interval.
	GenericBatches *metrics.BatchMeans
	// GenericHistogram bins generic response times when configured
	// (nil otherwise).
	GenericHistogram *metrics.Histogram
	// PerStationGeneric holds generic response-time accumulators per
	// station.
	PerStationGeneric []metrics.Welford
	// Utilizations are measured per-blade utilizations over the run.
	Utilizations []float64
	// ArrivedGeneric / ArrivedSpecial count post-warmup arrivals.
	ArrivedGeneric, ArrivedSpecial int64
	// CompletedGeneric / CompletedSpecial count recorded completions.
	CompletedGeneric, CompletedSpecial int64
	// BlockedGeneric / BlockedSpecial count post-warmup arrivals
	// dropped by full stations (only with Config.QueueCapacity > 0).
	BlockedGeneric, BlockedSpecial int64
	// Clock is the final simulation time (= horizon).
	Clock float64
}

// Run executes one simulation run and returns its statistics.
func Run(cfg Config) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	svc := cfg.service()
	g := cfg.Group
	n := g.N()
	cal := newCalendar()

	stations := make([]*station, n)
	for i, s := range g.Servers {
		stations[i] = &station{index: i, blades: s.Size, speed: s.Speed, discipline: cfg.Discipline}
		if s.SpecialRate > 0 {
			cal.schedule(event{time: rng.ExpFloat64() / s.SpecialRate, kind: evSpecialArrival, station: i})
		}
	}
	if cfg.GenericRate > 0 {
		cal.schedule(event{time: rng.ExpFloat64() / cfg.GenericRate, kind: evGenericArrival})
	}

	res := &RunResult{
		PerStationGeneric: make([]metrics.Welford, n),
		Utilizations:      make([]float64, n),
	}
	p95, err := metrics.NewP2Quantile(0.95)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize > 0 {
		bm, err := metrics.NewBatchMeans(cfg.BatchSize)
		if err != nil {
			return nil, err
		}
		res.GenericBatches = bm
	}
	if cfg.HistogramBins > 0 && cfg.HistogramMax > 0 {
		h, err := metrics.NewHistogram(0, cfg.HistogramMax, cfg.HistogramBins)
		if err != nil {
			return nil, err
		}
		res.GenericHistogram = h
	}
	views := make([]StationView, n)

	for {
		ev, ok := cal.next()
		if !ok || ev.time > cfg.Horizon {
			break
		}
		now := ev.time
		switch ev.kind {
		case evGenericArrival:
			// Schedule the next generic arrival first (Poisson stream).
			cal.schedule(event{time: now + rng.ExpFloat64()/cfg.GenericRate, kind: evGenericArrival})
			for i, st := range stations {
				views[i] = StationView{
					Index:       i,
					Blades:      st.blades,
					Speed:       st.speed,
					ServiceMean: g.TaskSize / st.speed,
					Busy:        st.busy,
					QueueLen:    st.queueLen(),
				}
			}
			target := cfg.Dispatcher.Pick(views, rng)
			if target < 0 || target >= n {
				return nil, fmt.Errorf("sim: dispatcher %q picked invalid station %d", cfg.Dispatcher.Name(), target)
			}
			t := task{class: Generic, arrival: now, req: svc.Sample(rng, g.TaskSize)}
			if now >= cfg.Warmup {
				res.ArrivedGeneric++
			}
			if full(stations[target], cfg.QueueCapacity) {
				if now >= cfg.Warmup {
					res.BlockedGeneric++
				}
				continue
			}
			stations[target].admit(t, now, cal)

		case evSpecialArrival:
			st := stations[ev.station]
			rate := g.Servers[ev.station].SpecialRate
			cal.schedule(event{time: now + rng.ExpFloat64()/rate, kind: evSpecialArrival, station: ev.station})
			t := task{class: Special, arrival: now, req: svc.Sample(rng, g.TaskSize)}
			if now >= cfg.Warmup {
				res.ArrivedSpecial++
			}
			if full(st, cfg.QueueCapacity) {
				if now >= cfg.Warmup {
					res.BlockedSpecial++
				}
				continue
			}
			st.admit(t, now, cal)

		case evDeparture:
			st := stations[ev.station]
			st.depart(now, cal)
			if ev.task.arrival >= cfg.Warmup {
				resp := now - ev.task.arrival
				if ev.task.class == Generic {
					res.GenericResponse.Add(resp)
					res.PerStationGeneric[ev.station].Add(resp)
					p95.Add(resp)
					if res.GenericBatches != nil {
						res.GenericBatches.Add(resp)
					}
					if res.GenericHistogram != nil {
						res.GenericHistogram.Add(resp)
					}
					res.CompletedGeneric++
				} else {
					res.SpecialResponse.Add(resp)
					res.CompletedSpecial++
				}
			}
		}
	}
	for i, st := range stations {
		res.Utilizations[i] = st.utilization(cfg.Horizon)
	}
	res.GenericP95 = p95.Value()
	res.Clock = cfg.Horizon
	return res, nil
}

// full reports whether a station has reached the capacity bound (0
// means unbounded, the paper's model).
func full(st *station, capacity int) bool {
	if capacity <= 0 {
		return false
	}
	return st.busy+st.queueLen() >= capacity
}
