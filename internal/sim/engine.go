package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/queueing"
)

// Config describes one simulation scenario.
type Config struct {
	// Group is the blade-server system to simulate.
	Group *model.Group
	// Discipline selects FCFS or priority scheduling of special tasks.
	Discipline queueing.Discipline
	// GenericRate is the total generic arrival rate λ′. Zero disables
	// the generic stream (special-only runs are allowed).
	GenericRate float64
	// Dispatcher routes generic tasks. Required when GenericRate > 0.
	Dispatcher Dispatcher
	// Horizon is the simulated duration. Must be positive.
	Horizon float64
	// Warmup drops observations from tasks arriving before this time,
	// removing initial-transient bias. Must be < Horizon.
	Warmup float64
	// Seed makes the run reproducible.
	Seed int64
	// Service draws task execution requirements for both classes.
	// Nil means Exponential (the paper's M/M/m assumption); set
	// Deterministic, ErlangK, or HyperExp2 to probe how the optimized
	// system behaves when the assumption is violated.
	Service ServiceDistribution
	// BatchSize, when positive, additionally accumulates generic
	// response times into batch means of this size, enabling a valid
	// single-run confidence interval despite the autocorrelation of
	// consecutive sojourn times (see RunResult.GenericBatches).
	BatchSize int
	// QueueCapacity, when positive, bounds every station at that many
	// tasks in system (waiting + in service): arrivals finding a full
	// station are dropped and counted in RunResult.Blocked*. This is
	// the M/M/m/K regime of queueing.SolveMMmK; zero keeps the paper's
	// infinite waiting rooms.
	QueueCapacity int
	// HistogramBins/HistogramMax, when both positive, record generic
	// response times into a fixed-bin histogram over [0, HistogramMax)
	// (see RunResult.GenericHistogram).
	HistogramBins int
	HistogramMax  float64
	// Failures, when non-nil with any enabled station, injects
	// per-station up/down processes: schedules are generated from the
	// run seed, stations lose blades (or go fully down) mid-run, and
	// the Lost*/Requeued*/Downtime/Availability fields of RunResult are
	// populated. Must cover exactly the group's stations.
	Failures *failure.Plan
	// FailureSchedules supplies explicit per-station failure traces and
	// takes precedence over Failures. Use it to replay the identical
	// outage scenario under different dispatchers or policies. Length
	// must equal the group size (nil entries never fail).
	FailureSchedules []failure.Schedule
	// FailurePolicy selects requeue-with-residual-work (default) or
	// drop for tasks in flight on a failing blade.
	FailurePolicy FailurePolicy
	// Retry, when non-nil, models clients that bounce off fully-down or
	// full stations: the task is re-dispatched (fresh Pick) after a
	// capped exponential backoff, and is lost once MaxAttempts retries
	// are exhausted. Without it, tasks sent to a down station wait in
	// its queue until repair (service is suspended, not admission).
	Retry *RetryPolicy
}

// service returns the configured distribution or the default.
func (c Config) service() ServiceDistribution {
	if c.Service == nil {
		return Exponential{}
	}
	return c.Service
}

func (c Config) validate() error {
	if c.Group == nil {
		return fmt.Errorf("sim: nil group")
	}
	if err := c.Group.Validate(); err != nil {
		return err
	}
	if !c.Discipline.Valid() {
		return fmt.Errorf("sim: unknown discipline %d", int(c.Discipline))
	}
	if c.GenericRate < 0 || math.IsNaN(c.GenericRate) {
		return fmt.Errorf("sim: generic rate %g must be non-negative", c.GenericRate)
	}
	if c.GenericRate > 0 && c.Dispatcher == nil {
		return fmt.Errorf("sim: generic rate %g requires a dispatcher", c.GenericRate)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) {
		return fmt.Errorf("sim: horizon %g must be positive", c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("sim: warmup %g must be in [0, horizon)", c.Warmup)
	}
	if err := validateDistribution(c.Service); err != nil {
		return err
	}
	if !c.FailurePolicy.Valid() {
		return fmt.Errorf("sim: unknown failure policy %d", int(c.FailurePolicy))
	}
	if c.Failures != nil {
		if err := c.Failures.Validate(); err != nil {
			return err
		}
	}
	if c.Retry != nil {
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// RunResult reports one simulation run.
type RunResult struct {
	// GenericResponse accumulates response times of generic tasks that
	// arrived after warmup and completed before the horizon.
	GenericResponse metrics.Welford
	// SpecialResponse is the same for special tasks.
	SpecialResponse metrics.Welford
	// GenericHealthy/GenericDegraded split GenericResponse by system
	// state at the task's arrival: degraded means at least one station
	// was fully down. Both are zero-valued without failure injection.
	GenericHealthy  metrics.Welford
	GenericDegraded metrics.Welford
	// GenericP95 estimates the 95th percentile of generic response
	// times (P² streaming estimator).
	GenericP95 float64
	// GenericBatches holds batch means of generic response times when
	// Config.BatchSize > 0 (nil otherwise); use its Interval method
	// for a single-run confidence interval.
	GenericBatches *metrics.BatchMeans
	// GenericHistogram bins generic response times when configured
	// (nil otherwise).
	GenericHistogram *metrics.Histogram
	// PerStationGeneric holds generic response-time accumulators per
	// station.
	PerStationGeneric []metrics.Welford
	// Utilizations are measured per-blade utilizations over the run
	// (relative to nameplate blade counts, so outages depress them).
	Utilizations []float64
	// Downtime is the per-station full-outage time within the horizon;
	// Availability is 1 − Downtime/Horizon. Nil without failures.
	Downtime     []float64
	Availability []float64
	// ArrivedGeneric / ArrivedSpecial count post-warmup arrivals.
	ArrivedGeneric, ArrivedSpecial int64
	// CompletedGeneric / CompletedSpecial count recorded completions.
	CompletedGeneric, CompletedSpecial int64
	// BlockedGeneric / BlockedSpecial count post-warmup arrivals
	// dropped by full stations (only with Config.QueueCapacity > 0).
	BlockedGeneric, BlockedSpecial int64
	// LostGeneric counts post-warmup generic tasks lost to outages:
	// retries against down stations exhausted (Config.Retry), or
	// evicted in flight under DropInFlight. LostSpecial counts
	// in-flight evictions of special tasks under DropInFlight.
	LostGeneric, LostSpecial int64
	// RequeuedGeneric / RequeuedSpecial count in-flight tasks put back
	// in queue by blade failures under RequeueInFlight.
	RequeuedGeneric, RequeuedSpecial int64
	// RetriedGeneric counts backoff retries performed (Config.Retry).
	RetriedGeneric int64
	// Clock is the final simulation time (= horizon).
	Clock float64
}

// CompletedGenericFraction returns the fraction of post-warmup generic
// arrivals that completed within the horizon — the robustness headline
// number next to T′. Returns 1 when nothing arrived.
func (r *RunResult) CompletedGenericFraction() float64 {
	if r.ArrivedGeneric == 0 {
		return 1
	}
	return float64(r.CompletedGeneric) / float64(r.ArrivedGeneric)
}

// Run executes one simulation run and returns its statistics.
func Run(cfg Config) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scheds, err := cfg.buildSchedules()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	svc := cfg.service()
	g := cfg.Group
	n := g.N()
	cal := newCalendar()

	// One backing array for all stations, with the in-service tracking
	// slice pre-sized to the blade count — a station can never hold more
	// than m tasks in service, so start() never grows it.
	backing := make([]station, n)
	stations := make([]*station, n)
	for i, s := range g.Servers {
		backing[i] = station{
			index:      i,
			blades:     s.Size,
			speed:      s.Speed,
			discipline: cfg.Discipline,
			active:     make([]serviceRec, 0, s.Size),
		}
		stations[i] = &backing[i]
	}
	// Failure transitions are known upfront; schedule them first so
	// that, on time ties, the state change precedes arrivals.
	for i, sch := range scheds {
		for _, tr := range sch {
			if tr.Time > cfg.Horizon {
				break
			}
			cal.schedule(event{time: tr.Time, kind: evFailure, station: i, down: tr.Down})
		}
	}
	for i, s := range g.Servers {
		if s.SpecialRate > 0 {
			cal.schedule(event{time: rng.ExpFloat64() / s.SpecialRate, kind: evSpecialArrival, station: i})
		}
	}
	if cfg.GenericRate > 0 {
		cal.schedule(event{time: rng.ExpFloat64() / cfg.GenericRate, kind: evGenericArrival})
	}

	res := &RunResult{
		PerStationGeneric: make([]metrics.Welford, n),
		Utilizations:      make([]float64, n),
	}
	p95, err := metrics.NewP2Quantile(0.95)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize > 0 {
		bm, err := metrics.NewBatchMeans(cfg.BatchSize)
		if err != nil {
			return nil, err
		}
		res.GenericBatches = bm
	}
	if cfg.HistogramBins > 0 && cfg.HistogramMax > 0 {
		h, err := metrics.NewHistogram(0, cfg.HistogramMax, cfg.HistogramBins)
		if err != nil {
			return nil, err
		}
		res.GenericHistogram = h
	}
	views := make([]StationView, n)
	refreshViews := func() {
		for i, st := range stations {
			views[i] = StationView{
				Index:           i,
				Blades:          st.blades,
				Speed:           st.speed,
				ServiceMean:     g.TaskSize / st.speed,
				Busy:            st.busy,
				QueueLen:        st.queueLen(),
				AvailableBlades: st.available(),
				Up:              st.available() > 0,
			}
		}
	}
	fullyDown := 0 // stations with zero available blades

	// dispatchGeneric routes t through the dispatcher and places it. A
	// fully-down station suspends service, not admission (the classic
	// server-breakdown model): tasks sent there by a health-oblivious
	// dispatcher pile up in its queue until repair. A retry policy
	// models clients that bounce off down/full stations instead — they
	// re-dispatch after a capped exponential backoff and give up (lost)
	// after MaxAttempts. A full bounded waiting room always drops.
	dispatchGeneric := func(t task, now float64, attempt int) error {
		refreshViews()
		target := cfg.Dispatcher.Pick(views, rng)
		if target < 0 || target >= n {
			return fmt.Errorf("sim: dispatcher %q picked invalid station %d", cfg.Dispatcher.Name(), target)
		}
		st := stations[target]
		blocked := full(st, cfg.QueueCapacity)
		downTarget := st.available() == 0
		if blocked || downTarget {
			if cfg.Retry != nil {
				if attempt < cfg.Retry.MaxAttempts {
					if now >= cfg.Warmup {
						res.RetriedGeneric++
					}
					cal.schedule(event{time: now + cfg.Retry.delay(attempt), kind: evRetry, task: t, attempt: attempt + 1})
					return nil
				}
				if now >= cfg.Warmup {
					if blocked {
						res.BlockedGeneric++
					} else {
						res.LostGeneric++
					}
				}
				return nil
			}
			if blocked {
				if now >= cfg.Warmup {
					res.BlockedGeneric++
				}
				return nil
			}
		}
		st.admit(t, now, cal)
		return nil
	}

	for {
		ev, ok := cal.next()
		if !ok || ev.time > cfg.Horizon {
			break
		}
		now := ev.time
		switch ev.kind {
		case evGenericArrival:
			// Schedule the next generic arrival first (Poisson stream).
			cal.schedule(event{time: now + rng.ExpFloat64()/cfg.GenericRate, kind: evGenericArrival})
			t := task{class: Generic, arrival: now, req: svc.Sample(rng, g.TaskSize), degraded: fullyDown > 0}
			if now >= cfg.Warmup {
				res.ArrivedGeneric++
			}
			if err := dispatchGeneric(t, now, 0); err != nil {
				return nil, err
			}

		case evRetry:
			if err := dispatchGeneric(ev.task, now, ev.attempt); err != nil {
				return nil, err
			}

		case evSpecialArrival:
			st := stations[ev.station]
			rate := g.Servers[ev.station].SpecialRate
			cal.schedule(event{time: now + rng.ExpFloat64()/rate, kind: evSpecialArrival, station: ev.station})
			t := task{class: Special, arrival: now, req: svc.Sample(rng, g.TaskSize), degraded: fullyDown > 0}
			if now >= cfg.Warmup {
				res.ArrivedSpecial++
			}
			// Special tasks are dedicated to their station: while it is
			// down they wait in queue rather than being lost, but a
			// bounded waiting room still blocks them.
			if full(st, cfg.QueueCapacity) {
				if now >= cfg.Warmup {
					res.BlockedSpecial++
				}
				continue
			}
			st.admit(t, now, cal)

		case evFailure:
			st := stations[ev.station]
			wasFull := st.available() == 0
			out := st.setDown(ev.down, now, cal, cfg.FailurePolicy == DropInFlight)
			if now >= cfg.Warmup {
				res.RequeuedGeneric += int64(out.requeuedGeneric)
				res.RequeuedSpecial += int64(out.requeuedSpecial)
				res.LostGeneric += int64(out.lostGeneric)
				res.LostSpecial += int64(out.lostSpecial)
			}
			if isFull := st.available() == 0; isFull != wasFull {
				if isFull {
					fullyDown++
				} else {
					fullyDown--
				}
			}

		case evDeparture:
			st := stations[ev.station]
			if !st.depart(now, cal, ev.id) {
				continue // stale: task was evicted by a failure
			}
			if ev.task.arrival >= cfg.Warmup {
				resp := now - ev.task.arrival
				if ev.task.class == Generic {
					res.GenericResponse.Add(resp)
					res.PerStationGeneric[ev.station].Add(resp)
					if ev.task.degraded {
						res.GenericDegraded.Add(resp)
					} else {
						res.GenericHealthy.Add(resp)
					}
					p95.Add(resp)
					if res.GenericBatches != nil {
						res.GenericBatches.Add(resp)
					}
					if res.GenericHistogram != nil {
						res.GenericHistogram.Add(resp)
					}
					res.CompletedGeneric++
				} else {
					res.SpecialResponse.Add(resp)
					res.CompletedSpecial++
				}
			}
		}
	}
	for i, st := range stations {
		res.Utilizations[i] = st.utilization(cfg.Horizon)
	}
	if scheds != nil {
		res.Downtime = make([]float64, n)
		res.Availability = make([]float64, n)
		for i, st := range stations {
			res.Downtime[i] = st.downtime(cfg.Horizon)
			res.Availability[i] = 1 - res.Downtime[i]/cfg.Horizon
		}
	}
	res.GenericP95 = p95.Value()
	res.Clock = cfg.Horizon
	return res, nil
}

// full reports whether a station has reached the capacity bound (0
// means unbounded, the paper's model).
func full(st *station, capacity int) bool {
	if capacity <= 0 {
		return false
	}
	return st.busy+st.queueLen() >= capacity
}
