package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// ServiceDistribution draws task execution requirements. The paper
// assumes exponential requirements (the M in M/M/m); the alternatives
// here let the simulator quantify how sensitive the optimized system is
// to that assumption — deterministic and Erlang-k are smoother
// (SCV < 1), hyperexponential is burstier (SCV > 1). All samples have
// the requested mean.
type ServiceDistribution interface {
	// Name identifies the distribution in reports.
	Name() string
	// SCV returns the squared coefficient of variation Var/mean².
	SCV() float64
	// Sample draws one requirement with the given mean.
	Sample(rng *rand.Rand, mean float64) float64
}

// Exponential is the paper's assumption: SCV 1.
type Exponential struct{}

// Name implements ServiceDistribution.
func (Exponential) Name() string { return "exponential" }

// SCV implements ServiceDistribution.
func (Exponential) SCV() float64 { return 1 }

// Sample implements ServiceDistribution.
func (Exponential) Sample(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Deterministic issues constant requirements: SCV 0, the smoothest
// workload (think fixed-size transcoding chunks).
type Deterministic struct{}

// Name implements ServiceDistribution.
func (Deterministic) Name() string { return "deterministic" }

// SCV implements ServiceDistribution.
func (Deterministic) SCV() float64 { return 0 }

// Sample implements ServiceDistribution.
func (Deterministic) Sample(_ *rand.Rand, mean float64) float64 { return mean }

// ErlangK is the sum of K exponential phases: SCV 1/K, interpolating
// between exponential (K=1) and deterministic (K→∞).
type ErlangK struct {
	// K is the phase count (≥ 1).
	K int
}

// Name implements ServiceDistribution.
func (e ErlangK) Name() string { return fmt.Sprintf("erlang-%d", e.K) }

// SCV implements ServiceDistribution.
func (e ErlangK) SCV() float64 { return 1 / float64(e.K) }

// Sample implements ServiceDistribution.
func (e ErlangK) Sample(rng *rand.Rand, mean float64) float64 {
	var sum float64
	for i := 0; i < e.K; i++ {
		sum += rng.ExpFloat64()
	}
	return sum * mean / float64(e.K)
}

// HyperExp2 is a two-phase hyperexponential with balanced means: with
// probability P1 the task is "small" (rate R1), otherwise "large"
// (rate R2), both rates normalized to unit mean. SCV > 1 models bursty
// mixes of short interactive requests and long batch jobs.
type HyperExp2 struct {
	P1, R1, R2 float64
	scv        float64
}

// NewHyperExp builds a balanced-means two-phase hyperexponential with
// the requested SCV > 1.
func NewHyperExp(scv float64) (*HyperExp2, error) {
	if scv <= 1 || math.IsNaN(scv) || math.IsInf(scv, 0) {
		return nil, fmt.Errorf("sim: hyperexponential needs SCV > 1, got %g", scv)
	}
	p1 := (1 + math.Sqrt((scv-1)/(scv+1))) / 2
	return &HyperExp2{P1: p1, R1: 2 * p1, R2: 2 * (1 - p1), scv: scv}, nil
}

// Name implements ServiceDistribution.
func (h *HyperExp2) Name() string { return fmt.Sprintf("hyperexp(scv=%.3g)", h.scv) }

// SCV implements ServiceDistribution.
func (h *HyperExp2) SCV() float64 { return h.scv }

// Sample implements ServiceDistribution.
func (h *HyperExp2) Sample(rng *rand.Rand, mean float64) float64 {
	if rng.Float64() < h.P1 {
		return rng.ExpFloat64() / h.R1 * mean
	}
	return rng.ExpFloat64() / h.R2 * mean
}

// validateDistribution checks implementation-specific invariants that
// Config.validate applies when a non-default distribution is set.
func validateDistribution(d ServiceDistribution) error {
	if d == nil {
		return nil
	}
	if e, ok := d.(ErlangK); ok && e.K < 1 {
		return fmt.Errorf("sim: Erlang needs K ≥ 1, got %d", e.K)
	}
	return nil
}
