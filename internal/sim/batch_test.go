package sim

import (
	"testing"

	"repro/internal/queueing"
)

func TestBatchMeansSingleRunCI(t *testing.T) {
	// A single long run with batch means should produce a valid CI
	// around the analytic mean, despite autocorrelated sojourn times.
	m, speed, rho := 2, 1.0, 0.7
	lambda := rho * float64(m) * speed
	cfg := Config{
		Group: singleStation(m, speed, 0), Discipline: queueing.FCFS,
		GenericRate: lambda, Dispatcher: toOnly{},
		Horizon: 300000, Warmup: 3000, Seed: 19, BatchSize: 5000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GenericBatches == nil {
		t.Fatal("batches not accumulated")
	}
	if res.GenericBatches.Batches() < 30 {
		t.Fatalf("only %d batches", res.GenericBatches.Batches())
	}
	iv, err := res.GenericBatches.Interval(0.99)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.ResponseTime(m, rho, 1/speed)
	if !iv.Contains(want) {
		t.Fatalf("99%% batch-means CI %v misses analytic %.4f", iv, want)
	}
	if iv.HalfWidth <= 0 || iv.HalfWidth > 0.2*want {
		t.Fatalf("implausible half width %g", iv.HalfWidth)
	}
}

func TestBatchMeansDisabledByDefault(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), GenericRate: 0.5,
		Dispatcher: toOnly{}, Horizon: 1000, Seed: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GenericBatches != nil {
		t.Fatal("batches should be nil when BatchSize is 0")
	}
}

func TestBatchSizeNegativeIgnored(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), GenericRate: 0.5,
		Dispatcher: toOnly{}, Horizon: 1000, Seed: 1, BatchSize: -5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GenericBatches != nil {
		t.Fatal("negative batch size should disable batching")
	}
}
