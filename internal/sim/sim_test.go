package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
)

// toOnly routes every generic task to one station.
type toOnly struct{ idx int }

func (d toOnly) Name() string                           { return "to-only" }
func (d toOnly) Pick(v []StationView, _ *rand.Rand) int { return d.idx }

// invalid always returns an out-of-range index.
type invalid struct{}

func (invalid) Name() string                           { return "invalid" }
func (invalid) Pick(v []StationView, _ *rand.Rand) int { return len(v) + 3 }

func singleStation(m int, speed, specialRate float64) *model.Group {
	return &model.Group{
		Servers:  []model.Server{{Size: m, Speed: speed, SpecialRate: specialRate}},
		TaskSize: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	g := singleStation(1, 1, 0)
	ok := Config{Group: g, GenericRate: 0.5, Dispatcher: toOnly{}, Horizon: 10}
	if err := ok.validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{GenericRate: 1, Dispatcher: toOnly{}, Horizon: 10},                                               // nil group
		{Group: &model.Group{TaskSize: 1}, GenericRate: 1, Dispatcher: toOnly{}, Horizon: 10},             // invalid group
		{Group: g, GenericRate: -1, Dispatcher: toOnly{}, Horizon: 10},                                    // negative rate
		{Group: g, GenericRate: 1, Horizon: 10},                                                           // missing dispatcher
		{Group: g, GenericRate: 1, Dispatcher: toOnly{}, Horizon: 0},                                      // zero horizon
		{Group: g, GenericRate: 1, Dispatcher: toOnly{}, Horizon: 10, Warmup: 10},                         // warmup = horizon
		{Group: g, GenericRate: 1, Dispatcher: toOnly{}, Horizon: 10, Warmup: -1},                         // negative warmup
		{Group: g, GenericRate: 1, Dispatcher: toOnly{}, Horizon: 10, Discipline: queueing.Discipline(9)}, // bad discipline
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Group: singleStation(2, 1, 0.4), Discipline: queueing.FCFS,
		GenericRate: 0.8, Dispatcher: toOnly{}, Horizon: 2000, Warmup: 200, Seed: 5,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.GenericResponse.Mean() != b.GenericResponse.Mean() ||
		a.CompletedGeneric != b.CompletedGeneric {
		t.Fatal("same seed should reproduce identical results")
	}
	c := cfg
	c.Seed = 6
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.GenericResponse.Mean() == a.GenericResponse.Mean() {
		t.Fatal("different seeds should differ")
	}
}

func TestRunInvalidDispatcherIndex(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), GenericRate: 0.5,
		Dispatcher: invalid{}, Horizon: 100, Seed: 1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid dispatcher target should error")
	}
}

func TestMM1AgainstTheory(t *testing.T) {
	// Single blade, no specials: T = x̄/(1−ρ) = 1/(1−0.6) = 2.5.
	cfg := Config{
		Group: singleStation(1, 1, 0), Discipline: queueing.FCFS,
		GenericRate: 0.6, Dispatcher: toOnly{}, Horizon: 200000, Warmup: 2000, Seed: 17,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.GenericResponse.Mean()
	if math.Abs(got-2.5) > 0.08 {
		t.Fatalf("simulated T = %.4f, theory 2.5", got)
	}
	if math.Abs(res.Utilizations[0]-0.6) > 0.02 {
		t.Fatalf("measured ρ = %.4f, want 0.6", res.Utilizations[0])
	}
}

func TestMMmAgainstTheory(t *testing.T) {
	// m=4 blades at speed 1.3, λ=3.8: ρ = 3.8/(4·1.3) ≈ 0.7308.
	m, speed, lambda := 4, 1.3, 3.8
	cfg := Config{
		Group: singleStation(m, speed, 0), Discipline: queueing.FCFS,
		GenericRate: lambda, Dispatcher: toOnly{}, Horizon: 100000, Warmup: 2000, Seed: 23,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / (float64(m) * speed)
	want := queueing.ResponseTime(m, rho, 1/speed)
	got := res.GenericResponse.Mean()
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("simulated T = %.4f, theory %.4f", got, want)
	}
}

func TestMixedFCFSAgainstTheory(t *testing.T) {
	// Generic + special merged FCFS stream: both classes see the same
	// M/M/m response time at total ρ (§3 of the paper).
	m, speed := 3, 1.0
	genRate, speRate := 1.2, 0.9
	cfg := Config{
		Group: singleStation(m, speed, speRate), Discipline: queueing.FCFS,
		GenericRate: genRate, Dispatcher: toOnly{}, Horizon: 100000, Warmup: 2000, Seed: 31,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rho := (genRate + speRate) / (float64(m) * speed)
	want := queueing.ResponseTime(m, rho, 1/speed)
	if got := res.GenericResponse.Mean(); math.Abs(got-want)/want > 0.04 {
		t.Fatalf("generic T = %.4f, theory %.4f", got, want)
	}
	if got := res.SpecialResponse.Mean(); math.Abs(got-want)/want > 0.04 {
		t.Fatalf("special T = %.4f, theory %.4f (FCFS treats classes identically)", got, want)
	}
}

func TestPriorityAgainstTheorem2(t *testing.T) {
	// Non-preemptive priority: generic T′ gains the 1/(1−ρ″) factor
	// (Theorem 2); special waiting time is W″ = P_q x̄/(m(1−ρ″)).
	m, speed := 2, 1.0
	genRate, speRate := 0.7, 0.6
	cfg := Config{
		Group: singleStation(m, speed, speRate), Discipline: queueing.Priority,
		GenericRate: genRate, Dispatcher: toOnly{}, Horizon: 300000, Warmup: 3000, Seed: 41,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	xbar := 1 / speed
	rho := (genRate + speRate) * xbar / float64(m)
	rhoS := speRate * xbar / float64(m)
	wantGen := queueing.GenericResponseTime(queueing.Priority, m, rho, rhoS, xbar)
	gotGen := res.GenericResponse.Mean()
	if math.Abs(gotGen-wantGen)/wantGen > 0.04 {
		t.Fatalf("generic T′ = %.4f, Theorem 2 gives %.4f", gotGen, wantGen)
	}
	wantSpe := xbar + queueing.SpecialWaitTime(m, rho, rhoS, xbar)
	gotSpe := res.SpecialResponse.Mean()
	if math.Abs(gotSpe-wantSpe)/wantSpe > 0.04 {
		t.Fatalf("special T = %.4f, theory %.4f", gotSpe, wantSpe)
	}
	// Priority must actually help specials relative to generics.
	if gotSpe >= gotGen {
		t.Fatalf("specials (%.4f) should beat generics (%.4f) under priority", gotSpe, gotGen)
	}
}

func TestConservationCounts(t *testing.T) {
	cfg := Config{
		Group: singleStation(2, 1, 0.5), Discipline: queueing.FCFS,
		GenericRate: 0.9, Dispatcher: toOnly{}, Horizon: 5000, Warmup: 0, Seed: 3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Completions cannot exceed arrivals; the gap is bounded by what
	// the station can hold plus what's still in flight (loose check:
	// non-negative and small relative to throughput).
	if res.CompletedGeneric > res.ArrivedGeneric {
		t.Fatalf("completed %d > arrived %d", res.CompletedGeneric, res.ArrivedGeneric)
	}
	if res.CompletedSpecial > res.ArrivedSpecial {
		t.Fatalf("completed %d > arrived %d (special)", res.CompletedSpecial, res.ArrivedSpecial)
	}
	inFlight := res.ArrivedGeneric - res.CompletedGeneric
	if inFlight > res.ArrivedGeneric/10+100 {
		t.Fatalf("suspiciously many generic tasks unfinished: %d of %d", inFlight, res.ArrivedGeneric)
	}
	if res.Clock != cfg.Horizon {
		t.Fatalf("clock = %g", res.Clock)
	}
}

func TestArrivalRateMatchesConfig(t *testing.T) {
	cfg := Config{
		Group: singleStation(4, 2, 1.5), Discipline: queueing.FCFS,
		GenericRate: 2.0, Dispatcher: toOnly{}, Horizon: 50000, Warmup: 0, Seed: 77,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genRate := float64(res.ArrivedGeneric) / cfg.Horizon
	if math.Abs(genRate-2.0)/2.0 > 0.02 {
		t.Fatalf("observed generic rate %.4f, want 2.0", genRate)
	}
	speRate := float64(res.ArrivedSpecial) / cfg.Horizon
	if math.Abs(speRate-1.5)/1.5 > 0.02 {
		t.Fatalf("observed special rate %.4f, want 1.5", speRate)
	}
}

func TestSpecialOnlyRun(t *testing.T) {
	// GenericRate = 0 is allowed: a pure preload simulation.
	cfg := Config{
		Group: singleStation(2, 1, 0.8), Discipline: queueing.FCFS,
		Horizon: 20000, Warmup: 500, Seed: 9,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrivedGeneric != 0 || res.CompletedGeneric != 0 {
		t.Fatal("no generic tasks expected")
	}
	if res.SpecialResponse.Count() == 0 {
		t.Fatal("special tasks should have completed")
	}
	// ρ = 0.8/2 = 0.4.
	if math.Abs(res.Utilizations[0]-0.4) > 0.02 {
		t.Fatalf("ρ = %.4f, want 0.4", res.Utilizations[0])
	}
}

func TestP95Reported(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), Discipline: queueing.FCFS,
		GenericRate: 0.5, Dispatcher: toOnly{}, Horizon: 50000, Warmup: 1000, Seed: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// M/M/1 sojourn is Exp(μ(1−ρ)) with mean 2: P95 = −2·ln(0.05) ≈ 5.99.
	want := -2 * math.Log(0.05)
	if math.Abs(res.GenericP95-want)/want > 0.08 {
		t.Fatalf("P95 = %.4f, want %.4f", res.GenericP95, want)
	}
	if res.GenericP95 <= res.GenericResponse.Mean() {
		t.Fatal("P95 should exceed the mean for a right-skewed distribution")
	}
}

func TestRunReplications(t *testing.T) {
	cfg := Config{
		Group: singleStation(2, 1, 0.4), Discipline: queueing.FCFS,
		GenericRate: 1.0, Dispatcher: toOnly{}, Horizon: 20000, Warmup: 500, Seed: 100,
	}
	rep, err := RunReplications(cfg, 8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 8 || len(rep.Runs) != 8 {
		t.Fatalf("replications = %d, runs = %d", rep.Replications, len(rep.Runs))
	}
	// Theory: ρ = 1.4/2 = 0.7.
	rho := 0.7
	want := queueing.ResponseTime(2, rho, 1)
	if !rep.GenericT.Contains(want) && math.Abs(rep.GenericT.Mean-want)/want > 0.03 {
		t.Fatalf("replicated T = %v, theory %.4f", rep.GenericT, want)
	}
	if rep.GenericT.HalfWidth <= 0 {
		t.Fatal("CI half width should be positive")
	}
	if math.Abs(rep.Utilizations[0]-rho) > 0.02 {
		t.Fatalf("mean utilization %.4f, want %.2f", rep.Utilizations[0], rho)
	}
	// Every replication here runs long enough to complete tasks of both
	// classes, so the contributed counts must equal the run count.
	if rep.GenericRuns != 8 || rep.SpecialRuns != 8 {
		t.Fatalf("contributed runs = %d/%d, want 8/8", rep.GenericRuns, rep.SpecialRuns)
	}
}

// TestRunReplicationsContributedCounts pins the audit fix: a scenario
// where a class produces no completions must report zero contributing
// replications for it instead of claiming all of them — previously
// Replications said reps while the aggregate Welford had seen fewer
// (or no) samples, overstating the intervals' sample size.
func TestRunReplicationsContributedCounts(t *testing.T) {
	// Special-only: the generic stream is disabled, so no replication
	// can contribute a generic completion.
	cfg := Config{
		Group: singleStation(2, 1, 0.4), Discipline: queueing.FCFS,
		GenericRate: 0, Horizon: 2000, Warmup: 100, Seed: 9,
	}
	rep, err := RunReplications(cfg, 4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 4 {
		t.Fatalf("replications = %d, want 4", rep.Replications)
	}
	if rep.GenericRuns != 0 {
		t.Fatalf("GenericRuns = %d, want 0 (no generic stream)", rep.GenericRuns)
	}
	if rep.SpecialRuns != 4 {
		t.Fatalf("SpecialRuns = %d, want 4", rep.SpecialRuns)
	}
	if n := rep.GenericT.N; n != 0 {
		t.Fatalf("generic interval claims n=%d samples", n)
	}
	// Symmetric case: no special preload, generic stream on.
	cfg2 := Config{
		Group: singleStation(2, 1, 0), Discipline: queueing.FCFS,
		GenericRate: 0.8, Dispatcher: toOnly{}, Horizon: 2000, Warmup: 100, Seed: 10,
	}
	rep2, err := RunReplications(cfg2, 3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.GenericRuns != 3 || rep2.SpecialRuns != 0 {
		t.Fatalf("contributed runs = %d/%d, want 3/0", rep2.GenericRuns, rep2.SpecialRuns)
	}
}

func TestRunReplicationsValidation(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), GenericRate: 0.5,
		Dispatcher: toOnly{}, Horizon: 10,
	}
	if _, err := RunReplications(cfg, 0, 0.95); err == nil {
		t.Error("0 replications should fail")
	}
	bad := cfg
	bad.Horizon = 0
	if _, err := RunReplications(bad, 2, 0.95); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := RunReplications(cfg, 2, 0); err == nil {
		t.Error("invalid confidence should fail")
	}
}

func TestRunReplicationsDeterministicAcrossSchedules(t *testing.T) {
	cfg := Config{
		Group: singleStation(2, 1, 0.3), Discipline: queueing.Priority,
		GenericRate: 0.8, Dispatcher: toOnly{}, Horizon: 5000, Warmup: 100, Seed: 55,
	}
	a, err := RunReplications(cfg, 6, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplications(cfg, 6, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a.GenericT.Mean != b.GenericT.Mean || a.GenericT.HalfWidth != b.GenericT.HalfWidth {
		t.Fatal("replicated results should be deterministic")
	}
}

func TestFifoQueue(t *testing.T) {
	var q fifo
	if _, ok := q.pop(); ok {
		t.Fatal("empty pop should fail")
	}
	for i := 0; i < 300; i++ {
		q.push(task{arrival: float64(i)})
	}
	if q.len() != 300 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < 300; i++ {
		tk, ok := q.pop()
		if !ok || tk.arrival != float64(i) {
			t.Fatalf("pop %d: ok=%v arrival=%g", i, ok, tk.arrival)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after drain", q.len())
	}
	// Interleaved push/pop exercises compaction.
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.push(task{arrival: float64(round*10 + i)})
		}
		for i := 0; i < 9; i++ {
			q.pop()
		}
	}
	if q.len() != 50 {
		t.Fatalf("len = %d after interleaving, want 50", q.len())
	}
}

func TestClassString(t *testing.T) {
	if Generic.String() != "generic" || Special.String() != "special" {
		t.Fatal("class names")
	}
}
