package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/queueing"
)

// checkMoments samples a distribution and verifies mean and SCV.
func checkMoments(t *testing.T, d ServiceDistribution, mean float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var w metrics.Welford
	for i := 0; i < 400000; i++ {
		x := d.Sample(rng, mean)
		if x < 0 {
			t.Fatalf("%s: negative sample %g", d.Name(), x)
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-mean)/mean > 0.01 {
		t.Errorf("%s: sample mean %.4f, want %.4f", d.Name(), w.Mean(), mean)
	}
	scv := w.Variance() / (w.Mean() * w.Mean())
	want := d.SCV()
	tol := 0.02 + 0.05*want
	if math.Abs(scv-want) > tol {
		t.Errorf("%s: sample SCV %.4f, want %.4f", d.Name(), scv, want)
	}
}

func TestDistributionMoments(t *testing.T) {
	h4, err := NewHyperExp(4)
	if err != nil {
		t.Fatal(err)
	}
	h16, err := NewHyperExp(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []ServiceDistribution{
		Exponential{}, Deterministic{}, ErlangK{K: 2}, ErlangK{K: 8}, h4, h16,
	} {
		checkMoments(t, d, 1.0)
		checkMoments(t, d, 2.5)
	}
}

func TestDistributionNames(t *testing.T) {
	h, _ := NewHyperExp(4)
	for _, d := range []ServiceDistribution{Exponential{}, Deterministic{}, ErlangK{K: 3}, h} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
	if (ErlangK{K: 3}).SCV() != 1.0/3 {
		t.Error("Erlang-3 SCV")
	}
}

func TestNewHyperExpValidation(t *testing.T) {
	for _, bad := range []float64{1, 0.5, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewHyperExp(bad); err == nil {
			t.Errorf("SCV %g should fail", bad)
		}
	}
}

func TestErlangValidationInConfig(t *testing.T) {
	cfg := Config{
		Group: singleStation(1, 1, 0), GenericRate: 0.5, Dispatcher: toOnly{},
		Horizon: 10, Service: ErlangK{K: 0},
	}
	if err := cfg.validate(); err == nil {
		t.Fatal("Erlang K=0 should fail validation")
	}
}

func TestMD1AgainstPollaczekKhinchine(t *testing.T) {
	// M/D/1: the Allen–Cunneen form is exact (P-K with SCV 0).
	rho := 0.7
	cfg := Config{
		Group: singleStation(1, 1, 0), Discipline: queueing.FCFS,
		GenericRate: rho, Dispatcher: toOnly{}, Horizon: 300000, Warmup: 3000,
		Seed: 5, Service: Deterministic{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWait, err := queueing.MGmWait(1, rho, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + wantWait
	got := res.GenericResponse.Mean()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("M/D/1 T = %.4f, P-K gives %.4f", got, want)
	}
}

func TestMDmAgainstAllenCunneen(t *testing.T) {
	// M/D/4: Allen–Cunneen is approximate; simulation should land
	// within a few percent and clearly below the exponential value.
	m, rho := 4, 0.8
	cfg := Config{
		Group: singleStation(m, 1, 0), Discipline: queueing.FCFS,
		GenericRate: rho * float64(m), Dispatcher: toOnly{},
		Horizon: 200000, Warmup: 2000, Seed: 7, Service: Deterministic{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	approxWait, err := queueing.MGmWait(m, rho, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := res.GenericResponse.Mean()
	want := 1 + approxWait
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/D/4 T = %.4f, Allen–Cunneen gives %.4f", got, want)
	}
	expT := queueing.ResponseTime(m, rho, 1)
	if got >= expT {
		t.Fatalf("deterministic service (%.4f) should beat exponential (%.4f)", got, expT)
	}
}

func TestHyperExpIncreasesWait(t *testing.T) {
	// Bursty service (SCV 4) should wait roughly (1+4)/2 = 2.5× the
	// exponential wait; verify direction and rough magnitude.
	m, rho := 2, 0.7
	h, err := NewHyperExp(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Group: singleStation(m, 1, 0), Discipline: queueing.FCFS,
		GenericRate: rho * float64(m), Dispatcher: toOnly{},
		Horizon: 400000, Warmup: 4000, Seed: 11, Service: h,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotWait := res.GenericResponse.Mean() - 1
	expWait := queueing.WaitTime(m, rho, 1)
	ratio := gotWait / expWait
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("hyperexp wait ratio %.2f, expected near 2.5", ratio)
	}
	approxWait, err := queueing.MGmWait(m, rho, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotWait-approxWait)/approxWait > 0.25 {
		t.Fatalf("hyperexp wait %.4f vs Allen–Cunneen %.4f", gotWait, approxWait)
	}
}

func TestErlangServiceBetweenDetAndExp(t *testing.T) {
	m, rho := 2, 0.75
	run := func(d ServiceDistribution) float64 {
		res, err := Run(Config{
			Group: singleStation(m, 1, 0), Discipline: queueing.FCFS,
			GenericRate: rho * float64(m), Dispatcher: toOnly{},
			Horizon: 150000, Warmup: 2000, Seed: 13, Service: d,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GenericResponse.Mean()
	}
	det := run(Deterministic{})
	erl := run(ErlangK{K: 4})
	exp := run(Exponential{})
	if !(det < erl && erl < exp) {
		t.Fatalf("expected det < erlang4 < exp, got %.4f, %.4f, %.4f", det, erl, exp)
	}
}

func TestOptimalAllocationRobustToServiceDistribution(t *testing.T) {
	// The optimizer assumes exponential service; with deterministic
	// service the realized T′ should only improve (less variance).
	if testing.Short() {
		t.Skip("simulation")
	}
	g := singleStation(3, 1.2, 1.0)
	genRate := 0.5 * g.MaxGenericRate()
	base := Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: genRate,
		Dispatcher: toOnly{}, Horizon: 100000, Warmup: 2000, Seed: 17,
	}
	expRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	det := base
	det.Service = Deterministic{}
	detRes, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if detRes.GenericResponse.Mean() >= expRes.GenericResponse.Mean() {
		t.Fatalf("deterministic workload should not be slower: %.4f vs %.4f",
			detRes.GenericResponse.Mean(), expRes.GenericResponse.Mean())
	}
}
