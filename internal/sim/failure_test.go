package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/model"
	"repro/internal/queueing"
)

// twoStations is a small symmetric system for failure tests.
func twoStations(t *testing.T) *model.Group {
	t.Helper()
	g := &model.Group{
		Servers:  []model.Server{{Size: 2, Speed: 1}, {Size: 2, Speed: 1}},
		TaskSize: 1,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// uniformDispatcher splits arrivals 50/50, health-oblivious.
type uniformDispatcher struct{}

func (uniformDispatcher) Name() string { return "uniform" }
func (uniformDispatcher) Pick(views []StationView, rng *rand.Rand) int {
	return rng.Intn(len(views))
}

// healthyUniform routes only to up stations.
type healthyUniform struct{}

func (healthyUniform) Name() string { return "healthy-uniform" }
func (healthyUniform) Pick(views []StationView, rng *rand.Rand) int {
	up := make([]int, 0, len(views))
	for i, v := range views {
		if v.Up {
			up = append(up, i)
		}
	}
	if len(up) == 0 {
		return rng.Intn(len(views))
	}
	return up[rng.Intn(len(up))]
}

func TestFailureDowntimeAccounting(t *testing.T) {
	g := twoStations(t)
	// Station 1 fully down over [100, 300): exactly 200 units.
	scheds := []failure.Schedule{
		nil,
		{{Time: 100, Down: 2}, {Time: 300, Down: 0}},
	}
	res, err := Run(Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1,
		Dispatcher: uniformDispatcher{}, Horizon: 1000, Seed: 7,
		FailureSchedules: scheds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Downtime == nil || res.Availability == nil {
		t.Fatal("downtime/availability not populated with failure schedules")
	}
	if math.Abs(res.Downtime[0]) > 1e-12 {
		t.Errorf("station 1 downtime = %g, want 0", res.Downtime[0])
	}
	if math.Abs(res.Downtime[1]-200) > 1e-9 {
		t.Errorf("station 2 downtime = %g, want 200", res.Downtime[1])
	}
	if math.Abs(res.Availability[1]-0.8) > 1e-9 {
		t.Errorf("station 2 availability = %g, want 0.8", res.Availability[1])
	}
	// Degraded/healthy split must cover all completed generics.
	if res.GenericDegraded.Count() == 0 {
		t.Error("no degraded-period completions recorded")
	}
	total := res.GenericDegraded.Count() + res.GenericHealthy.Count()
	if total != res.GenericResponse.Count() {
		t.Errorf("degraded %d + healthy %d ≠ total %d",
			res.GenericDegraded.Count(), res.GenericHealthy.Count(), res.GenericResponse.Count())
	}
	// Tasks routed to the down station wait for repair: degraded-period
	// arrivals must be slower on average than healthy-period ones.
	if res.GenericDegraded.Mean() <= res.GenericHealthy.Mean() {
		t.Errorf("degraded mean %g not worse than healthy mean %g",
			res.GenericDegraded.Mean(), res.GenericHealthy.Mean())
	}
}

func TestFailureRequeueVsDrop(t *testing.T) {
	g := twoStations(t)
	scheds := []failure.Schedule{
		{{Time: 200, Down: 2}, {Time: 220, Down: 0}, {Time: 500, Down: 1}, {Time: 520, Down: 0}},
		nil,
	}
	base := Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1.5,
		Dispatcher: uniformDispatcher{}, Horizon: 1000, Seed: 3,
		FailureSchedules: scheds,
	}

	requeue, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if requeue.RequeuedGeneric == 0 {
		t.Error("expected in-flight generic requeues under RequeueInFlight")
	}
	if requeue.LostGeneric != 0 || requeue.LostSpecial != 0 {
		t.Errorf("requeue policy lost tasks: %d generic, %d special",
			requeue.LostGeneric, requeue.LostSpecial)
	}

	drop := base
	drop.FailurePolicy = DropInFlight
	dropped, err := Run(drop)
	if err != nil {
		t.Fatal(err)
	}
	if dropped.RequeuedGeneric != 0 {
		t.Error("drop policy should not requeue")
	}
	if dropped.LostGeneric == 0 {
		t.Error("expected in-flight generic losses under DropInFlight")
	}
	if f := dropped.CompletedGenericFraction(); f >= 1 {
		t.Errorf("completed fraction %g should reflect losses", f)
	}
}

func TestFailureRetryReroutesAroundOutage(t *testing.T) {
	g := twoStations(t)
	scheds := []failure.Schedule{
		nil,
		{{Time: 100, Down: 2}, {Time: 600, Down: 0}},
	}
	base := Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1,
		Dispatcher: uniformDispatcher{}, Horizon: 1000, Warmup: 50, Seed: 11,
		FailureSchedules: scheds,
	}
	noRetry, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withRetry := base
	withRetry.Retry = &RetryPolicy{MaxAttempts: 6, Base: 0.5, Cap: 8}
	retried, err := Run(withRetry)
	if err != nil {
		t.Fatal(err)
	}
	if retried.RetriedGeneric == 0 {
		t.Fatal("expected retries against the down station")
	}
	// Bouncing clients end up on the healthy station instead of
	// waiting out the 500-unit outage in the dead station's queue, so
	// the mean response time must improve substantially.
	if retried.GenericResponse.Mean() >= noRetry.GenericResponse.Mean() {
		t.Errorf("retry mean %g not better than hang-in-queue mean %g",
			retried.GenericResponse.Mean(), noRetry.GenericResponse.Mean())
	}
	// A 50/50 coin against a down station survives 6 retries often
	// enough that some tasks are lost — but far fewer than the number
	// of retried dispatches.
	if retried.LostGeneric == 0 {
		t.Error("expected some tasks to exhaust retries")
	}
	if retried.LostGeneric >= retried.RetriedGeneric {
		t.Errorf("lost %d ≥ retried %d", retried.LostGeneric, retried.RetriedGeneric)
	}
}

func TestFailurePartialBladeLossKeepsServing(t *testing.T) {
	g := twoStations(t)
	// Station 1 loses one of two blades over [100, 900): it keeps
	// serving at half capacity, so nothing is fully down.
	scheds := []failure.Schedule{
		{{Time: 100, Down: 1}, {Time: 900, Down: 0}},
		nil,
	}
	res, err := Run(Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1,
		Dispatcher: uniformDispatcher{}, Horizon: 1000, Seed: 5,
		FailureSchedules: scheds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Downtime[0] != 0 {
		t.Errorf("partial loss counted as full downtime: %g", res.Downtime[0])
	}
	if res.GenericDegraded.Count() != 0 {
		t.Error("no station was fully down; degraded accumulator should be empty")
	}
	if res.CompletedGeneric == 0 {
		t.Error("station with one blade left should still complete tasks")
	}
}

func TestFailurePlanGeneratesSeededOutages(t *testing.T) {
	g := twoStations(t)
	plan := &failure.Plan{Stations: []failure.Params{
		{MTBF: 100, MTTR: 25},
		{MTBF: 100, MTTR: 25},
	}}
	cfg := Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1,
		Dispatcher: healthyUniform{}, Horizon: 4000, Seed: 2,
		Failures: plan,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Downtime[0] != b.Downtime[0] || a.Downtime[1] != b.Downtime[1] {
		t.Error("seeded failure runs are not reproducible")
	}
	for i, d := range a.Downtime {
		if d <= 0 {
			t.Errorf("station %d saw no downtime over 40 MTBFs", i+1)
		}
		// Loose sanity band around the analytic 20% unavailability.
		if got := 1 - a.Availability[i]; got < 0.05 || got > 0.5 {
			t.Errorf("station %d unavailability %g wildly off MTTR/(MTBF+MTTR)=0.2", i+1, got)
		}
	}
}

func TestFailureConfigValidation(t *testing.T) {
	g := twoStations(t)
	base := Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1,
		Dispatcher: uniformDispatcher{}, Horizon: 100, Seed: 1,
	}

	bad := base
	bad.FailureSchedules = []failure.Schedule{nil} // wrong length
	if _, err := Run(bad); err == nil {
		t.Error("schedule length mismatch should fail")
	}

	bad = base
	bad.FailureSchedules = []failure.Schedule{{{Time: 5, Down: 1}, {Time: 4, Down: 0}}, nil}
	if _, err := Run(bad); err == nil {
		t.Error("unordered schedule should fail")
	}

	bad = base
	bad.Failures = &failure.Plan{Stations: []failure.Params{{MTBF: -1, MTTR: 1}, {}}}
	if _, err := Run(bad); err == nil {
		t.Error("invalid plan should fail")
	}

	bad = base
	bad.Failures = &failure.Plan{Stations: []failure.Params{{MTBF: 10, MTTR: 1}}} // wrong length
	if _, err := Run(bad); err == nil {
		t.Error("plan length mismatch should fail")
	}

	bad = base
	bad.FailurePolicy = FailurePolicy(99)
	if _, err := Run(bad); err == nil {
		t.Error("unknown failure policy should fail")
	}

	bad = base
	bad.Retry = &RetryPolicy{MaxAttempts: 0, Base: 1}
	if _, err := Run(bad); err == nil {
		t.Error("invalid retry policy should fail")
	}
	bad.Retry = &RetryPolicy{MaxAttempts: 3, Base: -1}
	if _, err := Run(bad); err == nil {
		t.Error("negative retry base should fail")
	}
}

// TestNoFailuresMatchesBaseline guards the refactor: without failure
// injection the engine must produce byte-identical statistics to the
// pre-failure behaviour (same RNG draws, same event order).
func TestNoFailuresMatchesBaseline(t *testing.T) {
	g := twoStations(t)
	cfg := Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: 1.2,
		Dispatcher: uniformDispatcher{}, Horizon: 2000, Warmup: 100, Seed: 42,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Downtime != nil || a.Availability != nil {
		t.Error("downtime populated without failures")
	}
	if a.GenericDegraded.Count() != 0 {
		t.Error("degraded observations without failures")
	}
	if a.RequeuedGeneric != 0 || a.LostGeneric != 0 || a.RetriedGeneric != 0 {
		t.Error("failure counters non-zero without failures")
	}
	if a.GenericHealthy.Count() != a.GenericResponse.Count() {
		t.Error("healthy split should cover everything without failures")
	}
	// An all-disabled plan must behave exactly like no plan at all.
	withPlan := cfg
	withPlan.Failures = &failure.Plan{Stations: make([]failure.Params, g.N())}
	b, err := Run(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	if a.GenericResponse.Mean() != b.GenericResponse.Mean() ||
		a.CompletedGeneric != b.CompletedGeneric ||
		a.GenericP95 != b.GenericP95 {
		t.Error("disabled failure plan perturbed the simulation")
	}
}

func TestRetryDelayCapped(t *testing.T) {
	r := RetryPolicy{MaxAttempts: 10, Base: 1, Cap: 4}
	want := []float64{1, 2, 4, 4, 4}
	for k, w := range want {
		if got := r.delay(k); got != w {
			t.Errorf("delay(%d) = %g, want %g", k, got, w)
		}
	}
	u := RetryPolicy{MaxAttempts: 3, Base: 0.5}
	if got := u.delay(4); got != 8 {
		t.Errorf("uncapped delay(4) = %g, want 8", got)
	}
}
