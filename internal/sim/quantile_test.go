package sim

import (
	"math"
	"testing"

	"repro/internal/queueing"
)

// TestP95MatchesAnalyticQuantile validates the simulator's streaming
// P95 against the exact M/M/m sojourn-time quantile for several
// station shapes — the distributional counterpart of the mean-value
// checks.
func TestP95MatchesAnalyticQuantile(t *testing.T) {
	cases := []struct {
		m     int
		speed float64
		rho   float64
	}{
		{1, 1.0, 0.5},
		{2, 1.3, 0.7},
		{6, 0.9, 0.8},
	}
	for _, c := range cases {
		lambda := c.rho * float64(c.m) * c.speed
		cfg := Config{
			Group: singleStation(c.m, c.speed, 0), Discipline: queueing.FCFS,
			GenericRate: lambda, Dispatcher: toOnly{},
			Horizon: 150000, Warmup: 2000, Seed: 61,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := queueing.ResponseTimeQuantile(c.m, c.rho, 1/c.speed, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.GenericP95-want) / want; rel > 0.05 {
			t.Errorf("m=%d ρ=%g: simulated P95 %.4f vs analytic %.4f (rel %.3f)",
				c.m, c.rho, res.GenericP95, want, rel)
		}
	}
}
