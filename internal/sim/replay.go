package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/trace"
)

// ReplayConfig drives a simulation from a recorded trace instead of
// live random streams: the arrival times and execution requirements
// are taken verbatim from the trace, so two replays of the same trace
// with the same dispatcher seed are identical even across policies'
// randomness needs.
type ReplayConfig struct {
	// Group is the blade-server system (must have at least as many
	// servers as the trace references).
	Group *model.Group
	// Discipline selects FCFS or priority scheduling.
	Discipline queueing.Discipline
	// Trace supplies arrivals. Generic arrivals (Station = -1) are
	// routed by Dispatcher; special arrivals go to their station.
	Trace *trace.Trace
	// Dispatcher routes generic arrivals. Required if the trace
	// contains any.
	Dispatcher Dispatcher
	// Warmup drops observations from tasks arriving before this time.
	Warmup float64
	// Seed feeds the dispatcher's randomness only.
	Seed int64
}

// Replay runs the trace through the system and returns the same
// statistics as Run. The horizon is the trace's horizon; tasks still
// in the system at the end are not recorded.
func Replay(cfg ReplayConfig) (*RunResult, error) {
	if cfg.Group == nil {
		return nil, fmt.Errorf("sim: nil group")
	}
	if err := cfg.Group.Validate(); err != nil {
		return nil, err
	}
	if cfg.Trace == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Discipline.Valid() {
		return nil, fmt.Errorf("sim: unknown discipline %d", int(cfg.Discipline))
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Trace.Horizon {
		return nil, fmt.Errorf("sim: warmup %g must be in [0, trace horizon %g)", cfg.Warmup, cfg.Trace.Horizon)
	}
	n := cfg.Group.N()
	for _, a := range cfg.Trace.Arrivals {
		if a.Station >= n {
			return nil, fmt.Errorf("sim: trace references station %d but group has %d", a.Station, n)
		}
		if a.IsGeneric() && cfg.Dispatcher == nil {
			return nil, fmt.Errorf("sim: trace has generic arrivals but no dispatcher given")
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	cal := newCalendar()
	g := cfg.Group
	stations := make([]*station, n)
	for i, s := range g.Servers {
		stations[i] = &station{index: i, blades: s.Size, speed: s.Speed, discipline: cfg.Discipline}
	}
	res := &RunResult{
		PerStationGeneric: make([]metrics.Welford, n),
		Utilizations:      make([]float64, n),
	}
	p95, err := metrics.NewP2Quantile(0.95)
	if err != nil {
		return nil, err
	}
	views := make([]StationView, n)

	next := 0 // index into trace arrivals
	arrivals := cfg.Trace.Arrivals
	for next < len(arrivals) || !cal.empty() {
		// Process the earlier of next departure vs next arrival; on
		// ties the departure goes first so a freed blade can take the
		// arriving task, matching the live engine's heap order.
		if depTime, ok := cal.peekTime(); ok &&
			(next >= len(arrivals) || depTime <= arrivals[next].Time) {
			if depTime > cfg.Trace.Horizon {
				break
			}
			dep, _ := cal.next()
			handleDeparture(dep, stations, cal, res, p95, cfg.Warmup)
			continue
		}

		a := arrivals[next]
		next++
		now := a.Time
		t := task{arrival: now, req: a.Requirement}
		target := a.Station
		if a.IsGeneric() {
			t.class = Generic
			for i, st := range stations {
				views[i] = StationView{
					Index: i, Blades: st.blades, Speed: st.speed,
					ServiceMean: g.TaskSize / st.speed,
					Busy:        st.busy, QueueLen: st.queueLen(),
					AvailableBlades: st.available(), Up: true,
				}
			}
			target = cfg.Dispatcher.Pick(views, rng)
			if target < 0 || target >= n {
				return nil, fmt.Errorf("sim: dispatcher %q picked invalid station %d", cfg.Dispatcher.Name(), target)
			}
			if now >= cfg.Warmup {
				res.ArrivedGeneric++
			}
		} else {
			t.class = Special
			if now >= cfg.Warmup {
				res.ArrivedSpecial++
			}
		}
		stations[target].admit(t, now, cal)
	}
	for i, st := range stations {
		res.Utilizations[i] = st.utilization(cfg.Trace.Horizon)
	}
	res.GenericP95 = p95.Value()
	res.Clock = cfg.Trace.Horizon
	return res, nil
}

// handleDeparture processes one departure event and records statistics
// for post-warmup tasks that finish within the horizon.
func handleDeparture(ev event, stations []*station, cal *calendar, res *RunResult, p95 *metrics.P2Quantile, warmup float64) {
	st := stations[ev.station]
	if !st.depart(ev.time, cal, ev.id) {
		return // stale event (only possible with failure injection)
	}
	if ev.task.arrival >= warmup {
		resp := ev.time - ev.task.arrival
		if ev.task.class == Generic {
			res.GenericResponse.Add(resp)
			res.PerStationGeneric[ev.station].Add(resp)
			p95.Add(resp)
			res.CompletedGeneric++
		} else {
			res.SpecialResponse.Add(resp)
			res.CompletedSpecial++
		}
	}
}
