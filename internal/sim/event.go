package sim

// Class distinguishes the two task populations of the model.
type Class int

const (
	// Generic tasks arrive in one stream and may run on any server.
	Generic Class = iota
	// Special tasks are dedicated to one server.
	Special
)

// String returns the class name.
func (c Class) String() string {
	if c == Special {
		return "special"
	}
	return "generic"
}

// task is one unit of work flowing through the simulation.
type task struct {
	class    Class
	arrival  float64 // absolute arrival time
	req      float64 // execution requirement (instructions)
	degraded bool    // arrived while some station was fully down
}

// eventKind discriminates scheduler events.
type eventKind int

const (
	evGenericArrival eventKind = iota // next generic-stream arrival
	evSpecialArrival                  // next special-stream arrival at .station
	evDeparture                       // task completes on a blade of .station
	evFailure                         // failure-schedule transition at .station
	evRetry                           // backoff retry of a blocked generic task
)

// event is a scheduled occurrence. Departure events carry the finishing
// task so its response time can be recorded, plus the service id that
// lets a blade failure invalidate them; failure events carry the new
// down-blade count; retry events carry the task and its attempt count.
type event struct {
	time    float64
	kind    eventKind
	station int
	task    task
	id      uint64 // service id (departures), see station.active
	down    int    // new down-blade count (failures)
	attempt int    // retries already performed (retry events)
	seq     uint64 // FIFO tie-break for equal times
}

// eventHeap is a min-heap on (time, seq), hand-rolled on the concrete
// event type. container/heap's interface{}-based Push and Pop box every
// event on the heap's way in AND out — two allocations per event, which
// at simulator rates (millions of events per run) dominated the entire
// allocation profile. The sift routines below keep events in the
// backing slice, so scheduling is allocation-free once the slice has
// grown to the run's working set. The (time, seq) key is a strict total
// order (seq is unique), so any correct heap pops events in exactly the
// same sequence as the old container/heap code — run results are
// bit-for-bit unchanged.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time { //bladelint:allow floateq -- heap order must be exact and total for replay determinism; tolerance breaks transitivity
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// calendar wraps the heap with sequence numbering.
type calendar struct {
	h   eventHeap
	seq uint64
}

func newCalendar() *calendar {
	return &calendar{h: make(eventHeap, 0, 1024)}
}

func (c *calendar) schedule(e event) {
	e.seq = c.seq
	c.seq++
	c.h = append(c.h, e)
	c.h.up(len(c.h) - 1)
}

func (c *calendar) next() (event, bool) {
	if len(c.h) == 0 {
		return event{}, false
	}
	e := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h = c.h[:last]
	if last > 0 {
		c.h.down(0)
	}
	return e, true
}

func (c *calendar) empty() bool { return len(c.h) == 0 }

// peekTime returns the time of the earliest scheduled event; ok is
// false when the calendar is empty.
func (c *calendar) peekTime() (float64, bool) {
	if len(c.h) == 0 {
		return 0, false
	}
	return c.h[0].time, true
}

// fifo is an allocation-friendly FIFO queue of tasks backed by a
// sliding window over a slice.
type fifo struct {
	buf  []task
	head int
}

func (q *fifo) push(t task) { q.buf = append(q.buf, t) }

func (q *fifo) pop() (task, bool) {
	if q.head >= len(q.buf) {
		return task{}, false
	}
	t := q.buf[q.head]
	q.head++
	// Compact once the dead prefix dominates, amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return t, true
}

func (q *fifo) len() int { return len(q.buf) - q.head }
