package sim

import "container/heap"

// Class distinguishes the two task populations of the model.
type Class int

const (
	// Generic tasks arrive in one stream and may run on any server.
	Generic Class = iota
	// Special tasks are dedicated to one server.
	Special
)

// String returns the class name.
func (c Class) String() string {
	if c == Special {
		return "special"
	}
	return "generic"
}

// task is one unit of work flowing through the simulation.
type task struct {
	class    Class
	arrival  float64 // absolute arrival time
	req      float64 // execution requirement (instructions)
	degraded bool    // arrived while some station was fully down
}

// eventKind discriminates scheduler events.
type eventKind int

const (
	evGenericArrival eventKind = iota // next generic-stream arrival
	evSpecialArrival                  // next special-stream arrival at .station
	evDeparture                       // task completes on a blade of .station
	evFailure                         // failure-schedule transition at .station
	evRetry                           // backoff retry of a blocked generic task
)

// event is a scheduled occurrence. Departure events carry the finishing
// task so its response time can be recorded, plus the service id that
// lets a blade failure invalidate them; failure events carry the new
// down-blade count; retry events carry the task and its attempt count.
type event struct {
	time    float64
	kind    eventKind
	station int
	task    task
	id      uint64 // service id (departures), see station.active
	down    int    // new down-blade count (failures)
	attempt int    // retries already performed (retry events)
	seq     uint64 // FIFO tie-break for equal times
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// calendar wraps the heap with sequence numbering.
type calendar struct {
	h   eventHeap
	seq uint64
}

func newCalendar() *calendar {
	c := &calendar{h: make(eventHeap, 0, 1024)}
	heap.Init(&c.h)
	return c
}

func (c *calendar) schedule(e event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.h, e)
}

func (c *calendar) next() (event, bool) {
	if len(c.h) == 0 {
		return event{}, false
	}
	return heap.Pop(&c.h).(event), true
}

func (c *calendar) empty() bool { return len(c.h) == 0 }

// peekTime returns the time of the earliest scheduled event; ok is
// false when the calendar is empty.
func (c *calendar) peekTime() (float64, bool) {
	if len(c.h) == 0 {
		return 0, false
	}
	return c.h[0].time, true
}

// fifo is an allocation-friendly FIFO queue of tasks backed by a
// sliding window over a slice.
type fifo struct {
	buf  []task
	head int
}

func (q *fifo) push(t task) { q.buf = append(q.buf, t) }

func (q *fifo) pop() (task, bool) {
	if q.head >= len(q.buf) {
		return task{}, false
	}
	t := q.buf[q.head]
	q.head++
	// Compact once the dead prefix dominates, amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return t, true
}

func (q *fifo) len() int { return len(q.buf) - q.head }
