package sim

import "repro/internal/queueing"

// serviceRec tracks one in-service task so that a blade failure can
// cancel its scheduled departure: the departure event carries the same
// id, and an event whose id is no longer in the active set is stale.
type serviceRec struct {
	id     uint64
	task   task
	depart float64 // absolute scheduled completion time
}

// station is the runtime state of one blade server: m blades (some of
// which may be failed), a waiting room (one queue under FCFS, two under
// priority), and busy-time accounting for utilization measurements.
type station struct {
	index      int
	blades     int
	speed      float64
	discipline queueing.Discipline

	down   int          // blades currently failed
	busy   int          // blades currently serving
	active []serviceRec // in-service tasks, for failure cancellation
	nextID uint64

	generics fifo // waiting generic tasks (FCFS uses only this, mixed)
	specials fifo // waiting special tasks (priority discipline only)

	busyIntegral float64 // ∫ busy dt, for measured utilization
	lastChange   float64 // time of last busy-count change

	fullDownTime float64 // accumulated time with zero available blades
	fullSince    float64 // start of the current full outage (if fullDown)
	fullDown     bool
}

// available returns the number of non-failed blades.
func (s *station) available() int {
	if s.down >= s.blades {
		return 0
	}
	return s.blades - s.down
}

// queueLen returns the number of waiting tasks of both classes.
func (s *station) queueLen() int { return s.generics.len() + s.specials.len() }

// accrue advances the busy-time integral to time now.
func (s *station) accrue(now float64) {
	s.busyIntegral += float64(s.busy) * (now - s.lastChange)
	s.lastChange = now
}

// start puts t into service on a free blade and schedules its departure.
func (s *station) start(t task, now float64, cal *calendar) {
	s.accrue(now)
	s.busy++
	s.nextID++
	rec := serviceRec{id: s.nextID, task: t, depart: now + t.req/s.speed}
	s.active = append(s.active, rec)
	cal.schedule(event{time: rec.depart, kind: evDeparture, station: s.index, task: t, id: rec.id})
}

// fill starts waiting tasks while free blades remain (specials first
// under priority; strict arrival order under FCFS, where the two
// classes share the generics queue).
func (s *station) fill(now float64, cal *calendar) {
	for s.busy < s.available() {
		next, ok := s.specials.pop() // empty unless priority discipline
		if !ok {
			next, ok = s.generics.pop()
		}
		if !ok {
			return
		}
		s.start(next, now, cal)
	}
}

// admit handles a task arriving at the station at time now. If a
// non-failed blade is free the task enters service and its departure is
// scheduled; otherwise it joins the waiting room.
func (s *station) admit(t task, now float64, cal *calendar) {
	if s.busy < s.available() {
		s.start(t, now, cal)
		return
	}
	if s.discipline == queueing.Priority && t.class == Special {
		s.specials.push(t)
		return
	}
	s.generics.push(t)
}

// depart handles a service completion at time now. It returns false for
// a stale event — a departure whose task was cancelled by an earlier
// blade failure — in which case no state changes and no statistics
// should be recorded.
func (s *station) depart(now float64, cal *calendar, id uint64) bool {
	i := s.findActive(id)
	if i < 0 {
		return false
	}
	s.active[i] = s.active[len(s.active)-1]
	s.active = s.active[:len(s.active)-1]
	s.accrue(now)
	s.busy--
	s.fill(now, cal)
	return true
}

func (s *station) findActive(id uint64) int {
	for i := range s.active {
		if s.active[i].id == id {
			return i
		}
	}
	return -1
}

// failureOutcome reports what setDown did to in-flight tasks, per class.
type failureOutcome struct {
	requeuedGeneric, requeuedSpecial int
	lostGeneric, lostSpecial         int
}

// setDown applies a failure-schedule transition at time now: after the
// call, downBlades blades are unavailable. If the surviving blades
// cannot hold all in-service tasks, the most recently started ones are
// evicted — requeued with their residual requirement (resume semantics)
// or dropped, per the drop flag. On repair, waiting tasks are started
// onto the recovered blades. Full-outage time is accounted for the
// availability metrics.
func (s *station) setDown(downBlades int, now float64, cal *calendar, drop bool) failureOutcome {
	if downBlades < 0 {
		downBlades = 0
	}
	s.accrue(now)
	s.down = downBlades
	var out failureOutcome
	for s.busy > s.available() {
		// Evict the most recently started task: it has lost the least
		// progress. Its departure event becomes stale (id removed).
		rec := s.active[len(s.active)-1]
		s.active = s.active[:len(s.active)-1]
		s.busy--
		if drop {
			if rec.task.class == Generic {
				out.lostGeneric++
			} else {
				out.lostSpecial++
			}
			continue
		}
		t := rec.task
		t.req = (rec.depart - now) * s.speed // residual work
		if t.class == Generic {
			out.requeuedGeneric++
		} else {
			out.requeuedSpecial++
		}
		if s.discipline == queueing.Priority && t.class == Special {
			s.specials.push(t)
		} else {
			s.generics.push(t)
		}
	}
	s.fill(now, cal) // repairs may have freed blades
	full := s.available() == 0
	if full && !s.fullDown {
		s.fullDown, s.fullSince = true, now
	} else if !full && s.fullDown {
		s.fullDown = false
		s.fullDownTime += now - s.fullSince
	}
	return out
}

// downtime returns the total full-outage time over [0, horizon].
func (s *station) downtime(horizon float64) float64 {
	d := s.fullDownTime
	if s.fullDown && horizon > s.fullSince {
		d += horizon - s.fullSince
	}
	return d
}

// utilization returns the measured per-blade utilization over [0, now],
// relative to the nameplate blade count (failed blades still count in
// the denominator, so an outage shows up as lost utilization).
func (s *station) utilization(now float64) float64 {
	if now <= 0 {
		return 0
	}
	s.accrue(now)
	return s.busyIntegral / (float64(s.blades) * now)
}
