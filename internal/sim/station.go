package sim

import "repro/internal/queueing"

// station is the runtime state of one blade server: m blades, a waiting
// room (one queue under FCFS, two under priority), and busy-time
// accounting for utilization measurements.
type station struct {
	index      int
	blades     int
	speed      float64
	discipline queueing.Discipline

	busy     int  // blades currently serving
	generics fifo // waiting generic tasks (FCFS uses only this, mixed)
	specials fifo // waiting special tasks (priority discipline only)

	busyIntegral float64 // ∫ busy dt, for measured utilization
	lastChange   float64 // time of last busy-count change
}

// queueLen returns the number of waiting tasks of both classes.
func (s *station) queueLen() int { return s.generics.len() + s.specials.len() }

// accrue advances the busy-time integral to time now.
func (s *station) accrue(now float64) {
	s.busyIntegral += float64(s.busy) * (now - s.lastChange)
	s.lastChange = now
}

// admit handles a task arriving at the station at time now. If a blade
// is free the task enters service and its departure is scheduled;
// otherwise it joins the waiting room. Under FCFS both classes share
// one queue (arrival order); under priority specials queue separately
// and are always drained first.
func (s *station) admit(t task, now float64, cal *calendar) {
	if s.busy < s.blades {
		s.accrue(now)
		s.busy++
		cal.schedule(event{time: now + t.req/s.speed, kind: evDeparture, station: s.index, task: t})
		return
	}
	if s.discipline == queueing.Priority && t.class == Special {
		s.specials.push(t)
		return
	}
	s.generics.push(t)
}

// depart handles a service completion at time now: frees the blade and,
// if anyone is waiting, starts the next task (specials first under
// priority; strict arrival order under FCFS, where the two classes
// share the generics queue).
func (s *station) depart(now float64, cal *calendar) {
	s.accrue(now)
	s.busy--
	next, ok := s.specials.pop() // empty unless priority discipline
	if !ok {
		next, ok = s.generics.pop()
	}
	if !ok {
		return
	}
	s.busy++
	cal.schedule(event{time: now + next.req/s.speed, kind: evDeparture, station: s.index, task: next})
}

// utilization returns the measured per-blade utilization over [0, now].
func (s *station) utilization(now float64) float64 {
	if now <= 0 {
		return 0
	}
	s.accrue(now)
	return s.busyIntegral / (float64(s.blades) * now)
}
