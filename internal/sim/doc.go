// Package sim is a discrete-event simulator of the paper's blade-server
// group. The paper is purely analytical — it evaluates its model with
// numerical examples, not a real system — so this simulator is the
// closest executable substrate: it generates the exact stochastic
// assumptions of the model (Poisson arrivals, exponentially distributed
// task requirements, m_i-blade stations, FCFS or non-preemptive
// priority scheduling) and measures the response times the formulas
// predict.
//
// The simulator serves two roles:
//
//  1. Validation: every analytic quantity (T′_i, W″, optimal T′) is
//     checked against simulation with confidence intervals.
//  2. A systems substrate: the dispatcher interface lets online
//     policies (probabilistic splitting with the optimal rates, round
//     robin, join-shortest-queue, …) be exercised on a live task
//     stream, which is how a downstream user would deploy the paper's
//     result.
//
// Runs are deterministic given a seed. Replications execute in
// parallel, one goroutine per replication, bounded by GOMAXPROCS.
package sim
