package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// TestDriftTriggersReoptimization drives the daemon with a
// deterministic fake clock: traffic arrives at roughly four times the
// planned rate, the windowed estimator crosses the drift threshold,
// and the background goroutine must re-solve at the observed rate and
// swap the plan — all without a single dispatch being dropped.
func TestDriftTriggersReoptimization(t *testing.T) {
	clk := newFakeClock()
	g := model.LiExample1Group()
	planned := 0.2 * g.MaxGenericRate() // ≈ 9.4 tasks/s
	s := newTestServer(t, func(c *Config) {
		c.Group = g
		c.Lambda = planned
		c.Window = time.Second
		c.Buckets = 10
		c.DriftThreshold = 0.5
		c.MinResolveInterval = 0
		c.Now = clk.Now
	})
	h := s.Handler()

	// ≈40 requests/s: one dispatch every 25 ms of fake time. The first
	// window warms the estimator; after that every request sees the
	// drift (40 vs 9.4 ≈ 325 % > 50 %) and queues a re-solve.
	observed := 40.0
	for i := 0; i < 120; i++ {
		w := postJSON(t, h, "/v1/dispatch", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d dropped with status %d: %s", i, w.Code, w.Body)
		}
		clk.Advance(25 * time.Millisecond)
	}

	// The resolver runs on a real goroutine; wait for the swap in real
	// time while fake time stands still.
	deadline := time.Now().Add(10 * time.Second)
	for s.Plan().Version < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("drift re-solve never landed (estimate %.2f, planned %.2f)",
				s.est.Rate(), planned)
		}
		time.Sleep(5 * time.Millisecond)
	}

	plan := s.Plan()
	if plan.Lambda <= planned*1.5 {
		t.Fatalf("re-solved λ = %.3f, want ≈ observed %.3f ≫ planned %.3f",
			plan.Lambda, observed, planned)
	}
	if plan.Lambda < observed*0.6 || plan.Lambda > observed*1.4 {
		t.Fatalf("re-solved λ = %.3f not near observed %.3f", plan.Lambda, observed)
	}
	if plan.Shed != 0 {
		t.Fatalf("unexpected shed %g at %.0f%% of saturation", plan.Shed, 100*plan.Lambda/g.MaxGenericRate())
	}
	// The new plan must still be a valid distribution over all stations.
	sum := 0.0
	for _, r := range plan.Rates {
		sum += r
	}
	if diff := (sum - plan.Lambda) / plan.Lambda; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("rates sum %.9f ≠ λ %.9f", sum, plan.Lambda)
	}

	// Dispatching against the swapped plan keeps working and reports
	// the new version.
	w := postJSON(t, h, "/v1/dispatch", nil)
	var resp DispatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanVersion < 2 {
		t.Fatalf("dispatch still on plan v%d", resp.PlanVersion)
	}
}

// TestStableRateDoesNotResolve is the negative control: traffic at the
// planned rate must never trigger a re-solve.
func TestStableRateDoesNotResolve(t *testing.T) {
	clk := newFakeClock()
	g := model.LiExample1Group()
	planned := 0.4 * g.MaxGenericRate()
	s := newTestServer(t, func(c *Config) {
		c.Group = g
		c.Lambda = planned
		c.Window = time.Second
		c.Buckets = 10
		c.DriftThreshold = 0.3
		c.MinResolveInterval = 0
		c.Now = clk.Now
	})
	h := s.Handler()
	step := time.Duration(float64(time.Second) / planned)
	for i := 0; i < 100; i++ {
		if w := postJSON(t, h, "/v1/dispatch", nil); w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
		clk.Advance(step)
	}
	time.Sleep(50 * time.Millisecond) // give a spurious resolver a chance to run
	if v := s.Plan().Version; v != 1 {
		t.Fatalf("plan version %d after stable traffic, want 1", v)
	}
}

// TestShutdownDrainUnderLoad hammers dispatch from many goroutines
// while health flips force plan swaps, then shuts down. Run under
// -race (CI does) this doubles as the data-race check on the
// plan-swap path; functionally it asserts no request is ever answered
// with a 5xx other than deliberate shedding, and that Close is
// idempotent while requests drain.
func TestShutdownDrainUnderLoad(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MinResolveInterval = 0 })
	ts := httptest.NewServer(s.Handler())

	const workers = 8
	const perWorker = 60
	var wg sync.WaitGroup
	var served, failed atomic.Int64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/dispatch", "application/json", nil)
				if err != nil {
					failed.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				} else {
					failed.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	// Concurrent health flips: every flip queues a re-solve and swaps
	// the plan under the feet of the dispatch workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for _, up := range []bool{false, true} {
				w := postJSON(t, s.Handler(), "/v1/health", map[string]any{"station": 3, "up": up})
				if w.Code != http.StatusAccepted {
					failed.Add(1)
				}
			}
		}
	}()

	wg.Wait()
	ts.Close() // waits for in-flight requests: the drain
	s.Close()
	s.Close() // idempotent

	if f := failed.Load(); f != 0 {
		t.Fatalf("%d requests failed during churn (%d served)", f, served.Load())
	}
	if served.Load() != workers*perWorker {
		t.Fatalf("served %d of %d", served.Load(), workers*perWorker)
	}
}
