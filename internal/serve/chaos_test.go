package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/model"
)

// TestChaosFailoverEndToEnd is the full self-healing loop against the
// real fault-injection backend, in real time: kill the busiest station
// mid-run, watch the breaker trip and the plan shed it, verify goodput
// holds through the outage, repair the station, and watch trial
// traffic earn it back into the plan. Every interval is compressed so
// the whole cycle fits in a few seconds, including under -race.
func TestChaosFailoverEndToEnd(t *testing.T) {
	g := model.LiExample1Group()
	inj, err := faultinject.New(faultinject.Config{Stations: g.N()})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(c *Config) {
		c.Group = g
		c.Lambda = 0.5 * g.MaxGenericRate()
		// Park the estimator (never warm): the dispatch storm below is a
		// test harness, not an arrival process to react to.
		c.Window = time.Hour
		c.MinResolveInterval = 5 * time.Millisecond
		c.Backend = inj.Call
		c.Guard = GuardConfig{
			AttemptTimeout: 25 * time.Millisecond,
			MaxAttempts:    2,
			RetryBudget:    1, // every request may retry: goodput is the metric here
			RetryBurst:     64,
			BackoffBase:    time.Millisecond,
			BackoffCap:     3 * time.Millisecond,
		}
		c.Breaker = BreakerConfig{
			ErrorThreshold:  0.35,
			MinVolume:       5,
			PhiThreshold:    200, // silence detection off the table: scheduler pauses under -race
			OpenInterval:    100 * time.Millisecond,
			MaxOpenInterval: 400 * time.Millisecond,
			TrialFraction:   0.5,
			TrialSuccesses:  3,
			RampWindow:      150 * time.Millisecond,
			ScanInterval:    10 * time.Millisecond,
		}
	})

	// Background dispatch load keeps outcomes (and later trial probes)
	// flowing while the main goroutine watches state.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s.Dispatch(context.Background())
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	defer func() { stop.Store(true); wg.Wait() }()

	// target is the busiest station of the startup plan — the one the
	// chaos phase kills.
	target := 0
	for i, r := range s.Plan().Rates {
		if r > s.Plan().Rates[target] {
			target = i
		}
	}
	measure := func(n int) (ok, toTarget int) {
		for i := 0; i < n; i++ {
			res := s.Dispatch(context.Background())
			if res.Err == nil && !res.Rejected {
				ok++
				if res.Station == target && !res.Trial {
					toTarget++
				}
			}
		}
		return ok, toTarget
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: healthy baseline — everything succeeds, the busiest
	// station carries traffic.
	ok, toTarget := measure(100)
	if ok != 100 {
		t.Fatalf("healthy phase: %d/100 dispatches succeeded", ok)
	}
	if toTarget == 0 {
		t.Fatalf("busiest station %d got no traffic in 100 dispatches", target)
	}

	// Phase 2: kill the station mid-run. Attempts black-hole into their
	// timeout, the EWMA climbs, the breaker trips, the plan sheds.
	if err := inj.Set(target, faultinject.Fault{Blackhole: true}); err != nil {
		t.Fatal(err)
	}
	waitFor("breaker trip and plan shed", func() bool {
		return s.breakers.rejects(target) && s.Plan().Rates[target] == 0
	})
	if s.breakers.stations[target].trips.Load() < 1 {
		t.Fatal("shed without a recorded trip")
	}

	// Phase 3: goodput holds through the outage. Trial probes still
	// torture the dead station, but retries land their requests; plan
	// traffic never routes there.
	ok, toTarget = measure(100)
	if ok < 90 {
		t.Fatalf("outage phase: %d/100 dispatches succeeded, want ≥ 90", ok)
	}
	if toTarget != 0 {
		t.Fatalf("%d plan dispatches routed to the dead station", toTarget)
	}

	// Phase 4: repair. The open interval expires, trial probes succeed,
	// the breaker closes, and the plan readmits the station.
	if err := inj.Clear(target); err != nil {
		t.Fatal(err)
	}
	waitFor("breaker close and readmission", func() bool {
		st := &s.breakers.stations[target]
		return st.state.Load() == breakerClosed && s.Plan().Rates[target] > 0
	})

	// Phase 5: the ramp completes and ordinary traffic returns.
	waitFor("ramp completion", func() bool {
		return s.Plan().Ramp == nil && s.Plan().Rates[target] > 0
	})
	_, toTarget = measure(300)
	if toTarget == 0 {
		t.Fatal("recovered station received no plan traffic after the ramp")
	}
	if inj.Injected() == 0 {
		t.Fatal("fault injector reports no injected faults — the outage never happened")
	}
}
