package serve

import (
	"sync"
	"time"
)

// RateEstimator measures the arrival rate of the generic task stream
// over a sliding window of fixed-width buckets — the online λ′
// estimator the daemon compares against the plan's λ′ to detect drift.
// The clock is injected so tests can drive it deterministically.
type RateEstimator struct {
	mu        sync.Mutex
	now       func() time.Time
	window    time.Duration
	bucket    time.Duration
	counts    []float64
	head      int       // bucket currently being filled
	headStart time.Time // start of the head bucket
	started   time.Time // first observation or reading
	observed  int64     // lifetime arrivals, for metrics
}

// NewRateEstimator builds an estimator over the given window split
// into the given number of buckets (finer buckets react faster at the
// cost of more variance). A nil clock uses time.Now.
func NewRateEstimator(window time.Duration, buckets int, now func() time.Time) *RateEstimator {
	if window <= 0 {
		window = 30 * time.Second
	}
	if buckets < 1 {
		buckets = 1
	}
	if now == nil {
		now = time.Now
	}
	return &RateEstimator{
		now:    now,
		window: window,
		bucket: window / time.Duration(buckets),
		counts: make([]float64, buckets),
	}
}

// Observe records n arrivals at the current clock reading.
func (e *RateEstimator) Observe(n float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advance(e.now())
	e.counts[e.head] += n
	e.observed += int64(n)
}

// Rate returns the estimated arrivals per second over the window.
// Before a full window has elapsed the count is divided by the elapsed
// span instead, so early readings are unbiased rather than low.
func (e *RateEstimator) Rate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.now()
	e.advance(t)
	var total float64
	for _, c := range e.counts {
		total += c
	}
	span := e.window
	if e.started.IsZero() {
		return 0
	}
	if el := t.Sub(e.started); el < span {
		span = el
	}
	if span < e.bucket {
		span = e.bucket
	}
	return total / span.Seconds()
}

// Warm reports whether a full window of observation has elapsed — the
// gate before drift decisions are trusted.
func (e *RateEstimator) Warm() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.started.IsZero() && e.now().Sub(e.started) >= e.window
}

// Observed returns the lifetime arrival count.
func (e *RateEstimator) Observed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.observed
}

// advance rotates the ring so the head bucket covers the bucket
// containing t, zeroing buckets that fell out of the window. A clock
// reading before the head bucket's start (cannot happen with a
// monotonic clock) freezes the ring rather than corrupting it.
func (e *RateEstimator) advance(t time.Time) {
	if e.started.IsZero() {
		e.started, e.headStart = t, t
		return
	}
	if t.Before(e.headStart) {
		return
	}
	steps := int(t.Sub(e.headStart) / e.bucket)
	if steps <= 0 {
		return
	}
	if steps >= len(e.counts) {
		for i := range e.counts {
			e.counts[i] = 0
		}
	} else {
		for i := 0; i < steps; i++ {
			e.head = (e.head + 1) % len(e.counts)
			e.counts[e.head] = 0
		}
	}
	e.headStart = e.headStart.Add(time.Duration(steps) * e.bucket)
}
