package serve

import (
	"math"
	randv2 "math/rand/v2"
	"sync/atomic"
	"time"
)

// estimator is the common surface of the sharded and locked
// arrival-rate estimators. The daemon measures the observed generic
// rate λ̂′ through it to detect drift from the plan's λ′.
type estimator interface {
	// Observe records n arrivals at the current clock reading.
	Observe(n float64)
	// Rate returns the estimated arrivals per second over the window.
	Rate() float64
	// Warm reports whether a full window of observation has elapsed.
	Warm() bool
	// Observed returns the lifetime arrival count, rounded to the
	// nearest integer (fractional observations accumulate exactly).
	Observed() int64
	// ObserveAt/RateAt/WarmAt are the clock-supplied variants: the
	// dispatch hot path reads the clock once and reuses the instant,
	// instead of paying one clock read per estimator touch.
	ObserveAt(t time.Time, n float64)
	RateAt(t time.Time) float64
	WarmAt(t time.Time) bool
}

// countScale is the fixed-point resolution of the ring buckets: counts
// are stored as atomic.Int64 in units of one millionth of an arrival,
// so fractional Observe values (batch weights, sampled streams) survive
// aggregation. Anything finer than 1e-6 of a task per call is below the
// estimator's variance floor and is rounded away.
const countScale = 1e6

// RateEstimator measures the arrival rate of the generic task stream
// over a sliding window of fixed-width buckets — the online λ′
// estimator the daemon compares against the plan's λ′ to detect drift.
//
// The hot path is lock-free and core-scalable: observations land in one
// of GOMAXPROCS shards chosen by a cheap per-thread random draw, and
// each shard keeps its own ring of epoch-tagged atomic.Int64 buckets.
// A bucket's epoch is the bucket-width-quantized time since the first
// observation; writers rotate a slot by compare-and-swapping its epoch
// forward and zeroing the stale count. Readers (Rate, Warm) merge every
// shard at read time, including only buckets whose epoch falls inside
// the current window — no rotation bookkeeping is shared between
// shards, so Observe never takes a lock.
//
// Rotation has one bounded race: an increment that lands in the instant
// between a winner's epoch swap and its count reset is dropped. That
// can lose at most the few arrivals racing a rotation, once per bucket
// interval per slot — far below the estimator's sampling variance — and
// single-threaded use (all deterministic tests) is exact.
//
// The clock is injected so tests can drive it deterministically.
type RateEstimator struct {
	now     func() time.Time
	window  time.Duration
	bucket  time.Duration
	quantum int64        // ns; rate reads within one quantum share a cached merge
	started atomic.Int64 // UnixNano of the first observation or reading; 0 = unset
	warmed  atomic.Bool  // latched once a full window has elapsed (monotone)

	// Rate-read cache: merging every shard on every read would make the
	// reader the hot path's bottleneck, so a merged value is reused for
	// all reads within one cache quantum (a quarter bucket). The rate a
	// quarter-bucket ago is within the estimator's own resolution — the
	// ring cannot distinguish finer than a bucket — so drift and
	// admission semantics are unchanged.
	cacheStamp atomic.Int64  // quantized reading time of the cached rate; 0 = empty
	cacheBits  atomic.Uint64 // float64 bits of the cached rate

	shards []estimatorShard
	mask   uint64
}

// estimatorShard is one writer shard. The observed accumulator is the
// only mutable direct field; the trailing pad keeps neighbouring
// shards' write traffic off the same cache line.
type estimatorShard struct {
	buckets  []estimatorBucket
	observed atomic.Int64 // lifetime arrivals in countScale units
	_        [104]byte
}

// estimatorBucket is one epoch-tagged ring slot.
type estimatorBucket struct {
	epoch atomic.Int64 // bucket index since started; slot = epoch mod len
	count atomic.Int64 // arrivals in countScale units for that epoch
}

// NewRateEstimator builds a sharded estimator over the given window
// split into the given number of buckets (finer buckets react faster at
// the cost of more variance). A nil clock uses time.Now. The shard
// count is sized to GOMAXPROCS at construction.
func NewRateEstimator(window time.Duration, buckets int, now func() time.Time) *RateEstimator {
	if window <= 0 {
		window = 30 * time.Second
	}
	if buckets < 1 {
		buckets = 1
	}
	if now == nil {
		now = time.Now
	}
	// Shard count is capped so the hot path's shard pick fits its slice
	// of the per-request random word (randbits.go).
	n := hotShards(randEstShardBits)
	e := &RateEstimator{
		now:    now,
		window: window,
		bucket: window / time.Duration(buckets),
		shards: make([]estimatorShard, n),
		mask:   uint64(n - 1),
	}
	e.quantum = int64(e.bucket / 4)
	if e.quantum < 1 {
		e.quantum = 1
	}
	for i := range e.shards {
		e.shards[i].buckets = make([]estimatorBucket, buckets)
		for j := range e.shards[i].buckets {
			// A sentinel epoch no window can include keeps untouched
			// slots out of every merge.
			e.shards[i].buckets[j].epoch.Store(math.MinInt64)
		}
	}
	return e
}

// start returns the UnixNano origin of the epoch grid, initializing it
// to t on the first observation or reading (both anchor the grid, as in
// the locked estimator).
func (e *RateEstimator) start(t time.Time) int64 {
	if s := e.started.Load(); s != 0 {
		return s
	}
	n := t.UnixNano()
	if n == 0 {
		n = 1 // a zero-epoch clock must still read as "started"
	}
	e.started.CompareAndSwap(0, n)
	return e.started.Load()
}

// epochAt quantizes t onto the bucket grid. Readings before the origin
// (cannot happen with a monotonic clock) clamp to epoch 0 rather than
// corrupting the ring.
func (e *RateEstimator) epochAt(t time.Time, startNanos int64) int64 {
	d := t.UnixNano() - startNanos
	if d <= 0 {
		return 0
	}
	return d / int64(e.bucket)
}

// Observe records n arrivals at the current clock reading. Lock-free:
// one shard pick, at most one epoch CAS, two atomic adds.
func (e *RateEstimator) Observe(n float64) { e.ObserveAt(e.now(), n) }

// ObserveAt is Observe with a caller-supplied clock reading.
func (e *RateEstimator) ObserveAt(t time.Time, n float64) {
	e.observeAtShard(t, n, randv2.Uint64())
}

// observeAtShard is the innermost write path; u supplies the shard
// pick so a caller that already holds random bits (the dispatch hot
// path draws one word per request) avoids a second generator call.
//
//bladelint:allow randbits -- e.mask is the runtime shard count minus one, capped at hotShards(randEstShardBits) so it stays inside the est slice of the layout
func (e *RateEstimator) observeAtShard(t time.Time, n float64, u uint64) {
	ep := e.epochAt(t, e.start(t))
	sh := &e.shards[u&e.mask]
	b := &sh.buckets[int(ep%int64(len(sh.buckets)))]
	for {
		old := b.epoch.Load()
		if old >= ep {
			break // current (or a newer writer already rotated past us)
		}
		if b.epoch.CompareAndSwap(old, ep) {
			b.count.Store(0) // winner clears the stale epoch's count
			break
		}
	}
	d := int64(math.Round(n * countScale))
	b.count.Add(d)
	sh.observed.Add(d)
}

// Rate returns the estimated arrivals per second over the window.
// Reads within one cache quantum (a quarter bucket) share one merged
// value; see the cache fields for why that preserves semantics.
func (e *RateEstimator) Rate() float64 { return e.RateAt(e.now()) }

// RateAt is Rate with a caller-supplied clock reading.
func (e *RateEstimator) RateAt(t time.Time) float64 {
	q := t.UnixNano()/e.quantum + 1 // +1 keeps a zero clock distinct from "empty"
	if e.cacheStamp.Load() == q {
		return math.Float64frombits(e.cacheBits.Load())
	}
	r := e.rateAt(t)
	// Bits before stamp: a reader that sees the fresh stamp gets a value
	// at least as fresh. Racing writers near a quantum boundary overwrite
	// each other with merges an instant apart — benign.
	e.cacheBits.Store(math.Float64bits(r))
	e.cacheStamp.Store(q)
	return r
}

// rateAt merges every shard's ring at the given instant, uncached.
// Before a full window has elapsed the count is divided by the elapsed
// span instead, so early readings are unbiased rather than low.
func (e *RateEstimator) rateAt(t time.Time) float64 {
	start := e.start(t)
	cur := e.epochAt(t, start)
	min := cur - int64(len(e.shards[0].buckets)) + 1
	var total int64
	for i := range e.shards {
		for j := range e.shards[i].buckets {
			b := &e.shards[i].buckets[j]
			if ep := b.epoch.Load(); ep >= min && ep <= cur {
				total += b.count.Load()
			}
		}
	}
	span := e.window
	if el := t.Sub(time.Unix(0, start)); el < span {
		span = el
	}
	if span < e.bucket {
		span = e.bucket
	}
	return float64(total) / countScale / span.Seconds()
}

// Warm reports whether a full window of observation has elapsed — the
// gate before drift decisions are trusted.
func (e *RateEstimator) Warm() bool { return e.WarmAt(e.now()) }

// WarmAt is Warm with a caller-supplied clock reading. Warmth is
// monotone under a monotone clock, so it latches: once warm, the
// answer is a single atomic load.
func (e *RateEstimator) WarmAt(t time.Time) bool {
	if e.warmed.Load() {
		return true
	}
	if t.Sub(time.Unix(0, e.start(t))) >= e.window {
		e.warmed.Store(true)
		return true
	}
	return false
}

// Observed returns the lifetime arrival count: the per-shard
// fixed-point accumulators are summed and rounded once at read, so
// fractional observations (e.g. repeated Observe(0.5)) are never
// truncated away.
func (e *RateEstimator) Observed() int64 {
	var total int64
	for i := range e.shards {
		total += e.shards[i].observed.Load()
	}
	return int64(math.Round(float64(total) / countScale))
}

// nextPow2 rounds n up to a power of two (for cheap masked indexing).
func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
