package serve

import (
	"math"
	"sync/atomic"
)

// Outcome classifies one completed backend attempt for the health
// tracker. Callers that execute work themselves (rather than through
// Server.Dispatch) report outcomes via Server.ReportOutcome or the
// POST /v1/observe endpoint so the failure detector can see them.
type Outcome uint8

const (
	// OutcomeSuccess is a completed attempt the client would accept.
	OutcomeSuccess Outcome = iota
	// OutcomeError is a failed attempt (backend error, connection
	// refused, …) that completed promptly.
	OutcomeError
	// OutcomeTimeout is an attempt abandoned at its deadline — the
	// strongest single signal of a blacked-out station.
	OutcomeTimeout
	numOutcomes
)

// outcomeNames is indexed by Outcome, declaration order.
var outcomeNames = [numOutcomes]string{"success", "error", "timeout"}

// EWMA smoothing constants for the per-station health statistics. The
// error rate uses a slower constant than the completion-gap mean: a
// single failure should nudge suspicion, not trip a breaker.
const (
	ewmaErrAlpha = 0.1
	ewmaGapAlpha = 0.2
	ewmaLatAlpha = 0.1
)

// log10E converts a natural-units ratio into the base-10 logarithm the
// phi-accrual literature quotes thresholds in (Hayashibara et al.).
const log10E = 0.4342944819032518

// outcomeShard is one CPU shard's counters for one station; padded so
// concurrent recorders on different shards never false-share.
type outcomeShard struct {
	counts [numOutcomes]atomic.Int64
	_      [40]byte
}

// stationEWMA is the per-station smoothed health state. Floats are
// stored as their IEEE bits in atomic words and updated with CAS
// loops, so the recorder stays lock-free and allocation-free.
type stationEWMA struct {
	errRate  atomic.Uint64 // EWMA of the 0/1 failure indicator
	gapMean  atomic.Uint64 // EWMA inter-completion gap, seconds
	latMean  atomic.Uint64 // EWMA attempt latency, seconds
	lastDone atomic.Int64  // unix nanos of the latest completion
	_        [88]byte
}

// outcomeTracker is the per-station failure detector state: sharded
// exact counters (merged only at scrape/scan time) plus the EWMA
// statistics the breaker's trip conditions read.
type outcomeTracker struct {
	nshards int
	mask    uint64
	shards  []outcomeShard // station-major: stations × nshards
	ewma    []stationEWMA
}

func newOutcomeTracker(stations, shards int) *outcomeTracker {
	n := nextPow2(shards)
	return &outcomeTracker{
		nshards: n,
		mask:    uint64(n - 1),
		shards:  make([]outcomeShard, stations*n),
		ewma:    make([]stationEWMA, stations),
	}
}

// record feeds one completion into the tracker. u supplies the shard
// pick so hot callers can reuse their per-request random word. Runs
// under the hot-path discipline: atomic ops only, no allocation.
//
//bladelint:allow randbits -- t.mask is the runtime outcome shard count minus one, a contention cap rather than a layout slice; the low bits it reads are the est slice the estimator also shards by
func (t *outcomeTracker) record(station int, kind Outcome, atNanos int64, latencySeconds float64, u uint64) {
	if station < 0 || station >= len(t.ewma) || kind >= numOutcomes {
		return
	}
	t.shards[station*t.nshards+int(u&t.mask)].counts[kind].Add(1)
	e := &t.ewma[station]
	fail := 0.0
	if kind != OutcomeSuccess {
		fail = 1
	}
	ewmaUpdate(&e.errRate, fail, ewmaErrAlpha, false)
	if latencySeconds >= 0 {
		ewmaUpdate(&e.latMean, latencySeconds, ewmaLatAlpha, true)
	}
	last := e.lastDone.Swap(atNanos)
	if last > 0 && atNanos > last {
		ewmaUpdate(&e.gapMean, float64(atNanos-last)/1e9, ewmaGapAlpha, true)
	}
}

// ewmaUpdate CAS-merges one sample into a float-bits atomic. With seed
// set, the first sample (zero bits) becomes the estimate directly —
// right for means of positive quantities (gaps, latencies). Without
// it, updates always blend from zero — right for the error rate, whose
// resting state really is zero.
func ewmaUpdate(a *atomic.Uint64, x, alpha float64, seed bool) {
	for {
		old := a.Load()
		var next float64
		if seed && old == 0 {
			next = x
		} else {
			next = alpha*x + (1-alpha)*math.Float64frombits(old)
		}
		if a.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// totals merges the shards of one station into exact counters.
func (t *outcomeTracker) totals(station int) (success, errs, timeouts int64) {
	base := station * t.nshards
	for s := 0; s < t.nshards; s++ {
		sh := &t.shards[base+s]
		success += sh.counts[OutcomeSuccess].Load()
		errs += sh.counts[OutcomeError].Load()
		timeouts += sh.counts[OutcomeTimeout].Load()
	}
	return success, errs, timeouts
}

// errorRate returns the station's EWMA failure fraction in [0, 1].
func (t *outcomeTracker) errorRate(station int) float64 {
	return math.Float64frombits(t.ewma[station].errRate.Load())
}

// latencyMean returns the station's EWMA attempt latency in seconds.
func (t *outcomeTracker) latencyMean(station int) float64 {
	return math.Float64frombits(t.ewma[station].latMean.Load())
}

// suspicion is a phi-accrual-style score from the inter-completion
// gap process: under an exponential gap model with the observed mean,
// φ = −log₁₀ P(gap > silence) = log₁₀e · silence/mean. A station that
// has been silent for k mean gaps scores ≈ 0.43·k; thresholds of 8–16
// therefore demand tens of missed completions, which makes the score
// robust to ordinary jitter. Zero until the station has completed
// work and established a gap mean.
func (t *outcomeTracker) suspicion(station int, nowNanos int64) float64 {
	e := &t.ewma[station]
	last := e.lastDone.Load()
	if last <= 0 || nowNanos <= last {
		return 0
	}
	mean := math.Float64frombits(e.gapMean.Load())
	if !(mean > 0) {
		return 0
	}
	return log10E * (float64(nowNanos-last) / 1e9) / mean
}

// resetError clears the EWMA error rate — called when a breaker closes
// after a successful trial sequence, so stale failure history cannot
// immediately re-trip it.
func (t *outcomeTracker) resetError(station int) {
	t.ewma[station].errRate.Store(0)
}

// touch restamps the station's completion clock without recording an
// outcome — used when a breaker enters half-open, so suspicion
// measures silence of the probe stream rather than of the outage.
func (t *outcomeTracker) touch(station int, atNanos int64) {
	t.ewma[station].lastDone.Store(atNanos)
}
