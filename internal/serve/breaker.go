package serve

import (
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the per-station circuit breakers that close the
// failure-detection loop: tracker statistics trip a breaker open, the
// open breaker forces a degraded re-solve that sheds the station, and
// a half-open trial stream earns the station its traffic back through
// a capped-weight ramp. The zero value takes all defaults.
type BreakerConfig struct {
	// Disabled turns automatic breaker transitions off entirely;
	// operator POST /v1/health remains the only health control.
	Disabled bool
	// ErrorThreshold is the EWMA failure fraction at which a closed
	// breaker trips, once MinVolume outcomes back the estimate.
	// Default 0.5.
	ErrorThreshold float64
	// MinVolume is the number of outcomes a station must have produced
	// since its last transition before the error rate can trip it —
	// the warm-up guard against tripping on one unlucky request.
	// Default 10.
	MinVolume int
	// PhiThreshold trips a loaded station whose completion stream has
	// gone silent: suspicion ≈ 0.43 × (silence / mean gap) must reach
	// this value. Default 8 (≈ 18 mean gaps of silence).
	PhiThreshold float64
	// OpenInterval is how long a freshly tripped breaker stays open
	// before probing; each reopen doubles it up to MaxOpenInterval.
	// Defaults 5s and 1m.
	OpenInterval    time.Duration
	MaxOpenInterval time.Duration
	// TrialFraction is the probability a dispatch is diverted to a
	// half-open station as a probe. Default 0.05.
	TrialFraction float64
	// TrialSuccesses is how many probe successes (without a failure)
	// close the breaker. Default 5.
	TrialSuccesses int
	// RampWindow is the capped-weight ramp after a breaker-driven
	// recovery: the readmitted station starts at a fraction of its
	// optimal rate and reaches full weight this long after closing.
	// Default 10s.
	RampWindow time.Duration
	// ScanInterval is the cadence of the background health scan that
	// evaluates trip conditions and advances open breakers.
	// Default 250ms.
	ScanInterval time.Duration
}

func (c *BreakerConfig) withDefaults() {
	if c.ErrorThreshold <= 0 || c.ErrorThreshold > 1 {
		c.ErrorThreshold = 0.5
	}
	if c.MinVolume <= 0 {
		c.MinVolume = 10
	}
	if c.PhiThreshold <= 0 {
		c.PhiThreshold = 8
	}
	if c.OpenInterval <= 0 {
		c.OpenInterval = 5 * time.Second
	}
	if c.MaxOpenInterval < c.OpenInterval {
		c.MaxOpenInterval = 12 * c.OpenInterval
	}
	if c.TrialFraction <= 0 || c.TrialFraction > 1 {
		c.TrialFraction = 0.05
	}
	if c.TrialSuccesses <= 0 {
		c.TrialSuccesses = 5
	}
	if c.RampWindow <= 0 {
		c.RampWindow = 10 * time.Second
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = 250 * time.Millisecond
	}
}

// Breaker states. The hot path only distinguishes closed from
// not-closed; transitions happen in the scan goroutine and in
// recordOutcome's reopen CAS.
const (
	breakerClosed int32 = iota
	breakerHalfOpen
	breakerOpen
)

// breakerStateNames is indexed by the state constants.
var breakerStateNames = [3]string{"closed", "half-open", "open"}

// rampMinFactor is the weight floor a just-recovered station ramps up
// from — it re-enters at 10% of its optimal rate, never cold-starts at
// full load.
const rampMinFactor = 0.1

// breakerState is one station's breaker. All fields are atomics: the
// dispatch hot path loads state/pinned on every request, and the scan
// goroutine, outcome recorder, and health handler mutate them without
// a shared lock.
type breakerState struct {
	state  atomic.Int32
	pinned atomic.Bool // operator "down": transitions frozen, station excluded
	// openUntil is when an open breaker may go half-open (unix nanos);
	// interval is the current open duration, doubling per reopen.
	openUntil atomic.Int64
	interval  atomic.Int64
	// trialOK counts consecutive probe successes in half-open.
	trialOK atomic.Int64
	// rampStart stamps a breaker-driven close (unix nanos); zero means
	// no ramp in progress.
	rampStart atomic.Int64
	trips     atomic.Int64
	_         [48]byte
}

// breakerSet bundles the per-station breakers with the derived hot
// path constants and the shared trial pointer.
type breakerSet struct {
	disabled      bool
	trialFraction float64
	// trialBits is TrialFraction scaled to the randTrialBits-wide coin
	// slice of the per-request random word the lock-free hot path
	// compares against (see randbits.go for the layout).
	trialBits uint64
	// openBase/openMax bound the exponential open-interval backoff.
	openBase, openMax int64
	// trial publishes the station index currently admitting half-open
	// probes (-1 when none) so the hot path pays one atomic load to
	// know whether a trial coin must be flipped at all.
	trial    atomic.Int64
	stations []breakerState
	// redirects counts dispatches whose picked station was rejected by
	// its breaker and were re-drawn; trials counts probe admissions.
	redirects atomic.Int64
	trials    atomic.Int64
}

func newBreakerSet(n int, cfg BreakerConfig) *breakerSet {
	b := &breakerSet{
		disabled:      cfg.Disabled,
		trialFraction: cfg.TrialFraction,
		trialBits:     uint64(cfg.TrialFraction * (1 << randTrialBits)),
		openBase:      int64(cfg.OpenInterval),
		openMax:       int64(cfg.MaxOpenInterval),
		stations:      make([]breakerState, n),
	}
	b.trial.Store(-1)
	for i := range b.stations {
		b.stations[i].interval.Store(int64(cfg.OpenInterval))
	}
	return b
}

// rejects reports whether the station's breaker currently refuses
// ordinary (non-probe) traffic. Hot path: two atomic loads.
func (b *breakerSet) rejects(station int) bool {
	if station < 0 || station >= len(b.stations) {
		return false
	}
	s := &b.stations[station]
	return s.state.Load() != breakerClosed || s.pinned.Load()
}

// onOutcome applies a completion to the station's breaker. Only
// half-open breakers react here — a single failed probe reopens the
// breaker immediately with a doubled interval, without waiting for the
// next scan. Hot-path discipline: atomics only.
func (b *breakerSet) onOutcome(station int, kind Outcome, atNanos int64) {
	if b.disabled || station < 0 || station >= len(b.stations) {
		return
	}
	s := &b.stations[station]
	if s.state.Load() != breakerHalfOpen {
		return
	}
	if kind == OutcomeSuccess {
		s.trialOK.Add(1)
		return
	}
	if s.state.CompareAndSwap(breakerHalfOpen, breakerOpen) {
		b.reopen(s, atNanos)
	}
}

// reopen arms an open period from atNanos using the current interval,
// then doubles the stored interval (capped at openMax) so a flapping
// station backs off exponentially instead of thrashing the plan.
func (b *breakerSet) reopen(s *breakerState, atNanos int64) {
	iv := s.interval.Load()
	s.openUntil.Store(atNanos + iv)
	if next := 2 * iv; next <= b.openMax {
		s.interval.Store(next)
	} else {
		s.interval.Store(b.openMax)
	}
	s.trips.Add(1)
	s.trialOK.Store(0)
}

// resetTo returns a breaker to the closed state with its backoff
// rearmed from the base interval — operator "up" overrides and
// breaker-driven closes both land here.
func (b *breakerSet) resetTo(s *breakerState) {
	s.state.Store(breakerClosed)
	s.interval.Store(b.openBase)
	s.openUntil.Store(0)
	s.trialOK.Store(0)
}

// snapshotTrial republishes which station (if any) is admitting
// probes. Called by the scan after transitions; at most one station
// runs trials at a time, lowest index first, so probe traffic is never
// split thin across several recovering stations.
func (b *breakerSet) snapshotTrial() {
	for i := range b.stations {
		s := &b.stations[i]
		if s.state.Load() == breakerHalfOpen && !s.pinned.Load() {
			b.trial.Store(int64(i))
			return
		}
	}
	b.trial.Store(-1)
}

// anyRejecting reports whether any breaker currently excludes its
// station — the cheap pre-check the resolver uses to decide whether
// the availability vector must consult breakers at all.
func (b *breakerSet) anyRejecting() bool {
	for i := range b.stations {
		if b.rejects(i) {
			return true
		}
	}
	return false
}
