package serve

//bladelint:allow lock -- serialized baseline: this file IS the mutexed reference the lock-free estimator is measured against

import (
	"math"
	"sync"
	"time"
)

// LockedRateEstimator is the single-mutex arrival-rate estimator: one
// ring of float64 buckets rotated in place under a lock. It is the
// reference semantics for the sharded RateEstimator, the estimator used
// by Config.SerializedHotPath, and the contention baseline measured by
// BenchmarkDispatchParallelMutex. The clock is injected so tests can
// drive it deterministically.
type LockedRateEstimator struct {
	mu        sync.Mutex
	now       func() time.Time
	window    time.Duration
	bucket    time.Duration
	counts    []float64
	head      int       // bucket currently being filled
	headStart time.Time // start of the head bucket
	started   time.Time // first observation or reading
	observed  float64   // lifetime arrivals; float so fractional counts accumulate
}

// NewLockedRateEstimator builds a locked estimator over the given
// window split into the given number of buckets. A nil clock uses
// time.Now.
func NewLockedRateEstimator(window time.Duration, buckets int, now func() time.Time) *LockedRateEstimator {
	if window <= 0 {
		window = 30 * time.Second
	}
	if buckets < 1 {
		buckets = 1
	}
	if now == nil {
		now = time.Now
	}
	return &LockedRateEstimator{
		now:    now,
		window: window,
		bucket: window / time.Duration(buckets),
		counts: make([]float64, buckets),
	}
}

// Observe records n arrivals at the current clock reading. The
// lifetime count accumulates in float and is rounded at read
// (Observed), so sub-unit observations such as Observe(0.5) are never
// truncated away.
func (e *LockedRateEstimator) Observe(n float64) { e.ObserveAt(e.now(), n) }

// ObserveAt is Observe with a caller-supplied clock reading.
func (e *LockedRateEstimator) ObserveAt(t time.Time, n float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advance(t)
	e.counts[e.head] += n
	e.observed += n
}

// Rate returns the estimated arrivals per second over the window.
// Before a full window has elapsed the count is divided by the elapsed
// span instead, so early readings are unbiased rather than low.
func (e *LockedRateEstimator) Rate() float64 { return e.RateAt(e.now()) }

// RateAt is Rate with a caller-supplied clock reading.
func (e *LockedRateEstimator) RateAt(t time.Time) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advance(t)
	var total float64
	for _, c := range e.counts {
		total += c
	}
	span := e.window
	if e.started.IsZero() {
		return 0
	}
	if el := t.Sub(e.started); el < span {
		span = el
	}
	if span < e.bucket {
		span = e.bucket
	}
	return total / span.Seconds()
}

// Warm reports whether a full window of observation has elapsed — the
// gate before drift decisions are trusted.
func (e *LockedRateEstimator) Warm() bool { return e.WarmAt(e.now()) }

// WarmAt is Warm with a caller-supplied clock reading.
func (e *LockedRateEstimator) WarmAt(t time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.started.IsZero() && t.Sub(e.started) >= e.window
}

// Observed returns the lifetime arrival count, rounded to the nearest
// integer at read time.
func (e *LockedRateEstimator) Observed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(math.Round(e.observed))
}

// advance rotates the ring so the head bucket covers the bucket
// containing t, zeroing buckets that fell out of the window. A clock
// reading before the head bucket's start (cannot happen with a
// monotonic clock) freezes the ring rather than corrupting it.
func (e *LockedRateEstimator) advance(t time.Time) {
	if e.started.IsZero() {
		e.started, e.headStart = t, t
		return
	}
	if t.Before(e.headStart) {
		return
	}
	steps := int(t.Sub(e.headStart) / e.bucket)
	if steps <= 0 {
		return
	}
	if steps >= len(e.counts) {
		for i := range e.counts {
			e.counts[i] = 0
		}
	} else {
		for i := 0; i < steps; i++ {
			e.head = (e.head + 1) % len(e.counts)
			e.counts[e.head] = 0
		}
	}
	e.headStart = e.headStart.Add(time.Duration(steps) * e.bucket)
}
