package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// TestRateEstimatorConcurrentStress hammers the sharded estimator with
// concurrent writers and readers (run under -race in CI). The window is
// longer than the test so no bucket rotates: every observation must
// survive into both Observed and Rate.
func TestRateEstimatorConcurrentStress(t *testing.T) {
	const writers, perWriter = 8, 5000
	e := NewRateEstimator(time.Hour, 10, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					e.Rate()
					e.Warm()
					e.Observed()
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				e.Observe(1)
			}
		}()
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()
	if got := e.Observed(); got != writers*perWriter {
		t.Fatalf("observed = %d, want %d (lost concurrent observations)", got, writers*perWriter)
	}
	// Bypass the quantum cache (a concurrent reader may have cached a
	// merge from before the writers produced anything) and check the
	// full hour-long window kept every observation.
	if r := e.rateAt(time.Now()); r <= 0 {
		t.Fatalf("uncached rate = %g after %d observations", r, writers*perWriter)
	}
}

// TestShardedMetricsConcurrentStress runs concurrent dispatch
// observations, rejections, and scrapes (run under -race in CI), then
// checks no count was lost.
func TestShardedMetricsConcurrentStress(t *testing.T) {
	const writers, perWriter, stations = 8, 4000, 3
	m := newServerMetrics(stations)
	plan := &Plan{Version: 1, Utilizations: make([]float64, stations)}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
				buf.Reset()
				m.writeTo(&buf, plan, 1.0, true)
			}
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				m.observeDispatch((w+i)%stations, float64(i%100)/1e4)
				if i%16 == 0 {
					m.reject(rejectAdmission)
				}
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	m.writeTo(&buf, plan, 1.0, true)
	out := buf.String()
	mustContain := []string{
		fmt.Sprintf("bladed_dispatch_total %d", writers*perWriter),
		fmt.Sprintf(`bladed_rejected_total{reason="admission"} %d`, writers*(perWriter/16)),
		fmt.Sprintf("bladed_request_duration_seconds_count %d", writers*perWriter),
	}
	for _, want := range mustContain {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	var perStation int64
	for i := 0; i < stations; i++ {
		perStation += m.byStation[i].Load()
	}
	if perStation != writers*perWriter {
		t.Fatalf("per-station counts sum to %d, want %d", perStation, writers*perWriter)
	}
}

// TestDispatchDecideConcurrentStress drives the full lock-free Decide
// path from many goroutines (run under -race in CI) and checks the
// dispatch counter kept up.
func TestDispatchDecideConcurrentStress(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Window = time.Hour // keep the estimator cold: no shedding
	})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := s.Decide()
				if d.Rejected {
					t.Errorf("unexpected rejection: %s", d.Reason)
					return
				}
				if d.Station < 0 || d.Station >= s.group.N() {
					t.Errorf("station %d out of range", d.Station)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.est.Observed(); got != workers*perWorker {
		t.Fatalf("estimator observed %d, want %d", got, workers*perWorker)
	}
	sm := s.m.(*shardedMetrics)
	if got := sm.dispatchTotal.Load(); got != workers*perWorker {
		t.Fatalf("dispatch total %d, want %d", got, workers*perWorker)
	}
}

// TestDeterministicRNGReproducesDispatchSequence pins the
// Config.DeterministicRNG contract: with a fixed seed the routing
// sequence is exactly what the original single-RNG server produced —
// plan.Pick drawing from one math/rand generator.
func TestDeterministicRNGReproducesDispatchSequence(t *testing.T) {
	for _, serialized := range []bool{false, true} {
		name := "deterministic-rng"
		if serialized {
			name = "serialized-hot-path"
		}
		t.Run(name, func(t *testing.T) {
			const seed, draws = 42, 500
			s := newTestServer(t, func(c *Config) {
				c.Seed = seed
				c.DeterministicRNG = true
				c.SerializedHotPath = serialized
			})
			// The reference sequence: the pre-sharding hot path consumed
			// exactly one rng.Float64 per admitted dispatch, inside
			// plan.Pick. With a cold estimator and no planned shedding no
			// admission draw is consumed, so the streams align.
			ref := rand.New(rand.NewSource(seed))
			plan := s.Plan()
			for i := 0; i < draws; i++ {
				want := plan.Pick(ref)
				d := s.Decide()
				if d.Rejected {
					t.Fatalf("draw %d: unexpected rejection %s", i, d.Reason)
				}
				if d.Station != want {
					t.Fatalf("draw %d: station %d, want %d (sequence diverged)", i, d.Station, want)
				}
			}
		})
	}
}

// TestSerializedHotPathServesDispatch sanity-checks the locked baseline
// end to end: same group, same API behaviour, locked internals.
func TestSerializedHotPathServesDispatch(t *testing.T) {
	g := model.LiExample1Group()
	s := newTestServer(t, func(c *Config) {
		c.SerializedHotPath = true
	})
	if _, ok := s.est.(*LockedRateEstimator); !ok {
		t.Fatalf("serialized server estimator is %T", s.est)
	}
	if _, ok := s.m.(*lockedMetrics); !ok {
		t.Fatalf("serialized server metrics is %T", s.m)
	}
	for i := 0; i < 100; i++ {
		d := s.Decide()
		if d.Rejected || d.Station < 0 || d.Station >= g.N() {
			t.Fatalf("decision %d: %+v", i, d)
		}
	}
	var buf bytes.Buffer
	s.m.writeTo(&buf, s.Plan(), 1.0, false)
	if !strings.Contains(buf.String(), "bladed_dispatch_total 100") {
		t.Fatalf("locked metrics scrape missing dispatch total:\n%s", buf.String())
	}
}
