package serve

import (
	"sync/atomic"

	"repro/internal/dispatch"
)

// depthSet tracks per-station in-flight depth for the JSQ(d) policy —
// the state the power-of-d score reads. Lifecycle (DESIGN.md §15):
//
//   - Router-only mode (no Backend): increment when Decide routes a
//     request to the station, decrement when the caller reports the
//     completion through ReportOutcome / POST /v1/observe. A deployment
//     that never reports outcomes degrades gracefully: depths grow
//     roughly in proportion to routed traffic, so the relative score
//     still spreads load by capacity, just without completion feedback.
//   - Executing mode (Backend set): increment/decrement bracket each
//     guarded backend attempt in call(), so retries and hedges count
//     the stations actually holding work, not the first routing pick.
//
// The decrement clamps at zero instead of trusting the caller:
// /v1/observe is an external interface and a double-report must not
// wedge a station's score negative.
type depthSet struct {
	stations []stationDepth
}

// stationDepth pads each counter to its own cache line so concurrent
// dispatches to different stations never false-share.
type stationDepth struct {
	n atomic.Int64
	_ [56]byte
}

func newDepthSet(n int) *depthSet {
	return &depthSet{stations: make([]stationDepth, n)}
}

// Depth implements dispatch.DepthReader: one uncontended atomic load on
// the dispatch hot path.
func (d *depthSet) Depth(station int) int64 {
	return d.stations[station].n.Load()
}

func (d *depthSet) inc(station int) {
	if station < 0 || station >= len(d.stations) {
		return
	}
	d.stations[station].n.Add(1)
}

// incN applies a batch's routed count to one station in a single add —
// the batched dispatch path aggregates its picks per station before
// touching the shared counters, so a chunk costs one add per distinct
// chosen station instead of one per decision.
func (d *depthSet) incN(station int, n int64) {
	if n <= 0 || station < 0 || station >= len(d.stations) {
		return
	}
	d.stations[station].n.Add(n)
}

// dec decrements with a zero clamp (CAS loop, lock-free): an unmatched
// external report drops on the floor rather than driving the depth
// negative.
func (d *depthSet) dec(station int) {
	if station < 0 || station >= len(d.stations) {
		return
	}
	n := &d.stations[station].n
	for {
		v := n.Load()
		if v <= 0 {
			return
		}
		if n.CompareAndSwap(v, v-1) {
			return
		}
	}
}

// The cross-package interface implementation hotpathlock's widened
// expansion must see: PowerOfD.PickU (a hot root in internal/dispatch)
// calls Depth through dispatch.DepthReader, and depthSet lives here.
var _ dispatch.DepthReader = (*depthSet)(nil)
