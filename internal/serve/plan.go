package serve

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/model"
)

// Plan is an immutable routing plan: one solve of the paper's optimal
// load distribution frozen together with the probabilistic picker that
// realizes it. The daemon publishes plans through an atomic pointer;
// every request works from the snapshot it loaded, so a background
// swap never tears an in-flight request's view.
type Plan struct {
	// Version increments with every accepted re-solve.
	Version int64 `json:"version"`
	// Lambda is the total generic arrival rate λ′ the plan was solved
	// for (the admitted portion when Shed > 0).
	Lambda float64 `json:"lambda"`
	// Rates are the optimal per-station rates λ′_i; down stations carry
	// zero and are never picked.
	Rates []float64 `json:"rates"`
	// Phi is the Lagrange multiplier at the optimum — the warm start
	// for the next re-solve.
	Phi float64 `json:"phi"`
	// AvgResponseTime is the minimized T′ under the plan.
	AvgResponseTime float64 `json:"avg_response_time"`
	// Utilizations are the per-station ρ_i under the plan.
	Utilizations []float64 `json:"utilizations"`
	// Up echoes the availability vector the solve ran against (nil
	// means all stations up).
	Up []bool `json:"up,omitempty"`
	// Survivors is the number of stations carrying load.
	Survivors int `json:"survivors"`
	// Capacity is the admission ceiling: the λ′ at which some surviving
	// station would be pushed to ρ_i ≥ 1 (less the solver's stability
	// margin). Requests estimated beyond it are shed with 503s.
	Capacity float64 `json:"capacity"`
	// Admitted and Shed report degraded-mode admission control: when
	// the requested λ′ exceeded Capacity the solve distributed Admitted
	// and the daemon sheds the Shed remainder probabilistically.
	Admitted float64 `json:"admitted"`
	Shed     float64 `json:"shed"`
	// Ramp, when non-nil, records the capped-weight recovery factors
	// applied after the solve: station i carries Ramp[i]×its optimal
	// share (renormalized), < 1 while it ramps back in after a
	// breaker-driven readmission.
	Ramp []float64 `json:"ramp,omitempty"`
	// SolvedAt stamps the solve (the daemon's injected clock).
	SolvedAt time.Time `json:"solved_at"`
	// Policy names the dispatch policy realizing the plan ("jsq2",
	// "jsq3"… under Config.PolicyJSQ; empty for the static split).
	Policy string `json:"policy,omitempty"`

	picker *dispatch.Probabilistic
	// jsq, when non-nil, overrides the static picker with power-of-d
	// sampled dispatch over the plan's loaded stations (Decide's JSQ
	// branch). The static picker is still built — redirect redraws and
	// repick fall back to it.
	jsq *dispatch.PowerOfD
}

// Pick draws one routing decision from the plan's distribution.
func (p *Plan) Pick(rng *rand.Rand) int {
	return p.picker.Pick(nil, rng)
}

// PickU draws one routing decision using a caller-supplied uniform
// variate u ∈ [0, 1) — the lock-free entry point: the caller owns the
// randomness, so concurrent dispatchers never share generator state.
func (p *Plan) PickU(u float64) int {
	return p.picker.PickU(u)
}

// buildPlan re-solves the paper's optimization over the up-subset and
// freezes the result. Overload is not an error: OptimizeDegraded's
// admission control sheds the minimal rate and the plan records it.
// A non-nil ramp vector applies capped-weight recovery after the
// solve: each station's optimal rate is scaled by ramp[i] and the
// total renormalized back to the admitted λ′, so a just-readmitted
// station re-enters at a fraction of its share while the survivors
// briefly absorb the withheld remainder. Utilizations are rescaled
// proportionally; the transient overshoot on the absorbers is bounded
// by the withheld fraction and decays to zero across the ramp window.
//
// jsqD > 0 additionally builds the power-of-d picker over the solve's
// loaded stations: only stations the plan assigns positive rate are
// sampleable (so breaker exclusions and degraded re-solves gate JSQ
// exactly as they gate the static split), each scored against its net
// generic capacity m_i·s_i/r̄ − λ″_i, ramp-scaled during capped-weight
// recovery so a readmitted station also loses JSQ comparisons until
// its ramp completes.
func buildPlan(g *model.Group, lambda float64, up []bool, opts core.Options, version int64, now time.Time, ramp []float64, jsqD int, depths *depthSet) (*Plan, error) {
	// The plan's JSON view and the breaker bookkeeping are dense, so a
	// sparse solve must still materialize Rates/Utilizations here; the
	// compact allocation is used below for the picker's cumulative
	// table instead.
	opts.CompactResult = false
	res, err := core.OptimizeDegraded(g, lambda, up, opts)
	if err != nil {
		return nil, err
	}
	rates := res.Rates
	utils := res.Utilizations
	rescaled := false
	var rampOut []float64
	if ramp != nil {
		scaled := make([]float64, len(rates))
		sum := 0.0
		for i, r := range rates {
			f := 1.0
			if i < len(ramp) && ramp[i] > 0 && ramp[i] < 1 {
				f = ramp[i]
			}
			scaled[i] = r * f
			sum += scaled[i]
		}
		if sum > 0 && res.Admitted > 0 {
			norm := res.Admitted / sum
			newUtils := make([]float64, len(utils))
			for i := range scaled {
				scaled[i] *= norm
				if i < len(utils) && rates[i] > 0 {
					newUtils[i] = utils[i] * scaled[i] / rates[i]
				}
			}
			rates = scaled
			utils = newUtils
			rampOut = append([]float64(nil), ramp...)
			rescaled = true
		}
	}
	// With a sparse solve and no ramp rescale, the picker's cumulative
	// table covers only the loaded stations. Picks are identical to the
	// dense construction (zero-weight stations have empty intervals
	// either way, and Kahan-summed zero weights don't perturb the
	// normalization), so the gate is purely about when the compact table
	// is worth its index indirection: a fleet large enough to matter and
	// an allocation at most half full.
	var picker *dispatch.Probabilistic
	if sp := res.Sparse; sp != nil && !rescaled && len(rates) >= 64 && 2*sp.NNZ() <= len(rates) {
		picker, err = dispatch.NewProbabilisticSparse(len(rates), sp.Index, sp.Rate)
	} else {
		picker, err = dispatch.NewProbabilistic(rates)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: building picker: %w", err)
	}
	var jsq *dispatch.PowerOfD
	policy := "static"
	if jsqD > 0 {
		idx := make([]int32, 0, len(rates))
		caps := make([]float64, 0, len(rates))
		for i, r := range rates {
			if r <= 0 {
				continue
			}
			c := g.Servers[i].MaxGenericRate(g.TaskSize)
			if c <= 0 {
				continue // no generic headroom: unscorable, never sample it
			}
			if rampOut != nil && i < len(rampOut) && rampOut[i] > 0 && rampOut[i] < 1 {
				c *= rampOut[i]
			}
			idx = append(idx, int32(i))
			caps = append(caps, c)
		}
		jsq, err = dispatch.NewPowerOfD(jsqD, len(rates), idx, caps, depths)
		if err != nil {
			return nil, fmt.Errorf("serve: building jsq picker: %w", err)
		}
		policy = jsq.Name()
	}
	return &Plan{
		Version:         version,
		Lambda:          res.Admitted,
		Rates:           rates,
		Phi:             res.Phi,
		AvgResponseTime: res.AvgResponseTime,
		Utilizations:    utils,
		Up:              res.Up,
		Survivors:       res.Survivors,
		Capacity:        admissionCeiling(g, up, opts),
		Admitted:        res.Admitted,
		Shed:            res.Shed,
		SolvedAt:        now,
		Ramp:            rampOut,
		Policy:          policy,
		picker:          picker,
		jsq:             jsq,
	}, nil
}

// admissionCeiling is the total generic rate beyond which some
// surviving station would be pushed to ρ_i ≥ 1, less the stability
// margin — the same cap core.OptimizeDegraded's admission control
// applies, honoring Options.MaxUtilization when set.
func admissionCeiling(g *model.Group, up []bool, opts core.Options) float64 {
	rhoCap := 1.0
	if opts.MaxUtilization > 0 && opts.MaxUtilization < 1 {
		rhoCap = opts.MaxUtilization
	}
	total := 0.0
	for i, s := range g.Servers {
		if up != nil && i < len(up) && !up[i] {
			continue
		}
		if r := rhoCap*s.Capacity(g.TaskSize) - s.SpecialRate; r > 0 {
			total += r
		}
	}
	return (1 - core.DefaultAdmissionMargin) * total
}
