package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// quietLogger drops log output so tests stay readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer builds a daemon on the paper's example system at half
// saturation, with any overrides applied by mutate.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	g := model.LiExample1Group()
	cfg := Config{
		Group:  g,
		Lambda: 0.5 * g.MaxGenericRate(),
		Logger: quietLogger(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestDispatchEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	n := s.Plan().Survivors

	counts := make([]int, n)
	for i := 0; i < 2000; i++ {
		w := postJSON(t, h, "/v1/dispatch", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("dispatch status %d: %s", w.Code, w.Body)
		}
		var resp DispatchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Station < 0 || resp.Station >= n {
			t.Fatalf("station %d out of range", resp.Station)
		}
		if resp.PlanVersion != 1 {
			t.Fatalf("plan version %d, want 1", resp.PlanVersion)
		}
		counts[resp.Station]++
	}
	// Frequencies must roughly follow the optimal rates.
	plan := s.Plan()
	for i, c := range counts {
		got := float64(c) / 2000
		want := plan.Rates[i] / plan.Lambda
		if math.Abs(got-want) > 0.05 {
			t.Errorf("station %d frequency %.3f, want ≈%.3f", i, got, want)
		}
	}
	// Wrong method on a registered pattern is 405.
	if w := getPath(t, h, "/v1/dispatch"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET dispatch status %d, want 405", w.Code)
	}
}

func TestPlanEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	w := getPath(t, h, "/v1/plan")
	if w.Code != http.StatusOK {
		t.Fatalf("GET plan status %d", w.Code)
	}
	var p1 Plan
	if err := json.Unmarshal(w.Body.Bytes(), &p1); err != nil {
		t.Fatal(err)
	}
	if p1.Version != 1 || p1.Lambda <= 0 || len(p1.Rates) != s.group.N() {
		t.Fatalf("bad initial plan: %+v", p1)
	}

	// Synchronous re-solve at a different rate.
	target := 0.6 * s.group.MaxGenericRate()
	w = postJSON(t, h, "/v1/plan", map[string]float64{"lambda": target})
	if w.Code != http.StatusOK {
		t.Fatalf("POST plan status %d: %s", w.Code, w.Body)
	}
	var p2 Plan
	if err := json.Unmarshal(w.Body.Bytes(), &p2); err != nil {
		t.Fatal(err)
	}
	if p2.Version != 2 || math.Abs(p2.Lambda-target) > 1e-9 || p2.Shed != 0 {
		t.Fatalf("re-solved plan: version %d λ %.6f shed %g", p2.Version, p2.Lambda, p2.Shed)
	}
	if p2.AvgResponseTime <= p1.AvgResponseTime {
		t.Fatalf("heavier load should raise T′: %.6f → %.6f", p1.AvgResponseTime, p2.AvgResponseTime)
	}

	// A rate at/beyond the admission ceiling is rejected, not shed.
	w = postJSON(t, h, "/v1/plan", map[string]float64{"lambda": s.group.MaxGenericRate() * 1.5})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload plan status %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "admission ceiling") {
		t.Fatalf("overload body: %s", w.Body)
	}

	// Malformed body is a client error.
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body status %d, want 400", rec.Code)
	}
}

func TestHealthEndpointsTriggerReoptimization(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	w := getPath(t, h, "/v1/health")
	var hs HealthState
	if err := json.Unmarshal(w.Body.Bytes(), &hs); err != nil {
		t.Fatal(err)
	}
	for i, up := range hs.Up {
		if !up {
			t.Fatalf("station %d down at startup", i)
		}
	}

	if w := postJSON(t, h, "/v1/health", map[string]any{"station": 99, "up": false}); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range station status %d, want 400", w.Code)
	}

	// Mark station 0 down: a background re-solve must drain it.
	if w := postJSON(t, h, "/v1/health", map[string]any{"station": 0, "up": false}); w.Code != http.StatusAccepted {
		t.Fatalf("health post status %d, want 202", w.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Plan().Version < 2 {
		if time.Now().After(deadline) {
			t.Fatal("re-solve after health change never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	plan := s.Plan()
	if plan.Rates[0] != 0 || plan.Survivors != s.group.N()-1 {
		t.Fatalf("down station still loaded: rates %v, survivors %d", plan.Rates, plan.Survivors)
	}
	// The drained station must be unpickable — this is the trailing/
	// zero-weight invariant the dispatch fix guarantees end to end.
	for i := 0; i < 3000; i++ {
		w := postJSON(t, h, "/v1/dispatch", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("dispatch status %d", w.Code)
		}
		var resp DispatchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Station == 0 {
			t.Fatal("dispatched to a down station")
		}
	}

	// Recovery restores the healthy allocation.
	if w := postJSON(t, h, "/v1/health", map[string]any{"station": 0, "up": true}); w.Code != http.StatusAccepted {
		t.Fatalf("recovery post status %d", w.Code)
	}
	for s.Plan().Version < 3 {
		if time.Now().After(deadline) {
			t.Fatal("re-solve after recovery never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Plan().Rates[0]; got <= 0 {
		t.Fatalf("recovered station carries no load: %g", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	for i := 0; i < 5; i++ {
		if w := postJSON(t, h, "/v1/dispatch", nil); w.Code != http.StatusOK {
			t.Fatalf("dispatch status %d", w.Code)
		}
	}
	w := getPath(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"bladed_dispatch_total 5",
		"bladed_plan_version 1",
		"bladed_plan_lambda ",
		"bladed_lambda_estimate ",
		"bladed_request_duration_seconds_count 5",
		`bladed_station_up{station="0"} 1`,
		"bladed_resolve_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestHealthzAndPprofMounted(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	if w := getPath(t, h, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}
	if w := getPath(t, h, "/debug/pprof/"); w.Code != http.StatusOK {
		t.Fatalf("pprof index status %d", w.Code)
	}
}

func TestAdmissionControlShedsOverload(t *testing.T) {
	clk := newFakeClock()
	// A deliberately tiny system: one blade at speed 1, capacity 1.
	g := &model.Group{Servers: []model.Server{{Size: 1, Speed: 1, SpecialRate: 0.2}}, TaskSize: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(c *Config) {
		c.Group = g
		c.Lambda = 0.3
		c.Window = time.Second
		c.Buckets = 10
		c.MinResolveInterval = 0
		c.Now = clk.Now
	})
	h := s.Handler()

	// Drive ~100 requests/s into a station whose ceiling is 0.8/s.
	ok, rejected := 0, 0
	for i := 0; i < 300; i++ {
		w := postJSON(t, h, "/v1/dispatch", nil)
		switch w.Code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
			if ra := w.Header().Get("Retry-After"); ra == "" {
				t.Fatal("503 without Retry-After")
			}
		default:
			t.Fatalf("status %d", w.Code)
		}
		clk.Advance(10 * time.Millisecond)
	}
	if rejected == 0 {
		t.Fatal("no request was shed at 100× overload")
	}
	// With admit ≈ capacity/rate ≈ 0.8 %, the vast majority must be shed.
	if float64(rejected)/float64(ok+rejected) < 0.5 {
		t.Fatalf("shed fraction too low: %d ok, %d rejected", ok, rejected)
	}
	w := getPath(t, h, "/metrics")
	if !strings.Contains(w.Body.String(), `bladed_rejected_total{reason="admission"}`) {
		t.Fatalf("metrics missing admission rejections:\n%s", w.Body)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil group should fail")
	}
	g := model.LiExample1Group()
	if _, err := New(Config{Group: g, Lambda: -1, Logger: quietLogger()}); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := New(Config{Group: g, Lambda: 1, Names: []string{"only-one"}, Logger: quietLogger()}); err == nil {
		t.Error("mismatched names should fail")
	}
	// Startup overload is allowed: the solve sheds and the plan says so.
	s, err := New(Config{Group: g, Lambda: 10 * g.MaxGenericRate(), Logger: quietLogger()})
	if err != nil {
		t.Fatalf("overloaded startup should shed, not fail: %v", err)
	}
	defer s.Close()
	if s.Plan().Shed <= 0 {
		t.Error("overloaded startup plan should record shed load")
	}
}

func TestDispatchConcurrencyLimit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	// Saturate the single slot with a request parked in the handler by
	// filling the semaphore directly (the handler path is too fast to
	// race against reliably).
	s.inflight <- struct{}{}
	w := postJSON(t, s.Handler(), "/v1/dispatch", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when in-flight bound is full", w.Code)
	}
	<-s.inflight
	if w := postJSON(t, s.Handler(), "/v1/dispatch", nil); w.Code != http.StatusOK {
		t.Fatalf("status %d after slot freed", w.Code)
	}
}

func ExampleServer() {
	g := model.LiExample1Group()
	s, _ := New(Config{
		Group:  g,
		Lambda: 0.5 * g.MaxGenericRate(),
		Opts:   core.Options{},
		Logger: quietLogger(),
	})
	defer s.Close()
	fmt.Printf("plan v%d over %d stations\n", s.Plan().Version, len(s.Plan().Rates))
	// Output: plan v1 over 7 stations
}
