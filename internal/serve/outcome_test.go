package serve

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestOutcomeTrackerCountsExactAcrossShards(t *testing.T) {
	tr := newOutcomeTracker(3, 4)
	// Spread records across every shard index; totals must merge exactly.
	for u := uint64(0); u < 40; u++ {
		tr.record(1, OutcomeSuccess, int64(u+1), 0.001, u)
	}
	for u := uint64(0); u < 7; u++ {
		tr.record(1, OutcomeError, int64(u+100), 0.001, u)
	}
	tr.record(1, OutcomeTimeout, 200, 0.001, 3)
	suc, errs, tmo := tr.totals(1)
	if suc != 40 || errs != 7 || tmo != 1 {
		t.Fatalf("totals = %d/%d/%d, want 40/7/1", suc, errs, tmo)
	}
	// Other stations are untouched.
	if suc, errs, tmo := tr.totals(0); suc+errs+tmo != 0 {
		t.Fatalf("station 0 totals = %d/%d/%d, want zeros", suc, errs, tmo)
	}
	// Out-of-range and unknown-kind records are dropped, not panics.
	tr.record(-1, OutcomeSuccess, 1, 0, 0)
	tr.record(3, OutcomeSuccess, 1, 0, 0)
	tr.record(0, numOutcomes, 1, 0, 0)
	if suc, errs, tmo := tr.totals(0); suc+errs+tmo != 0 {
		t.Fatalf("invalid records leaked into totals: %d/%d/%d", suc, errs, tmo)
	}
}

func TestOutcomeTrackerErrorRateEWMA(t *testing.T) {
	tr := newOutcomeTracker(1, 1)
	if got := tr.errorRate(0); got != 0 {
		t.Fatalf("initial error rate %g, want 0", got)
	}
	// The error rate never seeds: the first failure blends from zero.
	tr.record(0, OutcomeError, 1, 0.001, 0)
	if got := tr.errorRate(0); math.Abs(got-ewmaErrAlpha) > 1e-12 {
		t.Fatalf("error rate after one failure %g, want %g", got, ewmaErrAlpha)
	}
	tr.record(0, OutcomeSuccess, 2, 0.001, 0)
	want := (1 - ewmaErrAlpha) * ewmaErrAlpha
	if got := tr.errorRate(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("error rate after failure+success %g, want %g", got, want)
	}
	// A long failure run converges toward 1 — the trip regime.
	for i := 0; i < 50; i++ {
		tr.record(0, OutcomeTimeout, int64(10+i), 0.001, 0)
	}
	if got := tr.errorRate(0); got < 0.99 {
		t.Fatalf("error rate after 50 failures %g, want ≈1", got)
	}
	tr.resetError(0)
	if got := tr.errorRate(0); got != 0 {
		t.Fatalf("error rate after reset %g, want 0", got)
	}
}

func TestOutcomeTrackerLatencyMeanSeeds(t *testing.T) {
	tr := newOutcomeTracker(1, 1)
	tr.record(0, OutcomeSuccess, 1, 0.050, 0)
	if got := tr.latencyMean(0); math.Abs(got-0.050) > 1e-12 {
		t.Fatalf("latency mean seeds at first sample: %g, want 0.050", got)
	}
	tr.record(0, OutcomeSuccess, 2, 0.150, 0)
	want := ewmaLatAlpha*0.150 + (1-ewmaLatAlpha)*0.050
	if got := tr.latencyMean(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("latency mean %g, want %g", got, want)
	}
	// Negative latency means "unknown" and is skipped.
	tr.record(0, OutcomeSuccess, 3, -1, 0)
	if got := tr.latencyMean(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("unknown latency moved the mean: %g, want %g", got, want)
	}
}

func TestSuspicionMeasuresSilence(t *testing.T) {
	tr := newOutcomeTracker(1, 1)
	base := time.Unix(1_700_000_000, 0).UnixNano()
	// No completions yet: suspicion must stay zero no matter how late.
	if got := tr.suspicion(0, base+int64(time.Hour)); got != 0 {
		t.Fatalf("suspicion before any completion %g, want 0", got)
	}
	// Establish a 10ms completion cadence.
	gap := int64(10 * time.Millisecond)
	at := base
	for i := 0; i < 5; i++ {
		tr.record(0, OutcomeSuccess, at, 0.001, 0)
		at += gap
	}
	last := at - gap
	// One mean gap of silence ≈ log10(e); a hundred ≈ 43.
	one := tr.suspicion(0, last+gap)
	if math.Abs(one-log10E) > 0.01 {
		t.Fatalf("suspicion after one mean gap %g, want ≈%g", one, log10E)
	}
	hundred := tr.suspicion(0, last+100*gap)
	if math.Abs(hundred-100*log10E) > 1 {
		t.Fatalf("suspicion after 100 mean gaps %g, want ≈%g", hundred, 100*log10E)
	}
	// touch restamps the clock, so suspicion restarts from zero silence.
	tr.touch(0, last+100*gap)
	if got := tr.suspicion(0, last+101*gap); got > 2*log10E {
		t.Fatalf("suspicion after touch %g, want ≈%g", got, log10E)
	}
}

func TestEwmaUpdateSeedSemantics(t *testing.T) {
	var a atomic.Uint64
	ewmaUpdate(&a, 4.0, 0.5, true)
	if got := math.Float64frombits(a.Load()); got != 4.0 {
		t.Fatalf("seeded first sample %g, want 4", got)
	}
	ewmaUpdate(&a, 8.0, 0.5, true)
	if got := math.Float64frombits(a.Load()); got != 6.0 {
		t.Fatalf("second sample %g, want 6", got)
	}
	var b atomic.Uint64
	ewmaUpdate(&b, 4.0, 0.5, false)
	if got := math.Float64frombits(b.Load()); got != 2.0 {
		t.Fatalf("unseeded first sample %g, want 2 (blend from zero)", got)
	}
}
