package serve

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// fleetGroup builds a clustered heterogeneous fleet large enough to
// trip buildPlan's sparse-picker gate.
func fleetGroup(n int) *model.Group {
	servers := make([]model.Server, n)
	for i := range servers {
		k := i % 16
		s := model.Server{Size: 2 + 2*(k%8), Speed: 1.7 - 0.1*float64(k%7)}
		s.SpecialRate = 0.3 * float64(s.Size) * s.Speed
		servers[i] = s
	}
	return &model.Group{Servers: servers, TaskSize: 1.0}
}

// TestBuildPlanSparsePickerMatchesDense pins that a sparse solve
// produces the same plan as a dense one — rates, T′, capacity — and
// that its compact picker routes the bit-identical station for every
// uniform variate.
func TestBuildPlanSparsePickerMatchesDense(t *testing.T) {
	g := fleetGroup(256)
	// Light load on a speed-graded fleet: most classes stay unloaded, so
	// the sparse gate (NNZ ≤ n/2) is exercised for real.
	for i := range g.Servers {
		g.Servers[i].Speed = 0.2 + 0.05*float64(i%32)
		g.Servers[i].SpecialRate = 0.2 * g.Servers[i].Capacity(g.TaskSize)
	}
	lambda := 0.05 * g.MaxGenericRate()
	now := time.Unix(1700000000, 0)
	densePlan, err := buildPlan(g, lambda, nil, core.Options{}, 1, now, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sparsePlan, err := buildPlan(g, lambda, nil, core.Options{Sparse: true}, 1, now, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range densePlan.Rates {
		if math.Float64bits(densePlan.Rates[i]) != math.Float64bits(sparsePlan.Rates[i]) {
			t.Fatalf("rates differ at station %d: %g vs %g", i, densePlan.Rates[i], sparsePlan.Rates[i])
		}
	}
	if densePlan.AvgResponseTime != sparsePlan.AvgResponseTime { //bladelint:allow floateq -- bit-identity pin, not a tolerance check
		t.Errorf("T′ differs: %g vs %g", densePlan.AvgResponseTime, sparsePlan.AvgResponseTime)
	}
	if densePlan.Capacity != sparsePlan.Capacity { //bladelint:allow floateq -- bit-identity pin, not a tolerance check
		t.Errorf("capacity differs: %g vs %g", densePlan.Capacity, sparsePlan.Capacity)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50000; trial++ {
		u := rng.Float64()
		if got, want := sparsePlan.PickU(u), densePlan.PickU(u); got != want {
			t.Fatalf("u=%v: sparse plan picked %d, dense plan picked %d", u, got, want)
		}
	}
}

// TestBuildPlanSparseWithRampFallsBackDense checks the ramp path: a
// capped-weight recovery rescales the rates after the solve, so the
// picker must be rebuilt from the rescaled dense vector, not the
// pre-ramp compact allocation.
func TestBuildPlanSparseWithRampFallsBackDense(t *testing.T) {
	g := fleetGroup(128)
	lambda := 0.4 * g.MaxGenericRate()
	ramp := make([]float64, g.N())
	for i := range ramp {
		ramp[i] = 1
	}
	ramp[0] = 0.25 // station 0 ramping back in at a quarter share
	now := time.Unix(1700000000, 0)
	plan, err := buildPlan(g, lambda, nil, core.Options{Sparse: true}, 1, now, ramp, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ramp == nil {
		t.Fatal("ramp vector not recorded")
	}
	// At 0.4×saturation every station carries load; the ramped station's
	// share must be strictly below its unramped optimum.
	unramped, err := buildPlan(g, lambda, nil, core.Options{Sparse: true}, 1, now, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rates[0] >= unramped.Rates[0] {
		t.Errorf("ramped station 0 carries %g, unramped %g", plan.Rates[0], unramped.Rates[0])
	}
	// The picker must realize the ramped distribution: station 0's pick
	// frequency over a fixed variate grid should be well below its
	// unramped frequency.
	picks := func(p *Plan) int {
		count := 0
		for k := 0; k < 100000; k++ {
			if p.PickU((float64(k)+0.5)/100000) == 0 {
				count++
			}
		}
		return count
	}
	if got, want := picks(plan), picks(unramped); got >= want {
		t.Errorf("ramped plan picked station 0 %d times, unramped %d", got, want)
	}
}
