// Package serve is the online serving layer of the system: a
// long-running daemon ("bladed") that solves the paper's optimal load
// distribution once at startup and then serves routing decisions from
// the resulting probabilistic plan over HTTP.
//
// The serving loop closes the control cycle the batch CLIs cannot: a
// windowed estimator tracks the observed generic arrival rate λ′, and
// when it drifts beyond a configurable threshold — or an operator
// marks a station down — a background goroutine re-solves the
// optimization with a warm-started Lagrange bracket
// (core.Options.WarmPhi, via core.OptimizeDegraded for
// surviving-subset solves) and atomically swaps the live plan.
// In-flight requests keep the plan snapshot they loaded, so a swap
// never drops or re-routes work already being decided.
//
// Production plumbing: admission control sheds with 503 when the
// observed rate would push a surviving station to ρ_i ≥ 1, in-flight
// concurrency is bounded, every API request carries a deadline,
// operational counters export in Prometheus text format (backed by
// internal/metrics, no external deps), and /debug/pprof is mounted.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	randv2 "math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/model"
)

// Config describes a daemon instance.
type Config struct {
	// Group is the blade-server cluster to serve. Required.
	Group *model.Group
	// Lambda is the planned total generic rate λ′ the startup solve
	// uses. Required (positive).
	Lambda float64
	// Opts configures the optimizer (discipline, ε, utilization cap…).
	Opts core.Options
	// Names optionally labels stations (from the cluster spec); used in
	// dispatch responses for operator-facing clarity.
	Names []string
	// DriftThreshold is the relative deviation |λ̂−λ_plan|/λ_plan that
	// triggers a background re-solve once the estimator is warm.
	// Default 0.2.
	DriftThreshold float64
	// Window is the arrival-rate estimation window. Default 30s.
	Window time.Duration
	// Buckets subdivides the window. Default 10.
	Buckets int
	// MinResolveInterval rate-limits drift-triggered re-solves (health
	// events bypass it). Default 1s.
	MinResolveInterval time.Duration
	// MaxInFlight bounds concurrently served API requests; excess gets
	// 503. Default 256.
	MaxInFlight int
	// RequestTimeout bounds each API request. Default 5s.
	RequestTimeout time.Duration
	// Now injects a clock for deterministic tests. Default time.Now.
	Now func() time.Time
	// Logger receives structured operational logs. Default slog.Default().
	Logger *slog.Logger
	// Seed seeds the dispatch RNG (0 means 1, for determinism).
	Seed int64
	// DeterministicRNG serializes all dispatch draws through a single
	// seeded math/rand generator (the pre-sharding behaviour), so a
	// fixed Seed reproduces the exact routing sequence. The default is
	// lock-free per-shard SplitMix64 states, which are seeded but not
	// sequence-reproducible under concurrency.
	DeterministicRNG bool
	// SerializedHotPath restores the fully mutex-serialized request
	// path — locked estimator, locked metrics, deterministic RNG. It is
	// the contention baseline BenchmarkDispatchParallelMutex measures;
	// production use should leave it off.
	SerializedHotPath bool
	// Policy selects the dispatch policy: the paper-optimal static
	// probabilistic split (default) or power-of-d sampled least-depth
	// routing (PolicyJSQ).
	Policy Policy
	// SampleD is the number of stations PolicyJSQ samples per request
	// (dispatch.MinSampleD–MaxSampleD). Default 2 — JSQ(2), the
	// power-of-two choices policy. Ignored under PolicyStatic.
	SampleD int
	// BatchMax, when > 1, enables the request coalescer: concurrent
	// single-shot dispatches are grouped into DecideBatch calls of up
	// to this size, amortizing the per-request hot-path overhead. A
	// request with no concurrent peers always takes the single-shot
	// path immediately (no added latency at low QPS). Router mode only:
	// incompatible with Backend.
	BatchMax int
	// BatchLinger bounds how long a coalescing leader waits for peers
	// to join its batch. Default 100µs. Ignored unless BatchMax > 1.
	BatchLinger time.Duration
	// Backend, when set, makes Server.Dispatch (and POST /v1/dispatch)
	// execute each admitted request against its routed station through
	// the guard wrapper instead of only returning a routing decision.
	Backend Backend
	// Guard tunes the backend dispatch wrapper (timeouts, retry
	// budget, hedging). Ignored when Backend is nil.
	Guard GuardConfig
	// Breaker tunes the per-station circuit breakers and the health
	// scan that drives automatic shed/readmit re-solves.
	Breaker BreakerConfig
}

// Policy selects how Decide turns a plan into a station pick.
type Policy int

const (
	// PolicyStatic routes by the plan's optimal probabilistic split,
	// independent of system state — exactly the paper's model.
	PolicyStatic Policy = iota
	// PolicyJSQ samples Config.SampleD candidate stations per request
	// and routes to the least (depth+1)/capacity — power-of-d choices
	// generalized to heterogeneous stations. The static plan still
	// decides WHICH stations are candidates (only stations the solve
	// loaded are sampleable) while the in-flight depth counters decide
	// among them, so breaker exclusions, ramps and admission control
	// compose unchanged.
	PolicyJSQ
)

func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyJSQ:
		return "jsq"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

func (c *Config) withDefaults() {
	if c.Policy == PolicyJSQ && c.SampleD == 0 {
		c.SampleD = dispatch.MinSampleD
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.2
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinResolveInterval <= 0 {
		c.MinResolveInterval = time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchMax > 1 && c.BatchLinger <= 0 {
		c.BatchLinger = 100 * time.Microsecond
	}
	c.Guard.withDefaults()
	c.Breaker.withDefaults()
}

// Server is the daemon state. Create with New, mount Handler on an
// http.Server, and Close when draining is complete.
type Server struct {
	cfg   Config
	group *model.Group
	log   *slog.Logger
	now   func() time.Time
	est   estimator
	m     serverMetrics
	rnd   dispatchRand
	// fastEst/fastM are the concrete lock-free implementations behind
	// est/m on the default path (nil when SerializedHotPath), letting
	// the dispatch hot path call their shard-hinted entry points
	// without interface indirection.
	fastEst *RateEstimator
	fastM   *shardedMetrics
	fastRnd *shardedRNG // nil under DeterministicRNG/SerializedHotPath

	// depths/jsqD are the PolicyJSQ state: per-station in-flight depth
	// counters the power-of-d score reads, and the sample count d.
	// Both zero-valued under PolicyStatic.
	depths *depthSet
	jsqD   int

	plan atomic.Pointer[Plan]

	// Failure-detection state: per-station outcome statistics, the
	// circuit breakers they drive, and the guarded-dispatch runtime.
	tracker  *outcomeTracker
	breakers *breakerSet
	guard    guardState
	backend  Backend
	// coal groups concurrent single-shot dispatches into DecideBatch
	// calls (nil unless Config.BatchMax > 1; router mode only).
	coal    *coalescer
	scanMu  sync.Mutex // serializes healthScan passes; guards scanVol
	scanVol []int64    // outcome volume anchor per station (since last transition)

	mu          sync.Mutex // guards up, lastResolve
	up          []bool
	lastResolve time.Time

	solveMu   sync.Mutex // serializes background and synchronous solves
	resolveCh chan resolveReq
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	inflight chan struct{}
}

type resolveReq struct {
	lambda float64 // ≤ 0 means "current estimate, else current plan λ"
	reason string
}

// New validates the configuration, runs the startup solve, and starts
// the background re-optimization goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Group == nil {
		return nil, fmt.Errorf("serve: nil group")
	}
	if err := cfg.Group.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(cfg.Lambda) || cfg.Lambda <= 0 {
		return nil, fmt.Errorf("serve: planned rate λ′=%g must be positive", cfg.Lambda)
	}
	if cfg.Names != nil && len(cfg.Names) != cfg.Group.N() {
		return nil, fmt.Errorf("serve: %d names for %d stations", len(cfg.Names), cfg.Group.N())
	}
	if cfg.Policy != PolicyStatic && cfg.Policy != PolicyJSQ {
		return nil, fmt.Errorf("serve: unknown dispatch policy %v", cfg.Policy)
	}
	cfg.withDefaults()
	if cfg.Policy == PolicyJSQ &&
		(cfg.SampleD < dispatch.MinSampleD || cfg.SampleD > dispatch.MaxSampleD) {
		return nil, fmt.Errorf("serve: SampleD %d outside [%d, %d]",
			cfg.SampleD, dispatch.MinSampleD, dispatch.MaxSampleD)
	}
	if cfg.BatchMax < 0 {
		return nil, fmt.Errorf("serve: BatchMax %d must be non-negative", cfg.BatchMax)
	}
	if cfg.BatchMax > 1 && cfg.Backend != nil {
		// The coalescer batches ROUTING; a Backend makes each dispatch an
		// executed request whose latency budget is its own, so batching
		// would couple unrelated requests' deadlines.
		return nil, fmt.Errorf("serve: BatchMax requires router mode (no Backend)")
	}
	if cfg.BatchMax > maxBatchRequest {
		return nil, fmt.Errorf("serve: BatchMax %d exceeds limit %d", cfg.BatchMax, maxBatchRequest)
	}
	s := &Server{
		cfg:       cfg,
		group:     cfg.Group.Clone(),
		log:       cfg.Logger,
		now:       cfg.Now,
		backend:   cfg.Backend,
		up:        make([]bool, cfg.Group.N()),
		scanVol:   make([]int64, cfg.Group.N()),
		resolveCh: make(chan resolveReq, 1),
		done:      make(chan struct{}),
		inflight:  make(chan struct{}, cfg.MaxInFlight),
	}
	s.tracker = newOutcomeTracker(cfg.Group.N(), runtime.GOMAXPROCS(0))
	s.breakers = newBreakerSet(cfg.Group.N(), cfg.Breaker)
	s.guard.init(cfg.Guard)
	if cfg.Policy == PolicyJSQ {
		s.depths = newDepthSet(cfg.Group.N())
		s.jsqD = cfg.SampleD
	}
	if cfg.BatchMax > 1 {
		s.coal = &coalescer{s: s, max: cfg.BatchMax, linger: cfg.BatchLinger}
	}
	if cfg.SerializedHotPath {
		s.est = NewLockedRateEstimator(cfg.Window, cfg.Buckets, cfg.Now)
		s.m = newLockedServerMetrics(cfg.Group.N())
		s.rnd = newLockedRand(cfg.Seed)
	} else {
		s.fastEst = NewRateEstimator(cfg.Window, cfg.Buckets, cfg.Now)
		s.fastM = newServerMetrics(cfg.Group.N())
		s.est = s.fastEst
		s.m = s.fastM
		if cfg.DeterministicRNG {
			s.rnd = newLockedRand(cfg.Seed)
		} else {
			s.fastRnd = newShardedRNG(cfg.Seed)
			s.rnd = s.fastRnd
		}
	}
	for i := range s.up {
		s.up[i] = true
	}
	plan, err := buildPlan(s.group, cfg.Lambda, nil, cfg.Opts, 1, s.now(), nil, s.jsqD, s.depths)
	if err != nil {
		return nil, fmt.Errorf("serve: startup solve: %w", err)
	}
	s.plan.Store(plan)
	if plan.Shed > 0 {
		s.log.Warn("startup plan is overloaded; shedding",
			"lambda", cfg.Lambda, "admitted", plan.Admitted, "shed", plan.Shed)
	}
	s.log.Info("startup plan solved",
		"lambda", plan.Lambda, "avg_response_time", plan.AvgResponseTime,
		"capacity", plan.Capacity, "stations", s.group.N())
	s.wg.Add(1)
	go s.resolver()
	s.wg.Add(1)
	go s.scanner()
	return s, nil
}

// Close stops the background resolver. Safe to call more than once;
// call after the HTTP server has drained.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Plan returns the live plan snapshot.
func (s *Server) Plan() *Plan { return s.plan.Load() }

// Estimate returns the current observed arrival rate and whether the
// estimator has seen a full window.
func (s *Server) Estimate() (rate float64, warm bool) {
	return s.est.Rate(), s.est.Warm()
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/dispatch   → routing decision from the live plan (and
//	                      guarded execution when a Backend is set)
//	POST /v1/dispatch/batch
//	                    → {"count": N} routing decisions in one batched
//	                      hot-path pass (router mode)
//	GET  /v1/plan       → live plan
//	POST /v1/plan       → synchronous re-solve (optional {"lambda": x})
//	GET  /v1/health     → effective availability, per-station breaker
//	                      state and outcome statistics
//	POST /v1/health     → operator availability override (see below)
//	POST /v1/observe    → report an externally executed outcome
//	GET  /metrics       → Prometheus text exposition
//	GET  /healthz       → liveness probe
//	     /debug/pprof/* → runtime profiles
//
// Operator overrides versus breaker transitions: POST /v1/health
// {"up": false} PINS the station down — the circuit breaker is frozen
// and may not readmit it; only an operator {"up": true} lifts the
// pin. POST /v1/health {"up": true} also force-resets the station's
// breaker to closed at full weight (no recovery ramp) and rearms its
// open-interval backoff: the operator's word overrides any failure
// history the detector has accumulated. Breaker-driven transitions
// never touch the operator vector.
//
// The /v1 API is bounded by MaxInFlight and RequestTimeout.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/dispatch", s.handleDispatch)
	api.HandleFunc("POST /v1/dispatch/batch", s.handleDispatchBatch)
	api.HandleFunc("GET /v1/plan", s.handleGetPlan)
	api.HandleFunc("POST /v1/plan", s.handlePostPlan)
	api.HandleFunc("GET /v1/health", s.handleGetHealth)
	api.HandleFunc("POST /v1/health", s.handlePostHealth)
	api.HandleFunc("POST /v1/observe", s.handleObserve)
	bounded := s.limitInFlight(http.TimeoutHandler(api, s.cfg.RequestTimeout,
		`{"error":"request timed out"}`))

	root := http.NewServeMux()
	root.Handle("/v1/", bounded)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return root
}

// limitInFlight bounds concurrency with a semaphore; a full daemon
// answers 503 immediately instead of queueing unboundedly.
func (s *Server) limitInFlight(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			h.ServeHTTP(w, r)
		default:
			s.m.reject(rejectConcurrency)
			writeError(w, http.StatusServiceUnavailable, "too many in-flight requests")
		}
	})
}

// DispatchResponse is the body of a successful dispatch decision.
type DispatchResponse struct {
	// Station is the 0-based station index the task should run on.
	Station int `json:"station"`
	// Name labels the station when the spec provided names.
	Name string `json:"name,omitempty"`
	// PlanVersion identifies the plan that made the decision.
	PlanVersion int64 `json:"plan_version"`
	// Attempts is how many guarded backend attempts ran (0 when the
	// daemon routes without executing).
	Attempts int `json:"attempts,omitempty"`
	// Trial marks a half-open breaker probe.
	Trial bool `json:"trial,omitempty"`
	// Hedged reports that a racing second attempt was launched.
	Hedged bool `json:"hedged,omitempty"`
}

// Decision is the outcome of one pass through the dispatch hot path.
type Decision struct {
	// Station is the routed station index (-1 when Rejected).
	Station int
	// Plan is the plan snapshot the decision worked from.
	Plan *Plan
	// Rate is the observed arrival-rate estimate at decision time.
	Rate float64
	// Rejected reports a probabilistic admission-control shed; Reason
	// then names the cause ("admission" or "shed").
	Rejected bool
	Reason   string
	// Trial marks a half-open breaker probe: the request was diverted
	// to a recovering station to test it, not routed by plan weight.
	Trial bool
}

// Decide runs the dispatch hot path once — observe the arrival,
// admission-check against the live plan, pick a station — and records
// the decision in the operational metrics. It is the core of
// POST /v1/dispatch, exported so load harnesses and benchmarks can
// drive it without HTTP framing. The default path is lock-free;
// Config.SerializedHotPath selects the original mutex-serialized flow.
func (s *Server) Decide() Decision {
	if s.fastEst == nil {
		return s.decideSerialized()
	}
	start := s.now()
	// One random word per request feeds every randomized step through
	// disjoint bit slices (layout in randbits.go); the static station
	// pick draws from s.rnd so DeterministicRNG keeps its sequence.
	u := randv2.Uint64()
	s.fastEst.observeAtShard(start, 1, u)
	plan := s.plan.Load()
	rate := s.fastEst.RateAt(start)
	warm := s.fastEst.WarmAt(start)

	admit, reason := s.admission(plan, rate, warm)
	if admit < 1 && s.rnd.Float64() >= admit {
		s.fastM.reject(reason)
		return Decision{Station: -1, Plan: plan, Rate: rate,
			Rejected: true, Reason: rejectReasonNames[reason]}
	}
	s.driftCheck(plan, rate, warm)

	station, trial := s.trialPick(u)
	if !trial {
		if plan.jsq != nil {
			station = plan.jsq.PickU(s.jsqBits(u))
		} else {
			var draw float64
			if s.fastRnd != nil {
				draw = s.fastRnd.float64U(u >> randPickShardShift)
			} else {
				draw = s.rnd.Float64() // DeterministicRNG keeps the pinned sequence
			}
			station = plan.PickU(draw)
		}
		if s.breakers.rejects(station) {
			station = s.redirect(plan, station, u)
		}
	}
	if s.depths != nil && s.backend == nil {
		// Router-only JSQ: the route itself is the attempt start; the
		// matching decrement is the caller's ReportOutcome. With a
		// Backend the guard brackets each real attempt instead.
		s.depths.inc(station)
	}
	s.fastM.countDispatch(station)
	// Latency is measured on a random 1-in-p2SampleStride subset: the
	// second clock read is the costliest step left on this path, so the
	// sample gates the read itself, not just the accumulator update.
	// The metrics shard pick takes a fresh word — this branch already
	// pays a clock read, and u's former shard bits now feed the JSQ
	// samples (randbits.go).
	if u>>randLatGateShift&(p2SampleStride-1) == 0 {
		s.fastM.observeLatency(s.now().Sub(start).Seconds(), randv2.Uint64())
	}
	return Decision{Station: station, Plan: plan, Rate: rate, Trial: trial}
}

// trialPick diverts a TrialFraction share of dispatches to the
// half-open station currently on probation (if any). The trial coin
// consumes randomness only while a trial station is posted, so the
// DeterministicRNG draw sequence is untouched whenever every breaker
// is closed — the contract the cross-version determinism test pins.
func (s *Server) trialPick(u uint64) (int, bool) {
	ts := s.breakers.trial.Load()
	if ts < 0 {
		return -1, false
	}
	if s.fastRnd != nil {
		if u>>randTrialShift&(1<<randTrialBits-1) >= s.breakers.trialBits {
			return -1, false
		}
	} else if s.rnd.Float64() >= s.breakers.trialFraction {
		return -1, false
	}
	station := int(ts)
	b := &s.breakers.stations[station]
	// Re-check under the coin: the scan may have moved the breaker on
	// since the trial pointer was loaded.
	if b.state.Load() != breakerHalfOpen || b.pinned.Load() {
		return -1, false
	}
	s.breakers.trials.Add(1)
	return station, true
}

// redirect re-draws the station pick once when the chosen station's
// breaker rejects ordinary traffic — the transient window between a
// trip and the shedding re-solve landing. One redraw moves most of
// the misrouted mass; if the redraw is also rejected the original
// pick stands (the plan swap is at most a scan interval away).
func (s *Server) redirect(plan *Plan, station int, u uint64) int {
	var draw float64
	if s.fastRnd != nil {
		// Reusing the shard-pick slice is sound: the slice only selects
		// which SplitMix64 shard advances; the redraw's variate comes
		// from the shard's state walk, independent of the first draw.
		draw = s.fastRnd.float64U(u >> randPickShardShift)
	} else {
		draw = s.rnd.Float64()
	}
	if alt := plan.PickU(draw); !s.breakers.rejects(alt) {
		s.breakers.redirects.Add(1)
		return alt
	}
	return station
}

// jsqBits supplies the random word the power-of-d picker consumes its
// d station samples from. d ≤ 2 fits the per-request word's sample
// slice (randbits.go); d > 2 needs 16 more bits than the word has
// spare and draws a dedicated one. Under DeterministicRNG the samples
// come from the seeded serialized generator so a fixed seed reproduces
// the exact pick sequence (pinned by TestJSQDeterministicSequence).
func (s *Server) jsqBits(u uint64) uint64 {
	if s.fastRnd == nil {
		return s.rnd.Uint64()
	}
	if s.jsqD <= 2 {
		return u >> randSampleShift
	}
	return randv2.Uint64()
}

// decideSerialized is the dispatch flow exactly as the pre-sharding
// server ran it — per-touch clock reads inside the locked estimator,
// two warmth checks, every counter behind one mutex — kept as the
// measurable contention baseline for the lock-free path.
func (s *Server) decideSerialized() Decision {
	start := s.now()
	s.est.Observe(1)
	plan := s.plan.Load()
	rate := s.est.Rate()

	admit, reason := s.admission(plan, rate, s.est.Warm())
	if admit < 1 && s.rnd.Float64() >= admit {
		s.m.reject(reason)
		return Decision{Station: -1, Plan: plan, Rate: rate,
			Rejected: true, Reason: rejectReasonNames[reason]}
	}
	s.driftCheck(plan, rate, s.est.Warm())

	// With fastRnd nil, trialPick, jsqBits and redirect draw from
	// s.rnd, so the serialized path shares the deterministic sequence.
	station, trial := s.trialPick(0)
	if !trial {
		if plan.jsq != nil {
			station = plan.jsq.PickU(s.jsqBits(0))
		} else {
			station = plan.PickU(s.rnd.Float64())
		}
		if s.breakers.rejects(station) {
			station = s.redirect(plan, station, 0)
		}
	}
	if s.depths != nil && s.backend == nil {
		s.depths.inc(station)
	}
	s.m.observeDispatch(station, s.now().Sub(start).Seconds())
	return Decision{Station: station, Plan: plan, Rate: rate, Trial: trial}
}

// admission returns the admissible fraction of the stream and the
// rejection reason for the shed remainder. Overload is shed
// probabilistically so the admitted sub-stream stays a thinned Poisson
// process matching the plan's assumptions: the surviving stations can
// absorb only Capacity before some ρ_i reaches 1.
func (s *Server) admission(plan *Plan, rate float64, warm bool) (float64, rejectReason) {
	if warm && rate > 0 && rate >= plan.Capacity {
		s.maybeResolve(rate, "overload", false)
		return plan.Capacity / rate, rejectAdmission
	}
	if plan.Shed > 0 && plan.Admitted+plan.Shed > 0 {
		return plan.Admitted / (plan.Admitted + plan.Shed), rejectShed
	}
	return 1, rejectAdmission
}

// driftCheck queues a re-solve when the observed rate has drifted past
// the threshold from the plan's λ′.
func (s *Server) driftCheck(plan *Plan, rate float64, warm bool) {
	if warm && rate > 0 && plan.Lambda > 0 {
		if drift := math.Abs(rate-plan.Lambda) / plan.Lambda; drift > s.cfg.DriftThreshold {
			s.maybeResolve(rate, "drift", false)
		}
	}
}

func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	res := s.Dispatch(r.Context())
	if res.Rejected {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(res.Decision)))
		writeError(w, http.StatusServiceUnavailable,
			"overloaded: observed rate %.4g versus capacity %.4g", res.Rate, res.Plan.Capacity)
		return
	}
	if res.Err != nil {
		writeError(w, http.StatusBadGateway,
			"backend failed after %d attempts: %v", res.Attempts, res.Err)
		return
	}
	resp := DispatchResponse{
		Station: res.Station, PlanVersion: res.Plan.Version,
		Attempts: res.Attempts, Trial: res.Trial, Hedged: res.Hedged,
	}
	if s.cfg.Names != nil {
		resp.Name = s.cfg.Names[res.Station]
	}
	writeJSON(w, http.StatusOK, resp)
}

// retryAfterSeconds derives the Retry-After hint on a 503 shed. In
// rough order of how actionable the signal is: an overloaded
// estimator suggests waiting for the excess fraction of the window to
// drain; an open breaker suggests waiting until its soonest probe;
// otherwise the soonest the plan itself may change
// (MinResolveInterval).
func (s *Server) retryAfterSeconds(d Decision) int {
	window := s.cfg.Window.Seconds()
	if d.Plan != nil && d.Plan.Capacity > 0 && d.Rate > d.Plan.Capacity {
		// The windowed estimate decays toward capacity only as the
		// excess arrivals age out: the excess fraction of the window is
		// the natural horizon.
		secs := int(math.Ceil((1 - d.Plan.Capacity/d.Rate) * window))
		return clampInt(secs, 1, int(math.Ceil(window)))
	}
	if rem := s.minOpenRemaining(); rem > 0 {
		return clampInt(int(math.Ceil(rem.Seconds())), 1, int(math.Ceil(window)))
	}
	return clampInt(int(math.Ceil(s.cfg.MinResolveInterval.Seconds())), 1, int(math.Ceil(window)))
}

// minOpenRemaining returns the shortest time until any open breaker
// may go half-open (0 when no breaker is open).
func (s *Server) minOpenRemaining() time.Duration {
	nowNs := s.now().UnixNano()
	var best int64
	for i := range s.breakers.stations {
		st := &s.breakers.stations[i]
		if st.state.Load() != breakerOpen {
			continue
		}
		if rem := st.openUntil.Load() - nowNs; rem > 0 && (best == 0 || rem < best) {
			best = rem
		}
	}
	return time.Duration(best)
}

func clampInt(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (s *Server) handleGetPlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.plan.Load())
}

func (s *Server) handlePostPlan(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Lambda float64 `json:"lambda"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if math.IsNaN(req.Lambda) || math.IsInf(req.Lambda, 0) || req.Lambda < 0 {
		writeError(w, http.StatusBadRequest, "lambda %g must be a finite non-negative rate", req.Lambda)
		return
	}
	if req.Lambda > 0 {
		// An explicitly requested rate at or beyond the ceiling would
		// push a surviving station to ρ_i ≥ 1: reject instead of
		// silently shedding what the operator asked for.
		s.mu.Lock()
		up := append([]bool(nil), s.up...)
		s.mu.Unlock()
		if ceiling := admissionCeiling(s.group, up, s.cfg.Opts); req.Lambda >= ceiling {
			s.m.reject(rejectAdmission)
			writeError(w, http.StatusServiceUnavailable,
				"requested rate %.6g at or beyond admission ceiling %.6g", req.Lambda, ceiling)
			return
		}
	}
	plan, err := s.doResolve(resolveReq{lambda: req.Lambda, reason: "api"})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "re-solve failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// HealthState is the body of GET /v1/health. Up is the EFFECTIVE
// availability vector — a station counts as up only when the operator
// has not downed it and its circuit breaker is closed.
type HealthState struct {
	Up       []bool          `json:"up"`
	Estimate float64         `json:"estimate"`
	Warm     bool            `json:"warm"`
	Stations []StationHealth `json:"stations,omitempty"`
}

// StationHealth is the per-station detail block of GET /v1/health.
type StationHealth struct {
	Station int    `json:"station"`
	Name    string `json:"name,omitempty"`
	// Up is the effective availability (operator ∧ breaker closed).
	Up bool `json:"up"`
	// OperatorPinned reports an operator "down" pin: the breaker may
	// not readmit the station until an operator "up" lifts it.
	OperatorPinned bool `json:"operator_pinned,omitempty"`
	// Breaker is the circuit state: "closed", "half-open" or "open".
	Breaker string `json:"breaker"`
	Trips   int64  `json:"trips,omitempty"`
	// ErrorRate and Suspicion are the failure detector's live EWMA
	// failure fraction and phi-accrual silence score.
	ErrorRate float64 `json:"error_rate"`
	Suspicion float64 `json:"suspicion"`
	Successes int64   `json:"successes"`
	Errors    int64   `json:"errors"`
	Timeouts  int64   `json:"timeouts"`
	// RampFactor < 1 reports an in-progress capped-weight recovery.
	RampFactor float64 `json:"ramp_factor,omitempty"`
	// OpenRemainingSeconds is the time until an open breaker probes.
	OpenRemainingSeconds float64 `json:"open_remaining_seconds,omitempty"`
}

// healthState assembles the full health view: operator vector,
// breaker states, and tracker statistics.
func (s *Server) healthState() HealthState {
	s.mu.Lock()
	op := append([]bool(nil), s.up...)
	s.mu.Unlock()
	rate, warm := s.Estimate()
	now := s.now()
	nowNs := now.UnixNano()
	hs := HealthState{Up: make([]bool, len(op)), Estimate: rate, Warm: warm}
	for i := range op {
		b := &s.breakers.stations[i]
		state := b.state.Load()
		eff := op[i] && state == breakerClosed && !b.pinned.Load()
		hs.Up[i] = eff
		suc, errs, tmo := s.tracker.totals(i)
		sh := StationHealth{
			Station:        i,
			Up:             eff,
			OperatorPinned: b.pinned.Load(),
			Breaker:        breakerStateNames[state],
			Trips:          b.trips.Load(),
			ErrorRate:      s.tracker.errorRate(i),
			Suspicion:      s.tracker.suspicion(i, nowNs),
			Successes:      suc,
			Errors:         errs,
			Timeouts:       tmo,
		}
		if s.cfg.Names != nil {
			sh.Name = s.cfg.Names[i]
		}
		if f := s.rampFactor(i, now); f < 1 {
			sh.RampFactor = f
		}
		if state == breakerOpen {
			if rem := b.openUntil.Load() - nowNs; rem > 0 {
				sh.OpenRemainingSeconds = time.Duration(rem).Seconds()
			}
		}
		hs.Stations = append(hs.Stations, sh)
	}
	return hs
}

func (s *Server) handleGetHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.healthState())
}

// handlePostHealth applies an operator availability override. "Down"
// pins the station (breaker frozen, station excluded until an
// operator lifts it); "up" clears the pin AND force-resets the
// breaker to closed at full weight — no recovery ramp, the operator
// has vouched for the station. See the Handler doc block.
func (s *Server) handlePostHealth(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Station int  `json:"station"`
		Up      bool `json:"up"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Station < 0 || req.Station >= s.group.N() {
		writeError(w, http.StatusBadRequest, "station %d out of range [0, %d)", req.Station, s.group.N())
		return
	}
	s.mu.Lock()
	changed := s.up[req.Station] != req.Up
	s.up[req.Station] = req.Up
	s.mu.Unlock()
	b := &s.breakers.stations[req.Station]
	breakerReset := false
	if req.Up {
		b.pinned.Store(false)
		if b.state.Load() != breakerClosed {
			breakerReset = true
		}
		s.breakers.resetTo(b)
		b.rampStart.Store(0)
		s.tracker.resetError(req.Station)
		s.scanMu.Lock()
		suc, errs, tmo := s.tracker.totals(req.Station)
		s.scanVol[req.Station] = suc + errs + tmo
		s.scanMu.Unlock()
	} else {
		b.pinned.Store(true)
	}
	s.breakers.snapshotTrial()
	if changed || breakerReset {
		s.log.Info("station health changed by operator",
			"station", req.Station, "up", req.Up, "breaker_reset", breakerReset)
		s.maybeResolve(0, "health", true)
	}
	writeJSON(w, http.StatusAccepted, s.healthState())
}

// handleObserve ingests one externally executed outcome:
// {"station": i, "outcome": "success"|"error"|"timeout",
// "latency_seconds": x}. It exists for deployments where bladed only
// routes and the caller runs the work — without outcomes the failure
// detector is blind.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Station        int     `json:"station"`
		Outcome        string  `json:"outcome"`
		LatencySeconds float64 `json:"latency_seconds"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	kind := numOutcomes
	for k := range outcomeNames {
		if outcomeNames[k] == req.Outcome {
			kind = Outcome(k)
		}
	}
	if kind >= numOutcomes {
		writeError(w, http.StatusBadRequest,
			"unknown outcome %q (want success, error or timeout)", req.Outcome)
		return
	}
	latency := time.Duration(req.LatencySeconds * float64(time.Second))
	if err := s.ReportOutcome(req.Station, kind, latency); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]bool{"recorded": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writeTo(w, s.plan.Load(), s.est.Rate(), s.est.Warm())
	s.writeResilienceMetrics(w)
}

// maybeResolve queues a background re-solve. Drift- and
// overload-triggered requests are rate-limited by MinResolveInterval;
// health events force through (a failed station must stop receiving
// load as fast as the solver allows).
//
//bladelint:allow lock -- cold control branch: reached from Decide only when drift/overload trips, and rate-limited by MinResolveInterval
func (s *Server) maybeResolve(lambda float64, reason string, force bool) {
	if !force {
		s.mu.Lock()
		recent := !s.lastResolve.IsZero() && s.now().Sub(s.lastResolve) < s.cfg.MinResolveInterval
		s.mu.Unlock()
		if recent {
			return
		}
	}
	select {
	case s.resolveCh <- resolveReq{lambda: lambda, reason: reason}:
	default: // one already pending; it will observe fresh state
	}
}

// scanner is the background goroutine driving the failure detector:
// every ScanInterval it evaluates trip conditions, advances open
// breakers toward half-open, closes breakers whose trials succeeded,
// and refreshes the hedge delay from the observed p95.
func (s *Server) scanner() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Breaker.ScanInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.healthScan(s.now())
		}
	}
}

// healthScan runs one failure-detector pass. Exported behaviour worth
// pinning: trips and breaker-driven closes force a re-solve (a dead
// station must shed as fast as the solver allows, edge-triggered by
// the state CAS so a station trips at most once per open cycle);
// ramp-weight refreshes go through the MinResolveInterval rate limit
// — the hysteresis that keeps a recovering station from thrashing the
// solver.
func (s *Server) healthScan(now time.Time) {
	if s.cfg.Guard.Hedge {
		if q := s.m.latencyQuantile95(); q > 0 {
			d := time.Duration(q * float64(time.Second))
			if d < s.cfg.Guard.HedgeMinDelay {
				d = s.cfg.Guard.HedgeMinDelay
			}
			s.guard.hedgeDelay.Store(int64(d))
		}
	}
	if s.breakers.disabled {
		return
	}
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	nowNs := now.UnixNano()
	plan := s.plan.Load()
	reason := ""
	force := false
	rampActive := false
	for i := range s.breakers.stations {
		st := &s.breakers.stations[i]
		if st.pinned.Load() {
			continue // operator owns this station
		}
		switch st.state.Load() {
		case breakerClosed:
			suc, errs, tmo := s.tracker.totals(i)
			vol := suc + errs + tmo - s.scanVol[i]
			erate := s.tracker.errorRate(i)
			phi := s.tracker.suspicion(i, nowNs)
			loaded := i < len(plan.Rates) && plan.Rates[i] > 0
			if (vol >= int64(s.cfg.Breaker.MinVolume) && erate >= s.cfg.Breaker.ErrorThreshold) ||
				(loaded && phi >= s.cfg.Breaker.PhiThreshold) {
				if st.state.CompareAndSwap(breakerClosed, breakerOpen) {
					s.breakers.reopen(st, nowNs)
					st.rampStart.Store(0)
					s.scanVol[i] = suc + errs + tmo
					s.log.Warn("breaker tripped; shedding station",
						"station", i, "error_rate", erate, "suspicion", phi, "volume", vol)
					reason, force = "breaker-trip", true
				}
				continue
			}
			if rs := st.rampStart.Load(); rs > 0 {
				if nowNs-rs >= int64(s.cfg.Breaker.RampWindow) {
					st.rampStart.Store(0)
					if reason == "" {
						reason = "ramp-complete"
					}
				} else {
					rampActive = true
				}
			}
		case breakerOpen:
			if nowNs >= st.openUntil.Load() {
				st.trialOK.Store(0)
				// Restart the silence clock: suspicion now measures the
				// probe stream, not the outage that tripped us.
				s.tracker.touch(i, nowNs)
				st.state.Store(breakerHalfOpen)
				s.log.Info("breaker half-open; admitting trial traffic",
					"station", i, "trial_fraction", s.breakers.trialFraction)
			}
		case breakerHalfOpen:
			if st.trialOK.Load() >= int64(s.cfg.Breaker.TrialSuccesses) {
				s.breakers.resetTo(st)
				st.rampStart.Store(nowNs)
				s.tracker.resetError(i)
				suc, errs, tmo := s.tracker.totals(i)
				s.scanVol[i] = suc + errs + tmo
				s.log.Info("breaker closed; ramping station back in",
					"station", i, "ramp_window", s.cfg.Breaker.RampWindow)
				reason, force = "breaker-close", true
			}
		}
	}
	s.breakers.snapshotTrial()
	switch {
	case reason != "":
		s.maybeResolve(0, reason, force)
	case rampActive:
		s.maybeResolve(0, "ramp", false)
	}
}

// rampFactor returns the capped-weight multiplier for a station in
// its recovery window: linear from rampMinFactor at breaker close to
// 1 at RampWindow later (1 when no ramp is active).
func (s *Server) rampFactor(i int, now time.Time) float64 {
	st := &s.breakers.stations[i]
	rs := st.rampStart.Load()
	if rs <= 0 || st.state.Load() != breakerClosed {
		return 1
	}
	elapsed := float64(now.UnixNano() - rs)
	window := float64(s.cfg.Breaker.RampWindow)
	if elapsed >= window {
		return 1
	}
	if elapsed < 0 {
		elapsed = 0
	}
	return rampMinFactor + (1-rampMinFactor)*elapsed/window
}

// applyBreakers overlays breaker exclusions onto the operator
// availability vector (mutating the caller's private copy) and
// collects ramp-in weights for recovering stations. If the overlay
// would leave no station serving, the breaker exclusions are ignored
// — routing somewhere beats routing nowhere — and the breakers are
// left to re-trip on the evidence.
func (s *Server) applyBreakers(up []bool) ([]bool, []float64) {
	if s.breakers.disabled {
		return up, nil
	}
	survivors, excluded := 0, 0
	for i := range up {
		if !up[i] {
			continue
		}
		if s.breakers.rejects(i) {
			excluded++
		} else {
			survivors++
		}
	}
	if excluded > 0 && survivors > 0 {
		for i := range up {
			if up[i] && s.breakers.rejects(i) {
				up[i] = false
			}
		}
	}
	var ramp []float64
	now := s.now()
	for i := range up {
		if f := s.rampFactor(i, now); f < 1 {
			if ramp == nil {
				ramp = make([]float64, len(up))
				for j := range ramp {
					ramp[j] = 1
				}
			}
			ramp[i] = f
		}
	}
	return up, ramp
}

// resolver is the background goroutine that serializes re-solves.
func (s *Server) resolver() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case req := <-s.resolveCh:
			if _, err := s.doResolve(req); err != nil {
				s.log.Error("re-solve failed; keeping previous plan",
					"reason", req.reason, "err", err)
			}
		}
	}
}

// doResolve re-solves the optimization against the current
// availability vector, warm-starting from the live plan's multiplier,
// and atomically publishes the result. On error the previous plan
// stays live (with every station down the stream has nowhere better to
// go; the error is logged and counted).
func (s *Server) doResolve(req resolveReq) (*Plan, error) {
	s.solveMu.Lock()
	defer s.solveMu.Unlock()
	cur := s.plan.Load()
	s.mu.Lock()
	up := append([]bool(nil), s.up...)
	s.lastResolve = s.now()
	s.mu.Unlock()

	lambda := req.lambda
	if lambda <= 0 {
		if rate, warm := s.Estimate(); warm && rate > 0 {
			lambda = rate
		} else {
			lambda = cur.Lambda
		}
	}
	up, ramp := s.applyBreakers(up)
	opts := s.cfg.Opts
	opts.WarmPhi = cur.Phi
	plan, err := buildPlan(s.group, lambda, up, opts, cur.Version+1, s.now(), ramp, s.jsqD, s.depths)
	s.m.resolved(err)
	if err != nil {
		return nil, err
	}
	s.plan.Store(plan)
	s.log.Info("plan swapped",
		"reason", req.reason, "version", plan.Version, "lambda", plan.Lambda,
		"survivors", plan.Survivors, "shed", plan.Shed,
		"avg_response_time", plan.AvgResponseTime)
	return plan, nil
}

func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return nil // empty body means "all defaults"
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
