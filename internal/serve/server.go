// Package serve is the online serving layer of the system: a
// long-running daemon ("bladed") that solves the paper's optimal load
// distribution once at startup and then serves routing decisions from
// the resulting probabilistic plan over HTTP.
//
// The serving loop closes the control cycle the batch CLIs cannot: a
// windowed estimator tracks the observed generic arrival rate λ′, and
// when it drifts beyond a configurable threshold — or an operator
// marks a station down — a background goroutine re-solves the
// optimization with a warm-started Lagrange bracket
// (core.Options.WarmPhi, via core.OptimizeDegraded for
// surviving-subset solves) and atomically swaps the live plan.
// In-flight requests keep the plan snapshot they loaded, so a swap
// never drops or re-routes work already being decided.
//
// Production plumbing: admission control sheds with 503 when the
// observed rate would push a surviving station to ρ_i ≥ 1, in-flight
// concurrency is bounded, every API request carries a deadline,
// operational counters export in Prometheus text format (backed by
// internal/metrics, no external deps), and /debug/pprof is mounted.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	randv2 "math/rand/v2"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Config describes a daemon instance.
type Config struct {
	// Group is the blade-server cluster to serve. Required.
	Group *model.Group
	// Lambda is the planned total generic rate λ′ the startup solve
	// uses. Required (positive).
	Lambda float64
	// Opts configures the optimizer (discipline, ε, utilization cap…).
	Opts core.Options
	// Names optionally labels stations (from the cluster spec); used in
	// dispatch responses for operator-facing clarity.
	Names []string
	// DriftThreshold is the relative deviation |λ̂−λ_plan|/λ_plan that
	// triggers a background re-solve once the estimator is warm.
	// Default 0.2.
	DriftThreshold float64
	// Window is the arrival-rate estimation window. Default 30s.
	Window time.Duration
	// Buckets subdivides the window. Default 10.
	Buckets int
	// MinResolveInterval rate-limits drift-triggered re-solves (health
	// events bypass it). Default 1s.
	MinResolveInterval time.Duration
	// MaxInFlight bounds concurrently served API requests; excess gets
	// 503. Default 256.
	MaxInFlight int
	// RequestTimeout bounds each API request. Default 5s.
	RequestTimeout time.Duration
	// Now injects a clock for deterministic tests. Default time.Now.
	Now func() time.Time
	// Logger receives structured operational logs. Default slog.Default().
	Logger *slog.Logger
	// Seed seeds the dispatch RNG (0 means 1, for determinism).
	Seed int64
	// DeterministicRNG serializes all dispatch draws through a single
	// seeded math/rand generator (the pre-sharding behaviour), so a
	// fixed Seed reproduces the exact routing sequence. The default is
	// lock-free per-shard SplitMix64 states, which are seeded but not
	// sequence-reproducible under concurrency.
	DeterministicRNG bool
	// SerializedHotPath restores the fully mutex-serialized request
	// path — locked estimator, locked metrics, deterministic RNG. It is
	// the contention baseline BenchmarkDispatchParallelMutex measures;
	// production use should leave it off.
	SerializedHotPath bool
}

func (c *Config) withDefaults() {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.2
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinResolveInterval <= 0 {
		c.MinResolveInterval = time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Server is the daemon state. Create with New, mount Handler on an
// http.Server, and Close when draining is complete.
type Server struct {
	cfg   Config
	group *model.Group
	log   *slog.Logger
	now   func() time.Time
	est   estimator
	m     serverMetrics
	rnd   dispatchRand
	// fastEst/fastM are the concrete lock-free implementations behind
	// est/m on the default path (nil when SerializedHotPath), letting
	// the dispatch hot path call their shard-hinted entry points
	// without interface indirection.
	fastEst *RateEstimator
	fastM   *shardedMetrics
	fastRnd *shardedRNG // nil under DeterministicRNG/SerializedHotPath

	plan atomic.Pointer[Plan]

	mu          sync.Mutex // guards up, lastResolve
	up          []bool
	lastResolve time.Time

	solveMu   sync.Mutex // serializes background and synchronous solves
	resolveCh chan resolveReq
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	inflight chan struct{}
}

type resolveReq struct {
	lambda float64 // ≤ 0 means "current estimate, else current plan λ"
	reason string
}

// New validates the configuration, runs the startup solve, and starts
// the background re-optimization goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Group == nil {
		return nil, fmt.Errorf("serve: nil group")
	}
	if err := cfg.Group.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(cfg.Lambda) || cfg.Lambda <= 0 {
		return nil, fmt.Errorf("serve: planned rate λ′=%g must be positive", cfg.Lambda)
	}
	if cfg.Names != nil && len(cfg.Names) != cfg.Group.N() {
		return nil, fmt.Errorf("serve: %d names for %d stations", len(cfg.Names), cfg.Group.N())
	}
	cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		group:     cfg.Group.Clone(),
		log:       cfg.Logger,
		now:       cfg.Now,
		up:        make([]bool, cfg.Group.N()),
		resolveCh: make(chan resolveReq, 1),
		done:      make(chan struct{}),
		inflight:  make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.SerializedHotPath {
		s.est = NewLockedRateEstimator(cfg.Window, cfg.Buckets, cfg.Now)
		s.m = newLockedServerMetrics(cfg.Group.N())
		s.rnd = newLockedRand(cfg.Seed)
	} else {
		s.fastEst = NewRateEstimator(cfg.Window, cfg.Buckets, cfg.Now)
		s.fastM = newServerMetrics(cfg.Group.N())
		s.est = s.fastEst
		s.m = s.fastM
		if cfg.DeterministicRNG {
			s.rnd = newLockedRand(cfg.Seed)
		} else {
			s.fastRnd = newShardedRNG(cfg.Seed)
			s.rnd = s.fastRnd
		}
	}
	for i := range s.up {
		s.up[i] = true
	}
	plan, err := buildPlan(s.group, cfg.Lambda, nil, cfg.Opts, 1, s.now())
	if err != nil {
		return nil, fmt.Errorf("serve: startup solve: %w", err)
	}
	s.plan.Store(plan)
	if plan.Shed > 0 {
		s.log.Warn("startup plan is overloaded; shedding",
			"lambda", cfg.Lambda, "admitted", plan.Admitted, "shed", plan.Shed)
	}
	s.log.Info("startup plan solved",
		"lambda", plan.Lambda, "avg_response_time", plan.AvgResponseTime,
		"capacity", plan.Capacity, "stations", s.group.N())
	s.wg.Add(1)
	go s.resolver()
	return s, nil
}

// Close stops the background resolver. Safe to call more than once;
// call after the HTTP server has drained.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Plan returns the live plan snapshot.
func (s *Server) Plan() *Plan { return s.plan.Load() }

// Estimate returns the current observed arrival rate and whether the
// estimator has seen a full window.
func (s *Server) Estimate() (rate float64, warm bool) {
	return s.est.Rate(), s.est.Warm()
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/dispatch   → routing decision from the live plan
//	GET  /v1/plan       → live plan
//	POST /v1/plan       → synchronous re-solve (optional {"lambda": x})
//	GET  /v1/health     → availability vector + rate estimate
//	POST /v1/health     → mark a station up/down, queue a re-solve
//	GET  /metrics       → Prometheus text exposition
//	GET  /healthz       → liveness probe
//	     /debug/pprof/* → runtime profiles
//
// The /v1 API is bounded by MaxInFlight and RequestTimeout.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/dispatch", s.handleDispatch)
	api.HandleFunc("GET /v1/plan", s.handleGetPlan)
	api.HandleFunc("POST /v1/plan", s.handlePostPlan)
	api.HandleFunc("GET /v1/health", s.handleGetHealth)
	api.HandleFunc("POST /v1/health", s.handlePostHealth)
	bounded := s.limitInFlight(http.TimeoutHandler(api, s.cfg.RequestTimeout,
		`{"error":"request timed out"}`))

	root := http.NewServeMux()
	root.Handle("/v1/", bounded)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return root
}

// limitInFlight bounds concurrency with a semaphore; a full daemon
// answers 503 immediately instead of queueing unboundedly.
func (s *Server) limitInFlight(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			h.ServeHTTP(w, r)
		default:
			s.m.reject(rejectConcurrency)
			writeError(w, http.StatusServiceUnavailable, "too many in-flight requests")
		}
	})
}

// DispatchResponse is the body of a successful dispatch decision.
type DispatchResponse struct {
	// Station is the 0-based station index the task should run on.
	Station int `json:"station"`
	// Name labels the station when the spec provided names.
	Name string `json:"name,omitempty"`
	// PlanVersion identifies the plan that made the decision.
	PlanVersion int64 `json:"plan_version"`
}

// Decision is the outcome of one pass through the dispatch hot path.
type Decision struct {
	// Station is the routed station index (-1 when Rejected).
	Station int
	// Plan is the plan snapshot the decision worked from.
	Plan *Plan
	// Rate is the observed arrival-rate estimate at decision time.
	Rate float64
	// Rejected reports a probabilistic admission-control shed; Reason
	// then names the cause ("admission" or "shed").
	Rejected bool
	Reason   string
}

// Decide runs the dispatch hot path once — observe the arrival,
// admission-check against the live plan, pick a station — and records
// the decision in the operational metrics. It is the core of
// POST /v1/dispatch, exported so load harnesses and benchmarks can
// drive it without HTTP framing. The default path is lock-free;
// Config.SerializedHotPath selects the original mutex-serialized flow.
func (s *Server) Decide() Decision {
	if s.fastEst == nil {
		return s.decideSerialized()
	}
	start := s.now()
	// One random word per request feeds both shard picks; the station
	// pick draws from s.rnd so DeterministicRNG keeps its sequence.
	u := randv2.Uint64()
	s.fastEst.observeAtShard(start, 1, u)
	plan := s.plan.Load()
	rate := s.fastEst.RateAt(start)
	warm := s.fastEst.WarmAt(start)

	admit, reason := s.admission(plan, rate, warm)
	if admit < 1 && s.rnd.Float64() >= admit {
		s.fastM.reject(reason)
		return Decision{Station: -1, Plan: plan, Rate: rate,
			Rejected: true, Reason: rejectReasonNames[reason]}
	}
	s.driftCheck(plan, rate, warm)

	var draw float64
	if s.fastRnd != nil {
		draw = s.fastRnd.float64U(u >> 16) // spare bits of the shared word
	} else {
		draw = s.rnd.Float64() // DeterministicRNG keeps the pinned sequence
	}
	station := plan.PickU(draw)
	s.fastM.countDispatch(station)
	// Latency is measured on a random 1-in-p2SampleStride subset: the
	// second clock read is the costliest step left on this path, so the
	// sample gates the read itself, not just the accumulator update.
	if u>>48&(p2SampleStride-1) == 0 {
		s.fastM.observeLatency(s.now().Sub(start).Seconds(), u>>32)
	}
	return Decision{Station: station, Plan: plan, Rate: rate}
}

// decideSerialized is the dispatch flow exactly as the pre-sharding
// server ran it — per-touch clock reads inside the locked estimator,
// two warmth checks, every counter behind one mutex — kept as the
// measurable contention baseline for the lock-free path.
func (s *Server) decideSerialized() Decision {
	start := s.now()
	s.est.Observe(1)
	plan := s.plan.Load()
	rate := s.est.Rate()

	admit, reason := s.admission(plan, rate, s.est.Warm())
	if admit < 1 && s.rnd.Float64() >= admit {
		s.m.reject(reason)
		return Decision{Station: -1, Plan: plan, Rate: rate,
			Rejected: true, Reason: rejectReasonNames[reason]}
	}
	s.driftCheck(plan, rate, s.est.Warm())

	station := plan.PickU(s.rnd.Float64())
	s.m.observeDispatch(station, s.now().Sub(start).Seconds())
	return Decision{Station: station, Plan: plan, Rate: rate}
}

// admission returns the admissible fraction of the stream and the
// rejection reason for the shed remainder. Overload is shed
// probabilistically so the admitted sub-stream stays a thinned Poisson
// process matching the plan's assumptions: the surviving stations can
// absorb only Capacity before some ρ_i reaches 1.
func (s *Server) admission(plan *Plan, rate float64, warm bool) (float64, rejectReason) {
	if warm && rate > 0 && rate >= plan.Capacity {
		s.maybeResolve(rate, "overload", false)
		return plan.Capacity / rate, rejectAdmission
	}
	if plan.Shed > 0 && plan.Admitted+plan.Shed > 0 {
		return plan.Admitted / (plan.Admitted + plan.Shed), rejectShed
	}
	return 1, rejectAdmission
}

// driftCheck queues a re-solve when the observed rate has drifted past
// the threshold from the plan's λ′.
func (s *Server) driftCheck(plan *Plan, rate float64, warm bool) {
	if warm && rate > 0 && plan.Lambda > 0 {
		if drift := math.Abs(rate-plan.Lambda) / plan.Lambda; drift > s.cfg.DriftThreshold {
			s.maybeResolve(rate, "drift", false)
		}
	}
}

func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	d := s.Decide()
	if d.Rejected {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"overloaded: observed rate %.4g versus capacity %.4g", d.Rate, d.Plan.Capacity)
		return
	}
	resp := DispatchResponse{Station: d.Station, PlanVersion: d.Plan.Version}
	if s.cfg.Names != nil {
		resp.Name = s.cfg.Names[d.Station]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetPlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.plan.Load())
}

func (s *Server) handlePostPlan(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Lambda float64 `json:"lambda"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if math.IsNaN(req.Lambda) || math.IsInf(req.Lambda, 0) || req.Lambda < 0 {
		writeError(w, http.StatusBadRequest, "lambda %g must be a finite non-negative rate", req.Lambda)
		return
	}
	if req.Lambda > 0 {
		// An explicitly requested rate at or beyond the ceiling would
		// push a surviving station to ρ_i ≥ 1: reject instead of
		// silently shedding what the operator asked for.
		s.mu.Lock()
		up := append([]bool(nil), s.up...)
		s.mu.Unlock()
		if ceiling := admissionCeiling(s.group, up, s.cfg.Opts); req.Lambda >= ceiling {
			s.m.reject(rejectAdmission)
			writeError(w, http.StatusServiceUnavailable,
				"requested rate %.6g at or beyond admission ceiling %.6g", req.Lambda, ceiling)
			return
		}
	}
	plan, err := s.doResolve(resolveReq{lambda: req.Lambda, reason: "api"})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "re-solve failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// HealthState is the body of GET /v1/health.
type HealthState struct {
	Up       []bool  `json:"up"`
	Estimate float64 `json:"estimate"`
	Warm     bool    `json:"warm"`
}

func (s *Server) handleGetHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	up := append([]bool(nil), s.up...)
	s.mu.Unlock()
	rate, warm := s.Estimate()
	writeJSON(w, http.StatusOK, HealthState{Up: up, Estimate: rate, Warm: warm})
}

func (s *Server) handlePostHealth(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Station int  `json:"station"`
		Up      bool `json:"up"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Station < 0 || req.Station >= s.group.N() {
		writeError(w, http.StatusBadRequest, "station %d out of range [0, %d)", req.Station, s.group.N())
		return
	}
	s.mu.Lock()
	changed := s.up[req.Station] != req.Up
	s.up[req.Station] = req.Up
	up := append([]bool(nil), s.up...)
	s.mu.Unlock()
	if changed {
		s.log.Info("station health changed", "station", req.Station, "up", req.Up)
		s.maybeResolve(0, "health", true)
	}
	writeJSON(w, http.StatusAccepted, HealthState{Up: up})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writeTo(w, s.plan.Load(), s.est.Rate(), s.est.Warm())
}

// maybeResolve queues a background re-solve. Drift- and
// overload-triggered requests are rate-limited by MinResolveInterval;
// health events force through (a failed station must stop receiving
// load as fast as the solver allows).
//
//bladelint:allow lock -- cold control branch: reached from Decide only when drift/overload trips, and rate-limited by MinResolveInterval
func (s *Server) maybeResolve(lambda float64, reason string, force bool) {
	if !force {
		s.mu.Lock()
		recent := !s.lastResolve.IsZero() && s.now().Sub(s.lastResolve) < s.cfg.MinResolveInterval
		s.mu.Unlock()
		if recent {
			return
		}
	}
	select {
	case s.resolveCh <- resolveReq{lambda: lambda, reason: reason}:
	default: // one already pending; it will observe fresh state
	}
}

// resolver is the background goroutine that serializes re-solves.
func (s *Server) resolver() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case req := <-s.resolveCh:
			if _, err := s.doResolve(req); err != nil {
				s.log.Error("re-solve failed; keeping previous plan",
					"reason", req.reason, "err", err)
			}
		}
	}
}

// doResolve re-solves the optimization against the current
// availability vector, warm-starting from the live plan's multiplier,
// and atomically publishes the result. On error the previous plan
// stays live (with every station down the stream has nowhere better to
// go; the error is logged and counted).
func (s *Server) doResolve(req resolveReq) (*Plan, error) {
	s.solveMu.Lock()
	defer s.solveMu.Unlock()
	cur := s.plan.Load()
	s.mu.Lock()
	up := append([]bool(nil), s.up...)
	s.lastResolve = s.now()
	s.mu.Unlock()

	lambda := req.lambda
	if lambda <= 0 {
		if rate, warm := s.Estimate(); warm && rate > 0 {
			lambda = rate
		} else {
			lambda = cur.Lambda
		}
	}
	opts := s.cfg.Opts
	opts.WarmPhi = cur.Phi
	plan, err := buildPlan(s.group, lambda, up, opts, cur.Version+1, s.now())
	s.m.resolved(err)
	if err != nil {
		return nil, err
	}
	s.plan.Store(plan)
	s.log.Info("plan swapped",
		"reason", req.reason, "version", plan.Version, "lambda", plan.Lambda,
		"survivors", plan.Survivors, "shed", plan.Shed,
		"avg_response_time", plan.AvgResponseTime)
	return plan, nil
}

func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return nil // empty body means "all defaults"
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
