package serve

import (
	"fmt"
	randv2 "math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
)

// batchChunk is the internal batch granularity: DecideBatch processes
// its dst in chunks of this size, which bounds every stack scratch
// array on the batched hot path and is the depth-staleness bound the
// JSQ(d) batch pick documents (its snapshot is per chunk; see DESIGN.md
// §16).
const batchChunk = dispatch.MaxPickBatch

// maxBatchRequest bounds one POST /v1/dispatch/batch request — large
// enough for any sane client batch, small enough that a single request
// cannot monopolize the daemon.
const maxBatchRequest = 4096

// DecideBatch runs the dispatch hot path for len(dst) requests at once,
// filling dst with one Decision per slot. It is semantically k = len(dst)
// Decide calls — every decision gets its own admission check, pick,
// breaker redirect and latency-gate draw — but the per-request overhead
// is paid per chunk instead: one clock read, one plan snapshot load,
// one estimator bump (a single fixed-point add of k per shard), one
// per-shard SplitMix64 word-stream reservation, one vectorized pick
// pass, and one aggregated counter/depth update per distinct chosen
// station. Zero heap allocations: all scratch is caller-provided (dst)
// or fixed stack arrays.
//
// Equivalence contracts, in decreasing strictness:
//
//   - Under Config.DeterministicRNG the routed station sequence is
//     IDENTICAL to len(dst) sequential Decide calls, draw for draw
//     (pinned by TestDecideBatchDeterministicSequence): the
//     deterministic generator forces the per-decision exact path, which
//     replays Decide's draw order precisely.
//   - On the lock-free fast path the picks are distributed identically
//     (same variate lattice, same cumulative walk) but come from batch
//     word streams; JSQ(d) picks score against a per-chunk depth
//     snapshot plus the batch's own picks, so depth staleness is
//     bounded by batchChunk.
//   - A posted breaker trial or an active admission shed also routes
//     through the per-decision exact path, so probabilistic guarantees
//     (trial fraction, admitted fraction) hold per decision, never
//     averaged across a batch.
//
//bladelint:hotpath
func (s *Server) DecideBatch(dst []Decision) {
	if len(dst) == 0 {
		return
	}
	if s.fastEst == nil {
		// SerializedHotPath: the mutex-serialized baseline has no
		// amortizable structure — run it per decision.
		for i := range dst {
			dst[i] = s.decideSerialized()
		}
		return
	}
	for len(dst) > batchChunk {
		s.decideChunk(dst[:batchChunk])
		dst = dst[batchChunk:]
	}
	s.decideChunk(dst)
}

// decideChunk decides one chunk (≤ batchChunk requests): the shared
// per-chunk work runs once, then the chunk takes either the vectorized
// fast path or the per-decision exact path.
func (s *Server) decideChunk(dst []Decision) {
	k := len(dst)
	start := s.now()
	// One per-batch word: estimator shard, RNG shard and redirect
	// redraws consume its slices once per chunk (randbits.go).
	u0 := randv2.Uint64()
	// The amortized estimator bump: one epoch check and one fixed-point
	// add of k on a single shard, in place of k independent bumps.
	s.fastEst.observeAtShard(start, float64(k), u0)
	plan := s.plan.Load()
	rate := s.fastEst.RateAt(start)
	warm := s.fastEst.WarmAt(start)
	admit, reason := s.admission(plan, rate, warm)
	s.driftCheck(plan, rate, warm)
	if s.fastRnd == nil || admit < 1 || s.breakers.trial.Load() >= 0 {
		// DeterministicRNG, admission shedding, or a posted breaker
		// trial: each decision must consume randomness exactly as Decide
		// does, so the chunk runs per decision (still sharing the chunk's
		// estimator bump and clock reads).
		s.decideChunkExact(dst, start, plan, rate, admit, reason)
		return
	}

	// Fast path: one per-decision word per slot from a single shard's
	// SplitMix64 stream (one atomic add reserves the whole span).
	var ws [batchChunk]uint64
	s.fastRnd.fillU(u0>>randPickShardShift, ws[:k])
	var picks [batchChunk]int32
	if plan.jsq != nil {
		var sb [batchChunk]uint64
		if s.jsqD <= 2 {
			for j := 0; j < k; j++ {
				sb[j] = ws[j] >> randSampleShift
			}
		} else {
			// d > 2 needs more sample bits than w_j has clear of the
			// gate slice: a second stream word per decision, consumed
			// whole — the batch analogue of jsqBits' dedicated word.
			s.fastRnd.fillU(u0>>randPickShardShift, sb[:k])
		}
		plan.jsq.PickBatch(sb[:k], picks[:k])
	} else {
		var us [batchChunk]float64
		for j := 0; j < k; j++ {
			us[j] = float64(ws[j]&(1<<randBatchPickBits-1)) / (1 << randBatchPickBits)
		}
		plan.picker.PickBatch(us[:k], picks[:k])
	}

	gates := 0
	for j := 0; j < k; j++ {
		st := int(picks[j])
		if s.breakers.rejects(st) {
			st = s.redirect(plan, st, u0)
		}
		dst[j] = Decision{Station: st, Plan: plan, Rate: rate}
		// Each decision keeps its own 1-in-p2SampleStride gate draw from
		// its own word, so the sampled fraction stays exact across the
		// batch; the hits share one end-of-chunk clock read below.
		if ws[j]>>randLatGateShift&(p2SampleStride-1) == 0 {
			gates++
		}
	}

	// Aggregated bookkeeping: one total add, then one add per DISTINCT
	// chosen station for the per-station counter and (router-mode JSQ)
	// the depth counter — a chunk touching s stations costs O(s) atomic
	// adds, not O(k).
	s.fastM.countDispatchN(int64(k))
	var stA [batchChunk]int32
	var ctA [batchChunk]int32
	na := 0
	for j := 0; j < k; j++ {
		st := int32(dst[j].Station)
		i := 0
		for ; i < na; i++ {
			if stA[i] == st {
				ctA[i]++
				break
			}
		}
		if i == na {
			stA[na] = st
			ctA[na] = 1
			na++
		}
	}
	router := s.depths != nil && s.backend == nil
	for i := 0; i < na; i++ {
		s.fastM.countStationN(int(stA[i]), int64(ctA[i]))
		if router {
			s.depths.incN(int(stA[i]), int64(ctA[i]))
		}
	}
	if gates > 0 {
		s.fastM.observeLatencyN(s.now().Sub(start).Seconds(), gates, randv2.Uint64())
	}
}

// decideChunkExact is the per-decision chunk flow: every slot draws and
// consumes randomness exactly as Decide does (same draw order, same
// sources), so DeterministicRNG sequence pinning, per-decision
// admission coins and trial coins are all preserved. Only the chunk's
// shared work differs from k plain Decide calls: the estimator bump
// already happened in decideChunk, and the latency-gated decisions
// share one end-of-chunk clock read.
func (s *Server) decideChunkExact(dst []Decision, start time.Time, plan *Plan, rate, admit float64, reason rejectReason) {
	gates := 0
	for j := range dst {
		u := randv2.Uint64()
		if admit < 1 && s.rnd.Float64() >= admit {
			s.fastM.reject(reason)
			dst[j] = Decision{Station: -1, Plan: plan, Rate: rate,
				Rejected: true, Reason: rejectReasonNames[reason]}
			continue
		}
		station, trial := s.trialPick(u)
		if !trial {
			if plan.jsq != nil {
				station = plan.jsq.PickU(s.jsqBits(u))
			} else {
				var draw float64
				if s.fastRnd != nil {
					draw = s.fastRnd.float64U(u >> randPickShardShift)
				} else {
					draw = s.rnd.Float64() // DeterministicRNG keeps the pinned sequence
				}
				station = plan.PickU(draw)
			}
			if s.breakers.rejects(station) {
				station = s.redirect(plan, station, u)
			}
		}
		if s.depths != nil && s.backend == nil {
			s.depths.inc(station)
		}
		s.fastM.countDispatch(station)
		if u>>randLatGateShift&(p2SampleStride-1) == 0 {
			gates++
		}
		dst[j] = Decision{Station: station, Plan: plan, Rate: rate, Trial: trial}
	}
	if gates > 0 {
		s.fastM.observeLatencyN(s.now().Sub(start).Seconds(), gates, randv2.Uint64())
	}
}

// coalescer groups concurrent single-shot dispatch requests into
// DecideBatch calls — the bladed-side mechanism that turns independent
// HTTP requests into batches without clients having to batch
// themselves. Protocol: the first arrival under contention becomes the
// batch leader, opens a group, and waits up to linger (or until the
// group fills) for joiners; joiners take a slot and block on the
// group's completion. The leader then detaches the group, decides the
// whole batch in one DecideBatch, and wakes the joiners.
//
// Low-QPS fallback: when fewer than two requests are in flight there is
// nobody to coalesce with, so the request takes the single-shot path
// immediately — batching must never ADD latency when there is no
// contention to amortize (DESIGN.md §16 quantifies when batching
// loses).
type coalescer struct {
	s      *Server
	max    int
	linger time.Duration
	// inflight counts requests inside decide; it gates the low-QPS
	// fallback before any lock is touched.
	inflight atomic.Int64
	mu       sync.Mutex // guards cur
	cur      *batchGroup
}

// batchGroup is one forming batch. n and the group pointer are guarded
// by the coalescer mutex; out[slot] is handed off to each joiner by the
// done close (the leader's writes happen-before it).
type batchGroup struct {
	full chan struct{} // closed when the group reaches max
	done chan struct{} // closed when the batch has been decided
	n    int
	out  []Decision
}

// decide is the coalescing dispatch entry point.
func (c *coalescer) decide() Decision {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	if c.inflight.Load() < 2 {
		return c.s.Decide()
	}
	c.mu.Lock()
	if g := c.cur; g != nil {
		// Joiner: take a slot and wait for the leader's batch.
		slot := g.n
		g.n++
		if g.n == c.max {
			c.cur = nil
			close(g.full)
		}
		c.mu.Unlock()
		<-g.done
		return g.out[slot]
	}
	// Leader: open a group (slot 0), linger for joiners, decide.
	g := &batchGroup{
		full: make(chan struct{}),
		done: make(chan struct{}),
		n:    1,
		out:  make([]Decision, c.max),
	}
	c.cur = g
	c.mu.Unlock()
	t := time.NewTimer(c.linger)
	select {
	case <-g.full:
		t.Stop()
	case <-t.C:
	}
	c.mu.Lock()
	if c.cur == g {
		c.cur = nil // stop admitting joiners before reading the count
	}
	k := g.n
	c.mu.Unlock()
	// Every joiner took its slot under mu before the detach above, so
	// all slots are < k and the batch covers exactly the joined set.
	c.s.DecideBatch(g.out[:k])
	close(g.done)
	return g.out[0]
}

// BatchDispatchResponse is the body of a successful
// POST /v1/dispatch/batch: count decisions from one pass through the
// batched hot path.
type BatchDispatchResponse struct {
	// PlanVersion identifies the plan that made the decisions.
	PlanVersion int64 `json:"plan_version"`
	// Stations holds the routed station per admitted decision, in
	// decision order (rejected decisions are omitted).
	Stations []int `json:"stations"`
	// Rejected counts decisions shed by admission control.
	Rejected int `json:"rejected,omitempty"`
}

// handleDispatchBatch serves POST /v1/dispatch/batch
// {"count": N}: N routing decisions from one DecideBatch pass. It is a
// router-mode endpoint — batch clients execute the work themselves and
// report outcomes through /v1/observe.
func (s *Server) handleDispatchBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Count int `json:"count"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Count < 1 || req.Count > maxBatchRequest {
		writeError(w, http.StatusBadRequest,
			"count %d outside [1, %d]", req.Count, maxBatchRequest)
		return
	}
	dst := make([]Decision, req.Count)
	s.DecideBatch(dst)
	resp := BatchDispatchResponse{
		PlanVersion: dst[0].Plan.Version,
		Stations:    make([]int, 0, req.Count),
	}
	for i := range dst {
		if dst[i].Rejected {
			resp.Rejected++
			continue
		}
		resp.Stations = append(resp.Stations, dst[i].Station)
	}
	if len(resp.Stations) == 0 {
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds(dst[0])))
		writeError(w, http.StatusServiceUnavailable,
			"overloaded: all %d decisions shed", req.Count)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
