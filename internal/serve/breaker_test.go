package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newBreakerTestServer builds a daemon whose background scanner is
// effectively parked (huge ScanInterval) so tests drive healthScan by
// hand against the fake clock, making every transition deterministic.
func newBreakerTestServer(t *testing.T, clk *fakeClock, mutate func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.Now = clk.Now
		c.Breaker.ScanInterval = time.Hour
		if mutate != nil {
			mutate(c)
		}
	})
}

// waitPlanVersion polls (real time) until the background resolver has
// published at least version v.
func waitPlanVersion(t *testing.T, s *Server, v int64) *Plan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if p := s.Plan(); p.Version >= v {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan never reached version %d (at %d)", v, s.Plan().Version)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func tripStation(t *testing.T, s *Server, clk *fakeClock, station, failures int) {
	t.Helper()
	for i := 0; i < failures; i++ {
		clk.Advance(time.Millisecond)
		s.recordOutcome(station, OutcomeError, 0.001)
	}
	s.healthScan(clk.Now())
	if got := s.breakers.stations[station].state.Load(); got != breakerOpen {
		t.Fatalf("station %d breaker %s after %d failures, want open",
			station, breakerStateNames[got], failures)
	}
}

func TestBreakerTripsOnErrorRateAndShedsStation(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)

	// Below MinVolume nothing trips, however bad the rate looks.
	for i := 0; i < 5; i++ {
		clk.Advance(time.Millisecond)
		s.recordOutcome(0, OutcomeError, 0.001)
	}
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerClosed {
		t.Fatalf("breaker %s below MinVolume, want closed", breakerStateNames[got])
	}

	// Past MinVolume with EWMA ≥ threshold: trip, shed, forced re-solve.
	for i := 0; i < 7; i++ {
		clk.Advance(time.Millisecond)
		s.recordOutcome(0, OutcomeError, 0.001)
	}
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerOpen {
		t.Fatalf("breaker %s after sustained failures, want open", breakerStateNames[got])
	}
	if !s.breakers.rejects(0) {
		t.Fatal("open breaker must reject ordinary traffic")
	}
	plan := waitPlanVersion(t, s, 2)
	if plan.Rates[0] != 0 || plan.Survivors != s.group.N()-1 {
		t.Fatalf("tripped station still loaded: rates %v survivors %d", plan.Rates, plan.Survivors)
	}
	if s.breakers.stations[0].trips.Load() != 1 {
		t.Fatalf("trips = %d, want 1", s.breakers.stations[0].trips.Load())
	}
	// Re-scanning does not re-trip or re-resolve (edge-triggered).
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].trips.Load(); got != 1 {
		t.Fatalf("re-scan re-tripped: trips = %d", got)
	}
}

func TestBreakerPhiTripsOnSilence(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)

	// Establish a 10ms completion cadence on station 1, then go silent.
	for i := 0; i < 20; i++ {
		clk.Advance(10 * time.Millisecond)
		s.recordOutcome(1, OutcomeSuccess, 0.001)
	}
	s.healthScan(clk.Now())
	if got := s.breakers.stations[1].state.Load(); got != breakerClosed {
		t.Fatalf("healthy cadence tripped the breaker: %s", breakerStateNames[got])
	}
	// Default PhiThreshold 8 needs ≈ 18 mean gaps of silence; give it 400.
	clk.Advance(4 * time.Second)
	s.healthScan(clk.Now())
	if got := s.breakers.stations[1].state.Load(); got != breakerOpen {
		t.Fatalf("silent loaded station not tripped: %s", breakerStateNames[got])
	}
	// An unloaded silent station must NOT phi-trip: station 1 is now
	// shed; once the plan drops it, continued silence is expected.
	plan := waitPlanVersion(t, s, 2)
	if plan.Rates[1] != 0 {
		t.Fatalf("phi-tripped station still loaded: %v", plan.Rates)
	}
}

func TestBreakerRecoversThroughTrialAndRampsIn(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)
	tripStation(t, s, clk, 0, 12)
	waitPlanVersion(t, s, 2)

	// Open holds until openUntil; then half-open posts the trial station.
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerOpen {
		t.Fatalf("breaker left open early: %s", breakerStateNames[got])
	}
	clk.Advance(s.cfg.Breaker.OpenInterval + time.Second)
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerHalfOpen {
		t.Fatalf("breaker %s past openUntil, want half-open", breakerStateNames[got])
	}
	if got := s.breakers.trial.Load(); got != 0 {
		t.Fatalf("trial station %d, want 0", got)
	}

	// Probes: TrialSuccesses consecutive successes close the breaker.
	for i := 0; i < s.cfg.Breaker.TrialSuccesses; i++ {
		clk.Advance(time.Millisecond)
		s.recordOutcome(0, OutcomeSuccess, 0.001)
	}
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerClosed {
		t.Fatalf("breaker %s after trial successes, want closed", breakerStateNames[got])
	}
	if got := s.breakers.trial.Load(); got != -1 {
		t.Fatalf("trial pointer %d after close, want -1", got)
	}
	// The readmission plan carries the capped ramp weight.
	plan := waitPlanVersion(t, s, 3)
	if plan.Rates[0] <= 0 {
		t.Fatalf("readmitted station carries no load: %v", plan.Rates)
	}
	if plan.Ramp == nil || plan.Ramp[0] >= 1 {
		t.Fatalf("readmission plan has no ramp cap: ramp %v", plan.Ramp)
	}
	if f := s.rampFactor(0, clk.Now()); f >= 1 || f < rampMinFactor {
		t.Fatalf("ramp factor %g outside [%g, 1)", f, rampMinFactor)
	}

	// Past the ramp window the station returns to full weight.
	clk.Advance(s.cfg.Breaker.RampWindow + time.Second)
	s.healthScan(clk.Now())
	plan = waitPlanVersion(t, s, 4)
	if plan.Ramp != nil {
		t.Fatalf("ramp still capped after window: %v", plan.Ramp)
	}
	if f := s.rampFactor(0, clk.Now()); f != 1 {
		t.Fatalf("ramp factor %g after window, want 1", f)
	}
}

func TestBreakerReopensWithExponentialBackoff(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)
	base := int64(s.cfg.Breaker.OpenInterval)
	tripStation(t, s, clk, 0, 12)
	st := &s.breakers.stations[0]
	if got := st.interval.Load(); got != 2*base {
		t.Fatalf("interval after first trip %d, want %d", got, 2*base)
	}

	// Half-open, then a single failed probe reopens immediately with the
	// doubled interval — no scan pass needed.
	clk.Advance(s.cfg.Breaker.OpenInterval + time.Second)
	s.healthScan(clk.Now())
	openedAt := clk.Now().UnixNano()
	clk.Advance(time.Millisecond)
	s.recordOutcome(0, OutcomeError, 0.001)
	if got := st.state.Load(); got != breakerOpen {
		t.Fatalf("failed probe left breaker %s, want open", breakerStateNames[got])
	}
	if got := st.interval.Load(); got != 4*base {
		t.Fatalf("interval after reopen %d, want %d", got, 4*base)
	}
	if until := st.openUntil.Load(); until < openedAt+2*base {
		t.Fatalf("openUntil %d not armed from the doubled interval", until)
	}
	if got := st.trips.Load(); got != 2 {
		t.Fatalf("trips %d, want 2", got)
	}

	// The doubling caps at MaxOpenInterval.
	for i := 0; i < 10; i++ {
		s.breakers.reopen(st, clk.Now().UnixNano())
	}
	if got, max := st.interval.Load(), int64(s.cfg.Breaker.MaxOpenInterval); got != max {
		t.Fatalf("interval %d after repeated reopens, want capped at %d", got, max)
	}
}

func TestOperatorPinOverridesBreaker(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)
	h := s.Handler()
	tripStation(t, s, clk, 0, 12)
	waitPlanVersion(t, s, 2)

	// Operator pins the station down: the breaker freezes — no amount of
	// elapsed time moves it to half-open, and no trial is posted.
	if w := postJSON(t, h, "/v1/health", map[string]any{"station": 0, "up": false}); w.Code != http.StatusAccepted {
		t.Fatalf("pin status %d", w.Code)
	}
	if !s.breakers.stations[0].pinned.Load() {
		t.Fatal("operator down did not pin the breaker")
	}
	waitPlanVersion(t, s, 3) // pin re-solve lands before the unpin below queues
	clk.Advance(time.Hour)
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerOpen {
		t.Fatalf("pinned breaker moved to %s", breakerStateNames[got])
	}
	if got := s.breakers.trial.Load(); got != -1 {
		t.Fatalf("pinned station posted as trial: %d", got)
	}
	// Even probe successes cannot close a pinned breaker via the scan.
	for i := 0; i < 20; i++ {
		s.recordOutcome(0, OutcomeSuccess, 0.001)
	}
	s.healthScan(clk.Now())
	if got := s.breakers.stations[0].state.Load(); got != breakerOpen {
		t.Fatalf("pinned breaker closed by outcomes: %s", breakerStateNames[got])
	}

	// Operator "up" lifts the pin AND force-resets the breaker: closed,
	// base interval, full weight immediately (no ramp).
	if w := postJSON(t, h, "/v1/health", map[string]any{"station": 0, "up": true}); w.Code != http.StatusAccepted {
		t.Fatalf("unpin status %d", w.Code)
	}
	st := &s.breakers.stations[0]
	if st.pinned.Load() || st.state.Load() != breakerClosed {
		t.Fatalf("operator up left pinned=%v state=%s",
			st.pinned.Load(), breakerStateNames[st.state.Load()])
	}
	if got := st.interval.Load(); got != int64(s.cfg.Breaker.OpenInterval) {
		t.Fatalf("operator up did not rearm base interval: %d", got)
	}
	if f := s.rampFactor(0, clk.Now()); f != 1 {
		t.Fatalf("operator recovery must not ramp: factor %g", f)
	}
	plan := waitPlanVersion(t, s, 4)
	if plan.Rates[0] <= 0 {
		t.Fatalf("operator-recovered station carries no load: %v", plan.Rates)
	}
	if plan.Ramp != nil {
		t.Fatalf("operator recovery produced a ramp: %v", plan.Ramp)
	}
}

func TestHealthEndpointReportsBreakerState(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)
	h := s.Handler()
	tripStation(t, s, clk, 2, 12)
	waitPlanVersion(t, s, 2)

	var hs HealthState
	if err := json.Unmarshal(getPath(t, h, "/v1/health").Body.Bytes(), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Up[2] {
		t.Fatal("tripped station reported up in the effective vector")
	}
	if len(hs.Stations) != s.group.N() {
		t.Fatalf("%d station blocks, want %d", len(hs.Stations), s.group.N())
	}
	sh := hs.Stations[2]
	if sh.Breaker != "open" || sh.Trips != 1 || sh.Errors < 12 {
		t.Fatalf("station block %+v, want open breaker with 1 trip and ≥12 errors", sh)
	}
	if sh.ErrorRate < 0.5 {
		t.Fatalf("error rate %g, want ≥ 0.5", sh.ErrorRate)
	}
	if sh.OpenRemainingSeconds <= 0 {
		t.Fatalf("open remaining %g, want positive", sh.OpenRemainingSeconds)
	}
	if other := hs.Stations[0]; other.Breaker != "closed" || !other.Up {
		t.Fatalf("healthy station block %+v", other)
	}
}

func TestRetryAfterDerivation(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)

	// Overload: wait for the excess fraction of the window to age out.
	d := Decision{Plan: &Plan{Capacity: 10}, Rate: 20}
	if got, want := s.retryAfterSeconds(d), 15; got != want {
		t.Fatalf("overload Retry-After %d, want %d (half of the 30s window)", got, want)
	}
	// Extreme overload clamps at the window, tiny overload at 1s.
	d.Rate = 1e6
	if got, want := s.retryAfterSeconds(d), 30; got != want {
		t.Fatalf("extreme overload Retry-After %d, want %d", got, want)
	}
	d.Rate = 10.001
	if got := s.retryAfterSeconds(d); got != 1 {
		t.Fatalf("marginal overload Retry-After %d, want 1", got)
	}

	// No overload signal: an open breaker's remaining interval is the
	// soonest the plan can improve.
	tripStation(t, s, clk, 0, 12)
	rem := time.Duration(s.breakers.stations[0].openUntil.Load() - clk.Now().UnixNano())
	want := int(rem.Seconds() + 0.999)
	if got := s.retryAfterSeconds(Decision{Plan: s.Plan(), Rate: 1}); got != want {
		t.Fatalf("breaker Retry-After %d, want %d (open remaining)", got, want)
	}

	// Neither signal: fall back to MinResolveInterval (default 1s).
	s2 := newBreakerTestServer(t, newFakeClock(), nil)
	if got := s2.retryAfterSeconds(Decision{Plan: s2.Plan(), Rate: 1}); got != 1 {
		t.Fatalf("fallback Retry-After %d, want 1", got)
	}
}

func TestApplyBreakersNeverEmptiesTheCluster(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, nil)
	// Force every breaker open: the overlay must ignore the exclusions
	// rather than leave the stream with nowhere to go.
	for i := range s.breakers.stations {
		s.breakers.stations[i].state.Store(breakerOpen)
	}
	up := make([]bool, s.group.N())
	for i := range up {
		up[i] = true
	}
	got, _ := s.applyBreakers(up)
	for i, u := range got {
		if !u {
			t.Fatalf("station %d excluded with zero survivors", i)
		}
	}
	// With one survivor, the rest are excluded as usual.
	s.breakers.stations[3].state.Store(breakerClosed)
	got, _ = s.applyBreakers(up)
	for i, u := range got {
		if want := i == 3; u != want {
			t.Fatalf("station %d up=%v, want %v", i, u, want)
		}
	}
}

func TestTrialPickDivertsProbeShare(t *testing.T) {
	clk := newFakeClock()
	s := newBreakerTestServer(t, clk, func(c *Config) {
		c.Breaker.TrialFraction = 0.3
	})
	// Post station 4 as half-open and count probe admissions.
	s.breakers.stations[4].state.Store(breakerHalfOpen)
	s.breakers.snapshotTrial()
	const n = 4000
	trials := 0
	for i := 0; i < n; i++ {
		d := s.Decide()
		if d.Trial {
			trials++
			if d.Station != 4 {
				t.Fatalf("trial routed to %d, want 4", d.Station)
			}
		}
	}
	frac := float64(trials) / n
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("trial fraction %.3f, want ≈0.3", frac)
	}
	// Clearing the trial stops probe traffic without touching the plan.
	s.breakers.stations[4].state.Store(breakerClosed)
	s.breakers.snapshotTrial()
	for i := 0; i < 500; i++ {
		if d := s.Decide(); d.Trial {
			t.Fatal("trial admitted with no half-open station")
		}
	}
}

// TestDeterministicRNGPinsTrialAdmissionSequence pins the contract that
// under DeterministicRNG a fixed seed reproduces the exact probe/pick
// sequence even while a breaker is half-open — across runs and across
// the fast and serialized hot paths, which share the draw logic.
func TestDeterministicRNGPinsTrialAdmissionSequence(t *testing.T) {
	type step struct {
		station int
		trial   bool
	}
	sequence := func(serialized bool) []step {
		clk := newFakeClock()
		s := newBreakerTestServer(t, clk, func(c *Config) {
			c.Seed = 42
			c.DeterministicRNG = true
			c.SerializedHotPath = serialized
			c.Breaker.TrialFraction = 0.2
		})
		s.breakers.stations[2].state.Store(breakerHalfOpen)
		s.breakers.snapshotTrial()
		out := make([]step, 400)
		for i := range out {
			d := s.Decide()
			out[i] = step{d.Station, d.Trial}
		}
		return out
	}
	a, b := sequence(false), sequence(false)
	trials := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged across same-seed runs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].trial {
			trials++
		}
	}
	if trials == 0 {
		t.Fatal("no trial admissions in 400 draws at fraction 0.2")
	}
	ser := sequence(true)
	for i := range a {
		if a[i] != ser[i] {
			t.Fatalf("step %d diverged between fast and serialized paths: %+v vs %+v", i, a[i], ser[i])
		}
	}
}

// TestStressBreakerChurnConcurrentDecide hammers Decide from every
// core while the failure detector trips, half-opens and recovers the
// busiest station in a tight loop — the race-detector workout for the
// breaker/dispatch interaction.
func TestStressBreakerChurnConcurrentDecide(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Breaker.ScanInterval = time.Hour // scans driven below
		c.Breaker.MinVolume = 5
		c.Breaker.OpenInterval = time.Millisecond
		c.Breaker.TrialSuccesses = 3
		c.Breaker.RampWindow = 5 * time.Millisecond
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var badStations atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := s.Decide()
				if !d.Rejected && (d.Station < 0 || d.Station >= s.group.N()) {
					badStations.Add(1)
				}
			}
		}()
	}
	// Churn: trip station 0, walk it through half-open back to closed,
	// repeat. Every transition races against the Decide storm above.
	for cycle := 0; cycle < 20; cycle++ {
		for i := 0; i < 12; i++ {
			s.recordOutcome(0, OutcomeError, 0.0001)
		}
		s.healthScan(s.now())
		time.Sleep(2 * time.Millisecond)
		s.healthScan(s.now()) // open → half-open
		for i := 0; i < 5; i++ {
			s.recordOutcome(0, OutcomeSuccess, 0.0001)
		}
		s.healthScan(s.now()) // half-open → closed + ramp
		time.Sleep(6 * time.Millisecond)
		s.healthScan(s.now()) // ramp complete
	}
	close(stop)
	wg.Wait()
	if n := badStations.Load(); n > 0 {
		t.Fatalf("%d decisions returned an out-of-range station", n)
	}
	if got := s.breakers.stations[0].trips.Load(); got < 10 {
		t.Fatalf("only %d trips across 20 churn cycles", got)
	}
	st := &s.breakers.stations[0]
	if state := st.state.Load(); state < breakerClosed || state > breakerOpen {
		t.Fatalf("corrupt breaker state %d", state)
	}
}
