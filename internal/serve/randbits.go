package serve

import "runtime"

// One-rand-word bit layout — the single source of truth.
//
// The lock-free hot path (Decide) draws exactly one random word per
// request and every randomized step consumes its own bit slice of that
// word. The slices MUST stay pairwise disjoint: two consumers sharing
// bits would correlate decisions that the plan's probabilistic model
// assumes independent (TestRandWordSlicesDisjoint pins this, and
// DESIGN.md §15 documents the contract). Layout of word u:
//
//	bits  0–5   estimator shard pick            (u & (1<<randEstShardBits − 1))
//	bits  6–11  sharded-RNG shard pick          (float64U(u >> randPickShardShift))
//	bits 12–43  JSQ(d) station samples, d ≤ 2   (u >> randSampleShift, 16 bits each)
//	bits 44–55  breaker trial coin              (u >> randTrialShift & trial mask)
//	bits 56–58  latency-sample gate             (u >> randLatGateShift & stride−1)
//	bits 59–63  spare
//
// Two deliberate non-consumers of u:
//
//   - The redirect re-draw reuses the RNG shard slice (bits 6–11). The
//     slice only selects WHICH SplitMix64 shard advances; the variate
//     itself comes from the shard's state walk, so the first draw and
//     the redraw are independent even from the same shard.
//   - The sampled latency observation picks its metrics shard from a
//     fresh random word: it fires 1-in-p2SampleStride and already pays
//     a clock read, so a second generator call is noise there — and it
//     frees 8 bits of u for the JSQ samples.
//
// JSQ(d) with d > 2 would need 16 more bits than u has spare, so those
// configurations draw a dedicated word for the samples (jsqBits).
//
// # Batch word streams (DecideBatch)
//
// The batched hot path draws ONE per-batch word u0 from the per-thread
// generator and then one per-decision word w_j per batch slot from a
// single SplitMix64 shard (shardedRNG.fillU: the shard u0's RNG-shard
// slice selects advances by k·gamma in one atomic add, and the k
// reserved lattice points mix into k independent words — NOT k slices
// of one word, so each decision gets a full-entropy word). u0's slices
// are consumed once per batch (estimator shard, RNG shard, redirect
// redraws); each w_j carries the per-decision slices:
//
//	bits  0–52  static pick variate             (w & (1<<randBatchPickBits − 1), d ≤ 2 unused)
//	bits 12–43  JSQ(d) station samples, d ≤ 2   (w >> randSampleShift, static pick unused)
//	bits 56–58  latency-sample gate             (w >> randLatGateShift & stride−1)
//
// The static pick and the JSQ samples overlap by design: they are
// alternative consumers (a plan routes by exactly one policy), so each
// policy's live slices stay pairwise disjoint — the invariant
// TestRandWordSlicesDisjoint pins per policy. JSQ(d) with d > 2 draws
// a second stream word per decision and consumes it whole, exactly as
// the single-shot path draws a dedicated jsqBits word. The trial-coin
// slice has no batch counterpart: a posted trial routes the whole
// batch through the per-decision exact path, which consumes the
// single-shot layout above.
const (
	// randBatchPickBits is the width of the batch static-pick variate:
	// 53 bits matches the [0, 1) lattice rand.Float64 draws from and
	// leaves the latency gate's slice (bits 56–58) untouched.
	randBatchPickBits = 53
)

const (
	randEstShardBits = 6 // estimator shard count is capped at 1<<this

	randPickShardBits  = 6 // RNG shard count is capped at 1<<this
	randPickShardShift = 6

	randSampleShift = 12 // d·16-bit JSQ station samples (d ≤ 2 from u)

	randTrialBits  = 12 // trial coin resolution: TrialFraction · 2^12
	randTrialShift = 44

	randLatGateBits  = 3 // == log2(p2SampleStride); pinned by test
	randLatGateShift = 56

	// randSpareBits claims the unconsumed top of the word by name, so
	// the layout tiles all 64 bits: est+rng+jsq+trial+gate+spare == 64
	// (the randbits lint check enforces the sum). Widening any slice
	// must shrink this count in the same commit — "spare" is a budget,
	// not a free-for-all.
	randSpareBits = 5
)

// hotShards sizes a per-CPU sharded structure whose shard pick consumes
// a bit slice of the per-request random word: the next power of two of
// GOMAXPROCS, capped so the index fits its slice. Beyond 64 shards the
// contention win is negligible anyway — the shard states are
// cache-line-padded and picks spread uniformly.
func hotShards(limitBits int) int {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if limit := 1 << limitBits; n > limit {
		n = limit
	}
	return n
}
