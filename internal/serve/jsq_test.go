package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/model"
)

// TestRandWordSlicesDisjoint pins the one-rand-word bit-layout contract
// from randbits.go: every consumer of the per-request word reads its
// own bit slice, and no two slices overlap. Overlap would correlate
// decisions the plan's probabilistic model assumes independent — the
// exact bug class the PR 8 layout audit fixed (the old trial coin at
// bits 24–39 shared bits with the redirect and latency-gate reads of
// u >> 32).
func TestRandWordSlicesDisjoint(t *testing.T) {
	slices := map[string]uint64{
		"estimator-shard": (1<<randEstShardBits - 1),
		"rng-shard":       (1<<randPickShardBits - 1) << randPickShardShift,
		"jsq-samples":     (1<<32 - 1) << randSampleShift, // two 16-bit station samples
		"trial-coin":      (1<<randTrialBits - 1) << randTrialShift,
		"latency-gate":    (1<<randLatGateBits - 1) << randLatGateShift,
	}
	names := make([]string, 0, len(slices))
	for name := range slices {
		names = append(names, name)
	}
	for i, a := range names {
		if slices[a] == 0 {
			t.Errorf("slice %s is empty", a)
		}
		for _, b := range names[i+1:] {
			if overlap := slices[a] & slices[b]; overlap != 0 {
				t.Errorf("bit slices %s and %s overlap: %#x", a, b, overlap)
			}
		}
	}

	// Batch word streams (DecideBatch) draw one word per decision from a
	// shard's SplitMix64 stream, so each word only needs the slices ONE
	// policy consumes plus the latency gate. Static pick (bits 0–52) and
	// the JSQ samples (bits 12–43) deliberately overlap ACROSS policies —
	// they are alternative consumers of the same word — so disjointness
	// is checked per policy, not jointly.
	batchSlices := map[string]map[string]uint64{
		"static": {
			"batch-pick":   (1<<randBatchPickBits - 1),
			"latency-gate": (1<<randLatGateBits - 1) << randLatGateShift,
		},
		"jsq": {
			"jsq-samples":  (1<<32 - 1) << randSampleShift,
			"latency-gate": (1<<randLatGateBits - 1) << randLatGateShift,
		},
	}
	for policy, ps := range batchSlices {
		pnames := make([]string, 0, len(ps))
		for name := range ps {
			pnames = append(pnames, name)
		}
		for i, a := range pnames {
			if ps[a] == 0 {
				t.Errorf("%s batch slice %s is empty", policy, a)
			}
			for _, b := range pnames[i+1:] {
				if overlap := ps[a] & ps[b]; overlap != 0 {
					t.Errorf("%s batch slices %s and %s overlap: %#x", policy, a, b, overlap)
				}
			}
		}
	}

	// The latency gate's width must match the sampling stride the
	// metrics layer advertises, or the 1-in-stride math silently skews.
	if 1<<randLatGateBits != p2SampleStride {
		t.Errorf("latency gate is %d-wide for stride %d", 1<<randLatGateBits, p2SampleStride)
	}
	// The shard pickers must never index past their slices.
	if n := hotShards(randEstShardBits); n > 1<<randEstShardBits {
		t.Errorf("hotShards(%d) = %d exceeds its %d-bit slice", randEstShardBits, n, randEstShardBits)
	}
	if n := hotShards(randPickShardBits); n > 1<<randPickShardBits {
		t.Errorf("hotShards(%d) = %d exceeds its %d-bit slice", randPickShardBits, n, randPickShardBits)
	}
	// The trial coin compares against TrialFraction scaled to the same
	// width the slice provides.
	s := newTestServer(t, func(c *Config) {
		c.Breaker.TrialFraction = 0.5
	})
	if got, want := s.breakers.trialBits, uint64(1<<randTrialBits)/2; got != want {
		t.Errorf("TrialFraction 0.5 scaled to %d trial bits, want %d", got, want)
	}
}

// TestJSQDepthCounterStress churns the router-mode depth counters from
// many goroutines under -race: every Decide increments the picked
// station, every ReportOutcome decrements it, and when all in-flight
// work has been reported every counter must read exactly zero — no
// leaked increments (which would starve a station under JSQ scoring)
// and no negative depths (the decrement clamps).
func TestJSQDepthCounterStress(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = PolicyJSQ
		c.Window = time.Hour // cold estimator: no admission shedding
	})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := s.Decide()
				if d.Rejected {
					t.Errorf("unexpected rejection: %s", d.Reason)
					return
				}
				if err := s.ReportOutcome(d.Station, OutcomeSuccess, time.Millisecond); err != nil {
					t.Errorf("report: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < s.group.N(); i++ {
		if depth := s.depths.Depth(i); depth != 0 {
			t.Errorf("station %d depth %d after all outcomes reported, want 0", i, depth)
		}
	}
	// Double-reports must clamp at zero, not wedge the score negative.
	s.ReportOutcome(0, OutcomeSuccess, time.Millisecond)
	if depth := s.depths.Depth(0); depth != 0 {
		t.Errorf("station 0 depth %d after unmatched report, want 0 (clamped)", depth)
	}
}

// TestJSQDeterministicSequence pins the DeterministicRNG contract for
// the JSQ(d) policy (see jsqBits): with a fixed seed, two servers
// route an identical station sequence, draw for draw.
func TestJSQDeterministicSequence(t *testing.T) {
	run := func() []int {
		s := newTestServer(t, func(c *Config) {
			c.Policy = PolicyJSQ
			c.Seed = 7
			c.DeterministicRNG = true
			c.Window = time.Hour
		})
		seq := make([]int, 500)
		for i := range seq {
			d := s.Decide()
			if d.Rejected {
				t.Fatalf("draw %d: unexpected rejection %s", i, d.Reason)
			}
			seq[i] = d.Station
			// Report every fourth completion so depths actually vary and
			// the pick sequence exercises the score, not just the samples.
			if i%4 == 0 {
				s.ReportOutcome(d.Station, OutcomeSuccess, time.Millisecond)
			}
		}
		return seq
	}
	a, b := run(), run()
	distinct := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: station %d vs %d (sequence diverged)", i, a[i], b[i])
		}
		distinct[a[i]] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("degenerate sequence: only stations %v picked", distinct)
	}
}

// TestJSQPolicyValidation covers the Config plumbing: policy naming,
// sample-count bounds, and the plan advertising the active policy.
func TestJSQPolicyValidation(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := New(Config{Group: g, Lambda: 1, Logger: quietLogger(), Policy: PolicyJSQ, SampleD: 1}); err == nil {
		t.Error("SampleD below dispatch.MinSampleD accepted")
	}
	if _, err := New(Config{Group: g, Lambda: 1, Logger: quietLogger(), Policy: PolicyJSQ, SampleD: dispatch.MaxSampleD + 1}); err == nil {
		t.Error("SampleD above dispatch.MaxSampleD accepted")
	}
	if _, err := New(Config{Group: g, Lambda: 1, Logger: quietLogger(), Policy: Policy(99)}); err == nil {
		t.Error("unknown policy accepted")
	}
	s := newTestServer(t, func(c *Config) { c.Policy = PolicyJSQ })
	if got := s.Plan().Policy; got != "jsq2" {
		t.Errorf("plan policy %q, want jsq2 (SampleD defaulted)", got)
	}
	if got := newTestServer(t, nil).Plan().Policy; got != "static" {
		t.Errorf("static plan policy %q, want static", got)
	}
}
