package serve

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, manually advanced clock shared by the
// estimator and server tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// estimatorImpls runs a subtest against both estimator implementations:
// the sharded lock-free default and the locked reference semantics.
func estimatorImpls(t *testing.T, f func(t *testing.T, mk func(window time.Duration, buckets int, now func() time.Time) estimator)) {
	t.Run("sharded", func(t *testing.T) {
		f(t, func(w time.Duration, b int, now func() time.Time) estimator {
			return NewRateEstimator(w, b, now)
		})
	})
	t.Run("locked", func(t *testing.T) {
		f(t, func(w time.Duration, b int, now func() time.Time) estimator {
			return NewLockedRateEstimator(w, b, now)
		})
	})
}

func TestRateEstimatorSteadyRate(t *testing.T) {
	estimatorImpls(t, func(t *testing.T, mk func(time.Duration, int, func() time.Time) estimator) {
		clk := newFakeClock()
		e := mk(10*time.Second, 10, clk.Now)
		if e.Warm() {
			t.Fatal("estimator warm before any observation")
		}
		// 10 arrivals per second for 20 seconds.
		for i := 0; i < 200; i++ {
			e.Observe(1)
			clk.Advance(100 * time.Millisecond)
		}
		if !e.Warm() {
			t.Fatal("estimator should be warm after two windows")
		}
		if r := e.Rate(); math.Abs(r-10) > 1.5 {
			t.Fatalf("rate = %.3f, want ≈10", r)
		}
		if e.Observed() != 200 {
			t.Fatalf("observed = %d, want 200", e.Observed())
		}
	})
}

func TestRateEstimatorEarlyReadings(t *testing.T) {
	estimatorImpls(t, func(t *testing.T, mk func(time.Duration, int, func() time.Time) estimator) {
		clk := newFakeClock()
		e := mk(10*time.Second, 10, clk.Now)
		// 5 arrivals/s for 2 seconds: an early reading must divide by the
		// elapsed span, not the full window (which would report 1/s).
		for i := 0; i < 10; i++ {
			e.Observe(1)
			clk.Advance(200 * time.Millisecond)
		}
		if e.Warm() {
			t.Fatal("estimator warm after 2s of a 10s window")
		}
		if r := e.Rate(); math.Abs(r-5) > 1.5 {
			t.Fatalf("early rate = %.3f, want ≈5", r)
		}
	})
}

func TestRateEstimatorIdleGapClears(t *testing.T) {
	estimatorImpls(t, func(t *testing.T, mk func(time.Duration, int, func() time.Time) estimator) {
		clk := newFakeClock()
		e := mk(10*time.Second, 10, clk.Now)
		for i := 0; i < 100; i++ {
			e.Observe(1)
			clk.Advance(100 * time.Millisecond)
		}
		if r := e.Rate(); r < 5 {
			t.Fatalf("rate before gap = %.3f", r)
		}
		// A gap longer than the window must wipe the whole ring: the old
		// burst is no longer evidence of current load.
		clk.Advance(time.Minute)
		if r := e.Rate(); r != 0 {
			t.Fatalf("rate after idle gap = %.3f, want 0", r)
		}
	})
}

func TestRateEstimatorRateDecaysAsWindowSlides(t *testing.T) {
	estimatorImpls(t, func(t *testing.T, mk func(time.Duration, int, func() time.Time) estimator) {
		clk := newFakeClock()
		e := mk(10*time.Second, 10, clk.Now)
		for i := 0; i < 100; i++ {
			e.Observe(1)
			clk.Advance(100 * time.Millisecond)
		}
		full := e.Rate()
		clk.Advance(5 * time.Second) // half the burst slides out
		half := e.Rate()
		if half >= full {
			t.Fatalf("rate did not decay: %.3f → %.3f", full, half)
		}
		if math.Abs(half-full/2) > 1.5 {
			t.Fatalf("half-window rate = %.3f, want ≈%.3f", half, full/2)
		}
	})
}

// Regression: Observe used to truncate fractional counts into the
// lifetime counter (observed += int64(n)), so sub-unit observations —
// batch weights, sampled streams — never registered. The count now
// accumulates in float and rounds once at read.
func TestRateEstimatorFractionalObservations(t *testing.T) {
	estimatorImpls(t, func(t *testing.T, mk func(time.Duration, int, func() time.Time) estimator) {
		clk := newFakeClock()
		e := mk(10*time.Second, 10, clk.Now)
		// 40 half-arrivals over 4 seconds: 20 arrivals at 5/s.
		for i := 0; i < 40; i++ {
			e.Observe(0.5)
			clk.Advance(100 * time.Millisecond)
		}
		if got := e.Observed(); got != 20 {
			t.Fatalf("observed = %d, want 20 (fractional counts truncated)", got)
		}
		if r := e.Rate(); math.Abs(r-5) > 1.5 {
			t.Fatalf("fractional rate = %.3f, want ≈5", r)
		}
	})
}
