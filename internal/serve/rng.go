package serve

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sync"
	"sync/atomic"
)

// dispatchRand supplies the uniform variates the dispatch hot path
// consumes (one optional admission draw, one plan pick per request;
// Uint64 feeds the JSQ(d) station samples when the sharded fast path
// is off, so DeterministicRNG reproduces pick sequences bit-exactly).
type dispatchRand interface {
	Float64() float64
	Uint64() uint64
}

// lockedRand serializes a single math/rand generator behind a mutex —
// the Config.DeterministicRNG path. For a given seed it reproduces the
// exact draw sequence of the original single-RNG server, which is what
// the cross-version determinism tests pin.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

//bladelint:allow lock -- serialized baseline: DeterministicRNG opts into the single-RNG mutex to pin exact draw sequences
func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

//bladelint:allow lock -- serialized baseline: DeterministicRNG opts into the single-RNG mutex to pin exact draw sequences
func (l *lockedRand) Uint64() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Uint64()
}

// shardedRNG is the lock-free default: GOMAXPROCS SplitMix64 states
// seeded from cfg.Seed. A draw picks a shard with a cheap per-thread
// random index and advances that shard's state with one atomic add.
// The SplitMix64 increment is odd, so a shard's state walks a
// full-period sequence even when concurrent draws interleave on it —
// interleaving permutes who gets which output, never the stream's
// statistical quality.
type shardedRNG struct {
	shards []rngShard
	mask   uint64
}

// rngShard pads each state word to its own cache line so concurrent
// draws on different shards never false-share.
type rngShard struct {
	state atomic.Uint64
	_     [120]byte
}

// splitmixGamma is Weyl-sequence increment of SplitMix64 (the odd
// integer nearest 2^64/φ).
const splitmixGamma = 0x9E3779B97F4A7C15

func newShardedRNG(seed int64) *shardedRNG {
	n := hotShards(randPickShardBits)
	r := &shardedRNG{shards: make([]rngShard, n), mask: uint64(n - 1)}
	s := uint64(seed)
	for i := range r.shards {
		// Each shard starts at a mixed, well-separated point of the
		// seed's Weyl sequence.
		s += splitmixGamma
		r.shards[i].state.Store(splitmix64(s))
	}
	return r
}

func (r *shardedRNG) Float64() float64 { return r.float64U(randv2.Uint64()) }

// Uint64 draws a full random word by advancing a randomly picked
// shard's SplitMix64 state — the JSQ(d) sample source when the caller
// has no spare per-request bits to hand over (d > 2, serialized path).
func (r *shardedRNG) Uint64() uint64 { return r.uint64U(randv2.Uint64()) }

// float64U is Float64 with the shard-pick word supplied by the caller —
// the dispatch hot path draws one random word per request and feeds its
// shard-pick slice here instead of paying a second generator call.
func (r *shardedRNG) float64U(u uint64) float64 {
	z := r.uint64U(u)
	// 53 random bits over 2^53, the same [0, 1) lattice rand.Float64
	// draws from; z>>11 ≤ 2^53−1, so the result is always < 1.
	return float64(z>>11) / (1 << 53)
}

// uint64U advances the shard the low bits of u select and returns the
// mixed output. Only randPickShardBits bits of u are consumed (the
// shard count is capped to match); the variate's entropy comes from
// the shard's state walk, not from u.
//
//bladelint:allow randbits -- r.mask is the runtime shard count minus one, capped at 1<<randPickShardBits so it never reads past the rng slice the caller shifted in
func (r *shardedRNG) uint64U(u uint64) uint64 {
	sh := &r.shards[u&r.mask]
	return splitmix64(sh.state.Add(splitmixGamma))
}

// fillU draws len(dst) random words from the single shard the low bits
// of u select, paying ONE atomic add for the whole batch: the add
// reserves a len(dst)-step span of the shard's Weyl sequence and each
// reserved lattice point mixes into its own full-entropy output word.
// Concurrent batches (and interleaved single draws) on the same shard
// reserve disjoint spans, so no word is ever handed out twice.
//
//bladelint:allow randbits -- r.mask is the runtime shard count minus one, capped at 1<<randPickShardBits so it never reads past the rng slice the caller shifted in
func (r *shardedRNG) fillU(u uint64, dst []uint64) {
	sh := &r.shards[u&r.mask]
	stride := splitmixGamma * uint64(len(dst))
	base := sh.state.Add(stride) - stride
	for i := range dst {
		base += splitmixGamma
		dst[i] = splitmix64(base)
	}
}

// splitmix64 is the output mix of Steele, Lea & Flood's SplitMix64.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
