package serve

import (
	"context"
	"errors"
	"fmt"
	randv2 "math/rand/v2"
	"sync/atomic"
	"time"
)

// Backend executes one admitted request against the chosen station and
// reports how it went. When Config.Backend is set the daemon stops
// being a pure router: Server.Dispatch (and POST /v1/dispatch) run the
// call through the guard — per-attempt timeouts, budgeted retries with
// decorrelated-jitter backoff, optional hedging — and every attempt's
// outcome feeds the failure detector.
type Backend func(ctx context.Context, station int) error

// ErrShed reports that admission control rejected the request before
// any backend attempt was made.
var ErrShed = errors.New("serve: request shed by admission control")

// GuardConfig tunes the guarded backend dispatch wrapper. The zero
// value takes all defaults; it is ignored when Config.Backend is nil.
type GuardConfig struct {
	// AttemptTimeout bounds each backend attempt. Default 1s.
	AttemptTimeout time.Duration
	// MaxAttempts bounds attempts per request (first try included).
	// Default 3.
	MaxAttempts int
	// RetryBudget is the sustained retries-per-request ratio: each
	// arriving request earns this many retry tokens and each retry
	// spends one, so retry amplification is capped at 1+RetryBudget
	// even when every backend call fails. Default 0.1.
	RetryBudget float64
	// RetryBurst caps the retry tokens banked during healthy periods.
	// Default 10.
	RetryBurst int
	// BackoffBase/BackoffCap bound the decorrelated-jitter backoff
	// between attempts: sleep ~ U[base, 3·prev] clamped to cap.
	// Defaults 5ms and 500ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Hedge enables a second, racing attempt when the first has not
	// completed after the observed p95 latency (idempotent workloads
	// only — both attempts may execute).
	Hedge bool
	// HedgeMinDelay floors the hedge delay while the latency estimate
	// is cold. Default 10ms.
	HedgeMinDelay time.Duration
}

func (c *GuardConfig) withDefaults() {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 10
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = 500 * time.Millisecond
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 10 * time.Millisecond
	}
}

// retryTokenScale is the fixed-point scale of the retry-budget bucket:
// fractional earn rates (0.1 token per request) accumulate exactly in
// integer atomics.
const retryTokenScale = 1024

// guardState is the wrapper's shared runtime state — a token bucket
// and operational counters, all atomics.
type guardState struct {
	// tokens is the retry budget in retryTokenScale fixed point.
	tokens    atomic.Int64
	earn      int64 // tokens earned per arriving request (scaled)
	maxTokens int64 // bucket cap (scaled)
	// hedgeDelay is the current hedge trigger in nanoseconds,
	// refreshed by the health scan from the observed p95.
	hedgeDelay atomic.Int64

	attempts      atomic.Int64
	retries       atomic.Int64
	retriesDenied atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
}

func (g *guardState) init(cfg GuardConfig) {
	g.earn = int64(cfg.RetryBudget * retryTokenScale)
	g.maxTokens = int64(cfg.RetryBurst) * retryTokenScale
	g.tokens.Store(g.maxTokens)
	g.hedgeDelay.Store(int64(cfg.HedgeMinDelay))
}

// onRequest credits the budget for one arriving request.
func (g *guardState) onRequest() {
	for {
		v := g.tokens.Load()
		n := v + g.earn
		if n > g.maxTokens {
			n = g.maxTokens
		}
		if n == v || g.tokens.CompareAndSwap(v, n) {
			return
		}
	}
}

// spendRetry withdraws one whole retry token, refusing when the
// bucket cannot cover it — the property that stops retries from
// amplifying an outage.
func (g *guardState) spendRetry() bool {
	for {
		v := g.tokens.Load()
		if v < retryTokenScale {
			return false
		}
		if g.tokens.CompareAndSwap(v, v-retryTokenScale) {
			return true
		}
	}
}

// DispatchResult reports one guarded dispatch: the routing decision,
// how many attempts ran, whether a hedge fired and won, and the final
// error (nil on success, ErrShed when admission rejected the request).
type DispatchResult struct {
	Decision
	Attempts int
	Hedged   bool
	HedgeWon bool
	Err      error
}

// Dispatch routes one request and, when a Backend is configured,
// executes it under the guard: per-attempt timeouts, retries on fresh
// stations under the retry budget with decorrelated-jitter backoff,
// and optional hedging. Every attempt's outcome is recorded for the
// failure detector. Without a Backend it degrades to Decide.
func (s *Server) Dispatch(ctx context.Context) DispatchResult {
	var d Decision
	if s.coal != nil {
		// Router mode with coalescing on (BatchMax excludes Backend):
		// concurrent dispatches share one batched hot-path pass.
		d = s.coal.decide()
	} else {
		d = s.Decide()
	}
	res := DispatchResult{Decision: d}
	if d.Rejected {
		res.Err = ErrShed
		return res
	}
	if s.backend == nil {
		return res
	}
	g := &s.cfg.Guard
	s.guard.onRequest()
	station := d.Station
	prev := g.BackoffBase
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		// Probes to a half-open station must not hedge: the hedge
		// would mask exactly the latency the trial is measuring.
		won, err := s.attempt(ctx, station, g.Hedge && !d.Trial, &res)
		if err == nil {
			res.Station = won
			res.Err = nil
			return res
		}
		res.Err = err
		if attempt >= g.MaxAttempts || ctx.Err() != nil {
			return res
		}
		if !s.guard.spendRetry() {
			s.guard.retriesDenied.Add(1)
			return res
		}
		s.guard.retries.Add(1)
		sleep := decorrelatedJitter(g.BackoffBase, g.BackoffCap, prev)
		prev = sleep
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return res
		case <-t.C:
		}
		station = s.repick(station)
	}
}

// attempt runs one guarded backend call. With hedge set, a second
// attempt on a different station races the first once the observed
// p95 delay elapses; the first completion wins and the loser's
// context is cancelled. Returns the station whose attempt produced
// the returned error/success.
func (s *Server) attempt(ctx context.Context, station int, hedge bool, res *DispatchResult) (int, error) {
	actx, cancel := context.WithTimeout(ctx, s.cfg.Guard.AttemptTimeout)
	defer cancel()
	if !hedge {
		return station, s.call(actx, station)
	}
	type completion struct {
		station int
		err     error
		hedged  bool
	}
	ch := make(chan completion, 2)
	go func() { ch <- completion{station, s.call(actx, station), false} }()
	timer := time.NewTimer(time.Duration(s.guard.hedgeDelay.Load()))
	defer timer.Stop()
	select {
	case first := <-ch:
		return first.station, first.err
	case <-actx.Done():
		first := <-ch
		return first.station, first.err
	case <-timer.C:
	}
	second := s.repick(station)
	s.guard.hedges.Add(1)
	res.Hedged = true
	go func() { ch <- completion{second, s.call(actx, second), true} }()
	first := <-ch
	if first.err == nil {
		cancel() // release the loser promptly
		if first.hedged {
			s.guard.hedgeWins.Add(1)
			res.HedgeWon = true
		}
		return first.station, nil
	}
	other := <-ch
	if other.err == nil {
		if other.hedged {
			s.guard.hedgeWins.Add(1)
			res.HedgeWon = true
		}
		return other.station, nil
	}
	return first.station, first.err
}

// call runs the backend once against a station, classifies the result
// and feeds the failure detector. A cancellation that the caller's
// own context caused (hedge loser, client gone) is not held against
// the station.
func (s *Server) call(ctx context.Context, station int) error {
	if s.depths != nil {
		// JSQ depth brackets the real attempt: retries and hedges each
		// count the station actually holding the work. The deferred
		// decrement also covers the uncharged-cancellation early return.
		s.depths.inc(station)
		defer s.depths.dec(station)
	}
	t0 := s.now()
	err := s.backend(ctx, station)
	s.guard.attempts.Add(1)
	if err != nil && errors.Is(err, context.Canceled) {
		return err
	}
	kind := OutcomeSuccess
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			kind = OutcomeTimeout
		} else {
			kind = OutcomeError
		}
	}
	s.recordOutcome(station, kind, s.now().Sub(t0).Seconds())
	return err
}

// repick redraws a station from the live plan for a retry or hedge,
// avoiding the failed station and breaker-rejected stations when a
// few redraws suffice. With a single surviving station the original
// pick comes back — retrying the same place beats failing outright.
func (s *Server) repick(avoid int) int {
	plan := s.plan.Load()
	pick := avoid
	for try := 0; try < 4; try++ {
		pick = plan.PickU(s.rnd.Float64())
		if pick != avoid && !s.breakers.rejects(pick) {
			return pick
		}
	}
	return pick
}

// decorrelatedJitter is the AWS architecture-blog backoff: each sleep
// is uniform on [base, 3·prev], clamped to cap. It decorrelates
// retry storms (unlike exponential-with-equal-jitter, no two clients
// share a deterministic envelope) while still growing geometrically
// in expectation.
func decorrelatedJitter(base, limit, prev time.Duration) time.Duration {
	if prev < base {
		prev = base
	}
	span := int64(3*prev - base)
	d := base
	if span > 0 {
		d += time.Duration(randv2.Int64N(span))
	}
	if d > limit {
		d = limit
	}
	return d
}

// ReportOutcome feeds one externally executed completion into the
// failure detector — for deployments where bladed only routes and the
// caller runs the work itself. latency may be negative when unknown.
func (s *Server) ReportOutcome(station int, kind Outcome, latency time.Duration) error {
	if station < 0 || station >= s.group.N() {
		return fmt.Errorf("serve: station %d out of range [0, %d)", station, s.group.N())
	}
	if kind >= numOutcomes {
		return fmt.Errorf("serve: unknown outcome %d", kind)
	}
	if s.depths != nil && s.backend == nil {
		// Router-only JSQ: the external completion closes the in-flight
		// interval Decide opened (zero-clamped against double reports).
		s.depths.dec(station)
	}
	s.recordOutcome(station, kind, latency.Seconds())
	return nil
}

// recordOutcome is the shared completion sink: tracker statistics plus
// breaker reaction. It sits on the serving hot path when a Backend is
// configured, so it follows the same lock-free discipline as Decide.
//
//bladelint:hotpath
func (s *Server) recordOutcome(station int, kind Outcome, latencySeconds float64) {
	at := s.now().UnixNano()
	u := randv2.Uint64()
	s.tracker.record(station, kind, at, latencySeconds, u)
	s.breakers.onOutcome(station, kind, at)
}
