package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// decideRounds drives one server through a fixed schedule of decision
// rounds, either sequentially (one Decide per decision) or batched (one
// DecideBatch per round), and returns the routed station sequence.
// Outcome reports land at round boundaries in BOTH modes, so the JSQ
// depth state evolves identically and any divergence is the batch
// path's fault, not the schedule's.
func decideRounds(t *testing.T, s *Server, rounds []int, batched bool) []int {
	t.Helper()
	var seq []int
	for _, k := range rounds {
		var round []Decision
		if batched {
			round = make([]Decision, k)
			s.DecideBatch(round)
		} else {
			round = make([]Decision, k)
			for i := range round {
				round[i] = s.Decide()
			}
		}
		for i, d := range round {
			if d.Rejected {
				t.Fatalf("unexpected rejection: %s", d.Reason)
			}
			seq = append(seq, d.Station)
			if i%3 == 0 {
				s.ReportOutcome(d.Station, OutcomeSuccess, time.Millisecond)
			}
		}
	}
	return seq
}

// TestDecideBatchDeterministicSequence pins the tentpole equivalence
// contract: under Config.DeterministicRNG, DecideBatch routes the
// IDENTICAL station sequence as the same number of sequential Decide
// calls, draw for draw, across static, sparse-picker and JSQ(2)
// configurations and across uneven chunk schedules (crossing the
// internal batchChunk boundary).
func TestDecideBatchDeterministicSequence(t *testing.T) {
	rounds := []int{5, 1, 17, batchChunk, 2*batchChunk + 9, 3}
	configs := map[string]func(*Config){
		"static": nil,
		"jsq2":   func(c *Config) { c.Policy = PolicyJSQ },
		"serialized": func(c *Config) {
			c.SerializedHotPath = true
		},
	}
	for name, mutate := range configs {
		t.Run(name, func(t *testing.T) {
			build := func() *Server {
				return newTestServer(t, func(c *Config) {
					c.Seed = 42
					c.DeterministicRNG = true
					c.Window = time.Hour // cold estimator: no admission draws
					if mutate != nil {
						mutate(c)
					}
				})
			}
			seqRun := decideRounds(t, build(), rounds, false)
			batchRun := decideRounds(t, build(), rounds, true)
			for i := range seqRun {
				if seqRun[i] != batchRun[i] {
					t.Fatalf("decision %d: sequential routed %d, batched routed %d",
						i, seqRun[i], batchRun[i])
				}
			}
			distinct := map[int]bool{}
			for _, st := range seqRun {
				distinct[st] = true
			}
			if len(distinct) < 2 {
				t.Fatalf("degenerate sequence: only stations %v picked", distinct)
			}
		})
	}
}

// TestDecideBatchDeterministicSequenceSparse is the same pin on a
// fleet-scale sparse-picker plan (the PickBatchSparse path): 256
// stations, light load, sparse solve — the configuration
// TestBuildPlanSparsePickerMatchesDense shows trips buildPlan's
// compact-table gate.
func TestDecideBatchDeterministicSequenceSparse(t *testing.T) {
	g := fleetGroup(256)
	for i := range g.Servers {
		g.Servers[i].Speed = 0.2 + 0.05*float64(i%32)
		g.Servers[i].SpecialRate = 0.2 * g.Servers[i].Capacity(g.TaskSize)
	}
	build := func() *Server {
		s, err := New(Config{
			Group:            g,
			Lambda:           0.05 * g.MaxGenericRate(),
			Opts:             core.Options{Sparse: true},
			Logger:           quietLogger(),
			Seed:             7,
			DeterministicRNG: true,
			Window:           time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	rounds := []int{batchChunk + 3, 9, 40}
	seqRun := decideRounds(t, build(), rounds, false)
	batchRun := decideRounds(t, build(), rounds, true)
	for i := range seqRun {
		if seqRun[i] != batchRun[i] {
			t.Fatalf("decision %d: sequential routed %d, batched routed %d",
				i, seqRun[i], batchRun[i])
		}
	}
}

// TestDecideBatchFastPathDistribution checks the vectorized fast path
// (sharded RNG, batch word streams, PickBatch) against the plan's own
// split: over many batched decisions each loaded station's empirical
// share must track its planned share. This is the guard against a
// variate-scaling bug in the batch word layout — e.g. consuming bits
// that overlap the latency gate would skew the top of the cumulative
// table.
func TestDecideBatchFastPathDistribution(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Window = time.Hour })
	plan := s.Plan()
	var total float64
	for _, r := range plan.Rates {
		total += r
	}
	const picks = 200_000
	counts := make(map[int]int)
	var dst [3*batchChunk + 11]Decision
	routed := 0
	for routed < picks {
		k := len(dst)
		if picks-routed < k {
			k = picks - routed
		}
		s.DecideBatch(dst[:k])
		for _, d := range dst[:k] {
			if d.Rejected {
				t.Fatalf("unexpected rejection: %s", d.Reason)
			}
			counts[d.Station]++
		}
		routed += k
	}
	for i, r := range plan.Rates {
		want := r / total
		got := float64(counts[i]) / picks
		if math.Abs(got-want) > 0.01 {
			t.Errorf("station %d: empirical share %.4f, planned %.4f", i, got, want)
		}
	}
}

// TestDecideBatchEmptyAndChunking covers the degenerate sizes: an empty
// dst is a no-op, and a dst far beyond batchChunk is fully decided.
func TestDecideBatchEmptyAndChunking(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Window = time.Hour })
	s.DecideBatch(nil)
	dst := make([]Decision, 5*batchChunk+1)
	s.DecideBatch(dst)
	for i, d := range dst {
		if d.Plan == nil || d.Rejected || d.Station < 0 || d.Station >= s.group.N() {
			t.Fatalf("slot %d undecided or invalid: %+v", i, d)
		}
	}
}

// TestDecideBatchChurnStress churns DecideBatch from many goroutines
// under -race while operator health flips force breaker resets,
// redirects and plan re-solves mid-batch. Every routed decision is
// reported, so when the dust settles the JSQ depth counters must read
// exactly zero — aggregated incN bumps and per-report decrements must
// balance through every overlap with a flip.
func TestDecideBatchChurnStress(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = PolicyJSQ
		c.Window = time.Hour
	})
	h := s.Handler()
	const workers, perWorker = 8, 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Flip station 0 down and back up while batches are in flight:
		// down pins it (breaker rejects → batch redirects), up force-
		// resets the breaker.
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			flip = !flip
			postJSON(t, h, "/v1/health", map[string]any{"station": 0, "up": !flip})
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst [batchChunk + 5]Decision
			for i := 0; i < perWorker; i++ {
				k := 1 + (w*perWorker+i)%len(dst)
				s.DecideBatch(dst[:k])
				for _, d := range dst[:k] {
					if d.Rejected {
						continue
					}
					if d.Station < 0 || d.Station >= s.group.N() {
						t.Errorf("invalid station %d", d.Station)
						return
					}
					s.ReportOutcome(d.Station, OutcomeSuccess, time.Millisecond)
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Re-admit station 0 so the final state is clean.
	postJSON(t, h, "/v1/health", map[string]any{"station": 0, "up": true})
	for i := 0; i < s.group.N(); i++ {
		if depth := s.depths.Depth(i); depth != 0 {
			t.Errorf("station %d depth %d after all outcomes reported, want 0", i, depth)
		}
	}
}

// TestObserveNFractionalExactness pins the estimator's fixed-point
// batch-observation contract (the ObserveN the batched path relies on):
// fractional counts accumulate exactly and round once at read, and a
// DecideBatch of k bumps the lifetime count by exactly k.
func TestObserveNFractionalExactness(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	e := NewRateEstimator(time.Second, 10, clock)
	for i := 0; i < 8; i++ {
		e.Observe(0.25)
	}
	if got := e.Observed(); got != 2 {
		t.Errorf("8 × Observe(0.25): Observed() = %d, want 2", got)
	}
	e2 := NewRateEstimator(time.Second, 10, clock)
	for i := 0; i < 10; i++ {
		e2.Observe(0.3)
	}
	if got := e2.Observed(); got != 3 {
		t.Errorf("10 × Observe(0.3): Observed() = %d, want 3 (not truncated per call)", got)
	}

	s := newTestServer(t, func(c *Config) { c.Window = time.Hour })
	before := s.fastEst.Observed()
	dst := make([]Decision, 10)
	s.DecideBatch(dst)
	if got := s.fastEst.Observed() - before; got != 10 {
		t.Errorf("DecideBatch(10) bumped Observed by %d, want 10", got)
	}
}

// TestDispatchBatchEndpoint covers POST /v1/dispatch/batch: a valid
// count returns that many decisions against one plan version, and
// out-of-range counts are rejected with 400.
func TestDispatchBatchEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	w := postJSON(t, h, "/v1/dispatch/batch", map[string]int{"count": 32})
	if w.Code != http.StatusOK {
		t.Fatalf("batch dispatch: %d %s", w.Code, w.Body)
	}
	var resp BatchDispatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Stations)+resp.Rejected != 32 {
		t.Fatalf("%d stations + %d rejected != 32", len(resp.Stations), resp.Rejected)
	}
	if resp.PlanVersion != s.Plan().Version {
		t.Errorf("plan version %d, want %d", resp.PlanVersion, s.Plan().Version)
	}
	for _, st := range resp.Stations {
		if st < 0 || st >= s.group.N() {
			t.Errorf("station %d out of range", st)
		}
	}
	for _, bad := range []int{0, -3, maxBatchRequest + 1} {
		if w := postJSON(t, h, "/v1/dispatch/batch", map[string]int{"count": bad}); w.Code != http.StatusBadRequest {
			t.Errorf("count %d: got %d, want 400", bad, w.Code)
		}
	}
}

// TestBatchConfigValidation pins the coalescer's config gates: batching
// is router-mode-only, non-negative, and bounded.
func TestBatchConfigValidation(t *testing.T) {
	g := model.LiExample1Group()
	base := func() Config {
		return Config{
			Group:  g,
			Lambda: 0.5 * g.MaxGenericRate(),
			Logger: quietLogger(),
		}
	}
	cfg := base()
	cfg.BatchMax = 8
	cfg.Backend = func(ctx context.Context, station int) error { return nil }
	if _, err := New(cfg); err == nil {
		t.Error("BatchMax with a Backend accepted")
	}
	cfg = base()
	cfg.BatchMax = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative BatchMax accepted")
	}
	cfg = base()
	cfg.BatchMax = maxBatchRequest + 1
	if _, err := New(cfg); err == nil {
		t.Error("oversized BatchMax accepted")
	}
}

// TestCoalescerGroupsConcurrentDispatches drives Dispatch from many
// concurrent goroutines against a coalescing server: every request gets
// a valid decision, the exact dispatch counter matches the request
// count (each request decided once, no loss, no double-count), and a
// solitary request takes the single-shot path without waiting out the
// linger.
func TestCoalescerGroupsConcurrentDispatches(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.BatchMax = 8
		c.BatchLinger = 200 * time.Microsecond
		c.Window = time.Hour
	})
	if s.coal == nil {
		t.Fatal("coalescer not constructed for BatchMax > 1")
	}
	const requests = 96
	var wg sync.WaitGroup
	results := make([]DispatchResult, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Dispatch(context.Background())
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Rejected || r.Err != nil {
			t.Fatalf("request %d: rejected=%v err=%v", i, r.Rejected, r.Err)
		}
		if r.Station < 0 || r.Station >= s.group.N() {
			t.Fatalf("request %d: station %d out of range", i, r.Station)
		}
	}
	if got := s.fastM.dispatchTotal.Load(); got != requests {
		t.Errorf("dispatch counter %d after %d coalesced requests, want exact match", got, requests)
	}
	// Solitary request: no concurrent peer, so the low-QPS fallback must
	// answer immediately (well under the linger × a wide margin).
	start := time.Now()
	if r := s.Dispatch(context.Background()); r.Rejected || r.Err != nil {
		t.Fatalf("solitary dispatch failed: %+v", r)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("solitary dispatch took %v; low-QPS fallback should not linger", el)
	}
}

// TestFillUMatchesSequentialDraws pins the batch word stream against
// the single-draw stream: fillU(u, dst) must hand out exactly the
// words k successive uint64U(u) calls would, so batch and single-shot
// decisions draw from one lattice (and the disjoint-reservation
// argument in fillU's doc holds by construction).
func TestFillUMatchesSequentialDraws(t *testing.T) {
	a, b := newShardedRNG(99), newShardedRNG(99)
	const k = 24
	var batch [k]uint64
	a.fillU(5, batch[:])
	for i := 0; i < k; i++ {
		if single := b.uint64U(5); single != batch[i] {
			t.Fatalf("word %d: batch %#x, sequential %#x", i, batch[i], single)
		}
	}
	// A second batch continues the same stream, not a restarted one.
	var batch2 [4]uint64
	a.fillU(5, batch2[:])
	for i := range batch2 {
		if single := b.uint64U(5); single != batch2[i] {
			t.Fatalf("second batch word %d: batch %#x, sequential %#x", i, batch2[i], single)
		}
	}
}
