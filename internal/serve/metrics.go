package serve

import (
	"fmt"
	"io"
	randv2 "math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// rejectReason indexes the fixed set of 503 causes. A closed enum
// (rather than free-form strings) is what lets the sharded metrics keep
// rejection counters in a plain atomic array.
type rejectReason uint8

const (
	rejectAdmission rejectReason = iota
	rejectConcurrency
	rejectShed
	numRejectReasons
)

// rejectReasonNames is indexed by rejectReason; the declaration order
// is alphabetical so the exposition stays sorted like the original
// map-based implementation.
var rejectReasonNames = [numRejectReasons]string{"admission", "concurrency", "shed"}

// serverMetrics is the daemon's operational-statistics sink. Two
// implementations exist: shardedMetrics (default, lock-free counters
// with per-shard latency accumulators) and lockedMetrics (the original
// single-mutex design, kept as the serialized baseline).
type serverMetrics interface {
	// observeDispatch records one served routing decision.
	observeDispatch(station int, seconds float64)
	// reject counts one rejected request by reason.
	reject(r rejectReason)
	// resolved records the outcome of one re-solve attempt.
	resolved(err error)
	// latencyQuantile95 returns the current p95 dispatch latency in
	// seconds (0 while cold) — the hedge-delay source.
	latencyQuantile95() float64
	// writeTo renders the Prometheus text exposition (format 0.0.4).
	writeTo(w io.Writer, plan *Plan, rate float64, warm bool)
}

// metricsSnapshot is a consistent copy of the counters taken at scrape
// time; both implementations render through it so the exposition is
// byte-identical across them.
type metricsSnapshot struct {
	dispatchTotal int64
	byStation     []int64
	rejected      [numRejectReasons]int64
	resolveTotal  int64
	resolveErrors int64
	durationCount int64
	durationSum   float64
	q50, q95, q99 float64
}

// shardedMetrics is the lock-free default: monotonic counters are plain
// atomics (dispatchTotal, per-station, the reason-indexed rejection
// array) and the latency moments/quantiles are accumulated in
// GOMAXPROCS shards — each shard a Welford plus three P² estimators
// behind its own mutex, touched by roughly 1/GOMAXPROCS of requests —
// merged only at /metrics scrape time (metrics.Welford.Merge and
// metrics.MergeP2Quantiles; see the latter for the merge error bound).
type shardedMetrics struct {
	dispatchTotal atomic.Int64
	resolveTotal  atomic.Int64
	resolveErrors atomic.Int64
	rejected      [numRejectReasons]atomic.Int64
	byStation     []atomic.Int64
	shards        []latencyShard
	mask          uint64
}

// latencyShard holds one shard's latency accumulators; the pad keeps
// adjacent shards' locks off the same cache line.
type latencyShard struct {
	mu            sync.Mutex
	latency       metrics.Welford
	q50, q95, q99 *metrics.P2Quantile
	_             [64]byte
}

// p2SampleStride is the dispatch hot path's latency sampling rate: one
// request in 8 (chosen by random bits, so the sample is unbiased) takes
// the second clock reading and feeds the Welford/P² accumulators. The
// clock read itself is the dominant per-dispatch cost on the lock-free
// path, so sampling it — not just the estimator update — is what buys
// the speedup. The exposition keeps _count exact (from the atomic
// dispatch counter) and reports _sum as mean-of-sample × count, an
// unbiased estimate; quantiles come from the sampled stream, which is
// exchangeable with the full one. Must be a power of two (the sampler
// masks random bits).
const p2SampleStride = 8

func newServerMetrics(stations int) *shardedMetrics {
	n := nextPow2(runtime.GOMAXPROCS(0))
	m := &shardedMetrics{
		byStation: make([]atomic.Int64, stations),
		shards:    make([]latencyShard, n),
		mask:      uint64(n - 1),
	}
	for i := range m.shards {
		m.shards[i].q50, _ = metrics.NewP2Quantile(0.5)
		m.shards[i].q95, _ = metrics.NewP2Quantile(0.95)
		m.shards[i].q99, _ = metrics.NewP2Quantile(0.99)
	}
	return m
}

// observeDispatch records one served decision with its latency — the
// general entry point (tests, non-hot callers). The hot path instead
// calls countDispatch every request and observeLatency on the sampled
// subset.
func (m *shardedMetrics) observeDispatch(station int, seconds float64) {
	m.countDispatch(station)
	m.observeLatency(seconds, randv2.Uint64())
}

// countDispatch bumps the exact dispatch counters: two uncontended
// atomic adds, no lock.
func (m *shardedMetrics) countDispatch(station int) {
	m.dispatchTotal.Add(1)
	if station >= 0 && station < len(m.byStation) {
		m.byStation[station].Add(1)
	}
}

// countDispatchN bumps the total dispatch counter by a whole batch in
// one add; the per-station counts follow via countStationN so a batch
// costs one add per distinct station, not one per decision.
func (m *shardedMetrics) countDispatchN(n int64) {
	m.dispatchTotal.Add(n)
}

// countStationN adds a batch's per-station routed count.
func (m *shardedMetrics) countStationN(station int, n int64) {
	if station >= 0 && station < len(m.byStation) {
		m.byStation[station].Add(n)
	}
}

// observeLatencyN feeds the same measured latency n times into one
// shard's accumulators under a single lock acquisition — the batched
// path's latency sink. The batch passes its gate-hit count: each
// decision kept its own 1-in-p2SampleStride gate draw (so the sampled
// fraction stays exactly Binomial(k, 1/stride)), but the hits share the
// batch's one end-of-chunk clock read, which is the whole point of
// batching the gate.
//
//bladelint:allow lock -- per-shard mutex on the sampled latency branch, amortized to one acquisition per batch; P² quantile state has no lock-free form
//bladelint:allow randbits -- m.mask is the runtime metrics shard count minus one; u here is a fresh word drawn for shard selection, not the layout word (randbits.go: deliberate non-consumers)
func (m *shardedMetrics) observeLatencyN(seconds float64, n int, u uint64) {
	sh := &m.shards[u&m.mask]
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		sh.latency.Add(seconds)
		sh.q50.Add(seconds)
		sh.q95.Add(seconds)
		sh.q99.Add(seconds)
	}
	sh.mu.Unlock()
}

// observeLatency feeds one measured latency into a shard's accumulators;
// u supplies the shard pick so the hot path can reuse its per-request
// random word.
//
//bladelint:allow lock -- per-shard mutex on a 1-in-p2SampleStride sampled branch; P² quantile state has no lock-free form
//bladelint:allow randbits -- m.mask is the runtime metrics shard count minus one; u here is a fresh word drawn for shard selection, not the layout word (randbits.go: deliberate non-consumers)
func (m *shardedMetrics) observeLatency(seconds float64, u uint64) {
	sh := &m.shards[u&m.mask]
	sh.mu.Lock()
	sh.latency.Add(seconds)
	sh.q50.Add(seconds)
	sh.q95.Add(seconds)
	sh.q99.Add(seconds)
	sh.mu.Unlock()
}

// latencyQuantile95 merges the shards' P² estimators into the current
// p95 — a scrape-frequency (cold) operation.
func (m *shardedMetrics) latencyQuantile95() float64 {
	var clones []*metrics.P2Quantile
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		clones = append(clones, sh.q95.Clone())
		sh.mu.Unlock()
	}
	return metrics.MergeP2Quantiles(clones...)
}

func (m *shardedMetrics) reject(r rejectReason) {
	m.rejected[r].Add(1)
}

func (m *shardedMetrics) resolved(err error) {
	m.resolveTotal.Add(1)
	if err != nil {
		m.resolveErrors.Add(1)
	}
}

func (m *shardedMetrics) writeTo(w io.Writer, plan *Plan, rate float64, warm bool) {
	snap := metricsSnapshot{
		dispatchTotal: m.dispatchTotal.Load(),
		byStation:     make([]int64, len(m.byStation)),
		resolveTotal:  m.resolveTotal.Load(),
		resolveErrors: m.resolveErrors.Load(),
	}
	for i := range m.byStation {
		snap.byStation[i] = m.byStation[i].Load()
	}
	for r := range m.rejected {
		snap.rejected[r] = m.rejected[r].Load()
	}
	// Merge the latency shards. Each shard is locked only long enough
	// to copy its accumulators out, so a scrape never stalls more than
	// one shard's dispatch traffic at a time.
	var merged metrics.Welford
	var q50s, q95s, q99s []*metrics.P2Quantile
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		merged.Merge(&sh.latency)
		q50s = append(q50s, sh.q50.Clone())
		q95s = append(q95s, sh.q95.Clone())
		q99s = append(q99s, sh.q99.Clone())
		sh.mu.Unlock()
	}
	snap.q50 = metrics.MergeP2Quantiles(q50s...)
	snap.q95 = metrics.MergeP2Quantiles(q95s...)
	snap.q99 = metrics.MergeP2Quantiles(q99s...)
	// The duration count is the exact dispatch counter; the sum scales
	// the sampled mean up to it (exact when every dispatch was measured,
	// an unbiased estimate under hot-path sampling; see p2SampleStride).
	snap.durationCount = snap.dispatchTotal
	snap.durationSum = merged.Mean() * float64(snap.dispatchTotal)
	renderMetrics(w, snap, plan, rate, warm)
}

// lockedMetrics is the original single-mutex implementation, retained
// as the serialized hot-path baseline (Config.SerializedHotPath and
// BenchmarkDispatchParallelMutex).
type lockedMetrics struct {
	mu            sync.Mutex
	dispatchTotal int64
	byStation     []int64
	rejected      [numRejectReasons]int64
	resolveTotal  int64
	resolveErrors int64
	latency       metrics.Welford
	q50, q95, q99 *metrics.P2Quantile
}

func newLockedServerMetrics(stations int) *lockedMetrics {
	q50, _ := metrics.NewP2Quantile(0.5)
	q95, _ := metrics.NewP2Quantile(0.95)
	q99, _ := metrics.NewP2Quantile(0.99)
	return &lockedMetrics{
		byStation: make([]int64, stations),
		q50:       q50, q95: q95, q99: q99,
	}
}

//bladelint:allow lock -- serialized baseline: lockedMetrics is the mutexed reference the sharded metrics are benchmarked against
func (m *lockedMetrics) observeDispatch(station int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dispatchTotal++
	if station >= 0 && station < len(m.byStation) {
		m.byStation[station]++
	}
	m.latency.Add(seconds)
	m.q50.Add(seconds)
	m.q95.Add(seconds)
	m.q99.Add(seconds)
}

//bladelint:allow lock -- serialized baseline, same justification as observeDispatch
func (m *lockedMetrics) reject(r rejectReason) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[r]++
}

func (m *lockedMetrics) latencyQuantile95() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.q95.Value()
}

func (m *lockedMetrics) resolved(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolveTotal++
	if err != nil {
		m.resolveErrors++
	}
}

func (m *lockedMetrics) writeTo(w io.Writer, plan *Plan, rate float64, warm bool) {
	m.mu.Lock()
	snap := metricsSnapshot{
		dispatchTotal: m.dispatchTotal,
		byStation:     append([]int64(nil), m.byStation...),
		rejected:      m.rejected,
		resolveTotal:  m.resolveTotal,
		resolveErrors: m.resolveErrors,
		durationCount: m.latency.Count(),
		durationSum:   m.latency.Mean() * float64(m.latency.Count()),
		q50:           m.q50.Value(),
		q95:           m.q95.Value(),
		q99:           m.q99.Value(),
	}
	m.mu.Unlock()
	renderMetrics(w, snap, plan, rate, warm)
}

// renderMetrics renders the Prometheus text exposition (format 0.0.4).
// The plan and estimator gauges are passed in so the snapshot is taken
// in one place without reaching back into the server.
func renderMetrics(w io.Writer, snap metricsSnapshot, plan *Plan, rate float64, warm bool) {
	fmt.Fprintln(w, "# HELP bladed_dispatch_total Routing decisions served.")
	fmt.Fprintln(w, "# TYPE bladed_dispatch_total counter")
	fmt.Fprintf(w, "bladed_dispatch_total %d\n", snap.dispatchTotal)

	fmt.Fprintln(w, "# HELP bladed_dispatch_station_total Routing decisions per station.")
	fmt.Fprintln(w, "# TYPE bladed_dispatch_station_total counter")
	for i, c := range snap.byStation {
		fmt.Fprintf(w, "bladed_dispatch_station_total{station=%q} %d\n", fmt.Sprint(i), c)
	}

	fmt.Fprintln(w, "# HELP bladed_rejected_total Requests rejected with 503, by reason.")
	fmt.Fprintln(w, "# TYPE bladed_rejected_total counter")
	for r, c := range snap.rejected {
		if c > 0 {
			fmt.Fprintf(w, "bladed_rejected_total{reason=%q} %d\n", rejectReasonNames[r], c)
		}
	}

	fmt.Fprintln(w, "# HELP bladed_resolve_total Re-optimization attempts.")
	fmt.Fprintln(w, "# TYPE bladed_resolve_total counter")
	fmt.Fprintf(w, "bladed_resolve_total %d\n", snap.resolveTotal)
	fmt.Fprintln(w, "# HELP bladed_resolve_errors_total Re-optimization attempts that failed.")
	fmt.Fprintln(w, "# TYPE bladed_resolve_errors_total counter")
	fmt.Fprintf(w, "bladed_resolve_errors_total %d\n", snap.resolveErrors)

	fmt.Fprintln(w, "# HELP bladed_plan_version Version of the live routing plan.")
	fmt.Fprintln(w, "# TYPE bladed_plan_version gauge")
	fmt.Fprintf(w, "bladed_plan_version %d\n", plan.Version)
	fmt.Fprintln(w, "# HELP bladed_plan_lambda Generic rate the live plan was solved for.")
	fmt.Fprintln(w, "# TYPE bladed_plan_lambda gauge")
	fmt.Fprintf(w, "bladed_plan_lambda %g\n", plan.Lambda)
	fmt.Fprintln(w, "# HELP bladed_plan_shed Rate shed by degraded-mode admission control.")
	fmt.Fprintln(w, "# TYPE bladed_plan_shed gauge")
	fmt.Fprintf(w, "bladed_plan_shed %g\n", plan.Shed)
	fmt.Fprintln(w, "# HELP bladed_plan_capacity Admission ceiling of the surviving stations.")
	fmt.Fprintln(w, "# TYPE bladed_plan_capacity gauge")
	fmt.Fprintf(w, "bladed_plan_capacity %g\n", plan.Capacity)

	fmt.Fprintln(w, "# HELP bladed_lambda_estimate Observed arrival rate over the sliding window.")
	fmt.Fprintln(w, "# TYPE bladed_lambda_estimate gauge")
	fmt.Fprintf(w, "bladed_lambda_estimate %g\n", rate)
	fmt.Fprintln(w, "# HELP bladed_estimator_warm Whether a full estimation window has elapsed.")
	fmt.Fprintln(w, "# TYPE bladed_estimator_warm gauge")
	fmt.Fprintf(w, "bladed_estimator_warm %d\n", boolGauge(warm))

	fmt.Fprintln(w, "# HELP bladed_station_up Station availability (1 up, 0 down).")
	fmt.Fprintln(w, "# TYPE bladed_station_up gauge")
	for i := range snap.byStation {
		up := plan.Up == nil || (i < len(plan.Up) && plan.Up[i])
		fmt.Fprintf(w, "bladed_station_up{station=%q} %d\n", fmt.Sprint(i), boolGauge(up))
	}
	fmt.Fprintln(w, "# HELP bladed_plan_utilization Planned utilization per station.")
	fmt.Fprintln(w, "# TYPE bladed_plan_utilization gauge")
	for i, u := range plan.Utilizations {
		fmt.Fprintf(w, "bladed_plan_utilization{station=%q} %g\n", fmt.Sprint(i), u)
	}

	fmt.Fprintln(w, "# HELP bladed_request_duration_seconds Dispatch handler latency.")
	fmt.Fprintln(w, "# TYPE bladed_request_duration_seconds summary")
	fmt.Fprintf(w, "bladed_request_duration_seconds{quantile=\"0.5\"} %g\n", snap.q50)
	fmt.Fprintf(w, "bladed_request_duration_seconds{quantile=\"0.95\"} %g\n", snap.q95)
	fmt.Fprintf(w, "bladed_request_duration_seconds{quantile=\"0.99\"} %g\n", snap.q99)
	fmt.Fprintf(w, "bladed_request_duration_seconds_sum %g\n", snap.durationSum)
	fmt.Fprintf(w, "bladed_request_duration_seconds_count %d\n", snap.durationCount)
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writeResilienceMetrics appends the failure-detector, breaker and
// guard series to the exposition — kept outside serverMetrics because
// this state lives on the Server (one source of truth for breaker
// state) and is identical for both hot-path implementations.
func (s *Server) writeResilienceMetrics(w io.Writer) {
	nowNs := s.now().UnixNano()
	fmt.Fprintln(w, "# HELP bladed_breaker_state Circuit state per station (0 closed, 1 half-open, 2 open).")
	fmt.Fprintln(w, "# TYPE bladed_breaker_state gauge")
	for i := range s.breakers.stations {
		fmt.Fprintf(w, "bladed_breaker_state{station=%q} %d\n",
			fmt.Sprint(i), s.breakers.stations[i].state.Load())
	}
	fmt.Fprintln(w, "# HELP bladed_breaker_trips_total Breaker trips per station.")
	fmt.Fprintln(w, "# TYPE bladed_breaker_trips_total counter")
	for i := range s.breakers.stations {
		fmt.Fprintf(w, "bladed_breaker_trips_total{station=%q} %d\n",
			fmt.Sprint(i), s.breakers.stations[i].trips.Load())
	}
	fmt.Fprintln(w, "# HELP bladed_breaker_pinned Operator down-pin per station (breaker frozen).")
	fmt.Fprintln(w, "# TYPE bladed_breaker_pinned gauge")
	for i := range s.breakers.stations {
		fmt.Fprintf(w, "bladed_breaker_pinned{station=%q} %d\n",
			fmt.Sprint(i), boolGauge(s.breakers.stations[i].pinned.Load()))
	}
	fmt.Fprintln(w, "# HELP bladed_breaker_redirects_total Dispatches re-drawn off a breaker-rejected station.")
	fmt.Fprintln(w, "# TYPE bladed_breaker_redirects_total counter")
	fmt.Fprintf(w, "bladed_breaker_redirects_total %d\n", s.breakers.redirects.Load())
	fmt.Fprintln(w, "# HELP bladed_breaker_trials_total Half-open probe dispatches admitted.")
	fmt.Fprintln(w, "# TYPE bladed_breaker_trials_total counter")
	fmt.Fprintf(w, "bladed_breaker_trials_total %d\n", s.breakers.trials.Load())

	fmt.Fprintln(w, "# HELP bladed_outcomes_total Completed backend attempts by station and outcome.")
	fmt.Fprintln(w, "# TYPE bladed_outcomes_total counter")
	for i := range s.breakers.stations {
		suc, errs, tmo := s.tracker.totals(i)
		st := fmt.Sprint(i)
		fmt.Fprintf(w, "bladed_outcomes_total{station=%q,outcome=\"success\"} %d\n", st, suc)
		fmt.Fprintf(w, "bladed_outcomes_total{station=%q,outcome=\"error\"} %d\n", st, errs)
		fmt.Fprintf(w, "bladed_outcomes_total{station=%q,outcome=\"timeout\"} %d\n", st, tmo)
	}
	fmt.Fprintln(w, "# HELP bladed_outcome_error_rate EWMA failure fraction per station.")
	fmt.Fprintln(w, "# TYPE bladed_outcome_error_rate gauge")
	for i := range s.breakers.stations {
		fmt.Fprintf(w, "bladed_outcome_error_rate{station=%q} %g\n",
			fmt.Sprint(i), s.tracker.errorRate(i))
	}
	fmt.Fprintln(w, "# HELP bladed_outcome_suspicion Phi-accrual silence score per station.")
	fmt.Fprintln(w, "# TYPE bladed_outcome_suspicion gauge")
	for i := range s.breakers.stations {
		fmt.Fprintf(w, "bladed_outcome_suspicion{station=%q} %g\n",
			fmt.Sprint(i), s.tracker.suspicion(i, nowNs))
	}

	fmt.Fprintln(w, "# HELP bladed_retry_budget_tokens Retry tokens currently banked.")
	fmt.Fprintln(w, "# TYPE bladed_retry_budget_tokens gauge")
	fmt.Fprintf(w, "bladed_retry_budget_tokens %g\n",
		float64(s.guard.tokens.Load())/retryTokenScale)
	fmt.Fprintln(w, "# HELP bladed_backend_attempts_total Guarded backend attempts executed.")
	fmt.Fprintln(w, "# TYPE bladed_backend_attempts_total counter")
	fmt.Fprintf(w, "bladed_backend_attempts_total %d\n", s.guard.attempts.Load())
	fmt.Fprintln(w, "# HELP bladed_retries_total Retries granted by the retry budget.")
	fmt.Fprintln(w, "# TYPE bladed_retries_total counter")
	fmt.Fprintf(w, "bladed_retries_total %d\n", s.guard.retries.Load())
	fmt.Fprintln(w, "# HELP bladed_retries_denied_total Retries refused by an exhausted budget.")
	fmt.Fprintln(w, "# TYPE bladed_retries_denied_total counter")
	fmt.Fprintf(w, "bladed_retries_denied_total %d\n", s.guard.retriesDenied.Load())
	fmt.Fprintln(w, "# HELP bladed_hedges_total Hedged second attempts launched.")
	fmt.Fprintln(w, "# TYPE bladed_hedges_total counter")
	fmt.Fprintf(w, "bladed_hedges_total %d\n", s.guard.hedges.Load())
	fmt.Fprintln(w, "# HELP bladed_hedge_wins_total Hedged attempts that finished first.")
	fmt.Fprintln(w, "# TYPE bladed_hedge_wins_total counter")
	fmt.Fprintf(w, "bladed_hedge_wins_total %d\n", s.guard.hedgeWins.Load())
}
