package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// serverMetrics aggregates the daemon's operational statistics on top
// of internal/metrics (Welford for the latency moments, P² for the
// streaming quantiles) — no external dependencies, exposed in
// Prometheus text format by writeTo.
type serverMetrics struct {
	mu            sync.Mutex
	dispatchTotal int64
	byStation     []int64
	rejected      map[string]int64
	resolveTotal  int64
	resolveErrors int64
	latency       metrics.Welford
	q50, q95, q99 *metrics.P2Quantile
}

func newServerMetrics(stations int) *serverMetrics {
	q50, _ := metrics.NewP2Quantile(0.5)
	q95, _ := metrics.NewP2Quantile(0.95)
	q99, _ := metrics.NewP2Quantile(0.99)
	return &serverMetrics{
		byStation: make([]int64, stations),
		rejected:  make(map[string]int64),
		q50:       q50, q95: q95, q99: q99,
	}
}

// observeDispatch records one served routing decision.
func (m *serverMetrics) observeDispatch(station int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dispatchTotal++
	if station >= 0 && station < len(m.byStation) {
		m.byStation[station]++
	}
	m.latency.Add(seconds)
	m.q50.Add(seconds)
	m.q95.Add(seconds)
	m.q99.Add(seconds)
}

// reject counts one rejected request by reason ("admission", "shed",
// "concurrency").
func (m *serverMetrics) reject(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[reason]++
}

// resolved records the outcome of one re-solve attempt.
func (m *serverMetrics) resolved(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolveTotal++
	if err != nil {
		m.resolveErrors++
	}
}

// writeTo renders the Prometheus text exposition (format 0.0.4). The
// plan and estimator gauges are passed in so the snapshot is taken
// under one lock without reaching back into the server.
func (m *serverMetrics) writeTo(w io.Writer, plan *Plan, rate float64, warm bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP bladed_dispatch_total Routing decisions served.")
	fmt.Fprintln(w, "# TYPE bladed_dispatch_total counter")
	fmt.Fprintf(w, "bladed_dispatch_total %d\n", m.dispatchTotal)

	fmt.Fprintln(w, "# HELP bladed_dispatch_station_total Routing decisions per station.")
	fmt.Fprintln(w, "# TYPE bladed_dispatch_station_total counter")
	for i, c := range m.byStation {
		fmt.Fprintf(w, "bladed_dispatch_station_total{station=%q} %d\n", fmt.Sprint(i), c)
	}

	fmt.Fprintln(w, "# HELP bladed_rejected_total Requests rejected with 503, by reason.")
	fmt.Fprintln(w, "# TYPE bladed_rejected_total counter")
	reasons := make([]string, 0, len(m.rejected))
	for r := range m.rejected {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "bladed_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}

	fmt.Fprintln(w, "# HELP bladed_resolve_total Re-optimization attempts.")
	fmt.Fprintln(w, "# TYPE bladed_resolve_total counter")
	fmt.Fprintf(w, "bladed_resolve_total %d\n", m.resolveTotal)
	fmt.Fprintln(w, "# HELP bladed_resolve_errors_total Re-optimization attempts that failed.")
	fmt.Fprintln(w, "# TYPE bladed_resolve_errors_total counter")
	fmt.Fprintf(w, "bladed_resolve_errors_total %d\n", m.resolveErrors)

	fmt.Fprintln(w, "# HELP bladed_plan_version Version of the live routing plan.")
	fmt.Fprintln(w, "# TYPE bladed_plan_version gauge")
	fmt.Fprintf(w, "bladed_plan_version %d\n", plan.Version)
	fmt.Fprintln(w, "# HELP bladed_plan_lambda Generic rate the live plan was solved for.")
	fmt.Fprintln(w, "# TYPE bladed_plan_lambda gauge")
	fmt.Fprintf(w, "bladed_plan_lambda %g\n", plan.Lambda)
	fmt.Fprintln(w, "# HELP bladed_plan_shed Rate shed by degraded-mode admission control.")
	fmt.Fprintln(w, "# TYPE bladed_plan_shed gauge")
	fmt.Fprintf(w, "bladed_plan_shed %g\n", plan.Shed)
	fmt.Fprintln(w, "# HELP bladed_plan_capacity Admission ceiling of the surviving stations.")
	fmt.Fprintln(w, "# TYPE bladed_plan_capacity gauge")
	fmt.Fprintf(w, "bladed_plan_capacity %g\n", plan.Capacity)

	fmt.Fprintln(w, "# HELP bladed_lambda_estimate Observed arrival rate over the sliding window.")
	fmt.Fprintln(w, "# TYPE bladed_lambda_estimate gauge")
	fmt.Fprintf(w, "bladed_lambda_estimate %g\n", rate)
	fmt.Fprintln(w, "# HELP bladed_estimator_warm Whether a full estimation window has elapsed.")
	fmt.Fprintln(w, "# TYPE bladed_estimator_warm gauge")
	fmt.Fprintf(w, "bladed_estimator_warm %d\n", boolGauge(warm))

	fmt.Fprintln(w, "# HELP bladed_station_up Station availability (1 up, 0 down).")
	fmt.Fprintln(w, "# TYPE bladed_station_up gauge")
	for i := range m.byStation {
		up := plan.Up == nil || (i < len(plan.Up) && plan.Up[i])
		fmt.Fprintf(w, "bladed_station_up{station=%q} %d\n", fmt.Sprint(i), boolGauge(up))
	}
	fmt.Fprintln(w, "# HELP bladed_plan_utilization Planned utilization per station.")
	fmt.Fprintln(w, "# TYPE bladed_plan_utilization gauge")
	for i, u := range plan.Utilizations {
		fmt.Fprintf(w, "bladed_plan_utilization{station=%q} %g\n", fmt.Sprint(i), u)
	}

	fmt.Fprintln(w, "# HELP bladed_request_duration_seconds Dispatch handler latency.")
	fmt.Fprintln(w, "# TYPE bladed_request_duration_seconds summary")
	fmt.Fprintf(w, "bladed_request_duration_seconds{quantile=\"0.5\"} %g\n", m.q50.Value())
	fmt.Fprintf(w, "bladed_request_duration_seconds{quantile=\"0.95\"} %g\n", m.q95.Value())
	fmt.Fprintf(w, "bladed_request_duration_seconds{quantile=\"0.99\"} %g\n", m.q99.Value())
	fmt.Fprintf(w, "bladed_request_duration_seconds_sum %g\n", m.latency.Mean()*float64(m.latency.Count()))
	fmt.Fprintf(w, "bladed_request_duration_seconds_count %d\n", m.latency.Count())
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
