package serve

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

var errBackendDown = errors.New("backend down")

func TestDispatchExecutesBackendOnSuccess(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, func(c *Config) {
		c.Backend = func(_ context.Context, station int) error {
			calls.Add(1)
			return nil
		}
	})
	res := s.Dispatch(context.Background())
	if res.Err != nil || res.Attempts != 1 || res.Rejected {
		t.Fatalf("dispatch = %+v", res)
	}
	if calls.Load() != 1 {
		t.Fatalf("backend called %d times, want 1", calls.Load())
	}
	suc, errs, tmo := s.tracker.totals(res.Station)
	if suc != 1 || errs != 0 || tmo != 0 {
		t.Fatalf("outcome totals %d/%d/%d, want 1/0/0", suc, errs, tmo)
	}
}

func TestDispatchWithoutBackendOnlyRoutes(t *testing.T) {
	s := newTestServer(t, nil)
	res := s.Dispatch(context.Background())
	if res.Err != nil || res.Attempts != 0 {
		t.Fatalf("router-only dispatch = %+v", res)
	}
	if s.guard.attempts.Load() != 0 {
		t.Fatal("router-only dispatch ran a backend attempt")
	}
}

func TestDispatchRetriesOnFreshStation(t *testing.T) {
	var calls atomic.Int64
	var first atomic.Int64
	first.Store(-1)
	s := newTestServer(t, func(c *Config) {
		c.Guard.BackoffBase = time.Millisecond
		c.Guard.BackoffCap = 2 * time.Millisecond
		c.Backend = func(_ context.Context, station int) error {
			if calls.Add(1) == 1 {
				first.Store(int64(station))
				return errBackendDown
			}
			return nil
		}
	})
	res := s.Dispatch(context.Background())
	if res.Err != nil || res.Attempts != 2 {
		t.Fatalf("dispatch = %+v, want success on attempt 2", res)
	}
	if s.guard.retries.Load() != 1 {
		t.Fatalf("retries %d, want 1", s.guard.retries.Load())
	}
	if _, errs, _ := s.tracker.totals(int(first.Load())); errs != 1 {
		t.Fatalf("failed attempt not recorded against station %d", first.Load())
	}
}

func TestRetryBudgetStopsAmplification(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Guard.RetryBudget = 0.0001 // earns ~nothing per request
		c.Guard.RetryBurst = 1       // one banked token total
		c.Guard.BackoffBase = time.Millisecond
		c.Guard.BackoffCap = 2 * time.Millisecond
		c.Backend = func(context.Context, int) error { return errBackendDown }
	})
	// First dispatch spends the only banked token: 2 attempts, then the
	// third is denied.
	res := s.Dispatch(context.Background())
	if res.Err == nil || res.Attempts != 2 {
		t.Fatalf("first dispatch = %+v, want 2 attempts and an error", res)
	}
	// Subsequent dispatches get no retries at all.
	res = s.Dispatch(context.Background())
	if res.Err == nil || res.Attempts != 1 {
		t.Fatalf("post-exhaustion dispatch = %+v, want 1 attempt", res)
	}
	if s.guard.retriesDenied.Load() < 2 {
		t.Fatalf("retriesDenied %d, want ≥ 2", s.guard.retriesDenied.Load())
	}
}

func TestAttemptTimeoutClassifiedAsTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Guard.AttemptTimeout = 10 * time.Millisecond
		c.Guard.MaxAttempts = 1
		c.Backend = func(ctx context.Context, _ int) error {
			<-ctx.Done()
			return ctx.Err()
		}
	})
	res := s.Dispatch(context.Background())
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", res.Err)
	}
	suc, errs, tmo := s.tracker.totals(res.Station)
	if tmo != 1 || suc != 0 || errs != 0 {
		t.Fatalf("outcome totals %d/%d/%d, want the timeout recorded", suc, errs, tmo)
	}
}

func TestHedgedAttemptWinsOnSlowFirst(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, func(c *Config) {
		c.Guard.Hedge = true
		c.Guard.HedgeMinDelay = 5 * time.Millisecond
		c.Guard.AttemptTimeout = time.Second
		c.Backend = func(ctx context.Context, _ int) error {
			if calls.Add(1) == 1 {
				// First call parks until cancelled — the straggler the
				// hedge exists to cut off.
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}
	})
	res := s.Dispatch(context.Background())
	if res.Err != nil {
		t.Fatalf("hedged dispatch failed: %v", res.Err)
	}
	if !res.Hedged || !res.HedgeWon {
		t.Fatalf("dispatch = %+v, want hedged win", res)
	}
	if s.guard.hedges.Load() != 1 || s.guard.hedgeWins.Load() != 1 {
		t.Fatalf("hedges %d wins %d, want 1/1",
			s.guard.hedges.Load(), s.guard.hedgeWins.Load())
	}
	// The straggler was cancelled, and a caller-caused cancellation is
	// not held against its station: no error outcome anywhere.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < s.group.N(); i++ {
		if _, errs, tmo := s.tracker.totals(i); errs+tmo != 0 {
			t.Fatalf("station %d charged %d errors %d timeouts for a cancelled hedge loser", i, errs, tmo)
		}
	}
}

func TestDispatchShedReturnsErrShed(t *testing.T) {
	// A startup-overloaded single-station system sheds probabilistically.
	g := &model.Group{Servers: []model.Server{{Size: 1, Speed: 1, SpecialRate: 0.2}}, TaskSize: 1}
	s := newTestServer(t, func(c *Config) {
		c.Group = g
		c.Lambda = 10 // far beyond the ~0.8 ceiling
		c.Backend = func(context.Context, int) error { return nil }
	})
	if s.Plan().Shed <= 0 {
		t.Fatal("test premise: startup plan must shed")
	}
	for i := 0; i < 10000; i++ {
		if res := s.Dispatch(context.Background()); res.Rejected {
			if !errors.Is(res.Err, ErrShed) {
				t.Fatalf("rejected dispatch err = %v, want ErrShed", res.Err)
			}
			if res.Attempts != 0 {
				t.Fatalf("shed request ran %d backend attempts", res.Attempts)
			}
			return
		}
	}
	t.Fatal("no dispatch shed in 10000 tries at 12× overload")
}

func TestDecorrelatedJitterBounds(t *testing.T) {
	base, limit := 5*time.Millisecond, 100*time.Millisecond
	prev := base
	grew := false
	for i := 0; i < 2000; i++ {
		d := decorrelatedJitter(base, limit, prev)
		if d < base || d > limit {
			t.Fatalf("jitter %v outside [%v, %v]", d, base, limit)
		}
		if d > prev {
			grew = true
		}
		prev = d
	}
	if !grew {
		t.Fatal("jitter never grew past its predecessor in 2000 draws")
	}
	// A corrupt (tiny) prev is clamped up to base, not underflowed.
	if d := decorrelatedJitter(base, limit, 0); d < base || d > limit {
		t.Fatalf("jitter from zero prev = %v", d)
	}
}

func TestReportOutcomeValidation(t *testing.T) {
	s := newTestServer(t, nil)
	if err := s.ReportOutcome(0, OutcomeError, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, errs, _ := s.tracker.totals(0); errs != 1 {
		t.Fatal("reported outcome not recorded")
	}
	if err := s.ReportOutcome(-1, OutcomeSuccess, 0); err == nil {
		t.Error("negative station accepted")
	}
	if err := s.ReportOutcome(s.group.N(), OutcomeSuccess, 0); err == nil {
		t.Error("out-of-range station accepted")
	}
	if err := s.ReportOutcome(0, numOutcomes, 0); err == nil {
		t.Error("unknown outcome accepted")
	}
}

func TestObserveEndpointFeedsDetector(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	w := postJSON(t, h, "/v1/observe", map[string]any{
		"station": 1, "outcome": "error", "latency_seconds": 0.05,
	})
	if w.Code != 202 {
		t.Fatalf("observe status %d: %s", w.Code, w.Body)
	}
	if _, errs, _ := s.tracker.totals(1); errs != 1 {
		t.Fatal("observed outcome not recorded")
	}
	w = postJSON(t, h, "/v1/observe", map[string]any{"station": 1, "outcome": "sideways"})
	if w.Code != 400 || !strings.Contains(w.Body.String(), "unknown outcome") {
		t.Fatalf("bad outcome: %d %s", w.Code, w.Body)
	}
	if w := postJSON(t, h, "/v1/observe", map[string]any{"station": 99, "outcome": "success"}); w.Code != 400 {
		t.Fatalf("out-of-range station status %d", w.Code)
	}
}

func TestResilienceMetricsExposed(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Backend = func(context.Context, int) error { return nil }
	})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/v1/dispatch", nil); w.Code != 200 {
			t.Fatalf("dispatch status %d", w.Code)
		}
	}
	body := getPath(t, h, "/metrics").Body.String()
	for _, want := range []string{
		`bladed_breaker_state{station="0"} 0`,
		`bladed_breaker_trips_total{station="0"} 0`,
		"bladed_breaker_redirects_total 0",
		"bladed_breaker_trials_total 0",
		`bladed_outcomes_total{station=`,
		`bladed_outcome_error_rate{station="0"} 0`,
		`bladed_outcome_suspicion{station=`,
		"bladed_retry_budget_tokens 10",
		"bladed_backend_attempts_total 3",
		"bladed_retries_total 0",
		"bladed_retries_denied_total 0",
		"bladed_hedges_total 0",
		"bladed_hedge_wins_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
