// Package faultinject is the chaos layer: a simulated backend for the
// serving daemon that injects per-station error rates, latency
// inflation, and blackholes — driven either by live operator commands
// (the /v1/faults test hook) or by the deterministic seeded failure
// schedules of internal/failure, so a chaos run is exactly
// reproducible from its seed.
//
// The injector's Call method matches serve.Backend's shape
// (func(ctx, station) error) without importing the serve package, so
// cmd/bladed can wire it in with a plain assignment and tests can
// drive it directly.
package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/failure"
)

// ErrInjected is the error a faulted backend call returns.
var ErrInjected = errors.New("faultinject: injected backend error")

// Fault is one station's live fault state. The zero value is healthy.
type Fault struct {
	// ErrorRate is the probability in [0, 1] that a call fails with
	// ErrInjected after its service delay.
	ErrorRate float64 `json:"error_rate"`
	// ExtraLatency inflates every call's service time.
	ExtraLatency time.Duration `json:"extra_latency"`
	// Blackhole makes calls hang until their context expires — the
	// injected equivalent of a dead network path; the caller's attempt
	// timeout turns it into timeout outcomes.
	Blackhole bool `json:"blackhole"`
}

// Config describes an injector.
type Config struct {
	// Stations is the cluster size. Required (positive).
	Stations int
	// BaseDelay is the healthy per-call service time. Zero means
	// calls complete immediately.
	BaseDelay time.Duration
	// Seed seeds the per-station error-coin streams (0 means 1).
	Seed int64
	// Now injects a clock for schedule-driven faults and tests.
	// Default time.Now.
	Now func() time.Time
	// Schedules optionally drives faults from seeded failure traces:
	// station i's fault at elapsed time t is derived from
	// Schedules[i].FractionDownAt(t, Sizes[i]) — 1 blackholes the
	// station, intermediate fractions become error rates. Live
	// operator faults compose on top (the stronger signal wins).
	Schedules []failure.Schedule
	// Sizes holds the per-station blade counts the schedule fractions
	// are measured against; defaults to whole-station (1) when absent.
	Sizes []int
}

// Injector simulates a cluster backend with injectable faults. All
// mutable state is atomic: Set/Clear race freely with Call.
type Injector struct {
	base      time.Duration
	now       func() time.Time
	start     time.Time
	faults    []atomic.Pointer[Fault]
	rngs      []paddedRNG
	schedules []failure.Schedule
	sizes     []int
	calls     atomic.Int64
	injected  atomic.Int64
}

// paddedRNG is one station's SplitMix64 error-coin state, padded so
// concurrent calls on different stations never false-share.
type paddedRNG struct {
	state atomic.Uint64
	_     [120]byte
}

// splitmixGamma/splitmix64 mirror the serving RNG's SplitMix64 (Steele,
// Lea & Flood); duplicated locally to keep the package dependency-free.
const splitmixGamma = 0x9E3779B97F4A7C15

func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// New validates the configuration and builds an injector with every
// station healthy.
func New(cfg Config) (*Injector, error) {
	if cfg.Stations < 1 {
		return nil, fmt.Errorf("faultinject: %d stations, need at least 1", cfg.Stations)
	}
	if cfg.BaseDelay < 0 {
		return nil, fmt.Errorf("faultinject: negative base delay %v", cfg.BaseDelay)
	}
	if cfg.Schedules != nil && len(cfg.Schedules) != cfg.Stations {
		return nil, fmt.Errorf("faultinject: %d schedules for %d stations", len(cfg.Schedules), cfg.Stations)
	}
	if cfg.Sizes != nil && len(cfg.Sizes) != cfg.Stations {
		return nil, fmt.Errorf("faultinject: %d sizes for %d stations", len(cfg.Sizes), cfg.Stations)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 1
	}
	in := &Injector{
		base:      cfg.BaseDelay,
		now:       cfg.Now,
		start:     cfg.Now(),
		faults:    make([]atomic.Pointer[Fault], cfg.Stations),
		rngs:      make([]paddedRNG, cfg.Stations),
		schedules: cfg.Schedules,
		sizes:     cfg.Sizes,
	}
	for i := range in.rngs {
		seed += splitmixGamma
		in.rngs[i].state.Store(splitmix64(seed))
	}
	return in, nil
}

// Set installs a station's live fault state, replacing any previous.
func (in *Injector) Set(station int, f Fault) error {
	if station < 0 || station >= len(in.faults) {
		return fmt.Errorf("faultinject: station %d out of range [0, %d)", station, len(in.faults))
	}
	if f.ErrorRate < 0 || f.ErrorRate > 1 {
		return fmt.Errorf("faultinject: error rate %g outside [0, 1]", f.ErrorRate)
	}
	if f.ExtraLatency < 0 {
		return fmt.Errorf("faultinject: negative extra latency %v", f.ExtraLatency)
	}
	in.faults[station].Store(&f)
	return nil
}

// Clear restores a station to health (schedule-driven faults, if any,
// still apply).
func (in *Injector) Clear(station int) error {
	if station < 0 || station >= len(in.faults) {
		return fmt.Errorf("faultinject: station %d out of range [0, %d)", station, len(in.faults))
	}
	in.faults[station].Store(nil)
	return nil
}

// Get returns the station's live operator-set fault (zero when clear).
func (in *Injector) Get(station int) Fault {
	if station < 0 || station >= len(in.faults) {
		return Fault{}
	}
	if p := in.faults[station].Load(); p != nil {
		return *p
	}
	return Fault{}
}

// Calls and Injected report totals for harness summaries.
func (in *Injector) Calls() int64    { return in.calls.Load() }
func (in *Injector) Injected() int64 { return in.injected.Load() }

// effective composes the operator fault with the schedule-driven one:
// a fully down schedule blackholes the station; a partial fraction
// contributes an error rate; the stronger of the two signals wins.
func (in *Injector) effective(station int) Fault {
	var f Fault
	if p := in.faults[station].Load(); p != nil {
		f = *p
	}
	if in.schedules != nil && in.schedules[station] != nil {
		elapsed := in.now().Sub(in.start).Seconds()
		m := 1
		if in.sizes != nil && in.sizes[station] > 0 {
			m = in.sizes[station]
		}
		frac := in.schedules[station].FractionDownAt(elapsed, m)
		if frac >= 1 {
			f.Blackhole = true
		} else if frac > f.ErrorRate {
			f.ErrorRate = frac
		}
	}
	return f
}

// u01 draws one uniform variate from the station's seeded stream.
func (in *Injector) u01(station int) float64 {
	z := splitmix64(in.rngs[station].state.Add(splitmixGamma))
	return float64(z>>11) / (1 << 53)
}

// Call simulates one backend request against a station: sleep the
// (possibly inflated) service time, then fail with ErrInjected at the
// effective error rate. Blackholed stations hang until the context
// expires. Matches serve.Backend.
func (in *Injector) Call(ctx context.Context, station int) error {
	if station < 0 || station >= len(in.faults) {
		return fmt.Errorf("faultinject: station %d out of range [0, %d)", station, len(in.faults))
	}
	in.calls.Add(1)
	f := in.effective(station)
	if f.Blackhole {
		in.injected.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	if d := in.base + f.ExtraLatency; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if f.ErrorRate > 0 && in.u01(station) < f.ErrorRate {
		in.injected.Add(1)
		return ErrInjected
	}
	return nil
}

// faultRequest is the body of POST /v1/faults.
type faultRequest struct {
	Station        int     `json:"station"`
	ErrorRate      float64 `json:"error_rate"`
	ExtraLatencyMS float64 `json:"extra_latency_ms"`
	Blackhole      bool    `json:"blackhole"`
	// Reset clears the station's live fault instead of setting one.
	Reset bool `json:"reset"`
}

// faultView is one station's block in GET /v1/faults.
type faultView struct {
	Station        int     `json:"station"`
	ErrorRate      float64 `json:"error_rate"`
	ExtraLatencyMS float64 `json:"extra_latency_ms"`
	Blackhole      bool    `json:"blackhole"`
}

// AdminHandler returns the fault-injection test hook:
//
//	GET  /  → per-station effective fault state
//	POST /  → {"station": i, "error_rate": p, "extra_latency_ms": n,
//	           "blackhole": b} sets a fault; {"station": i, "reset":
//	           true} clears it
//
// Mount it on an operator-only route (bladed uses /v1/faults behind
// the -fault-admin flag): it is a chaos tool, not a public API.
func (in *Injector) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, _ *http.Request) {
		views := make([]faultView, len(in.faults))
		for i := range in.faults {
			f := in.effective(i)
			views[i] = faultView{
				Station:        i,
				ErrorRate:      f.ErrorRate,
				ExtraLatencyMS: float64(f.ExtraLatency) / float64(time.Millisecond),
				Blackhole:      f.Blackhole,
			}
		}
		writeJSON(w, http.StatusOK, views)
	})
	mux.HandleFunc("POST /", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		var req faultRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if req.Reset {
			err = in.Clear(req.Station)
		} else {
			err = in.Set(req.Station, Fault{
				ErrorRate:    req.ErrorRate,
				ExtraLatency: time.Duration(req.ExtraLatencyMS * float64(time.Millisecond)),
				Blackhole:    req.Blackhole,
			})
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, in.Get(req.Station))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
