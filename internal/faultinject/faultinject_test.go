package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/failure"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Stations: 0}); err == nil {
		t.Error("zero stations accepted")
	}
	if _, err := New(Config{Stations: 2, BaseDelay: -time.Second}); err == nil {
		t.Error("negative base delay accepted")
	}
	if _, err := New(Config{Stations: 2, Schedules: make([]failure.Schedule, 3)}); err == nil {
		t.Error("schedule length mismatch accepted")
	}
	if _, err := New(Config{Stations: 2, Sizes: []int{1}}); err == nil {
		t.Error("sizes length mismatch accepted")
	}
	if _, err := New(Config{Stations: 2}); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestSetClearGetValidation(t *testing.T) {
	in, err := New(Config{Stations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Set(5, Fault{}); err == nil {
		t.Error("out-of-range Set accepted")
	}
	if err := in.Set(0, Fault{ErrorRate: 1.5}); err == nil {
		t.Error("error rate > 1 accepted")
	}
	if err := in.Set(0, Fault{ExtraLatency: -time.Second}); err == nil {
		t.Error("negative latency accepted")
	}
	want := Fault{ErrorRate: 0.25, ExtraLatency: time.Millisecond}
	if err := in.Set(1, want); err != nil {
		t.Fatal(err)
	}
	if got := in.Get(1); got != want {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
	if err := in.Clear(1); err != nil {
		t.Fatal(err)
	}
	if got := in.Get(1); got != (Fault{}) {
		t.Fatalf("cleared station still faulted: %+v", got)
	}
	if err := in.Clear(9); err == nil {
		t.Error("out-of-range Clear accepted")
	}
}

func TestCallErrorRateIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) (errs int, pattern []bool) {
		in, err := New(Config{Stations: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Set(0, Fault{ErrorRate: 0.3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			err := in.Call(context.Background(), 0)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			pattern = append(pattern, err != nil)
			if err != nil {
				errs++
			}
		}
		return errs, pattern
	}
	errs, p1 := run(7)
	if frac := float64(errs) / 2000; frac < 0.25 || frac > 0.35 {
		t.Fatalf("injected fraction %.3f, want ≈0.3", frac)
	}
	_, p2 := run(7)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same-seed runs diverged at call %d", i)
		}
	}
	// A different seed draws a different coin stream.
	other, err := New(Config{Stations: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Set(0, Fault{ErrorRate: 0.3}); err != nil {
		t.Fatal(err)
	}
	diverged := false
	for i := 0; i < 200 && !diverged; i++ {
		diverged = (other.Call(context.Background(), 0) != nil) != p1[i]
	}
	if !diverged {
		t.Error("different seeds produced identical error patterns")
	}
}

func TestCallBlackholeHangsUntilContext(t *testing.T) {
	in, err := New(Config{Stations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Set(0, Fault{Blackhole: true}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	callErr := in.Call(ctx, 0)
	if !errors.Is(callErr, context.DeadlineExceeded) {
		t.Fatalf("blackhole err = %v, want deadline exceeded", callErr)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("blackholed call returned before the context expired")
	}
	if in.Injected() != 1 || in.Calls() != 1 {
		t.Fatalf("injected/calls = %d/%d, want 1/1", in.Injected(), in.Calls())
	}
}

func TestScheduleDrivenFaults(t *testing.T) {
	clk := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return clk }
	// Station 0: 2 of 4 blades down from t=10, fully down from t=20,
	// repaired at t=30. Station 1: never fails.
	schedules := []failure.Schedule{
		{{Time: 10, Down: 2}, {Time: 20, Down: 4}, {Time: 30, Down: 0}},
		nil,
	}
	in, err := New(Config{
		Stations:  2,
		Now:       now,
		Schedules: schedules,
		Sizes:     []int{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	if f := in.effective(0); f.ErrorRate != 0 || f.Blackhole {
		t.Fatalf("fault before first transition: %+v", f)
	}
	clk = clk.Add(15 * time.Second) // t=15: half down → error rate 0.5
	if f := in.effective(0); f.ErrorRate != 0.5 || f.Blackhole {
		t.Fatalf("fault at t=15: %+v, want error rate 0.5", f)
	}
	// A stronger live operator fault wins over the schedule fraction.
	if err := in.Set(0, Fault{ErrorRate: 0.9}); err != nil {
		t.Fatal(err)
	}
	if f := in.effective(0); f.ErrorRate != 0.9 {
		t.Fatalf("operator fault lost to schedule: %+v", f)
	}
	if err := in.Clear(0); err != nil {
		t.Fatal(err)
	}
	clk = clk.Add(10 * time.Second) // t=25: fully down → blackhole
	if f := in.effective(0); !f.Blackhole {
		t.Fatalf("fault at t=25: %+v, want blackhole", f)
	}
	clk = clk.Add(10 * time.Second) // t=35: repaired
	if f := in.effective(0); f.ErrorRate != 0 || f.Blackhole {
		t.Fatalf("fault after repair: %+v", f)
	}
	// The scheduled station's neighbour is untouched throughout.
	if f := in.effective(1); f != (Fault{}) {
		t.Fatalf("unscheduled station faulted: %+v", f)
	}
}

func TestAdminHandler(t *testing.T) {
	in, err := New(Config{Stations: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := in.AdminHandler()

	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/", bytes.NewBufferString(body)))
		return w
	}
	if w := post(`{"station": 1, "error_rate": 0.5, "extra_latency_ms": 2}`); w.Code != http.StatusAccepted {
		t.Fatalf("set status %d: %s", w.Code, w.Body)
	}
	if got := in.Get(1); got.ErrorRate != 0.5 || got.ExtraLatency != 2*time.Millisecond {
		t.Fatalf("admin set produced %+v", got)
	}
	if w := post(`{"station": 9, "blackhole": true}`); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range station status %d", w.Code)
	}
	if w := post(`{not json`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body status %d", w.Code)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("get status %d", w.Code)
	}
	var views []faultView
	if err := json.Unmarshal(w.Body.Bytes(), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[1].ErrorRate != 0.5 || views[1].ExtraLatencyMS != 2 {
		t.Fatalf("views = %+v", views)
	}

	if w := post(`{"station": 1, "reset": true}`); w.Code != http.StatusAccepted {
		t.Fatalf("reset status %d", w.Code)
	}
	if got := in.Get(1); got != (Fault{}) {
		t.Fatalf("reset left %+v", got)
	}
}

func TestExtraLatencyInflatesCalls(t *testing.T) {
	in, err := New(Config{Stations: 1, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Set(0, Fault{ExtraLatency: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Call(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 21*time.Millisecond {
		t.Fatalf("inflated call took %v, want ≥ 21ms", d)
	}
}
