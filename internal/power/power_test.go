package power

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/queueing"
)

// smallConfig keeps outer searches fast: 3 servers, modest load.
func smallConfig() Config {
	return Config{
		Sizes:           []int{2, 4, 8},
		SpecialFraction: 0.2,
		TaskSize:        1.0,
		GenericRate:     4.0,
		Discipline:      queueing.FCFS,
		Alpha:           3,
		Budget:          40,
		Tolerance:       1e-5,
		InnerEpsilon:    1e-8,
	}
}

func TestConfigValidation(t *testing.T) {
	ok := smallConfig()
	if err := ok.validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Config)) Config {
		c := smallConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Sizes = nil }),
		mut(func(c *Config) { c.Sizes = []int{0, 2} }),
		mut(func(c *Config) { c.SpecialFraction = 1 }),
		mut(func(c *Config) { c.SpecialFraction = -0.1 }),
		mut(func(c *Config) { c.TaskSize = 0 }),
		mut(func(c *Config) { c.GenericRate = 0 }),
		mut(func(c *Config) { c.Discipline = queueing.Discipline(9) }),
		mut(func(c *Config) { c.Alpha = 1 }),
		mut(func(c *Config) { c.Budget = 0 }),
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestUniformSpeedsSpendBudget(t *testing.T) {
	sizes := []int{2, 4, 8}
	speeds := UniformSpeeds(sizes, 3, 42)
	if got := TotalPower(sizes, speeds, 3); math.Abs(got-42) > 1e-9 {
		t.Fatalf("uniform speeds spend %g, want 42", got)
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] != speeds[0] {
			t.Fatal("uniform speeds should be equal")
		}
	}
}

func TestOptimizeSpeedsBeatsUniform(t *testing.T) {
	cfg := smallConfig()
	res, err := OptimizeSpeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform := cfg.Evaluate(UniformSpeeds(cfg.Sizes, cfg.Alpha, cfg.Budget))
	if res.Allocation.AvgResponseTime > uniform+1e-9 {
		t.Fatalf("optimized T′ %.6f worse than uniform %.6f", res.Allocation.AvgResponseTime, uniform)
	}
	// On a heterogeneous size mix the optimum is strictly better.
	if uniform-res.Allocation.AvgResponseTime < 1e-5 {
		t.Fatalf("expected a strict improvement over uniform (%.6f vs %.6f)",
			res.Allocation.AvgResponseTime, uniform)
	}
}

func TestOptimizeSpeedsBudgetRespected(t *testing.T) {
	cfg := smallConfig()
	res, err := OptimizeSpeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.WithinTol(res.Power, cfg.Budget, 1e-6*cfg.Budget, 1e-6) {
		t.Fatalf("consumed %g of budget %g", res.Power, cfg.Budget)
	}
	for i, s := range res.Speeds {
		if s <= 0 || math.IsNaN(s) {
			t.Fatalf("speed %d = %g", i+1, s)
		}
	}
	if res.Passes < 1 {
		t.Fatal("no passes recorded")
	}
}

func TestOptimizeSpeedsLightLoadConcentrates(t *testing.T) {
	// At light load, concentrating the budget into fewer, faster
	// blades beats spreading it (service time dominates over queueing)
	// even on a size-symmetric system. Verify the optimizer discovers
	// this and still beats uniform.
	cfg := smallConfig()
	cfg.Sizes = []int{4, 4, 4}
	cfg.GenericRate = 3
	res, err := OptimizeSpeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform := cfg.Evaluate(UniformSpeeds(cfg.Sizes, cfg.Alpha, cfg.Budget))
	if res.Allocation.AvgResponseTime > uniform+1e-9 {
		t.Fatalf("optimized T′ %.6f worse than uniform %.6f", res.Allocation.AvgResponseTime, uniform)
	}
	min, max := res.Speeds[0], res.Speeds[0]
	for _, s := range res.Speeds {
		min = math.Min(min, s)
		max = math.Max(max, s)
	}
	if max/min < 2 {
		t.Fatalf("expected strong concentration at light load, speeds %v", res.Speeds)
	}
}

func TestOptimizeSpeedsHeavyLoadNeverLosesCapacity(t *testing.T) {
	// Near saturation the solution must keep enough aggregate capacity
	// for λ′ and still not lose to uniform.
	cfg := smallConfig()
	cfg.Sizes = []int{4, 4, 4}
	// Uniform capacity: 12·(40/12)^(1/3)·0.8 ≈ 14.3; load close to it.
	cfg.GenericRate = 12
	res, err := OptimizeSpeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GenericRate >= res.Group.MaxGenericRate() {
		t.Fatalf("solution cannot carry the load: λ′_max = %g", res.Group.MaxGenericRate())
	}
	uniform := cfg.Evaluate(UniformSpeeds(cfg.Sizes, cfg.Alpha, cfg.Budget))
	if res.Allocation.AvgResponseTime > uniform+1e-9 {
		t.Fatalf("optimized T′ %.6f worse than uniform %.6f", res.Allocation.AvgResponseTime, uniform)
	}
}

func TestOptimizeSpeedsMonotoneInBudget(t *testing.T) {
	cfg := smallConfig()
	prev := math.Inf(1)
	for _, budget := range []float64{30, 40, 60} {
		c := cfg
		c.Budget = budget
		res, err := OptimizeSpeeds(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Allocation.AvgResponseTime >= prev {
			t.Fatalf("budget %g: T′ %.6f did not improve on %.6f",
				budget, res.Allocation.AvgResponseTime, prev)
		}
		prev = res.Allocation.AvgResponseTime
	}
}

func TestOptimizeSpeedsInsufficientBudget(t *testing.T) {
	cfg := smallConfig()
	// Capacity at uniform speeds: Σ m s (1−y). Make it below λ′.
	cfg.Budget = 0.1
	if _, err := OptimizeSpeeds(cfg); err == nil {
		t.Fatal("starved budget should fail")
	}
}

func TestOptimizeSpeedsKKTEqualMarginalWatts(t *testing.T) {
	// At an interior optimum, moving a marginal watt between any two
	// servers cannot help: the numerical directional derivatives of T′
	// with respect to each server's power share must agree.
	cfg := smallConfig()
	res, err := OptimizeSpeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([]float64, len(cfg.Sizes))
	for i, m := range cfg.Sizes {
		shares[i] = float64(m) * math.Pow(res.Speeds[i], cfg.Alpha)
	}
	// dT/dp_i holding the others fixed (violating the budget by h,
	// which cancels when comparing pairs). Only servers holding a
	// non-negligible share are interior; boundary servers (share → 0)
	// legitimately have unbounded marginals.
	h := 1e-4 * cfg.Budget
	var interior []float64
	for i := range shares {
		if shares[i] < 0.05*cfg.Budget {
			continue
		}
		bump := func(delta float64) float64 {
			sp := make([]float64, len(shares))
			for j := range sp {
				p := shares[j]
				if j == i {
					p += delta
				}
				sp[j] = math.Pow(p/float64(cfg.Sizes[j]), 1/cfg.Alpha)
			}
			return cfg.Evaluate(sp)
		}
		interior = append(interior, (bump(h)-bump(-h))/(2*h))
	}
	if len(interior) < 2 {
		t.Skip("optimum is at a boundary; interior KKT vacuous")
	}
	for i := 1; i < len(interior); i++ {
		if !numeric.WithinTol(interior[i], interior[0], 5e-4, 0.05) {
			t.Fatalf("marginal watts not equalized among interior servers: %v", interior)
		}
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	cfg := smallConfig()
	if !math.IsInf(cfg.Evaluate([]float64{-1, 1, 1}), 1) {
		t.Error("negative speed should evaluate to +Inf")
	}
	if !math.IsInf(cfg.Evaluate([]float64{0.01, 0.01, 0.01}), 1) {
		t.Error("insufficient capacity should evaluate to +Inf")
	}
}

func TestOptimizeSpeedsPriorityDiscipline(t *testing.T) {
	cfg := smallConfig()
	cfg.Discipline = queueing.Priority
	res, err := OptimizeSpeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfs := smallConfig()
	fcfsRes, err := OptimizeSpeeds(fcfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation.AvgResponseTime <= fcfsRes.Allocation.AvgResponseTime {
		t.Fatalf("priority optimum %.6f should exceed FCFS optimum %.6f",
			res.Allocation.AvgResponseTime, fcfsRes.Allocation.AvgResponseTime)
	}
}
