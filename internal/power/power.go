// Package power extends the paper's model with the question its
// conclusions point at: server speeds strongly affect T′, and speed
// costs energy — so what is the best way to spend a power budget? It
// optimizes the blade speeds of a group, under the standard dynamic
// power model (power per blade ∝ s^α, α ≈ 3 for CMOS), so that the
// *optimally distributed* generic response time is minimized subject to
// a total power budget. This is the natural two-level composition of
// the paper's optimizer with a resource-allocation outer problem, in
// the spirit of Li's companion work on power-aware computing.
package power

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// Config parameterizes the speed optimization.
type Config struct {
	// Sizes are the blade counts m_i.
	Sizes []int
	// SpecialFraction y keeps each server preloaded to utilization y,
	// i.e. λ″_i = y·m_i·s_i/r̄ tracks the chosen speed (the preload is
	// proportional work, as in all of the paper's experiments).
	SpecialFraction float64
	// TaskSize is r̄.
	TaskSize float64
	// GenericRate is the total generic arrival rate λ′ to plan for.
	GenericRate float64
	// Discipline of special tasks.
	Discipline queueing.Discipline
	// Alpha is the power exponent (power per blade = s^α). Must be > 1.
	Alpha float64
	// Budget is the total power Σ m_i s_i^α available. Must be
	// positive.
	Budget float64
	// Tolerance stops the outer search when a full coordinate pass
	// improves T′ by less than this relative amount (default 1e-6).
	Tolerance float64
	// InnerEpsilon is passed to the inner optimizer (default 1e-9,
	// looser than the standalone default because the outer search
	// calls it thousands of times).
	InnerEpsilon float64
}

func (c Config) tolerance() float64 {
	if c.Tolerance <= 0 {
		return 1e-6
	}
	return c.Tolerance
}

func (c Config) innerEpsilon() float64 {
	if c.InnerEpsilon <= 0 {
		return 1e-9
	}
	return c.InnerEpsilon
}

func (c Config) validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("power: no servers")
	}
	for i, m := range c.Sizes {
		if m < 1 {
			return fmt.Errorf("power: size %d of server %d must be ≥ 1", m, i+1)
		}
	}
	if c.SpecialFraction < 0 || c.SpecialFraction >= 1 {
		return fmt.Errorf("power: special fraction %g must be in [0, 1)", c.SpecialFraction)
	}
	if c.TaskSize <= 0 || math.IsNaN(c.TaskSize) {
		return fmt.Errorf("power: task size %g must be positive", c.TaskSize)
	}
	if c.GenericRate <= 0 || math.IsNaN(c.GenericRate) {
		return fmt.Errorf("power: generic rate %g must be positive", c.GenericRate)
	}
	if !c.Discipline.Valid() {
		return fmt.Errorf("power: unknown discipline %d", int(c.Discipline))
	}
	if c.Alpha <= 1 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("power: alpha %g must exceed 1", c.Alpha)
	}
	if c.Budget <= 0 || math.IsNaN(c.Budget) {
		return fmt.Errorf("power: budget %g must be positive", c.Budget)
	}
	return nil
}

// Result is an optimized speed assignment.
type Result struct {
	// Speeds are the chosen blade speeds s_i.
	Speeds []float64
	// Group is the resulting system (speeds and matching preloads).
	Group *model.Group
	// Allocation is the optimal load distribution on that system.
	Allocation *core.Result
	// Power is the consumed budget Σ m_i s_i^α (= Budget up to
	// normalization round-off).
	Power float64
	// Passes is the number of coordinate-descent passes performed.
	Passes int
}

// TotalPower returns Σ m_i s_i^α.
func TotalPower(sizes []int, speeds []float64, alpha float64) float64 {
	var sum numeric.KahanSum
	for i, m := range sizes {
		sum.Add(float64(m) * math.Pow(speeds[i], alpha))
	}
	return sum.Value()
}

// UniformSpeeds returns the speed s that spends the budget evenly per
// blade: s = (Budget/Σm_i)^(1/α) for every server — the baseline the
// optimizer is compared against.
func UniformSpeeds(sizes []int, alpha, budget float64) []float64 {
	total := 0
	for _, m := range sizes {
		total += m
	}
	s := math.Pow(budget/float64(total), 1/alpha)
	out := make([]float64, len(sizes))
	for i := range out {
		out[i] = s
	}
	return out
}

// buildGroup assembles the group for a speed vector, with preloads
// tracking the speeds.
func (c Config) buildGroup(speeds []float64) (*model.Group, error) {
	return model.PaperGroup(c.Sizes, speeds, c.TaskSize, c.SpecialFraction)
}

// Evaluate returns the optimal T′ for a speed vector, or +Inf if the
// speeds cannot absorb the generic rate. This is the cold, allocating
// entry point kept for tests and one-off probes; OptimizeSpeeds runs
// its inner loop through an evaluator that reuses scratch state.
func (c Config) Evaluate(speeds []float64) float64 {
	for _, s := range speeds {
		if s <= 0 {
			return math.Inf(1)
		}
	}
	g, err := c.buildGroup(speeds)
	if err != nil {
		return math.Inf(1)
	}
	if c.GenericRate >= g.MaxGenericRate() {
		return math.Inf(1)
	}
	res, err := core.Optimize(g, c.GenericRate, core.Options{
		Discipline: c.Discipline, Epsilon: c.innerEpsilon(),
	})
	if err != nil {
		return math.Inf(1)
	}
	return res.AvgResponseTime
}

// evaluator is the speed search's hot objective: one reusable speed
// vector and one reusable Group (Servers overwritten in place), with
// the last successful solve's Lagrange multiplier chained into
// core.Options.WarmPhi. Coordinate descent evaluates the objective
// thousands of times on nearby speed vectors, so the warm start skips
// most of each solve's φ-bracket expansion and the scratch reuse drops
// the per-evaluation model rebuild.
type evaluator struct {
	cfg     Config
	speeds  []float64
	group   *model.Group
	warmPhi float64
}

func newEvaluator(cfg Config) *evaluator {
	n := len(cfg.Sizes)
	return &evaluator{
		cfg:    cfg,
		speeds: make([]float64, n),
		group:  &model.Group{Servers: make([]model.Server, n), TaskSize: cfg.TaskSize},
	}
}

// evalShares maps a power-share vector to speeds in scratch and
// evaluates it.
func (e *evaluator) evalShares(sh []float64) float64 {
	for i := range sh {
		e.speeds[i] = math.Pow(sh[i]/float64(e.cfg.Sizes[i]), 1/e.cfg.Alpha)
	}
	return e.evalSpeeds(e.speeds)
}

// evalSpeeds is Config.Evaluate with reused state and a warm-started
// solve. The warm start only reshapes the optimizer's initial φ
// bracket, never its convergence tolerance, so accepted objective
// values agree with the cold path to solver precision.
func (e *evaluator) evalSpeeds(speeds []float64) float64 {
	for i, s := range speeds {
		if s <= 0 || math.IsNaN(s) {
			return math.Inf(1)
		}
		e.group.Servers[i] = model.Server{
			Size:  e.cfg.Sizes[i],
			Speed: s,
			// λ″_i = y·m_i/x̄_i = y·m_i·s_i/r̄, as in PaperGroup.
			SpecialRate: e.cfg.SpecialFraction * float64(e.cfg.Sizes[i]) * s / e.cfg.TaskSize,
		}
	}
	if err := e.group.Validate(); err != nil {
		return math.Inf(1)
	}
	if e.cfg.GenericRate >= e.group.MaxGenericRate() {
		return math.Inf(1)
	}
	res, err := core.Optimize(e.group, e.cfg.GenericRate, core.Options{
		Discipline: e.cfg.Discipline,
		Epsilon:    e.cfg.innerEpsilon(),
		WarmPhi:    e.warmPhi,
	})
	if err != nil {
		return math.Inf(1)
	}
	e.warmPhi = res.Phi
	return res.AvgResponseTime
}

// OptimizeSpeeds minimizes the optimal T′ over blade speeds subject to
// TotalPower = Budget, by cyclic coordinate descent: each pass
// golden-section-searches one server's power share while the rest of
// the budget stays put (redistribution happens across passes), and a
// move is accepted only if it improves the objective, so the descent
// is monotone. The landscape is genuinely multimodal — at light load
// the optimum concentrates the budget into few fast blades (service
// time beats parallelism), while near saturation it spreads out to
// preserve capacity — so the result is a descent-stable point, not a
// certified global optimum; tests verify it never loses to the uniform
// baseline and that marginal T′ per watt is equalized across servers
// holding a non-negligible share (interior KKT).
func OptimizeSpeeds(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Sizes)
	// Start from uniform per-blade power, the natural prior; if that
	// cannot carry the load the budget is simply too small (uniform
	// maximizes total capacity for α > 1 by power-mean inequality).
	speeds := UniformSpeeds(cfg.Sizes, cfg.Alpha, cfg.Budget)
	ev := newEvaluator(cfg)
	if math.IsInf(ev.evalSpeeds(speeds), 1) {
		return nil, fmt.Errorf("power: budget %g cannot carry λ′=%g even with uniform speeds",
			cfg.Budget, cfg.GenericRate)
	}

	// Power shares p_i = m_i s_i^α; coordinate move on server i trades
	// power with all others proportionally.
	shares := make([]float64, n)
	for i := range shares {
		shares[i] = float64(cfg.Sizes[i]) * math.Pow(speeds[i], cfg.Alpha)
	}
	speedsFor := func(sh []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Pow(sh[i]/float64(cfg.Sizes[i]), 1/cfg.Alpha)
		}
		return out
	}
	objective := ev.evalShares

	best := objective(shares)
	passes := 0
	trial := make([]float64, n) // scratch share vector, reused across all moves
	for ; passes < 60; passes++ {
		improved := best
		for i := 0; i < n; i++ {
			// Vary server i's share in (0, budget); the others scale
			// to keep the total fixed.
			others := cfg.Budget - shares[i]
			f := func(si float64) float64 {
				rest := cfg.Budget - si
				for j := range trial {
					if j == i {
						trial[j] = si
					} else {
						trial[j] = shares[j] * rest / others
					}
				}
				return objective(trial)
			}
			lo := 1e-4 * cfg.Budget
			hi := cfg.Budget * (1 - 1e-4)
			si, err := numeric.GoldenSection(f, lo, hi, 1e-7*cfg.Budget)
			if err != nil {
				return nil, fmt.Errorf("power: coordinate search failed: %w", err)
			}
			if v := f(si); v < best {
				best = v
				rest := cfg.Budget - si
				for j := range shares {
					if j == i {
						shares[j] = si
					} else {
						shares[j] *= rest / others
					}
				}
			}
		}
		if improved-best <= cfg.tolerance()*best {
			break
		}
	}

	finalSpeeds := speedsFor(shares)
	g, err := cfg.buildGroup(finalSpeeds)
	if err != nil {
		return nil, err
	}
	alloc, err := core.Optimize(g, cfg.GenericRate, core.Options{Discipline: cfg.Discipline})
	if err != nil {
		return nil, err
	}
	return &Result{
		Speeds:     finalSpeeds,
		Group:      g,
		Allocation: alloc,
		Power:      TotalPower(cfg.Sizes, finalSpeeds, cfg.Alpha),
		Passes:     passes + 1,
	}, nil
}
