package metrics

import (
	"fmt"
	"math"
)

// ProportionInterval returns the Wilson score confidence interval for a
// binomial proportion: k successes out of n trials (e.g. completed out
// of arrived tasks, up-samples out of total samples). Unlike the naive
// Wald interval p̂ ± z·√(p̂(1−p̂)/n), the Wilson interval stays inside
// [0, 1] and remains informative at the extremes (k = 0 still yields a
// positive upper bound), which matters for rare-loss measurements in
// chaos runs. The returned Interval is centered on the Wilson midpoint
// (p̂ + z²/2n)/(1 + z²/n), not on p̂ itself.
func ProportionInterval(k, n int64, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("metrics: confidence %g must be in (0, 1)", confidence)
	}
	if n <= 0 {
		return Interval{}, fmt.Errorf("metrics: proportion needs n ≥ 1 trials, got %d", n)
	}
	if k < 0 || k > n {
		return Interval{}, fmt.Errorf("metrics: successes %d outside [0, %d]", k, n)
	}
	z := normQuantile(1 - (1-confidence)/2)
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	hw := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	return Interval{Mean: center, HalfWidth: hw, Confidence: confidence, N: n}, nil
}
