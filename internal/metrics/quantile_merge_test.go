package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestMergeP2QuantilesEdgeCases(t *testing.T) {
	if v := MergeP2Quantiles(); v != 0 {
		t.Fatalf("merge of nothing = %g, want 0", v)
	}
	empty, _ := NewP2Quantile(0.5)
	if v := MergeP2Quantiles(empty, nil); v != 0 {
		t.Fatalf("merge of empty estimators = %g, want 0", v)
	}
	// A single live estimator must defer to its own Value().
	solo, _ := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 4, 2, 3, 6, 0} {
		solo.Add(x)
	}
	if v := MergeP2Quantiles(solo, empty); v != solo.Value() {
		t.Fatalf("single-estimator merge = %g, want %g", v, solo.Value())
	}
}

func TestMergeP2QuantilesSmallShards(t *testing.T) {
	// Shards below five observations contribute exact empirical CDFs,
	// so a merge of tiny shards must track the pooled sample quantile.
	a, _ := NewP2Quantile(0.5)
	b, _ := NewP2Quantile(0.5)
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	for _, x := range []float64{4, 5, 6} {
		b.Add(x)
	}
	got := MergeP2Quantiles(a, b)
	if math.Abs(got-3.5) > 0.6 {
		t.Fatalf("merged median of {1..6} = %g, want ≈3.5", got)
	}
}

// Property: merging per-shard estimators lands close to both the exact
// pooled-sample quantile and a single estimator fed the whole stream —
// within the documented knot-gap error bound.
func TestMergeP2QuantilesMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.5, 0.95, 0.99} {
		const shards, perShard = 8, 2000
		var (
			qs  []*P2Quantile
			all []float64
		)
		pooled, _ := NewP2Quantile(p)
		for s := 0; s < shards; s++ {
			q, _ := NewP2Quantile(p)
			for i := 0; i < perShard; i++ {
				// Lognormal-ish latency shape: heavy right tail.
				x := math.Exp(rng.NormFloat64())
				q.Add(x)
				pooled.Add(x)
				all = append(all, x)
			}
			qs = append(qs, q)
		}
		got := MergeP2Quantiles(qs...)
		exact := exactQuantile(all, p)
		// Tolerate the knot-gap bound in probability translated to
		// value space: compare against the exact quantiles half a knot
		// gap either side.
		gap := math.Max(p, 1-p) / 2
		lo := exactQuantile(all, math.Max(0, p-gap))
		hi := exactQuantile(all, math.Min(1, p+gap))
		if got < lo || got > hi {
			t.Errorf("p=%g: merged %g outside knot-gap band [%g, %g] around exact %g",
				p, got, lo, hi, exact)
		}
		// And it should be in the same neighbourhood as the pooled
		// streaming estimate (both approximate the same quantile).
		if rel := math.Abs(got-exact) / exact; rel > 0.35 {
			t.Errorf("p=%g: merged %g vs exact %g (rel err %.2f)", p, got, exact, rel)
		}
	}
}

func TestP2QuantileCloneIsIndependent(t *testing.T) {
	q, _ := NewP2Quantile(0.9)
	for i := 0; i < 100; i++ {
		q.Add(float64(i))
	}
	c := q.Clone()
	if c.Value() != q.Value() || c.Count() != q.Count() {
		t.Fatalf("clone diverges at copy time: %g/%d vs %g/%d",
			c.Value(), c.Count(), q.Value(), q.Count())
	}
	before := c.Value()
	for i := 0; i < 1000; i++ {
		q.Add(1e6)
	}
	if c.Value() != before {
		t.Fatalf("clone tracked the original after copy: %g → %g", before, c.Value())
	}
}
