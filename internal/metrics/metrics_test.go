package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", w.Mean())
	}
	// Sample variance with n−1: Σ(x−5)² = 32 → 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %g, want %g", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %g/%g", w.Min(), w.Max())
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev = %g", w.StdDev())
	}
	if math.Abs(w.StdErr()-w.StdDev()/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("stderr = %g", w.StdErr())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator should be zero")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatal("single observation variance should be 0")
	}
	if w.Min() != 3 || w.Max() != 3 {
		t.Fatal("min/max of single observation")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-10 {
		t.Fatalf("merged mean %.14g vs %.14g", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-10 {
		t.Fatalf("merged variance %.14g vs %.14g", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(&b) // empty other: no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var c Welford
	c.Merge(&a) // empty receiver: copy
	if c.Count() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty should copy")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: Welford mean/variance match the two-pass formulas.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		var clean []float64
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(v, 1e6))
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range clean {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, v := range clean {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(len(clean)-1)
		return math.Abs(w.Mean()-mean) <= 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Variance()-variance) <= 1e-6*(1+variance)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestP2QuantileValidation(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewP2Quantile(bad); err == nil {
			t.Errorf("p=%g should fail", bad)
		}
	}
}

func TestP2QuantileExactSmallSample(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Value() != 0 {
		t.Fatal("empty estimator should return 0")
	}
	q.Add(10)
	q.Add(20)
	q.Add(30)
	v := q.Value()
	if v < 10 || v > 30 {
		t.Fatalf("small-sample median %g out of range", v)
	}
	if q.Count() != 3 {
		t.Fatalf("count = %d", q.Count())
	}
	if q.Quantile() != 0.5 {
		t.Fatalf("quantile = %g", q.Quantile())
	}
}

func TestP2QuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		q, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		n := 200000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
			q.Add(xs[i])
		}
		sort.Float64s(xs)
		exact := xs[int(p*float64(n))]
		if math.Abs(q.Value()-exact) > 0.01 {
			t.Errorf("p=%g: P² estimate %.4f vs exact %.4f", p, q.Value(), exact)
		}
	}
}

func TestP2QuantileExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q, err := NewP2Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300000; i++ {
		q.Add(rng.ExpFloat64())
	}
	want := -math.Log(0.05) // 95th percentile of Exp(1) ≈ 2.9957
	if math.Abs(q.Value()-want) > 0.05 {
		t.Fatalf("P95 = %.4f, want %.4f", q.Value(), want)
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.025, -1.959964},
		{0.9999, 3.719016},
	}
	for _, c := range cases {
		if got := normQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("normQuantile(%g) = %.6f, want %.6f", c.p, got, c.want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("edge quantiles should be ±Inf")
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct{ p, df, want, tol float64 }{
		{0.975, 5, 2.5706, 0.02},
		{0.975, 10, 2.2281, 0.005},
		{0.975, 30, 2.0423, 0.002},
		{0.95, 10, 1.8125, 0.005},
		{0.995, 20, 2.8453, 0.01},
	}
	for _, c := range cases {
		if got := tQuantile(c.p, c.df); math.Abs(got-c.want) > c.tol {
			t.Errorf("tQuantile(%g, %g) = %.4f, want %.4f", c.p, c.df, got, c.want)
		}
	}
	// df → ∞ reduces to the normal quantile.
	if got := tQuantile(0.975, math.Inf(1)); math.Abs(got-1.959964) > 1e-5 {
		t.Errorf("t(∞) = %g", got)
	}
}

func TestConfidenceInterval(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Add(x)
	}
	iv, err := ConfidenceInterval(&w, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Mean != 3 {
		t.Fatalf("mean = %g", iv.Mean)
	}
	// Hand computation: s = sqrt(2.5), se = s/√5, t(0.975, 4) ≈ 2.7764.
	want := 2.7764 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(iv.HalfWidth-want) > 0.02 {
		t.Fatalf("half width = %.4f, want %.4f", iv.HalfWidth, want)
	}
	if !iv.Contains(3) || iv.Contains(100) {
		t.Fatal("Contains misbehaves")
	}
	if iv.Lo() >= iv.Hi() {
		t.Fatal("degenerate interval")
	}
	if iv.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestConfidenceIntervalValidation(t *testing.T) {
	var w Welford
	if _, err := ConfidenceInterval(&w, 0); err == nil {
		t.Error("confidence 0 should fail")
	}
	if _, err := ConfidenceInterval(&w, 1); err == nil {
		t.Error("confidence 1 should fail")
	}
	iv, err := ConfidenceInterval(&w, 0.95)
	if err != nil || iv.HalfWidth != 0 {
		t.Error("empty accumulator should yield zero half-width")
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical coverage of the 95% interval for a normal mean should
	// be close to 95%.
	rng := rand.New(rand.NewSource(99))
	covered := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		var w Welford
		for i := 0; i < 20; i++ {
			w.Add(rng.NormFloat64()*2 + 10)
		}
		iv, err := ConfidenceInterval(&w, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(10) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("coverage = %.3f, want ≈ 0.95", rate)
	}
}

func TestBatchMeans(t *testing.T) {
	if _, err := NewBatchMeans(0); err == nil {
		t.Fatal("batch size 0 should fail")
	}
	bm, err := NewBatchMeans(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 95; i++ {
		bm.Add(float64(i % 10)) // each full batch has mean 4.5
	}
	if bm.Batches() != 9 {
		t.Fatalf("batches = %d, want 9", bm.Batches())
	}
	if math.Abs(bm.Mean()-4.5) > 1e-12 {
		t.Fatalf("mean = %g, want 4.5", bm.Mean())
	}
	iv, err := bm.Interval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.N != 9 {
		t.Fatalf("interval over %d batches", iv.N)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("0 bins should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should fail")
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.Count(0) != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(2) != 1 || h.Count(4) != 1 {
		t.Fatalf("bins: %d %d %d", h.Count(1), h.Count(2), h.Count(4))
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Fatal("out-of-range bins should be 0")
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bins() != 5 || h.BinStart(2) != 4 {
		t.Fatalf("bins=%d start2=%g", h.Bins(), h.BinStart(2))
	}
	if h.Mean() == 0 {
		t.Fatal("mean should track observations")
	}
}
