// Package metrics provides the streaming statistics the discrete-event
// simulator relies on: Welford mean/variance, P² streaming quantiles,
// batch means for autocorrelated series, Student-t confidence
// intervals, and fixed-bin histograms. Everything is single-pass and
// allocation-free after construction.
package metrics

import "math"

// Welford accumulates count, mean, variance, min, and max of a stream
// in one pass using Welford's numerically stable recurrence. The zero
// value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean (0 when empty).
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w (parallel reduction), using
// Chan et al.'s pairwise update.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }
