package metrics

import (
	"math"
	"testing"
)

// TestTQuantileSmallDF pins standard t-table values for the small
// degrees of freedom where the Cornish–Fisher expansion diverges
// (before the fix, df=1 at p=0.975 returned ≈7 instead of 12.706).
// The acceptance bar is 1e-3 for df ∈ {1, 2, 3, 4, 30}; the exact
// inverse-beta path is far tighter than that.
func TestTQuantileSmallDF(t *testing.T) {
	cases := []struct{ p, df, want, tol float64 }{
		// p = 0.975 (two-sided 95 %)
		{0.975, 1, 12.7062047, 1e-6},
		{0.975, 2, 4.3026527, 1e-6},
		{0.975, 3, 3.1824463, 1e-6},
		{0.975, 4, 2.7764451, 1e-6},
		{0.975, 30, 2.0422725, 1e-3},
		// p = 0.95 (two-sided 90 %)
		{0.95, 1, 6.3137515, 1e-6},
		{0.95, 2, 2.9199856, 1e-6},
		{0.95, 3, 2.3533634, 1e-6},
		{0.95, 4, 2.1318468, 1e-6},
		{0.95, 30, 1.6972609, 1e-3},
		// p = 0.995 (two-sided 99 %) — the regime that diverged worst.
		{0.995, 1, 63.6567412, 1e-5},
		{0.995, 2, 9.9248432, 1e-6},
		{0.995, 3, 5.8409093, 1e-6},
		{0.995, 4, 4.6040949, 1e-6},
		{0.995, 30, 2.7499957, 1e-3},
	}
	for _, c := range cases {
		if got := tQuantile(c.p, c.df); math.Abs(got-c.want) > c.tol {
			t.Errorf("tQuantile(%g, %g) = %.7f, want %.7f (±%g)", c.p, c.df, got, c.want, c.tol)
		}
	}
}

// TestTQuantileSymmetry checks the lower tail mirrors the upper and the
// median is exactly zero on the exact small-df path.
func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{1, 2, 3, 4} {
		if got := tQuantile(0.5, df); got != 0 {
			t.Errorf("tQuantile(0.5, %g) = %g, want 0", df, got)
		}
		up, lo := tQuantile(0.975, df), tQuantile(0.025, df)
		if math.Abs(up+lo) > 1e-9 {
			t.Errorf("df=%g: asymmetric tails %g vs %g", df, up, lo)
		}
	}
}

// TestTQuantileContinuityAtSwitch ensures the exact path (df < 5) and
// the Cornish–Fisher path (df ≥ 5) agree where they meet — a jump at
// the switch would make interval widths non-monotone in n.
func TestTQuantileContinuityAtSwitch(t *testing.T) {
	for _, p := range []float64{0.95, 0.975, 0.995} {
		below := tQuantile(p, 4.999999)
		above := tQuantile(p, 5)
		if math.Abs(below-above) > 5e-3 {
			t.Errorf("p=%g: discontinuity at df=5: %.6f vs %.6f", p, below, above)
		}
	}
}

// TestRegIncBeta pins the regularized incomplete beta against known
// values (B(0.5; 0.5, 0.5) symmetry, uniform case a=b=1, and the
// t-CDF identity at a table point).
func TestRegIncBeta(t *testing.T) {
	if got := regIncBeta(1, 1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("I_0.3(1,1) = %g, want 0.3", got)
	}
	if got := regIncBeta(0.5, 0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("I_0.5(0.5,0.5) = %g, want 0.5", got)
	}
	// t-CDF identity: for t = 12.7062047 at df = 1 the upper tail is
	// 0.025, so I_x(0.5, 0.5) with x = df/(df+t²) must be 0.05.
	tv := 12.7062047
	x := 1 / (1 + tv*tv)
	if got := regIncBeta(0.5, 0.5, x); math.Abs(got-0.05) > 1e-7 {
		t.Errorf("I_x(0.5,0.5) = %g, want 0.05", got)
	}
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("edge values must be exact")
	}
}

// TestConfidenceIntervalTinySamples verifies end-to-end that 2- and
// 3-observation intervals now use the exact critical values (the
// motivating bug: every tiny-replication CI was materially too narrow).
func TestConfidenceIntervalTinySamples(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(3)
	iv, err := ConfidenceInterval(&w, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// n=2: df=1, s = √2, se = 1, half width = t(0.975, 1) = 12.7062.
	if math.Abs(iv.HalfWidth-12.7062047) > 1e-4 {
		t.Errorf("n=2 half width = %.5f, want 12.70620", iv.HalfWidth)
	}
	var w3 Welford
	for _, x := range []float64{1, 2, 3} {
		w3.Add(x)
	}
	iv3, err := ConfidenceInterval(&w3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// n=3: df=2, s = 1, se = 1/√3, half width = 4.30265/√3.
	want := 4.3026527 / math.Sqrt(3)
	if math.Abs(iv3.HalfWidth-want) > 1e-4 {
		t.Errorf("n=3 half width = %.5f, want %.5f", iv3.HalfWidth, want)
	}
}
