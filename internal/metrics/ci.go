package metrics

import (
	"fmt"
	"math"
)

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean       float64
	HalfWidth  float64
	Confidence float64 // e.g. 0.95
	N          int64
}

// Lo returns the lower endpoint.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWidth }

// Hi returns the upper endpoint.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWidth }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo() && v <= iv.Hi() }

// String formats the interval as "m ± h (c%)".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, n=%d)", iv.Mean, iv.HalfWidth, iv.Confidence*100, iv.N)
}

// ConfidenceInterval returns a Student-t interval for the mean of the
// accumulated observations at the given confidence level (0 < c < 1).
// With fewer than two observations the half width is zero.
func ConfidenceInterval(w *Welford, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("metrics: confidence %g must be in (0, 1)", confidence)
	}
	iv := Interval{Mean: w.Mean(), Confidence: confidence, N: w.Count()}
	if w.Count() < 2 {
		return iv, nil
	}
	t := tQuantile(1-(1-confidence)/2, float64(w.Count()-1))
	iv.HalfWidth = t * w.StdErr()
	return iv, nil
}

// tQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, via the normal quantile plus the Cornish–Fisher
// expansion in 1/df (accurate to ~1e-3 for df ≥ 3, exact as df → ∞).
func tQuantile(p, df float64) float64 {
	z := normQuantile(p)
	if math.IsInf(df, 1) || df <= 0 {
		return z
	}
	z2 := z * z
	// Cornish–Fisher / Peiser expansion terms.
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}

// normQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (|ε| < 1.15e-9).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
