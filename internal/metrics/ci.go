package metrics

import (
	"fmt"
	"math"
)

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean       float64
	HalfWidth  float64
	Confidence float64 // e.g. 0.95
	N          int64
}

// Lo returns the lower endpoint.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWidth }

// Hi returns the upper endpoint.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWidth }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo() && v <= iv.Hi() }

// String formats the interval as "m ± h (c%)".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, n=%d)", iv.Mean, iv.HalfWidth, iv.Confidence*100, iv.N)
}

// ConfidenceInterval returns a Student-t interval for the mean of the
// accumulated observations at the given confidence level (0 < c < 1).
// With fewer than two observations the half width is zero.
func ConfidenceInterval(w *Welford, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("metrics: confidence %g must be in (0, 1)", confidence)
	}
	iv := Interval{Mean: w.Mean(), Confidence: confidence, N: w.Count()}
	if w.Count() < 2 {
		return iv, nil
	}
	t := tQuantile(1-(1-confidence)/2, float64(w.Count()-1))
	iv.HalfWidth = t * w.StdErr()
	return iv, nil
}

// tQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom. For df < 5 the Cornish–Fisher expansion diverges
// (df=1 at p=0.975 would return ≈7 instead of 12.706, silently
// shrinking every 2–3-replication confidence interval), so small df
// invert the exact CDF through the regularized incomplete beta
// function; df ≥ 5 keep the expansion (accurate to ~1e-3 there, exact
// as df → ∞).
func tQuantile(p, df float64) float64 {
	z := normQuantile(p)
	if math.IsInf(df, 1) || df <= 0 {
		return z
	}
	if df < 5 {
		return tQuantileExact(p, df)
	}
	z2 := z * z
	// Cornish–Fisher / Peiser expansion terms.
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}

// tQuantileExact inverts Student's t CDF. For t > 0 the upper tail is
//
//	1 − F(t) = I_x(df/2, 1/2) / 2,  x = df/(df + t²),
//
// and I_x(a, b) is monotone increasing in x, so the p-quantile follows
// from a bisection for x with I_x(df/2, 1/2) = 2(1−p), mapped back via
// t = √(df(1−x)/x). Negative quantiles come from symmetry.
func tQuantileExact(p, df float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5: //bladelint:allow floateq -- 0.5 is exactly representable; the median is an exact special case
		return 0
	case p < 0.5:
		return -tQuantileExact(1-p, df)
	}
	target := 2 * (1 - p)
	lo, hi := 0.0, 1.0
	for i := 0; i < 200 && hi-lo > 1e-16; i++ {
		mid := lo + (hi-lo)/2
		if regIncBeta(df/2, 0.5, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	x := lo + (hi-lo)/2
	return math.Sqrt(df * (1 - x) / x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) with the continued fraction of Numerical Recipes §6.4,
// switching to the symmetric form when x is past the saddle point so
// the fraction always converges quickly.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

// betaContinuedFraction evaluates the incomplete-beta continued
// fraction by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-16
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// normQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (|ε| < 1.15e-9).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
