package metrics

import "fmt"

// BatchMeans estimates the mean of an autocorrelated stationary series
// (e.g. per-task response times within one simulation run) by grouping
// consecutive observations into fixed-size batches; the batch means are
// approximately independent, so a Student-t interval over them is
// valid where one over raw observations is not.
type BatchMeans struct {
	size    int64
	current Welford
	batches Welford
}

// NewBatchMeans creates an accumulator with the given batch size.
func NewBatchMeans(batchSize int) (*BatchMeans, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("metrics: batch size %d must be ≥ 1", batchSize)
	}
	return &BatchMeans{size: int64(batchSize)}, nil
}

// Add accumulates one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.Count() == b.size {
		b.batches.Add(b.current.Mean())
		b.current.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.Count() }

// Mean returns the mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// Interval returns the Student-t confidence interval over completed
// batch means.
func (b *BatchMeans) Interval(confidence float64) (Interval, error) {
	return ConfidenceInterval(&b.batches, confidence)
}

// Histogram bins observations into fixed-width buckets over [lo, hi);
// values outside the range land in two overflow counters.
type Histogram struct {
	lo, hi   float64
	width    float64
	counts   []int64
	under    int64
	over     int64
	observed Welford
}

// NewHistogram creates a histogram with the given bin count over
// [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("metrics: bins %d must be ≥ 1", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("metrics: range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(bins), counts: make([]int64, bins)}, nil
}

// Add accumulates one observation.
func (h *Histogram) Add(x float64) {
	h.observed.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / h.width)
		if idx >= len(h.counts) { // guard float round-up at hi
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Count returns the bin count for bin i.
func (h *Histogram) Count(i int) int64 {
	if i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i]
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinStart returns the left edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return h.lo + float64(i)*h.width }

// Underflow returns the count of observations below lo.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above hi.
func (h *Histogram) Overflow() int64 { return h.over }

// Total returns the total number of observations including overflow.
func (h *Histogram) Total() int64 { return h.observed.Count() }

// Mean returns the exact (not binned) mean of all observations.
func (h *Histogram) Mean() float64 { return h.observed.Mean() }
