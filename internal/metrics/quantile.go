package metrics

import (
	"fmt"
	"sort"
)

// P2Quantile estimates a single quantile of a stream with O(1) memory
// using the P² algorithm of Jain & Chlamtac (1985). It keeps five
// markers whose positions are adjusted with piecewise-parabolic
// interpolation.
type P2Quantile struct {
	p       float64
	n       int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments
	initial [5]float64 // first five observations (fixed array: Add runs on the serving hot path, which forbids allocation)
}

// NewP2Quantile creates an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("metrics: quantile %g must be in (0, 1)", p)
	}
	q := &P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Add accumulates one observation.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		q.initial[q.n] = x
		q.n++
		if q.n == 5 {
			sort.Float64s(q.initial[:])
			q.heights = q.initial
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	q.n++
	// Find the cell k containing x and update extreme heights.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.incr[i]
	}
	// Adjust the three middle markers.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Count returns the number of observations.
func (q *P2Quantile) Count() int64 { return q.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the sorted-sample quantile.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		tmp := append([]float64(nil), q.initial[:q.n]...)
		sort.Float64s(tmp)
		idx := int(q.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return q.heights[2]
}

// Quantile returns the target probability p.
func (q *P2Quantile) Quantile() float64 { return q.p }

// Clone returns an independent copy of the estimator, so a snapshot
// can be merged or inspected while the original keeps accumulating.
func (q *P2Quantile) Clone() *P2Quantile {
	c := *q
	return &c
}

// cdfKnots returns the estimator's state as a piecewise-linear CDF:
// parallel slices of nondecreasing heights and cumulative
// probabilities. With five or more observations the knots are the P²
// markers, whose positions estimate the order statistics at cumulative
// probabilities {0, p/2, p, (1+p)/2, 1}; with fewer they are the exact
// sorted sample.
func (q *P2Quantile) cdfKnots() (xs, ps []float64) {
	if q.n == 0 {
		return nil, nil
	}
	if q.n < 5 {
		xs = append([]float64(nil), q.initial[:q.n]...)
		sort.Float64s(xs)
		ps = make([]float64, len(xs))
		for i := range xs {
			if len(xs) == 1 {
				ps[i] = 1
			} else {
				ps[i] = float64(i) / float64(len(xs)-1)
			}
		}
		return xs, ps
	}
	xs = append(xs, q.heights[:]...)
	ps = make([]float64, 5)
	for i := range ps {
		// pos is a 1-based rank among n observations.
		ps[i] = (q.pos[i] - 1) / float64(q.n-1)
	}
	// P² keeps heights nondecreasing and positions increasing, but
	// clamp defensively so interpolation below never divides by a
	// negative span.
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			ps[i] = ps[i-1]
		}
		if xs[i] < xs[i-1] {
			xs[i] = xs[i-1]
		}
	}
	return xs, ps
}

// cdfAt evaluates the piecewise-linear CDF defined by cdfKnots at x.
func cdfAt(xs, ps []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x < xs[0] {
		return 0
	}
	if x >= xs[len(xs)-1] {
		return 1
	}
	i := sort.SearchFloat64s(xs, x) // first index with xs[i] >= x
	if xs[i] == x {                 //bladelint:allow floateq -- tied knots are bit-equal copies, exact match is the point
		// Step up through any tied knots.
		for i+1 < len(xs) && xs[i+1] == x { //bladelint:allow floateq -- tied knots are bit-equal copies, exact match is the point
			i++
		}
		return ps[i]
	}
	span := xs[i] - xs[i-1]
	return ps[i-1] + (ps[i]-ps[i-1])*(x-xs[i-1])/span
}

// MergeP2Quantiles combines independent P² estimators of the same
// quantile (e.g. per-shard latency accumulators) into one estimate by
// mixture-CDF inversion: each estimator's markers define a
// piecewise-linear CDF, the CDFs are averaged with weights n_j/Σn, and
// the mixture is inverted at the target probability by bisection.
//
// Error bound: each marker is P²'s estimate of an exact order
// statistic, and between markers the linear interpolation can misplace
// probability mass by at most the knot gap — the marker spacing
// {p/2, p/2, (1−p)/2, (1−p)/2}. The inverted mixture therefore sits
// within max(p, 1−p)/2 in *probability* of the true mixture quantile,
// on top of P²'s own marker error; in *value* that is tight whenever
// the latency CDF is locally near-linear, which tails of unimodal
// latency distributions are at the resolutions P² sustains. Estimators
// with fewer than five observations contribute their exact empirical
// CDF, so small shards introduce no additional error.
func MergeP2Quantiles(qs ...*P2Quantile) float64 {
	type cdf struct {
		xs, ps []float64
		w      float64
	}
	var (
		cdfs  []cdf
		total int64
		p     float64
		last  *P2Quantile
	)
	for _, q := range qs {
		if q == nil || q.Count() == 0 {
			continue
		}
		total += q.Count()
		p = q.p
		last = q
	}
	if total == 0 {
		return 0
	}
	var lo, hi float64
	first := true
	for _, q := range qs {
		if q == nil || q.Count() == 0 {
			continue
		}
		xs, ps := q.cdfKnots()
		cdfs = append(cdfs, cdf{xs: xs, ps: ps, w: float64(q.Count()) / float64(total)})
		if first {
			lo, hi = xs[0], xs[len(xs)-1]
			first = false
		} else {
			if xs[0] < lo {
				lo = xs[0]
			}
			if xs[len(xs)-1] > hi {
				hi = xs[len(xs)-1]
			}
		}
	}
	if len(cdfs) == 1 {
		return last.Value()
	}
	if hi <= lo {
		return lo
	}
	mixture := func(x float64) float64 {
		var f float64
		for _, c := range cdfs {
			f += c.w * cdfAt(c.xs, c.ps, x)
		}
		return f
	}
	// The mixture CDF is monotone; bisect for the smallest x with
	// F(x) ≥ p. Sixty iterations resolve the bracket to one ULP-scale
	// sliver of its width.
	for i := 0; i < 60; i++ {
		mid := lo + (hi-lo)/2
		if mixture(mid) >= p {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
