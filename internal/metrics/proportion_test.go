package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestProportionIntervalKnownValues(t *testing.T) {
	// 50/100 at 95%: the textbook Wilson interval (0.4038, 0.5962).
	iv, err := ProportionInterval(50, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Mean-0.5) > 1e-12 {
		t.Errorf("symmetric case center = %g, want 0.5", iv.Mean)
	}
	if math.Abs(iv.Lo()-0.40383) > 5e-4 || math.Abs(iv.Hi()-0.59617) > 5e-4 {
		t.Errorf("interval [%g, %g], want ≈ [0.4038, 0.5962]", iv.Lo(), iv.Hi())
	}
}

func TestProportionIntervalExtremes(t *testing.T) {
	// Zero successes: lower bound 0, but a positive, finite upper bound
	// (≈ 0.1611 for n = 20 at 95%) — the property Wald lacks.
	iv, err := ProportionInterval(0, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Lo()) > 1e-12 {
		t.Errorf("k=0 lower bound = %g, want 0", iv.Lo())
	}
	if math.Abs(iv.Hi()-0.1611) > 1e-3 {
		t.Errorf("k=0 upper bound = %g, want ≈ 0.1611", iv.Hi())
	}
	// All successes mirrors it.
	iv, err = ProportionInterval(20, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Hi()-1) > 1e-12 || math.Abs(iv.Lo()-0.8389) > 1e-3 {
		t.Errorf("k=n interval [%g, %g], want ≈ [0.8389, 1]", iv.Lo(), iv.Hi())
	}
}

func TestProportionIntervalValidation(t *testing.T) {
	for _, c := range []struct {
		k, n int64
		conf float64
	}{
		{1, 0, 0.95}, {-1, 10, 0.95}, {11, 10, 0.95}, {5, 10, 0}, {5, 10, 1},
	} {
		if _, err := ProportionInterval(c.k, c.n, c.conf); err == nil {
			t.Errorf("ProportionInterval(%d, %d, %g) accepted invalid input", c.k, c.n, c.conf)
		}
	}
}

// TestProportionIntervalCoverage checks the interval does its job:
// across repeated binomial experiments the true p must be covered close
// to the nominal rate (Wilson's actual coverage oscillates around
// nominal, so the check allows a generous band).
func TestProportionIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const p, n, experiments = 0.3, 60, 2000
	covered := 0
	for e := 0; e < experiments; e++ {
		k := int64(0)
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		iv, err := ProportionInterval(k, n, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(p) {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.92 || rate > 0.99 {
		t.Errorf("coverage %.3f outside [0.92, 0.99] for nominal 0.95", rate)
	}
}
