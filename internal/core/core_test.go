package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

func TestOptimizeValidation(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := Optimize(g, 0, Options{}); err == nil {
		t.Error("λ′=0 should fail")
	}
	if _, err := Optimize(g, -1, Options{}); err == nil {
		t.Error("negative λ′ should fail")
	}
	if _, err := Optimize(g, math.NaN(), Options{}); err == nil {
		t.Error("NaN λ′ should fail")
	}
	if _, err := Optimize(g, g.MaxGenericRate(), Options{}); err == nil {
		t.Error("λ′ = λ′_max should fail")
	}
	if _, err := Optimize(g, 2*g.MaxGenericRate(), Options{}); err == nil {
		t.Error("λ′ > λ′_max should fail")
	}
	if _, err := Optimize(g, 1, Options{Discipline: queueing.Discipline(7)}); err == nil {
		t.Error("unknown discipline should fail")
	}
	bad := &model.Group{TaskSize: 1}
	if _, err := Optimize(bad, 1, Options{}); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestOptimizeConservation(t *testing.T) {
	g := model.LiExample1Group()
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
			lambda := frac * g.MaxGenericRate()
			res, err := Optimize(g, lambda, Options{Discipline: d})
			if err != nil {
				t.Fatalf("frac=%g %v: %v", frac, d, err)
			}
			if got := numeric.Sum(res.Rates); math.Abs(got-lambda) > 1e-9 {
				t.Errorf("frac=%g %v: Σλ′_i = %.12g, want %.12g", frac, d, got, lambda)
			}
			if err := g.Feasible(res.Rates); err != nil {
				t.Errorf("frac=%g %v: infeasible: %v", frac, d, err)
			}
		}
	}
}

func TestOptimizeKKT(t *testing.T) {
	g := model.LiExample1Group()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := Optimize(g, 0.6*g.MaxGenericRate(), Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		resid, err := KKTResidual(g, d, res.Rates)
		if err != nil {
			t.Fatal(err)
		}
		if resid > 1e-7 {
			t.Errorf("%v: KKT residual %g too large", d, resid)
		}
	}
}

func TestOptimizeNoProfitableDeviation(t *testing.T) {
	// Move mass δ from server i to server j: T′ must not decrease.
	g := model.LiExample1Group()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := Optimize(g, 0.5*g.MaxGenericRate(), Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		base := res.AvgResponseTime
		const delta = 1e-3
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if i == j || res.Rates[i] < delta {
					continue
				}
				pert := append([]float64(nil), res.Rates...)
				pert[i] -= delta
				pert[j] += delta
				if g.Feasible(pert) != nil {
					continue
				}
				if got := g.AverageResponseTime(d, pert); got < base-1e-12 {
					t.Errorf("%v: moving %g from %d to %d improves T′: %.12g < %.12g",
						d, delta, i+1, j+1, got, base)
				}
			}
		}
	}
}

func TestOptimizeRandomPerturbationsNeverImprove(t *testing.T) {
	g := model.LiExample1Group()
	rng := rand.New(rand.NewSource(42))
	res, err := Optimize(g, 0.65*g.MaxGenericRate(), Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	base := res.AvgResponseTime
	for trial := 0; trial < 200; trial++ {
		pert := append([]float64(nil), res.Rates...)
		// Random zero-sum perturbation.
		i, j := rng.Intn(g.N()), rng.Intn(g.N())
		if i == j {
			continue
		}
		d := rng.Float64() * 0.05 * res.Rates[i]
		pert[i] -= d
		pert[j] += d
		if g.Feasible(pert) != nil {
			continue
		}
		if got := g.AverageResponseTime(queueing.FCFS, pert); got < base-1e-12 {
			t.Fatalf("trial %d: perturbation improved T′ from %.12g to %.12g", trial, base, got)
		}
	}
}

func TestOptimizeLowLoadDropsSlowServers(t *testing.T) {
	// With a tiny λ′ and one much faster server, slow servers should
	// receive zero (inactive-set handling).
	g := &model.Group{
		Servers: []model.Server{
			{Size: 4, Speed: 10.0, SpecialRate: 0},
			{Size: 1, Speed: 0.1, SpecialRate: 0},
		},
		TaskSize: 1,
	}
	res, err := Optimize(g, 0.05, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rates[1] > 1e-6 {
		t.Fatalf("slow server got λ′=%g, want ~0 (rates=%v)", res.Rates[1], res.Rates)
	}
	if math.Abs(numeric.Sum(res.Rates)-0.05) > 1e-9 {
		t.Fatalf("conservation broken: %v", res.Rates)
	}
}

func TestOptimizeHighLoadNearSaturation(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.99 * g.MaxGenericRate()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := Optimize(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if math.IsInf(res.AvgResponseTime, 1) || math.IsNaN(res.AvgResponseTime) {
			t.Fatalf("%v: T′ = %g", d, res.AvgResponseTime)
		}
		for i, rho := range res.Utilizations {
			if rho >= 1 {
				t.Errorf("%v: server %d unstable (ρ=%g)", d, i+1, rho)
			}
		}
	}
}

func TestOptimizeSingleServer(t *testing.T) {
	// n = 1: the entire stream goes to the only server.
	g := &model.Group{
		Servers:  []model.Server{{Size: 3, Speed: 2, SpecialRate: 1}},
		TaskSize: 1,
	}
	res, err := Optimize(g, 2.5, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rates[0]-2.5) > 1e-9 {
		t.Fatalf("rate = %g, want 2.5", res.Rates[0])
	}
	want := g.Servers[0].GenericResponseTime(queueing.FCFS, 2.5, 1)
	if !numeric.WithinTol(res.AvgResponseTime, want, 1e-9, 1e-9) {
		t.Fatalf("T′ = %.12g, want %.12g", res.AvgResponseTime, want)
	}
}

func TestOptimizeHomogeneousSymmetry(t *testing.T) {
	// Identical servers must receive identical rates.
	servers := make([]model.Server, 5)
	for i := range servers {
		servers[i] = model.Server{Size: 4, Speed: 1.3, SpecialRate: 1.0}
	}
	g := &model.Group{Servers: servers, TaskSize: 1}
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := Optimize(g, 0.5*g.MaxGenericRate(), Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 5; i++ {
			if math.Abs(res.Rates[i]-res.Rates[0]) > 1e-7 {
				t.Errorf("%v: asymmetric rates %v", d, res.Rates)
			}
		}
	}
}

func TestOptimizeMonotoneInLambda(t *testing.T) {
	// T′ is increasing in the total rate λ′.
	g := model.LiExample1Group()
	prev := 0.0
	for _, frac := range []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95} {
		res, err := Optimize(g, frac*g.MaxGenericRate(), Options{Discipline: queueing.FCFS})
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgResponseTime <= prev {
			t.Fatalf("T′ not increasing at frac=%g: %g after %g", frac, res.AvgResponseTime, prev)
		}
		prev = res.AvgResponseTime
	}
}

func TestOptimizeBeatsGoldenSectionOnTwoServers(t *testing.T) {
	// Independent check with a solver that shares no code with the
	// Lagrange machinery: for n = 2 the problem is one-dimensional in
	// λ′_1; golden-section search must find the same optimum.
	g := &model.Group{
		Servers: []model.Server{
			{Size: 3, Speed: 1.5, SpecialRate: 1.2},
			{Size: 5, Speed: 0.9, SpecialRate: 1.0},
		},
		TaskSize: 1,
	}
	lambda := 0.6 * g.MaxGenericRate()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := Optimize(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		obj := func(l1 float64) float64 {
			l2 := lambda - l1
			if l2 < 0 {
				return math.Inf(1)
			}
			return g.AverageResponseTime(d, []float64{l1, l2})
		}
		lo := math.Max(0, lambda-g.Servers[1].MaxGenericRate(1)*(1-1e-9))
		hi := math.Min(lambda, g.Servers[0].MaxGenericRate(1)*(1-1e-9))
		l1, err := numeric.GoldenSection(obj, lo, hi, 1e-11)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l1-res.Rates[0]) > 1e-5 {
			t.Errorf("%v: golden-section λ′_1=%.9g vs optimizer %.9g", d, l1, res.Rates[0])
		}
		if math.Abs(obj(l1)-res.AvgResponseTime) > 1e-9 {
			t.Errorf("%v: golden-section T′=%.12g vs optimizer %.12g", d, obj(l1), res.AvgResponseTime)
		}
	}
}

func TestFindRateEdgeCases(t *testing.T) {
	s := model.Server{Size: 2, Speed: 1, SpecialRate: 0.5}
	// φ below the idle marginal cost → 0.
	if got := FindRate(s, 1, 10, 1e-9, queueing.FCFS, 1e-10); got != 0 {
		t.Errorf("tiny φ: rate = %g, want 0", got)
	}
	// Huge φ → capped near saturation.
	got := FindRate(s, 1, 10, 1e12, queueing.FCFS, 1e-10)
	if got < 1.49 || got >= 1.5 {
		t.Errorf("huge φ: rate = %g, want just under 1.5", got)
	}
	// Saturated-by-specials server gets nothing.
	sat := model.Server{Size: 1, Speed: 1, SpecialRate: 1}
	if got := FindRate(sat, 1, 10, 1, queueing.FCFS, 1e-10); got != 0 {
		t.Errorf("saturated server: rate = %g, want 0", got)
	}
	// Non-positive eps falls back to default.
	if got := FindRate(s, 1, 10, 1e12, queueing.FCFS, 0); got < 1.4 {
		t.Errorf("default eps: rate = %g", got)
	}
}

func TestFindRateMonotoneInPhi(t *testing.T) {
	s := model.Server{Size: 6, Speed: 1.2, SpecialRate: 2.0}
	prev := -1.0
	for _, phi := range []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 50} {
		r := FindRate(s, 1, 10, phi, queueing.FCFS, 1e-11)
		if r < prev-1e-9 {
			t.Fatalf("rate not monotone in φ: %g after %g at φ=%g", r, prev, phi)
		}
		prev = r
	}
}

func TestKKTResidualErrors(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := KKTResidual(g, queueing.FCFS, make([]float64, 7)); err == nil {
		t.Error("zero allocation should error")
	}
	if _, err := KKTResidual(g, queueing.FCFS, []float64{1}); err == nil {
		t.Error("wrong length should error")
	}
}

func TestKKTResidualDetectsBadAllocation(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	// Deliberately lopsided: everything proportional to size only.
	rates := make([]float64, 7)
	tot := 0.0
	for _, s := range g.Servers {
		tot += float64(s.Size)
	}
	for i, s := range g.Servers {
		rates[i] = lambda * float64(s.Size) / tot
	}
	resid, err := KKTResidual(g, queueing.FCFS, rates)
	if err != nil {
		t.Fatal(err)
	}
	if resid < 1e-3 {
		t.Fatalf("lopsided allocation has residual %g, expected clearly nonzero", resid)
	}
}

func TestOptionsEpsilonDefault(t *testing.T) {
	if (Options{}).epsilon() != DefaultEpsilon {
		t.Fatal("zero epsilon should default")
	}
	if (Options{Epsilon: 1e-6}).epsilon() != 1e-6 {
		t.Fatal("explicit epsilon should pass through")
	}
}

func TestOptimizeCoarseEpsilonStillConserves(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	res, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(numeric.Sum(res.Rates)-lambda) > 1e-9 {
		t.Fatalf("rescaling should restore conservation: Σ=%g", numeric.Sum(res.Rates))
	}
	// Coarse run should still be close to the pinned value.
	if math.Abs(res.AvgResponseTime-table1T) > 1e-4 {
		t.Fatalf("coarse T′ = %g too far from %g", res.AvgResponseTime, table1T)
	}
}

func TestOptimizeNoRescaleResidual(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	res, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS, NoRescale: true})
	if err != nil {
		t.Fatal(err)
	}
	// The raw algorithm's residual is of order ε, not zero, but small.
	if math.Abs(numeric.Sum(res.Rates)-lambda) > 1e-6 {
		t.Fatalf("raw residual too large: %g", numeric.Sum(res.Rates)-lambda)
	}
}
