package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// randomGroup draws a feasible heterogeneous group: 2–10 servers,
// sizes 1–20, speeds 0.2–2.5, preloads 0–60 % of capacity.
func randomGroup(rng *rand.Rand) *model.Group {
	n := 2 + rng.Intn(9)
	servers := make([]model.Server, n)
	for i := range servers {
		size := 1 + rng.Intn(20)
		speed := 0.2 + 2.3*rng.Float64()
		preload := 0.6 * rng.Float64()
		servers[i] = model.Server{
			Size:        size,
			Speed:       speed,
			SpecialRate: preload * float64(size) * speed,
		}
	}
	return &model.Group{Servers: servers, TaskSize: 0.5 + rng.Float64()}
}

// TestOptimizeRandomInstances hammers the solver with random systems
// and verifies the full contract on each: success, conservation,
// feasibility, KKT optimality, and domination of the strongest
// always-feasible baseline.
func TestOptimizeRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	const instances = 120
	for trial := 0; trial < instances; trial++ {
		g := randomGroup(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid group: %v", trial, err)
		}
		frac := 0.05 + 0.9*rng.Float64()
		lambda := frac * g.MaxGenericRate()
		d := queueing.FCFS
		if rng.Intn(2) == 1 {
			d = queueing.Priority
		}
		res, err := Optimize(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatalf("trial %d (n=%d, frac=%.3f, %v): %v", trial, g.N(), frac, d, err)
		}
		if math.Abs(numeric.Sum(res.Rates)-lambda) > 1e-8*lambda+1e-12 {
			t.Fatalf("trial %d: conservation broken by %g", trial, numeric.Sum(res.Rates)-lambda)
		}
		if err := g.Feasible(res.Rates); err != nil {
			t.Fatalf("trial %d: infeasible optimum: %v", trial, err)
		}
		if math.IsNaN(res.AvgResponseTime) || math.IsInf(res.AvgResponseTime, 0) || res.AvgResponseTime <= 0 {
			t.Fatalf("trial %d: T′ = %g", trial, res.AvgResponseTime)
		}
		resid, err := KKTResidual(g, d, res.Rates)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if resid > 1e-5 {
			t.Fatalf("trial %d: KKT residual %g", trial, resid)
		}
		// The residual-capacity baseline is always feasible; the
		// optimum must not lose to it.
		rates, err := (balance.Residual{}).Allocate(g, lambda)
		if err != nil {
			t.Fatalf("trial %d: residual baseline: %v", trial, err)
		}
		if baseT := g.AverageResponseTime(d, rates); baseT < res.AvgResponseTime-1e-9 {
			t.Fatalf("trial %d: baseline %.9g beats optimum %.9g", trial, baseT, res.AvgResponseTime)
		}
	}
}

// TestClosedFormRandomSingleBlade cross-checks Theorems 1 and 3 against
// the bisection solver on random single-blade systems.
func TestClosedFormRandomSingleBlade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		servers := make([]model.Server, n)
		for i := range servers {
			speed := 0.3 + 2*rng.Float64()
			servers[i] = model.Server{
				Size:        1,
				Speed:       speed,
				SpecialRate: 0.5 * rng.Float64() * speed,
			}
		}
		g := &model.Group{Servers: servers, TaskSize: 1}
		lambda := (0.1 + 0.8*rng.Float64()) * g.MaxGenericRate()

		cf, err := ClosedFormFCFS(g, lambda)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		num, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.WithinTol(cf.AvgResponseTime, num.AvgResponseTime, 1e-7, 1e-7) {
			t.Fatalf("trial %d: Theorem 1 %.12g vs bisection %.12g",
				trial, cf.AvgResponseTime, num.AvgResponseTime)
		}

		cp, err := ClosedFormPriority(g, lambda)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nump, err := Optimize(g, lambda, Options{Discipline: queueing.Priority})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.WithinTol(cp.AvgResponseTime, nump.AvgResponseTime, 1e-7, 1e-7) {
			t.Fatalf("trial %d: Theorem 3 %.12g vs bisection %.12g",
				trial, cp.AvgResponseTime, nump.AvgResponseTime)
		}
	}
}

// FuzzOptimizeContract runs the solver on fuzzer-chosen parameters and
// asserts the invariants that must hold for every accepted input.
func FuzzOptimizeContract(f *testing.F) {
	f.Add(int64(1), 0.5, false)
	f.Add(int64(42), 0.9, true)
	f.Add(int64(-7), 0.1, false)
	f.Fuzz(func(t *testing.T, seed int64, fracSeed float64, prio bool) {
		rng := rand.New(rand.NewSource(seed))
		g := randomGroup(rng)
		frac := math.Mod(math.Abs(fracSeed), 1)
		if frac < 0.01 || frac > 0.97 || math.IsNaN(frac) {
			t.Skip()
		}
		lambda := frac * g.MaxGenericRate()
		d := queueing.FCFS
		if prio {
			d = queueing.Priority
		}
		res, err := Optimize(g, lambda, Options{Discipline: d, Epsilon: 1e-10})
		if err != nil {
			t.Fatalf("seed=%d frac=%g: %v", seed, frac, err)
		}
		if math.Abs(numeric.Sum(res.Rates)-lambda) > 1e-7*lambda+1e-12 {
			t.Fatalf("conservation: Σ=%g λ′=%g", numeric.Sum(res.Rates), lambda)
		}
		if err := g.Feasible(res.Rates); err != nil {
			t.Fatal(err)
		}
		if res.AvgResponseTime <= 0 || math.IsInf(res.AvgResponseTime, 0) || math.IsNaN(res.AvgResponseTime) {
			t.Fatalf("T′ = %g", res.AvgResponseTime)
		}
	})
}
