package core

// Regression tests pinning the solver to the digits published in the
// paper (Tables 1 and 2). These are the primary reproduction checks.

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
)

// table1 holds the published optimal distribution of Example 1
// (special tasks without priority): λ′_i and ρ_i per server.
var table1 = []struct{ rate, rho float64 }{
	{0.6652046, 0.5078764},
	{1.8802882, 0.6133814},
	{2.9973639, 0.6568290},
	{3.9121948, 0.6761726},
	{4.5646028, 0.6803836},
	{4.8769307, 0.6694644},
	{4.6234149, 0.6302439},
}

// table2 holds the published optimal distribution of Example 2
// (special tasks with priority).
var table2 = []struct{ rate, rho float64 }{
	{0.5908113, 0.4846285},
	{1.7714948, 0.5952491},
	{2.8813939, 0.6430231},
	{3.8136848, 0.6667005},
	{4.5164617, 0.6763718},
	{4.9419622, 0.6743911},
	{5.0041912, 0.6574422},
}

const (
	table1T = 0.8964703 // published minimized T′, Example 1
	table2T = 0.9209392 // published minimized T′, Example 2
	digitsT = 5e-8      // everything published has 7 decimals
)

func TestTable1Reproduction(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	if math.Abs(lambda-23.52) > 1e-9 {
		t.Fatalf("λ′ = %.9f, want 23.52", lambda)
	}
	res, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgResponseTime-table1T) > digitsT {
		t.Errorf("T′ = %.7f, want %.7f", res.AvgResponseTime, table1T)
	}
	for i, want := range table1 {
		if math.Abs(res.Rates[i]-want.rate) > digitsT {
			t.Errorf("λ′_%d = %.7f, want %.7f", i+1, res.Rates[i], want.rate)
		}
		if math.Abs(res.Utilizations[i]-want.rho) > digitsT {
			t.Errorf("ρ_%d = %.7f, want %.7f", i+1, res.Utilizations[i], want.rho)
		}
	}
}

func TestTable2Reproduction(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	res, err := Optimize(g, lambda, Options{Discipline: queueing.Priority})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgResponseTime-table2T) > digitsT {
		t.Errorf("T′ = %.7f, want %.7f", res.AvgResponseTime, table2T)
	}
	for i, want := range table2 {
		if math.Abs(res.Rates[i]-want.rate) > digitsT {
			t.Errorf("λ′_%d = %.7f, want %.7f", i+1, res.Rates[i], want.rate)
		}
		if math.Abs(res.Utilizations[i]-want.rho) > digitsT {
			t.Errorf("ρ_%d = %.7f, want %.7f", i+1, res.Utilizations[i], want.rho)
		}
	}
}

func TestPriorityCostsMoreThanFCFS(t *testing.T) {
	// The paper notes Example 2's T′ exceeds Example 1's.
	if table2T <= table1T {
		t.Fatal("sanity: published values out of order")
	}
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	fc, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Optimize(g, lambda, Options{Discipline: queueing.Priority})
	if err != nil {
		t.Fatal(err)
	}
	if pr.AvgResponseTime <= fc.AvgResponseTime {
		t.Fatalf("priority T′=%g should exceed FCFS T′=%g", pr.AvgResponseTime, fc.AvgResponseTime)
	}
}

func TestTable1DifferentUtilizations(t *testing.T) {
	// The paper observes that at the optimum the servers have
	// *different* utilizations (unlike naive balancing).
	g := model.LiExample1Group()
	res, err := Optimize(g, 0.5*g.MaxGenericRate(), Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Utilizations[0], res.Utilizations[0]
	for _, r := range res.Utilizations {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max-min < 0.05 {
		t.Fatalf("utilization spread %g unexpectedly small: %v", max-min, res.Utilizations)
	}
}
