package core

import (
	"math"

	"repro/internal/model"
	"repro/internal/queueing"
)

// stationSolver caches everything the paper's Find_λ′_i recomputes from
// scratch on every call — the station kernel, service-time constants,
// the (possibly capped) saturation bound — and solves the inner
// marginal-cost equation with a bracketed Newton iteration instead of
// pure bisection. Across the outer φ search the solver also warm-starts
// each solve from the rate found at the previous φ, which is within a
// few Newton steps of the new root once the outer bracket narrows.
//
// The pure-bisection path (FindRateLimited) remains the oracle: the
// Newton iteration maintains a [lo, hi] bracket with the same monotone
// predicate semantics and converges to the same root within the same
// ε·λ′_max tolerance, falling back to bisection outright if it fails to
// contract. Agreement to ≤ 1e-9 is pinned by TestNewtonMatchesBisection
// and FuzzNewtonInnerSolve.
type stationSolver struct {
	kern *queueing.Kernel
	d    queueing.Discipline

	mf      float64 // m_i
	xbar    float64 // x̄_i = r̄/s_i
	special float64 // λ″_i
	rhoS    float64 // ρ″_i
	total   float64 // λ′ (the outer problem's total generic rate)

	maxRate float64 // λ′_max,i under the active utilization cap
	capRate float64 // (1−ε)·maxRate, the stability-guarded ceiling
	tol     float64 // ε·maxRate, the bisection's interval tolerance

	// totalObj switches the marginal cost to the fleet-wide objective of
	// OptimizeTotal, which adds the special-task term ρ″ ∂T″/∂ρ (and
	// divides by Λ = λ′ + λ″ instead of λ′, carried in total).
	totalObj bool

	prev float64 // previous solve's rate for warm starts; < 0 when unset
}

// newStationSolver mirrors the setup lines of FindRateLimited once, so
// the per-φ solves skip them.
func newStationSolver(s model.Server, rbar, lambdaTotal float64, d queueing.Discipline, eps, rhoCap float64) stationSolver {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	maxRate := s.MaxGenericRate(rbar)
	if rhoCap > 0 && rhoCap < 1 {
		if capped := rhoCap*s.Capacity(rbar) - s.SpecialRate; capped < maxRate {
			maxRate = capped
		}
	}
	ss := stationSolver{
		kern:    queueing.KernelFor(s.Size),
		d:       d,
		mf:      float64(s.Size),
		xbar:    s.ServiceMean(rbar),
		special: s.SpecialRate,
		total:   lambdaTotal,
		maxRate: maxRate,
		prev:    -1,
	}
	ss.rhoS = s.SpecialRate * ss.xbar / ss.mf
	ss.capRate = (1 - eps) * maxRate
	ss.tol = eps * maxRate
	return ss
}

// costDeriv returns the marginal cost (1/λ′)(T′ + ρ′ ∂T′/∂ρ) at generic
// rate l together with its derivative in l. One kernel evaluation
// yields T′, ∂T′/∂ρ and ∂²T′/∂ρ², and the chain rule with
// dρ/dl = dρ′/dl = x̄/m gives
//
//	d(MC)/dl = (x̄/m)(2 ∂T′/∂ρ + ρ′ ∂²T′/∂ρ²) / λ′ > 0
//
// (positive by convexity of T′, which keeps the Newton slope usable).
func (ss *stationSolver) costDeriv(l float64) (mc, dmc float64) {
	rho := (l + ss.special) * ss.xbar / ss.mf
	if rho >= 1 {
		return math.Inf(1), math.Inf(1)
	}
	rhoG := l * ss.xbar / ss.mf
	t, dt, d2t := ss.kern.Response(ss.d, rho, ss.rhoS, ss.xbar)
	if ss.totalObj {
		// Fleet-wide objective (OptimizeTotal): add ρ″ ∂T″/∂ρ. Under
		// FCFS special tasks see the same shared queue, ∂T″/∂ρ = ∂T′/∂ρ;
		// under priority W″ = C(ρ)·x̄/(m(1−ρ″)), so its ρ-derivatives are
		// C′ and C″ scaled by x̄/(m(1−ρ″)).
		var dts, ddts float64
		if ss.d == queueing.Priority {
			_, dc, d2c := ss.kern.CDerivs(rho)
			scale := ss.xbar / (ss.mf * (1 - ss.rhoS))
			dts, ddts = dc*scale, d2c*scale
		} else {
			dts, ddts = dt, d2t
		}
		mc = (t + rhoG*dt + ss.rhoS*dts) / ss.total
		dmc = ss.xbar / ss.mf * (2*dt + rhoG*d2t + ss.rhoS*ddts) / ss.total
		return mc, dmc
	}
	mc = (t + rhoG*dt) / ss.total
	dmc = ss.xbar / ss.mf * (2*dt + rhoG*d2t) / ss.total
	return mc, dmc
}

// findRate solves MC(l) = φ for this station: the Newton-accelerated
// version of the paper's Fig. 2. Returns 0 when even an idle station's
// marginal cost exceeds φ, and the capped rate when φ exceeds the
// marginal cost everywhere below the stability bound.
func (ss *stationSolver) findRate(phi float64) float64 {
	if ss.maxRate <= 0 {
		return 0 // special tasks (or the cap) leave no headroom
	}
	if mc, _ := ss.costDeriv(0); mc >= phi {
		return 0
	}
	if mc, _ := ss.costDeriv(ss.capRate); mc < phi {
		// Outer loop overshooting φ; the whole feasible range is below.
		return ss.capRate
	}
	// Bracketed Newton on g(l) = MC(l) − φ with g(lo) < 0 ≤ g(hi).
	lo, hi := 0.0, ss.capRate
	x := ss.prev
	if !(x > lo && x < hi) {
		x = lo + (hi-lo)/2
	}
	for i := 0; i < 120; i++ {
		mc, dmc := ss.costDeriv(x)
		g := mc - phi
		if g >= 0 {
			hi = x
		} else {
			lo = x
		}
		if hi-lo <= ss.tol {
			r := lo + (hi-lo)/2
			ss.prev = r
			return r
		}
		xn := math.NaN()
		if dmc > 0 && !math.IsInf(g, 0) {
			xn = x - g/dmc
		}
		if !(xn > lo && xn < hi) {
			xn = lo + (hi-lo)/2 // safeguard: fall back to a bisection step
		}
		if xn == x { //bladelint:allow floateq -- fixed point: the Newton update no longer moves x at float resolution
			ss.prev = x
			return x
		}
		x = xn
	}
	// The iteration failed to contract (pathological inputs); defer to
	// the paper's bisection, the oracle path.
	return ss.bisectFallback(phi)
}

// bisectFallback reruns the solve with the paper's pure-bisection
// primitive over the same bracket and tolerance.
func (ss *stationSolver) bisectFallback(phi float64) float64 {
	lo, hi := 0.0, ss.capRate
	for i := 0; i < 20000 && hi-lo > ss.tol; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi { //bladelint:allow floateq -- bisection fixed point: the midpoint collided with a bound
			break
		}
		if mc, _ := ss.costDeriv(mid); mc >= phi {
			hi = mid
		} else {
			lo = mid
		}
	}
	r := lo + (hi-lo)/2
	ss.prev = r
	return r
}
