package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/numeric"
)

// This file implements the fleet-scale sparse solve path behind
// Options.Sparse. Two structural facts make it exact, not approximate
// (DESIGN §14):
//
//  1. Class symmetry. Stations with an identical (size, speed,
//     special-rate) signature have identical inner problems, and the
//     inner solve is a deterministic function of the φ sequence alone,
//     so every member of a class receives the bit-identical rate the
//     dense path would give it. One stationSolver per class therefore
//     replaces count-many identical solves per probe.
//  2. Exact pruning. A station receives zero generic load exactly when
//     its idle marginal cost MC(0) = T′_i(0)/λ′ is at least φ — the
//     first check of the paper's Find_λ′_i. MC(0) is a constant of the
//     solve, so with classes sorted by MC(0) a single binary search per
//     probe separates the active prefix from the provably-zero suffix,
//     and pruned classes pay no kernel evaluation at all. As the outer
//     doubling raises φ the active prefix only grows.
//
// F(φ) is totalled in station order with the same compensated
// summation as the dense path, so the outer bisection takes the
// bit-identical φ trajectory and the whole solve is bit-identical to
// Optimize without Sparse (pinned by TestSparseMatchesDenseBitIdentical).

// SparseRates is a compact allocation over a fleet: the stations with
// strictly positive generic rate, in ascending station order. It is
// the (index, rate) representation downstream consumers use at fleet
// scale instead of n-wide dense slices of mostly zeros.
type SparseRates struct {
	// N is the fleet size the indices refer into.
	N int
	// Index holds the stations with positive rate, ascending.
	Index []int32
	// Rate holds the matching per-station generic rates λ′_i.
	Rate []float64
}

// NNZ returns the number of stations carrying generic load.
func (s *SparseRates) NNZ() int { return len(s.Index) }

// Sum returns the compensated total Σλ′_i of the allocation.
func (s *SparseRates) Sum() float64 {
	var sum numeric.KahanSum
	for _, r := range s.Rate {
		sum.Add(r)
	}
	return sum.Value()
}

// Dense materializes the allocation as an N-wide rate slice.
func (s *SparseRates) Dense() []float64 {
	out := make([]float64, s.N)
	for k, i := range s.Index {
		out[i] = s.Rate[k]
	}
	return out
}

// ForEach calls fn for every loaded station in ascending order.
func (s *SparseRates) ForEach(fn func(station int, rate float64)) {
	for k, i := range s.Index {
		fn(int(i), s.Rate[k])
	}
}

// sparseClass is one equivalence class of stations: the shared inner
// solver, how many stations it stands for, and the pruning key.
type sparseClass struct {
	rep    model.Server
	solver stationSolver
	count  int
	first  int32 // lowest member station index (deterministic tie-break)
	// mc0 is the idle marginal cost MC(0); +Inf when special load (or
	// the utilization cap) leaves no generic headroom, so such classes
	// sort to the end and are never solved.
	mc0 float64
}

// sparseFleet is the solve-time state of the sparse path: classes
// sorted by MC(0), the station→class map, and the per-probe scratch.
type sparseFleet struct {
	g      *model.Group
	opts   Options
	lambda float64
	eps    float64
	rhoCap float64

	classes []sparseClass
	classOf []int32   // station index → class index (post-sorting)
	scratch []float64 // per-class rates at the most recent probe
}

// newSparseFleet clusters the group into classes, builds one solver per
// class, and sorts classes by idle marginal cost for threshold pruning.
func newSparseFleet(g *model.Group, lambda float64, opts Options, eps, rhoCap float64) *sparseFleet {
	type ckey struct {
		size           int
		speed, special uint64
	}
	n := g.N()
	byKey := make(map[ckey]int32, 64)
	classes := make([]sparseClass, 0, 64)
	tmpOf := make([]int32, n)
	for i, s := range g.Servers {
		k := ckey{s.Size, math.Float64bits(s.Speed), math.Float64bits(s.SpecialRate)}
		ci, ok := byKey[k]
		if !ok {
			ci = int32(len(classes))
			byKey[k] = ci
			classes = append(classes, sparseClass{rep: s, first: int32(i)})
		}
		classes[ci].count++
		tmpOf[i] = ci
	}
	for ci := range classes {
		cl := &classes[ci]
		cl.solver = newStationSolver(cl.rep, g.TaskSize, lambda, opts.Discipline, eps, rhoCap)
		if cl.solver.maxRate <= 0 {
			cl.mc0 = math.Inf(1)
			continue
		}
		mc, _ := cl.solver.costDeriv(0)
		cl.mc0 = mc
	}
	// Sort by MC(0) ascending (ties broken by first member index so the
	// ordering is deterministic); remap the station→class table through
	// the permutation.
	perm := make([]int32, len(classes))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ca, cb := &classes[perm[a]], &classes[perm[b]]
		if ca.mc0 < cb.mc0 {
			return true
		}
		if cb.mc0 < ca.mc0 {
			return false
		}
		return ca.first < cb.first
	})
	sorted := make([]sparseClass, len(classes))
	inv := make([]int32, len(classes))
	for newIdx, old := range perm {
		sorted[newIdx] = classes[old]
		inv[old] = int32(newIdx)
	}
	classOf := make([]int32, n)
	for i, ci := range tmpOf {
		classOf[i] = inv[ci]
	}
	return &sparseFleet{
		g: g, opts: opts, lambda: lambda, eps: eps, rhoCap: rhoCap,
		classes: sorted,
		classOf: classOf,
		scratch: make([]float64, len(sorted)),
	}
}

// solveClass runs one class's inner Find_λ′_i at φ.
func (sf *sparseFleet) solveClass(c int, phi float64) float64 {
	cl := &sf.classes[c]
	if sf.opts.PureBisection {
		return FindRateLimited(cl.rep, sf.g.TaskSize, sf.lambda, phi, sf.opts.Discipline, sf.eps, sf.rhoCap)
	}
	return cl.solver.findRate(phi)
}

// ratesAt evaluates F(φ): the active prefix of classes (MC(0) < φ) is
// solved — sequentially or chunked over goroutines — the pruned suffix
// is zeroed without any evaluation, and the total is compensated in
// station order so it is bit-identical to the dense path's sum.
func (sf *sparseFleet) ratesAt(phi float64) float64 {
	active := sort.Search(len(sf.classes), func(i int) bool { return sf.classes[i].mc0 >= phi })
	rates := sf.scratch
	for c := active; c < len(rates); c++ {
		rates[c] = 0
	}
	workers := runtime.GOMAXPROCS(0)
	if sf.opts.Parallel && active > 1 && workers > 1 {
		// Mirrors the dense path's chunking: each class solver is owned
		// by exactly one chunk per probe and its warm-start evolution
		// depends only on its own φ sequence, so parallel and
		// sequential runs stay bit-identical.
		if workers > active {
			workers = active
		}
		var wg sync.WaitGroup
		chunk := (active + workers - 1) / workers
		for lo := 0; lo < active; lo += chunk {
			hi := lo + chunk
			if hi > active {
				hi = active
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for c := lo; c < hi; c++ {
					rates[c] = sf.solveClass(c, phi)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for c := 0; c < active; c++ {
			rates[c] = sf.solveClass(c, phi)
		}
	}
	return sf.totalOf(rates)
}

// totalOf sums a class-rate vector over stations in station order with
// the same compensated accumulation as the dense path. Pruned classes
// contribute exact zeros, which leave a Kahan accumulator untouched, so
// the sum equals the dense path's bit for bit.
func (sf *sparseFleet) totalOf(classRates []float64) float64 {
	var sum numeric.KahanSum
	for _, ci := range sf.classOf {
		sum.Add(classRates[ci])
	}
	return sum.Value()
}

// feasible mirrors model.Group.Feasible over classes: every member of a
// class has the same utilization at the class rate, so one check per
// class decides the whole fleet.
func (sf *sparseFleet) feasible(classRates []float64) error {
	for c := range sf.classes {
		r := classRates[c]
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("core: class %d rate %g must be non-negative", c, r)
		}
		if rho := sf.classes[c].rep.Utilization(r, sf.g.TaskSize); rho >= 1 {
			return fmt.Errorf("core: class %d unstable at λ′=%g (ρ=%g)", c, r, rho)
		}
	}
	return nil
}

// avgResponseTime computes T′ = Σ (λ′_i/λ′)·T′_i per class — the
// compact-result path that never touches an n-wide slice.
func (sf *sparseFleet) avgResponseTime(classRates []float64) float64 {
	var total numeric.KahanSum
	for c := range sf.classes {
		total.Add(float64(sf.classes[c].count) * classRates[c])
	}
	lambda := total.Value()
	if lambda == 0 { //bladelint:allow floateq -- exact zero total: no class carries load, T′ is 0 by convention
		return 0
	}
	var acc numeric.KahanSum
	for c := range sf.classes {
		r := classRates[c]
		if r == 0 { //bladelint:allow floateq -- exact zero rate contributes nothing and would divide by zero below
			continue
		}
		t := sf.classes[c].rep.GenericResponseTime(sf.opts.Discipline, r, sf.g.TaskSize)
		if math.IsInf(t, 1) {
			return math.Inf(1)
		}
		acc.Add(float64(sf.classes[c].count) * r / lambda * t)
	}
	return acc.Value()
}

// result freezes the solved class rates into a Result: always the
// compact (station, rate) form, plus the dense slices unless the caller
// opted out with CompactResult.
func (sf *sparseFleet) result(classRates []float64, phi float64) *Result {
	n := sf.g.N()
	nnz := 0
	for _, ci := range sf.classOf {
		if classRates[ci] > 0 {
			nnz++
		}
	}
	sp := &SparseRates{
		N:     n,
		Index: make([]int32, 0, nnz),
		Rate:  make([]float64, 0, nnz),
	}
	for i, ci := range sf.classOf {
		if r := classRates[ci]; r > 0 {
			sp.Index = append(sp.Index, int32(i))
			sp.Rate = append(sp.Rate, r)
		}
	}
	res := &Result{
		Phi:        phi,
		Discipline: sf.opts.Discipline,
		TotalRate:  sf.lambda,
		Sparse:     sp,
		Classes:    len(sf.classes),
	}
	if sf.opts.CompactResult {
		res.AvgResponseTime = sf.avgResponseTime(classRates)
		return res
	}
	rates := make([]float64, n)
	for i, ci := range sf.classOf {
		rates[i] = classRates[ci]
	}
	res.Rates = rates
	res.AvgResponseTime = sf.g.AverageResponseTime(sf.opts.Discipline, rates)
	res.Utilizations = sf.g.Utilizations(rates)
	res.ResponseTimes = sf.g.ResponseTimes(sf.opts.Discipline, rates)
	return res
}

// optimizeSparse is Optimize's fleet-scale body: the identical outer
// Fig. 3 search driven over class-indexed rate vectors. Validation and
// the utilization-cap headroom check already ran in Optimize.
func optimizeSparse(g *model.Group, lambda float64, opts Options, eps, rhoCap float64) (*Result, error) {
	fleet := newSparseFleet(g, lambda, opts, eps, rhoCap)
	sol, err := searchPhi(phiEvaluator{
		eval: fleet.ratesAt,
		copyRates: func(dst []float64) []float64 {
			if dst == nil {
				dst = make([]float64, len(fleet.scratch))
			}
			copy(dst, fleet.scratch)
			return dst
		},
	}, lambda, outerStart(opts), eps, !opts.NoRescale)
	if err != nil {
		return nil, fmt.Errorf("core: failed to bracket φ: %w", err)
	}
	classRates, f := sol.Rates, sol.F
	if !opts.NoRescale {
		// Segment repair at a (numerically) discontinuous F — see the
		// dense path for the full argument. Interpolation is per class;
		// the re-total runs in station order to stay bit-identical.
		if sol.FHi > sol.FLo && sol.FLo <= lambda && lambda <= sol.FHi {
			t := (lambda - sol.FLo) / (sol.FHi - sol.FLo)
			for c := range classRates {
				classRates[c] = sol.RatesLo[c] + t*(sol.RatesHi[c]-sol.RatesLo[c])
			}
			f = fleet.totalOf(classRates)
		}
		// Remove the remaining float dust with an exact projection;
		// the factor is 1 ± O(ε) and cannot de-stabilize a station.
		if f > 0 {
			scale := lambda / f
			for c := range classRates {
				classRates[c] *= scale
			}
			if err := fleet.feasible(classRates); err != nil {
				for c := range classRates {
					classRates[c] /= scale
				}
			}
		}
	}
	return fleet.result(classRates, sol.Phi), nil
}
