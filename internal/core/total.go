package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// TotalResult is the outcome of OptimizeTotal: a load distribution
// chosen to minimize the average response time over *all* tasks —
// generic and special together — rather than the paper's generic-only
// objective.
type TotalResult struct {
	// Rates are the generic arrival rates λ′_1..λ′_n.
	Rates []float64
	// Phi is the equalized marginal cost at the optimum.
	Phi float64
	// AvgAllTasks is the minimized fleet-wide average response time
	// Σ(λ′_i T′_i + λ″_i T″_i) / (λ′ + λ″).
	AvgAllTasks float64
	// AvgGeneric is the resulting generic-task average (≥ the value
	// the paper's optimizer would achieve, since the objective now
	// also protects special tasks).
	AvgGeneric float64
	// AvgSpecial is the resulting special-task average.
	AvgSpecial float64
	// Utilizations are ρ_1..ρ_n at the optimum.
	Utilizations []float64
}

// specialResponse returns the mean response time of the special tasks
// on a server at total utilization ρ: equal to the shared FCFS time
// under FCFS, and x̄ + W″ under priority.
func specialResponse(d queueing.Discipline, m int, rho, rhoSpecial, xbar float64) float64 {
	if d == queueing.Priority {
		return xbar + queueing.SpecialWaitTime(m, rho, rhoSpecial, xbar)
	}
	return queueing.GenericResponseTime(queueing.FCFS, m, rho, rhoSpecial, xbar)
}

// dSpecialResponseDRho is ∂T″/∂ρ holding ρ″ fixed.
func dSpecialResponseDRho(d queueing.Discipline, m int, rho, rhoSpecial, xbar float64) float64 {
	if d == queueing.Priority {
		if rhoSpecial >= 1 {
			return math.Inf(1) // consistent with DGenericResponseDRho
		}
		// W″ = C(ρ)·x̄/(m(1−ρ″)): only C depends on ρ.
		return queueing.DErlangCdRho(m, rho) * xbar / (float64(m) * (1 - rhoSpecial))
	}
	return queueing.DGenericResponseDRho(queueing.FCFS, m, rho, rhoSpecial, xbar)
}

// totalMarginalCost is ∂/∂λ′_i of Σ_j (λ′_j T′_j + λ″_j T″_j)/Λ:
//
//	(1/Λ) [ T′_i + ρ′_i ∂T′_i/∂ρ + ρ″_i ∂T″_i/∂ρ ].
//
// Both T′ and T″ are convex increasing in ρ, so the marginal cost is
// increasing in λ′_i and the bisection structure of the paper's
// algorithms carries over unchanged.
func totalMarginalCost(s model.Server, d queueing.Discipline, rate, bigLambda, rbar float64) float64 {
	xbar := s.ServiceMean(rbar)
	rho := s.Utilization(rate, rbar)
	if rho >= 1 {
		return math.Inf(1)
	}
	rhoS := s.SpecialUtilization(rbar)
	rhoG := rate * xbar / float64(s.Size)
	t := queueing.GenericResponseTime(d, s.Size, rho, rhoS, xbar)
	dt := queueing.DGenericResponseDRho(d, s.Size, rho, rhoS, xbar)
	dts := dSpecialResponseDRho(d, s.Size, rho, rhoS, xbar)
	return (t + rhoG*dt + rhoS*dts) / bigLambda
}

// OptimizeTotal distributes the generic stream to minimize the average
// response time of all tasks (generic + special), an objective the
// paper does not treat: its optimizer deliberately sacrifices special
// tasks (whose placement is fixed) when that helps generic ones. With
// no special load the two objectives coincide, which tests verify.
func OptimizeTotal(g *model.Group, lambda float64, opts Options) (*TotalResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !opts.Discipline.Valid() {
		return nil, fmt.Errorf("core: unknown discipline %d", int(opts.Discipline))
	}
	if math.IsNaN(lambda) || lambda <= 0 {
		return nil, fmt.Errorf("core: total generic rate λ′=%g must be positive", lambda)
	}
	if max := g.MaxGenericRate(); lambda >= max {
		return nil, fmt.Errorf("core: λ′=%g at or beyond saturation λ′_max=%g", lambda, max)
	}
	eps := opts.epsilon()
	bigLambda := lambda + g.TotalSpecialRate()

	rateFor := func(s model.Server, phi float64) float64 {
		maxRate := s.MaxGenericRate(g.TaskSize)
		if maxRate <= 0 {
			return 0
		}
		pred := func(l float64) bool {
			return totalMarginalCost(s, opts.Discipline, l, bigLambda, g.TaskSize) >= phi
		}
		if pred(0) {
			return 0
		}
		capRate := (1 - eps) * maxRate
		if !pred(capRate) {
			return capRate
		}
		ub, err := numeric.ExpandUpper(pred, maxRate/1024, maxRate, 1-eps)
		if err != nil {
			return capRate
		}
		r, err := numeric.BisectPredicate(pred, 0, ub, eps*maxRate)
		if err != nil {
			return capRate
		}
		return r
	}
	// Newton-accelerated per-station solvers on the fleet-wide marginal
	// cost; rateFor above is the pure-bisection oracle they fall back to
	// (and the only path under opts.PureBisection).
	solvers := make([]stationSolver, g.N())
	for i, s := range g.Servers {
		solvers[i] = newStationSolver(s, g.TaskSize, bigLambda, opts.Discipline, eps, 1)
		solvers[i].totalObj = true
	}
	ratesAt := func(phi float64) ([]float64, float64) {
		rates := make([]float64, g.N())
		var sum numeric.KahanSum
		for i := range g.Servers {
			if opts.PureBisection {
				rates[i] = rateFor(g.Servers[i], phi)
			} else {
				rates[i] = solvers[i].findRate(phi)
			}
			sum.Add(rates[i])
		}
		return rates, sum.Value()
	}
	total := func(phi float64) float64 {
		_, f := ratesAt(phi)
		return f
	}

	phiHi, err := numeric.ExpandUpper(func(phi float64) bool { return total(phi) >= lambda }, 1e-12, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: failed to bracket φ: %w", err)
	}
	lb, ub := 0.0, phiHi
	for i := 0; ub-lb > eps*phiHi && i < numeric.MaxIterations; i++ {
		mid := lb + (ub-lb)/2
		if mid == lb || mid == ub { //bladelint:allow floateq -- bisection fixed point: the midpoint collided with a bound
			break
		}
		if total(mid) >= lambda {
			ub = mid
		} else {
			lb = mid
		}
	}
	phi := lb + (ub-lb)/2
	rates, f := ratesAt(phi)
	ratesLo, fLo := ratesAt(lb)
	ratesHi, fHi := ratesAt(ub)
	if fHi > fLo && fLo <= lambda && lambda <= fHi {
		t := (lambda - fLo) / (fHi - fLo)
		var sum numeric.KahanSum
		for i := range rates {
			rates[i] = ratesLo[i] + t*(ratesHi[i]-ratesLo[i])
			sum.Add(rates[i])
		}
		f = sum.Value()
	}
	if f > 0 {
		scale := lambda / f
		for i := range rates {
			rates[i] *= scale
		}
		if err := g.Feasible(rates); err != nil {
			for i := range rates {
				rates[i] /= scale
			}
		}
	}

	res := &TotalResult{Rates: rates, Phi: phi, Utilizations: g.Utilizations(rates)}
	var all, gen, spe numeric.KahanSum
	var speRate numeric.KahanSum
	for i, s := range g.Servers {
		xbar := s.ServiceMean(g.TaskSize)
		rho := res.Utilizations[i]
		rhoS := s.SpecialUtilization(g.TaskSize)
		tg := queueing.GenericResponseTime(opts.Discipline, s.Size, rho, rhoS, xbar)
		ts := specialResponse(opts.Discipline, s.Size, rho, rhoS, xbar)
		all.Add(rates[i]*tg + s.SpecialRate*ts)
		gen.Add(rates[i] * tg)
		spe.Add(s.SpecialRate * ts)
		speRate.Add(s.SpecialRate)
	}
	res.AvgAllTasks = all.Value() / bigLambda
	res.AvgGeneric = gen.Value() / lambda
	if speRate.Value() > 0 {
		res.AvgSpecial = spe.Value() / speRate.Value()
	}
	return res, nil
}
