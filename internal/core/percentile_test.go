package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

func optimalRates(t *testing.T, g *model.Group, frac float64) []float64 {
	t.Helper()
	res, err := Optimize(g, frac*g.MaxGenericRate(), Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	return res.Rates
}

func TestGroupGenericCDFValidation(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := GroupGenericCDF(g, []float64{1}, 1); err == nil {
		t.Error("wrong-length rates should fail")
	}
	if _, err := GroupGenericCDF(g, make([]float64, 7), 1); err == nil {
		t.Error("zero rates should fail")
	}
	if _, err := GroupGenericQuantile(g, make([]float64, 7), 0.5); err == nil {
		t.Error("zero rates should fail for quantile")
	}
	rates := optimalRates(t, g, 0.5)
	for _, bad := range []float64{0, 1, -1, math.NaN()} {
		if _, err := GroupGenericQuantile(g, rates, bad); err == nil {
			t.Errorf("p=%g should fail", bad)
		}
	}
}

func TestGroupGenericCDFMonotoneTo1(t *testing.T) {
	g := model.LiExample1Group()
	rates := optimalRates(t, g, 0.5)
	prev := 0.0
	for _, tt := range []float64{0.2, 0.5, 1, 2, 4, 8, 32} {
		v, err := GroupGenericCDF(g, rates, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-14 || v < 0 || v > 1 {
			t.Fatalf("CDF not monotone in [0,1] at t=%g: %g after %g", tt, v, prev)
		}
		prev = v
	}
	if prev < 0.9999 {
		t.Fatalf("CDF at t=32 only %g", prev)
	}
}

func TestGroupGenericMeanFromTailIntegral(t *testing.T) {
	// ∫(1−CDF) must equal the optimizer's T′ for the same allocation.
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	res, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	var integral numeric.KahanSum
	for tt := 0.0; tt < 120; tt += dt {
		a, err := GroupGenericCDF(g, res.Rates, tt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GroupGenericCDF(g, res.Rates, tt+dt)
		if err != nil {
			t.Fatal(err)
		}
		integral.Add(((1 - a) + (1 - b)) / 2 * dt)
	}
	if !numeric.WithinTol(integral.Value(), res.AvgResponseTime, 2e-3, 2e-3) {
		t.Fatalf("∫tail = %.6f vs T′ = %.6f", integral.Value(), res.AvgResponseTime)
	}
}

func TestGroupGenericQuantileRoundTrip(t *testing.T) {
	g := model.LiExample1Group()
	rates := optimalRates(t, g, 0.6)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q, err := GroupGenericQuantile(g, rates, p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := GroupGenericCDF(g, rates, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("p=%g: CDF(q)=%.12g", p, back)
		}
	}
}

func TestGroupGenericQuantileSingleServerMatchesStation(t *testing.T) {
	// One server: the group quantile is the station quantile.
	g := &model.Group{Servers: []model.Server{{Size: 3, Speed: 1.2, SpecialRate: 1.0}}, TaskSize: 1}
	rates := []float64{1.5}
	q, err := GroupGenericQuantile(g, rates, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rho := g.Servers[0].Utilization(1.5, 1)
	want, err := queueing.ResponseTimeQuantile(3, rho, g.Servers[0].ServiceMean(1), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.WithinTol(q, want, 1e-9, 1e-9) {
		t.Fatalf("group quantile %.12g vs station %.12g", q, want)
	}
}
