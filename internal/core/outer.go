package core

import (
	"math"

	"repro/internal/numeric"
)

// phiEvaluator is the hook the outer Fig. 3 search drives: eval
// recomputes the rate vector at φ into the evaluator's own scratch and
// returns its total F(φ); copyRates copies that scratch into dst
// (growing it as needed) so the driver can cache the most recent
// evaluation at each end of the bisection bracket. The vector may be
// station-indexed (the dense path) or class-indexed (the sparse path) —
// the driver never looks inside it.
type phiEvaluator struct {
	eval      func(phi float64) float64
	copyRates func(dst []float64) []float64
}

// phiSolution is the outcome of the outer search: the located
// multiplier with its final bracket, the rate vector and total at Phi,
// and the cached evaluations at both bracket ends for the segment
// repair. RatesLo/FLo are the last evaluation at Lb (F < λ′ there by
// construction) and RatesHi/FHi the last at Ub (F ≥ λ′); both are
// reused from the bisection itself instead of being recomputed from
// scratch after it, which previously cost two extra full-fleet solves
// per Optimize call.
type phiSolution struct {
	Phi, Lb, Ub float64
	F, FLo, FHi float64
	Rates       []float64
	RatesLo     []float64
	RatesHi     []float64
}

// searchPhi implements the outer loop of the paper's Fig. 3
// ("Calculate T′"): grow φ by doubling from start until F(φ) ≥ λ′
// (lines 1–10), then bisect the bracket [0, φ_hi] to relative width eps
// (lines 11–27). F is non-decreasing in φ because each λ′_i(φ) is.
//
// needEndpoints controls whether the driver guarantees RatesLo/FLo are
// populated (the segment repair needs both ends; a NoRescale caller
// needs neither). RatesHi is always populated — the bracketing phase's
// final evaluation is at the upper end. When the bisection never
// probes below λ′ (so the lower end is still φ = 0), the driver
// evaluates it once; F(0) = 0 because every idle marginal cost is
// positive.
func searchPhi(ev phiEvaluator, lambda, start, eps float64, needEndpoints bool) (phiSolution, error) {
	var sol phiSolution
	var lastF float64
	eval := func(phi float64) float64 {
		lastF = ev.eval(phi)
		return lastF
	}
	phiHi, err := numeric.ExpandUpper(func(phi float64) bool { return eval(phi) >= lambda }, start, 0, 0)
	if err != nil {
		return sol, err
	}
	// ExpandUpper's last evaluation is at phiHi (the cap is unused), so
	// the scratch already holds the upper endpoint.
	sol.RatesHi = ev.copyRates(sol.RatesHi)
	sol.FHi = lastF
	hasLo := false
	lb, ub := 0.0, phiHi
	for i := 0; ub-lb > eps*phiHi && i < numeric.MaxIterations; i++ {
		mid := lb + (ub-lb)/2
		if mid == lb || mid == ub { //bladelint:allow floateq -- bisection fixed point: the midpoint collided with a bound, no tighter float exists
			break
		}
		if eval(mid) >= lambda {
			ub = mid
			sol.RatesHi = ev.copyRates(sol.RatesHi)
			sol.FHi = lastF
		} else {
			lb = mid
			sol.RatesLo = ev.copyRates(sol.RatesLo)
			sol.FLo = lastF
			hasLo = true
		}
	}
	sol.Phi = lb + (ub-lb)/2
	eval(sol.Phi)
	sol.Rates = ev.copyRates(sol.Rates)
	sol.F = lastF
	if needEndpoints && !hasLo {
		eval(lb)
		sol.RatesLo = ev.copyRates(sol.RatesLo)
		sol.FLo = lastF
	}
	sol.Lb, sol.Ub = lb, ub
	return sol, nil
}

// outerStart returns the initial φ of the bracketing phase: the paper's
// cold start, or a fraction of a previous solve's multiplier when the
// caller warm-starts (the failover fast path).
func outerStart(opts Options) float64 {
	if opts.WarmPhi > 0 && !isInfNaN(opts.WarmPhi) {
		return opts.WarmPhi / 16
	}
	return 1e-12
}

func isInfNaN(v float64) bool { return math.IsInf(v, 0) || math.IsNaN(v) }
