// Package core implements the paper's primary contribution: the optimal
// distribution of a generic task stream over heterogeneous blade servers
// preloaded with special tasks, minimizing the average response time of
// generic tasks (Li, J. Grid Computing 2013, §3–§4).
//
// The entry point is Optimize, which implements the algorithm of the
// paper's Fig. 3 ("Calculate T′"): an outer bisection on the Lagrange
// multiplier φ wrapped around the per-server inner bisection of Fig. 2
// ("Find_λ′_i"), exposed here as FindRate. Both disciplines (shared
// FCFS and special tasks with non-preemptive priority) are supported
// through queueing.Discipline.
//
// For the single-blade case m_1 = … = m_n = 1 the paper gives closed
// forms (Theorems 1 and 3), implemented in closedform.go; they serve as
// independent oracles for the numeric solver.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// Options configures the optimizer.
type Options struct {
	// Discipline selects FCFS (special tasks without priority, §3) or
	// Priority (special tasks with higher priority, §4).
	Discipline queueing.Discipline
	// Epsilon is the bisection tolerance ε of the paper's algorithms,
	// applied to both the inner search over λ′_i and the outer search
	// over φ. Non-positive means DefaultEpsilon.
	Epsilon float64
	// NoRescale disables the final conservation projection that scales
	// the rates so they sum to exactly λ′ (the paper's algorithm leaves
	// a residual of order ε). Mainly for tests that exercise the raw
	// algorithm.
	NoRescale bool
	// MaxUtilization, when in (0, 1), caps every server's total
	// utilization ρ_i at that value — an operational guard band the
	// paper does not model (its only constraint is ρ_i < 1). Zero
	// means uncapped. The optimum under a binding cap pins capped
	// servers at the bound and equalizes marginal costs among the
	// rest, which is exactly what the clamped inner search produces.
	MaxUtilization float64
	// Parallel runs the per-server inner searches concurrently (one
	// goroutine per server, bounded by GOMAXPROCS). The inner solves
	// at a given φ are independent, so results are bit-identical to
	// the sequential path; worthwhile from a few hundred servers up
	// (see BenchmarkOptimizeN512Parallel).
	Parallel bool
	// WarmPhi, when positive, warm-starts the outer bracketing of the
	// Lagrange multiplier from a previous solve's Phi — the failover
	// fast path: after a failure or recovery the optimal φ moves by a
	// bounded factor, so doubling from WarmPhi/16 brackets it in a
	// handful of F(φ) evaluations instead of growing from 1e-12. Zero
	// reproduces the paper's cold start exactly.
	WarmPhi float64
	// PureBisection disables the Newton-accelerated inner solver and
	// runs the paper's literal Fig. 2 bisection (FindRateLimited) for
	// every inner solve. Slower by several ×; it is the oracle path the
	// Newton solver is verified against (TestNewtonMatchesBisection) and
	// the faithful transcription for paper-fidelity ablations.
	PureBisection bool
	// Sparse enables the fleet-scale solve path: stations with an
	// identical (size, speed, special-rate) signature are clustered
	// into classes and each class's inner problem is solved once per φ
	// probe, with classes whose idle marginal cost MC(0) is at least φ
	// pruned without any kernel evaluation (their optimal rate is
	// exactly zero — see DESIGN §14). The result is bit-identical to
	// the dense path, pinned by TestSparseMatchesDenseBitIdentical.
	Sparse bool
	// CompactResult, meaningful only with Sparse, skips materializing
	// the n-wide dense Rates/Utilizations/ResponseTimes slices: the
	// allocation is returned only through Result.Sparse, and
	// AvgResponseTime is computed per class. The fleet-scale fast path
	// for callers that only need T′ or the compact allocation.
	CompactResult bool
}

// DefaultEpsilon is the default bisection tolerance. It reproduces the
// paper's seven published decimal digits.
const DefaultEpsilon = 1e-12

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 {
		return DefaultEpsilon
	}
	return o.Epsilon
}

// Result is an optimal (or candidate) load distribution.
type Result struct {
	// Rates are the generic arrival rates λ′_1..λ′_n.
	Rates []float64
	// Phi is the Lagrange multiplier at the optimum: the common
	// marginal cost ∂T′/∂λ′_i of every server carrying generic load.
	Phi float64
	// AvgResponseTime is the minimized T′ = Σ (λ′_i/λ′) T′_i.
	AvgResponseTime float64
	// Utilizations are ρ_1..ρ_n under the optimal rates.
	Utilizations []float64
	// ResponseTimes are the per-server generic response times T′_i.
	ResponseTimes []float64
	// Discipline echoes the discipline optimized for.
	Discipline queueing.Discipline
	// TotalRate echoes λ′.
	TotalRate float64
	// Sparse is the compact (station, rate) form of the allocation,
	// populated by the sparse solve path (Options.Sparse); nil on the
	// dense path. With Options.CompactResult it is the only allocation
	// representation returned.
	Sparse *SparseRates
	// Classes is the number of distinct (size, speed, special-rate)
	// classes the sparse path clustered the fleet into; 0 on the dense
	// path.
	Classes int
}

// Optimize solves the paper's optimal load distribution problem: given
// the group g and the total generic arrival rate lambda, it returns the
// rates λ′_i minimizing the average generic response time T′ subject to
// Σλ′_i = λ′ and ρ_i < 1.
//
// It is a faithful implementation of the algorithm in Fig. 3 of the
// paper: the Lagrange multiplier φ is first grown by doubling until the
// induced total rate F(φ) reaches λ′ (lines 1–10), then located by
// bisection (lines 11–27), after which the per-server rates and T′ are
// evaluated (lines 28–37).
func Optimize(g *model.Group, lambda float64, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !opts.Discipline.Valid() {
		return nil, fmt.Errorf("core: unknown discipline %d", int(opts.Discipline))
	}
	if math.IsNaN(lambda) || lambda <= 0 {
		return nil, fmt.Errorf("core: total generic rate λ′=%g must be positive", lambda)
	}
	if max := g.MaxGenericRate(); lambda >= max {
		return nil, fmt.Errorf("core: λ′=%g at or beyond saturation λ′_max=%g", lambda, max)
	}
	rhoCap := 1.0
	if opts.MaxUtilization != 0 { //bladelint:allow floateq -- zero means the option was not set, an exact default
		if opts.MaxUtilization <= 0 || opts.MaxUtilization >= 1 {
			return nil, fmt.Errorf("core: MaxUtilization %g must be in (0, 1)", opts.MaxUtilization)
		}
		rhoCap = opts.MaxUtilization
		var capTotal numeric.KahanSum
		for _, s := range g.Servers {
			if r := rhoCap*s.Capacity(g.TaskSize) - s.SpecialRate; r > 0 {
				capTotal.Add(r)
			}
		}
		// Require real headroom: the bisection needs the capped system
		// to be able to absorb strictly more than λ′.
		if capTotal.Value() <= lambda*(1+1e-9) {
			return nil, fmt.Errorf("core: λ′=%g leaves no headroom under capped capacity %g at ρ ≤ %g",
				lambda, capTotal.Value(), rhoCap)
		}
	}
	eps := opts.epsilon()

	if opts.Sparse {
		return optimizeSparse(g, lambda, opts, eps, rhoCap)
	}

	// The per-station solvers cache kernels, service-time constants and
	// saturation bounds once for the whole φ search; each holds its
	// previous rate as a Newton warm start for the next φ. The paper's
	// pure bisection stays available behind opts.PureBisection.
	solvers := make([]stationSolver, g.N())
	for i, s := range g.Servers {
		solvers[i] = newStationSolver(s, g.TaskSize, lambda, opts.Discipline, eps, rhoCap)
	}
	solveOne := func(i int, phi float64) float64 {
		if opts.PureBisection {
			return FindRateLimited(g.Servers[i], g.TaskSize, lambda, phi, opts.Discipline, eps, rhoCap)
		}
		return solvers[i].findRate(phi)
	}

	// The scratch rate vector is reused across every φ probe; the outer
	// driver copies it only when it caches a bracket endpoint.
	scratch := make([]float64, g.N())
	ratesAt := func(phi float64) float64 {
		workers := runtime.GOMAXPROCS(0)
		if opts.Parallel && g.N() > 1 && workers > 1 {
			// Per-server solves are independent; fan out over
			// contiguous chunks, then sum sequentially so the result
			// is bit-identical to the sequential path. (Each solver's
			// warm-start state is owned by exactly one chunk, and its
			// evolution depends only on the per-server φ sequence, so
			// parallel and sequential runs stay bit-identical too.)
			if workers > g.N() {
				workers = g.N()
			}
			var wg sync.WaitGroup
			chunk := (g.N() + workers - 1) / workers
			for lo := 0; lo < g.N(); lo += chunk {
				hi := lo + chunk
				if hi > g.N() {
					hi = g.N()
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						scratch[i] = solveOne(i, phi)
					}
				}(lo, hi)
			}
			wg.Wait()
		} else {
			for i := range g.Servers {
				scratch[i] = solveOne(i, phi)
			}
		}
		var sum numeric.KahanSum
		for _, r := range scratch {
			sum.Add(r)
		}
		return sum.Value()
	}

	// Run the outer Fig. 3 search (doubling then bisection over φ). The
	// driver caches the last evaluation at each end of the bracket, so
	// the segment repair below no longer re-solves the whole fleet at
	// lb and ub. A warm start from a previous solve shortcuts the
	// doubling; F(tiny φ) = 0 because every idle marginal cost
	// T′_i(0)/λ′ is positive.
	sol, err := searchPhi(phiEvaluator{
		eval: ratesAt,
		copyRates: func(dst []float64) []float64 {
			if dst == nil {
				dst = make([]float64, len(scratch))
			}
			copy(dst, scratch)
			return dst
		},
	}, lambda, outerStart(opts), eps, !opts.NoRescale)
	if err != nil {
		return nil, fmt.Errorf("core: failed to bracket φ: %w", err)
	}
	phi := sol.Phi

	// F can be (numerically) discontinuous at the optimal φ: a large,
	// lightly loaded server has an almost *flat* marginal cost
	// ≈ x̄_i/λ′ over a wide rate range (queueing is negligible until
	// its utilization grows), so as φ crosses that plateau the induced
	// rate — and F — jumps. The optimizing set at the jump is the whole
	// segment between the two sides, every point of which satisfies the
	// KKT conditions; pick the point on the segment meeting the
	// conservation constraint exactly.
	rates, f := sol.Rates, sol.F
	if !opts.NoRescale {
		if sol.FHi > sol.FLo && sol.FLo <= lambda && lambda <= sol.FHi {
			t := (lambda - sol.FLo) / (sol.FHi - sol.FLo)
			var sum numeric.KahanSum
			for i := range rates {
				rates[i] = sol.RatesLo[i] + t*(sol.RatesHi[i]-sol.RatesLo[i])
				sum.Add(rates[i])
			}
			f = sum.Value()
		}
		// Remove the remaining float dust with an exact projection;
		// the factor is 1 ± O(ε) and cannot de-stabilize a server.
		if f > 0 {
			scale := lambda / f
			for i := range rates {
				rates[i] *= scale
			}
			if err := g.Feasible(rates); err != nil {
				for i := range rates {
					rates[i] /= scale
				}
			}
		}
	}

	res := &Result{
		Rates:           rates,
		Phi:             phi,
		AvgResponseTime: g.AverageResponseTime(opts.Discipline, rates),
		Utilizations:    g.Utilizations(rates),
		ResponseTimes:   g.ResponseTimes(opts.Discipline, rates),
		Discipline:      opts.Discipline,
		TotalRate:       lambda,
	}
	return res, nil
}

// FindRate implements the paper's Fig. 2 algorithm Find_λ′_i: the
// generic rate λ′_i at which server s's marginal cost
// (1/λ′)(T′_i + ρ′_i ∂T′_i/∂ρ_i) reaches phi, searched by bisection
// over [0, (1−ε)(m_i/x̄_i − λ″_i)). If even an idle server's marginal
// cost exceeds phi, the server receives no generic load and 0 is
// returned; if the marginal cost never reaches phi below the stability
// cap, the capped rate is returned.
func FindRate(s model.Server, rbar, lambdaTotal, phi float64, d queueing.Discipline, eps float64) float64 {
	return FindRateLimited(s, rbar, lambdaTotal, phi, d, eps, 1)
}

// FindRateLimited is FindRate with an additional utilization ceiling:
// the returned rate never drives the server's total utilization above
// rhoCap (pass 1 for the paper's pure stability constraint).
func FindRateLimited(s model.Server, rbar, lambdaTotal, phi float64, d queueing.Discipline, eps, rhoCap float64) float64 {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	maxRate := s.MaxGenericRate(rbar)
	if rhoCap > 0 && rhoCap < 1 {
		if capped := rhoCap*s.Capacity(rbar) - s.SpecialRate; capped < maxRate {
			maxRate = capped
		}
	}
	if maxRate <= 0 {
		return 0 // special tasks (or the cap) leave no headroom
	}
	pred := func(l float64) bool {
		return s.MarginalCost(d, l, lambdaTotal, rbar) >= phi
	}
	if pred(0) {
		return 0
	}
	capRate := (1 - eps) * maxRate
	if !pred(capRate) {
		// φ exceeds the marginal cost everywhere below the stability
		// bound (only happens while the outer loop overshoots φ).
		return capRate
	}
	ub, err := numeric.ExpandUpper(pred, maxRate/1024, maxRate, 1-eps)
	if err != nil {
		return capRate
	}
	rate, err := numeric.BisectPredicate(pred, 0, ub, eps*maxRate)
	if err != nil {
		return capRate
	}
	return rate
}

// KKTResidual measures how far an allocation is from the optimality
// conditions: for servers with λ′_i > 0 the marginal cost must equal
// the common multiplier (taken as the rate-weighted mean marginal cost
// of loaded servers), and for servers with λ′_i = 0 the marginal cost
// at zero must be at least that multiplier. The returned residual is
// the largest violation, relative to the multiplier. Small residual ⇒
// the allocation satisfies the paper's eq. (1).
func KKTResidual(g *model.Group, d queueing.Discipline, rates []float64) (float64, error) {
	if err := g.Feasible(rates); err != nil {
		return 0, err
	}
	var lambda numeric.KahanSum
	for _, r := range rates {
		lambda.Add(r)
	}
	l := lambda.Value()
	if l == 0 { //bladelint:allow floateq -- exact zero allocation is the error sentinel, never a computed value
		return 0, fmt.Errorf("core: KKT residual undefined for zero allocation")
	}
	// Rate-weighted mean marginal cost of loaded servers ≈ φ.
	var wsum, w numeric.KahanSum
	mcs := make([]float64, len(rates))
	for i, s := range g.Servers {
		mcs[i] = s.MarginalCost(d, rates[i], l, g.TaskSize)
		if rates[i] > 0 {
			wsum.Add(rates[i] * mcs[i])
			w.Add(rates[i])
		}
	}
	phi := wsum.Value() / w.Value()
	var worst float64
	for i, r := range rates {
		var viol float64
		if r > 0 {
			viol = math.Abs(mcs[i]-phi) / phi
		} else if mcs[i] < phi {
			viol = (phi - mcs[i]) / phi
		}
		if viol > worst {
			worst = viol
		}
	}
	return worst, nil
}
