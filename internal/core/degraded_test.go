package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
)

// TestDegradedEmptyFailureSetReproducesTables is the guard rail for the
// failover refactor: with every server up and no shedding, the degraded
// path must reproduce the paper's published Table 1 and Table 2 digits
// exactly — the same pinned 1e-6 reproduction the plain optimizer is
// held to.
func TestDegradedEmptyFailureSetReproducesTables(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	for _, tc := range []struct {
		name  string
		d     queueing.Discipline
		table []struct{ rate, rho float64 }
		wantT float64
	}{
		{"fcfs/table1", queueing.FCFS, table1, table1T},
		{"priority/table2", queueing.Priority, table2, table2T},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, up := range [][]bool{nil, {true, true, true, true, true, true, true}} {
				res, err := OptimizeDegraded(g, lambda, up, Options{Discipline: tc.d})
				if err != nil {
					t.Fatal(err)
				}
				if res.Shed != 0 {
					t.Errorf("shed = %g, want 0", res.Shed)
				}
				if res.Survivors != 7 {
					t.Errorf("survivors = %d, want 7", res.Survivors)
				}
				if math.Abs(res.AvgResponseTime-tc.wantT) > digitsT {
					t.Errorf("T′ = %.7f, want %.7f", res.AvgResponseTime, tc.wantT)
				}
				for i, want := range tc.table {
					if math.Abs(res.Rates[i]-want.rate) > digitsT {
						t.Errorf("λ′_%d = %.7f, want %.7f", i+1, res.Rates[i], want.rate)
					}
					if math.Abs(res.Utilizations[i]-want.rho) > digitsT {
						t.Errorf("ρ_%d = %.7f, want %.7f", i+1, res.Utilizations[i], want.rho)
					}
				}
			}
		})
	}
}

// TestDegradedMatchesOptimizeBitwise pins the stronger property: the
// degraded path with all servers up delegates to the very same solve.
func TestDegradedMatchesOptimizeBitwise(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	want, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeDegraded(g, lambda, nil, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi != want.Phi || got.AvgResponseTime != want.AvgResponseTime {
		t.Errorf("degraded φ=%g T′=%g differs from plain φ=%g T′=%g",
			got.Phi, got.AvgResponseTime, want.Phi, want.AvgResponseTime)
	}
	for i := range want.Rates {
		if got.Rates[i] != want.Rates[i] {
			t.Errorf("rate %d: %g != %g", i+1, got.Rates[i], want.Rates[i])
		}
	}
}

func TestDegradedSubsetSolve(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	up := []bool{true, true, true, false, true, true, false}
	res, err := OptimizeDegraded(g, lambda, up, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 5 {
		t.Fatalf("survivors = %d, want 5", res.Survivors)
	}
	if res.Rates[3] != 0 || res.Rates[6] != 0 {
		t.Errorf("down servers carry load: λ′_4=%g λ′_7=%g", res.Rates[3], res.Rates[6])
	}
	var sum float64
	for _, r := range res.Rates {
		sum += r
	}
	if math.Abs(sum-res.Admitted) > 1e-9 {
		t.Errorf("Σλ′_i = %.12g, want admitted %.12g", sum, res.Admitted)
	}
	// λ′ = 23.52, surviving capacity (1−0.3)·Σ m_i s_i for the five
	// survivors ≈ 33.04 > λ′, so nothing is shed.
	if res.Shed != 0 {
		t.Errorf("shed = %g, want 0", res.Shed)
	}
	// The survivors-only optimum must satisfy the KKT conditions on the
	// surviving subgroup.
	subServers := []model.Server{}
	subRates := []float64{}
	for i, u := range up {
		if u {
			subServers = append(subServers, g.Servers[i])
			subRates = append(subRates, res.Rates[i])
		}
	}
	sub := &model.Group{Servers: subServers, TaskSize: g.TaskSize}
	resid, err := KKTResidual(sub, queueing.FCFS, subRates)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-6 {
		t.Errorf("KKT residual %g on surviving subgroup", resid)
	}
	// And it must be strictly worse than the healthy optimum.
	healthy, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgResponseTime <= healthy.AvgResponseTime {
		t.Errorf("degraded T′=%g not worse than healthy T′=%g", res.AvgResponseTime, healthy.AvgResponseTime)
	}
}

func TestDegradedAdmissionControlSheds(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.9 * g.MaxGenericRate() // feasible healthy, infeasible on 2 survivors
	up := []bool{false, false, false, false, false, true, true}
	// Plain Optimize on the subset would fail: capacity of survivors is
	// far below λ′. The degraded path sheds instead.
	res, err := OptimizeDegraded(g, lambda, up, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed <= 0 {
		t.Fatalf("expected shedding, got shed = %g", res.Shed)
	}
	if math.Abs(res.Admitted+res.Shed-lambda) > 1e-9 {
		t.Errorf("admitted %g + shed %g ≠ λ′ %g", res.Admitted, res.Shed, lambda)
	}
	// Minimality: admitted sits at the margin below surviving capacity.
	subCap := g.Servers[5].MaxGenericRate(g.TaskSize) + g.Servers[6].MaxGenericRate(g.TaskSize)
	want := (1 - DefaultAdmissionMargin) * subCap
	if math.Abs(res.Admitted-want) > 1e-9 {
		t.Errorf("admitted = %.9g, want (1−margin)·cap = %.9g", res.Admitted, want)
	}
	if !math.IsInf(res.AvgResponseTime, 0) && res.AvgResponseTime <= 0 {
		t.Errorf("T′ = %g not positive", res.AvgResponseTime)
	}
}

func TestDegradedErrors(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := OptimizeDegraded(g, 1, []bool{true}, Options{Discipline: queueing.FCFS}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := OptimizeDegraded(g, 1, make([]bool, 7), Options{Discipline: queueing.FCFS}); err == nil {
		t.Error("no survivors should fail")
	}
	if _, err := OptimizeDegraded(g, -1, nil, Options{Discipline: queueing.FCFS}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := OptimizeDegraded(g, math.NaN(), nil, Options{Discipline: queueing.FCFS}); err == nil {
		t.Error("NaN rate should fail")
	}
}

// TestWarmStartAgreement checks the failover fast path: warm-starting
// the φ bracket from a neighbouring solve must land on the same optimum
// (to solver tolerance) as a cold start.
func TestWarmStartAgreement(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	healthy, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	up := []bool{true, true, true, true, true, true, false}
	cold, err := OptimizeDegraded(g, lambda, up, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := OptimizeDegraded(g, lambda, up, Options{Discipline: queueing.FCFS, WarmPhi: healthy.Phi})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.AvgResponseTime-cold.AvgResponseTime) > 1e-9 {
		t.Errorf("warm T′ = %.12g, cold T′ = %.12g", warm.AvgResponseTime, cold.AvgResponseTime)
	}
	for i := range cold.Rates {
		if math.Abs(warm.Rates[i]-cold.Rates[i]) > 1e-6 {
			t.Errorf("rate %d: warm %.9g vs cold %.9g", i+1, warm.Rates[i], cold.Rates[i])
		}
	}
	// An absurd warm start must still converge (correctness does not
	// depend on warm quality, only speed does).
	wild, err := OptimizeDegraded(g, lambda, up, Options{Discipline: queueing.FCFS, WarmPhi: 1e6 * healthy.Phi})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wild.AvgResponseTime-cold.AvgResponseTime) > 1e-9 {
		t.Errorf("wild warm T′ = %.12g, cold T′ = %.12g", wild.AvgResponseTime, cold.AvgResponseTime)
	}
}
