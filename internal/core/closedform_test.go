package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// singleBladeGroup builds an n-server group with m_i = 1, the premise
// of Theorems 1 and 3.
func singleBladeGroup() *model.Group {
	return &model.Group{
		Servers: []model.Server{
			{Size: 1, Speed: 1.6, SpecialRate: 0.48}, // ρ″ = 0.3
			{Size: 1, Speed: 1.3, SpecialRate: 0.26}, // ρ″ = 0.2
			{Size: 1, Speed: 1.0, SpecialRate: 0.10}, // ρ″ = 0.1
			{Size: 1, Speed: 0.7, SpecialRate: 0.07}, // ρ″ = 0.1
		},
		TaskSize: 1,
	}
}

func TestClosedFormFCFSMatchesBisection(t *testing.T) {
	g := singleBladeGroup()
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		lambda := frac * g.MaxGenericRate()
		cf, err := ClosedFormFCFS(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		num, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.WithinTol(cf.AvgResponseTime, num.AvgResponseTime, 1e-8, 1e-8) {
			t.Errorf("frac=%g: closed-form T′=%.12g vs numeric %.12g",
				frac, cf.AvgResponseTime, num.AvgResponseTime)
		}
		for i := range cf.Rates {
			if !numeric.WithinTol(cf.Rates[i], num.Rates[i], 1e-6, 1e-6) {
				t.Errorf("frac=%g server %d: closed-form λ′=%.10g vs numeric %.10g",
					frac, i+1, cf.Rates[i], num.Rates[i])
			}
		}
	}
}

func TestClosedFormPriorityMatchesBisection(t *testing.T) {
	g := singleBladeGroup()
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		lambda := frac * g.MaxGenericRate()
		cf, err := ClosedFormPriority(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		num, err := Optimize(g, lambda, Options{Discipline: queueing.Priority})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.WithinTol(cf.AvgResponseTime, num.AvgResponseTime, 1e-8, 1e-8) {
			t.Errorf("frac=%g: closed-form T′=%.12g vs numeric %.12g",
				frac, cf.AvgResponseTime, num.AvgResponseTime)
		}
		for i := range cf.Rates {
			if !numeric.WithinTol(cf.Rates[i], num.Rates[i], 1e-6, 1e-6) {
				t.Errorf("frac=%g server %d: closed-form λ′=%.10g vs numeric %.10g",
					frac, i+1, cf.Rates[i], num.Rates[i])
			}
		}
	}
}

func TestClosedFormTheorem1PhiFormula(t *testing.T) {
	// Verify the φ returned matches the paper's explicit expression
	// when all servers are active.
	g := singleBladeGroup()
	lambda := 0.7 * g.MaxGenericRate()
	cf, err := ClosedFormFCFS(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cf.Rates {
		if r <= 0 {
			t.Skip("a server is inactive; Theorem 1 premise not met at this load")
		}
	}
	var sumSqrt, sumCap float64
	for _, s := range g.Servers {
		xbar := s.ServiceMean(1)
		rhoS := s.SpecialUtilization(1)
		sumSqrt += math.Sqrt((1 - rhoS) / xbar)
		sumCap += (1 - rhoS) / xbar
	}
	want := math.Pow(sumSqrt/math.Sqrt(lambda)/(sumCap-lambda), 2)
	if !numeric.WithinTol(cf.Phi, want, 1e-12, 1e-10) {
		t.Fatalf("φ = %.15g, want %.15g", cf.Phi, want)
	}
}

func TestClosedFormMM1ResponseTime(t *testing.T) {
	// With m = 1, T′_i = x̄/(1−ρ) under FCFS; check the result's
	// per-server times use exactly that form.
	g := singleBladeGroup()
	cf, err := ClosedFormFCFS(g, 0.5*g.MaxGenericRate())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range g.Servers {
		if cf.Rates[i] == 0 {
			continue
		}
		rho := s.Utilization(cf.Rates[i], 1)
		want := s.ServiceMean(1) / (1 - rho)
		if !numeric.WithinTol(cf.ResponseTimes[i], want, 1e-10, 1e-10) {
			t.Errorf("server %d: T′=%.12g, want M/M/1 form %.12g", i+1, cf.ResponseTimes[i], want)
		}
	}
}

func TestClosedFormActiveSetDrop(t *testing.T) {
	// One server is far slower; at low λ′ Theorem 1's unclamped rate
	// for it is negative and the active-set loop must drop it.
	g := &model.Group{
		Servers: []model.Server{
			{Size: 1, Speed: 5.0, SpecialRate: 0},
			{Size: 1, Speed: 0.05, SpecialRate: 0},
		},
		TaskSize: 1,
	}
	cf, err := ClosedFormFCFS(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Rates[1] != 0 {
		t.Fatalf("slow server should be inactive, got %v", cf.Rates)
	}
	num, err := Optimize(g, 0.5, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.WithinTol(cf.AvgResponseTime, num.AvgResponseTime, 1e-8, 1e-8) {
		t.Fatalf("closed-form T′=%.12g vs numeric %.12g", cf.AvgResponseTime, num.AvgResponseTime)
	}
}

func TestClosedFormValidation(t *testing.T) {
	multi := model.LiExample1Group() // m_i > 1
	if _, err := ClosedFormFCFS(multi, 1); err == nil {
		t.Error("Theorem 1 on multi-blade group should fail")
	}
	if _, err := ClosedFormPriority(multi, 1); err == nil {
		t.Error("Theorem 3 on multi-blade group should fail")
	}
	g := singleBladeGroup()
	for _, bad := range []float64{0, -1, math.NaN(), g.MaxGenericRate(), g.MaxGenericRate() + 1} {
		if _, err := ClosedFormFCFS(g, bad); err == nil {
			t.Errorf("ClosedFormFCFS(λ′=%g) should fail", bad)
		}
		if _, err := ClosedFormPriority(g, bad); err == nil {
			t.Errorf("ClosedFormPriority(λ′=%g) should fail", bad)
		}
	}
	badGroup := &model.Group{TaskSize: 1}
	if _, err := ClosedFormFCFS(badGroup, 1); err == nil {
		t.Error("invalid group should fail")
	}
	if _, err := ClosedFormPriority(badGroup, 1); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestClosedFormConservation(t *testing.T) {
	g := singleBladeGroup()
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		lambda := frac * g.MaxGenericRate()
		cf, err := ClosedFormFCFS(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(numeric.Sum(cf.Rates)-lambda) > 1e-8 {
			t.Errorf("FCFS frac=%g: Σ=%.12g want %.12g", frac, numeric.Sum(cf.Rates), lambda)
		}
		cp, err := ClosedFormPriority(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(numeric.Sum(cp.Rates)-lambda) > 1e-8 {
			t.Errorf("priority frac=%g: Σ=%.12g want %.12g", frac, numeric.Sum(cp.Rates), lambda)
		}
	}
}

func TestClosedFormPriorityCostsMore(t *testing.T) {
	g := singleBladeGroup()
	lambda := 0.6 * g.MaxGenericRate()
	fc, err := ClosedFormFCFS(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ClosedFormPriority(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if pr.AvgResponseTime <= fc.AvgResponseTime {
		t.Fatalf("priority T′=%g should exceed FCFS T′=%g", pr.AvgResponseTime, fc.AvgResponseTime)
	}
}
