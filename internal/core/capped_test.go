package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

func TestOptimizeWithUtilizationCap(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.4 * g.MaxGenericRate()
	// The uncapped optimum at this load drives mid-size servers above
	// ρ = 0.6; capping there binds while leaving headroom
	// ((0.6 − 0.3)·67.2 = 20.16 > λ′ = 18.82).
	const cap = 0.6
	res, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS, MaxUtilization: cap})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(numeric.Sum(res.Rates)-lambda) > 1e-9 {
		t.Fatalf("conservation broken: Σ = %.9f", numeric.Sum(res.Rates))
	}
	for i, rho := range res.Utilizations {
		if rho > cap+1e-6 {
			t.Errorf("server %d violates cap: ρ = %.7f", i+1, rho)
		}
	}
	// The cap binds, so the constrained optimum must be worse than the
	// unconstrained one.
	free, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgResponseTime < free.AvgResponseTime-1e-12 {
		t.Fatalf("capped T′ %.9f beats uncapped %.9f", res.AvgResponseTime, free.AvgResponseTime)
	}
	anyAtCap := false
	for _, rho := range res.Utilizations {
		if rho > cap-1e-3 {
			anyAtCap = true
		}
	}
	if !anyAtCap {
		t.Fatal("cap of 0.65 should bind for this load")
	}
}

func TestOptimizeWithLooseCapMatchesUncapped(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	capped, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS, MaxUtilization: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(capped.AvgResponseTime-free.AvgResponseTime) > 1e-9 {
		t.Fatalf("loose cap changed the optimum: %.12f vs %.12f",
			capped.AvgResponseTime, free.AvgResponseTime)
	}
}

func TestOptimizeCapValidation(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	for _, bad := range []float64{-0.5, 1.0, 1.5} {
		if _, err := Optimize(g, lambda, Options{MaxUtilization: bad}); err == nil {
			t.Errorf("cap %g should fail", bad)
		}
	}
	// Cap so tight the load cannot fit (ρ″ = 0.3, cap 0.35 leaves 5 %
	// of capacity ≈ 3.36 < 23.52).
	if _, err := Optimize(g, lambda, Options{MaxUtilization: 0.35}); err == nil {
		t.Error("infeasible cap should fail")
	}
}

func TestOptimizeCapKKTOnUncappedServers(t *testing.T) {
	// Servers not pinned at the cap must still equalize marginal cost.
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	const cap = 0.66
	res, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS, MaxUtilization: cap})
	if err != nil {
		t.Fatal(err)
	}
	var mcs []float64
	for i, s := range g.Servers {
		if res.Utilizations[i] < cap-1e-4 && res.Rates[i] > 1e-9 {
			mcs = append(mcs, s.MarginalCost(queueing.FCFS, res.Rates[i], lambda, g.TaskSize))
		}
	}
	if len(mcs) < 2 {
		t.Skip("not enough interior servers to compare")
	}
	for i := 1; i < len(mcs); i++ {
		if !numeric.WithinTol(mcs[i], mcs[0], 1e-6, 1e-5) {
			t.Fatalf("interior marginal costs differ: %v", mcs)
		}
	}
}

func TestFindRateLimitedZeroHeadroom(t *testing.T) {
	s := model.Server{Size: 2, Speed: 1, SpecialRate: 0.8} // ρ″ = 0.4
	// Cap at exactly the special load: no room for generic work.
	if got := FindRateLimited(s, 1, 10, 1e9, queueing.FCFS, 1e-10, 0.4); got != 0 {
		t.Fatalf("rate = %g, want 0", got)
	}
	// rhoCap = 1 delegates to the plain behavior.
	a := FindRate(s, 1, 10, 0.5, queueing.FCFS, 1e-10)
	b := FindRateLimited(s, 1, 10, 0.5, queueing.FCFS, 1e-10, 1)
	if a != b {
		t.Fatalf("FindRate %g vs FindRateLimited(cap=1) %g", a, b)
	}
}
