package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

func evaluateAllTasks(g *model.Group, d queueing.Discipline, rates []float64) float64 {
	var all, lam numeric.KahanSum
	for i, s := range g.Servers {
		xbar := s.ServiceMean(g.TaskSize)
		rho := s.Utilization(rates[i], g.TaskSize)
		rhoS := s.SpecialUtilization(g.TaskSize)
		tg := queueing.GenericResponseTime(d, s.Size, rho, rhoS, xbar)
		ts := specialResponse(d, s.Size, rho, rhoS, xbar)
		all.Add(rates[i]*tg + s.SpecialRate*ts)
		lam.Add(rates[i] + s.SpecialRate)
	}
	return all.Value() / lam.Value()
}

func TestOptimizeTotalValidation(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := OptimizeTotal(g, 0, Options{}); err == nil {
		t.Error("λ′=0 should fail")
	}
	if _, err := OptimizeTotal(g, g.MaxGenericRate(), Options{}); err == nil {
		t.Error("saturating λ′ should fail")
	}
	if _, err := OptimizeTotal(g, 1, Options{Discipline: queueing.Discipline(5)}); err == nil {
		t.Error("bad discipline should fail")
	}
	if _, err := OptimizeTotal(&model.Group{TaskSize: 1}, 1, Options{}); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestOptimizeTotalConservationAndAverages(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := OptimizeTotal(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(numeric.Sum(res.Rates)-lambda) > 1e-8 {
			t.Fatalf("%v: conservation broken", d)
		}
		// The reported all-task average must match an independent
		// evaluation, and decompose consistently.
		indep := evaluateAllTasks(g, d, res.Rates)
		if !numeric.WithinTol(res.AvgAllTasks, indep, 1e-10, 1e-10) {
			t.Fatalf("%v: AvgAllTasks %.12g vs independent %.12g", d, res.AvgAllTasks, indep)
		}
		bigLambda := lambda + g.TotalSpecialRate()
		mix := (lambda*res.AvgGeneric + g.TotalSpecialRate()*res.AvgSpecial) / bigLambda
		if !numeric.WithinTol(res.AvgAllTasks, mix, 1e-10, 1e-10) {
			t.Fatalf("%v: decomposition %.12g vs %.12g", d, mix, res.AvgAllTasks)
		}
	}
}

func TestOptimizeTotalBeatsGenericObjectiveOnAllTasks(t *testing.T) {
	// On the all-task metric, OptimizeTotal must weakly beat the
	// paper's generic-only optimizer — and vice versa on the
	// generic-only metric.
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		tot, err := OptimizeTotal(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := Optimize(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		genOnAll := evaluateAllTasks(g, d, gen.Rates)
		if tot.AvgAllTasks > genOnAll+1e-9 {
			t.Fatalf("%v: total-optimizer %.9g loses on its own metric to %.9g", d, tot.AvgAllTasks, genOnAll)
		}
		if tot.AvgGeneric < gen.AvgResponseTime-1e-9 {
			t.Fatalf("%v: total-optimizer generic %.9g beats the generic optimum %.9g — impossible",
				d, tot.AvgGeneric, gen.AvgResponseTime)
		}
	}
}

func TestOptimizeTotalCoincidesWithoutSpecials(t *testing.T) {
	// With λ″ = 0 the two objectives are identical.
	servers := []model.Server{
		{Size: 3, Speed: 1.5},
		{Size: 6, Speed: 1.0},
		{Size: 9, Speed: 0.7},
	}
	g := &model.Group{Servers: servers, TaskSize: 1}
	lambda := 0.55 * g.MaxGenericRate()
	tot, err := OptimizeTotal(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Optimize(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.WithinTol(tot.AvgAllTasks, gen.AvgResponseTime, 1e-8, 1e-8) {
		t.Fatalf("objectives should coincide: %.12g vs %.12g", tot.AvgAllTasks, gen.AvgResponseTime)
	}
	for i := range tot.Rates {
		if !numeric.WithinTol(tot.Rates[i], gen.Rates[i], 1e-5, 1e-5) {
			t.Fatalf("rate %d: %.9g vs %.9g", i, tot.Rates[i], gen.Rates[i])
		}
	}
	if tot.AvgSpecial != 0 {
		t.Fatalf("no specials: AvgSpecial = %g", tot.AvgSpecial)
	}
}

func TestOptimizeTotalNoProfitableDeviation(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.6 * g.MaxGenericRate()
	res, err := OptimizeTotal(g, lambda, Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	base := res.AvgAllTasks
	const delta = 1e-3
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if i == j || res.Rates[i] < delta {
				continue
			}
			pert := append([]float64(nil), res.Rates...)
			pert[i] -= delta
			pert[j] += delta
			if g.Feasible(pert) != nil {
				continue
			}
			if got := evaluateAllTasks(g, queueing.FCFS, pert); got < base-1e-11 {
				t.Fatalf("moving %g from %d to %d improves all-task T: %.12g < %.12g",
					delta, i+1, j+1, got, base)
			}
		}
	}
}

func TestOptimizeTotalMarginalCostMatchesNumerical(t *testing.T) {
	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()
	bigLambda := lambda + g.TotalSpecialRate()
	rng := rand.New(rand.NewSource(5))
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		for trial := 0; trial < 10; trial++ {
			i := rng.Intn(g.N())
			s := g.Servers[i]
			r := (0.1 + 0.7*rng.Float64()) * s.MaxGenericRate(1)
			analytic := totalMarginalCost(s, d, r, bigLambda, g.TaskSize)
			numerical := numeric.Derivative(func(x float64) float64 {
				xbar := s.ServiceMean(g.TaskSize)
				rho := s.Utilization(x, g.TaskSize)
				rhoS := s.SpecialUtilization(g.TaskSize)
				tg := queueing.GenericResponseTime(d, s.Size, rho, rhoS, xbar)
				ts := specialResponse(d, s.Size, rho, rhoS, xbar)
				return (x*tg + s.SpecialRate*ts) / bigLambda
			}, r)
			if !numeric.WithinTol(analytic, numerical, 1e-6, 1e-5) {
				t.Fatalf("%v server %d λ′=%g: analytic %.10g vs numeric %.10g", d, i+1, r, analytic, numerical)
			}
		}
	}
}
