package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// clusteredFleet builds an n-station fleet whose signatures are drawn
// from a fixed pool of distinct (size, speed, special-rate) classes, so
// the sparse path has real clustering to exploit.
func clusteredFleet(n, pool int) *model.Group {
	servers := make([]model.Server, n)
	for i := range servers {
		k := i % pool
		s := model.Server{Size: 2 + 2*(k%8), Speed: 1.7 - 0.1*float64(k%7)}
		s.SpecialRate = 0.3 * float64(s.Size) * s.Speed
		servers[i] = s
	}
	return &model.Group{Servers: servers, TaskSize: 1.0}
}

// randomFleet builds a heterogeneous fleet with signatures drawn from a
// seeded random pool — mixed sizes, speeds, and special loads, some
// classes repeated many times and some singletons.
func randomFleet(rng *rand.Rand, n int) *model.Group {
	pool := 8 + rng.Intn(40)
	type sig struct {
		size            int
		speed, specFrac float64
	}
	sigs := make([]sig, pool)
	for k := range sigs {
		sigs[k] = sig{
			size:     1 + rng.Intn(16),
			speed:    0.5 + 2.0*rng.Float64(),
			specFrac: 0.6 * rng.Float64(),
		}
	}
	servers := make([]model.Server, n)
	for i := range servers {
		sg := sigs[rng.Intn(pool)]
		s := model.Server{Size: sg.size, Speed: sg.speed}
		s.SpecialRate = sg.specFrac * s.Capacity(1.0)
		servers[i] = s
	}
	return &model.Group{Servers: servers, TaskSize: 1.0}
}

func sameBits(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestSparseMatchesDenseBitIdentical pins the central claim of the
// sparse path: class clustering plus MC(0) pruning is a pure
// re-bracketing of identical arithmetic, so every output — rates, φ,
// response times, utilizations — matches the dense solver bit for bit.
func TestSparseMatchesDenseBitIdentical(t *testing.T) {
	groups := map[string]*model.Group{
		"liExample1": model.LiExample1Group(),
		"n64":        clusteredFleet(64, 12),
		"n512":       clusteredFleet(512, 24),
	}
	for name, g := range groups {
		for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
			for _, cap := range []float64{0, 0.9} {
				t.Run(fmt.Sprintf("%s/%v/cap=%g", name, d, cap), func(t *testing.T) {
					lambda := 0.4 * g.MaxGenericRate()
					opts := Options{Discipline: d, MaxUtilization: cap}
					dense, err := Optimize(g, lambda, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.Sparse = true
					sparse, err := Optimize(g, lambda, opts)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(dense.Phi) != math.Float64bits(sparse.Phi) {
						t.Errorf("φ differs: dense %x sparse %x", math.Float64bits(dense.Phi), math.Float64bits(sparse.Phi))
					}
					if i, ok := sameBits(dense.Rates, sparse.Rates); !ok {
						t.Errorf("rates differ at station %d: dense %x sparse %x",
							i, math.Float64bits(dense.Rates[i]), math.Float64bits(sparse.Rates[i]))
					}
					if math.Float64bits(dense.AvgResponseTime) != math.Float64bits(sparse.AvgResponseTime) {
						t.Errorf("T′ differs: dense %g sparse %g", dense.AvgResponseTime, sparse.AvgResponseTime)
					}
					if i, ok := sameBits(dense.Utilizations, sparse.Utilizations); !ok {
						t.Errorf("utilizations differ at station %d", i)
					}
					if i, ok := sameBits(dense.ResponseTimes, sparse.ResponseTimes); !ok {
						t.Errorf("response times differ at station %d", i)
					}
					if sparse.Sparse == nil {
						t.Fatal("sparse result missing compact allocation")
					}
					if sparse.Classes <= 0 || sparse.Classes > g.N() {
						t.Errorf("implausible class count %d for n=%d", sparse.Classes, g.N())
					}
					// The compact form must agree with the dense vector
					// exactly: same nonzero stations, same bits.
					fromSparse := sparse.Sparse.Dense()
					if i, ok := sameBits(dense.Rates, fromSparse); !ok {
						t.Errorf("compact allocation differs at station %d", i)
					}
				})
			}
		}
	}
}

// TestSparsePureBisection covers the Sparse × PureBisection combination:
// the inner solve goes through FindRateLimited on the class
// representative, which must still match the dense pure-bisection run.
func TestSparsePureBisection(t *testing.T) {
	g := clusteredFleet(64, 12)
	lambda := 0.4 * g.MaxGenericRate()
	dense, err := Optimize(g, lambda, Options{PureBisection: true})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Optimize(g, lambda, Options{PureBisection: true, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := sameBits(dense.Rates, sparse.Rates); !ok {
		t.Errorf("rates differ at station %d", i)
	}
}

// TestSparseParallelMatchesSequential pins determinism of the chunked
// class solve: goroutine count must not leak into the arithmetic.
func TestSparseParallelMatchesSequential(t *testing.T) {
	g := clusteredFleet(512, 24)
	lambda := 0.5 * g.MaxGenericRate()
	seq, err := Optimize(g, lambda, Options{Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Optimize(g, lambda, Options{Sparse: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := sameBits(seq.Rates, par.Rates); !ok {
		t.Errorf("parallel run diverged at station %d", i)
	}
}

// TestSparseCompactResult checks the fleet-scale result form: no dense
// slices at all, a compact allocation that sums to λ′, and a T′ within
// float dust of the dense computation (it is regrouped by class, so
// bit-identity is not promised — only ≤1e-12 relative error).
func TestSparseCompactResult(t *testing.T) {
	g := clusteredFleet(512, 24)
	lambda := 0.4 * g.MaxGenericRate()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		dense, err := Optimize(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		compact, err := Optimize(g, lambda, Options{Discipline: d, Sparse: true, CompactResult: true})
		if err != nil {
			t.Fatal(err)
		}
		if compact.Rates != nil || compact.Utilizations != nil || compact.ResponseTimes != nil {
			t.Error("compact result materialized dense slices")
		}
		if compact.Sparse == nil {
			t.Fatal("compact result missing allocation")
		}
		if got := compact.Sparse.Sum(); math.Abs(got-lambda) > 1e-9*lambda {
			t.Errorf("%v: compact Σλ′_i = %.12g, want %.12g", d, got, lambda)
		}
		if i, ok := sameBits(dense.Rates, compact.Sparse.Dense()); !ok {
			t.Errorf("%v: compact allocation differs from dense at station %d", d, i)
		}
		if rel := math.Abs(compact.AvgResponseTime-dense.AvgResponseTime) / dense.AvgResponseTime; rel > 1e-12 {
			t.Errorf("%v: compact T′=%.17g vs dense %.17g (rel %g)", d, compact.AvgResponseTime, dense.AvgResponseTime, rel)
		}
		var count int
		compact.Sparse.ForEach(func(station int, rate float64) {
			if rate <= 0 {
				t.Errorf("ForEach yielded non-positive rate %g at station %d", rate, station)
			}
			count++
		})
		if count != compact.Sparse.NNZ() {
			t.Errorf("ForEach visited %d stations, NNZ=%d", count, compact.Sparse.NNZ())
		}
	}
}

// TestSparsePruningDropsSlowStations checks the pruning machinery does
// real work: at light load on a fleet with a steep speed gradient, the
// slowest stations must end at exactly zero and stay out of the compact
// allocation.
func TestSparsePruningDropsSlowStations(t *testing.T) {
	servers := make([]model.Server, 128)
	for i := range servers {
		s := model.Server{Size: 4, Speed: 0.2 + 0.05*float64(i%32)}
		s.SpecialRate = 0.2 * s.Capacity(1.0)
		servers[i] = s
	}
	g := &model.Group{Servers: servers, TaskSize: 1.0}
	res, err := Optimize(g, 0.05*g.MaxGenericRate(), Options{Sparse: true, CompactResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparse.NNZ() == 0 || res.Sparse.NNZ() >= g.N() {
		t.Fatalf("expected partial fleet loaded at light load, got NNZ=%d of %d", res.Sparse.NNZ(), g.N())
	}
	if res.Classes != 32 {
		t.Errorf("expected 32 classes, got %d", res.Classes)
	}
}

// TestSparseDegradedRemap checks OptimizeDegraded maps a compact
// survivor allocation back to full-fleet station indices.
func TestSparseDegradedRemap(t *testing.T) {
	g := clusteredFleet(64, 12)
	up := make([]bool, g.N())
	for i := range up {
		up[i] = i%5 != 0
	}
	lambda := 0.3 * g.MaxGenericRate()
	res, err := OptimizeDegraded(g, lambda, up, Options{Sparse: true, CompactResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparse == nil {
		t.Fatal("degraded compact result missing allocation")
	}
	if res.Sparse.N != g.N() {
		t.Fatalf("sparse N=%d, want %d", res.Sparse.N, g.N())
	}
	prev := int32(-1)
	res.Sparse.ForEach(func(station int, rate float64) {
		if !up[station] {
			t.Errorf("down station %d carries rate %g", station, rate)
		}
		if int32(station) <= prev {
			t.Errorf("indices not ascending at station %d", station)
		}
		prev = int32(station)
	})
	if got := res.Sparse.Sum(); math.Abs(got-res.Admitted) > 1e-9*res.Admitted {
		t.Errorf("compact Σλ′_i = %.12g, want admitted %.12g", got, res.Admitted)
	}
}

// TestSparseKKTProperty is the randomized property test: on seeded
// heterogeneous fleets across three sizes, with and without a
// utilization cap, the sparse path's allocation must satisfy the KKT
// conditions to tolerance and match the dense solver bit for bit.
func TestSparseKKTProperty(t *testing.T) {
	sizes := []int{64, 512, 4096}
	if testing.Short() {
		sizes = sizes[:2]
	}
	rng := rand.New(rand.NewSource(20260807))
	for _, n := range sizes {
		for trial := 0; trial < 3; trial++ {
			g := randomFleet(rng, n)
			frac := 0.15 + 0.7*rng.Float64()
			d := queueing.FCFS
			if rng.Intn(2) == 1 {
				d = queueing.Priority
			}
			cap := 0.0
			if rng.Intn(2) == 1 {
				cap = 0.85 + 0.1*rng.Float64()
			}
			name := fmt.Sprintf("n=%d/trial=%d/%v/cap=%.3g/frac=%.3g", n, trial, d, cap, frac)
			lambda := frac * g.MaxGenericRate()
			if cap > 0 {
				// Keep λ′ inside the capped capacity so the solve is
				// feasible under the cap as well.
				var capTotal numeric.KahanSum
				for _, s := range g.Servers {
					if r := cap*s.Capacity(g.TaskSize) - s.SpecialRate; r > 0 {
						capTotal.Add(r)
					}
				}
				if ceiling := 0.95 * capTotal.Value(); lambda > ceiling {
					lambda = ceiling
				}
			}
			opts := Options{Discipline: d, MaxUtilization: cap, Parallel: n >= 4096}
			opts.Sparse = true
			sparse, err := Optimize(g, lambda, opts)
			if err != nil {
				t.Fatalf("%s: sparse: %v", name, err)
			}
			if got := numeric.Sum(sparse.Rates); math.Abs(got-lambda) > 1e-9*lambda {
				t.Errorf("%s: Σλ′_i = %.12g, want %.12g", name, got, lambda)
			}
			if err := g.Feasible(sparse.Rates); err != nil {
				t.Errorf("%s: infeasible: %v", name, err)
			}
			if cap == 0 {
				// KKTResidual assumes uncapped stationarity; capped
				// solves pin stations at the cap boundary instead.
				resid, err := KKTResidual(g, d, sparse.Rates)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if resid > 1e-6 {
					t.Errorf("%s: KKT residual %g too large", name, resid)
				}
			}
			opts.Sparse = false
			opts.Parallel = false
			dense, err := Optimize(g, lambda, opts)
			if err != nil {
				t.Fatalf("%s: dense: %v", name, err)
			}
			if i, ok := sameBits(dense.Rates, sparse.Rates); !ok {
				t.Errorf("%s: sparse diverged from dense at station %d: %x vs %x",
					name, i, math.Float64bits(dense.Rates[i]), math.Float64bits(sparse.Rates[i]))
			}
		}
	}
}
