package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
)

func TestParallelMatchesSequentialExactly(t *testing.T) {
	// The parallel inner loop must be bit-identical to the sequential
	// one (independent solves, deterministic summation order).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		g := randomGroup(rng)
		lambda := (0.1 + 0.8*rng.Float64()) * g.MaxGenericRate()
		d := queueing.FCFS
		if trial%2 == 1 {
			d = queueing.Priority
		}
		seq, err := Optimize(g, lambda, Options{Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Optimize(g, lambda, Options{Discipline: d, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if seq.AvgResponseTime != par.AvgResponseTime || seq.Phi != par.Phi {
			t.Fatalf("trial %d: sequential T′=%.17g φ=%.17g vs parallel T′=%.17g φ=%.17g",
				trial, seq.AvgResponseTime, seq.Phi, par.AvgResponseTime, par.Phi)
		}
		for i := range seq.Rates {
			if seq.Rates[i] != par.Rates[i] {
				t.Fatalf("trial %d server %d: %.17g vs %.17g", trial, i, seq.Rates[i], par.Rates[i])
			}
		}
	}
}

func TestParallelTable1(t *testing.T) {
	g := model.LiExample1Group()
	res, err := Optimize(g, 0.5*g.MaxGenericRate(), Options{Discipline: queueing.FCFS, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Optimize(g, 0.5*g.MaxGenericRate(), Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgResponseTime != seq.AvgResponseTime {
		t.Fatalf("parallel %.17g vs sequential %.17g", res.AvgResponseTime, seq.AvgResponseTime)
	}
}
