package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
)

// TestNewtonMatchesBisection is the property test behind the Newton
// inner solver: on randomized heterogeneous groups, under both
// disciplines, with and without a utilization cap, the accelerated
// Optimize agrees with the paper's pure-bisection path (the oracle,
// Options.PureBisection) to ≤ 1e-9 on every rate and on T′.
func TestNewtonMatchesBisection(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	const tol = 1e-9
	for trial := 0; trial < 40; trial++ {
		g := randomGroup(rng)
		d := queueing.FCFS
		if trial%2 == 1 {
			d = queueing.Priority
		}
		cap := 0.0
		if trial%3 == 0 {
			cap = 0.6 + 0.35*rng.Float64()
		}
		lambda := (0.05 + 0.9*rng.Float64()) * g.MaxGenericRate()
		newtonOpts := Options{Discipline: d, MaxUtilization: cap}
		oracleOpts := Options{Discipline: d, MaxUtilization: cap, PureBisection: true}
		fast, errFast := Optimize(g, lambda, newtonOpts)
		slow, errSlow := Optimize(g, lambda, oracleOpts)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("trial %d: error disagreement: newton=%v oracle=%v", trial, errFast, errSlow)
		}
		if errFast != nil {
			continue // both reject (e.g. cap leaves no headroom): agreement holds
		}
		scale := math.Max(1, lambda)
		if diff := math.Abs(fast.AvgResponseTime - slow.AvgResponseTime); diff > tol*math.Max(1, slow.AvgResponseTime) {
			t.Errorf("trial %d (d=%v cap=%g λ′=%g): T′ newton=%.15g oracle=%.15g diff=%g", trial, d, cap, lambda, fast.AvgResponseTime, slow.AvgResponseTime, diff)
		}
		for i := range fast.Rates {
			if diff := math.Abs(fast.Rates[i] - slow.Rates[i]); diff > tol*scale {
				t.Errorf("trial %d (d=%v cap=%g λ′=%g): rate[%d] newton=%.15g oracle=%.15g diff=%g", trial, d, cap, lambda, i, fast.Rates[i], slow.Rates[i], diff)
			}
		}
	}
}

// TestNewtonMatchesBisectionTotal is the same property for the
// fleet-wide objective of OptimizeTotal, whose marginal cost adds the
// special-task term ρ″ ∂T″/∂ρ.
func TestNewtonMatchesBisectionTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	const tol = 1e-9
	for trial := 0; trial < 20; trial++ {
		g := randomGroup(rng)
		d := queueing.FCFS
		if trial%2 == 1 {
			d = queueing.Priority
		}
		lambda := (0.1 + 0.8*rng.Float64()) * g.MaxGenericRate()
		fast, errFast := OptimizeTotal(g, lambda, Options{Discipline: d})
		slow, errSlow := OptimizeTotal(g, lambda, Options{Discipline: d, PureBisection: true})
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("trial %d: error disagreement: newton=%v oracle=%v", trial, errFast, errSlow)
		}
		if errFast != nil {
			continue
		}
		scale := math.Max(1, lambda)
		if diff := math.Abs(fast.AvgAllTasks - slow.AvgAllTasks); diff > tol*math.Max(1, slow.AvgAllTasks) {
			t.Errorf("trial %d (d=%v λ′=%g): T newton=%.15g oracle=%.15g diff=%g", trial, d, lambda, fast.AvgAllTasks, slow.AvgAllTasks, diff)
		}
		for i := range fast.Rates {
			if diff := math.Abs(fast.Rates[i] - slow.Rates[i]); diff > tol*scale {
				t.Errorf("trial %d (d=%v λ′=%g): rate[%d] newton=%.15g oracle=%.15g diff=%g", trial, d, lambda, i, fast.Rates[i], slow.Rates[i], diff)
			}
		}
	}
}

// TestNewtonWarmStartConsistency re-solves the same problem through a
// solver whose warm-start state has been seeded by a different φ and
// checks the answer is within tolerance of a cold solve: prev is an
// accelerator, never part of the answer.
func TestNewtonWarmStartConsistency(t *testing.T) {
	s := model.Server{Size: 6, Speed: 2, SpecialRate: 1.5}
	ss := newStationSolver(s, 1, 40, queueing.Priority, 0, 1)
	cold := newStationSolver(s, 1, 40, queueing.Priority, 0, 1)
	// Seed ss.prev by solving at a sequence of unrelated multipliers.
	for _, phi := range []float64{0.9, 0.02, 0.4} {
		ss.findRate(phi)
	}
	for _, phi := range []float64{0.05, 0.1, 0.3, 0.7} {
		warm := ss.findRate(phi)
		want := cold.bisectFallback(phi)
		if diff := math.Abs(warm - want); diff > 2*cold.tol+1e-9 {
			t.Errorf("φ=%g: warm-started rate %.15g vs bisection %.15g (diff %g)", phi, warm, want, diff)
		}
	}
}

// FuzzNewtonInnerSolve fuzzes the single-station inner solve: whatever
// (m, speed, special load, φ) the fuzzer invents, the Newton findRate
// and the paper's Fig. 2 bisection (FindRateLimited) must land within
// twice the shared interval tolerance of each other.
func FuzzNewtonInnerSolve(f *testing.F) {
	f.Add(4, 1.5, 0.3, 0.25, false)
	f.Add(1, 0.7, 0.0, 1.5, true)
	f.Add(16, 3.0, 0.8, 0.04, false)
	f.Add(7, 2.0, 0.0, 0.5, true)
	f.Fuzz(func(t *testing.T, m int, speed, specialFrac, phi float64, priority bool) {
		if m < 1 || m > 256 {
			t.Skip()
		}
		if !(speed > 0.01 && speed < 100) || !(phi > 1e-9 && phi < 1e9) {
			t.Skip()
		}
		if math.IsNaN(specialFrac) || specialFrac < 0 || specialFrac > 0.9 {
			t.Skip()
		}
		const rbar = 1.0
		s := model.Server{Size: m, Speed: speed}
		s.SpecialRate = specialFrac * s.Capacity(rbar)
		d := queueing.FCFS
		if priority {
			d = queueing.Priority
		}
		const lambdaTotal = 100.0
		ss := newStationSolver(s, rbar, lambdaTotal, d, 0, 1)
		got := ss.findRate(phi)
		want := FindRateLimited(s, rbar, lambdaTotal, phi, d, 0, 1)
		if diff := math.Abs(got - want); diff > 2*ss.tol+1e-9 {
			t.Errorf("m=%d speed=%g λ″=%g φ=%g d=%v: newton=%.15g bisection=%.15g diff=%g tol=%g",
				m, speed, s.SpecialRate, phi, d, got, want, diff, ss.tol)
		}
	})
}
