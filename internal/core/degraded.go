package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/numeric"
)

// DefaultAdmissionMargin is the stability headroom kept by admission
// control: shedding targets (1 − margin)·λ′_max of the survivors, since
// admitting the full saturation rate would drive T′ → ∞.
const DefaultAdmissionMargin = 1e-3

// DegradedResult is an optimal load distribution over the surviving
// subset of a partially failed group.
type DegradedResult struct {
	Result
	// Up echoes the availability vector the solve was run against.
	Up []bool
	// Survivors is the number of servers carrying load.
	Survivors int
	// Admitted is the generic rate actually distributed; Shed is the
	// rate admission control had to reject (λ′ − Admitted, ≥ 0). Shed
	// is zero whenever the survivors can absorb the full stream.
	Admitted, Shed float64
}

// OptimizeDegraded re-solves the paper's optimal distribution over the
// servers still up. It is the failover path of the system: on a
// failure or recovery event the dispatcher calls it with the fresh
// availability vector (and, for speed, the previous solve's Phi as
// Options.WarmPhi) and swaps in the returned rates.
//
// Unlike Optimize, a λ′ beyond the survivors' capacity is not an
// error: admission control computes the minimal shed rate that leaves
// the remaining load serviceable with DefaultAdmissionMargin headroom
// (tighter of that and Options.MaxUtilization, when set).
//
// With every server up and no shedding required, the result is
// identical to Optimize — the degraded path is a strict generalization,
// guarded by the Table 1/2 regression tests.
func OptimizeDegraded(g *model.Group, lambda float64, up []bool, opts Options) (*DegradedResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if up != nil && len(up) != g.N() {
		return nil, fmt.Errorf("core: availability vector has %d entries for %d servers", len(up), g.N())
	}
	if math.IsNaN(lambda) || lambda <= 0 {
		return nil, fmt.Errorf("core: total generic rate λ′=%g must be positive", lambda)
	}
	idx := make([]int, 0, g.N())
	for i := range g.Servers {
		if up == nil || up[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("core: no surviving servers")
	}
	sub := g
	if len(idx) < g.N() {
		servers := make([]model.Server, len(idx))
		for k, i := range idx {
			servers[k] = g.Servers[i]
		}
		sub = &model.Group{Servers: servers, TaskSize: g.TaskSize}
		if err := sub.Validate(); err != nil {
			return nil, fmt.Errorf("core: surviving subset invalid: %w", err)
		}
	}

	// Admission control: cap λ′ below the survivors' (possibly
	// utilization-capped) saturation point instead of failing.
	capacity := sub.MaxGenericRate()
	if opts.MaxUtilization > 0 && opts.MaxUtilization < 1 {
		var capTotal numeric.KahanSum
		for _, s := range sub.Servers {
			if r := opts.MaxUtilization*s.Capacity(sub.TaskSize) - s.SpecialRate; r > 0 {
				capTotal.Add(r)
			}
		}
		capacity = capTotal.Value()
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: surviving servers have no generic capacity")
	}
	admitted, shed := lambda, 0.0
	if ceiling := (1 - DefaultAdmissionMargin) * capacity; lambda >= ceiling {
		admitted = ceiling
		shed = lambda - admitted
	}

	res, err := Optimize(sub, admitted, opts)
	if err != nil {
		return nil, err
	}
	out := &DegradedResult{
		Result:    *res,
		Survivors: len(idx),
		Admitted:  admitted,
		Shed:      shed,
	}
	if up != nil {
		out.Up = append([]bool(nil), up...)
	}
	if len(idx) < g.N() {
		if res.Sparse != nil {
			// Remap the compact allocation's survivor-local indices back
			// to full-fleet station numbers (ascending in, ascending out).
			sp := &SparseRates{
				N:     g.N(),
				Index: make([]int32, len(res.Sparse.Index)),
				Rate:  append([]float64(nil), res.Sparse.Rate...),
			}
			for k, si := range res.Sparse.Index {
				sp.Index[k] = int32(idx[si])
			}
			out.Sparse = sp
		}
		if res.Rates != nil {
			// Expand to full-length vectors; down servers carry no generic
			// load and report zero utilization/response time.
			rates := make([]float64, g.N())
			utils := make([]float64, g.N())
			resps := make([]float64, g.N())
			for k, i := range idx {
				rates[i] = res.Rates[k]
				utils[i] = res.Utilizations[k]
				resps[i] = res.ResponseTimes[k]
			}
			out.Rates, out.Utilizations, out.ResponseTimes = rates, utils, resps
		}
	}
	return out, nil
}
