package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// GroupGenericCDF returns P(T ≤ t) for the response time of a random
// generic task under the given allocation with FCFS scheduling: the
// task lands on server i with probability λ′_i/λ′ and then experiences
// that server's M/M/m sojourn distribution, so the group CDF is the
// rate-weighted mixture of the per-server CDFs. Only FCFS is
// supported — under priority the conditional generic wait is not
// exponential and the paper gives no distribution for it.
func GroupGenericCDF(g *model.Group, rates []float64, t float64) (float64, error) {
	if err := g.Feasible(rates); err != nil {
		return 0, err
	}
	var lambda numeric.KahanSum
	for _, r := range rates {
		lambda.Add(r)
	}
	l := lambda.Value()
	if l <= 0 {
		return 0, fmt.Errorf("core: group CDF needs positive total rate")
	}
	var mix numeric.KahanSum
	for i, s := range g.Servers {
		if rates[i] == 0 { //bladelint:allow floateq -- exact zero rate: the optimizer assigned this server no generic load
			continue
		}
		rho := s.Utilization(rates[i], g.TaskSize)
		cdf, err := queueing.ResponseTimeCDF(s.Size, rho, s.ServiceMean(g.TaskSize), t)
		if err != nil {
			return 0, fmt.Errorf("core: server %d: %w", i+1, err)
		}
		mix.Add(rates[i] / l * cdf)
	}
	return mix.Value(), nil
}

// GroupGenericQuantile returns the p-quantile of the group generic
// response time under the allocation (FCFS): the t with
// GroupGenericCDF(t) = p, found by bracketed bisection. This turns the
// paper's mean-value result into percentile SLAs ("95 % of generic
// tasks finish within …").
func GroupGenericQuantile(g *model.Group, rates []float64, p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("core: quantile %g must be in (0, 1)", p)
	}
	if _, err := GroupGenericCDF(g, rates, 1); err != nil {
		return 0, err
	}
	atLeast := func(t float64) bool {
		v, err := GroupGenericCDF(g, rates, t)
		return err == nil && v >= p
	}
	// Start the bracket at the largest service mean.
	start := 0.0
	for _, s := range g.Servers {
		if x := s.ServiceMean(g.TaskSize); x > start {
			start = x
		}
	}
	hi, err := numeric.ExpandUpper(atLeast, start, 0, 0)
	if err != nil {
		return 0, fmt.Errorf("core: quantile bracket failed: %w", err)
	}
	q, err := numeric.BisectPredicate(atLeast, 0, hi, 1e-12*hi)
	if err != nil {
		return 0, fmt.Errorf("core: quantile search failed: %w", err)
	}
	return q, nil
}
