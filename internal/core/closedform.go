package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// singleBladed reports whether every server in g has exactly one blade
// (the premise of Theorems 1 and 3).
func singleBladed(g *model.Group) bool {
	for _, s := range g.Servers {
		if s.Size != 1 {
			return false
		}
	}
	return true
}

// ClosedFormFCFS solves the m_1 = … = m_n = 1 case in closed form
// (Theorem 1 of the paper):
//
//	φ   = ( (1/√λ′) Σ √((1−ρ″_i)/x̄_i)  /  (Σ (1−ρ″_i)/x̄_i − λ′) )²
//	λ′_i = (1/x̄_i)(1 − ρ″_i − √(x̄_i(1−ρ″_i)/(λ′φ)))
//
// Theorem 1 presumes every server carries generic load. For small λ′
// the formula can make some λ′_i negative; those servers are dropped
// from the active set and φ recomputed over the remainder (standard
// water-filling), which preserves the KKT conditions the theorem
// encodes. An error is returned for infeasible inputs.
func ClosedFormFCFS(g *model.Group, lambda float64) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !singleBladed(g) {
		return nil, fmt.Errorf("core: Theorem 1 requires every server to have one blade")
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("core: total generic rate λ′=%g must be positive", lambda)
	}
	if max := g.MaxGenericRate(); lambda >= max {
		return nil, fmt.Errorf("core: λ′=%g at or beyond saturation λ′_max=%g", lambda, max)
	}

	n := g.N()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	rates := make([]float64, n)
	var phi float64
	// Each pass drops servers whose Theorem-1 rate is negative; at most
	// n passes, since the active set only shrinks.
	for pass := 0; pass < n; pass++ {
		var sumSqrt, sumCap numeric.KahanSum
		for i, s := range g.Servers {
			if !active[i] {
				continue
			}
			xbar := s.ServiceMean(g.TaskSize)
			rhoS := s.SpecialUtilization(g.TaskSize)
			sumSqrt.Add(math.Sqrt((1 - rhoS) / xbar))
			sumCap.Add((1 - rhoS) / xbar)
		}
		denom := sumCap.Value() - lambda
		if denom <= 0 {
			return nil, fmt.Errorf("core: active set cannot absorb λ′=%g", lambda)
		}
		sqrtPhi := sumSqrt.Value() / math.Sqrt(lambda) / denom
		phi = sqrtPhi * sqrtPhi

		anyNegative := false
		for i, s := range g.Servers {
			if !active[i] {
				rates[i] = 0
				continue
			}
			xbar := s.ServiceMean(g.TaskSize)
			rhoS := s.SpecialUtilization(g.TaskSize)
			r := (1 - rhoS - math.Sqrt(xbar*(1-rhoS)/(lambda*phi))) / xbar
			if r < 0 {
				active[i] = false
				anyNegative = true
				r = 0
			}
			rates[i] = r
		}
		if !anyNegative {
			break
		}
	}
	return &Result{
		Rates:           rates,
		Phi:             phi,
		AvgResponseTime: g.AverageResponseTime(queueing.FCFS, rates),
		Utilizations:    g.Utilizations(rates),
		ResponseTimes:   g.ResponseTimes(queueing.FCFS, rates),
		Discipline:      queueing.FCFS,
		TotalRate:       lambda,
	}, nil
}

// ClosedFormPriority solves the m_1 = … = m_n = 1 case with prioritized
// special tasks (Theorem 3 of the paper):
//
//	λ′_i(φ) = (1/x̄_i)(1 − ρ″_i − √( (λ′φ/x̄_i + ρ″_i/(1−ρ″_i))^{−1} ))
//
// with φ the root of Σ λ′_i(φ) = λ′. The paper leaves the root to a
// numeric search; each λ′_i(φ) is increasing in φ, so we bracket and
// bisect exactly as the general solver does, but using the closed
// per-server expression instead of an inner bisection. Rates that the
// formula would drive negative are clamped to zero, which realizes the
// KKT inactive-server condition.
func ClosedFormPriority(g *model.Group, lambda float64) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !singleBladed(g) {
		return nil, fmt.Errorf("core: Theorem 3 requires every server to have one blade")
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("core: total generic rate λ′=%g must be positive", lambda)
	}
	if max := g.MaxGenericRate(); lambda >= max {
		return nil, fmt.Errorf("core: λ′=%g at or beyond saturation λ′_max=%g", lambda, max)
	}

	rateAt := func(s model.Server, phi float64) float64 {
		xbar := s.ServiceMean(g.TaskSize)
		rhoS := s.SpecialUtilization(g.TaskSize)
		inner := lambda*phi/xbar + rhoS/(1-rhoS)
		r := (1 - rhoS - math.Sqrt(1/inner)) / xbar
		if r < 0 {
			return 0
		}
		return r
	}
	total := func(phi float64) float64 {
		var sum numeric.KahanSum
		for _, s := range g.Servers {
			sum.Add(rateAt(s, phi))
		}
		return sum.Value()
	}
	phiHi, err := numeric.ExpandUpper(func(phi float64) bool { return total(phi) >= lambda }, 1e-12, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: failed to bracket φ: %w", err)
	}
	phi, err := numeric.Bisect(func(phi float64) float64 { return total(phi) - lambda }, 0, phiHi, DefaultEpsilon*phiHi)
	if err != nil {
		return nil, fmt.Errorf("core: φ root search failed: %w", err)
	}
	rates := make([]float64, g.N())
	for i, s := range g.Servers {
		rates[i] = rateAt(s, phi)
	}
	return &Result{
		Rates:           rates,
		Phi:             phi,
		AvgResponseTime: g.AverageResponseTime(queueing.Priority, rates),
		Utilizations:    g.Utilizations(rates),
		ResponseTimes:   g.ResponseTimes(queueing.Priority, rates),
		Discipline:      queueing.Priority,
		TotalRate:       lambda,
	}, nil
}
