// Package profiling wires the standard -cpuprofile / -memprofile flag
// pair into the CLIs, so optimizer and simulator hot paths can be
// inspected with `go tool pprof` without ad-hoc instrumentation.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (no-op when empty) and
// returns a stop function for defer. The stop function also writes an
// allocation profile to memPath when that is non-empty, after a final
// GC so the heap profile reflects live objects plus cumulative
// allocation counts.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
