// Package model defines the blade-server system model of §2 of the
// paper: a group of n heterogeneous blade servers, each an M/M/m
// station, preloaded with dedicated special tasks and receiving a share
// of a common generic task stream.
//
// The model layer owns parameter bookkeeping (sizes, speeds, task
// execution requirement, arrival rates), feasibility checks, and the
// mapping from arrival rates to utilizations and response times; the
// queueing mathematics lives in internal/queueing and the optimizer in
// internal/core.
package model
