package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
	"repro/internal/queueing"
)

func TestServerValidate(t *testing.T) {
	good := Server{Size: 2, Speed: 1.5, SpecialRate: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Server{
		{Size: 0, Speed: 1},
		{Size: -3, Speed: 1},
		{Size: 1, Speed: 0},
		{Size: 1, Speed: -2},
		{Size: 1, Speed: math.NaN()},
		{Size: 1, Speed: math.Inf(1)},
		{Size: 1, Speed: 1, SpecialRate: -1},
		{Size: 1, Speed: 1, SpecialRate: math.NaN()},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, s)
		}
	}
}

func TestServerDerivedQuantities(t *testing.T) {
	s := Server{Size: 4, Speed: 2.0, SpecialRate: 1.0}
	rbar := 0.5
	if got := s.ServiceMean(rbar); got != 0.25 {
		t.Errorf("x̄ = %g, want 0.25", got)
	}
	if got := s.ServiceRate(rbar); got != 4 {
		t.Errorf("μ = %g, want 4", got)
	}
	if got := s.Capacity(rbar); got != 16 {
		t.Errorf("capacity = %g, want 16", got)
	}
	if got := s.MaxGenericRate(rbar); got != 15 {
		t.Errorf("max generic rate = %g, want 15", got)
	}
	// ρ″ = λ″x̄/m = 1·0.25/4.
	if got := s.SpecialUtilization(rbar); got != 0.0625 {
		t.Errorf("ρ″ = %g, want 0.0625", got)
	}
	// ρ at λ′=3: (3+1)·0.25/4 = 0.25.
	if got := s.Utilization(3, rbar); got != 0.25 {
		t.Errorf("ρ = %g, want 0.25", got)
	}
}

func TestServerGenericResponseTime(t *testing.T) {
	s := Server{Size: 2, Speed: 1.0, SpecialRate: 0.4}
	rbar := 1.0
	rho := s.Utilization(0.6, rbar) // (0.6+0.4)/2 = 0.5
	want := queueing.GenericResponseTime(queueing.FCFS, 2, rho, s.SpecialUtilization(rbar), 1.0)
	got := s.GenericResponseTime(queueing.FCFS, 0.6, rbar)
	if got != want {
		t.Fatalf("T′ = %g, want %g", got, want)
	}
	if !math.IsInf(s.GenericResponseTime(queueing.FCFS, 1.6, rbar), 1) {
		t.Error("saturated server should give +Inf")
	}
}

func TestMarginalCostIncreasing(t *testing.T) {
	// The paper's key observation: ∂T′/∂λ′_i is increasing in λ′_i.
	s := Server{Size: 6, Speed: 1.2, SpecialRate: 2.0}
	rbar := 1.0
	lambdaTotal := 10.0
	prev := math.Inf(-1)
	for _, r := range []float64{0, 0.5, 1, 2, 3, 4, 4.8, 5.1} {
		if s.Utilization(r, rbar) >= 1 {
			break
		}
		mc := s.MarginalCost(queueing.FCFS, r, lambdaTotal, rbar)
		if mc < prev {
			t.Fatalf("marginal cost decreased: %g after %g at λ′=%g", mc, prev, r)
		}
		prev = mc
	}
}

func TestMarginalCostMatchesNumericalGradient(t *testing.T) {
	// (1/λ′)(T′_i + λ′_i ∂T′_i/∂λ′_i) is exactly ∂/∂λ′_i [λ′_i T′_i / λ′].
	s := Server{Size: 5, Speed: 1.4, SpecialRate: 1.5}
	rbar := 1.0
	lambdaTotal := 8.0
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		for _, r := range []float64{0.5, 1.5, 3.0} {
			analytic := s.MarginalCost(d, r, lambdaTotal, rbar)
			numerical := numeric.Derivative(func(x float64) float64 {
				return x * s.GenericResponseTime(d, x, rbar) / lambdaTotal
			}, r)
			if !numeric.WithinTol(analytic, numerical, 1e-6, 1e-5) {
				t.Errorf("%v λ′=%g: analytic=%.12g numeric=%.12g", d, r, analytic, numerical)
			}
		}
	}
}

func TestMarginalCostSaturated(t *testing.T) {
	s := Server{Size: 2, Speed: 1.0, SpecialRate: 0}
	if !math.IsInf(s.MarginalCost(queueing.FCFS, 2.0, 5, 1.0), 1) {
		t.Error("marginal cost at saturation should be +Inf")
	}
}

// Property: utilization decomposes as ρ = ρ′ + ρ″.
func TestUtilizationDecompositionProperty(t *testing.T) {
	prop := func(mSeed uint8, speedSeed, rateSeed, rbarSeed float64) bool {
		m := 1 + int(mSeed%20)
		speed := 0.2 + math.Abs(math.Mod(speedSeed, 3))
		rbar := 0.2 + math.Abs(math.Mod(rbarSeed, 3))
		rate := math.Abs(math.Mod(rateSeed, 2))
		s := Server{Size: m, Speed: speed, SpecialRate: rate}
		lambdaG := math.Abs(math.Mod(rate*1.7, 2))
		rho := s.Utilization(lambdaG, rbar)
		rhoG := lambdaG * s.ServiceMean(rbar) / float64(m)
		return numeric.WithinTol(rho, rhoG+s.SpecialUtilization(rbar), 1e-12, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
