package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/queueing"
)

// Group is a heterogeneous group of blade servers sharing one generic
// task stream, plus the workload parameters common to all of them.
type Group struct {
	// Servers S_1..S_n. Must be non-empty.
	Servers []Server
	// TaskSize r̄ is the mean task execution requirement (instructions).
	// Applies to generic and special tasks alike. Must be positive.
	TaskSize float64
}

// Validate checks all parameters of the group.
func (g *Group) Validate() error {
	if len(g.Servers) == 0 {
		return fmt.Errorf("model: group has no servers")
	}
	if g.TaskSize <= 0 || math.IsNaN(g.TaskSize) || math.IsInf(g.TaskSize, 0) {
		return fmt.Errorf("model: task size %g must be positive and finite", g.TaskSize)
	}
	for i, s := range g.Servers {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("server %d: %w", i+1, err)
		}
		if s.SpecialUtilization(g.TaskSize) >= 1 {
			return fmt.Errorf("model: server %d saturated by special tasks alone (ρ″=%g)",
				i+1, s.SpecialUtilization(g.TaskSize))
		}
	}
	return nil
}

// N returns the number of servers.
func (g *Group) N() int { return len(g.Servers) }

// TotalBlades returns m = Σ m_i.
func (g *Group) TotalBlades() int {
	total := 0
	for _, s := range g.Servers {
		total += s.Size
	}
	return total
}

// TotalSpecialRate returns λ″ = Σ λ″_i.
func (g *Group) TotalSpecialRate() float64 {
	var sum numeric.KahanSum
	for _, s := range g.Servers {
		sum.Add(s.SpecialRate)
	}
	return sum.Value()
}

// MaxGenericRate returns λ′_max = Σ (m_i s_i/r̄ − λ″_i), the saturation
// point of the total generic arrival rate (§5 of the paper).
func (g *Group) MaxGenericRate() float64 {
	var sum numeric.KahanSum
	for _, s := range g.Servers {
		sum.Add(s.MaxGenericRate(g.TaskSize))
	}
	return sum.Value()
}

// Feasible reports whether the allocation rates (one generic rate per
// server) keeps every server strictly stable and is non-negative.
func (g *Group) Feasible(rates []float64) error {
	if len(rates) != len(g.Servers) {
		return fmt.Errorf("model: %d rates for %d servers", len(rates), len(g.Servers))
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("model: rate %g for server %d must be non-negative", r, i+1)
		}
		if rho := g.Servers[i].Utilization(r, g.TaskSize); rho >= 1 {
			return fmt.Errorf("model: server %d unstable at λ′=%g (ρ=%g)", i+1, r, rho)
		}
	}
	return nil
}

// AverageResponseTime returns T′ = Σ (λ′_i/λ′)·T′_i for the given
// allocation under discipline d, where λ′ = Σ λ′_i. It is the objective
// the optimizer minimizes. Servers with λ′_i = 0 carry no generic tasks
// and do not contribute. Returns +Inf if any loaded server is
// saturated, and 0 if the total rate is 0.
func (g *Group) AverageResponseTime(d queueing.Discipline, rates []float64) float64 {
	if len(rates) != len(g.Servers) {
		panic(fmt.Sprintf("model: %d rates for %d servers", len(rates), len(g.Servers)))
	}
	var total numeric.KahanSum
	for _, r := range rates {
		total.Add(r)
	}
	lambda := total.Value()
	if lambda == 0 { //bladelint:allow floateq -- exact zero total: no special load configured anywhere
		return 0
	}
	var acc numeric.KahanSum
	for i, r := range rates {
		if r == 0 { //bladelint:allow floateq -- exact zero rate contributes nothing and would divide by zero below
			continue
		}
		t := g.Servers[i].GenericResponseTime(d, r, g.TaskSize)
		if math.IsInf(t, 1) {
			return math.Inf(1)
		}
		acc.Add(r / lambda * t)
	}
	return acc.Value()
}

// Utilizations returns ρ_i for each server under the given allocation.
func (g *Group) Utilizations(rates []float64) []float64 {
	out := make([]float64, len(g.Servers))
	for i, s := range g.Servers {
		out[i] = s.Utilization(rates[i], g.TaskSize)
	}
	return out
}

// ResponseTimes returns T′_i for each server under the given allocation
// and discipline.
func (g *Group) ResponseTimes(d queueing.Discipline, rates []float64) []float64 {
	out := make([]float64, len(g.Servers))
	for i, s := range g.Servers {
		out[i] = s.GenericResponseTime(d, rates[i], g.TaskSize)
	}
	return out
}

// Clone returns a deep copy of the group.
func (g *Group) Clone() *Group {
	servers := make([]Server, len(g.Servers))
	copy(servers, g.Servers)
	return &Group{Servers: servers, TaskSize: g.TaskSize}
}

// PaperGroup constructs the canonical system of Examples 1–2 and most
// figures of the paper: n servers with sizes m_i, speeds s_i, task size
// r̄, and special rates λ″_i = y·m_i/x̄_i (each server preloaded to a
// fraction y of its capacity).
func PaperGroup(sizes []int, speeds []float64, rbar, specialFraction float64) (*Group, error) {
	if len(sizes) != len(speeds) {
		return nil, fmt.Errorf("model: %d sizes but %d speeds", len(sizes), len(speeds))
	}
	servers := make([]Server, len(sizes))
	for i := range sizes {
		s := Server{Size: sizes[i], Speed: speeds[i]}
		// λ″_i = y·m_i/x̄_i = y·m_i·s_i/r̄.
		s.SpecialRate = specialFraction * float64(sizes[i]) * speeds[i] / rbar
		servers[i] = s
	}
	g := &Group{Servers: servers, TaskSize: rbar}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LiExample1Group returns the exact system of Example 1/2 and Table 1/2:
// n = 7, m_i = 2i, s_i = 1.7 − 0.1i, r̄ = 1, λ″_i = 0.3·m_i/x̄_i.
func LiExample1Group() *Group {
	sizes := make([]int, 7)
	speeds := make([]float64, 7)
	for i := 1; i <= 7; i++ {
		sizes[i-1] = 2 * i
		speeds[i-1] = 1.7 - 0.1*float64(i)
	}
	g, err := PaperGroup(sizes, speeds, 1.0, 0.3)
	if err != nil {
		panic(err) // parameters are constants; cannot fail
	}
	return g
}
