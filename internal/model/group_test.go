package model

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/queueing"
)

func TestGroupValidate(t *testing.T) {
	g := LiExample1Group()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Group{TaskSize: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty group should fail")
	}
	badTask := &Group{Servers: []Server{{Size: 1, Speed: 1}}, TaskSize: 0}
	if err := badTask.Validate(); err == nil {
		t.Error("zero task size should fail")
	}
	badServer := &Group{Servers: []Server{{Size: 0, Speed: 1}}, TaskSize: 1}
	if err := badServer.Validate(); err == nil {
		t.Error("invalid server should fail")
	}
	saturated := &Group{Servers: []Server{{Size: 1, Speed: 1, SpecialRate: 1.5}}, TaskSize: 1}
	if err := saturated.Validate(); err == nil {
		t.Error("special-saturated server should fail")
	}
}

func TestLiExample1GroupParameters(t *testing.T) {
	// Cross-check every derived number shown in Table 1's parameter
	// columns: m_i = 2i, s_i = 1.7−0.1i, x̄_i, λ″_i.
	g := LiExample1Group()
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7", g.N())
	}
	wantX := []float64{0.6250000, 0.6666667, 0.7142857, 0.7692308, 0.8333333, 0.9090909, 1.0000000}
	wantLS := []float64{0.96, 1.8, 2.52, 3.12, 3.6, 3.96, 4.2}
	for i, s := range g.Servers {
		if s.Size != 2*(i+1) {
			t.Errorf("m_%d = %d, want %d", i+1, s.Size, 2*(i+1))
		}
		wantSpeed := 1.7 - 0.1*float64(i+1)
		if math.Abs(s.Speed-wantSpeed) > 1e-12 {
			t.Errorf("s_%d = %g, want %g", i+1, s.Speed, wantSpeed)
		}
		if math.Abs(s.ServiceMean(1)-wantX[i]) > 5e-8 {
			t.Errorf("x̄_%d = %.7f, want %.7f", i+1, s.ServiceMean(1), wantX[i])
		}
		if math.Abs(s.SpecialRate-wantLS[i]) > 1e-9 {
			t.Errorf("λ″_%d = %.7f, want %.7f", i+1, s.SpecialRate, wantLS[i])
		}
		if math.Abs(s.SpecialUtilization(1)-0.3) > 1e-12 {
			t.Errorf("ρ″_%d = %g, want 0.3", i+1, s.SpecialUtilization(1))
		}
	}
	if g.TotalBlades() != 56 {
		t.Errorf("total blades = %d, want 56", g.TotalBlades())
	}
	// λ′_max = 0.7·Σ m_i s_i = 0.7·67.2 = 47.04; λ′ in Example 1 = 23.52.
	if math.Abs(g.MaxGenericRate()-47.04) > 1e-9 {
		t.Errorf("λ′_max = %.9f, want 47.04", g.MaxGenericRate())
	}
	if math.Abs(g.TotalSpecialRate()-20.16) > 1e-9 {
		t.Errorf("λ″ = %.9f, want 20.16", g.TotalSpecialRate())
	}
}

func TestPaperGroupMismatchedLengths(t *testing.T) {
	if _, err := PaperGroup([]int{1, 2}, []float64{1}, 1, 0.3); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
}

func TestGroupFeasible(t *testing.T) {
	g := LiExample1Group()
	ok := make([]float64, 7)
	for i := range ok {
		ok[i] = 0.5 * g.Servers[i].MaxGenericRate(g.TaskSize)
	}
	if err := g.Feasible(ok); err != nil {
		t.Fatal(err)
	}
	if err := g.Feasible(ok[:3]); err == nil {
		t.Error("wrong length should fail")
	}
	bad := make([]float64, 7)
	bad[0] = -1
	if err := g.Feasible(bad); err == nil {
		t.Error("negative rate should fail")
	}
	sat := make([]float64, 7)
	sat[2] = g.Servers[2].MaxGenericRate(g.TaskSize) * 1.01
	if err := g.Feasible(sat); err == nil {
		t.Error("saturating rate should fail")
	}
}

func TestAverageResponseTimeWeighting(t *testing.T) {
	g := &Group{
		Servers: []Server{
			{Size: 1, Speed: 1, SpecialRate: 0},
			{Size: 1, Speed: 2, SpecialRate: 0},
		},
		TaskSize: 1,
	}
	rates := []float64{0.3, 0.6}
	// M/M/1: T = x̄/(1−ρ). Server 1: x̄=1, ρ=0.3 → 1/0.7. Server 2:
	// x̄=0.5, ρ=0.3 → 0.5/0.7.
	t1 := 1 / 0.7
	t2 := 0.5 / 0.7
	want := 0.3/0.9*t1 + 0.6/0.9*t2
	got := g.AverageResponseTime(queueing.FCFS, rates)
	if !numeric.WithinTol(got, want, 1e-12, 1e-12) {
		t.Fatalf("T′ = %.15g, want %.15g", got, want)
	}
}

func TestAverageResponseTimeEdgeCases(t *testing.T) {
	g := LiExample1Group()
	zero := make([]float64, 7)
	if got := g.AverageResponseTime(queueing.FCFS, zero); got != 0 {
		t.Errorf("zero allocation T′ = %g, want 0", got)
	}
	// Zero-rate servers are skipped even if they'd be saturated.
	one := make([]float64, 7)
	one[0] = 0.1
	if got := g.AverageResponseTime(queueing.FCFS, one); math.IsInf(got, 1) || got <= 0 {
		t.Errorf("single-server allocation T′ = %g", got)
	}
	// Saturated loaded server → +Inf.
	sat := make([]float64, 7)
	sat[0] = g.Servers[0].MaxGenericRate(1) + 1
	if got := g.AverageResponseTime(queueing.FCFS, sat); !math.IsInf(got, 1) {
		t.Errorf("saturated allocation T′ = %g, want +Inf", got)
	}
}

func TestAverageResponseTimePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	LiExample1Group().AverageResponseTime(queueing.FCFS, []float64{1})
}

func TestUtilizationsAndResponseTimes(t *testing.T) {
	g := LiExample1Group()
	rates := make([]float64, 7)
	for i := range rates {
		rates[i] = 0.4 * g.Servers[i].MaxGenericRate(1)
	}
	rhos := g.Utilizations(rates)
	ts := g.ResponseTimes(queueing.FCFS, rates)
	if len(rhos) != 7 || len(ts) != 7 {
		t.Fatal("wrong lengths")
	}
	for i := range rhos {
		// ρ = 0.3 + 0.4·0.7 = 0.58 for every server by construction.
		if math.Abs(rhos[i]-0.58) > 1e-12 {
			t.Errorf("ρ_%d = %g, want 0.58", i+1, rhos[i])
		}
		if ts[i] < g.Servers[i].ServiceMean(1) {
			t.Errorf("T′_%d = %g below service time", i+1, ts[i])
		}
	}
}

func TestGroupClone(t *testing.T) {
	g := LiExample1Group()
	c := g.Clone()
	c.Servers[0].Speed = 99
	c.TaskSize = 42
	if g.Servers[0].Speed == 99 || g.TaskSize == 42 {
		t.Fatal("clone aliases original")
	}
}

func TestPriorityGroupSlower(t *testing.T) {
	g := LiExample1Group()
	rates := make([]float64, 7)
	for i := range rates {
		rates[i] = 0.5 * g.Servers[i].MaxGenericRate(1)
	}
	fcfs := g.AverageResponseTime(queueing.FCFS, rates)
	prio := g.AverageResponseTime(queueing.Priority, rates)
	if prio <= fcfs {
		t.Fatalf("priority T′=%g should exceed FCFS T′=%g", prio, fcfs)
	}
}
