package model

import (
	"fmt"
	"math"

	"repro/internal/queueing"
)

// Server describes one heterogeneous blade server S_i: a chassis with
// Size identical blades of execution speed Speed (instructions per unit
// time), preloaded with a dedicated Poisson stream of special tasks of
// rate SpecialRate.
type Server struct {
	// Size m_i is the number of server blades (≥ 1).
	Size int
	// Speed s_i is the execution speed of each blade, in (giga)
	// instructions per second. Must be positive.
	Speed float64
	// SpecialRate λ″_i is the arrival rate of dedicated special tasks
	// that can only run on this server. Must be non-negative.
	SpecialRate float64
}

// Validate checks the server parameters.
func (s Server) Validate() error {
	if s.Size < 1 {
		return fmt.Errorf("model: server size %d must be ≥ 1", s.Size)
	}
	if s.Speed <= 0 || math.IsNaN(s.Speed) || math.IsInf(s.Speed, 0) {
		return fmt.Errorf("model: server speed %g must be positive and finite", s.Speed)
	}
	if s.SpecialRate < 0 || math.IsNaN(s.SpecialRate) || math.IsInf(s.SpecialRate, 0) {
		return fmt.Errorf("model: special-task rate %g must be non-negative and finite", s.SpecialRate)
	}
	return nil
}

// ServiceMean returns x̄_i = r̄/s_i, the mean execution time of a task
// with mean requirement rbar on one blade of this server.
func (s Server) ServiceMean(rbar float64) float64 { return rbar / s.Speed }

// ServiceRate returns μ_i = s_i/r̄, the rate at which one blade
// completes tasks.
func (s Server) ServiceRate(rbar float64) float64 { return s.Speed / rbar }

// Capacity returns m_i·s_i/r̄, the maximum total task throughput of the
// server.
func (s Server) Capacity(rbar float64) float64 {
	return float64(s.Size) * s.Speed / rbar
}

// MaxGenericRate returns the saturation point of λ′_i:
// m_i s_i/r̄ − λ″_i, the largest generic arrival rate the server can
// absorb on top of its special load. It can be ≤ 0 if special tasks
// alone saturate the server.
func (s Server) MaxGenericRate(rbar float64) float64 {
	return s.Capacity(rbar) - s.SpecialRate
}

// SpecialUtilization returns ρ″_i = λ″_i x̄_i / m_i.
func (s Server) SpecialUtilization(rbar float64) float64 {
	return s.SpecialRate * s.ServiceMean(rbar) / float64(s.Size)
}

// Utilization returns ρ_i = (λ′ + λ″_i) x̄_i / m_i for a generic rate
// λ′ assigned to this server.
func (s Server) Utilization(genericRate, rbar float64) float64 {
	return (genericRate + s.SpecialRate) * s.ServiceMean(rbar) / float64(s.Size)
}

// GenericResponseTime returns T′_i for generic arrival rate λ′ under
// discipline d (see queueing.GenericResponseTime). Returns +Inf when
// the rate saturates the server.
func (s Server) GenericResponseTime(d queueing.Discipline, genericRate, rbar float64) float64 {
	rho := s.Utilization(genericRate, rbar)
	return queueing.GenericResponseTime(d, s.Size, rho, s.SpecialUtilization(rbar), s.ServiceMean(rbar))
}

// MarginalCost returns the Lagrange marginal cost of server S_i at
// generic rate λ′_i for total generic rate λ′ (eq. (1) of the paper):
//
//	(1/λ′)(T′_i + ρ′_i · ∂T′_i/∂ρ_i).
//
// The optimizer equalizes this quantity across servers. It is
// increasing in λ′_i because T′ is convex. Returns +Inf at or beyond
// saturation.
func (s Server) MarginalCost(d queueing.Discipline, genericRate, totalGenericRate, rbar float64) float64 {
	xbar := s.ServiceMean(rbar)
	rho := s.Utilization(genericRate, rbar)
	if rho >= 1 {
		return math.Inf(1)
	}
	rhoS := s.SpecialUtilization(rbar)
	rhoG := genericRate * xbar / float64(s.Size)
	t := queueing.GenericResponseTime(d, s.Size, rho, rhoS, xbar)
	dt := queueing.DGenericResponseDRho(d, s.Size, rho, rhoS, xbar)
	return (t + rhoG*dt) / totalGenericRate
}
