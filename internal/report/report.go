// Package report runs the complete reproduction audit — pinned digits,
// closed-form cross-checks, optimality conditions, figure claims, and
// (optionally) simulation validation — and renders the outcome as a
// Markdown document. It is the machine-checkable version of
// EXPERIMENTS.md: `cmd/bladereport` regenerates the audit on demand, so
// a reader never has to trust stale prose.
package report

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// Check is one audited claim.
type Check struct {
	// Name identifies the claim.
	Name string
	// Passed reports the verdict.
	Passed bool
	// Detail explains the evidence (one line).
	Detail string
}

// Options configures the audit.
type Options struct {
	// Simulate adds the discrete-event validation checks (slower).
	Simulate bool
	// SimHorizon and SimReps size the simulation (defaults 20000, 8).
	SimHorizon float64
	SimReps    int
	// Seed drives the simulations.
	Seed int64
	// Points is the λ′ grid resolution for figure claims (default 7).
	Points int
	// Now supplies the wall clock for the Elapsed measurement; nil
	// means time.Now. Tests inject a fixed clock so the audit output
	// is a pure function of its inputs.
	Now func() time.Time
}

func (o Options) now() func() time.Time {
	if o.Now != nil {
		return o.Now
	}
	return time.Now //bladelint:allow detclock -- Elapsed is presentation metadata only; deterministic callers inject Options.Now
}

func (o Options) simHorizon() float64 {
	if o.SimHorizon <= 0 {
		return 20000
	}
	return o.SimHorizon
}

func (o Options) simReps() int {
	if o.SimReps < 2 {
		return 8
	}
	return o.SimReps
}

func (o Options) points() int {
	if o.Points < 3 {
		return 7
	}
	return o.Points
}

// Report is the audit outcome.
type Report struct {
	Checks  []Check
	Elapsed time.Duration
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return true
}

// table1Pins holds the published Table 1 values (λ′_i, ρ_i) and T′.
var table1Pins = struct {
	rates, rhos []float64
	t           float64
}{
	rates: []float64{0.6652046, 1.8802882, 2.9973639, 3.9121948, 4.5646028, 4.8769307, 4.6234149},
	rhos:  []float64{0.5078764, 0.6133814, 0.6568290, 0.6761726, 0.6803836, 0.6694644, 0.6302439},
	t:     0.8964703,
}

var table2Pins = struct {
	rates, rhos []float64
	t           float64
}{
	rates: []float64{0.5908113, 1.7714948, 2.8813939, 3.8136848, 4.5164617, 4.9419622, 5.0041912},
	rhos:  []float64{0.4846285, 0.5952491, 0.6430231, 0.6667005, 0.6763718, 0.6743911, 0.6574422},
	t:     0.9209392,
}

// Run executes the audit.
func Run(opts Options) (*Report, error) {
	now := opts.now()
	start := now()
	r := &Report{}
	add := func(name string, passed bool, format string, args ...interface{}) {
		r.Checks = append(r.Checks, Check{Name: name, Passed: passed, Detail: fmt.Sprintf(format, args...)})
	}

	g := model.LiExample1Group()
	lambda := 0.5 * g.MaxGenericRate()

	// Tables 1 and 2: every published digit.
	checkTable := func(name string, d queueing.Discipline, pins struct {
		rates, rhos []float64
		t           float64
	}) (*core.Result, error) {
		res, err := core.Optimize(g, lambda, core.Options{Discipline: d})
		if err != nil {
			return nil, err
		}
		worst := math.Abs(res.AvgResponseTime - pins.t)
		for i := range pins.rates {
			worst = math.Max(worst, math.Abs(res.Rates[i]-pins.rates[i]))
			worst = math.Max(worst, math.Abs(res.Utilizations[i]-pins.rhos[i]))
		}
		add(name, worst <= 5e-8,
			"worst deviation from the 15 published 7-digit values: %.2g (tolerance 5e-8); T′ = %.7f",
			worst, res.AvgResponseTime)
		return res, nil
	}
	t1, err := checkTable("Table 1 digits (FCFS)", queueing.FCFS, table1Pins)
	if err != nil {
		return nil, err
	}
	if _, err := checkTable("Table 2 digits (priority)", queueing.Priority, table2Pins); err != nil {
		return nil, err
	}

	// KKT optimality at the Table 1 point.
	resid, err := core.KKTResidual(g, queueing.FCFS, t1.Rates)
	if err != nil {
		return nil, err
	}
	add("KKT conditions at the optimum", resid <= 1e-7,
		"relative marginal-cost residual %.2g (equal marginal costs, paper eq. (1))", resid)

	// Theorems 1 and 3 vs the bisection solver.
	single := &model.Group{Servers: []model.Server{
		{Size: 1, Speed: 1.6, SpecialRate: 0.48},
		{Size: 1, Speed: 1.1, SpecialRate: 0.22},
		{Size: 1, Speed: 0.7, SpecialRate: 0.07},
	}, TaskSize: 1}
	sl := 0.6 * single.MaxGenericRate()
	cf, err := core.ClosedFormFCFS(single, sl)
	if err != nil {
		return nil, err
	}
	nm, err := core.Optimize(single, sl, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		return nil, err
	}
	add("Theorem 1 closed form vs bisection", math.Abs(cf.AvgResponseTime-nm.AvgResponseTime) <= 1e-8,
		"single-blade cluster: closed form %.10f vs numeric %.10f", cf.AvgResponseTime, nm.AvgResponseTime)
	cp, err := core.ClosedFormPriority(single, sl)
	if err != nil {
		return nil, err
	}
	np, err := core.Optimize(single, sl, core.Options{Discipline: queueing.Priority})
	if err != nil {
		return nil, err
	}
	add("Theorem 3 closed form vs bisection", math.Abs(cp.AvgResponseTime-np.AvgResponseTime) <= 1e-8,
		"closed form %.10f vs numeric %.10f", cp.AvgResponseTime, np.AvgResponseTime)

	// Figure claims at reduced grid resolution.
	if err := figureChecks(r, add, opts.points()); err != nil {
		return nil, err
	}

	// Simulation validation.
	if opts.Simulate {
		if err := simChecks(add, g, lambda, t1, opts); err != nil {
			return nil, err
		}
	}

	r.Elapsed = now().Sub(start)
	return r, nil
}

// figureChecks audits the qualitative claims of the figures.
func figureChecks(r *Report, add func(string, bool, string, ...interface{}), points int) error {
	runFig := func(id string) (*experiments.FigureResult, error) {
		e, err := experiments.ByID(id)
		if err != nil {
			return nil, err
		}
		e.GridPoints = points
		return e.RunFigure()
	}

	// Figs. 4/5: larger total size wins at high load, priority above FCFS.
	f4, err := runFig("fig4")
	if err != nil {
		return err
	}
	f5, err := runFig("fig5")
	if err != nil {
		return err
	}
	last := len(f4.Grid) - 1
	sizeOrdered := true
	for si := 1; si < len(f4.Values); si++ {
		if f4.Values[si][last] >= f4.Values[si-1][last] {
			sizeOrdered = false
		}
	}
	add("Fig. 4: larger m reduces T′ at high λ′", sizeOrdered,
		"T′ at λ′=%.2f decreases across groups m=49…63: %.3f → %.3f",
		f4.Grid[last], f4.Values[0][last], f4.Values[4][last])
	prioAbove := true
	for si := range f4.Values {
		for gi := range f4.Grid {
			a, b := f4.Values[si][gi], f5.Values[si][gi]
			if !math.IsInf(a, 1) && !math.IsInf(b, 1) && b < a {
				prioAbove = false
			}
		}
	}
	add("Fig. 5 lies above Fig. 4 pointwise", prioAbove,
		"priority discipline never helps generic tasks (checked %d points)", len(f4.Grid)*len(f4.Values))

	// Figs. 12/14: heterogeneity near-neutral but favorable ordering.
	for _, id := range []string{"fig12", "fig14"} {
		f, err := runFig(id)
		if err != nil {
			return err
		}
		ordered := true
		for gi := range f.Grid {
			for si := 1; si < len(f.Values); si++ {
				if f.Values[si][gi] < f.Values[si-1][gi]-1e-9 {
					ordered = false
				}
			}
		}
		add(fmt.Sprintf("%s: more heterogeneity ⇒ (weakly) lower T′", id), ordered,
			"group ordering holds at every grid point")
	}
	return nil
}

// simChecks validates the model against the discrete-event simulator.
func simChecks(add func(string, bool, string, ...interface{}), g *model.Group, lambda float64, t1 *core.Result, opts Options) error {
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		res, err := core.Optimize(g, lambda, core.Options{Discipline: d})
		if err != nil {
			return err
		}
		disp, err := dispatch.NewProbabilistic(res.Rates)
		if err != nil {
			return err
		}
		rep, err := sim.RunReplications(sim.Config{
			Group: g, Discipline: d, GenericRate: lambda,
			Dispatcher: disp, Horizon: opts.simHorizon(), Warmup: opts.simHorizon() / 10,
			Seed: opts.Seed,
		}, opts.simReps(), 0.99)
		if err != nil {
			return err
		}
		rel := math.Abs(rep.GenericT.Mean-res.AvgResponseTime) / res.AvgResponseTime
		add(fmt.Sprintf("Simulation vs analytic T′ (%s)", d),
			rel <= 0.02 || rep.GenericT.Contains(res.AvgResponseTime),
			"simulated %.5f ± %.5f vs analytic %.5f (rel err %.3f%%)",
			rep.GenericT.Mean, rep.GenericT.HalfWidth, res.AvgResponseTime, rel*100)
	}
	// Percentile check at the Table 1 allocation.
	wantP95, err := core.GroupGenericQuantile(g, t1.Rates, 0.95)
	if err != nil {
		return err
	}
	disp, err := dispatch.NewProbabilistic(t1.Rates)
	if err != nil {
		return err
	}
	run, err := sim.Run(sim.Config{
		Group: g, Discipline: queueing.FCFS, GenericRate: lambda,
		Dispatcher: disp, Horizon: 3 * opts.simHorizon(), Warmup: opts.simHorizon() / 10,
		Seed: opts.Seed + 1,
	})
	if err != nil {
		return err
	}
	rel := math.Abs(run.GenericP95-wantP95) / wantP95
	add("Simulated P95 vs analytic sojourn quantile", rel <= 0.05,
		"simulated P95 %.4f vs mixture quantile %.4f (rel err %.2f%%)", run.GenericP95, wantP95, rel*100)
	return nil
}

// WriteMarkdown renders the audit.
func (r *Report) WriteMarkdown(w io.Writer) error {
	status := "✅ ALL CHECKS PASSED"
	if !r.Passed() {
		status = "❌ SOME CHECKS FAILED"
	}
	if _, err := fmt.Fprintf(w, "# Reproduction audit\n\n%s (%d checks, %s)\n\n", status, len(r.Checks), r.Elapsed.Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| Check | Verdict | Evidence |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|"); err != nil {
		return err
	}
	for _, c := range r.Checks {
		verdict := "✅"
		if !c.Passed {
			verdict = "❌"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s |\n", c.Name, verdict, c.Detail); err != nil {
			return err
		}
	}
	return nil
}
