package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunWithoutSimulation(t *testing.T) {
	r, err := Run(Options{Points: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		for _, c := range r.Checks {
			if !c.Passed {
				t.Errorf("check failed: %s — %s", c.Name, c.Detail)
			}
		}
	}
	// Analytical audit: 2 tables + KKT + 2 theorems + 4 figure claims.
	if len(r.Checks) != 9 {
		t.Fatalf("%d checks, want 9", len(r.Checks))
	}
	if r.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestRunWithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r, err := Run(Options{Points: 5, Simulate: true, SimHorizon: 8000, SimReps: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Checks) != 12 {
		t.Fatalf("%d checks, want 12", len(r.Checks))
	}
	if !r.Passed() {
		for _, c := range r.Checks {
			if !c.Passed {
				t.Errorf("check failed: %s — %s", c.Name, c.Detail)
			}
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	r, err := Run(Options{Points: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Reproduction audit", "ALL CHECKS PASSED", "Table 1 digits", "Theorem 3", "| ✅ |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFailedReportRenders(t *testing.T) {
	r := &Report{Checks: []Check{{Name: "x", Passed: false, Detail: "boom"}}}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SOME CHECKS FAILED") || !strings.Contains(buf.String(), "❌") {
		t.Fatalf("failure not rendered:\n%s", buf.String())
	}
	if r.Passed() {
		t.Fatal("Passed() should be false")
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}
	if o.simHorizon() != 20000 || o.simReps() != 8 || o.points() != 7 {
		t.Fatalf("defaults: %g %d %d", o.simHorizon(), o.simReps(), o.points())
	}
}
