package numeric

import (
	"fmt"
	"math"
)

// GoldenSection minimizes a unimodal function f on [a, b] and returns
// the minimizing x. It is used by tests to verify that the Lagrange
// solution found by the optimizer really is the constrained minimum of
// T′ along feasible directions, without relying on the same derivative
// code paths.
func GoldenSection(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	const invPhi = 0.6180339887498949  // (sqrt(5)-1)/2
	const invPhi2 = 0.3819660112501051 // 1 - invPhi
	x1 := a + invPhi2*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < MaxIterations; i++ {
		if b-a <= tol {
			return a + (b-a)/2, nil
		}
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = a + invPhi2*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0, ErrMaxIterations
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WithinTol reports whether a and b agree to absolute tolerance atol or
// relative tolerance rtol (whichever is looser).
func WithinTol(a, b, atol, rtol float64) bool {
	d := math.Abs(a - b)
	if d <= atol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rtol*scale
}

// CheckFinite returns an error naming what if v is NaN or ±Inf.
func CheckFinite(what string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("numeric: %s is not finite: %g", what, v)
	}
	return nil
}
