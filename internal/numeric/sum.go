package numeric

// KahanSum accumulates float64 values with Neumaier's improved
// Kahan–Babuška compensation, so that long low-magnitude tails (e.g.
// M/M/m state probabilities) do not lose precision.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if abs(k.sum) >= abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated sum.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, v := range xs {
		k.Add(v)
	}
	return k.Value()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
