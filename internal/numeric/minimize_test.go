package numeric

import (
	"math"
	"testing"
)

func TestGoldenSectionParabola(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	x, err := GoldenSection(f, 0, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3.7) > 1e-8 {
		t.Fatalf("minimizer = %g, want 3.7", x)
	}
}

func TestGoldenSectionReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return math.Cosh(x - 1) }
	x, err := GoldenSection(f, 5, -5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-7 {
		t.Fatalf("minimizer = %g, want 1", x)
	}
}

func TestGoldenSectionBoundaryMinimum(t *testing.T) {
	// Monotone increasing: the minimum is the left endpoint.
	f := func(x float64) float64 { return x }
	x, err := GoldenSection(f, 2, 9, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-8 {
		t.Fatalf("minimizer = %g, want 2", x)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestWithinTol(t *testing.T) {
	if !WithinTol(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Error("absolute tolerance should accept")
	}
	if !WithinTol(1e9, 1e9+1, 0, 1e-6) {
		t.Error("relative tolerance should accept")
	}
	if WithinTol(1, 2, 1e-9, 1e-9) {
		t.Error("should reject 1 vs 2")
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite("x", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := CheckFinite("x", math.NaN()); err == nil {
		t.Fatal("want error for NaN")
	}
	if err := CheckFinite("x", math.Inf(1)); err == nil {
		t.Fatal("want error for +Inf")
	}
}
