package numeric

import (
	"errors"
	"fmt"
	"math"
)

// DefaultTol is the default absolute tolerance used by the solvers when
// the caller passes a non-positive tolerance. It matches the "very small
// quantity" ε of the paper's algorithms.
const DefaultTol = 1e-12

// MaxIterations bounds every iterative solver in this package. The
// bisection solvers halve an interval, so even a [0, 1e300] bracket
// collapses below any representable tolerance in ~2000 steps.
const MaxIterations = 20000

// ErrNoBracket is returned when a bracketing solver is given an interval
// whose endpoints do not straddle a root.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrMaxIterations is returned when a solver fails to converge within
// MaxIterations steps.
var ErrMaxIterations = errors.New("numeric: maximum iterations exceeded")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must
// have opposite signs (an exact zero at an endpoint is accepted). The
// returned x satisfies |interval| <= tol around a sign change.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if a > b {
		a, b = b, a
	}
	fa, fb := f(a), f(b)
	if fa == 0 { //bladelint:allow floateq -- returning an endpoint early is only valid at a true zero
		return a, nil
	}
	if fb == 0 { //bladelint:allow floateq -- returning an endpoint early is only valid at a true zero
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return 0, fmt.Errorf("numeric: Bisect endpoint is NaN: f(%g)=%g f(%g)=%g", a, fa, b, fb)
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < MaxIterations; i++ {
		mid := a + (b-a)/2
		if b-a <= tol || mid == a || mid == b { //bladelint:allow floateq -- bisection fixed point: the midpoint collided with a bound
			return mid, nil
		}
		fm := f(mid)
		if fm == 0 { //bladelint:allow floateq -- returning mid early is only valid at a true zero
			return mid, nil
		}
		if (fm > 0) == (fb > 0) {
			b, fb = mid, fm
		} else {
			a, fa = mid, fm
		}
	}
	return 0, ErrMaxIterations
}

// BisectPredicate finds the boundary point of a monotone predicate on
// [a, b]: it returns x such that pred is false on [a, x) and true on
// (x, b], to within tol. pred(b) must be true; if pred(a) is already
// true the left endpoint is returned. This is the primitive the paper's
// Find_λ′ algorithm uses: pred(λ) ≡ (∂T′/∂λ′_i at λ) ≥ φ, which is
// monotone because T′ is convex in λ′_i.
func BisectPredicate(pred func(float64) bool, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if a > b {
		a, b = b, a
	}
	if pred(a) {
		return a, nil
	}
	if !pred(b) {
		return 0, fmt.Errorf("%w: predicate false at both endpoints [%g, %g]", ErrNoBracket, a, b)
	}
	for i := 0; i < MaxIterations; i++ {
		mid := a + (b-a)/2
		if b-a <= tol || mid == a || mid == b { //bladelint:allow floateq -- bisection fixed point: the midpoint collided with a bound
			return mid, nil
		}
		if pred(mid) {
			b = mid
		} else {
			a = mid
		}
	}
	return 0, ErrMaxIterations
}

// Brent finds a root of f in the bracket [a, b] using Brent's method
// (inverse quadratic interpolation with bisection fallback). It
// typically converges superlinearly and is used as an ablation and
// cross-check against Bisect.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 { //bladelint:allow floateq -- returning an endpoint early is only valid at a true zero
		return a, nil
	}
	if fb == 0 { //bladelint:allow floateq -- returning an endpoint early is only valid at a true zero
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	// Ensure |f(b)| <= |f(a)|: b is the current best estimate.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < MaxIterations; i++ {
		if fb == 0 || math.Abs(b-a) <= tol { //bladelint:allow floateq -- exact root: Brent terminates on a true zero or a closed bracket
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc { //bladelint:allow floateq -- guards exact zero denominators in the interpolation below
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return 0, ErrMaxIterations
}

// Newton finds a root of f starting at x0 using Newton's method with the
// supplied derivative df. It returns ErrMaxIterations if the iteration
// does not converge, and an error if the derivative vanishes.
func Newton(f, df func(float64) float64, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	x := x0
	for i := 0; i < MaxIterations; i++ {
		fx := f(x)
		if math.Abs(fx) <= tol {
			return x, nil
		}
		dfx := df(x)
		if dfx == 0 || math.IsNaN(dfx) || math.IsInf(dfx, 0) { //bladelint:allow floateq -- guards an exact zero divisor; near-zero slopes are caught by the step bound
			return 0, fmt.Errorf("numeric: Newton derivative unusable at x=%g: %g", x, dfx)
		}
		step := fx / dfx
		nx := x - step
		if math.Abs(nx-x) <= tol*(1+math.Abs(x)) {
			return nx, nil
		}
		x = nx
	}
	return 0, ErrMaxIterations
}

// ExpandUpper grows an upper bound ub by doubling until pred(ub) holds
// or ub exceeds cap, in which case cap (shrunk slightly inside the open
// interval, as the paper's line (7) does with (1−ε)) is returned. It
// mirrors lines (3)–(8) of Find_λ′ and lines (2)–(10) of Calculate T′.
// pred must be monotone (false then true as its argument grows).
// capShrink is the fraction retained when clamping at cap; pass 0 to use
// the default 1−1e-9.
func ExpandUpper(pred func(float64) bool, start, cap, capShrink float64) (float64, error) {
	if start <= 0 {
		start = 1e-6
	}
	if capShrink <= 0 || capShrink >= 1 {
		capShrink = 1 - 1e-9
	}
	ub := start
	for i := 0; i < MaxIterations; i++ {
		if cap > 0 && ub >= cap {
			return capShrink * cap, nil
		}
		if pred(ub) {
			return ub, nil
		}
		ub *= 2
	}
	return 0, ErrMaxIterations
}
