package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDerivativePolynomial(t *testing.T) {
	f := func(x float64) float64 { return 3*x*x - 4*x + 7 }
	want := func(x float64) float64 { return 6*x - 4 }
	for _, x := range []float64{-3, -1, 0, 0.5, 1, 2, 10} {
		got := Derivative(f, x)
		if math.Abs(got-want(x)) > 1e-6*(1+math.Abs(want(x))) {
			t.Errorf("f'(%g) = %g, want %g", x, got, want(x))
		}
	}
}

func TestDerivativeExp(t *testing.T) {
	for _, x := range []float64{0, 1, 2} {
		got := Derivative(math.Exp, x)
		want := math.Exp(x)
		if math.Abs(got-want) > 1e-7*want {
			t.Errorf("exp'(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestDerivativeStepExplicit(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	got := DerivativeStep(f, 3, 1e-5)
	if math.Abs(got-6) > 1e-5 {
		t.Fatalf("got %g, want 6", got)
	}
	// Non-positive step falls back to the automatic one.
	got = DerivativeStep(f, 3, 0)
	if math.Abs(got-6) > 1e-6 {
		t.Fatalf("got %g, want 6", got)
	}
}

func TestForwardDerivative(t *testing.T) {
	f := func(x float64) float64 { return 5 * x }
	got := ForwardDerivative(f, 0)
	if math.Abs(got-5) > 1e-6 {
		t.Fatalf("got %g, want 5", got)
	}
}

func TestSecondDerivative(t *testing.T) {
	f := func(x float64) float64 { return x * x * x }
	got := SecondDerivative(f, 2)
	if math.Abs(got-12) > 1e-3 {
		t.Fatalf("f''(2) = %g, want 12", got)
	}
}

func TestSecondDerivativeConvexityDetection(t *testing.T) {
	convex := func(x float64) float64 { return math.Exp(x) }
	if SecondDerivative(convex, 1) <= 0 {
		t.Error("exp should register as convex")
	}
	concave := func(x float64) float64 { return -x * x }
	if SecondDerivative(concave, 1) >= 0 {
		t.Error("-x^2 should register as concave")
	}
}

// Property: numerical derivative of a random quadratic matches the
// analytic derivative.
func TestDerivativeQuadraticProperty(t *testing.T) {
	prop := func(a, b, c, xSeed float64) bool {
		a = math.Mod(a, 5)
		b = math.Mod(b, 5)
		c = math.Mod(c, 5)
		x := math.Mod(xSeed, 10)
		f := func(t float64) float64 { return a*t*t + b*t + c }
		got := Derivative(f, x)
		want := 2*a*x + b
		return math.Abs(got-want) <= 1e-5*(1+math.Abs(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
