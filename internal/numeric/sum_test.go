package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumBasic(t *testing.T) {
	var k KahanSum
	for i := 0; i < 10; i++ {
		k.Add(0.1)
	}
	if math.Abs(k.Value()-1.0) > 1e-15 {
		t.Fatalf("sum = %.17g, want 1", k.Value())
	}
}

func TestKahanSumCancellation(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the tail entirely.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	got := k.Value()
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-13 {
		t.Fatalf("compensated sum = %.17g, want %.17g", got, want)
	}
	// Demonstrate the naive sum actually loses it (guards against the
	// test silently passing on a naive implementation).
	naive := 1.0
	for i := 0; i < 1_000_000; i++ {
		naive += 1e-16
	}
	if naive != 1.0 {
		t.Skip("platform FPU keeps extra precision; cancellation check not meaningful")
	}
}

func TestKahanSumNeumaierOrdering(t *testing.T) {
	// Neumaier's variant handles a large addend arriving after small
	// ones; classic Kahan fails this case.
	var k KahanSum
	k.Add(1)
	k.Add(1e100)
	k.Add(1)
	k.Add(-1e100)
	if got := k.Value(); got != 2 {
		t.Fatalf("sum = %g, want 2", got)
	}
}

func TestSumSlice(t *testing.T) {
	if got := Sum([]float64{1, 2, 3, 4.5}); got != 10.5 {
		t.Fatalf("got %g", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("empty sum = %g, want 0", got)
	}
}

func TestKahanReset(t *testing.T) {
	var k KahanSum
	k.Add(5)
	k.Reset()
	if k.Value() != 0 {
		t.Fatalf("after reset: %g", k.Value())
	}
}

// Property: Kahan sum of shuffled values equals (to 1 ulp-ish) the sum
// in sorted order.
func TestKahanPermutationInvarianceProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0]
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(v, 1e6))
			}
		}
		fwd := Sum(clean)
		rev := make([]float64, len(clean))
		for i, v := range clean {
			rev[len(clean)-1-i] = v
		}
		bwd := Sum(rev)
		return WithinTol(fwd, bwd, 1e-9, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
