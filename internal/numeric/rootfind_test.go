package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	f := func(x float64) float64 { return 2*x - 3 }
	x, err := Bisect(f, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.5) > 1e-11 {
		t.Fatalf("root = %g, want 1.5", x)
	}
}

func TestBisectCubic(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 2*x - 5 }
	x, err := Bisect(f, 2, 3, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	// Classic Wallis cubic root.
	if math.Abs(x-2.0945514815423265) > 1e-11 {
		t.Fatalf("root = %.16g", x)
	}
}

func TestBisectReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	x, err := Bisect(f, 5, -5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-11 {
		t.Fatalf("root = %g, want 1", x)
	}
}

func TestBisectExactEndpoint(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, err := Bisect(f, 0, 1, 1e-12)
	if err != nil || x != 0 {
		t.Fatalf("x=%g err=%v, want 0, nil", x, err)
	}
	x, err = Bisect(f, -1, 0, 1e-12)
	if err != nil || x != 0 {
		t.Fatalf("x=%g err=%v, want 0, nil", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	_, err := Bisect(f, -1, 1, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectNaNEndpoint(t *testing.T) {
	f := func(x float64) float64 { return math.NaN() }
	if _, err := Bisect(f, 0, 1, 1e-12); err == nil {
		t.Fatal("want error for NaN endpoint")
	}
}

func TestBisectDefaultTol(t *testing.T) {
	f := func(x float64) float64 { return x - math.Pi }
	x, err := Bisect(f, 0, 10, 0) // 0 → DefaultTol
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Pi) > 1e-10 {
		t.Fatalf("root = %g", x)
	}
}

func TestBisectPredicate(t *testing.T) {
	// Boundary at x = 4.25.
	pred := func(x float64) bool { return x >= 4.25 }
	x, err := BisectPredicate(pred, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-4.25) > 1e-10 {
		t.Fatalf("boundary = %g, want 4.25", x)
	}
}

func TestBisectPredicateTrueAtLeft(t *testing.T) {
	pred := func(x float64) bool { return true }
	x, err := BisectPredicate(pred, 2, 10, 1e-12)
	if err != nil || x != 2 {
		t.Fatalf("x=%g err=%v, want left endpoint 2", x, err)
	}
}

func TestBisectPredicateFalseEverywhere(t *testing.T) {
	pred := func(x float64) bool { return false }
	if _, err := BisectPredicate(pred, 0, 1, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	fns := []func(float64) float64{
		func(x float64) float64 { return math.Exp(x) - 5 },
		func(x float64) float64 { return x*x*x - 2*x - 5 },
		func(x float64) float64 { return math.Cos(x) - x },
	}
	brackets := [][2]float64{{0, 5}, {1, 4}, {0, 2}}
	for i, f := range fns {
		a, b := brackets[i][0], brackets[i][1]
		xb, err := Bisect(f, a, b, 1e-13)
		if err != nil {
			t.Fatalf("fn %d bisect: %v", i, err)
		}
		xr, err := Brent(f, a, b, 1e-13)
		if err != nil {
			t.Fatalf("fn %d brent: %v", i, err)
		}
		if math.Abs(xb-xr) > 1e-9 {
			t.Fatalf("fn %d: bisect %.15g vs brent %.15g", i, xb, xr)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Brent(f, -1, 1, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentExactEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x - 2 }
	if x, err := Brent(f, 2, 5, 1e-12); err != nil || x != 2 {
		t.Fatalf("x=%g err=%v", x, err)
	}
	if x, err := Brent(f, 0, 2, 1e-12); err != nil || x != 2 {
		t.Fatalf("x=%g err=%v", x, err)
	}
}

func TestNewtonQuadratic(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	df := func(x float64) float64 { return 2 * x }
	x, err := Newton(f, df, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-12 {
		t.Fatalf("root = %.16g, want sqrt(2)", x)
	}
}

func TestNewtonZeroDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 0 }
	if _, err := Newton(f, df, 1, 1e-12); err == nil {
		t.Fatal("want error for zero derivative")
	}
}

func TestExpandUpperFindsBound(t *testing.T) {
	pred := func(x float64) bool { return x >= 37 }
	ub, err := ExpandUpper(pred, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(ub) {
		t.Fatalf("ub = %g does not satisfy predicate", ub)
	}
	if ub > 64 {
		t.Fatalf("ub = %g, doubling from 1 should stop at 64", ub)
	}
}

func TestExpandUpperClampsAtCap(t *testing.T) {
	pred := func(x float64) bool { return false } // never satisfied
	ub, err := ExpandUpper(pred, 1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ub >= 10 || ub < 9.9 {
		t.Fatalf("ub = %g, want just under cap 10", ub)
	}
}

func TestExpandUpperDefaultStart(t *testing.T) {
	pred := func(x float64) bool { return x > 0.5 }
	ub, err := ExpandUpper(pred, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(ub) {
		t.Fatalf("ub = %g", ub)
	}
}

// Property: for any monotone-increasing affine function crossing zero in
// the interval, Bisect recovers the root within tolerance.
func TestBisectAffineProperty(t *testing.T) {
	prop := func(slope, rootSeed float64) bool {
		s := 0.1 + math.Mod(math.Abs(slope), 10) // slope in (0.1, 10.1)
		r := math.Mod(rootSeed, 100)             // root in (-100, 100)
		f := func(x float64) float64 { return s * (x - r) }
		x, err := Bisect(f, r-150, r+150, 1e-10)
		return err == nil && math.Abs(x-r) <= 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BisectPredicate and Bisect agree on monotone functions
// (pred(x) ≡ f(x) ≥ 0).
func TestPredicateAgreesWithSignProperty(t *testing.T) {
	prop := func(rootSeed float64) bool {
		r := math.Mod(rootSeed, 50)
		f := func(x float64) float64 { return x - r }
		x1, err1 := Bisect(f, r-60, r+60, 1e-10)
		x2, err2 := BisectPredicate(func(x float64) bool { return f(x) >= 0 }, r-60, r+60, 1e-10)
		return err1 == nil && err2 == nil && math.Abs(x1-x2) <= 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
