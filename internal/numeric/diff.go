package numeric

import "math"

// Derivative returns the central-difference approximation of f′(x) with
// an automatically chosen step. It is used in tests and ablations to
// cross-check the paper's analytic derivatives; the optimizer itself
// uses the closed-form expressions.
func Derivative(f func(float64) float64, x float64) float64 {
	h := stepFor(x)
	return (f(x+h) - f(x-h)) / (2 * h)
}

// DerivativeStep is Derivative with an explicit step size h > 0.
func DerivativeStep(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = stepFor(x)
	}
	return (f(x+h) - f(x-h)) / (2 * h)
}

// ForwardDerivative returns the one-sided forward-difference
// approximation of f′(x), for use at the left edge of a domain (e.g.
// λ′ = 0 where the response time is undefined for negative rates).
func ForwardDerivative(f func(float64) float64, x float64) float64 {
	h := stepFor(x)
	return (f(x+h) - f(x)) / h
}

// SecondDerivative returns the central-difference approximation of
// f″(x). Tests use it to verify convexity claims.
func SecondDerivative(f func(float64) float64, x float64) float64 {
	h := math.Sqrt(stepFor(x)) // wider step: second differences amplify noise
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// stepFor picks a finite-difference step proportional to cbrt(eps)
// scaled by |x|, the standard balance between truncation and round-off
// error for central differences.
func stepFor(x float64) float64 {
	const cbrtEps = 6.055454452393343e-6 // cbrt(2^-52)
	scale := math.Abs(x)
	if scale < 1 {
		scale = 1
	}
	return cbrtEps * scale
}
