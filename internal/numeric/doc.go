// Package numeric provides the small numerical substrate the optimizer
// is built on: scalar root finding (bisection, Brent, Newton), numerical
// differentiation, one-dimensional minimization, and compensated
// summation.
//
// The paper's algorithms (Figs. 2 and 3) only require bisection on
// monotone functions; the other solvers exist as independent
// cross-checks and as ablation subjects (see DESIGN.md §6). Everything
// here is dependency-free and uses float64 throughout.
package numeric
