// Package failure models server availability: per-server alternating
// up/down renewal processes with exponential time-to-failure (MTBF) and
// time-to-repair (MTTR), seeded schedule generation for the simulator,
// and the steady-state availability and effective-capacity formulas the
// degraded-mode optimizer and the chaos harness rely on.
//
// The paper assumes every blade server is permanently up; this package
// is the repo's answer to what happens when that assumption breaks. A
// two-state Markov process with failure rate 1/MTBF and repair rate
// 1/MTTR has steady-state availability
//
//	A = MTBF / (MTBF + MTTR),
//
// so a server of capacity m·s/r̄ delivers only A·m·s/r̄ in the long run.
// Schedules generated here are deterministic given a seed, which makes
// chaos scenarios reproducible and lets static and re-optimizing
// dispatchers be compared under the identical failure trace.
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params describes the failure behaviour of one server (or one blade).
// The zero value means "never fails".
type Params struct {
	// MTBF is the mean time between failures (mean up period). Must be
	// positive when the process is enabled.
	MTBF float64
	// MTTR is the mean time to repair (mean down period). Must be
	// positive when the process is enabled.
	MTTR float64
	// Blades, when positive, limits each failure to that many blades of
	// the station instead of taking the whole station down. Zero means
	// whole-station failures.
	Blades int
}

// Enabled reports whether the process generates any failures at all.
func (p Params) Enabled() bool { return p.MTBF > 0 || p.MTTR > 0 }

// Validate checks the parameters. The zero value is valid (no failures).
func (p Params) Validate() error {
	if !p.Enabled() {
		if p.Blades != 0 {
			return fmt.Errorf("failure: blades %d without mtbf/mttr", p.Blades)
		}
		return nil
	}
	if p.MTBF <= 0 || math.IsNaN(p.MTBF) || math.IsInf(p.MTBF, 0) {
		return fmt.Errorf("failure: mtbf %g must be positive and finite", p.MTBF)
	}
	if p.MTTR <= 0 || math.IsNaN(p.MTTR) || math.IsInf(p.MTTR, 0) {
		return fmt.Errorf("failure: mttr %g must be positive and finite", p.MTTR)
	}
	if p.Blades < 0 {
		return fmt.Errorf("failure: blades %d must be non-negative", p.Blades)
	}
	return nil
}

// Availability returns the steady-state fraction of time the process is
// up: MTBF/(MTBF+MTTR). A disabled process is always up.
func (p Params) Availability() float64 {
	if !p.Enabled() {
		return 1
	}
	return p.MTBF / (p.MTBF + p.MTTR)
}

// Transition is one point of a failure schedule: at Time, the station
// has Down blades unavailable (0 = fully healthy; ≥ m = fully down).
type Transition struct {
	Time float64
	Down int
}

// Schedule is the failure trace of one station over a horizon: a
// time-ordered list of transitions, starting implicitly from a fully-up
// state at time 0.
type Schedule []Transition

// Validate checks ordering and non-negativity.
func (sch Schedule) Validate() error {
	prev := 0.0
	for i, tr := range sch {
		if math.IsNaN(tr.Time) || tr.Time < 0 {
			return fmt.Errorf("failure: transition %d at invalid time %g", i, tr.Time)
		}
		if tr.Time < prev {
			return fmt.Errorf("failure: transition %d at %g before predecessor %g", i, tr.Time, prev)
		}
		if tr.Down < 0 {
			return fmt.Errorf("failure: transition %d has negative down count %d", i, tr.Down)
		}
		prev = tr.Time
	}
	return nil
}

// DownAt returns the number of blades down at time t under the schedule
// (0 before the first transition).
func (sch Schedule) DownAt(t float64) int {
	// First transition strictly after t; state is the one before it.
	i := sort.Search(len(sch), func(i int) bool { return sch[i].Time > t })
	if i == 0 {
		return 0
	}
	return sch[i-1].Down
}

// FractionDownAt returns the fraction of a station of m blades that is
// down at time t — the bridge from seeded schedules to fault-injection
// intensity: 1 means the station is blacked out, an intermediate value
// degrades it proportionally (the injector maps it to an error rate).
func (sch Schedule) FractionDownAt(t float64, m int) float64 {
	if m < 1 {
		return 0
	}
	d := sch.DownAt(t)
	if d >= m {
		return 1
	}
	if d <= 0 {
		return 0
	}
	return float64(d) / float64(m)
}

// Downtime returns the total time in [0, horizon] during which at least
// `threshold` blades are down. With threshold = m this is full-station
// downtime.
func (sch Schedule) Downtime(horizon float64, threshold int) float64 {
	if horizon <= 0 || threshold <= 0 {
		return 0
	}
	total := 0.0
	down := 0
	last := 0.0
	for _, tr := range sch {
		t := math.Min(tr.Time, horizon)
		if t > last && down >= threshold {
			total += t - last
		}
		if tr.Time >= horizon {
			return total
		}
		down = tr.Down
		last = t
	}
	if down >= threshold && horizon > last {
		total += horizon - last
	}
	return total
}

// Generate draws a seeded up/down schedule for a station of m blades
// over [0, horizon]. Whole-station params (Blades == 0) alternate
// exponential up periods of mean MTBF with down periods of mean MTTR
// taking all m blades out. With Blades = k ∈ (0, m), each failure takes
// min(k, available) additional blades down; repairs restore the same
// batch, so overlapping batch failures stack up to m.
func Generate(p Params, m int, horizon float64, rng *rand.Rand) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("failure: station size %d must be ≥ 1", m)
	}
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("failure: horizon %g must be positive and finite", horizon)
	}
	if !p.Enabled() {
		return nil, nil
	}
	batch := p.Blades
	if batch <= 0 || batch > m {
		batch = m
	}
	// Event-driven generation: one failure clock (exp MTBF) while any
	// blade is still up, plus one repair clock (exp MTTR) per failed
	// batch. This keeps the whole-station case exactly the alternating
	// renewal process whose availability is MTBF/(MTBF+MTTR).
	var sch Schedule
	down := 0
	t := 0.0
	var repairs []float64 // pending repair completion times, sorted asc
	for t < horizon {
		var next float64
		if down < m {
			next = t + rng.ExpFloat64()*p.MTBF
		} else {
			next = math.Inf(1)
		}
		if len(repairs) > 0 && repairs[0] < next {
			t = repairs[0]
			repairs = repairs[1:]
			down -= batch
			if down < 0 {
				down = 0
			}
		} else {
			if math.IsInf(next, 1) {
				break
			}
			t = next
			if t >= horizon {
				break
			}
			take := batch
			if down+take > m {
				take = m - down
			}
			down += take
			at := t + rng.ExpFloat64()*p.MTTR
			i := sort.SearchFloat64s(repairs, at)
			repairs = append(repairs, 0)
			copy(repairs[i+1:], repairs[i:])
			repairs[i] = at
		}
		if t >= horizon {
			break
		}
		sch = append(sch, Transition{Time: t, Down: down})
	}
	return sch, nil
}

// Plan bundles per-station failure behaviour for a group of n stations.
type Plan struct {
	// Stations holds one Params per station, aligned with the group's
	// server order. Zero values never fail.
	Stations []Params
}

// Validate checks every station's parameters.
func (pl *Plan) Validate() error {
	for i, p := range pl.Stations {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("station %d: %w", i+1, err)
		}
	}
	return nil
}

// Enabled reports whether any station can fail.
func (pl *Plan) Enabled() bool {
	if pl == nil {
		return false
	}
	for _, p := range pl.Stations {
		if p.Enabled() {
			return true
		}
	}
	return false
}

// Availabilities returns the steady-state availability of each station.
func (pl *Plan) Availabilities() []float64 {
	out := make([]float64, len(pl.Stations))
	for i, p := range pl.Stations {
		out[i] = p.Availability()
	}
	return out
}

// GenerateAll draws one seeded schedule per station; sizes[i] is the
// blade count m_i of station i.
func (pl *Plan) GenerateAll(sizes []int, horizon float64, seed int64) ([]Schedule, error) {
	if len(sizes) != len(pl.Stations) {
		return nil, fmt.Errorf("failure: %d sizes for %d stations", len(sizes), len(pl.Stations))
	}
	out := make([]Schedule, len(pl.Stations))
	for i, p := range pl.Stations {
		// One independent substream per station so adding a station
		// does not perturb the others' traces.
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		sch, err := Generate(p, sizes[i], horizon, rng)
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", i+1, err)
		}
		out[i] = sch
	}
	return out, nil
}

// EffectiveCapacity returns the availability-weighted capacity
// Σ A_i·m_i·s_i/r̄ of a group with per-station speeds and sizes — the
// long-run throughput ceiling under the failure plan.
func (pl *Plan) EffectiveCapacity(sizes []int, speeds []float64, taskSize float64) (float64, error) {
	if len(sizes) != len(pl.Stations) || len(speeds) != len(pl.Stations) {
		return 0, fmt.Errorf("failure: sizes/speeds length mismatch with %d stations", len(pl.Stations))
	}
	if taskSize <= 0 || math.IsNaN(taskSize) || math.IsInf(taskSize, 0) {
		return 0, fmt.Errorf("failure: task size %g must be positive and finite", taskSize)
	}
	total := 0.0
	for i, p := range pl.Stations {
		total += p.Availability() * float64(sizes[i]) * speeds[i] / taskSize
	}
	return total, nil
}
