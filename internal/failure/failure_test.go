package failure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{}, true},
		{Params{MTBF: 100, MTTR: 5}, true},
		{Params{MTBF: 100, MTTR: 5, Blades: 2}, true},
		{Params{MTBF: -1, MTTR: 5}, false},
		{Params{MTBF: 100, MTTR: 0}, false},
		{Params{MTBF: 0, MTTR: 5}, false},
		{Params{MTBF: math.NaN(), MTTR: 5}, false},
		{Params{MTBF: 100, MTTR: math.Inf(1)}, false},
		{Params{MTBF: 100, MTTR: 5, Blades: -1}, false},
		{Params{Blades: 2}, false},
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestAvailabilityFormula(t *testing.T) {
	p := Params{MTBF: 90, MTTR: 10}
	if got := p.Availability(); math.Abs(got-0.9) > 1e-15 {
		t.Errorf("availability = %g, want 0.9", got)
	}
	if got := (Params{}).Availability(); got != 1 {
		t.Errorf("disabled availability = %g, want 1", got)
	}
}

func TestScheduleDownAtAndDowntime(t *testing.T) {
	sch := Schedule{{Time: 10, Down: 4}, {Time: 15, Down: 0}, {Time: 30, Down: 2}}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		down int
	}{{0, 0}, {9.99, 0}, {10, 4}, {12, 4}, {15, 0}, {29, 0}, {30, 2}, {100, 2}}
	for _, c := range cases {
		if got := sch.DownAt(c.t); got != c.down {
			t.Errorf("DownAt(%g) = %d, want %d", c.t, got, c.down)
		}
	}
	// Fully down (threshold 4) during [10, 15): 5 units.
	if got := sch.Downtime(40, 4); math.Abs(got-5) > 1e-12 {
		t.Errorf("Downtime(40, 4) = %g, want 5", got)
	}
	// Any blade down (threshold 1): [10,15) ∪ [30,40) = 15 units.
	if got := sch.Downtime(40, 1); math.Abs(got-15) > 1e-12 {
		t.Errorf("Downtime(40, 1) = %g, want 15", got)
	}
	// Horizon cuts the open-ended tail.
	if got := sch.Downtime(35, 1); math.Abs(got-10) > 1e-12 {
		t.Errorf("Downtime(35, 1) = %g, want 10", got)
	}
}

func TestFractionDownAt(t *testing.T) {
	sch := Schedule{{Time: 10, Down: 2}, {Time: 20, Down: 4}, {Time: 30, Down: 0}}
	cases := []struct {
		t    float64
		m    int
		want float64
	}{
		{5, 4, 0},    // before any failure
		{15, 4, 0.5}, // 2 of 4 blades down
		{25, 4, 1},   // fully down
		{25, 2, 1},   // down count beyond m clamps to 1
		{35, 4, 0},   // repaired
		{15, 0, 0},   // degenerate station size
		{15, -1, 0},
	}
	for _, c := range cases {
		if got := sch.FractionDownAt(c.t, c.m); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("FractionDownAt(%g, %d) = %g, want %g", c.t, c.m, got, c.want)
		}
	}
	// The empty schedule (a never-failing station) is always fully up.
	if got := (Schedule)(nil).FractionDownAt(100, 4); got != 0 {
		t.Errorf("nil schedule FractionDownAt = %g, want 0", got)
	}
}

func TestScheduleValidateRejectsDisorder(t *testing.T) {
	if err := (Schedule{{Time: 5, Down: 1}, {Time: 4, Down: 0}}).Validate(); err == nil {
		t.Error("out-of-order schedule should fail")
	}
	if err := (Schedule{{Time: math.NaN(), Down: 1}}).Validate(); err == nil {
		t.Error("NaN time should fail")
	}
	if err := (Schedule{{Time: 1, Down: -1}}).Validate(); err == nil {
		t.Error("negative down count should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{MTBF: 50, MTTR: 10}
	a, err := Generate(p, 4, 1000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 4, 1000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("expected some failures over 20 MTBFs")
	}
}

func TestGenerateWholeStationAlternates(t *testing.T) {
	sch, err := Generate(Params{MTBF: 20, MTTR: 5}, 8, 500, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range sch {
		want := 0
		if i%2 == 0 {
			want = 8
		}
		if tr.Down != want {
			t.Fatalf("transition %d: down = %d, want %d (whole-station schedules alternate m, 0)", i, tr.Down, want)
		}
	}
}

func TestGeneratePartialBladesBounded(t *testing.T) {
	sch, err := Generate(Params{MTBF: 5, MTTR: 20, Blades: 3}, 8, 2000, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	sawPartial, sawStacked := false, false
	for _, tr := range sch {
		if tr.Down < 0 || tr.Down > 8 {
			t.Fatalf("down count %d outside [0, 8]", tr.Down)
		}
		if tr.Down > 0 && tr.Down < 8 {
			sawPartial = true
		}
		if tr.Down > 3 {
			sawStacked = true
		}
	}
	if !sawPartial || !sawStacked {
		t.Errorf("expected partial (got %v) and stacked (got %v) failures with MTTR ≫ MTBF", sawPartial, sawStacked)
	}
}

// TestAvailabilityOracle validates the generated schedules against the
// analytic two-state formula, in the style of the birth–death
// cross-checks in internal/queueing: over independent replications the
// measured uptime fraction must bracket MTBF/(MTBF+MTTR) within a 99%
// confidence interval.
func TestAvailabilityOracle(t *testing.T) {
	p := Params{MTBF: 80, MTTR: 20}
	want := p.Availability() // 0.8
	const (
		m       = 4
		horizon = 5000.0
		reps    = 40
	)
	var avail metrics.Welford
	for r := 0; r < reps; r++ {
		sch, err := Generate(p, m, horizon, rand.New(rand.NewSource(100+int64(r))))
		if err != nil {
			t.Fatal(err)
		}
		avail.Add(1 - sch.Downtime(horizon, m)/horizon)
	}
	iv, err := metrics.ConfidenceInterval(&avail, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(want) {
		t.Errorf("simulated availability %v does not cover analytic %g", iv, want)
	}
	// The interval must also be tight enough to mean something.
	if iv.HalfWidth > 0.05 {
		t.Errorf("interval %v too wide to validate anything", iv)
	}
}

func TestPlanGenerateAllAndEffectiveCapacity(t *testing.T) {
	pl := &Plan{Stations: []Params{{}, {MTBF: 90, MTTR: 10}}}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !pl.Enabled() {
		t.Error("plan with one failing station should be enabled")
	}
	scheds, err := pl.GenerateAll([]int{2, 4}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scheds[0] != nil {
		t.Error("never-failing station should have a nil schedule")
	}
	if len(scheds[1]) == 0 {
		t.Error("failing station should have transitions")
	}
	// Determinism across calls.
	again, err := pl.GenerateAll([]int{2, 4}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again[1]) != len(scheds[1]) {
		t.Error("GenerateAll not deterministic for fixed seed")
	}
	// Capacity: 2·1/1 + 0.9·4·2/1 = 9.2.
	cap, err := pl.EffectiveCapacity([]int{2, 4}, []float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-9.2) > 1e-12 {
		t.Errorf("effective capacity = %g, want 9.2", cap)
	}
	if _, err := pl.EffectiveCapacity([]int{2}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if !(&Plan{Stations: []Params{{}, {}}}).Enabled() == false {
		t.Error("all-zero plan should be disabled")
	}
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan should be disabled")
	}
}
