package plan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
)

func TestMaxAdmissibleRatePercentile(t *testing.T) {
	g := model.LiExample1Group()
	const p, sla = 0.95, 2.5
	lim, err := MaxAdmissibleRatePercentile(g, p, sla)
	if err != nil {
		t.Fatal(err)
	}
	if lim <= 0 || lim >= g.MaxGenericRate() {
		t.Fatalf("limit %g out of range", lim)
	}
	// At the limit, the optimal allocation's P95 sits at the SLA.
	res, err := core.Optimize(g, lim, core.Options{Discipline: queueing.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.GroupGenericQuantile(g, res.Rates, p)
	if err != nil {
		t.Fatal(err)
	}
	if q > sla*1.001 || q < sla*0.99 {
		t.Fatalf("P95 at the limit = %.4f, want ≈ %.2f", q, sla)
	}
	// Percentile SLAs are tighter than mean SLAs at the same number.
	meanLim, err := MaxAdmissibleRate(g, queueing.FCFS, sla)
	if err != nil {
		t.Fatal(err)
	}
	if lim >= meanLim {
		t.Fatalf("P95 limit %g should be below mean-SLA limit %g", lim, meanLim)
	}
}

func TestMaxAdmissibleRatePercentileValidation(t *testing.T) {
	g := model.LiExample1Group()
	if _, err := MaxAdmissibleRatePercentile(g, 0, 1); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := MaxAdmissibleRatePercentile(g, 1, 1); err == nil {
		t.Error("p=1 should fail")
	}
	if _, err := MaxAdmissibleRatePercentile(g, 0.95, 0); err == nil {
		t.Error("zero SLA should fail")
	}
	// Floor: even an idle system's P95 exceeds a tiny SLA.
	if _, err := MaxAdmissibleRatePercentile(g, 0.95, 0.2); err == nil {
		t.Error("impossible percentile SLA should fail")
	}
	if _, err := MaxAdmissibleRatePercentile(&model.Group{TaskSize: 1}, 0.95, 1); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestMaxAdmissibleRatePercentileLooseSLA(t *testing.T) {
	g := model.LiExample1Group()
	lim, err := MaxAdmissibleRatePercentile(g, 0.5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if lim < 0.999*g.MaxGenericRate() {
		t.Fatalf("loose SLA limit %g, want ≈ saturation", lim)
	}
}
