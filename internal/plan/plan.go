// Package plan answers the capacity-planning questions a cloud
// provider asks on top of the paper's model: how much generic load can
// this group admit under a response-time SLA, and how much hardware
// must be added to meet an SLA at a given load. All answers evaluate
// the *optimally distributed* system (core.Optimize), because the SLA
// frontier of a well-run data center is the frontier of the optimal
// policy, not of an arbitrary one.
package plan

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

// solveOpts normalizes caller options for planning probes: every probe
// only consumes T′ (and φ for warm starts), so a sparse solve can skip
// the dense result slices entirely — at fleet scale that is what keeps
// a bisection from materializing an n-wide vector per probe.
func solveOpts(opts core.Options) core.Options {
	if opts.Sparse {
		opts.CompactResult = true
	}
	return opts
}

// minResponseTime returns the optimal T′ at load lambda, or +Inf when
// the load is infeasible. opts carries the discipline and, for
// fleet-scale groups, the sparse solve path.
func minResponseTime(g *model.Group, lambda float64, opts core.Options) (float64, error) {
	res, err := core.Optimize(g, lambda, solveOpts(opts))
	if err != nil {
		return math.Inf(1), err
	}
	return res.AvgResponseTime, nil
}

// minPossibleT returns the T′ floor of the group: the optimal T′ as
// λ′ → 0, which is the response time when every task can pick freely
// among the preloaded servers. No SLA below this is achievable.
func minPossibleT(g *model.Group, opts core.Options) (float64, error) {
	lambda := 1e-6 * g.MaxGenericRate()
	return minResponseTime(g, lambda, opts)
}

// MaxAdmissibleRate returns the largest total generic rate λ′ whose
// *optimal* distribution still meets T′ ≤ slaT — the admission-control
// limit of the group. The optimal T′ is continuous and increasing in
// λ′ (verified by tests), so the frontier is found by bisection. An
// error is returned if even a vanishing load violates the SLA.
//
// Each bisection probe re-solves the full optimization; the probes are
// warm-started by chaining the previous probe's Lagrange multiplier
// into core.Options.WarmPhi, which skips most of the φ-bracket
// expansion (tests pin that the warm path returns the bit-identical
// frontier of the cold path).
func MaxAdmissibleRate(g *model.Group, d queueing.Discipline, slaT float64) (float64, error) {
	return maxAdmissibleRate(g, slaT, core.Options{Discipline: d}, true)
}

// MaxAdmissibleRateOpts is MaxAdmissibleRate with full solver options:
// the discipline rides in opts.Discipline, and Sparse/Parallel select
// the fleet-scale solve path for every bisection probe (each probe then
// touches only the active classes and never materializes a dense rate
// vector).
func MaxAdmissibleRateOpts(g *model.Group, slaT float64, opts core.Options) (float64, error) {
	return maxAdmissibleRate(g, slaT, opts, true)
}

// maxAdmissibleRate is MaxAdmissibleRate with the warm start
// switchable, so tests can compare the warm path against the cold one.
func maxAdmissibleRate(g *model.Group, slaT float64, opts core.Options, warmStart bool) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if slaT <= 0 || math.IsNaN(slaT) {
		return 0, fmt.Errorf("plan: SLA %g must be positive", slaT)
	}
	floor, err := minPossibleT(g, opts)
	if err != nil {
		return 0, err
	}
	if floor > slaT {
		return 0, fmt.Errorf("plan: SLA %g below the group's floor %g — no load is admissible", slaT, floor)
	}
	max := g.MaxGenericRate()
	// meetsSLA is monotone (true then false as λ′ grows); bisect the
	// boundary. The top of the bracket always violates the SLA since
	// T′ → ∞ at saturation.
	var warmPhi float64
	violates := func(lambda float64) bool {
		probe := solveOpts(opts)
		if warmStart {
			probe.WarmPhi = warmPhi
		}
		res, err := core.Optimize(g, lambda, probe)
		if err != nil {
			return true
		}
		if warmStart {
			warmPhi = res.Phi
		}
		return res.AvgResponseTime > slaT
	}
	lo := 1e-6 * max
	hi := (1 - 1e-9) * max
	if !violates(hi) {
		return hi, nil // SLA loose enough that saturation bounds first
	}
	boundary, err := numeric.BisectPredicate(violates, lo, hi, 1e-9*max)
	if err != nil {
		return 0, fmt.Errorf("plan: admission search failed: %w", err)
	}
	return boundary, nil
}

// MaxAdmissibleRatePercentile is MaxAdmissibleRate for a percentile
// SLA: the largest λ′ whose optimal FCFS distribution keeps the
// p-quantile of the generic response time at or below slaT ("p of
// generic tasks finish within slaT"). Only FCFS is supported, because
// the priority discipline has no closed-form response distribution.
func MaxAdmissibleRatePercentile(g *model.Group, p, slaT float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if slaT <= 0 || math.IsNaN(slaT) {
		return 0, fmt.Errorf("plan: SLA %g must be positive", slaT)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("plan: percentile %g must be in (0, 1)", p)
	}
	max := g.MaxGenericRate()
	quantileAt := func(lambda float64) (float64, error) {
		res, err := core.Optimize(g, lambda, core.Options{Discipline: queueing.FCFS})
		if err != nil {
			return 0, err
		}
		return core.GroupGenericQuantile(g, res.Rates, p)
	}
	lo := 1e-6 * max
	if q, err := quantileAt(lo); err != nil {
		return 0, err
	} else if q > slaT {
		return 0, fmt.Errorf("plan: percentile SLA %g below the group's floor %g", slaT, q)
	}
	violates := func(lambda float64) bool {
		q, err := quantileAt(lambda)
		return err != nil || q > slaT
	}
	hi := (1 - 1e-9) * max
	if !violates(hi) {
		return hi, nil
	}
	boundary, err := numeric.BisectPredicate(violates, lo, hi, 1e-8*max)
	if err != nil {
		return 0, fmt.Errorf("plan: percentile admission search failed: %w", err)
	}
	return boundary, nil
}

// BladePlacement describes one blade added by PlanBlades.
type BladePlacement struct {
	// Server is the index (0-based) that received the blade.
	Server int
	// ResponseTime is the optimal T′ after adding it.
	ResponseTime float64
}

// PlanBlades finds a minimal-length greedy sequence of single-blade
// additions that brings the optimal T′ at load lambda under slaT. Each
// step adds one blade to the server where it helps most (greedy
// steepest descent on T′). maxBlades bounds the search. The returned
// group is the expanded system; the original is not modified.
func PlanBlades(g *model.Group, d queueing.Discipline, lambda, slaT float64, maxBlades int) (*model.Group, []BladePlacement, error) {
	return PlanBladesOpts(g, lambda, slaT, maxBlades, core.Options{Discipline: d})
}

// PlanBladesOpts is PlanBlades with full solver options (see
// MaxAdmissibleRateOpts). At fleet scale each greedy step evaluates n
// candidate groups, so routing the probes through the sparse path is
// what keeps the search tractable.
func PlanBladesOpts(g *model.Group, lambda, slaT float64, maxBlades int, opts core.Options) (*model.Group, []BladePlacement, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if slaT <= 0 || math.IsNaN(slaT) {
		return nil, nil, fmt.Errorf("plan: SLA %g must be positive", slaT)
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, nil, fmt.Errorf("plan: load %g must be positive", lambda)
	}
	if maxBlades < 0 {
		return nil, nil, fmt.Errorf("plan: maxBlades %d must be non-negative", maxBlades)
	}
	cur := g.Clone()
	var placements []BladePlacement

	evaluate := func(grp *model.Group) float64 {
		if lambda >= grp.MaxGenericRate() {
			return math.Inf(1)
		}
		t, err := minResponseTime(grp, lambda, opts)
		if err != nil {
			return math.Inf(1)
		}
		return t
	}

	t := evaluate(cur)
	if t <= slaT {
		return cur, placements, nil // already compliant
	}
	for len(placements) < maxBlades {
		bestIdx := -1
		bestT := math.Inf(1)
		for i := range cur.Servers {
			trial := cur.Clone()
			trial.Servers[i].Size++
			if tt := evaluate(trial); tt < bestT {
				bestT, bestIdx = tt, i
			}
		}
		if bestIdx < 0 || math.IsInf(bestT, 1) {
			// Still saturated whatever single blade we add: grow raw
			// capacity fastest (the highest-speed server) until the
			// load becomes feasible, then resume steepest descent.
			for i := range cur.Servers {
				if bestIdx < 0 || cur.Servers[i].Speed > cur.Servers[bestIdx].Speed {
					bestIdx = i
				}
			}
		}
		cur.Servers[bestIdx].Size++
		placements = append(placements, BladePlacement{Server: bestIdx, ResponseTime: bestT})
		if bestT <= slaT {
			return cur, placements, nil
		}
	}
	return nil, placements, fmt.Errorf("plan: SLA %g not reachable within %d added blades (T′ = %g)",
		slaT, maxBlades, evaluate(cur))
}

// MinSpeedScale returns the smallest uniform speed multiplier k ≥ 1
// such that scaling every blade speed by k (and the special rates with
// them, preserving the preload utilization, as a hardware refresh
// does) meets T′ ≤ slaT at load lambda. Returns 1 if the group already
// complies, and an error if even maxScale does not help.
func MinSpeedScale(g *model.Group, d queueing.Discipline, lambda, slaT, maxScale float64) (float64, error) {
	return MinSpeedScaleOpts(g, lambda, slaT, maxScale, core.Options{Discipline: d})
}

// MinSpeedScaleOpts is MinSpeedScale with full solver options (see
// MaxAdmissibleRateOpts).
func MinSpeedScaleOpts(g *model.Group, lambda, slaT, maxScale float64, opts core.Options) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if slaT <= 0 || lambda <= 0 || math.IsNaN(slaT) || math.IsNaN(lambda) {
		return 0, fmt.Errorf("plan: load %g and SLA %g must be positive", lambda, slaT)
	}
	if maxScale < 1 {
		return 0, fmt.Errorf("plan: maxScale %g must be ≥ 1", maxScale)
	}
	scaled := func(k float64) *model.Group {
		grp := g.Clone()
		for i := range grp.Servers {
			grp.Servers[i].Speed *= k
			grp.Servers[i].SpecialRate *= k // keep ρ″ constant
		}
		return grp
	}
	meets := func(k float64) bool {
		grp := scaled(k)
		if lambda >= grp.MaxGenericRate() {
			return false
		}
		t, err := minResponseTime(grp, lambda, opts)
		return err == nil && t <= slaT
	}
	if meets(1) {
		return 1, nil
	}
	if !meets(maxScale) {
		return 0, fmt.Errorf("plan: SLA %g unreachable even at %gx speed", slaT, maxScale)
	}
	k, err := numeric.BisectPredicate(meets, 1, maxScale, 1e-9*maxScale)
	if err != nil {
		return 0, fmt.Errorf("plan: speed-scale search failed: %w", err)
	}
	return k, nil
}
