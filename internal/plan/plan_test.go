package plan

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
)

func liGroup() *model.Group { return model.LiExample1Group() }

func optimalT(t *testing.T, g *model.Group, d queueing.Discipline, lambda float64) float64 {
	t.Helper()
	res, err := core.Optimize(g, lambda, core.Options{Discipline: d})
	if err != nil {
		t.Fatal(err)
	}
	return res.AvgResponseTime
}

func TestMaxAdmissibleRateBoundary(t *testing.T) {
	g := liGroup()
	const sla = 0.95
	lim, err := MaxAdmissibleRate(g, queueing.FCFS, sla)
	if err != nil {
		t.Fatal(err)
	}
	if lim <= 0 || lim >= g.MaxGenericRate() {
		t.Fatalf("limit %g out of range", lim)
	}
	// Just below the limit: SLA met. Just above: violated.
	below := optimalT(t, g, queueing.FCFS, lim*0.999)
	if below > sla {
		t.Fatalf("T′ just below limit = %g > SLA %g", below, sla)
	}
	above := optimalT(t, g, queueing.FCFS, math.Min(lim*1.001, 0.9999*g.MaxGenericRate()))
	if above < sla {
		t.Fatalf("T′ just above limit = %g < SLA %g", above, sla)
	}
}

func TestMaxAdmissibleRatePriorityLower(t *testing.T) {
	// Priority slows generics, so the admissible rate under the same
	// SLA must be lower.
	g := liGroup()
	const sla = 0.95
	fc, err := MaxAdmissibleRate(g, queueing.FCFS, sla)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := MaxAdmissibleRate(g, queueing.Priority, sla)
	if err != nil {
		t.Fatal(err)
	}
	if pr >= fc {
		t.Fatalf("priority limit %g should be below FCFS limit %g", pr, fc)
	}
}

func TestMaxAdmissibleRateLooseSLA(t *testing.T) {
	// An SLA far above any achievable T′ returns (nearly) saturation.
	g := liGroup()
	lim, err := MaxAdmissibleRate(g, queueing.FCFS, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if lim < 0.999*g.MaxGenericRate() {
		t.Fatalf("loose SLA limit %g, want ≈ λ′_max %g", lim, g.MaxGenericRate())
	}
}

func TestMaxAdmissibleRateImpossibleSLA(t *testing.T) {
	g := liGroup()
	// The floor is at least the fastest x̄ (0.625): an SLA of 0.1 is
	// unachievable.
	if _, err := MaxAdmissibleRate(g, queueing.FCFS, 0.1); err == nil {
		t.Fatal("impossible SLA should fail")
	}
	if _, err := MaxAdmissibleRate(g, queueing.FCFS, 0); err == nil {
		t.Fatal("zero SLA should fail")
	}
	if _, err := MaxAdmissibleRate(&model.Group{TaskSize: 1}, queueing.FCFS, 1); err == nil {
		t.Fatal("invalid group should fail")
	}
}

func TestPlanBladesMeetsSLA(t *testing.T) {
	g := liGroup()
	lambda := 0.6 * g.MaxGenericRate()
	before := optimalT(t, g, queueing.FCFS, lambda)
	sla := before * 0.97 // demand a 3 % improvement
	expanded, placements, err := PlanBlades(g, queueing.FCFS, lambda, sla, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) == 0 {
		t.Fatal("expected at least one blade")
	}
	after := optimalT(t, expanded, queueing.FCFS, lambda)
	if after > sla {
		t.Fatalf("after planning T′ = %g > SLA %g", after, sla)
	}
	// Original group untouched.
	if g.TotalBlades() != 56 {
		t.Fatalf("original mutated: %d blades", g.TotalBlades())
	}
	// Each step's recorded T′ decreases (infeasible steps report +Inf
	// and may repeat while capacity is being restored).
	prev := math.Inf(1)
	for i, p := range placements {
		if p.ResponseTime >= prev && !math.IsInf(p.ResponseTime, 1) {
			t.Fatalf("step %d did not improve: %g after %g", i, p.ResponseTime, prev)
		}
		if p.Server < 0 || p.Server >= g.N() {
			t.Fatalf("step %d placed on invalid server %d", i, p.Server)
		}
		prev = p.ResponseTime
	}
}

func TestPlanBladesAlreadyCompliant(t *testing.T) {
	g := liGroup()
	lambda := 0.3 * g.MaxGenericRate()
	sla := optimalT(t, g, queueing.FCFS, lambda) + 1
	expanded, placements, err := PlanBlades(g, queueing.FCFS, lambda, sla, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 0 {
		t.Fatalf("no blades needed, got %d", len(placements))
	}
	if expanded.TotalBlades() != g.TotalBlades() {
		t.Fatal("compliant group should be returned unchanged")
	}
}

func TestPlanBladesBudgetExhausted(t *testing.T) {
	g := liGroup()
	lambda := 0.6 * g.MaxGenericRate()
	// Demand an enormous improvement with a tiny budget.
	if _, _, err := PlanBlades(g, queueing.FCFS, lambda, 0.7, 2); err == nil {
		t.Fatal("tiny budget should fail")
	}
}

func TestPlanBladesValidation(t *testing.T) {
	g := liGroup()
	if _, _, err := PlanBlades(g, queueing.FCFS, -1, 1, 5); err == nil {
		t.Error("negative load should fail")
	}
	if _, _, err := PlanBlades(g, queueing.FCFS, 1, 0, 5); err == nil {
		t.Error("zero SLA should fail")
	}
	if _, _, err := PlanBlades(g, queueing.FCFS, 1, 1, -1); err == nil {
		t.Error("negative budget should fail")
	}
	if _, _, err := PlanBlades(&model.Group{TaskSize: 1}, queueing.FCFS, 1, 1, 5); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestPlanBladesOverload(t *testing.T) {
	// Load beyond saturation: blades must be added until feasible,
	// then until the SLA holds.
	g := liGroup()
	lambda := 1.05 * g.MaxGenericRate()
	expanded, placements, err := PlanBlades(g, queueing.FCFS, lambda, 1.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) == 0 {
		t.Fatal("overloaded system needs blades")
	}
	if lambda >= expanded.MaxGenericRate() {
		t.Fatal("expanded system still saturated")
	}
}

func TestMinSpeedScale(t *testing.T) {
	g := liGroup()
	lambda := 0.6 * g.MaxGenericRate()
	before := optimalT(t, g, queueing.FCFS, lambda)
	sla := before * 0.8
	k, err := MinSpeedScale(g, queueing.FCFS, lambda, sla, 10)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 1 {
		t.Fatalf("scale %g should exceed 1", k)
	}
	// Verify the scaled system meets the SLA and k is minimal-ish.
	scaled := g.Clone()
	for i := range scaled.Servers {
		scaled.Servers[i].Speed *= k
		scaled.Servers[i].SpecialRate *= k
	}
	if got := optimalT(t, scaled, queueing.FCFS, lambda); got > sla*(1+1e-6) {
		t.Fatalf("scaled T′ = %g > SLA %g", got, sla)
	}
	under := g.Clone()
	for i := range under.Servers {
		under.Servers[i].Speed *= k * 0.99
		under.Servers[i].SpecialRate *= k * 0.99
	}
	if got := optimalT(t, under, queueing.FCFS, lambda); got <= sla {
		t.Fatalf("0.99k already meets SLA (T′=%g), k not minimal", got)
	}
}

func TestMinSpeedScaleAlreadyCompliant(t *testing.T) {
	g := liGroup()
	lambda := 0.3 * g.MaxGenericRate()
	sla := optimalT(t, g, queueing.FCFS, lambda) * 1.5
	k, err := MinSpeedScale(g, queueing.FCFS, lambda, sla, 10)
	if err != nil || k != 1 {
		t.Fatalf("k=%g err=%v, want 1", k, err)
	}
}

func TestMinSpeedScaleValidation(t *testing.T) {
	g := liGroup()
	if _, err := MinSpeedScale(g, queueing.FCFS, 1, 1, 0.5); err == nil {
		t.Error("maxScale < 1 should fail")
	}
	if _, err := MinSpeedScale(g, queueing.FCFS, 0, 1, 2); err == nil {
		t.Error("zero load should fail")
	}
	if _, err := MinSpeedScale(g, queueing.FCFS, 1, -1, 2); err == nil {
		t.Error("negative SLA should fail")
	}
	// x̄ scales as 1/k, so T′ ≥ x̄_min/k: an SLA of 1e-6 needs k ≈ 1e6.
	if _, err := MinSpeedScale(g, queueing.FCFS, 10, 1e-6, 4); err == nil {
		t.Error("unreachable SLA within maxScale should fail")
	}
	if _, err := MinSpeedScale(&model.Group{TaskSize: 1}, queueing.FCFS, 1, 1, 2); err == nil {
		t.Error("invalid group should fail")
	}
}

// The admission frontier itself must be monotone: a tighter SLA admits
// no more load.
func TestAdmissionFrontierMonotone(t *testing.T) {
	g := liGroup()
	prev := math.Inf(1)
	for _, sla := range []float64{2.0, 1.3, 1.0, 0.92} {
		lim, err := MaxAdmissibleRate(g, queueing.FCFS, sla)
		if err != nil {
			t.Fatal(err)
		}
		if lim > prev+1e-6 {
			t.Fatalf("tighter SLA %g admits more load: %g after %g", sla, lim, prev)
		}
		prev = lim
	}
}

// TestMaxAdmissibleRateWarmStartBitIdentical pins that chaining the
// previous probe's Lagrange multiplier into the next solve (the warm
// path the exported MaxAdmissibleRate uses) returns the bit-identical
// frontier of the cold path at every SLA and discipline tried.
func TestMaxAdmissibleRateWarmStartBitIdentical(t *testing.T) {
	g := liGroup()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		for _, sla := range []float64{0.8, 0.95, 1.2, 2.5} {
			warm, warmErr := maxAdmissibleRate(g, sla, core.Options{Discipline: d}, true)
			cold, coldErr := maxAdmissibleRate(g, sla, core.Options{Discipline: d}, false)
			if (warmErr == nil) != (coldErr == nil) {
				t.Fatalf("d=%v sla=%g: warm err %v, cold err %v", d, sla, warmErr, coldErr)
			}
			if warmErr != nil {
				continue
			}
			if warm != cold {
				t.Errorf("d=%v sla=%g: warm %.17g != cold %.17g (diff %g)",
					d, sla, warm, cold, warm-cold)
			}
		}
	}
}
