package plan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/queueing"
)

// bigFleet builds a clustered 256-station fleet for the fleet-scale
// planning paths.
func bigFleet() *model.Group {
	servers := make([]model.Server, 256)
	for i := range servers {
		k := i % 20
		s := model.Server{Size: 2 + 2*(k%8), Speed: 1.7 - 0.1*float64(k%7)}
		s.SpecialRate = 0.3 * float64(s.Size) * s.Speed
		servers[i] = s
	}
	return &model.Group{Servers: servers, TaskSize: 1.0}
}

// TestMaxAdmissibleRateSparseBitIdentical pins that routing the
// admission bisection through the sparse compact-result solve returns
// the bit-identical frontier of the dense path: each probe consumes
// only T′, and the sparse T′ differs from the dense one by strictly
// less than the probes' decision margins at these SLAs.
func TestMaxAdmissibleRateSparseBitIdentical(t *testing.T) {
	g := bigFleet()
	for _, d := range []queueing.Discipline{queueing.FCFS, queueing.Priority} {
		for _, sla := range []float64{1.0, 1.5, 3.0} {
			dense, err := MaxAdmissibleRate(g, d, sla)
			if err != nil {
				t.Fatalf("%v sla=%g: dense: %v", d, sla, err)
			}
			sparse, err := MaxAdmissibleRateOpts(g, sla, core.Options{Discipline: d, Sparse: true})
			if err != nil {
				t.Fatalf("%v sla=%g: sparse: %v", d, sla, err)
			}
			if dense != sparse { //bladelint:allow floateq -- bit-identity pin, not a tolerance check
				t.Errorf("%v sla=%g: dense frontier %.17g, sparse %.17g", d, sla, dense, sparse)
			}
		}
	}
}

// TestMinSpeedScaleSparseMatches covers the other option-threaded
// planning entry point at fleet scale.
func TestMinSpeedScaleSparseMatches(t *testing.T) {
	g := bigFleet()
	lambda := 0.6 * g.MaxGenericRate()
	dense, err := MinSpeedScale(g, queueing.FCFS, lambda, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := MinSpeedScaleOpts(g, lambda, 0.9, 8, core.Options{Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense != sparse { //bladelint:allow floateq -- bit-identity pin, not a tolerance check
		t.Errorf("dense scale %.17g, sparse %.17g", dense, sparse)
	}
}
